#pragma once

#include <memory>
#include <vector>

#include "aqm/factory.hpp"
#include "fault/fault.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace elephant::net {

/// Parameters of the paper's FABRIC dumbbell (Fig. 1).
///
/// Two traffic-generating clients (Clemson), two routers (WASH, NCSA), two
/// servers (TACC). `tc` shapes only router1's egress toward router2, so that
/// direction carries the configured bottleneck rate and AQM; every other
/// port runs at line rate with a deep drop-tail queue. The one-way delays
/// sum to 31 ms → 62 ms RTT, the paper's measured Clemson↔TACC value.
struct DumbbellConfig {
  double bottleneck_bps = 1e9;
  double access_bps = 25e9;    ///< client/server NICs (ConnectX-5, 25 GbE)
  double trunk_bps = 100e9;    ///< unshaped router NICs (ConnectX-6, 100 GbE)
  sim::Time client_delay = sim::Time::milliseconds(2);   ///< Clemson → WASH
  sim::Time trunk_delay = sim::Time::milliseconds(25);   ///< WASH → NCSA
  sim::Time server_delay = sim::Time::milliseconds(4);   ///< NCSA → TACC

  aqm::AqmKind aqm = aqm::AqmKind::kFifo;
  std::size_t bottleneck_buffer_bytes = 1 << 20;
  aqm::AqmOptions aqm_options{};

  /// Edge buffers: deep enough never to be the binding constraint.
  std::size_t access_buffer_bytes = std::size_t{512} << 20;

  /// Bernoulli loss injected ahead of the bottleneck queue (paper future
  /// work: "performance under network anomalies, e.g. variable rates of
  /// packet loss"). 0 disables.
  double random_loss = 0.0;

  /// Bursty two-state loss ahead of the bottleneck queue; complements the
  /// memoryless `random_loss`. Disabled unless the params enable it.
  fault::GilbertElliottParams ge_loss{};

  std::uint64_t seed = 1;
};

/// The assembled dumbbell. Owns all nodes and ports; exposes the pieces an
/// experiment wires flows into.
class Dumbbell {
 public:
  Dumbbell(sim::Scheduler& sched, const DumbbellConfig& cfg);

  [[nodiscard]] Host& client(int i) { return *clients_.at(i); }
  [[nodiscard]] Host& server(int i) { return *servers_.at(i); }
  [[nodiscard]] Router& router1() { return *router1_; }
  [[nodiscard]] Router& router2() { return *router2_; }

  /// The shaped router1→router2 port whose qdisc is the experiment's AQM.
  [[nodiscard]] Port& bottleneck() { return *bottleneck_; }
  [[nodiscard]] const Port& bottleneck() const { return *bottleneck_; }

  /// Attach a flight recorder to the bottleneck port (the only queue whose
  /// behaviour the paper's matrix varies); null detaches.
  void set_tracer(trace::Tracer* tracer) { bottleneck_->set_tracer(tracer); }

  [[nodiscard]] const DumbbellConfig& config() const { return cfg_; }

  /// End-to-end propagation RTT (no queueing): 2 × (client+trunk+server).
  [[nodiscard]] sim::Time base_rtt() const {
    return 2 * (cfg_.client_delay + cfg_.trunk_delay + cfg_.server_delay);
  }

  /// Snapshot every port (qdiscs included) and node counter, in the fixed
  /// construction order, implementing the sim::Snapshottable contract for
  /// the whole topology.
  void save(sim::SnapshotWriter& w) const {
    for (const auto& p : ports_) p->save(w);
    for (const auto& h : clients_) h->save(w);
    for (const auto& h : servers_) h->save(w);
    router1_->save(w);
    router2_->save(w);
  }
  void load(sim::SnapshotReader& r) {
    for (const auto& p : ports_) p->load(r);
    for (const auto& h : clients_) h->load(r);
    for (const auto& h : servers_) h->load(r);
    router1_->load(r);
    router2_->load(r);
  }

 private:
  Port* add_port(std::unique_ptr<aqm::QueueDisc> q, double bps, sim::Time delay, Node* to,
                 std::string name);

  sim::Scheduler& sched_;
  DumbbellConfig cfg_;
  std::vector<std::unique_ptr<Host>> clients_;
  std::vector<std::unique_ptr<Host>> servers_;
  std::unique_ptr<Router> router1_;
  std::unique_ptr<Router> router2_;
  std::vector<std::unique_ptr<Port>> ports_;
  Port* bottleneck_ = nullptr;
};

}  // namespace elephant::net
