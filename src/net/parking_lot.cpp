#include "net/parking_lot.hpp"

#include <cassert>

#include "aqm/fifo.hpp"

namespace elephant::net {

Port* ParkingLot::add_port(std::unique_ptr<aqm::QueueDisc> q, double bps, sim::Time delay,
                           Node* to, std::string name) {
  ports_.push_back(std::make_unique<Port>(sched_, std::move(q), bps, delay, std::move(name)));
  Port* p = ports_.back().get();
  p->connect(to);
  return p;
}

ParkingLot::ParkingLot(sim::Scheduler& sched, const ParkingLotConfig& cfg)
    : sched_(sched), cfg_(cfg) {
  assert(cfg_.hops >= 1);

  // Node ids: routers 100..100+hops, long endpoints 1/2, cross hosts from 10.
  for (int i = 0; i <= cfg_.hops; ++i) {
    routers_.push_back(std::make_unique<Router>(100 + i, "r" + std::to_string(i)));
  }
  long_src_ = std::make_unique<Host>(1, "long-src");
  long_dst_ = std::make_unique<Host>(2, "long-dst");
  for (int i = 0; i < cfg_.hops; ++i) {
    cross_src_.push_back(std::make_unique<Host>(10 + 2 * i, "cross-src" + std::to_string(i)));
    cross_dst_.push_back(std::make_unique<Host>(11 + 2 * i, "cross-dst" + std::to_string(i)));
  }

  auto fifo = [&] { return std::make_unique<aqm::FifoQueue>(sched_, cfg_.access_buffer_bytes); };

  // Long endpoints attach to the chain's ends.
  Port* long_up = add_port(fifo(), cfg_.access_bps, cfg_.access_delay, routers_.front().get(),
                           "long-src->r0");
  long_src_->attach_nic(long_up);
  Port* rN_long = add_port(fifo(), cfg_.access_bps, cfg_.access_delay, long_dst_.get(),
                           "rN->long-dst");
  Port* r0_long = add_port(fifo(), cfg_.access_bps, cfg_.access_delay, long_src_.get(),
                           "r0->long-src");
  Port* long_back = add_port(fifo(), cfg_.access_bps, cfg_.access_delay, routers_.back().get(),
                             "long-dst->rN");
  long_dst_->attach_nic(long_back);

  // The chain itself: forward shaped bottlenecks, reverse line-rate links.
  std::vector<Port*> fwd(cfg_.hops);
  std::vector<Port*> rev(cfg_.hops);
  for (int i = 0; i < cfg_.hops; ++i) {
    fwd[i] = add_port(aqm::make_queue_disc(cfg_.aqm, sched_, cfg_.buffer_bytes_per_hop,
                                           cfg_.seed + i, cfg_.aqm_options),
                      cfg_.bottleneck_bps, cfg_.hop_delay, routers_[i + 1].get(),
                      "r" + std::to_string(i) + "->r" + std::to_string(i + 1));
    rev[i] = add_port(fifo(), cfg_.access_bps, cfg_.hop_delay, routers_[i].get(),
                      "r" + std::to_string(i + 1) + "->r" + std::to_string(i));
    bottlenecks_.push_back(fwd[i]);
  }

  // Cross hosts: src enters at r_i, dst hangs off r_{i+1}.
  std::vector<Port*> cross_in(cfg_.hops);
  std::vector<Port*> cross_out(cfg_.hops);
  std::vector<Port*> cross_back_in(cfg_.hops);
  std::vector<Port*> cross_back_out(cfg_.hops);
  for (int i = 0; i < cfg_.hops; ++i) {
    cross_in[i] = add_port(fifo(), cfg_.access_bps, cfg_.access_delay, routers_[i].get(),
                           "cross-src->r" + std::to_string(i));
    cross_src_[i]->attach_nic(cross_in[i]);
    cross_out[i] = add_port(fifo(), cfg_.access_bps, cfg_.access_delay, cross_dst_[i].get(),
                            "r" + std::to_string(i + 1) + "->cross-dst");
    cross_back_in[i] = add_port(fifo(), cfg_.access_bps, cfg_.access_delay,
                                routers_[i + 1].get(), "cross-dst->r");
    cross_dst_[i]->attach_nic(cross_back_in[i]);
    cross_back_out[i] = add_port(fifo(), cfg_.access_bps, cfg_.access_delay,
                                 cross_src_[i].get(), "r->cross-src");
  }

  // Routing. Forward direction: long_dst (2) reachable by walking the chain;
  // cross_dst_i (11+2i) exits at router i+1. Reverse: long_src (1) back down
  // the chain; cross_src_i (10+2i) exits at router i.
  for (int r = 0; r <= cfg_.hops; ++r) {
    Router& router = *routers_[r];
    if (r < cfg_.hops) router.set_route(2, fwd[r]);
    if (r == cfg_.hops) router.set_route(2, rN_long);
    if (r > 0) router.set_route(1, rev[r - 1]);
    if (r == 0) router.set_route(1, r0_long);
    for (int i = 0; i < cfg_.hops; ++i) {
      const NodeId dst = 11 + 2 * i;
      const NodeId src = 10 + 2 * i;
      // Data toward cross_dst_i: forward until router i+1, then out.
      if (r < i + 1) {
        router.set_route(dst, fwd[r]);
      } else if (r == i + 1) {
        router.set_route(dst, cross_out[i]);
      }
      // ACKs toward cross_src_i: backward until router i, then out.
      if (r > i) {
        router.set_route(src, rev[r - 1]);
      } else if (r == i) {
        router.set_route(src, cross_back_out[i]);
      }
    }
  }
}

}  // namespace elephant::net
