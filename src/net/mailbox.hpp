#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace elephant::net {

/// Single-producer/single-consumer handoff for one cross-shard link
/// direction, addressed to one destination node.
///
/// No atomics, no locks: correctness comes entirely from the bounded-lag
/// engine's phase discipline. The producing lane posts during the run phase;
/// barrier A then establishes a happens-before edge to the consuming lane,
/// which drains during the drain phase; barrier B orders the drain before
/// the producer's next run phase reuses the buffer. Under TSan this is clean
/// because the std::barrier arrivals synchronize every access pair.
///
/// Packets are posted in the producer's delivery order, which for a FIFO
/// link with fixed propagation is nondecreasing in `due`; drain_into
/// preserves that order via the destination scheduler's FIFO tie-break, so
/// a fixed drain order across mailboxes makes the whole run deterministic.
class PacketMailbox final : public PacketSink {
 public:
  explicit PacketMailbox(Node* dest) : dest_(dest) {}

  /// Producer side (run phase): record a delivery due at `due`.
  void accept(sim::Time due, Packet&& p) override {
    buf_.push_back(Item{due, std::move(p)});
  }

  /// Consumer side (drain phase): schedule every recorded delivery into the
  /// destination lane. Every `due` is at or after the lane's window
  /// boundary, i.e. never in the consumer's past.
  void drain_into(sim::Scheduler& sched) {
    for (Item& it : buf_) {
      sched.schedule_at(it.due, [dest = dest_, pkt = std::move(it.pkt)]() mutable {
        dest->receive(std::move(pkt));
      });
    }
    buf_.clear();
  }

  [[nodiscard]] Node* dest() const { return dest_; }
  [[nodiscard]] std::size_t pending() const { return buf_.size(); }

 private:
  struct Item {
    sim::Time due{};
    Packet pkt{};
  };

  Node* dest_;
  std::vector<Item> buf_;
};

}  // namespace elephant::net
