#pragma once

#include <memory>
#include <vector>

#include "aqm/factory.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace elephant::net {

/// Parking-lot chain configuration: `hops` identical bottleneck links in a
/// row, one long path crossing all of them, and one cross-traffic host pair
/// per hop. The standard topology for studying multi-bottleneck sharing and
/// RTT unfairness — the "varying RTTs" extension the paper's conclusion
/// names (a long flow sees `hops`× the queueing of each cross flow).
struct ParkingLotConfig {
  int hops = 3;
  double bottleneck_bps = 1e9;
  double access_bps = 25e9;
  sim::Time hop_delay = sim::Time::milliseconds(10);   ///< per bottleneck hop
  sim::Time access_delay = sim::Time::milliseconds(1); ///< host ↔ router

  aqm::AqmKind aqm = aqm::AqmKind::kFifo;
  std::size_t buffer_bytes_per_hop = 1 << 22;
  aqm::AqmOptions aqm_options{};
  std::size_t access_buffer_bytes = std::size_t{256} << 20;
  std::uint64_t seed = 1;
};

/// The assembled chain:
///
///   long_src ─ r0 ══ r1 ══ r2 ══ … ══ rN ─ long_dst
///              │      │      │
///        cross_src_i arrives at r_i, exits at r_{i+1} to cross_dst_i
///
/// Every r_i → r_{i+1} link is a shaped bottleneck with the configured AQM.
class ParkingLot {
 public:
  ParkingLot(sim::Scheduler& sched, const ParkingLotConfig& cfg);

  [[nodiscard]] Host& long_src() { return *long_src_; }
  [[nodiscard]] Host& long_dst() { return *long_dst_; }
  [[nodiscard]] Host& cross_src(int hop) { return *cross_src_.at(hop); }
  [[nodiscard]] Host& cross_dst(int hop) { return *cross_dst_.at(hop); }
  [[nodiscard]] Port& bottleneck(int hop) { return *bottlenecks_.at(hop); }
  [[nodiscard]] int hops() const { return cfg_.hops; }

  /// Propagation RTT of the long path (all hops) and of one hop's cross path.
  [[nodiscard]] sim::Time long_rtt() const {
    return 2 * (2 * cfg_.access_delay + cfg_.hop_delay * cfg_.hops);
  }
  [[nodiscard]] sim::Time cross_rtt() const {
    return 2 * (2 * cfg_.access_delay + cfg_.hop_delay);
  }

 private:
  Port* add_port(std::unique_ptr<aqm::QueueDisc> q, double bps, sim::Time delay, Node* to,
                 std::string name);

  sim::Scheduler& sched_;
  ParkingLotConfig cfg_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::unique_ptr<Host> long_src_;
  std::unique_ptr<Host> long_dst_;
  std::vector<std::unique_ptr<Host>> cross_src_;
  std::vector<std::unique_ptr<Host>> cross_dst_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<Port*> bottlenecks_;
};

}  // namespace elephant::net
