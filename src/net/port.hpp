#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "aqm/queue_disc.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace elephant::net {

class Node;

/// An egress port: a queue discipline feeding a serializing link.
///
/// Models one direction of a physical link — a rate (bits/s), a propagation
/// delay, and the attached queue. The paper's bottleneck is reproduced by
/// giving router1's port toward router2 the configured rate and AQM; every
/// other port gets line rate and a deep drop-tail queue.
class Port {
 public:
  Port(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> qdisc, double rate_bps,
       sim::Time propagation, std::string name);

  /// Hand a packet to this port. It is queued (or dropped by the AQM) and
  /// serialized onto the link as capacity allows.
  void send(Packet&& p);

  void connect(Node* peer) { peer_ = peer; }

  /// Attach a flight recorder to this port and its qdisc (null detaches).
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    qdisc_->set_tracer(tracer);
  }

  /// Record a kQueueDepth sample every `interval`, starting one interval
  /// from now. The sampling event reschedules itself indefinitely, so drive
  /// the scheduler with run_until(), not run(). No-op without a tracer.
  void start_queue_sampling(sim::Time interval);

  [[nodiscard]] aqm::QueueDisc& qdisc() { return *qdisc_; }
  [[nodiscard]] const aqm::QueueDisc& qdisc() const { return *qdisc_; }
  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  [[nodiscard]] sim::Time propagation() const { return propagation_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t tx_bytes() const { return tx_bytes_; }

 private:
  void try_transmit();
  void sample_queue_depth(sim::Time interval);

  sim::Scheduler& sched_;
  std::unique_ptr<aqm::QueueDisc> qdisc_;
  double rate_bps_;
  sim::Time propagation_;
  std::string name_;
  Node* peer_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  bool busy_ = false;

  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
};

}  // namespace elephant::net
