#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "aqm/queue_disc.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/ring_deque.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace elephant::obs {
struct QueueMetrics;
}  // namespace elephant::obs

namespace elephant::net {

class Node;

/// Destination for packets whose receiving node lives in another shard
/// (lane) of a sharded run. A port with a remote sink attached hands over
/// the absolute delivery instant and the packet instead of scheduling the
/// delivery locally; the sink (a cross-shard mailbox) is drained into the
/// destination lane's scheduler at the next window boundary.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void accept(sim::Time due, Packet&& p) = 0;
};

/// An egress port: a queue discipline feeding a serializing link.
///
/// Models one direction of a physical link — a rate (bits/s), a propagation
/// delay, and the attached queue. The paper's bottleneck is reproduced by
/// giving router1's port toward router2 the configured rate and AQM; every
/// other port gets line rate and a deep drop-tail queue.
class Port {
 public:
  Port(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> qdisc, double rate_bps,
       sim::Time propagation, std::string name);

  /// Hand a packet to this port. It is queued (or dropped by the AQM) and
  /// serialized onto the link as capacity allows.
  void send(Packet&& p);

  void connect(Node* peer) { peer_ = peer; }

  /// Route deliveries through a cross-shard mailbox instead of the local
  /// peer (null restores local delivery). The bounded-lag window must not
  /// exceed this port's propagation delay, so that every handed-over due
  /// instant lands at or after the destination lane's window boundary.
  void set_remote_sink(PacketSink* sink) { remote_sink_ = sink; }

  /// Attach a flight recorder to this port and its qdisc (null detaches).
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    qdisc_->set_tracer(tracer);
  }

  /// Attach telemetry handles (null detaches). Adds one per-dequeue
  /// histogram record of the packet's queue sojourn time; the enqueue/drop
  /// counters ride the qdisc's existing QueueStats, published by the run
  /// harness at run end, so the default path stays a single untaken branch.
  void set_metrics(const obs::QueueMetrics* metrics) { metrics_ = metrics; }

  /// Record a kQueueDepth sample every `interval`, starting one interval
  /// from now. The sampling event reschedules itself indefinitely, so drive
  /// the scheduler with run_until(), not run(). No-op without a tracer.
  void start_queue_sampling(sim::Time interval);

  [[nodiscard]] aqm::QueueDisc& qdisc() { return *qdisc_; }
  [[nodiscard]] const aqm::QueueDisc& qdisc() const { return *qdisc_; }
  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  [[nodiscard]] sim::Time propagation() const { return propagation_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t tx_bytes() const { return tx_bytes_; }

  // --- fault-injection surface (driven by fault::FaultInjector) ---

  /// Per-packet link misbehaviour applied after serialization, like a flaky
  /// wire: corruption loss, late (reordered) delivery, duplication, jitter.
  /// Probabilistic knobs only take effect once a fault RNG is attached.
  struct LinkPerturb {
    double loss_prob = 0;       ///< packet vanishes in flight
    double reorder_prob = 0;    ///< packet lands `reorder_delay` late
    sim::Time reorder_delay{};
    double duplicate_prob = 0;  ///< packet is delivered twice
    sim::Time jitter{};         ///< uniform [0, jitter) extra latency
  };

  /// Take the link down or up. While down nothing serializes; arrivals keep
  /// queueing into (or being dropped by) the qdisc. Bringing it up drains.
  void set_link_up(bool up);
  [[nodiscard]] bool link_up() const { return up_; }

  /// Change the serialization rate (bandwidth degradation); applies to
  /// packets dequeued from now on. Clamped to a positive floor.
  void set_rate_bps(double bps);

  void set_perturb(const LinkPerturb& p) { perturb_ = p; }
  [[nodiscard]] const LinkPerturb& perturb() const { return perturb_; }
  /// RNG feeding the probabilistic perturbations; owned by the caller
  /// (FaultInjector), which must outlive the port's activity.
  void set_fault_rng(sim::Rng* rng) { fault_rng_ = rng; }

  [[nodiscard]] std::uint64_t fault_lost() const { return fault_lost_; }
  [[nodiscard]] std::uint64_t fault_reordered() const { return fault_reordered_; }
  [[nodiscard]] std::uint64_t fault_duplicated() const { return fault_duplicated_; }

  // --- model-checking snapshot surface ---

  /// Serialize the port's mutable state: link/serialization scalars, fault
  /// perturbation and counters, the in-flight delay line, and the attached
  /// queue discipline (which serializes itself, derived state included).
  /// Timer armed-ness is not written here — it lives in the scheduler image,
  /// and the timers' slots survive restore untouched.
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

 private:
  void try_transmit();
  void deliver_in(sim::Time delay, Packet&& p);
  void deliver_head();
  void sample_queue_depth();

  /// One serialized packet in flight on the wire, due at `at`.
  struct InFlight {
    sim::Time at{};
    Packet pkt{};
  };

  sim::Scheduler& sched_;
  std::unique_ptr<aqm::QueueDisc> qdisc_;
  double rate_bps_;
  sim::Time propagation_;
  std::string name_;
  Node* peer_ = nullptr;
  PacketSink* remote_sink_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  const obs::QueueMetrics* metrics_ = nullptr;
  /// Instant the current serialization finishes; the link is idle when
  /// now >= busy_until_. Replaces a per-packet "link free" one-shot event:
  /// the wake timer below is armed only when queued work will actually be
  /// waiting at that instant, so an uncongested port (most NICs in a
  /// many-flow cell) pays zero scheduler events for link bookkeeping.
  sim::Time busy_until_{};
  bool up_ = true;

  /// Serialization-end wake; re-armable so the slot and callback persist.
  sim::TimerHandle tx_timer_;

  /// Delay line of unperturbed in-flight packets. Serialization is FIFO and
  /// propagation fixed, so delivery instants are monotone: one re-armable
  /// timer pointed at the head replaces a heap event (and a packet-sized
  /// callback capture) per packet. Perturbed packets (fault jitter/reorder
  /// lateness) break monotonicity and fall back to the general heap.
  sim::RingDeque<InFlight> line_;
  sim::TimerHandle line_timer_;

  sim::TimerHandle sampler_timer_;  ///< weak: never holds a run open
  sim::Time sample_interval_{};

  LinkPerturb perturb_{};
  sim::Rng* fault_rng_ = nullptr;
  std::uint64_t fault_lost_ = 0;
  std::uint64_t fault_reordered_ = 0;
  std::uint64_t fault_duplicated_ = 0;

  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
};

}  // namespace elephant::net
