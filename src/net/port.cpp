#include "net/port.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"

namespace elephant::net {

Port::Port(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> qdisc, double rate_bps,
           sim::Time propagation, std::string name)
    : sched_(sched),
      qdisc_(std::move(qdisc)),
      rate_bps_(rate_bps),
      propagation_(propagation),
      name_(std::move(name)) {
  assert(rate_bps_ > 0.0);
}

void Port::start_queue_sampling(sim::Time interval) {
  if (tracer_ == nullptr || interval <= sim::Time::zero()) return;
  sched_.schedule_in(interval, [this, interval] { sample_queue_depth(interval); });
}

void Port::sample_queue_depth(sim::Time interval) {
  trace::TraceRecord r;
  r.t = sched_.now();
  r.type = trace::RecordType::kQueueDepth;
  r.v0 = static_cast<double>(qdisc_->byte_length());
  r.v1 = static_cast<double>(qdisc_->packet_length());
  r.v2 = static_cast<double>(tx_bytes_);
  tracer_->record(r);
  sched_.schedule_in(interval, [this, interval] { sample_queue_depth(interval); });
}

void Port::send(Packet&& p) {
  qdisc_->enqueue(std::move(p));
  try_transmit();
}

void Port::try_transmit() {
  if (busy_) return;
  auto next = qdisc_->dequeue();
  if (!next) return;

  busy_ = true;
  const sim::Time tx = sim::transmission_time(next->size, rate_bps_);
  ++tx_packets_;
  tx_bytes_ += next->size;

  // The link frees after serialization; the packet lands after serialization
  // plus propagation. Two events, both relative to now.
  sched_.schedule_in(tx, [this] {
    busy_ = false;
    try_transmit();
  });
  sched_.schedule_in(tx + propagation_, [this, pkt = std::move(*next)]() mutable {
    assert(peer_ != nullptr && "port not connected");
    peer_->receive(std::move(pkt));
  });
}

}  // namespace elephant::net
