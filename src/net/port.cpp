#include "net/port.hpp"

#include <cassert>
#include <type_traits>
#include <utility>

#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "sim/choice.hpp"

namespace elephant::net {

Port::Port(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> qdisc, double rate_bps,
           sim::Time propagation, std::string name)
    : sched_(sched),
      qdisc_(std::move(qdisc)),
      rate_bps_(rate_bps),
      propagation_(propagation),
      name_(std::move(name)) {
  assert(rate_bps_ > 0.0);
  line_timer_.init(sched_, [this] { deliver_head(); });
  tx_timer_.init(sched_, [this] { try_transmit(); });
  sampler_timer_.init(sched_, [this] { sample_queue_depth(); }, /*weak=*/true);
}

void Port::start_queue_sampling(sim::Time interval) {
  if (tracer_ == nullptr || interval <= sim::Time::zero()) return;
  sample_interval_ = interval;
  sampler_timer_.rearm(sched_.now() + interval);
}

void Port::sample_queue_depth() {
  trace::TraceRecord r;
  r.t = sched_.now();
  r.type = trace::RecordType::kQueueDepth;
  r.v0 = static_cast<double>(qdisc_->byte_length());
  r.v1 = static_cast<double>(qdisc_->packet_length());
  r.v2 = static_cast<double>(tx_bytes_);
  tracer_->record(r);
  sampler_timer_.rearm(sched_.now() + sample_interval_);
}

void Port::send(Packet&& p) {
  qdisc_->enqueue(std::move(p));
  if (sched_.now() >= busy_until_) {
    try_transmit();
  } else if (up_ && !tx_timer_.armed() && qdisc_->packet_length() > 0) {
    // Arrived mid-serialization with no wake pending (the queue was empty
    // when the current packet started): service resumes when the link frees.
    tx_timer_.rearm(busy_until_);
  }
}

void Port::set_link_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up_) return;
  // Drain whatever queued during the outage. If the pre-outage serialization
  // instant is still ahead, service resumes there (arrivals while down never
  // arm the wake themselves).
  if (sched_.now() >= busy_until_) {
    try_transmit();
  } else if (!tx_timer_.armed() && qdisc_->packet_length() > 0) {
    tx_timer_.rearm(busy_until_);
  }
}

void Port::set_rate_bps(double bps) {
  rate_bps_ = bps > 1.0 ? bps : 1.0;
}

void Port::deliver_in(sim::Time delay, Packet&& p) {
  const sim::Time at = sched_.now() + delay;
  if (remote_sink_ != nullptr) {
    // Cross-shard link: the mailbox owns delivery from here. `delay` is at
    // least this port's propagation, which bounds the engine's window, so
    // `at` can never precede the destination lane's next boundary.
    remote_sink_->accept(at, std::move(p));
    return;
  }
  // The delay-line invariant: entries are delivered in push order, so `at`
  // must be monotone. Serialization end times are strictly increasing and
  // propagation is constant, so this holds for every unperturbed packet
  // (rate changes included); only fault lateness lands on the general heap.
  if (!line_.empty() && at < line_.back().at) {
    sched_.schedule_in(delay, [this, pkt = std::move(p)]() mutable {
      assert(peer_ != nullptr && "port not connected");
      peer_->receive(std::move(pkt));
    });
    return;
  }
  line_.push_back(InFlight{at, std::move(p)});
  if (line_.size() == 1) line_timer_.rearm(at);
}

void Port::deliver_head() {
  assert(peer_ != nullptr && "port not connected");
  // Drain everything due now — fault duplication can place two entries at
  // the same instant; unperturbed traffic delivers exactly one per fire.
  while (!line_.empty() && line_.front().at <= sched_.now()) {
    Packet p = std::move(line_.front().pkt);
    line_.pop_front();
    peer_->receive(std::move(p));
  }
  if (!line_.empty()) line_timer_.rearm(line_.front().at);
}

void Port::try_transmit() {
  if (!up_ || sched_.now() < busy_until_) return;
  auto next = qdisc_->dequeue();
  if (!next) return;

  const sim::Time tx = sim::transmission_time(next->size, rate_bps_);
  ++tx_packets_;
  tx_bytes_ += next->size;
  if (metrics_ != nullptr && metrics_->sojourn_s != nullptr) [[unlikely]] {
    metrics_->sojourn_s->record((sched_.now() - next->enqueue_time).sec());
  }

  // The link frees at busy_until_; the packet lands after serialization
  // plus propagation. A wake is scheduled only when a queued packet will be
  // waiting for it — whichever event touches the port at busy_until_ first
  // serves the head of the queue, so an idle-at-dequeue port needs no event
  // at all (formerly ~60% of all scheduler pops in a many-flow cell).
  busy_until_ = sched_.now() + tx;
  if (qdisc_->packet_length() > 0) tx_timer_.rearm(busy_until_);

  sim::Time extra = sim::Time::zero();
  if (fault_rng_ != nullptr) [[unlikely]] {
    // Link-level perturbations act after serialization, like a flaky wire:
    // the packet occupied the link either way.
    //
    // Each probabilistic site is a model-checking choice point: the seeded
    // RNG draw is always consumed first (so the stream — and the position of
    // every later choice point — is identical whichever branch is taken),
    // then an attached hook may flip the outcome. Branch 0 keeps the seeded
    // outcome; a certain (p >= 1) or impossible (p <= 0) site offers no
    // branch. Jitter is a continuous perturbation, not an enumerable one,
    // and stays purely seeded.
    sim::ChoiceHook* hook = sched_.choice_hook();
    if (perturb_.loss_prob > 0) {
      bool lost = fault_rng_->next_double() < perturb_.loss_prob;
      if (hook != nullptr && perturb_.loss_prob < 1.0 &&
          hook->choose(sim::ChoiceKind::kFaultLoss, 2) != 0) {
        lost = !lost;
      }
      if (lost) {
        ++fault_lost_;
        return;  // corrupted in flight
      }
    }
    if (perturb_.jitter > sim::Time::zero()) {
      extra += perturb_.jitter * fault_rng_->next_double();
    }
    if (perturb_.reorder_prob > 0) {
      bool late = fault_rng_->next_double() < perturb_.reorder_prob;
      if (hook != nullptr && perturb_.reorder_prob < 1.0 &&
          hook->choose(sim::ChoiceKind::kFaultReorder, 2) != 0) {
        late = !late;
      }
      if (late) {
        extra += perturb_.reorder_delay;
        ++fault_reordered_;
      }
    }
    if (perturb_.duplicate_prob > 0) {
      bool dup = fault_rng_->next_double() < perturb_.duplicate_prob;
      if (hook != nullptr && perturb_.duplicate_prob < 1.0 &&
          hook->choose(sim::ChoiceKind::kFaultDuplicate, 2) != 0) {
        dup = !dup;
      }
      if (dup) {
        ++fault_duplicated_;
        deliver_in(tx + propagation_ + extra, Packet(*next));
      }
    }
  }
  deliver_in(tx + propagation_ + extra, std::move(*next));
}

void Port::save(sim::SnapshotWriter& w) const {
  static_assert(std::is_trivially_copyable_v<InFlight>);
  w.put_pod(busy_until_);
  w.put_bool(up_);
  w.put_f64(rate_bps_);
  w.put_pod(perturb_);
  w.put_u64(fault_lost_);
  w.put_u64(fault_reordered_);
  w.put_u64(fault_duplicated_);
  w.put_u64(tx_packets_);
  w.put_u64(tx_bytes_);
  w.put_pod(sample_interval_);
  w.put_u64(line_.size());
  for (std::size_t i = 0; i < line_.size(); ++i) w.put_pod(line_[i]);
  qdisc_->save(w);
}

void Port::load(sim::SnapshotReader& r) {
  r.get_pod(&busy_until_);
  up_ = r.get_bool();
  rate_bps_ = r.get_f64();
  r.get_pod(&perturb_);
  fault_lost_ = r.get_u64();
  fault_reordered_ = r.get_u64();
  fault_duplicated_ = r.get_u64();
  tx_packets_ = r.get_u64();
  tx_bytes_ = r.get_u64();
  r.get_pod(&sample_interval_);
  const std::uint64_t n = r.get_u64();
  line_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    InFlight f;
    r.get_pod(&f);
    line_.push_back(std::move(f));
  }
  qdisc_->load(r);
}

}  // namespace elephant::net
