#pragma once

#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace elephant::net {

using NodeId = std::uint32_t;
using FlowId = std::uint32_t;

/// Half-open range of SACKed segment indices [start, end).
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  [[nodiscard]] bool empty() const { return start >= end; }
};

/// A simulated packet.
///
/// The TCP model is segment-granular: `seq` is the index of the first MSS
/// segment carried, and `segments` the number of consecutive segments this
/// packet aggregates (TSO/GRO-style super-segments at high bandwidth;
/// 1 at low bandwidth). `size` is the on-wire byte count used for all
/// queueing and serialization arithmetic.
struct Packet {
  FlowId flow = 0;
  NodeId src = 0;
  NodeId dst = 0;

  std::uint64_t seq = 0;       ///< first segment index (data packets)
  std::uint32_t segments = 1;  ///< number of MSS segments aggregated
  std::uint32_t size = 0;      ///< bytes on the wire

  bool is_ack = false;
  bool retx = false;         ///< retransmission (for tracing/accounting)
  bool ecn_capable = false;  ///< ECT set by sender
  bool ecn_marked = false;   ///< CE set by an AQM

  // --- ACK fields (valid when is_ack) ---
  std::uint64_t ack = 0;  ///< cumulative: next segment expected by receiver
  std::array<SackBlock, 3> sacks{};
  std::uint8_t n_sacks = 0;
  bool ece = false;  ///< ECN-echo: receiver saw a CE mark

  sim::Time sent_time{};     ///< timestamp at the original sender
  sim::Time enqueue_time{};  ///< set by AQMs to measure sojourn time
};

/// On-wire overhead added to every data segment (Ethernet + IP + TCP headers,
/// matching the jumbo-frame accounting in the paper: 8900-byte frames).
inline constexpr std::uint32_t kHeaderBytes = 66;
/// Pure-ACK wire size.
inline constexpr std::uint32_t kAckBytes = 66;

}  // namespace elephant::net
