#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/mailbox.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "net/topology.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/time.hpp"

namespace elephant::net {

/// The paper dumbbell laid out across the lanes of a ShardedEngine.
///
/// The shared middle — both routers, the shaped bottleneck port, and the
/// reverse trunk — lives alone in the last ("network") lane, so the AQM and
/// its RNG stay strictly single-threaded. Each worker lane w gets its own
/// pair of client/server hosts per side, with private access links up to the
/// routers; every access link crosses a lane boundary and therefore delivers
/// through a PacketMailbox. The engine's bounded-lag window is lookahead():
/// the smaller of the client and server one-way delays, the minimum
/// propagation any cross-lane packet experiences.
///
/// Versus the single-threaded Dumbbell, per-worker access links replace the
/// two shared 25G NICs; the bottleneck (the experiment's subject) is
/// unchanged. Sharded cells are therefore their own cache identity
/// (ExperimentConfig::id() carries the shard count) rather than bit-identical
/// replicas of the shards=1 topology.
class ShardedDumbbell {
 public:
  /// `engine` must have exactly workers+1 lanes; lane `workers` is the
  /// network lane.
  ShardedDumbbell(sim::ShardedEngine& engine, const DumbbellConfig& cfg,
                  std::size_t workers);

  [[nodiscard]] std::size_t workers() const { return workers_; }
  [[nodiscard]] std::size_t net_lane() const { return workers_; }

  [[nodiscard]] Host& client(std::size_t worker, int side) {
    return *clients_[worker * 2 + static_cast<std::size_t>(side)];
  }
  [[nodiscard]] Host& server(std::size_t worker, int side) {
    return *servers_[worker * 2 + static_cast<std::size_t>(side)];
  }
  [[nodiscard]] Port& bottleneck() { return *bottleneck_; }
  [[nodiscard]] const Port& bottleneck() const { return *bottleneck_; }

  /// Largest safe bounded-lag window: the minimum propagation delay over all
  /// cross-lane links.
  [[nodiscard]] sim::Time lookahead() const;

  /// Drain every mailbox inbound to `lane`, in construction order, into that
  /// lane's scheduler. Called by the engine's drain phase.
  void drain_lane(std::size_t lane, sim::Scheduler& sched);

  /// Attach a flight recorder to the bottleneck port only (it lives in the
  /// single-threaded network lane, keeping the tracer single-writer).
  void set_tracer(trace::Tracer* tracer) { bottleneck_->set_tracer(tracer); }

  [[nodiscard]] const DumbbellConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Time base_rtt() const {
    return 2 * (cfg_.client_delay + cfg_.trunk_delay + cfg_.server_delay);
  }

 private:
  Port* add_port(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> q, double bps,
                 sim::Time delay, std::string name);
  /// A mailbox carrying packets into `lane`, registered in drain order.
  PacketMailbox* add_mailbox(std::size_t lane, Node* dest);

  sim::ShardedEngine& engine_;
  DumbbellConfig cfg_;
  std::size_t workers_;

  std::vector<std::unique_ptr<Host>> clients_;  ///< [worker * 2 + side]
  std::vector<std::unique_ptr<Host>> servers_;  ///< [worker * 2 + side]
  std::unique_ptr<Router> router1_;
  std::unique_ptr<Router> router2_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::unique_ptr<PacketMailbox>> mailboxes_;
  std::vector<std::vector<PacketMailbox*>> inbound_;  ///< per lane, drain order
  Port* bottleneck_ = nullptr;
};

}  // namespace elephant::net
