#include "net/node.hpp"

#include <utility>

#include "net/port.hpp"

namespace elephant::net {

void Router::receive(Packet&& p) {
  auto it = routes_.find(p.dst);
  if (it == routes_.end()) {
    ++no_route_drops_;
    return;
  }
  ++forwarded_;
  it->second->send(std::move(p));
}

void Host::transmit(Packet&& p) {
  if (nic_ != nullptr) nic_->send(std::move(p));
}

void Host::receive(Packet&& p) {
  PacketHandler* h = p.flow < endpoints_.size() ? endpoints_[p.flow] : nullptr;
  if (h == nullptr) {
    ++no_endpoint_drops_;
    return;
  }
  ++delivered_;
  h->on_packet(std::move(p));
}

}  // namespace elephant::net
