#include "net/sharded_topology.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "aqm/factory.hpp"
#include "aqm/fifo.hpp"
#include "aqm/loss_injector.hpp"
#include "fault/gilbert_elliott.hpp"

namespace elephant::net {

Port* ShardedDumbbell::add_port(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> q,
                                double bps, sim::Time delay, std::string name) {
  ports_.push_back(std::make_unique<Port>(sched, std::move(q), bps, delay, std::move(name)));
  return ports_.back().get();
}

PacketMailbox* ShardedDumbbell::add_mailbox(std::size_t lane, Node* dest) {
  mailboxes_.push_back(std::make_unique<PacketMailbox>(dest));
  PacketMailbox* mb = mailboxes_.back().get();
  inbound_[lane].push_back(mb);
  return mb;
}

ShardedDumbbell::ShardedDumbbell(sim::ShardedEngine& engine, const DumbbellConfig& cfg,
                                 std::size_t workers)
    : engine_(engine), cfg_(cfg), workers_(workers) {
  assert(workers_ >= 1);
  assert(engine_.lanes() == workers_ + 1);
  inbound_.resize(workers_ + 1);
  sim::Scheduler& net_sched = engine_.lane(net_lane());

  // The shared middle, all in the network lane. Router ids stay 3/4 as in
  // the single-threaded dumbbell.
  router1_ = std::make_unique<Router>(3, "router1-wash");
  router2_ = std::make_unique<Router>(4, "router2-ncsa");

  auto fifo = [&](sim::Scheduler& s) {
    return std::make_unique<aqm::FifoQueue>(s, cfg_.access_buffer_bytes);
  };

  auto bottleneck_q = aqm::make_queue_disc(cfg_.aqm, net_sched, cfg_.bottleneck_buffer_bytes,
                                           cfg_.seed, cfg_.aqm_options);
  if (cfg_.random_loss > 0) {
    bottleneck_q = std::make_unique<aqm::LossInjector>(net_sched, std::move(bottleneck_q),
                                                       cfg_.random_loss, cfg_.seed ^ 0x1055);
  }
  if (cfg_.ge_loss.enabled()) {
    bottleneck_q = std::make_unique<fault::GilbertElliottLoss>(
        net_sched, std::move(bottleneck_q), cfg_.ge_loss, cfg_.seed ^ 0x6e55);
  }
  bottleneck_ = add_port(net_sched, std::move(bottleneck_q), cfg_.bottleneck_bps,
                         cfg_.trunk_delay, "r1->r2(bottleneck)");
  bottleneck_->connect(router2_.get());
  Port* r2_r1 = add_port(net_sched, fifo(net_sched), cfg_.trunk_bps, cfg_.trunk_delay,
                         "r2->r1");
  r2_r1->connect(router1_.get());

  // Per-worker edge: private hosts and access links, every one of which
  // crosses a lane boundary through a mailbox. Node ids 10+ keep clear of
  // the routers' 3/4.
  clients_.resize(workers_ * 2);
  servers_.resize(workers_ * 2);
  for (std::size_t w = 0; w < workers_; ++w) {
    sim::Scheduler& ws = engine_.lane(w);
    for (int side = 0; side < 2; ++side) {
      const auto idx = w * 2 + static_cast<std::size_t>(side);
      const NodeId client_id = static_cast<NodeId>(10 + 4 * w) + static_cast<NodeId>(side);
      const NodeId server_id = client_id + 2;
      const std::string tag = "w" + std::to_string(w) + "s" + std::to_string(side);

      clients_[idx] = std::make_unique<Host>(client_id, "client-" + tag);
      servers_[idx] = std::make_unique<Host>(server_id, "server-" + tag);
      Host* c = clients_[idx].get();
      Host* v = servers_[idx].get();

      // Uplinks live in the worker lane and post into the network lane.
      Port* c_up = add_port(ws, fifo(ws), cfg_.access_bps, cfg_.client_delay,
                            "c(" + tag + ")->r1");
      c_up->set_remote_sink(add_mailbox(net_lane(), router1_.get()));
      c->attach_nic(c_up);
      Port* v_up = add_port(ws, fifo(ws), cfg_.access_bps, cfg_.server_delay,
                            "s(" + tag + ")->r2");
      v_up->set_remote_sink(add_mailbox(net_lane(), router2_.get()));
      v->attach_nic(v_up);

      // Downlinks live in the network lane and post back into the worker.
      Port* c_down = add_port(net_sched, fifo(net_sched), cfg_.access_bps,
                              cfg_.client_delay, "r1->c(" + tag + ")");
      c_down->set_remote_sink(add_mailbox(w, c));
      Port* v_down = add_port(net_sched, fifo(net_sched), cfg_.access_bps,
                              cfg_.server_delay, "r2->s(" + tag + ")");
      v_down->set_remote_sink(add_mailbox(w, v));

      router1_->set_route(client_id, c_down);
      router1_->set_route(server_id, bottleneck_);
      router2_->set_route(server_id, v_down);
      router2_->set_route(client_id, r2_r1);
    }
  }
}

sim::Time ShardedDumbbell::lookahead() const {
  return std::min(cfg_.client_delay, cfg_.server_delay);
}

void ShardedDumbbell::drain_lane(std::size_t lane, sim::Scheduler& sched) {
  for (PacketMailbox* mb : inbound_[lane]) mb->drain_into(sched);
}

}  // namespace elephant::net
