#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/snapshot.hpp"

namespace elephant::net {

class Port;

/// Anything that terminates a flow on a host: a TCP sender or receiver.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void on_packet(Packet&& p) = 0;
};

/// A network node addressed by NodeId.
class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual void receive(Packet&& p) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

/// A router: forwards by destination using a static route table (the paper
/// configured static routes on the FABRIC routing nodes).
class Router : public Node {
 public:
  using Node::Node;

  void set_route(NodeId dst, Port* out) { routes_[dst] = out; }
  void receive(Packet&& p) override;

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t no_route_drops() const { return no_route_drops_; }

  /// Snapshot the mutable state (counters only — the route table is static
  /// after topology construction).
  void save(sim::SnapshotWriter& w) const {
    w.put_u64(forwarded_);
    w.put_u64(no_route_drops_);
  }
  void load(sim::SnapshotReader& r) {
    forwarded_ = r.get_u64();
    no_route_drops_ = r.get_u64();
  }

 private:
  std::unordered_map<NodeId, Port*> routes_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t no_route_drops_ = 0;
};

/// An end host with a single NIC; demultiplexes arriving packets to the
/// registered per-flow endpoint (data to receivers, ACKs to senders).
///
/// Flow ids are small dense integers (FlowFactory numbers them 1..N), so the
/// endpoint table is a flat vector indexed by flow id: the per-packet
/// demultiplex is one predictable load instead of a hash-bucket chase —
/// at 100k flows the unordered_map paid two cache misses per delivered
/// packet right on the hot path.
class Host : public Node {
 public:
  using Node::Node;

  void attach_nic(Port* nic) { nic_ = nic; }
  void register_endpoint(FlowId flow, PacketHandler* h) {
    if (flow >= endpoints_.size()) {
      endpoints_.resize(std::max<std::size_t>(flow + 1, endpoints_.size() * 2), nullptr);
    }
    endpoints_[flow] = h;
  }

  /// Send a locally originated packet out of the NIC.
  void transmit(Packet&& p);

  void receive(Packet&& p) override;

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t no_endpoint_drops() const { return no_endpoint_drops_; }

  /// Snapshot the mutable state (counters only — the NIC binding and the
  /// endpoint table are static after cell setup; the model checker never
  /// snapshots across a flow-registration boundary).
  void save(sim::SnapshotWriter& w) const {
    w.put_u64(delivered_);
    w.put_u64(no_endpoint_drops_);
  }
  void load(sim::SnapshotReader& r) {
    delivered_ = r.get_u64();
    no_endpoint_drops_ = r.get_u64();
  }

 private:
  Port* nic_ = nullptr;
  std::vector<PacketHandler*> endpoints_;  ///< indexed by FlowId; null = unbound
  std::uint64_t delivered_ = 0;
  std::uint64_t no_endpoint_drops_ = 0;
};

}  // namespace elephant::net
