#include "net/topology.hpp"

#include <utility>

#include "aqm/fifo.hpp"
#include "aqm/loss_injector.hpp"
#include "fault/gilbert_elliott.hpp"

namespace elephant::net {

Port* Dumbbell::add_port(std::unique_ptr<aqm::QueueDisc> q, double bps, sim::Time delay,
                         Node* to, std::string name) {
  ports_.push_back(std::make_unique<Port>(sched_, std::move(q), bps, delay, std::move(name)));
  Port* p = ports_.back().get();
  p->connect(to);
  return p;
}

Dumbbell::Dumbbell(sim::Scheduler& sched, const DumbbellConfig& cfg) : sched_(sched), cfg_(cfg) {
  // Node ids: clients 1-2, routers 3-4, servers 5-6.
  clients_.push_back(std::make_unique<Host>(1, "client1"));
  clients_.push_back(std::make_unique<Host>(2, "client2"));
  router1_ = std::make_unique<Router>(3, "router1-wash");
  router2_ = std::make_unique<Router>(4, "router2-ncsa");
  servers_.push_back(std::make_unique<Host>(5, "server1"));
  servers_.push_back(std::make_unique<Host>(6, "server2"));

  auto fifo = [&](const char* tag) {
    (void)tag;
    return std::make_unique<aqm::FifoQueue>(sched_, cfg_.access_buffer_bytes);
  };

  // Client NICs (Clemson → WASH) and the return ports.
  Port* c1_up = add_port(fifo("c1"), cfg_.access_bps, cfg_.client_delay, router1_.get(), "c1->r1");
  Port* c2_up = add_port(fifo("c2"), cfg_.access_bps, cfg_.client_delay, router1_.get(), "c2->r1");
  Port* r1_c1 = add_port(fifo("r1c1"), cfg_.access_bps, cfg_.client_delay, clients_[0].get(), "r1->c1");
  Port* r1_c2 = add_port(fifo("r1c2"), cfg_.access_bps, cfg_.client_delay, clients_[1].get(), "r1->c2");
  clients_[0]->attach_nic(c1_up);
  clients_[1]->attach_nic(c2_up);

  // The bottleneck: router1 → router2, shaped to the configured rate with
  // the experiment's AQM (the `tc` target in the paper). The reverse
  // direction is an unshaped 100G trunk.
  auto bottleneck_q = aqm::make_queue_disc(cfg_.aqm, sched_, cfg_.bottleneck_buffer_bytes,
                                           cfg_.seed, cfg_.aqm_options);
  if (cfg_.random_loss > 0) {
    bottleneck_q = std::make_unique<aqm::LossInjector>(sched_, std::move(bottleneck_q),
                                                       cfg_.random_loss, cfg_.seed ^ 0x1055);
  }
  if (cfg_.ge_loss.enabled()) {
    bottleneck_q = std::make_unique<fault::GilbertElliottLoss>(
        sched_, std::move(bottleneck_q), cfg_.ge_loss, cfg_.seed ^ 0x6e55);
  }
  bottleneck_ = add_port(std::move(bottleneck_q), cfg_.bottleneck_bps, cfg_.trunk_delay,
                         router2_.get(), "r1->r2(bottleneck)");
  Port* r2_r1 = add_port(fifo("trunkrev"), cfg_.trunk_bps, cfg_.trunk_delay, router1_.get(), "r2->r1");

  // Server side (NCSA → TACC).
  Port* r2_s1 = add_port(fifo("r2s1"), cfg_.access_bps, cfg_.server_delay, servers_[0].get(), "r2->s1");
  Port* r2_s2 = add_port(fifo("r2s2"), cfg_.access_bps, cfg_.server_delay, servers_[1].get(), "r2->s2");
  Port* s1_up = add_port(fifo("s1"), cfg_.access_bps, cfg_.server_delay, router2_.get(), "s1->r2");
  Port* s2_up = add_port(fifo("s2"), cfg_.access_bps, cfg_.server_delay, router2_.get(), "s2->r2");
  servers_[0]->attach_nic(s1_up);
  servers_[1]->attach_nic(s2_up);

  // Static routes, as in the paper's Layer 3 setup.
  router1_->set_route(1, r1_c1);
  router1_->set_route(2, r1_c2);
  router1_->set_route(5, bottleneck_);
  router1_->set_route(6, bottleneck_);
  router2_->set_route(5, r2_s1);
  router2_->set_route(6, r2_s2);
  router2_->set_route(1, r2_r1);
  router2_->set_route(2, r2_r1);
}

}  // namespace elephant::net
