#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace elephant::tcp {

/// Rate/RTT sample source: the most recently sent, never-retransmitted unit
/// delivered by the current ACK (Karn's rule). Ties keep the first unit
/// encountered (strict `>`), which pins the sample to the lowest sequence
/// number among same-instant sends — the order the cumulative scan visits.
struct DeliverySample {
  sim::Time sent_time = sim::Time::zero();
  double delivered_at_send = 0;
  sim::Time delivered_time_at_send = sim::Time::zero();
  bool has_sample = false;  // explicit: packets sent at t=0 are valid too

  void consider(std::uint8_t retx, sim::Time sent, double delivered,
                sim::Time delivered_time) {
    if (retx == 0 && (!has_sample || sent > sent_time)) {
      sent_time = sent;
      delivered_at_send = delivered;
      delivered_time_at_send = delivered_time;
      has_sample = true;
    }
  }
  [[nodiscard]] bool valid() const { return has_sample; }
};

/// Shared accounting for scoreboard window storage across a set of flows.
/// grow()/release() keep `current` exact, so `peak` is the high-water of
/// *concurrently live* window bytes — the number that actually bounds a
/// many-flow cell's memory, since completed flows release their windows.
struct ScoreboardLedger {
  std::size_t current = 0;
  std::size_t peak = 0;
};

/// SACK scoreboard in struct-of-arrays layout with packed flag bitmaps.
///
/// The live window [una_, next_seq_) maps onto a power-of-two ring: unit
/// `abs` lives in slot `abs & mask_`. Because the capacity is a multiple of
/// 64, bit `abs & 63` of word `(abs & mask_) >> 6` is unit `abs`'s flag bit,
/// and a 64-aligned run of sequence numbers is exactly one bitmap word — so
/// loss marking, RTO sweeps, cumulative-ACK resolution, and retransmit picks
/// scan whole words (`std::countr_zero` / `std::popcount`) instead of
/// walking ~40-byte structs. Time/rate fields sit in parallel arrays touched
/// only for the units an ACK actually resolves.
///
/// Flag invariants (hold between calls, relied on by the word scans):
///   - inflight ⇒ ¬sacked ∧ ¬lost   (sacking and loss-marking clear inflight)
///   - lost    ⇒ ¬inflight          (retransmission clears lost, sets inflight)
///   - pipe_units_  == popcount(inflight over [una_, next_seq_))
///   - lost_pending_ counts lost-not-yet-retransmitted units, except a
///     transient overcount after an RTO re-marks already-lost units; all
///     decrements are floored at zero and pick_retx() resets a stale counter.
///   - min_unresolved_ only ever advances over a fully SACKed prefix, so no
///     lost unit is ever below it.
///
/// The arithmetic, scan order, and therefore every emitted trace record are
/// identical to the historical RingDeque<UnitState> array-of-structs layout;
/// golden digests prove it (tests/determinism_digest_test.cpp) and the
/// lockstep property test drives both layouts through randomized
/// SACK/loss/RTO sequences (tests/tcp_scoreboard_test.cpp).
class Scoreboard {
 public:
  Scoreboard() = default;

  [[nodiscard]] std::uint64_t una() const { return una_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  [[nodiscard]] std::uint64_t pipe_units() const { return pipe_units_; }
  [[nodiscard]] std::uint64_t lost_pending() const { return lost_pending_; }
  [[nodiscard]] std::uint64_t min_unresolved() const { return min_unresolved_; }
  [[nodiscard]] std::uint64_t highest_sacked() const { return highest_sacked_; }
  [[nodiscard]] sim::Time latest_sacked_sent_time() const { return latest_sacked_sent_time_; }

  [[nodiscard]] bool is_inflight(std::uint64_t abs) const { return test(inflight_, abs); }
  [[nodiscard]] bool is_sacked(std::uint64_t abs) const { return test(sacked_, abs); }
  [[nodiscard]] bool is_lost(std::uint64_t abs) const { return test(lost_, abs); }
  [[nodiscard]] bool is_delivered_counted(std::uint64_t abs) const {
    return test(delivered_, abs);
  }
  [[nodiscard]] std::uint8_t retx_of(std::uint64_t abs) const { return retx_[slot(abs)]; }
  [[nodiscard]] sim::Time sent_time_of(std::uint64_t abs) const { return sent_time_[slot(abs)]; }

  /// Record the (re)transmission of unit `abs`. For `abs == next_seq()` this
  /// appends a fresh unit; otherwise `abs` must be marked lost (the only
  /// units pick_retx() returns) and the retransmit clears the mark, bumps
  /// the retx counter (mod-256, matching the historical uint8 wrap — golden
  /// traces contain wraps, so saturating here would drift the digests), and
  /// pulls the scan hint back so loss marking rescans it. Returns the
  /// unit's retx count after the send — the value the flight recorder logs.
  std::uint8_t record_send(std::uint64_t abs, sim::Time now, double delivered_segments,
                           sim::Time delivered_time_eff) {
    const bool is_retx = abs < next_seq_;
    if (!is_retx) {
      assert(abs == next_seq_);
      if (next_seq_ - una_ == capacity_) grow();
      ++next_seq_;
      retx_[slot(abs)] = 0;
      assert(!test(inflight_, abs) && !test(sacked_, abs) && !test(lost_, abs) &&
             !test(delivered_, abs));
    } else {
      assert(test(lost_, abs) && !test(inflight_, abs));
      clear(lost_, abs);
      ++retx_[slot(abs)];  // wraps at 256, as the AoS layout always did
      if (lost_pending_ > 0) --lost_pending_;
      min_unresolved_ = std::min(min_unresolved_, abs);
    }
    const std::uint32_t s = slot(abs);
    sent_time_[s] = now;
    delivered_at_send_[s] = delivered_segments;
    delivered_time_at_send_[s] = delivered_time_eff;
    set(inflight_, abs);
    ++pipe_units_;
    return retx_[s];
  }

  /// Cumulative-ACK advance to `ack_to` (caller clamps to next_seq()).
  /// Resolves every unit below it word-at-a-time: drops in-flight units from
  /// pipe, cancels pending-lost counts, credits units not yet SACK-delivered
  /// to `*newly` (feeding `newest` in ascending sequence order, as the
  /// per-unit walk did), and wipes the slots for ring reuse. Returns whether
  /// una advanced.
  bool advance_una(std::uint64_t ack_to, std::uint64_t* newly, DeliverySample* newest) {
    assert(ack_to <= next_seq_);
    const bool progressed = ack_to > una_;
    for (std::uint64_t abs = una_; abs < ack_to;) {
      const std::uint64_t chunk_end = std::min(ack_to, (abs | 63) + 1);
      const std::size_t w = word(abs);
      const std::uint64_t base = abs & ~std::uint64_t{63};
      const std::uint64_t m = range_mask(abs - base, chunk_end - base);

      pipe_units_ -= static_cast<std::uint64_t>(std::popcount(inflight_[w] & m));
      lost_pending_ -= std::min(
          static_cast<std::uint64_t>(std::popcount(lost_[w] & m)), lost_pending_);
      std::uint64_t todo = ~delivered_[w] & m;
      *newly += static_cast<std::uint64_t>(std::popcount(todo));
      while (todo != 0) {
        const std::uint64_t a = base + static_cast<unsigned>(std::countr_zero(todo));
        todo &= todo - 1;
        const std::uint32_t s = slot(a);
        newest->consider(retx_[s], sent_time_[s], delivered_at_send_[s],
                         delivered_time_at_send_[s]);
      }
      inflight_[w] &= ~m;
      sacked_[w] &= ~m;
      lost_[w] &= ~m;
      delivered_[w] &= ~m;
      abs = chunk_end;
    }
    una_ = ack_to;
    min_unresolved_ = std::max(min_unresolved_, una_);
    return progressed;
  }

  /// Apply one SACK block [start, end). Newly SACKed units leave the pipe,
  /// cancel pending retransmits, and count as delivered; fully-SACKed words
  /// are skipped without touching the parallel arrays. `on_sack(abs, retx)`
  /// fires per newly SACKed unit, ascending, after all counters update — the
  /// tracer sees the post-update pipe.
  template <typename OnSack>
  void sack_range(std::uint64_t start, std::uint64_t end, std::uint64_t* newly,
                  DeliverySample* newest, OnSack&& on_sack) {
    // Everything below min_unresolved_ is already SACKed (the scan-hint
    // invariant), so long-established blocks cost nothing to reprocess.
    const std::uint64_t lo = std::max(start, std::max(una_, min_unresolved_));
    const std::uint64_t hi = std::min(end, next_seq_);
    for (std::uint64_t abs = lo; abs < hi;) {
      const std::uint64_t chunk_end = std::min(hi, (abs | 63) + 1);
      const std::size_t w = word(abs);
      const std::uint64_t base = abs & ~std::uint64_t{63};
      const std::uint64_t m = range_mask(abs - base, chunk_end - base);

      std::uint64_t fresh = ~sacked_[w] & m;
      while (fresh != 0) {
        const std::uint64_t a = base + static_cast<unsigned>(std::countr_zero(fresh));
        fresh &= fresh - 1;
        const std::uint64_t bit = std::uint64_t{1} << (a & 63);
        sacked_[w] |= bit;
        if (inflight_[w] & bit) {
          inflight_[w] &= ~bit;
          --pipe_units_;
        }
        if (lost_[w] & bit) {
          // Was marked lost but arrived after all; cancel the pending retx.
          lost_[w] &= ~bit;
          if (lost_pending_ > 0) --lost_pending_;
        }
        const std::uint32_t s = slot(a);
        if (!(delivered_[w] & bit)) {
          delivered_[w] |= bit;
          ++*newly;
          newest->consider(retx_[s], sent_time_[s], delivered_at_send_[s],
                           delivered_time_at_send_[s]);
        }
        if (sent_time_[s] > latest_sacked_sent_time_) latest_sacked_sent_time_ = sent_time_[s];
        if (a + 1 > highest_sacked_) highest_sacked_ = a + 1;
        on_sack(a, retx_[s]);
      }
      abs = chunk_end;
    }
  }

  /// FACK-with-RACK-timing loss marking below the forward-most SACK.
  /// Candidates are in-flight words (`inflight ⇒ ¬sacked ∧ ¬lost`), checked
  /// per-bit against the latest SACKed send time; the scan hint advances
  /// only over the SACKed prefix. `on_loss(abs, retx)` fires per marked
  /// unit, ascending, after counters update. Returns units newly marked.
  template <typename OnLoss>
  std::uint64_t mark_losses(std::uint32_t reorder_units, OnLoss&& on_loss) {
    if (highest_sacked_ <= una_) return 0;
    const std::uint64_t fack_limit =
        highest_sacked_ > reorder_units ? highest_sacked_ - reorder_units : 0;
    std::uint64_t newly_lost = 0;
    // The hint may only advance over a SACKed prefix: lost-but-unsent units
    // below it would otherwise be skipped by pick_retx().
    bool prefix_resolved = true;
    for (std::uint64_t abs = std::max(min_unresolved_, una_); abs < fack_limit;) {
      const std::uint64_t chunk_end = std::min(fack_limit, (abs | 63) + 1);
      const std::size_t w = word(abs);
      const std::uint64_t base = abs & ~std::uint64_t{63};
      const std::uint64_t m = range_mask(abs - base, chunk_end - base);

      if (prefix_resolved) {
        const std::uint64_t not_sacked = ~sacked_[w] & m;
        if (not_sacked == 0) {
          min_unresolved_ = chunk_end;
          abs = chunk_end;
          continue;
        }
        const std::uint64_t first =
            base + static_cast<unsigned>(std::countr_zero(not_sacked));
        if (first > abs) min_unresolved_ = first;
        prefix_resolved = false;
      }
      std::uint64_t cand = inflight_[w] & m;
      while (cand != 0) {
        const std::uint64_t a = base + static_cast<unsigned>(std::countr_zero(cand));
        cand &= cand - 1;
        const std::uint32_t s = slot(a);
        if (sent_time_[s] <= latest_sacked_sent_time_) {
          // FACK rule with RACK-style ordering: at least reorder_units units
          // sent after this one have been SACKed.
          const std::uint64_t bit = std::uint64_t{1} << (a & 63);
          lost_[w] |= bit;
          inflight_[w] &= ~bit;
          --pipe_units_;
          ++lost_pending_;
          ++newly_lost;
          on_loss(a, retx_[s]);
        }
      }
      abs = chunk_end;
    }
    return newly_lost;
  }

  /// RTO: everything in flight is presumed lost; SACKed units are retained
  /// (no reneging model). Recounts lost_pending_ over every non-SACKed unit
  /// — including ones already marked — exactly as the per-unit sweep did.
  std::uint64_t rto_mark_all() {
    lost_pending_ = 0;
    for (std::uint64_t abs = una_; abs < next_seq_;) {
      const std::uint64_t chunk_end = std::min(next_seq_, (abs | 63) + 1);
      const std::size_t w = word(abs);
      const std::uint64_t base = abs & ~std::uint64_t{63};
      const std::uint64_t m = range_mask(abs - base, chunk_end - base);

      const std::uint64_t not_sacked = ~sacked_[w] & m;
      pipe_units_ -= static_cast<std::uint64_t>(std::popcount(inflight_[w] & m));
      inflight_[w] &= ~m;
      lost_[w] |= not_sacked;
      lost_pending_ += static_cast<std::uint64_t>(std::popcount(not_sacked));
      abs = chunk_end;
    }
    min_unresolved_ = una_;
    return lost_pending_;
  }

  /// Lowest lost-and-not-yet-retransmitted unit, or nullopt (after zeroing a
  /// stale lost_pending_ counter, so the caller falls through to new data).
  [[nodiscard]] std::optional<std::uint64_t> pick_retx() {
    if (lost_pending_ == 0) return std::nullopt;
    for (std::uint64_t abs = std::max(min_unresolved_, una_); abs < next_seq_;) {
      const std::uint64_t chunk_end = std::min(next_seq_, (abs | 63) + 1);
      const std::size_t w = word(abs);
      const std::uint64_t base = abs & ~std::uint64_t{63};
      const std::uint64_t m = range_mask(abs - base, chunk_end - base);
      const std::uint64_t cand = lost_[w] & m;
      if (cand != 0) return base + static_cast<unsigned>(std::countr_zero(cand));
      abs = chunk_end;
    }
    lost_pending_ = 0;  // stale counter; caller falls through to new data
    return std::nullopt;
  }

  /// Drop the window storage after a finite transfer completes (the live
  /// range is empty, so every scan is a no-op afterwards). Grow-only rings
  /// would otherwise pin their peak allocation for the rest of a sweep.
  void release() {
    assert(una_ == next_seq_);
    if (ledger_ != nullptr) ledger_->current -= memory_bytes();
    capacity_ = 0;
    mask_ = 0;
    std::vector<sim::Time>().swap(sent_time_);
    std::vector<sim::Time>().swap(delivered_time_at_send_);
    std::vector<double>().swap(delivered_at_send_);
    std::vector<std::uint8_t>().swap(retx_);
    std::vector<std::uint64_t>().swap(inflight_);
    std::vector<std::uint64_t>().swap(sacked_);
    std::vector<std::uint64_t>().swap(lost_);
    std::vector<std::uint64_t>().swap(delivered_);
  }

  /// Current heap bytes held by the window arrays.
  [[nodiscard]] std::size_t memory_bytes() const {
    return capacity_ * (2 * sizeof(sim::Time) + sizeof(double) + sizeof(std::uint8_t)) +
           (capacity_ / 64) * 4 * sizeof(std::uint64_t);
  }
  /// High-water memory_bytes() over the scoreboard's lifetime (survives
  /// release(), so end-of-run telemetry sees completed flows' peaks).
  [[nodiscard]] std::size_t peak_memory_bytes() const { return peak_bytes_; }

  /// Attach shared live-bytes accounting (null detaches). Attach before the
  /// first send; the current window bytes are folded in immediately.
  void set_ledger(ScoreboardLedger* ledger) {
    ledger_ = ledger;
    if (ledger_ != nullptr) {
      ledger_->current += memory_bytes();
      ledger_->peak = std::max(ledger_->peak, ledger_->current);
    }
  }

  /// Snapshot the full window state — scalars, ring geometry, parallel
  /// arrays, and flag bitmaps (sim::Snapshottable contract). The ledger
  /// pointer is wiring, not state: load() keeps the attached ledger and
  /// swaps the restored window's byte count in for the current one, so a
  /// restore across a grow() or release() leaves the shared account exact.
  void save(sim::SnapshotWriter& w) const {
    w.put_u64(una_);
    w.put_u64(next_seq_);
    w.put_u64(pipe_units_);
    w.put_u64(lost_pending_);
    w.put_u64(min_unresolved_);
    w.put_u64(highest_sacked_);
    w.put_pod(latest_sacked_sent_time_);
    w.put_u64(capacity_);
    w.put_u64(mask_);
    w.put_u64(peak_bytes_);
    w.put_pod_vector(sent_time_);
    w.put_pod_vector(delivered_time_at_send_);
    w.put_pod_vector(delivered_at_send_);
    w.put_pod_vector(retx_);
    w.put_pod_vector(inflight_);
    w.put_pod_vector(sacked_);
    w.put_pod_vector(lost_);
    w.put_pod_vector(delivered_);
  }
  void load(sim::SnapshotReader& r) {
    if (ledger_ != nullptr) ledger_->current -= memory_bytes();
    una_ = r.get_u64();
    next_seq_ = r.get_u64();
    pipe_units_ = r.get_u64();
    lost_pending_ = r.get_u64();
    min_unresolved_ = r.get_u64();
    highest_sacked_ = r.get_u64();
    r.get_pod(&latest_sacked_sent_time_);
    capacity_ = r.get_u64();
    mask_ = r.get_u64();
    peak_bytes_ = static_cast<std::size_t>(r.get_u64());
    r.get_pod_vector(&sent_time_);
    r.get_pod_vector(&delivered_time_at_send_);
    r.get_pod_vector(&delivered_at_send_);
    r.get_pod_vector(&retx_);
    r.get_pod_vector(&inflight_);
    r.get_pod_vector(&sacked_);
    r.get_pod_vector(&lost_);
    r.get_pod_vector(&delivered_);
    if (ledger_ != nullptr) {
      ledger_->current += memory_bytes();
      ledger_->peak = std::max(ledger_->peak, ledger_->current);
    }
  }

 private:
  [[nodiscard]] std::uint32_t slot(std::uint64_t abs) const {
    return static_cast<std::uint32_t>(abs & mask_);
  }
  [[nodiscard]] std::size_t word(std::uint64_t abs) const {
    return static_cast<std::size_t>((abs & mask_) >> 6);
  }
  [[nodiscard]] bool test(const std::vector<std::uint64_t>& bm, std::uint64_t abs) const {
    return (bm[word(abs)] >> (abs & 63)) & 1;
  }
  void set(std::vector<std::uint64_t>& bm, std::uint64_t abs) {
    bm[word(abs)] |= std::uint64_t{1} << (abs & 63);
  }
  void clear(std::vector<std::uint64_t>& bm, std::uint64_t abs) {
    bm[word(abs)] &= ~(std::uint64_t{1} << (abs & 63));
  }
  /// Bits [lo, hi) of one word, 0 <= lo < hi <= 64.
  [[nodiscard]] static std::uint64_t range_mask(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t upper = hi == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << hi) - 1;
    return upper & ~((std::uint64_t{1} << lo) - 1);
  }

  void grow() {
    const std::size_t bytes_before = memory_bytes();
    const std::uint64_t ncap = std::max<std::uint64_t>(64, capacity_ * 2);
    const std::uint64_t nmask = ncap - 1;
    std::vector<sim::Time> nsent(ncap);
    std::vector<sim::Time> ndtas(ncap);
    std::vector<double> ndas(ncap, 0.0);
    std::vector<std::uint8_t> nretx(ncap, 0);
    std::vector<std::uint64_t> ninflight(ncap / 64, 0);
    std::vector<std::uint64_t> nsacked(ncap / 64, 0);
    std::vector<std::uint64_t> nlost(ncap / 64, 0);
    std::vector<std::uint64_t> ndelivered(ncap / 64, 0);
    for (std::uint64_t abs = una_; abs < next_seq_; ++abs) {
      const std::uint32_t os = slot(abs);
      const std::uint32_t ns = static_cast<std::uint32_t>(abs & nmask);
      nsent[ns] = sent_time_[os];
      ndtas[ns] = delivered_time_at_send_[os];
      ndas[ns] = delivered_at_send_[os];
      nretx[ns] = retx_[os];
      const std::uint64_t bit = std::uint64_t{1} << (abs & 63);
      const std::size_t ow = word(abs);
      const std::size_t nw = static_cast<std::size_t>((abs & nmask) >> 6);
      if (inflight_[ow] & bit) ninflight[nw] |= bit;
      if (sacked_[ow] & bit) nsacked[nw] |= bit;
      if (lost_[ow] & bit) nlost[nw] |= bit;
      if (delivered_[ow] & bit) ndelivered[nw] |= bit;
    }
    sent_time_ = std::move(nsent);
    delivered_time_at_send_ = std::move(ndtas);
    delivered_at_send_ = std::move(ndas);
    retx_ = std::move(nretx);
    inflight_ = std::move(ninflight);
    sacked_ = std::move(nsacked);
    lost_ = std::move(nlost);
    delivered_ = std::move(ndelivered);
    capacity_ = ncap;
    mask_ = nmask;
    peak_bytes_ = std::max(peak_bytes_, memory_bytes());
    if (ledger_ != nullptr) {
      ledger_->current += memory_bytes() - bytes_before;
      ledger_->peak = std::max(ledger_->peak, ledger_->current);
    }
  }

  // Window scalars.
  std::uint64_t una_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pipe_units_ = 0;
  std::uint64_t lost_pending_ = 0;    // lost units not yet retransmitted
  std::uint64_t min_unresolved_ = 0;  // scan hint for loss marking / retx pick
  std::uint64_t highest_sacked_ = 0;  // absolute unit + 1 (0 = none)
  sim::Time latest_sacked_sent_time_ = sim::Time::zero();

  // Ring geometry: power-of-two capacity, multiple of 64.
  std::uint64_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::size_t peak_bytes_ = 0;
  ScoreboardLedger* ledger_ = nullptr;  ///< optional shared live-bytes account

  // Parallel arrays (slot-indexed) + flag bitmaps (one bit per slot).
  std::vector<sim::Time> sent_time_;
  std::vector<sim::Time> delivered_time_at_send_;
  std::vector<double> delivered_at_send_;  // segments
  std::vector<std::uint8_t> retx_;
  std::vector<std::uint64_t> inflight_;
  std::vector<std::uint64_t> sacked_;
  std::vector<std::uint64_t> lost_;   // marked lost, awaiting retransmission
  std::vector<std::uint64_t> delivered_;  // counted toward delivered_segments
};

}  // namespace elephant::tcp
