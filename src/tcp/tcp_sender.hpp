#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "cca/congestion_control.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/scoreboard.hpp"
#include "trace/trace.hpp"

namespace elephant::obs {
struct TcpMetrics;
}  // namespace elephant::obs

namespace elephant::tcp {

/// Canonical bytes → transmission-units conversion (round up to whole
/// units of `agg` segments). The single source of truth for every
/// transfer-size and offer_bytes computation.
[[nodiscard]] constexpr std::uint64_t bytes_to_units(std::uint64_t bytes, std::uint32_t mss,
                                                     std::uint32_t agg) {
  const std::uint64_t unit_bytes = std::uint64_t{mss} * agg;
  return (bytes + unit_bytes - 1) / unit_bytes;
}

/// Per-flow sender configuration.
struct TcpSenderConfig {
  net::FlowId flow = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  std::uint32_t mss = 8900;  ///< wire bytes per segment (paper: jumbo 8900 B)
  std::uint32_t agg = 1;     ///< segments per transmission unit (TSO/GRO analogue)
  sim::Time start_time = sim::Time::zero();
  std::uint64_t transfer_units = 0;  ///< stop after this many units (0 = unbounded elephant)
  /// Application-limited mode: the sender transmits only data the application
  /// has offered via offer_units(), idling (pipe drained, timers quiescent)
  /// in between. Used by on/off workload sources; incompatible with
  /// transfer_units (a finite transfer is fully available at start) — the
  /// sender asserts the combination away at construction.
  bool app_limited = false;
  bool ecn = false;               ///< mark packets ECT
  bool pace_always = false;       ///< ablation: pace loss-based CCAs at 2*cwnd/srtt
  sim::Time min_rto = sim::Time::milliseconds(200);
  std::uint32_t reorder_units = 3;  ///< FACK/dupack loss threshold in units
};

/// Counters exposed for experiments; segment counts are MSS-granular.
struct TcpSenderStats {
  std::uint64_t units_sent = 0;
  std::uint64_t retx_units = 0;  ///< retransmitted units (iperf3 "Retr" analogue)
  std::uint64_t rtos = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t congestion_events = 0;
  std::uint64_t lost_units_marked = 0;
};

/// A bulk-transfer ("elephant") TCP sender.
///
/// Implements the transport machinery shared by every CCA the paper tests:
/// a SACK scoreboard (struct-of-arrays with packed flag bitmaps — see
/// tcp/scoreboard.hpp), FACK-with-RACK-timing loss marking, NewReno-style
/// recovery episodes, RFC 6298 RTO with exponential backoff, delivery-rate
/// sampling (for BBR), packet-timed round tracking, and optional pacing.
/// Congestion decisions are delegated entirely to the plugged
/// cca::CongestionControl.
///
/// Sequence space is in transmission units of `agg` segments; all CCA
/// accounting is converted to segments so algorithm constants keep their
/// RFC meanings under aggregation.
class TcpSender : public net::PacketHandler {
 public:
  /// Arena-friendly C-style callback: no captures, no allocation.
  using Callback = void (*)(void*);

  /// Non-owning congestion controller: the caller (typically a per-kind
  /// cca slab) keeps `cc` alive for the sender's lifetime. This is the
  /// allocation-free path high-flow-count cells use.
  TcpSender(sim::Scheduler& sched, net::Host& local, TcpSenderConfig cfg,
            cca::CongestionControl* cc);
  /// Owning convenience overload for tests/examples built around
  /// cca::make_cca().
  TcpSender(sim::Scheduler& sched, net::Host& local, TcpSenderConfig cfg,
            std::unique_ptr<cca::CongestionControl> cc);

  /// Begin transmitting at cfg.start_time.
  void start();
  /// Stop offering new data (in-flight data still completes).
  void stop() { stopped_ = true; }

  /// App-limited mode: make `units` more transmission units available and
  /// (re)start transmission. No-op unless cfg.app_limited.
  void offer_units(std::uint64_t units);
  /// Convenience wrapper: bytes rounded up to whole transmission units.
  void offer_bytes(std::uint64_t bytes) { offer_units(bytes_to_units(bytes, cfg_.mss, cfg_.agg)); }
  /// Units the application has offered so far (app-limited mode).
  [[nodiscard]] std::uint64_t offered_units() const { return app_limit_units_; }

  /// Invoked exactly once when a finite transfer completes (every unit
  /// cumulatively acknowledged). By the time it runs the sender has torn
  /// itself down: both timers are disarmed and the scoreboard storage is
  /// released, so a completed flow holds no scheduler events and no
  /// window memory.
  void set_on_complete(Callback cb, void* ctx) {
    on_complete_ = cb;
    on_complete_ctx_ = ctx;
  }
  /// Capturing-lambda convenience overload (boxes the callable; fine for
  /// tests, avoided by the flow factory's static-thunk path).
  void set_on_complete(std::function<void()> cb) {
    boxed_on_complete_ = std::move(cb);
    on_complete_ = [](void* ctx) { (*static_cast<std::function<void()>*>(ctx))(); };
    on_complete_ctx_ = &boxed_on_complete_;
  }
  /// Invoked each time an app-limited sender drains everything offered
  /// (once per offer_units() burst). Drives on/off sources' think time.
  void set_on_app_idle(Callback cb, void* ctx) {
    on_app_idle_ = cb;
    on_app_idle_ctx_ = ctx;
  }
  void set_on_app_idle(std::function<void()> cb) {
    boxed_on_app_idle_ = std::move(cb);
    on_app_idle_ = [](void* ctx) { (*static_cast<std::function<void()>*>(ctx))(); };
    on_app_idle_ctx_ = &boxed_on_app_idle_;
  }

  void on_packet(net::Packet&& p) override;  // ACK input

  /// Attach a flight recorder (null detaches). Emits packet send/retx,
  /// SACK/loss marks, RTO fires, and cwnd/pacing updates.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Attach telemetry handles, typically shared by every sender of a run
  /// (null detaches). Per ACK with an RTT sample: one histogram record of
  /// the smoothed RTT and one cwnd gauge store. Retransmit/RTO counters ride
  /// the existing TcpSenderStats, published by the run harness at run end.
  void set_metrics(const obs::TcpMetrics* metrics) { metrics_ = metrics; }

  [[nodiscard]] const TcpSenderStats& stats() const { return stats_; }
  [[nodiscard]] const cca::CongestionControl& cc() const { return *cc_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] const TcpSenderConfig& config() const { return cfg_; }
  /// Window state, exposed for telemetry (peak bytes) and tests.
  [[nodiscard]] const Scoreboard& scoreboard() const { return sb_; }
  /// Attach shared live-window-bytes accounting (see ScoreboardLedger).
  void set_scoreboard_ledger(ScoreboardLedger* ledger) { sb_.set_ledger(ledger); }

  [[nodiscard]] std::uint64_t una() const { return sb_.una(); }
  [[nodiscard]] std::uint64_t next_seq() const { return sb_.next_seq(); }
  [[nodiscard]] double pipe_segments() const {
    return static_cast<double>(sb_.pipe_units()) * cfg_.agg;
  }
  [[nodiscard]] double delivered_segments() const { return delivered_segments_; }
  [[nodiscard]] bool in_recovery() const { return sb_.una() < recovery_point_; }

  /// Retransmitted segments (units * agg), the quantity Fig. 8 plots.
  [[nodiscard]] std::uint64_t retx_segments() const { return stats_.retx_units * cfg_.agg; }

  /// Finite transfers: true once every unit of the configured size is
  /// cumulatively acknowledged.
  [[nodiscard]] bool completed() const {
    return cfg_.transfer_units != 0 && sb_.una() >= cfg_.transfer_units;
  }
  /// Completion instant (zero until completed) — the FCT numerator.
  [[nodiscard]] sim::Time completion_time() const { return completion_time_; }

  /// Snapshot the full transport state (sim::Snapshottable contract): RTT
  /// estimator, counters, scoreboard, delivery-rate state, recovery point,
  /// RTO/pacing deadlines, and the plugged CCA's state. Timer armed-ness
  /// lives in the scheduler image; callbacks and wiring are not stored.
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

 private:
  [[nodiscard]] double cwnd_segments() const;
  [[nodiscard]] bool can_send_now() const;
  [[nodiscard]] std::optional<std::uint64_t> pick_unit_to_send();

  void try_send();
  void send_unit(std::uint64_t abs);
  void teardown_after_completion();
  void process_sacks(const net::Packet& ack, std::uint64_t* newly_delivered_units,
                     DeliverySample* newest);
  void mark_losses();
  void enter_or_update_recovery(double lost_segments);
  void arm_rto();
  void rto_timer_fired();
  void do_rto();
  void arm_pacing(sim::Time at);
  void trace_cwnd();

  sim::Scheduler& sched_;
  net::Host& local_;
  TcpSenderConfig cfg_;
  cca::CongestionControl* cc_;                     // never null
  std::unique_ptr<cca::CongestionControl> owned_cc_;  // only on the owning path
  RttEstimator rtt_;
  TcpSenderStats stats_;

  Scoreboard sb_;  // SACK scoreboard: window scalars + SoA unit state

  double delivered_segments_ = 0;
  sim::Time delivered_time_ = sim::Time::zero();
  double next_round_delivered_ = 0;

  std::uint64_t recovery_point_ = 0;

  // RTO machinery (single outstanding lazy timer in a re-armable slot: ACK
  // progress only rewrites rto_deadline_; the slot is re-keyed, never
  // cancelled and re-queued).
  sim::Time rto_deadline_ = sim::Time::max();
  sim::TimerHandle rto_timer_;
  bool rto_armed_ = false;
  std::uint32_t rto_backoff_ = 1;

  // Pacing machinery (same re-armable slot pattern).
  sim::Time next_pace_time_ = sim::Time::zero();
  sim::TimerHandle pace_timer_;
  bool pace_armed_ = false;

  bool started_ = false;
  bool stopped_ = false;
  sim::Time completion_time_ = sim::Time::zero();

  // Application-limited (on/off) machinery.
  std::uint64_t app_limit_units_ = 0;  ///< units offered by the application
  bool app_idle_notified_ = false;     ///< one idle upcall per offered burst
  Callback on_complete_ = nullptr;
  void* on_complete_ctx_ = nullptr;
  Callback on_app_idle_ = nullptr;
  void* on_app_idle_ctx_ = nullptr;
  // Storage for the std::function convenience overloads only; empty (and
  // allocation-free) on the static-thunk path.
  std::function<void()> boxed_on_complete_;
  std::function<void()> boxed_on_app_idle_;

  // Flight recorder (null = tracing off; hot paths pay one branch).
  trace::Tracer* tracer_ = nullptr;
  // Telemetry handles (null = metrics off; ACK path pays one branch).
  const obs::TcpMetrics* metrics_ = nullptr;
  double last_traced_cwnd_ = -1;
  double last_traced_pacing_ = -1;
};

}  // namespace elephant::tcp
