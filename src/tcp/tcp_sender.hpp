#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "cca/congestion_control.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/ring_deque.hpp"
#include "sim/scheduler.hpp"
#include "tcp/rtt_estimator.hpp"
#include "trace/trace.hpp"

namespace elephant::obs {
struct TcpMetrics;
}  // namespace elephant::obs

namespace elephant::tcp {

/// Per-flow sender configuration.
struct TcpSenderConfig {
  net::FlowId flow = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  std::uint32_t mss = 8900;  ///< wire bytes per segment (paper: jumbo 8900 B)
  std::uint32_t agg = 1;     ///< segments per transmission unit (TSO/GRO analogue)
  sim::Time start_time = sim::Time::zero();
  std::uint64_t transfer_units = 0;  ///< stop after this many units (0 = unbounded elephant)
  /// Application-limited mode: the sender transmits only data the application
  /// has offered via offer_units(), idling (pipe drained, timers quiescent)
  /// in between. Used by on/off workload sources; incompatible with
  /// transfer_units (a finite transfer is fully available at start).
  bool app_limited = false;
  bool ecn = false;               ///< mark packets ECT
  bool pace_always = false;       ///< ablation: pace loss-based CCAs at 2*cwnd/srtt
  sim::Time min_rto = sim::Time::milliseconds(200);
  std::uint32_t reorder_units = 3;  ///< FACK/dupack loss threshold in units
};

/// Counters exposed for experiments; segment counts are MSS-granular.
struct TcpSenderStats {
  std::uint64_t units_sent = 0;
  std::uint64_t retx_units = 0;  ///< retransmitted units (iperf3 "Retr" analogue)
  std::uint64_t rtos = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t congestion_events = 0;
  std::uint64_t lost_units_marked = 0;
};

/// A bulk-transfer ("elephant") TCP sender.
///
/// Implements the transport machinery shared by every CCA the paper tests:
/// a SACK scoreboard, FACK-with-RACK-timing loss marking, NewReno-style
/// recovery episodes, RFC 6298 RTO with exponential backoff, delivery-rate
/// sampling (for BBR), packet-timed round tracking, and optional pacing.
/// Congestion decisions are delegated entirely to the plugged
/// cca::CongestionControl.
///
/// Sequence space is in transmission units of `agg` segments; all CCA
/// accounting is converted to segments so algorithm constants keep their
/// RFC meanings under aggregation.
class TcpSender : public net::PacketHandler {
 public:
  TcpSender(sim::Scheduler& sched, net::Host& local, TcpSenderConfig cfg,
            std::unique_ptr<cca::CongestionControl> cc);

  /// Begin transmitting at cfg.start_time.
  void start();
  /// Stop offering new data (in-flight data still completes).
  void stop() { stopped_ = true; }

  /// App-limited mode: make `units` more transmission units available and
  /// (re)start transmission. No-op unless cfg.app_limited.
  void offer_units(std::uint64_t units);
  /// Convenience wrapper: bytes rounded up to whole transmission units.
  void offer_bytes(std::uint64_t bytes);
  /// Units the application has offered so far (app-limited mode).
  [[nodiscard]] std::uint64_t offered_units() const { return app_limit_units_; }

  /// Invoked exactly once when a finite transfer completes (every unit
  /// cumulatively acknowledged). By the time it runs the sender has torn
  /// itself down: both timers are disarmed, so a completed flow holds no
  /// scheduler events open.
  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }
  /// Invoked each time an app-limited sender drains everything offered
  /// (once per offer_units() burst). Drives on/off sources' think time.
  void set_on_app_idle(std::function<void()> cb) { on_app_idle_ = std::move(cb); }

  void on_packet(net::Packet&& p) override;  // ACK input

  /// Attach a flight recorder (null detaches). Emits packet send/retx,
  /// SACK/loss marks, RTO fires, and cwnd/pacing updates.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Attach telemetry handles, typically shared by every sender of a run
  /// (null detaches). Per ACK with an RTT sample: one histogram record of
  /// the smoothed RTT and one cwnd gauge store. Retransmit/RTO counters ride
  /// the existing TcpSenderStats, published by the run harness at run end.
  void set_metrics(const obs::TcpMetrics* metrics) { metrics_ = metrics; }

  [[nodiscard]] const TcpSenderStats& stats() const { return stats_; }
  [[nodiscard]] const cca::CongestionControl& cc() const { return *cc_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] const TcpSenderConfig& config() const { return cfg_; }

  [[nodiscard]] std::uint64_t una() const { return una_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  [[nodiscard]] double pipe_segments() const { return static_cast<double>(pipe_units_) * cfg_.agg; }
  [[nodiscard]] double delivered_segments() const { return delivered_segments_; }
  [[nodiscard]] bool in_recovery() const { return una_ < recovery_point_; }

  /// Retransmitted segments (units * agg), the quantity Fig. 8 plots.
  [[nodiscard]] std::uint64_t retx_segments() const { return stats_.retx_units * cfg_.agg; }

  /// Finite transfers: true once every unit of the configured size is
  /// cumulatively acknowledged.
  [[nodiscard]] bool completed() const {
    return cfg_.transfer_units != 0 && una_ >= cfg_.transfer_units;
  }
  /// Completion instant (zero until completed) — the FCT numerator.
  [[nodiscard]] sim::Time completion_time() const { return completion_time_; }

 private:
  struct UnitState {
    sim::Time sent_time{};
    sim::Time delivered_time_at_send{};
    double delivered_at_send = 0;  // segments
    std::uint8_t retx = 0;
    bool inflight = false;
    bool sacked = false;
    bool lost = false;            // marked lost, awaiting retransmission
    bool delivered_counted = false;
  };

  /// Rate/RTT sample source: the most recently sent, never-retransmitted
  /// unit delivered by the current ACK (Karn's rule).
  struct SampleRef {
    sim::Time sent_time = sim::Time::zero();
    double delivered_at_send = 0;
    sim::Time delivered_time_at_send = sim::Time::zero();
    bool has_sample = false;  // explicit: packets sent at t=0 are valid too

    void consider(const UnitState& u) {
      if (u.retx == 0 && (!has_sample || u.sent_time > sent_time)) {
        sent_time = u.sent_time;
        delivered_at_send = u.delivered_at_send;
        delivered_time_at_send = u.delivered_time_at_send;
        has_sample = true;
      }
    }
    [[nodiscard]] bool valid() const { return has_sample; }
  };

  [[nodiscard]] UnitState& unit(std::uint64_t abs) { return units_[abs - una_]; }
  [[nodiscard]] double cwnd_segments() const;
  [[nodiscard]] bool can_send_now() const;
  [[nodiscard]] std::optional<std::uint64_t> pick_unit_to_send();

  void try_send();
  void send_unit(std::uint64_t abs);
  void teardown_after_completion();
  void process_sacks(const net::Packet& ack, std::uint64_t* newly_delivered_units,
                     SampleRef* newest);
  void mark_losses();
  void enter_or_update_recovery(double lost_segments);
  void arm_rto();
  void rto_timer_fired();
  void do_rto();
  void arm_pacing(sim::Time at);
  void trace_cwnd();

  sim::Scheduler& sched_;
  net::Host& local_;
  TcpSenderConfig cfg_;
  std::unique_ptr<cca::CongestionControl> cc_;
  RttEstimator rtt_;
  TcpSenderStats stats_;

  sim::RingDeque<UnitState> units_;  // scoreboard, index 0 == una_
  std::uint64_t una_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pipe_units_ = 0;
  std::uint64_t lost_pending_ = 0;    // lost units not yet retransmitted
  std::uint64_t min_unresolved_ = 0;  // scan hint for loss marking / retx pick

  double delivered_segments_ = 0;
  sim::Time delivered_time_ = sim::Time::zero();
  double next_round_delivered_ = 0;

  std::uint64_t highest_sacked_ = 0;  // absolute unit + 1 (0 = none)
  sim::Time latest_sacked_sent_time_ = sim::Time::zero();

  std::uint64_t recovery_point_ = 0;

  // RTO machinery (single outstanding lazy timer in a re-armable slot: ACK
  // progress only rewrites rto_deadline_; the slot is re-keyed, never
  // cancelled and re-queued).
  sim::Time rto_deadline_ = sim::Time::max();
  sim::TimerHandle rto_timer_;
  bool rto_armed_ = false;
  std::uint32_t rto_backoff_ = 1;

  // Pacing machinery (same re-armable slot pattern).
  sim::Time next_pace_time_ = sim::Time::zero();
  sim::TimerHandle pace_timer_;
  bool pace_armed_ = false;

  bool started_ = false;
  bool stopped_ = false;
  sim::Time completion_time_ = sim::Time::zero();

  // Application-limited (on/off) machinery.
  std::uint64_t app_limit_units_ = 0;  ///< units offered by the application
  bool app_idle_notified_ = false;     ///< one idle upcall per offered burst
  std::function<void()> on_complete_;
  std::function<void()> on_app_idle_;

  // Flight recorder (null = tracing off; hot paths pay one branch).
  trace::Tracer* tracer_ = nullptr;
  // Telemetry handles (null = metrics off; ACK path pays one branch).
  const obs::TcpMetrics* metrics_ = nullptr;
  double last_traced_cwnd_ = -1;
  double last_traced_pacing_ = -1;
};

}  // namespace elephant::tcp
