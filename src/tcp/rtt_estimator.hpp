#pragma once

#include "sim/time.hpp"

namespace elephant::tcp {

/// RFC 6298 smoothed RTT estimation and RTO computation.
class RttEstimator {
 public:
  explicit RttEstimator(sim::Time min_rto = sim::Time::milliseconds(200),
                        sim::Time max_rto = sim::Time::seconds(60))
      : min_rto_(min_rto), max_rto_(max_rto) {}

  void add_sample(sim::Time rtt) {
    if (rtt <= sim::Time::zero()) return;
    if (min_rtt_ == sim::Time::zero() || rtt < min_rtt_) min_rtt_ = rtt;
    latest_ = rtt;
    if (srtt_ == sim::Time::zero()) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      const sim::Time err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
  }

  [[nodiscard]] sim::Time rto() const {
    if (srtt_ == sim::Time::zero()) return sim::Time::seconds(1.0);  // RFC 6298 initial
    sim::Time candidate = srtt_ + 4 * rttvar_;
    if (candidate < min_rto_) candidate = min_rto_;
    if (candidate > max_rto_) candidate = max_rto_;
    return candidate;
  }

  [[nodiscard]] sim::Time srtt() const { return srtt_; }
  [[nodiscard]] sim::Time rttvar() const { return rttvar_; }
  [[nodiscard]] sim::Time min_rtt() const { return min_rtt_; }
  [[nodiscard]] sim::Time latest() const { return latest_; }
  [[nodiscard]] bool has_sample() const { return srtt_ != sim::Time::zero(); }

 private:
  sim::Time min_rto_;
  sim::Time max_rto_;
  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  sim::Time min_rtt_ = sim::Time::zero();
  sim::Time latest_ = sim::Time::zero();
};

}  // namespace elephant::tcp
