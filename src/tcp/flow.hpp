#pragma once

#include <memory>

#include "cca/congestion_control.hpp"
#include "net/topology.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace elephant::tcp {

/// Everything needed to define one bulk flow between a client and a server.
struct FlowConfig {
  net::FlowId id = 0;
  cca::CcaKind cca = cca::CcaKind::kCubic;
  std::uint32_t mss = 8900;
  std::uint32_t agg = 1;
  sim::Time start_time = sim::Time::zero();
  std::uint64_t transfer_bytes = 0;  ///< finite transfer size; 0 = unbounded elephant
  bool app_limited = false;          ///< on/off source: send only offered data
  bool ecn = false;
  bool pace_always = false;
  std::uint64_t seed = 1;
  double initial_cwnd_segments = 10;
};

/// One end-to-end bulk TCP flow: a sender on `client`, a receiver on
/// `server`, both registered for the flow id, congestion-controlled by the
/// configured CCA. This is the highest-level unit of the public API —
/// the simulated analogue of one iperf3 stream.
class Flow {
 public:
  Flow(sim::Scheduler& sched, net::Host& client, net::Host& server, const FlowConfig& cfg);

  /// Begin transmitting at cfg.start_time.
  void start() { sender_->start(); }
  /// Stop offering new data.
  void stop() { sender_->stop(); }

  [[nodiscard]] TcpSender& sender() { return *sender_; }
  [[nodiscard]] const TcpSender& sender() const { return *sender_; }
  [[nodiscard]] TcpReceiver& receiver() { return *receiver_; }
  [[nodiscard]] const TcpReceiver& receiver() const { return *receiver_; }

  /// Receiver goodput in bits/s over `elapsed`.
  [[nodiscard]] double goodput_bps(sim::Time elapsed) const {
    if (elapsed <= sim::Time::zero()) return 0.0;
    return static_cast<double>(receiver_->delivered_bytes()) * 8.0 / elapsed.sec();
  }

  /// Finite transfers: whether the whole object has been acknowledged, and
  /// the flow-completion time relative to the configured start.
  [[nodiscard]] bool completed() const { return sender_->completed(); }
  [[nodiscard]] sim::Time completion_time() const {
    return sender_->completion_time() - cfg_.start_time;
  }

  [[nodiscard]] net::FlowId id() const { return cfg_.id; }
  [[nodiscard]] const FlowConfig& config() const { return cfg_; }

 private:
  FlowConfig cfg_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace elephant::tcp
