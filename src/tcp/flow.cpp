#include "tcp/flow.hpp"

namespace elephant::tcp {

Flow::Flow(sim::Scheduler& sched, net::Host& client, net::Host& server, const FlowConfig& cfg)
    : cfg_(cfg) {
  cca::CcaParams cp;
  cp.mss_bytes = cfg.mss;
  cp.initial_cwnd_segments = std::max<double>(cfg.initial_cwnd_segments, cfg.agg);
  cp.min_cwnd_segments = std::max<double>(2.0, cfg.agg);
  cp.seed = cfg.seed;

  TcpSenderConfig sc;
  sc.flow = cfg.id;
  sc.src = client.id();
  sc.dst = server.id();
  sc.mss = cfg.mss;
  sc.agg = cfg.agg;
  sc.ecn = cfg.ecn;
  sc.pace_always = cfg.pace_always;
  sc.start_time = cfg.start_time;
  sc.app_limited = cfg.app_limited;
  if (cfg.transfer_bytes != 0) {
    sc.transfer_units = bytes_to_units(cfg.transfer_bytes, cfg.mss, cfg.agg);
  }

  receiver_ = std::make_unique<TcpReceiver>(sched, server, client.id(), cfg.id);
  sender_ = std::make_unique<TcpSender>(sched, client, sc, cca::make_cca(cfg.cca, cp));
  client.register_endpoint(cfg.id, sender_.get());
  server.register_endpoint(cfg.id, receiver_.get());
}

}  // namespace elephant::tcp
