#include "tcp/tcp_sender.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/metrics.hpp"

namespace elephant::tcp {

namespace {
constexpr std::uint32_t kMaxRtoBackoff = 64;
}

TcpSender::TcpSender(sim::Scheduler& sched, net::Host& local, TcpSenderConfig cfg,
                     cca::CongestionControl* cc)
    : sched_(sched), local_(local), cfg_(cfg), cc_(cc), rtt_(cfg.min_rto) {
  assert(cfg_.agg >= 1);
  assert(cc_ != nullptr);
  // A finite transfer is fully available at start; combining it with
  // app-limited mode would silently gate the transfer on offer_units().
  assert(!(cfg_.app_limited && cfg_.transfer_units != 0));
  rto_timer_.init(sched_, [this] { rto_timer_fired(); });
  pace_timer_.init(sched_, [this] {
    pace_armed_ = false;
    try_send();
  });
}

TcpSender::TcpSender(sim::Scheduler& sched, net::Host& local, TcpSenderConfig cfg,
                     std::unique_ptr<cca::CongestionControl> cc)
    : TcpSender(sched, local, cfg, cc.get()) {
  owned_cc_ = std::move(cc);
}

void TcpSender::start() {
  if (started_) return;
  started_ = true;
  const sim::Time at = std::max(cfg_.start_time, sched_.now());
  sched_.schedule_at(at, [this] { try_send(); });
}

double TcpSender::cwnd_segments() const { return cc_->cwnd_segments(); }

bool TcpSender::can_send_now() const {
  if (sb_.pipe_units() == 0) return true;  // always allow one unit of progress
  const double pipe_seg = static_cast<double>(sb_.pipe_units()) * cfg_.agg;
  return pipe_seg + cfg_.agg <= cwnd_segments();
}

std::optional<std::uint64_t> TcpSender::pick_unit_to_send() {
  if (const auto abs = sb_.pick_retx()) return abs;
  const bool more_data =
      !stopped_ && (cfg_.transfer_units == 0 || sb_.next_seq() < cfg_.transfer_units) &&
      (!cfg_.app_limited || sb_.next_seq() < app_limit_units_);
  if (more_data) return sb_.next_seq();
  return std::nullopt;
}

void TcpSender::offer_units(std::uint64_t units) {
  if (!cfg_.app_limited || units == 0) return;
  app_limit_units_ += units;
  app_idle_notified_ = false;
  if (started_ && sched_.now() >= cfg_.start_time) try_send();
}

void TcpSender::try_send() {
  const double pacing_bps =
      cfg_.pace_always && cc_->pacing_rate_bps() == 0.0 && rtt_.has_sample()
          ? 2.0 * cwnd_segments() * cfg_.mss * 8.0 / rtt_.srtt().sec()
          : cc_->pacing_rate_bps();
  const bool paced = pacing_bps > 0.0;
  const double unit_bits = static_cast<double>(cfg_.mss) * 8.0 * cfg_.agg;

  while (can_send_now()) {
    if (paced && sched_.now() < next_pace_time_) {
      arm_pacing(next_pace_time_);
      return;
    }
    const auto abs = pick_unit_to_send();
    if (!abs) return;
    send_unit(*abs);
    if (paced) {
      const sim::Time gap = sim::Time::seconds(unit_bits / pacing_bps);
      const sim::Time base = std::max(next_pace_time_, sched_.now());
      next_pace_time_ = base + gap;
    }
  }
}

void TcpSender::send_unit(std::uint64_t abs) {
  const sim::Time now = sched_.now();
  const bool is_retx = abs < sb_.next_seq();

  const sim::Time delivered_time_eff =
      delivered_time_ == sim::Time::zero() ? now : delivered_time_;
  const std::uint8_t retx_count =
      sb_.record_send(abs, now, delivered_segments_, delivered_time_eff);
  if (is_retx) ++stats_.retx_units;
  ++stats_.units_sent;

  net::Packet p;
  p.flow = cfg_.flow;
  p.src = cfg_.src;
  p.dst = cfg_.dst;
  p.seq = abs;
  p.segments = cfg_.agg;
  p.size = cfg_.mss * cfg_.agg;
  p.retx = is_retx;
  p.ecn_capable = cfg_.ecn;
  p.sent_time = now;
  if (tracer_) {
    trace::TraceRecord r;
    r.t = now;
    r.type = is_retx ? trace::RecordType::kPacketRetx : trace::RecordType::kPacketSent;
    r.flow = cfg_.flow;
    r.seq = abs;
    r.v0 = static_cast<double>(p.size);
    r.v1 = static_cast<double>(sb_.pipe_units());
    r.v2 = static_cast<double>(retx_count);
    tracer_->record(r);
  }
  local_.transmit(std::move(p));

  if (is_retx || !rto_armed_ || rto_deadline_ == sim::Time::max()) {
    // (Re)start the timer on fresh sends from idle and on every
    // retransmission, as Linux does.
    rto_deadline_ = now + rtt_.rto() * static_cast<std::int64_t>(rto_backoff_);
    arm_rto();
  }
}

void TcpSender::arm_rto() {
  if (rto_armed_) return;
  rto_armed_ = true;
  rto_timer_.rearm(rto_deadline_);
}

void TcpSender::rto_timer_fired() {
  rto_armed_ = false;
  if (sb_.pipe_units() == 0 && sb_.lost_pending() == 0) {
    rto_deadline_ = sim::Time::max();
    return;
  }
  if (sched_.now() < rto_deadline_) {
    arm_rto();  // deadline was pushed forward by ACK progress
    return;
  }
  do_rto();
}

void TcpSender::trace_cwnd() {
  const double cwnd = cc_->cwnd_segments();
  const double pacing = cc_->pacing_rate_bps();
  if (cwnd == last_traced_cwnd_ && pacing == last_traced_pacing_) return;
  last_traced_cwnd_ = cwnd;
  last_traced_pacing_ = pacing;
  trace::TraceRecord r;
  r.t = sched_.now();
  r.type = trace::RecordType::kCwndUpdate;
  r.flow = cfg_.flow;
  r.v0 = cwnd;
  r.v1 = pacing;
  r.v2 = rtt_.srtt().ms();
  tracer_->record(r);
}

void TcpSender::do_rto() {
  const sim::Time now = sched_.now();
  ++stats_.rtos;
  rto_backoff_ = std::min(rto_backoff_ * 2, kMaxRtoBackoff);

  // Everything in flight is presumed lost; SACKed units are retained
  // (we do not model reneging).
  const std::uint64_t lost_pending = sb_.rto_mark_all();
  recovery_point_ = sb_.next_seq();
  ++stats_.congestion_events;
  cc_->on_rto(now);
  if (tracer_) {
    trace::TraceRecord r;
    r.t = now;
    r.type = trace::RecordType::kRtoFire;
    r.flow = cfg_.flow;
    r.seq = sb_.una();
    r.v0 = static_cast<double>(rto_backoff_);
    r.v1 = rtt_.rto().ms();
    r.v2 = static_cast<double>(lost_pending);
    tracer_->record(r);
    trace_cwnd();
  }

  rto_deadline_ = now + rtt_.rto() * static_cast<std::int64_t>(rto_backoff_);
  arm_rto();
  next_pace_time_ = sim::Time::zero();  // RTO recovery is not pacing-limited
  try_send();
}

void TcpSender::arm_pacing(sim::Time at) {
  if (pace_armed_) return;
  pace_armed_ = true;
  pace_timer_.rearm(std::max(at, sched_.now()));
}

void TcpSender::process_sacks(const net::Packet& ack, std::uint64_t* newly_delivered_units,
                              DeliverySample* newest) {
  for (std::uint8_t i = 0; i < ack.n_sacks; ++i) {
    const net::SackBlock& b = ack.sacks[i];
    sb_.sack_range(b.start, b.end, newly_delivered_units, newest,
                   [this](std::uint64_t abs, std::uint8_t retx_count) {
                     if (tracer_) {
                       trace::TraceRecord r;
                       r.t = sched_.now();
                       r.type = trace::RecordType::kSackMark;
                       r.flow = cfg_.flow;
                       r.seq = abs;
                       r.v0 = static_cast<double>(cfg_.agg);
                       r.v1 = static_cast<double>(sb_.pipe_units());
                       r.v2 = static_cast<double>(retx_count);
                       tracer_->record(r);
                     }
                   });
  }
}

void TcpSender::mark_losses() {
  const std::uint64_t newly_lost =
      sb_.mark_losses(cfg_.reorder_units, [this](std::uint64_t abs, std::uint8_t retx_count) {
        if (tracer_) {
          trace::TraceRecord r;
          r.t = sched_.now();
          r.type = trace::RecordType::kLossMark;
          r.flow = cfg_.flow;
          r.seq = abs;
          r.v0 = static_cast<double>(cfg_.agg);
          r.v1 = static_cast<double>(sb_.pipe_units());
          r.v2 = static_cast<double>(retx_count);
          tracer_->record(r);
        }
      });
  if (newly_lost > 0) {
    stats_.lost_units_marked += newly_lost;
    enter_or_update_recovery(static_cast<double>(newly_lost) * cfg_.agg);
  }
}

void TcpSender::enter_or_update_recovery(double lost_segments) {
  cca::LossSample loss;
  loss.now = sched_.now();
  loss.lost_segments = lost_segments;
  loss.inflight_segments = pipe_segments();
  loss.delivered_segments = delivered_segments_;
  loss.new_congestion_event = sb_.una() >= recovery_point_;
  if (loss.new_congestion_event) {
    recovery_point_ = sb_.next_seq();
    ++stats_.congestion_events;
  }
  cc_->on_loss(loss);
}

void TcpSender::on_packet(net::Packet&& p) {
  if (!p.is_ack) return;
  ++stats_.acks_received;
  const sim::Time now = sched_.now();

  std::uint64_t newly_delivered_units = 0;
  DeliverySample newest;  // most recently sent unit delivered by this ACK

  // 1. Cumulative ACK advance (capture rate-sample fields before wiping).
  const std::uint64_t ack_to = std::min(p.ack, sb_.next_seq());
  const bool progressed = sb_.advance_una(ack_to, &newly_delivered_units, &newest);

  // 2. SACK processing (shares the same "newest delivered" tracking).
  process_sacks(p, &newly_delivered_units, &newest);

  // 3. RTT sample (Karn's rule: only never-retransmitted units).
  cca::AckSample ack;
  if (newest.valid()) {
    const sim::Time rtt_sample = now - newest.sent_time;
    rtt_.add_sample(rtt_sample);
    ack.rtt = rtt_sample;
    if (metrics_ != nullptr && metrics_->srtt_s != nullptr) [[unlikely]] {
      metrics_->srtt_s->record(rtt_.srtt().sec());
    }
  }

  // 4. Delivery bookkeeping, rate sample, and packet-timed round tracking.
  double delivery_rate = 0;
  bool round_start = false;
  if (newly_delivered_units > 0) {
    delivered_segments_ += static_cast<double>(newly_delivered_units) * cfg_.agg;
    delivered_time_ = now;
    if (newest.valid() && now > newest.delivered_time_at_send) {
      delivery_rate = (delivered_segments_ - newest.delivered_at_send) /
                      (now - newest.delivered_time_at_send).sec();
    }
    if (newest.valid() && newest.delivered_at_send >= next_round_delivered_) {
      round_start = true;
      next_round_delivered_ = delivered_segments_;
    }
  }

  // 5. Loss marking from the updated SACK picture.
  mark_losses();

  // 6. Upcall to the congestion controller.
  if (newly_delivered_units > 0 || p.ece) {
    ack.now = now;
    ack.min_rtt = rtt_.min_rtt();
    ack.acked_segments = static_cast<double>(newly_delivered_units) * cfg_.agg;
    ack.inflight_segments = pipe_segments();
    ack.delivered_segments = delivered_segments_;
    ack.delivery_rate = delivery_rate;
    ack.round_start = round_start;
    ack.ece = p.ece;
    cc_->on_ack(ack);
  }
  if (tracer_) trace_cwnd();
  if (metrics_ != nullptr && metrics_->cwnd_segments != nullptr) [[unlikely]] {
    metrics_->cwnd_segments->set(cc_->cwnd_segments());
  }

  // Finite transfer bookkeeping: on the completing ACK, record the instant,
  // release both timers, and notify the owner — a completed connection must
  // not hold scheduler events open nor send another segment.
  if (completion_time_ == sim::Time::zero() && completed()) {
    completion_time_ = now;
    teardown_after_completion();
    if (on_complete_) on_complete_(on_complete_ctx_);
    return;
  }

  // 7. RTO refresh. Any delivery progress (cumulative OR SACK) restarts the
  // timer: during SACK recovery in a deep buffer, una can legitimately stall
  // for a full queue-drain RTT while SACKs stream in, and refreshing only on
  // cumulative advance would fire spurious RTOs (tcp_rearm_rto behaviour).
  if (progressed) rto_backoff_ = 1;
  if (progressed || newly_delivered_units > 0) {
    rto_deadline_ = (sb_.pipe_units() > 0 || sb_.lost_pending() > 0)
                        ? now + rtt_.rto() * static_cast<std::int64_t>(rto_backoff_)
                        : sim::Time::max();
  }

  try_send();

  // App-limited idle detection: everything offered has been sent AND
  // acknowledged. One upcall per burst; the callback typically schedules the
  // next offer_units() after a think time.
  if (cfg_.app_limited && !app_idle_notified_ && sb_.una() == sb_.next_seq() &&
      sb_.next_seq() == app_limit_units_ && sb_.pipe_units() == 0) {
    app_idle_notified_ = true;
    if (on_app_idle_) on_app_idle_(on_app_idle_ctx_);
  }
}

void TcpSender::teardown_after_completion() {
  stopped_ = true;
  rto_armed_ = false;
  rto_deadline_ = sim::Time::max();
  rto_timer_.disarm();
  pace_armed_ = false;
  pace_timer_.disarm();
  // The live window is empty (una == next_seq == transfer_units): drop the
  // grow-only scoreboard storage so completed mice in long mixed sweeps do
  // not pin their peak window allocation (bounded-RSS satellite).
  sb_.release();
}

void TcpSender::save(sim::SnapshotWriter& w) const {
  static_assert(std::is_trivially_copyable_v<RttEstimator>);
  static_assert(std::is_trivially_copyable_v<TcpSenderStats>);
  w.put_pod(rtt_);
  w.put_pod(stats_);
  sb_.save(w);
  w.put_f64(delivered_segments_);
  w.put_pod(delivered_time_);
  w.put_f64(next_round_delivered_);
  w.put_u64(recovery_point_);
  w.put_pod(rto_deadline_);
  w.put_bool(rto_armed_);
  w.put_u32(rto_backoff_);
  w.put_pod(next_pace_time_);
  w.put_bool(pace_armed_);
  w.put_bool(started_);
  w.put_bool(stopped_);
  w.put_pod(completion_time_);
  w.put_u64(app_limit_units_);
  w.put_bool(app_idle_notified_);
  w.put_f64(last_traced_cwnd_);
  w.put_f64(last_traced_pacing_);
  cc_->save(w);
}

void TcpSender::load(sim::SnapshotReader& r) {
  r.get_pod(&rtt_);
  r.get_pod(&stats_);
  sb_.load(r);
  delivered_segments_ = r.get_f64();
  r.get_pod(&delivered_time_);
  next_round_delivered_ = r.get_f64();
  recovery_point_ = r.get_u64();
  r.get_pod(&rto_deadline_);
  rto_armed_ = r.get_bool();
  rto_backoff_ = r.get_u32();
  r.get_pod(&next_pace_time_);
  pace_armed_ = r.get_bool();
  started_ = r.get_bool();
  stopped_ = r.get_bool();
  r.get_pod(&completion_time_);
  app_limit_units_ = r.get_u64();
  app_idle_notified_ = r.get_bool();
  last_traced_cwnd_ = r.get_f64();
  last_traced_pacing_ = r.get_f64();
  cc_->load(r);
}

}  // namespace elephant::tcp
