#include "tcp/tcp_receiver.hpp"

#include <utility>

namespace elephant::tcp {

bool TcpReceiver::ooo_insert(std::uint64_t unit) {
  // Find the first interval starting after `unit`, and its predecessor.
  auto next = ooo_.upper_bound(unit);
  if (next != ooo_.begin()) {
    auto prev = std::prev(next);
    if (unit < prev->second) return false;  // already covered
    if (unit == prev->second) {
      // Extends the predecessor; possibly bridges into `next`.
      prev->second = unit + 1;
      if (next != ooo_.end() && next->first == prev->second) {
        prev->second = next->second;
        ooo_.erase(next);
      }
      return true;
    }
  }
  if (next != ooo_.end() && next->first == unit + 1) {
    // Extends `next` downward: reinsert under the new start key.
    const std::uint64_t end = next->second;
    ooo_.erase(next);
    ooo_.emplace(unit, end);
    return true;
  }
  ooo_.emplace(unit, unit + 1);
  return true;
}

void TcpReceiver::on_packet(net::Packet&& p) {
  if (p.is_ack) return;  // receivers only see data
  ++received_packets_;

  bool out_of_order = false;
  bool advanced = false;
  const bool had_ooo = !ooo_.empty();
  const std::uint64_t unit = p.seq;
  last_recv_unit_ = unit;

  if (unit == rcv_next_) {
    ++rcv_next_;
    delivered_bytes_ += p.size;
    // Drain the buffered interval now contiguous, if any.
    auto it = ooo_.begin();
    if (it != ooo_.end() && it->first == rcv_next_) {
      rcv_next_ = it->second;
      ooo_.erase(it);
    }
    advanced = true;
  } else if (unit > rcv_next_) {
    out_of_order = true;
    ++ooo_packets_;
    if (ooo_insert(unit)) {
      delivered_bytes_ += p.size;
    } else {
      ++duplicate_units_;
    }
  } else {
    ++duplicate_units_;  // spurious retransmission below rcv_next_
  }

  if (p.ecn_marked) pending_ce_ = true;
  peer_ecn_ = p.ecn_capable;

  ++unacked_count_;
  // Delayed ACK: every 2nd in-order unit; immediately on any reordering
  // signal (duplicate ACK generation drives fast retransmit), on a gap fill,
  // or when a CE mark must be echoed promptly. Otherwise a 40 ms timer
  // guarantees the ACK eventually leaves (single-unit windows must not stall
  // into the sender's RTO).
  // RFC 5681: an arrival that fills a gap must be acknowledged immediately
  // so the sender's recovery sees the cumulative advance without delay.
  const bool gap_filled = advanced && had_ooo;
  if (out_of_order || gap_filled || pending_ce_ || !ooo_.empty() || unacked_count_ >= 2) {
    send_ack();
  } else {
    arm_delayed_ack();
  }
}

void TcpReceiver::arm_delayed_ack() {
  if (ack_timer_armed_) return;
  ack_timer_armed_ = true;
  ack_timer_.rearm(sched_.now() + kDelayedAckTimeout);
}

void TcpReceiver::send_ack() {
  net::Packet ack;
  ack.flow = flow_;
  ack.src = local_.id();
  ack.dst = peer_;
  ack.is_ack = true;
  ack.size = net::kAckBytes;
  ack.ack = rcv_next_;
  ack.ece = pending_ce_;
  ack.ecn_capable = peer_ecn_;

  // SACK block 1: the interval containing the most recently arrived unit,
  // then the highest other intervals (RFC 2018: most recent first).
  ack.n_sacks = 0;
  if (!ooo_.empty()) {
    auto add_block = [&](std::uint64_t lo, std::uint64_t hi) {
      if (ack.n_sacks >= ack.sacks.size()) return;
      for (std::uint8_t i = 0; i < ack.n_sacks; ++i) {
        if (ack.sacks[i].start == lo && ack.sacks[i].end == hi) return;
      }
      ack.sacks[ack.n_sacks++] = net::SackBlock{lo, hi};
    };

    // Interval containing the most recent arrival.
    auto it = ooo_.upper_bound(last_recv_unit_);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (last_recv_unit_ >= prev->first && last_recv_unit_ < prev->second) {
        add_block(prev->first, prev->second);
      }
    }
    // Highest intervals next.
    for (auto rit = ooo_.rbegin(); rit != ooo_.rend() && ack.n_sacks < ack.sacks.size();
         ++rit) {
      add_block(rit->first, rit->second);
    }
  }

  pending_ce_ = false;
  unacked_count_ = 0;
  ++acks_sent_;
  local_.transmit(std::move(ack));
}

}  // namespace elephant::tcp
