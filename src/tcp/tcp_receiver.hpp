#pragma once

#include <cstdint>
#include <map>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"

namespace elephant::tcp {

/// Bulk-sink TCP receiver: consumes data units, generates cumulative +
/// SACK acknowledgements with classic delayed-ACK behaviour (ack every
/// second in-order unit, immediately on reordering or CE marks).
///
/// Sequence numbers are in transmission units (aggregated segments); the
/// sender and receiver of one flow always agree on the unit size.
class TcpReceiver : public net::PacketHandler {
 public:
  TcpReceiver(sim::Scheduler& sched, net::Host& local, net::NodeId peer, net::FlowId flow)
      : sched_(sched), local_(local), peer_(peer), flow_(flow) {
    ack_timer_.init(sched_, [this] {
      ack_timer_armed_ = false;
      if (unacked_count_ > 0) send_ack();
    });
  }

  void on_packet(net::Packet&& p) override;

  /// Delayed-ACK timeout (Linux: ~40 ms). An ACK is generated at the latest
  /// this long after an unacknowledged in-order arrival, so a sender whose
  /// window is a single unit is never left waiting for a second packet.
  static constexpr sim::Time kDelayedAckTimeout = sim::Time::milliseconds(40);

  /// In-order units delivered to the application.
  [[nodiscard]] std::uint64_t delivered_units() const { return rcv_next_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] std::uint64_t received_packets() const { return received_packets_; }
  [[nodiscard]] std::uint64_t out_of_order_packets() const { return ooo_packets_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t duplicate_units() const { return duplicate_units_; }

  /// Snapshot the reassembly and delayed-ACK state (sim::Snapshottable
  /// contract). The ACK timer's armed-ness lives in the scheduler image;
  /// only the mirror flag is stored here.
  void save(sim::SnapshotWriter& w) const {
    w.put_u64(rcv_next_);
    w.put_u64(ooo_.size());
    for (const auto& [start, end] : ooo_) {
      w.put_u64(start);
      w.put_u64(end);
    }
    w.put_u64(last_recv_unit_);
    w.put_u32(unacked_count_);
    w.put_bool(pending_ce_);
    w.put_bool(ack_timer_armed_);
    w.put_bool(peer_ecn_);
    w.put_u64(delivered_bytes_);
    w.put_u64(received_packets_);
    w.put_u64(ooo_packets_);
    w.put_u64(acks_sent_);
    w.put_u64(duplicate_units_);
  }
  void load(sim::SnapshotReader& r) {
    rcv_next_ = r.get_u64();
    const std::uint64_t n = r.get_u64();
    ooo_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t start = r.get_u64();
      ooo_[start] = r.get_u64();
    }
    last_recv_unit_ = r.get_u64();
    unacked_count_ = r.get_u32();
    pending_ce_ = r.get_bool();
    ack_timer_armed_ = r.get_bool();
    peer_ecn_ = r.get_bool();
    delivered_bytes_ = r.get_u64();
    received_packets_ = r.get_u64();
    ooo_packets_ = r.get_u64();
    acks_sent_ = r.get_u64();
    duplicate_units_ = r.get_u64();
  }

 private:
  void send_ack();
  void arm_delayed_ack();

  sim::Scheduler& sched_;
  net::Host& local_;
  net::NodeId peer_;
  net::FlowId flow_;

  /// Insert one unit into the out-of-order interval map (merging neighbours);
  /// returns false if it was already present.
  bool ooo_insert(std::uint64_t unit);

  std::uint64_t rcv_next_ = 0;  ///< next expected unit
  /// Received-but-not-yet-contiguous ranges above rcv_next_, as disjoint,
  /// non-adjacent half-open intervals start → end. Interval storage keeps
  /// SACK-block construction O(log n) even when loss episodes leave tens of
  /// thousands of units buffered.
  std::map<std::uint64_t, std::uint64_t> ooo_;
  std::uint64_t last_recv_unit_ = 0;  ///< most recently arrived unit (for SACK block 1)
  std::uint32_t unacked_count_ = 0;   ///< delayed-ACK counter
  bool pending_ce_ = false;           ///< CE seen since last ACK
  bool ack_timer_armed_ = false;
  sim::TimerHandle ack_timer_;
  bool peer_ecn_ = false;             ///< peer sends ECT packets

  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t received_packets_ = 0;
  std::uint64_t ooo_packets_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t duplicate_units_ = 0;
};

}  // namespace elephant::tcp
