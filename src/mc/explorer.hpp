#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "mc/choice_trace.hpp"

namespace elephant::trace {
class Tracer;
}

namespace elephant::mc {

/// Bounds and oracle thresholds for one exploration (all oracles optional;
/// 0 disables). `max_depth` is the number of choice points eligible for
/// branching: a schedule may pass thousands of choice points, but only the
/// first `max_depth` of them seed alternative schedules — the classic
/// depth-bounded systematic-testing cut.
struct ExplorerOptions {
  std::uint32_t max_depth = 16;
  std::uint64_t max_schedules = 256;
  /// Executed-event budget per schedule (runaway protection; a schedule
  /// stopped by it is counted as truncated but still hashed and checked).
  std::uint64_t max_schedule_events = 0;
  /// Simulated horizon each schedule runs to; 0 = the configured duration.
  double horizon_s = 0;

  /// Fairness floor on the per-sender Jain index at the horizon.
  double jain_floor = 0;
  /// A started, unfinished flow delivering zero new bytes over one full
  /// window of this length is starved.
  double starvation_window_s = 0;
  /// A flow retransmitting at least this many segments within one probe
  /// window is a retransmit storm.
  std::uint64_t retx_storm_segments = 0;

  /// When non-empty, the first counterexample's choice trace is written here.
  std::string trace_out;
};

/// One oracle violation and the schedule that produced it, replayable via
/// Explorer::replay().
struct Violation {
  std::string oracle;  ///< "invariant", "jain_floor", "starvation", "retx_storm"
  std::string detail;
  double at_s = 0;
  ChoiceTrace trace;
};

struct ExploreStats {
  std::uint64_t schedules_run = 0;
  std::uint64_t distinct_states = 0;   ///< unique end-state hashes
  std::uint64_t duplicate_states = 0;  ///< schedules pruned by the dedup set
  std::uint64_t truncated = 0;         ///< schedules stopped by the event budget
  std::uint64_t max_choice_points = 0; ///< longest choice sequence seen
  std::uint64_t frontier_left = 0;     ///< plans still queued when the budget hit
  std::uint64_t violations = 0;
};

/// Bounded-depth systematic schedule exploration over one experiment cell.
///
/// The loop: construct the cell once and snapshot its t=0 state; then for
/// each queued plan, restore the root snapshot, run the schedule to the
/// horizon under the plan (recording every choice point), hash the end
/// state, and evaluate the oracles. A fresh end-state hash expands the
/// frontier — every unexplored branch of the first `max_depth` choice points
/// becomes a child plan (the recorded prefix plus one flipped branch); a
/// hash already in the dedup set prunes the subtree. DFS order, bounded by
/// `max_schedules`.
///
/// Oracles: the run invariant checker (packet/byte conservation, cwnd
/// sanity — exp::InvariantViolation), a Jain-index floor, a per-flow
/// starvation window, and a per-window retransmit-storm detector. The first
/// violation of a schedule stops that schedule and serializes its choice
/// trace (see ChoiceTrace); `elephant explore --replay` re-executes it.
class Explorer {
 public:
  Explorer(const exp::ExperimentConfig& cfg, ExplorerOptions opts);

  /// Run the exploration (callable once per Explorer).
  ExploreStats explore();

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }

  struct ReplayReport {
    bool config_matches = false;        ///< cfg.id() equals the trace's echo
    bool diverged = false;              ///< a choice point mismatched the record
    std::size_t divergence_at = 0;      ///< index of the first mismatch
    bool hash_matches = false;          ///< end-state hash equals the stored one
    bool violation_reproduced = false;  ///< same oracle fired again
    std::string oracle;                 ///< oracle observed during the replay
    std::string detail;
    double at_s = 0;
    std::uint64_t end_state_hash = 0;
    [[nodiscard]] bool ok() const {
      return config_matches && !diverged && hash_matches && violation_reproduced;
    }
  };

  /// Deterministically re-execute a stored counterexample against `cfg`.
  /// Two passes: an untraced verification run (end-state hash and oracle
  /// must match the record), then — when `flight_recorder` is non-null — the
  /// identical schedule once more with the tracer attached (queue sampling
  /// off, see ExperimentConfig::trace_queue_sampling), producing the
  /// human-debuggable flight-recorder trace of the failure.
  static ReplayReport replay(const exp::ExperimentConfig& cfg, const ChoiceTrace& trace,
                             trace::Tracer* flight_recorder = nullptr);

 private:
  exp::ExperimentConfig cfg_;
  ExplorerOptions opts_;
  std::vector<Violation> violations_;
};

}  // namespace elephant::mc
