#include "mc/explorer.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "exp/cell.hpp"
#include "exp/status.hpp"
#include "mc/controller.hpp"
#include "trace/trace.hpp"

namespace elephant::mc {

namespace {

/// Resolved per-schedule bounds: what run_schedule() executes under.
struct ScheduleParams {
  sim::Time horizon{};
  sim::Time window{};  ///< probe interval (== horizon when starvation is off)
  sim::Time starvation_window{};
  std::uint64_t max_events = 0;
  double jain_floor = 0;
  std::uint64_t retx_storm = 0;
};

ScheduleParams resolve(const exp::Cell& cell, double horizon_s, double window_s,
                       double jain_floor, std::uint64_t retx_storm,
                       std::uint64_t max_events) {
  ScheduleParams p;
  p.horizon = horizon_s > 0 ? sim::Time::seconds(horizon_s) : cell.duration();
  if (p.horizon > cell.duration()) p.horizon = cell.duration();
  p.starvation_window = window_s > 0 ? sim::Time::seconds(window_s) : sim::Time::zero();
  p.window = window_s > 0 ? p.starvation_window : p.horizon;
  p.max_events = max_events;
  p.jain_floor = jain_floor;
  p.retx_storm = retx_storm;
  return p;
}

struct ScheduleOutcome {
  bool truncated = false;
  std::string oracle;  ///< empty = clean schedule
  std::string detail;
  double at_s = 0;
};

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* format, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof(buf), format, ap);
  va_end(ap);
  return buf;
}

/// Drive one schedule from the cell's current state to the horizon,
/// evaluating the windowed oracles at probe boundaries and the end-state
/// oracles (invariants, Jain floor) at the horizon. The first violation
/// stops the schedule.
ScheduleOutcome run_schedule(exp::Cell& cell, const ScheduleParams& p) {
  ScheduleOutcome out;
  exp::FlowFactory& flows = cell.flows();
  const std::size_t n = flows.size();
  std::vector<std::uint64_t> delivered(n), retx(n);
  for (std::size_t i = 0; i < n; ++i) {
    delivered[i] = flows.flow(i).receiver->delivered_bytes();
    retx[i] = flows.flow(i).sender->retx_segments();
  }

  const std::uint64_t start_exec = cell.scheduler().executed_events();
  sim::Time t = cell.now();
  bool done = false;
  while (t < p.horizon && !done) {
    sim::Time next = t + p.window;
    if (next > p.horizon) next = p.horizon;
    std::uint64_t chunk_budget = 0;
    if (p.max_events > 0) {
      const std::uint64_t used = cell.scheduler().executed_events() - start_exec;
      if (used >= p.max_events) {
        out.truncated = true;
        break;
      }
      chunk_budget = p.max_events - used;
    }
    const auto stop = cell.run_chunk(chunk_budget, next);
    if (stop == sim::Scheduler::StopReason::kEventBudget) {
      out.truncated = true;
      done = true;
    } else if (stop == sim::Scheduler::StopReason::kQueueExhausted) {
      done = true;
    }
    // A starvation verdict needs a full window; the final sliver before the
    // horizon (and a budget-truncated chunk) only updates the baselines.
    const bool full_window = !out.truncated && next - t >= p.window;
    for (std::size_t i = 0; i < n; ++i) {
      const exp::FlowInstance& f = flows.flow(i);
      const std::uint64_t d = f.receiver->delivered_bytes();
      const std::uint64_t r = f.sender->retx_segments();
      if (p.retx_storm > 0 && r - retx[i] >= p.retx_storm && out.oracle.empty()) {
        out.oracle = "retx_storm";
        out.detail = fmt("flow %zu retransmitted %llu segments in [%.6g, %.6g] s "
                         "(threshold %llu per window)",
                         i, static_cast<unsigned long long>(r - retx[i]), t.sec(),
                         next.sec(), static_cast<unsigned long long>(p.retx_storm));
      }
      if (p.starvation_window > sim::Time::zero() && full_window && d == delivered[i] &&
          f.start_time <= t && !f.sender->completed() && out.oracle.empty()) {
        out.oracle = "starvation";
        out.detail = fmt("flow %zu delivered 0 bytes over [%.6g, %.6g] s "
                         "(started at %.6g s, not finished)",
                         i, t.sec(), next.sec(), f.start_time.sec());
      }
      delivered[i] = d;
      retx[i] = r;
    }
    if (!out.oracle.empty()) {
      out.at_s = cell.now().sec();
      return out;
    }
    t = next;
  }

  // End-state oracles. finalize() runs the packet/byte-conservation and cwnd
  // invariant checker and computes the fairness aggregates; mid-horizon
  // truncation is fine (the invariants hold at every event boundary).
  out.at_s = cell.now().sec();
  try {
    const exp::ExperimentResult res = cell.finalize();
    if (p.jain_floor > 0 && res.jain2 < p.jain_floor) {
      out.oracle = "jain_floor";
      out.detail = fmt("jain2 %.6f below floor %.6f (S1 %.3f Mbps, S2 %.3f Mbps)",
                       res.jain2, p.jain_floor, res.sender_bps[0] / 1e6,
                       res.sender_bps[1] / 1e6);
    }
  } catch (const exp::InvariantViolation& e) {
    out.oracle = "invariant";
    out.detail = e.what();
  }
  return out;
}

}  // namespace

Explorer::Explorer(const exp::ExperimentConfig& cfg, ExplorerOptions opts)
    : cfg_(cfg), opts_(std::move(opts)) {
  // Exploration is snapshot-driven: no tracer (snapshots assert it off), no
  // metrics registry (pointless churn across thousands of restores).
  cfg_.tracer = nullptr;
  cfg_.metrics = nullptr;
}

ExploreStats Explorer::explore() {
  ScheduleController controller;
  exp::ExperimentConfig cfg = cfg_;
  cfg.choice_hook = &controller;
  exp::Cell cell(cfg);
  const sim::Snapshot root = cell.snapshot();
  const ScheduleParams params =
      resolve(cell, opts_.horizon_s, opts_.starvation_window_s, opts_.jain_floor,
              opts_.retx_storm_segments, opts_.max_schedule_events);

  ExploreStats st;
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::vector<std::uint32_t>> frontier;
  frontier.push_back({});  // plan {} = the seeded schedule

  while (!frontier.empty() && st.schedules_run < opts_.max_schedules) {
    const std::vector<std::uint32_t> plan = std::move(frontier.back());
    frontier.pop_back();

    cell.restore(root);
    controller.reset(plan);
    const ScheduleOutcome out = run_schedule(cell, params);
    ++st.schedules_run;
    if (out.truncated) ++st.truncated;

    const std::vector<ChoiceRec>& tr = controller.trace();
    st.max_choice_points = std::max<std::uint64_t>(st.max_choice_points, tr.size());
    const std::uint64_t hash = cell.state_hash();
    const bool fresh = seen.insert(hash).second;
    if (fresh) {
      ++st.distinct_states;
    } else {
      ++st.duplicate_states;
    }

    if (!out.oracle.empty()) {
      Violation v;
      v.oracle = out.oracle;
      v.detail = out.detail;
      v.at_s = out.at_s;
      v.trace.config_id = cfg_.id();
      v.trace.oracle = out.oracle;
      v.trace.detail = out.detail;
      v.trace.at_s = out.at_s;
      v.trace.state_hash = hash;
      v.trace.horizon_s = params.horizon.sec();
      v.trace.window_s = opts_.starvation_window_s;
      v.trace.jain_floor = opts_.jain_floor;
      v.trace.retx_storm_segments = opts_.retx_storm_segments;
      v.trace.max_schedule_events = opts_.max_schedule_events;
      v.trace.choices = tr;
      if (violations_.empty() && !opts_.trace_out.empty()) {
        // An unwritable path surfaces when the CLI tells the user where the
        // trace went; the violation itself is still reported either way.
        (void)v.trace.write_file(opts_.trace_out);
      }
      violations_.push_back(std::move(v));
    }

    // A fresh end state expands the frontier: every untaken branch of the
    // first max_depth choice points becomes a child plan. Children are
    // pushed deepest-first / highest-branch-first so the LIFO frontier pops
    // them in (shallowest, lowest-branch) order — classic DFS with the
    // left-most alternative first. A duplicate end state prunes the subtree:
    // its alternative interleavings were reachable from the first visit too.
    if (fresh) {
      const std::size_t limit = std::min<std::size_t>(tr.size(), opts_.max_depth);
      for (std::size_t i = limit; i > plan.size();) {
        --i;
        for (std::uint32_t b = tr[i].n_branches; b-- > 0;) {
          if (b == tr[i].chosen) continue;
          std::vector<std::uint32_t> child;
          child.reserve(i + 1);
          for (std::size_t j = 0; j < i; ++j) child.push_back(tr[j].chosen);
          child.push_back(b);
          frontier.push_back(std::move(child));
        }
      }
    }
  }

  st.violations = violations_.size();
  st.frontier_left = frontier.size();
  return st;
}

Explorer::ReplayReport Explorer::replay(const exp::ExperimentConfig& base,
                                        const ChoiceTrace& ct,
                                        trace::Tracer* flight_recorder) {
  ReplayReport rep;
  rep.config_matches = base.id() == ct.config_id;

  ScheduleController controller;
  exp::ExperimentConfig cfg = base;
  cfg.tracer = nullptr;
  cfg.metrics = nullptr;
  cfg.choice_hook = &controller;

  // Pass 1 — verification: untraced, so the end state is byte-comparable
  // with what the exploration hashed.
  {
    exp::Cell cell(cfg);
    const ScheduleParams params =
        resolve(cell, ct.horizon_s, ct.window_s, ct.jain_floor, ct.retx_storm_segments,
                ct.max_schedule_events);
    controller.reset_replay(&ct.choices);
    const ScheduleOutcome out = run_schedule(cell, params);
    rep.diverged = controller.diverged();
    rep.divergence_at = controller.divergence_at();
    rep.end_state_hash = cell.state_hash();
    rep.hash_matches = rep.end_state_hash == ct.state_hash;
    rep.oracle = out.oracle;
    rep.detail = out.detail;
    rep.at_s = out.at_s;
    rep.violation_reproduced = !ct.oracle.empty() && out.oracle == ct.oracle;
  }

  // Pass 2 — flight recorder: the identical schedule with tracing on. Queue
  // sampling stays off so the sampler's weak timer cannot join same-instant
  // tie sets and shift the choice-point sequence the trace prescribes.
  if (flight_recorder != nullptr) {
    exp::ExperimentConfig tcfg = cfg;
    tcfg.tracer = flight_recorder;
    tcfg.trace_queue_sampling = false;
    exp::Cell cell(tcfg);
    const ScheduleParams params =
        resolve(cell, ct.horizon_s, ct.window_s, ct.jain_floor, ct.retx_storm_segments,
                ct.max_schedule_events);
    controller.reset_replay(&ct.choices);
    run_schedule(cell, params);
    flight_recorder->flush();
  }
  return rep;
}

}  // namespace elephant::mc
