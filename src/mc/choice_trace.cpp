#include "mc/choice_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace elephant::mc {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Reads "key value" where value is the rest of the line (may be empty).
bool take_line(std::istringstream& in, const char* key, std::string* value,
               std::string* error) {
  std::string line;
  if (!std::getline(in, line)) {
    *error = std::string("unexpected end of trace, wanted '") + key + "'";
    return false;
  }
  const std::size_t klen = std::char_traits<char>::length(key);
  if (line.compare(0, klen, key) != 0 || (line.size() > klen && line[klen] != ' ')) {
    *error = std::string("expected '") + key + " ...', got '" + line + "'";
    return false;
  }
  value->clear();
  if (line.size() > klen + 1) value->assign(line, klen + 1, std::string::npos);
  return true;
}

}  // namespace

std::string ChoiceTrace::serialize() const {
  std::string out;
  out += "elephant-choice-trace v1\n";
  out += "config " + config_id + "\n";
  out += "oracle " + oracle + "\n";
  out += "detail " + detail + "\n";
  out += "at_s " + num(at_s) + "\n";
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, state_hash);
  out += std::string("state_hash ") + hex + "\n";
  out += "horizon_s " + num(horizon_s) + "\n";
  out += "window_s " + num(window_s) + "\n";
  out += "jain_floor " + num(jain_floor) + "\n";
  out += "retx_storm " + std::to_string(retx_storm_segments) + "\n";
  out += "max_events " + std::to_string(max_schedule_events) + "\n";
  out += "choices " + std::to_string(choices.size()) + "\n";
  for (const ChoiceRec& c : choices) {
    out += std::to_string(static_cast<unsigned>(c.kind)) + " " +
           std::to_string(c.n_branches) + " " + std::to_string(c.chosen) + "\n";
  }
  return out;
}

bool ChoiceTrace::parse(const std::string& text, ChoiceTrace* out, std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "elephant-choice-trace v1") {
    *error = "not a choice trace (bad header)";
    return false;
  }
  ChoiceTrace t;
  std::string v;
  if (!take_line(in, "config", &t.config_id, error)) return false;
  if (!take_line(in, "oracle", &t.oracle, error)) return false;
  if (!take_line(in, "detail", &t.detail, error)) return false;
  if (!take_line(in, "at_s", &v, error)) return false;
  t.at_s = std::strtod(v.c_str(), nullptr);
  if (!take_line(in, "state_hash", &v, error)) return false;
  t.state_hash = std::strtoull(v.c_str(), nullptr, 16);
  if (!take_line(in, "horizon_s", &v, error)) return false;
  t.horizon_s = std::strtod(v.c_str(), nullptr);
  if (!take_line(in, "window_s", &v, error)) return false;
  t.window_s = std::strtod(v.c_str(), nullptr);
  if (!take_line(in, "jain_floor", &v, error)) return false;
  t.jain_floor = std::strtod(v.c_str(), nullptr);
  if (!take_line(in, "retx_storm", &v, error)) return false;
  t.retx_storm_segments = std::strtoull(v.c_str(), nullptr, 10);
  if (!take_line(in, "max_events", &v, error)) return false;
  t.max_schedule_events = std::strtoull(v.c_str(), nullptr, 10);
  if (!take_line(in, "choices", &v, error)) return false;
  const std::uint64_t n = std::strtoull(v.c_str(), nullptr, 10);
  t.choices.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    unsigned kind = 0, branches = 0, chosen = 0;
    if (!std::getline(in, line) ||
        std::sscanf(line.c_str(), "%u %u %u", &kind, &branches, &chosen) != 3) {
      *error = "bad choice row " + std::to_string(i);
      return false;
    }
    t.choices.push_back(ChoiceRec{static_cast<sim::ChoiceKind>(kind), branches, chosen});
  }
  *out = std::move(t);
  return true;
}

bool ChoiceTrace::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << serialize();
  return static_cast<bool>(f.flush());
}

bool ChoiceTrace::read_file(const std::string& path, ChoiceTrace* out, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str(), out, error);
}

}  // namespace elephant::mc
