#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/choice.hpp"

namespace elephant::mc {

/// One consumed choice point: what kind of decision it was, how many
/// branches were available, and which one the schedule took. A run's full
/// sequence of these is the schedule — deterministic execution plus the
/// sequence reproduces the run exactly.
struct ChoiceRec {
  sim::ChoiceKind kind = sim::ChoiceKind::kSchedulerTie;
  std::uint32_t n_branches = 0;
  std::uint32_t chosen = 0;
};

/// A replayable counterexample: the violated oracle, the parameters the
/// schedule ran under, the end-state hash the replay must land on, and the
/// complete choice sequence.
///
/// Serialized as a line-oriented text file:
///
///   elephant-choice-trace v1
///   config <ExperimentConfig::id()>
///   oracle <name>              (empty for a clean-schedule trace)
///   detail <free text, one line>
///   at_s <sim seconds of the detection>
///   state_hash <16 hex digits>
///   horizon_s <replay horizon; 0 = configured duration>
///   window_s <starvation probe window; 0 = oracle off>
///   jain_floor <0 = oracle off>
///   retx_storm <segments per window; 0 = oracle off>
///   max_events <per-schedule event budget; 0 = unbounded>
///   choices <N>
///   <kind> <n_branches> <chosen>      (N rows, kind numeric per ChoiceKind)
///
/// The config line is an identity echo: replay refuses to run against a
/// different cell than the one that produced the trace.
struct ChoiceTrace {
  std::string config_id;
  std::string oracle;
  std::string detail;
  double at_s = 0;
  std::uint64_t state_hash = 0;

  // Schedule/oracle parameters, stored so a replay re-runs the exact same
  // bounded window with the exact same detectors armed.
  double horizon_s = 0;
  double window_s = 0;
  double jain_floor = 0;
  std::uint64_t retx_storm_segments = 0;
  std::uint64_t max_schedule_events = 0;

  std::vector<ChoiceRec> choices;

  [[nodiscard]] std::string serialize() const;
  /// Parse the serialized form; on failure returns false and sets *error.
  static bool parse(const std::string& text, ChoiceTrace* out, std::string* error);

  [[nodiscard]] bool write_file(const std::string& path) const;
  static bool read_file(const std::string& path, ChoiceTrace* out, std::string* error);
};

}  // namespace elephant::mc
