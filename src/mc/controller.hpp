#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mc/choice_trace.hpp"
#include "sim/choice.hpp"

namespace elephant::mc {

/// The explorer's sim::ChoiceHook: steers a run down a prescribed branch
/// prefix and records every choice point it passes.
///
/// A *plan* is a branch index per choice point, consumed in encounter order.
/// Points beyond the plan take branch 0 (the seeded outcome), so an empty
/// plan reproduces the seeded schedule exactly and a plan of length k pins
/// the first k decisions while everything after runs free. Because execution
/// is deterministic given the branch sequence, a plan that is a prefix of a
/// previously recorded trace re-creates that run's state at its k-th choice
/// point — this is what lets the DFS branch without per-prefix snapshots.
///
/// In replay mode the controller additionally validates each encountered
/// point against the recorded trace (same kind, same branch count) and
/// latches the index of the first mismatch, so a replay against drifted code
/// reports divergence instead of silently exploring a different run.
class ScheduleController final : public sim::ChoiceHook {
 public:
  static constexpr std::size_t kNoDivergence = static_cast<std::size_t>(-1);

  /// Exploration mode: follow `plan`, free (seeded) beyond it.
  void reset(std::vector<std::uint32_t> plan) {
    plan_ = std::move(plan);
    trace_.clear();
    expected_ = nullptr;
    divergence_ = kNoDivergence;
  }

  /// Replay mode: follow the recorded branches and validate kinds/arities.
  /// `expected` must outlive the run.
  void reset_replay(const std::vector<ChoiceRec>* expected) {
    plan_.clear();
    plan_.reserve(expected->size());
    for (const ChoiceRec& c : *expected) plan_.push_back(c.chosen);
    trace_.clear();
    expected_ = expected;
    divergence_ = kNoDivergence;
  }

  std::uint32_t choose(sim::ChoiceKind kind, std::uint32_t n_branches) override {
    const std::size_t i = trace_.size();
    std::uint32_t pick = 0;
    if (i < plan_.size() && plan_[i] < n_branches) pick = plan_[i];
    if (expected_ != nullptr && divergence_ == kNoDivergence &&
        (i >= expected_->size() || (*expected_)[i].kind != kind ||
         (*expected_)[i].n_branches != n_branches)) {
      divergence_ = i;
    }
    trace_.push_back(ChoiceRec{kind, n_branches, pick});
    return pick;
  }

  [[nodiscard]] const std::vector<ChoiceRec>& trace() const { return trace_; }
  [[nodiscard]] bool diverged() const { return divergence_ != kNoDivergence; }
  [[nodiscard]] std::size_t divergence_at() const { return divergence_; }

 private:
  std::vector<std::uint32_t> plan_;
  std::vector<ChoiceRec> trace_;
  const std::vector<ChoiceRec>* expected_ = nullptr;
  std::size_t divergence_ = kNoDivergence;
};

}  // namespace elephant::mc
