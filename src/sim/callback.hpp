#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace elephant::sim {

/// Small-buffer-optimized, move-only `void()` callable — the event engine's
/// replacement for `std::function<void()>`.
///
/// The captures that dominate the scheduler hot path (`[this]`,
/// `[this, interval]`, a handful of words) are stored inline, so scheduling
/// them never allocates. Oversized captures (a full ~120-byte `net::Packet`
/// on the fault-perturbed delivery path, fault-plan events) are placed in
/// fixed-size blocks recycled through a thread-local free list: after the
/// first few events of a run the slab is warm and the steady state performs
/// zero heap allocations. Captures beyond the block size (none today) fall
/// back to plain `operator new`.
class InplaceCallback {
 public:
  /// Inline capture budget. 64 bytes covers every hot-path lambda in the
  /// simulator (and a by-value `std::function`, for test convenience) while
  /// keeping a scheduler slot within one cache line pair.
  static constexpr std::size_t kInlineSize = 64;
  /// Pooled block size for oversized captures (packet-carrying lambdas).
  static constexpr std::size_t kBlockSize = 192;

  InplaceCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor): intended sink
    using D = std::remove_cvref_t<F>;
    static_assert(std::is_move_constructible_v<D>);
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_.inline_bytes)) D(std::forward<F>(f));
      vt_ = &vtable_for<D, Store::kInline>();
    } else if constexpr (sizeof(D) <= kBlockSize &&
                         alignof(D) <= alignof(std::max_align_t)) {
      storage_.heap = pool_alloc();
      ::new (storage_.heap) D(std::forward<F>(f));
      vt_ = &vtable_for<D, Store::kPooled>();
    } else {
      storage_.heap = ::operator new(sizeof(D), std::align_val_t{alignof(D)});
      ::new (storage_.heap) D(std::forward<F>(f));
      vt_ = &vtable_for<D, Store::kDirect>();
    }
  }

  InplaceCallback(InplaceCallback&& other) noexcept { steal(other); }

  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() { destroy(); }

  void operator()() { vt_->invoke(object()); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  /// True when the capture lives in the inline buffer (observability for the
  /// allocation tests; callers never need to care).
  [[nodiscard]] bool is_inline() const {
    return vt_ != nullptr && vt_->store == Store::kInline;
  }

  /// True when clone() is legal: empty, or holding a copy-constructible
  /// capture. Every capture the engine schedules is copy-constructible
  /// (raw pointers, PODs, packets, std::function shims), which is what makes
  /// scheduler snapshots possible; a move-only capture would trip the
  /// clone() assert the first time a snapshot is taken over it.
  [[nodiscard]] bool cloneable() const { return vt_ == nullptr || vt_->clone != nullptr; }

  /// Deep-copy the held capture (copy constructor of the capture type).
  /// Used by the scheduler's snapshot image so one captured state can be
  /// restored many times. Asserts cloneable().
  [[nodiscard]] InplaceCallback clone() const {
    InplaceCallback copy;
    if (vt_ != nullptr) {
      assert(vt_->clone != nullptr && "cannot snapshot a move-only capture");
      vt_->clone(object(), copy);
    }
    return copy;
  }

 private:
  enum class Store : unsigned char { kInline, kPooled, kDirect };

  struct VTable {
    void (*invoke)(void*);
    /// Move-construct into `dst` and destroy the source (inline captures
    /// only; pooled/direct captures relocate by pointer swap).
    void (*relocate)(void* dst, void* src);
    void (*destroy_free)(void*);
    /// Copy-construct the capture into a fresh callback; null when the
    /// capture type is not copy-constructible.
    void (*clone)(const void* src, InplaceCallback& dst);
    Store store;
  };

  union Storage {
    void* heap;
    alignas(std::max_align_t) std::byte inline_bytes[kInlineSize];
  };

  // --- thread-local free-list slab for pooled blocks ---
  struct Pool {
    void* free_head = nullptr;
    ~Pool() {
      while (free_head != nullptr) {
        void* next = *static_cast<void**>(free_head);
        ::operator delete(free_head, std::align_val_t{alignof(std::max_align_t)});
        free_head = next;
      }
    }
  };
  static Pool& pool() {
    thread_local Pool p;
    return p;
  }
  static void* pool_alloc() {
    Pool& p = pool();
    if (p.free_head != nullptr) {
      void* block = p.free_head;
      p.free_head = *static_cast<void**>(block);
      return block;
    }
    return ::operator new(kBlockSize, std::align_val_t{alignof(std::max_align_t)});
  }
  static void pool_free(void* block) {
    Pool& p = pool();
    *static_cast<void**>(block) = p.free_head;
    p.free_head = block;
  }

  template <typename D>
  static constexpr auto clone_for() -> void (*)(const void*, InplaceCallback&) {
    if constexpr (std::is_copy_constructible_v<D>) {
      return [](const void* src, InplaceCallback& dst) {
        dst = InplaceCallback(*static_cast<const D*>(src));
      };
    } else {
      return nullptr;
    }
  }

  template <typename D, Store S>
  static const VTable& vtable_for() {
    static constexpr VTable vt{
        /*invoke=*/[](void* obj) { (*static_cast<D*>(obj))(); },
        /*relocate=*/
        [](void* dst, void* src) {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        /*destroy_free=*/
        [](void* obj) {
          static_cast<D*>(obj)->~D();
          if constexpr (S == Store::kPooled) {
            pool_free(obj);
          } else if constexpr (S == Store::kDirect) {
            ::operator delete(obj, std::align_val_t{alignof(D)});
          }
        },
        /*clone=*/clone_for<D>(),
        /*store=*/S,
    };
    return vt;
  }

  void* object() {
    return vt_->store == Store::kInline ? static_cast<void*>(storage_.inline_bytes)
                                        : storage_.heap;
  }
  [[nodiscard]] const void* object() const {
    return vt_->store == Store::kInline
               ? static_cast<const void*>(storage_.inline_bytes)
               : storage_.heap;
  }

  void steal(InplaceCallback& other) {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      if (vt_->store == Store::kInline) {
        vt_->relocate(storage_.inline_bytes, other.storage_.inline_bytes);
      } else {
        storage_.heap = other.storage_.heap;
      }
      other.vt_ = nullptr;
    }
  }

  void destroy() {
    if (vt_ != nullptr) {
      vt_->destroy_free(object());
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  Storage storage_;
};

}  // namespace elephant::sim
