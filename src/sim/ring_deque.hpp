#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace elephant::sim {

/// Grow-only ring buffer with deque semantics (push_back / pop_front /
/// random access), used on the per-packet hot paths in place of
/// `std::deque`.
///
/// libstdc++'s deque allocates and frees its block map nodes as the window
/// slides, so a steady-state TCP scoreboard or port delay line churns the
/// allocator forever. This ring doubles its power-of-two backing store as
/// the high-water mark grows and then never touches the allocator again —
/// after warm-up, pushes and pops are index arithmetic.
template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] T& back() {
    assert(size_ > 0);
    return buf_[(head_ + size_ - 1) & mask_];
  }
  [[nodiscard]] const T& back() const {
    assert(size_ > 0);
    return buf_[(head_ + size_ - 1) & mask_];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow(size_ + 1);
    buf_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
    return back();
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Pre-size the backing store (rounded up to a power of two) so a known
  /// high-water mark never triggers a mid-run grow.
  void reserve(std::size_t n) {
    if (n > buf_.size()) grow(n);
  }

 private:
  void grow(std::size_t need) {
    std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    while (cap < need) cap *= 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace elephant::sim
