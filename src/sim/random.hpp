#pragma once

#include <array>
#include <cstdint>

namespace elephant::sim {

/// Deterministic pseudo-random source: xoshiro256++ seeded via splitmix64.
///
/// Every experiment run owns exactly one Rng seeded from the experiment
/// configuration, so repeated runs are bit-reproducible regardless of
/// platform or standard-library version (std::mt19937 distributions are not
/// portable across implementations).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Exponentially distributed value with the given mean.
  double next_exponential(double mean);

  /// Derive an independent child stream (used to give each flow its own RNG).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Derive the seed of sub-stream `stream_id` from a base seed, SplitMix64
/// style: statistically independent streams for distinct ids, stable across
/// platforms and releases (the values are part of the reproducibility
/// contract — see the golden tests in sim_random_test.cpp).
///
/// Stream 0 is the base seed itself, so "the first repetition / the first
/// retry / the cell's own stream" keeps its historical identity and results
/// seeded before this helper existed remain addressable.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_id);

}  // namespace elephant::sim
