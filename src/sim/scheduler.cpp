#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace elephant::sim {

EventId Scheduler::schedule_at(Time at, Callback cb) {
  assert(at >= now_ && "cannot schedule events in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq, std::move(cb)});
  return EventId{seq};
}

void Scheduler::cancel(EventId id) {
  if (id.valid()) cancelled_.insert(id.value);
}

bool Scheduler::pop_one(Time deadline) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > deadline) return false;
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    // Move the callback out before popping so it may schedule new events.
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    now_ = entry.at;
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (pop_one(Time::max())) {
  }
}

void Scheduler::run_until(Time deadline) {
  while (pop_one(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::clear() {
  queue_ = {};
  cancelled_.clear();
}

}  // namespace elephant::sim
