#include "sim/scheduler.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace elephant::sim {

EventId Scheduler::schedule_at(Time at, Callback cb) {
  assert(at >= now_ && "cannot schedule events in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq, std::move(cb)});
  return EventId{seq, at, epoch_};
}

bool Scheduler::pending(EventId id) const {
  if (!id.valid() || id.epoch != epoch_) return false;
  if (id.value >= next_seq_) return false;  // never issued (forged id)
  if (cancelled_.contains(id.value)) return false;
  // Entries are processed in (at, seq) order and processing an entry sets
  // now_ to its instant, so anything scheduled before now_ is gone, anything
  // after is queued, and ties are settled by the seq watermark.
  if (id.at != now_) return id.at > now_;
  return id.value > last_processed_seq_;
}

void Scheduler::cancel(EventId id) {
  if (pending(id)) cancelled_.insert(id.value);
}

bool Scheduler::pop_one(Time deadline) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > deadline) return false;
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      // Purging counts as processing for the liveness watermark (so a
      // re-cancel of this id stays a no-op), but not as an executed event.
      now_ = top.at;
      last_processed_seq_ = top.seq;
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    // Move the callback out before popping so it may schedule new events.
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    now_ = entry.at;
    last_processed_seq_ = entry.seq;
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (pop_one(Time::max())) {
  }
}

void Scheduler::run_until(Time deadline) {
  while (pop_one(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

Scheduler::StopReason Scheduler::run_until(Time deadline, const RunLimits& limits) {
  // Poll the wall clock only once per kWallCheckStride events: a
  // steady_clock read per event would dominate the scheduler's cost.
  constexpr std::uint64_t kWallCheckStride = 4096;
  const bool wall_bounded = limits.max_wall_seconds > 0;
  const auto wall_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(wall_bounded ? limits.max_wall_seconds : 0));
  const std::uint64_t event_stop =
      limits.max_events > 0 ? executed_ + limits.max_events : 0;

  std::uint64_t since_wall_check = 0;
  while (true) {
    if (event_stop != 0 && executed_ >= event_stop) return StopReason::kEventBudget;
    if (wall_bounded && ++since_wall_check >= kWallCheckStride) {
      since_wall_check = 0;
      if (std::chrono::steady_clock::now() >= wall_deadline) return StopReason::kWallBudget;
    }
    if (!pop_one(deadline)) break;
  }
  const bool exhausted = queue_.empty();
  if (now_ < deadline) now_ = deadline;
  return exhausted ? StopReason::kQueueExhausted : StopReason::kDeadline;
}

void Scheduler::clear() {
  queue_ = {};
  cancelled_.clear();
  ++epoch_;
}

}  // namespace elephant::sim
