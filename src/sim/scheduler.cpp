#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/choice.hpp"
#include "sim/snapshot.hpp"

namespace elephant::sim {

// --- slot management -------------------------------------------------------

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  const auto slot = static_cast<std::uint32_t>(slots_.size() - 1);
  slots_[slot].gen = 1;  // generation 0 never validates (defeats forged ids)
  return slot;
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.state = SlotState::kFree;
  s.heap_pos = kNpos;
  ++s.gen;  // invalidate outstanding EventIds referencing this use
  s.cb = Callback{};
  free_slots_.push_back(slot);
}

// --- indexed 4-ary min-heap ------------------------------------------------
//
// Entries carry the slot id and a copy of the slot's (at, seq) key; each
// slot carries its heap position so removal and re-keying are direct. The
// wider fan-out halves the tree depth of a binary heap, and the embedded key
// keeps every comparison inside the contiguous entry array — a sift at
// 100k-flow heap depth would otherwise take a cache miss per comparison
// chasing slot ids into the scattered Slot array.

void Scheduler::heap_sift_up(std::uint32_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!heap_less(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving.slot].heap_pos = pos;
}

void Scheduler::heap_sift_down(std::uint32_t pos) {
  const auto size = static_cast<std::uint32_t>(heap_.size());
  const HeapEntry moving = heap_[pos];
  while (true) {
    const std::uint32_t first_child = pos * 4 + 1;
    if (first_child >= size) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        first_child + 3 < size ? first_child + 3 : size - 1;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (heap_less(heap_[c], heap_[best])) best = c;
    }
    if (!heap_less(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving.slot].heap_pos = pos;
}

void Scheduler::heap_update(std::uint32_t pos) {
  if (pos > 0 && heap_less(heap_[pos], heap_[(pos - 1) / 4])) {
    heap_sift_up(pos);
  } else {
    heap_sift_down(pos);
  }
}

void Scheduler::heap_insert(std::uint32_t slot) {
  const Slot& s = slots_[slot];
  heap_.push_back(HeapEntry{s.at, s.seq, slot});
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  slots_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  heap_sift_up(slots_[slot].heap_pos);
}

void Scheduler::heap_remove(std::uint32_t pos) {
  slots_[heap_[pos].slot].heap_pos = kNpos;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    heap_[pos] = last;
    slots_[last.slot].heap_pos = pos;
    heap_update(pos);
  }
}

// --- one-shot events -------------------------------------------------------

EventId Scheduler::schedule_at(Time at, Callback cb) {
  assert(at >= now_ && "cannot schedule events in the past");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.at = at;
  s.seq = next_seq_++;
  s.state = SlotState::kOneShot;
  s.weak = false;
  s.cb = std::move(cb);
  heap_insert(slot);
  ++strong_armed_;
  return EventId{(static_cast<std::uint64_t>(s.gen) << 32) | (slot + 1)};
}

bool Scheduler::pending(EventId id) const {
  if (!id.valid()) return false;
  const std::uint64_t index = (id.value & 0xffffffffull) - 1;
  if (index >= slots_.size()) return false;
  const Slot& s = slots_[index];
  return s.gen == (id.value >> 32) && s.state == SlotState::kOneShot;
}

void Scheduler::cancel(EventId id) {
  if (!pending(id)) return;
  const auto slot = static_cast<std::uint32_t>((id.value & 0xffffffffull) - 1);
  heap_remove(slots_[slot].heap_pos);
  --strong_armed_;
  release_slot(slot);
}

// --- timers ----------------------------------------------------------------

std::uint32_t Scheduler::timer_create(Callback cb, bool weak) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.state = SlotState::kTimerIdle;
  s.weak = weak;
  s.cb = std::move(cb);
  return slot;
}

void Scheduler::timer_destroy(std::uint32_t slot) {
  timer_disarm(slot);
  release_slot(slot);
}

void Scheduler::timer_rearm(std::uint32_t slot, Time at) {
  assert(at >= now_ && "cannot schedule events in the past");
  Slot& s = slots_[slot];
  assert(s.state == SlotState::kTimerArmed || s.state == SlotState::kTimerIdle ||
         s.state == SlotState::kTimerFiring);
  s.at = at;
  s.seq = next_seq_++;  // fresh FIFO rank, exactly as cancel + re-schedule had
  if (s.state == SlotState::kTimerFiring) {
    // Re-armed from its own callback: the heap entry is parked in place;
    // pop_one() re-keys it from the slot once the callback returns.
    s.state = SlotState::kTimerArmed;
    if (!s.weak) ++strong_armed_;
    return;
  }
  if (s.state == SlotState::kTimerArmed) {
    HeapEntry& e = heap_[s.heap_pos];
    if (at >= e.at) {
      // Lazy re-key: pushing a deadline out (the RTO/delayed-ACK pattern —
      // every ACK moves the timer later) leaves the stale entry in place
      // instead of sifting it down the whole heap. pop_one() re-files the
      // entry at the authoritative (at, seq) without firing, so fire order
      // is exactly what an eager sift would have produced. The slot's key
      // is already fresh, so this rearm is two stores instead of an
      // O(log n) sift per ACK.
      return;
    }
    e.at = s.at;
    e.seq = s.seq;
    heap_sift_up(s.heap_pos);  // strictly earlier than the entry: up only
  } else {
    s.state = SlotState::kTimerArmed;
    heap_insert(slot);
    if (!s.weak) ++strong_armed_;
  }
}

void Scheduler::timer_disarm(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.state == SlotState::kTimerArmed) {
    heap_remove(s.heap_pos);
    s.state = SlotState::kTimerIdle;
    if (!s.weak) --strong_armed_;
  } else if (s.state == SlotState::kTimerFiring) {
    // Disarmed (or destroyed) from its own callback: drop the parked entry
    // now so pop_one() finds nothing left to re-key. strong_armed_ was
    // already decremented when the fire was popped.
    heap_remove(s.heap_pos);
    s.state = SlotState::kTimerIdle;
  }
}

// --- run loop --------------------------------------------------------------

bool Scheduler::pop_one(Time deadline) {
  while (true) {
    if (heap_.empty()) return false;
    if (heap_[0].at > deadline) return false;
    const Slot& s = slots_[heap_[0].slot];
    if (s.state == SlotState::kTimerArmed && s.seq != heap_[0].seq) {
      // Stale entry from a lazy rearm (the seq is redrawn on every rearm, so
      // a mismatch — including a same-instant rearm that only moved the FIFO
      // rank — means the slot's key is the authority): re-file it and look
      // again. now_ and executed_ are untouched, so the refile is invisible
      // to the simulation.
      heap_[0].at = s.at;
      heap_[0].seq = s.seq;
      heap_sift_down(0);
      continue;
    }
    break;
  }

  // The root is the FIFO pick. With a choice hook attached, a same-instant
  // tie becomes a kSchedulerTie branch and the hook may fire a later-armed
  // tied event first.
  const std::uint32_t pos = choice_hook_ != nullptr ? choose_tied_entry() : 0;
  fire_entry(pos);
  return true;
}

std::uint32_t Scheduler::choose_tied_entry() {
  const Time at = heap_[0].at;
  // Re-file any stale lazy-rearm entry still carrying this instant's key:
  // its slot's authoritative deadline is later (or its FIFO rank moved), so
  // it must not appear in the tie set. heap_update can shuffle positions, so
  // restart the scan after each re-file; ties are rare and exploration cells
  // are tiny, so the quadratic worst case is irrelevant.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::uint32_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i].at != at) continue;
      const Slot& s = slots_[heap_[i].slot];
      if (s.state == SlotState::kTimerArmed && s.seq != heap_[i].seq) {
        heap_[i].at = s.at;
        heap_[i].seq = s.seq;
        heap_update(i);
        changed = true;
        break;
      }
    }
  }
  tie_scratch_.clear();
  for (std::uint32_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].at == at) tie_scratch_.emplace_back(heap_[i].seq, i);
  }
  if (tie_scratch_.size() < 2) return 0;
  std::sort(tie_scratch_.begin(), tie_scratch_.end());
  assert(tie_scratch_[0].second == 0 && "root must be the lowest-seq tie");
  const std::uint32_t branch = choice_hook_->choose(
      ChoiceKind::kSchedulerTie, static_cast<std::uint32_t>(tie_scratch_.size()));
  return tie_scratch_[branch < tie_scratch_.size() ? branch : 0].second;
}

void Scheduler::fire_entry(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos].slot;

#ifndef NDEBUG
  // Same-instant ordering contract (see the class comment): without a hook,
  // the fired entry must be the lowest-seq live entry among its instant's
  // ties. Stale lazy-rearm entries (slot seq differs) are excluded — their
  // slot's authoritative key is later. Debug builds only: O(heap) per event.
  if (choice_hook_ == nullptr) {
    for (const HeapEntry& e : heap_) {
      const Slot& es = slots_[e.slot];
      const bool fresh = !(es.state == SlotState::kTimerArmed && es.seq != e.seq);
      assert(!(fresh && e.at == heap_[pos].at && e.seq < heap_[pos].seq) &&
             "same-instant FIFO tie-break violated");
    }
  }
#endif

  now_ = heap_[pos].at;
  if (!slots_[slot].weak) --strong_armed_;
  ++executed_;

  if (slots_[slot].state == SlotState::kOneShot) {
    // Move the callback out and free the slot first, so the callback may
    // freely schedule new events (which can recycle this very slot or grow
    // the slot array) while it runs.
    heap_remove(pos);
    Callback cb = std::move(slots_[slot].cb);
    release_slot(slot);
    cb();
  } else {
    // Timer fire: the slot survives for rearm(). The heap entry is parked in
    // place — nearly every timer in the engine (delay line, serialization
    // wake, pacing, RTO, samplers) re-arms from its own callback, and the
    // parked entry turns that into one in-place re-key instead of a
    // whole-depth remove plus a whole-depth insert. The callback is moved to
    // the stack for the call — slots_ may reallocate underneath us — and
    // moved back afterwards unless the timer was destroyed mid-call.
    slots_[slot].state = SlotState::kTimerFiring;
    const std::uint32_t gen = slots_[slot].gen;
    Callback cb = std::move(slots_[slot].cb);
    cb();
    if (slots_[slot].gen == gen) {
      slots_[slot].cb = std::move(cb);
      Slot& s = slots_[slot];
      if (s.state == SlotState::kTimerFiring) {
        // Not re-armed: the parked entry (possibly displaced by inserts
        // during the callback — heap_pos tracks it) comes out now.
        s.state = SlotState::kTimerIdle;
        heap_remove(s.heap_pos);
      } else if (s.state == SlotState::kTimerArmed) {
        // Re-armed during the callback: refresh the parked entry's key from
        // the slot and restore heap order with a single sift.
        const std::uint32_t pos = s.heap_pos;
        heap_[pos].at = s.at;
        heap_[pos].seq = s.seq;
        heap_update(pos);
      }
      // kTimerIdle: disarmed mid-callback; the entry is already gone.
    }
  }
}

void Scheduler::publish_metrics() const {
  // metrics_ is checked non-null by the callers; three relaxed stores.
  metrics_->events_executed->set(static_cast<double>(executed_));
  metrics_->heap_depth->set(static_cast<double>(heap_.size()));
  metrics_->heap_peak->set(static_cast<double>(heap_peak_));
}

void Scheduler::run() {
  while (strong_armed_ > 0 && pop_one(Time::max())) {
  }
  if (metrics_ != nullptr) publish_metrics();
}

void Scheduler::run_until(Time deadline) {
  while (pop_one(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
  if (metrics_ != nullptr) publish_metrics();
}

Scheduler::StopReason Scheduler::run_until(Time deadline, const RunLimits& limits) {
  // Poll the wall clock only once per kWallCheckStride events: a
  // steady_clock read per event would dominate the scheduler's cost.
  constexpr std::uint64_t kWallCheckStride = 4096;
  // The per-call wall histogram is an explicit opt-in (see SchedulerMetrics):
  // the clock is only read when it is wired, so callers that invoke run_until
  // at per-event granularity pay one untaken branch, not two clock reads.
  const bool profile_wall = metrics_ != nullptr && metrics_->run_wall_s != nullptr;
  const auto call_start = profile_wall ? std::chrono::steady_clock::now()
                                       : std::chrono::steady_clock::time_point{};
  const bool wall_bounded = limits.max_wall_seconds > 0;
  const auto wall_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(wall_bounded ? limits.max_wall_seconds : 0));
  const std::uint64_t event_stop =
      limits.max_events > 0 ? executed_ + limits.max_events : 0;

  std::uint64_t since_wall_check = 0;
  StopReason reason = StopReason::kDeadline;
  while (true) {
    if (event_stop != 0 && executed_ >= event_stop) {
      reason = StopReason::kEventBudget;
      break;
    }
    if (wall_bounded && ++since_wall_check >= kWallCheckStride) {
      since_wall_check = 0;
      if (std::chrono::steady_clock::now() >= wall_deadline) {
        reason = StopReason::kWallBudget;
        break;
      }
    }
    if (!pop_one(deadline)) {
      // "Exhausted" means no strong work left; lone weak samplers would
      // otherwise report an eternal kDeadline.
      reason = strong_armed_ == 0 ? StopReason::kQueueExhausted : StopReason::kDeadline;
      if (now_ < deadline) now_ = deadline;
      break;
    }
  }
  if (metrics_ != nullptr) {
    publish_metrics();
    if (profile_wall) {
      metrics_->run_wall_s->record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - call_start)
              .count());
    }
  }
  return reason;
}

// --- model-checking snapshot support ---------------------------------------

Scheduler::Image Scheduler::save_image() const {
  Image img;
  img.now = now_;
  img.next_seq = next_seq_;
  img.executed = executed_;
  img.strong_armed = strong_armed_;
  img.heap = heap_;
  img.free_slots = free_slots_;
  img.slots.reserve(slots_.size());
  for (const Slot& s : slots_) {
    assert(s.state != SlotState::kTimerFiring &&
           "snapshots may only be taken between events");
    Slot c;
    c.at = s.at;
    c.seq = s.seq;
    c.heap_pos = s.heap_pos;
    c.gen = s.gen;
    c.state = s.state;
    c.weak = s.weak;
    if (s.cb) c.cb = s.cb.clone();
    img.slots.push_back(std::move(c));
  }
  return img;
}

void Scheduler::restore_image(const Image& img) {
  now_ = img.now;
  next_seq_ = img.next_seq;
  executed_ = img.executed;
  strong_armed_ = img.strong_armed;
  heap_ = img.heap;
  free_slots_ = img.free_slots;
  slots_.clear();
  slots_.reserve(img.slots.size());
  for (const Slot& s : img.slots) {
    Slot c;
    c.at = s.at;
    c.seq = s.seq;
    c.heap_pos = s.heap_pos;
    c.gen = s.gen;
    c.state = s.state;
    c.weak = s.weak;
    if (s.cb) c.cb = s.cb.clone();  // image stays restorable again later
    slots_.push_back(std::move(c));
  }
  // heap_peak_ is telemetry, not behavior: keep the high-water mark.
}

std::uint64_t Scheduler::state_hash() const {
  static_assert(sizeof(Time) == sizeof(std::uint64_t));
  // Armed slots in arrival (seq) order: relative order is behavior (it is
  // the tie-break), absolute seq values are not — two identical states
  // reached through different schedules would never dedup if we hashed them.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> armed;
  armed.reserve(heap_.size());
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.state == SlotState::kOneShot || s.state == SlotState::kTimerArmed) {
      armed.emplace_back(s.seq, i);
    }
  }
  std::sort(armed.begin(), armed.end());
  std::uint64_t h = fnv1a_fold(kFnvOffset, std::bit_cast<std::uint64_t>(now_));
  h = fnv1a_fold(h, armed.size());
  for (const auto& [seq, i] : armed) {
    const Slot& s = slots_[i];
    h = fnv1a_fold(h, i);
    h = fnv1a_fold(h, std::bit_cast<std::uint64_t>(s.at));
    h = fnv1a_fold(h, (static_cast<std::uint64_t>(s.state) << 1) |
                          static_cast<std::uint64_t>(s.weak));
  }
  return h;
}

void Scheduler::clear() {
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    switch (slots_[slot].state) {
      case SlotState::kOneShot:
        release_slot(slot);
        break;
      case SlotState::kTimerArmed:
      case SlotState::kTimerFiring:
        slots_[slot].state = SlotState::kTimerIdle;
        slots_[slot].heap_pos = kNpos;
        break;
      case SlotState::kTimerIdle:
      case SlotState::kFree:
        break;
    }
  }
  heap_.clear();
  strong_armed_ = 0;
}

}  // namespace elephant::sim
