#pragma once

#include <cstdint>
#include <compare>
#include <type_traits>
#include <limits>
#include <string>

namespace elephant::sim {

/// Simulation time with nanosecond resolution.
///
/// A strong wrapper around a signed 64-bit nanosecond count. Signed so that
/// differences (e.g. RTT estimates, negative slack) are representable without
/// surprises. 2^63 ns is ~292 years, far beyond any experiment length.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) { return Time(ns); }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t us) { return Time(us * 1'000); }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t ms) { return Time(ms * 1'000'000); }
  [[nodiscard]] static constexpr Time seconds(double s) {
    return Time(static_cast<std::int64_t>(s * 1e9));
  }
  [[nodiscard]] static constexpr Time zero() { return Time(0); }
  [[nodiscard]] static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }
  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time(a.ns_ * k); }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time(a.ns_ * k); }
  // Constrained to floating point so integer literals unambiguously pick the
  // int64 overload above.
  template <typename F>
    requires std::is_floating_point_v<F>
  friend constexpr Time operator*(Time a, F k) {
    return Time(static_cast<std::int64_t>(static_cast<double>(a.ns_) * static_cast<double>(k)));
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time(a.ns_ / k); }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  /// Human-readable rendering, e.g. "12.345ms", used in traces and test failures.
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Duration a transmission of `bytes` occupies a link of `bits_per_second`.
[[nodiscard]] constexpr Time transmission_time(std::int64_t bytes, double bits_per_second) {
  return Time::seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace elephant::sim
