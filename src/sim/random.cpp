#include "sim/random.hpp"

#include <cmath>

namespace elephant::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_exponential(double mean) {
  // Avoid log(0) by nudging the uniform sample away from zero.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_id) {
  if (stream_id == 0) return base;
  // Advance a SplitMix64 state by the stream id (multiplying by the golden
  // gamma keeps distinct ids in distinct orbits), then draw one output. Two
  // draws would be overkill: the finalizer already avalanche-mixes base and
  // id into every output bit.
  std::uint64_t x = base + stream_id * 0x9E3779B97F4A7C15ULL;
  return splitmix64(x);
}

}  // namespace elephant::sim
