#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace elephant::sim {

std::string Time::to_string() const {
  char buf[48];
  const double abs_ns = std::abs(static_cast<double>(ns_));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.6gs", sec());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.6gms", ms());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.6gus", us());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace elephant::sim
