#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "obs/profiler.hpp"

namespace elephant::sim {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

}  // namespace

ShardedEngine::ShardedEngine(std::size_t lanes) {
  if (lanes == 0) lanes = 1;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Scheduler>());
  }
  lane_stops_.assign(lanes, Scheduler::StopReason::kQueueExhausted);
}

void ShardedEngine::set_profiler(obs::PhaseProfiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) {
    phase_work_ = profiler_->register_phase("shard_work");
    phase_barrier_a_ = profiler_->register_phase("shard_barrier_a");
    phase_drain_ = profiler_->register_phase("shard_drain");
    phase_barrier_b_ = profiler_->register_phase("shard_barrier_b");
  }
}

void ShardedEngine::set_boundary_observer(std::function<void()> observer) {
  boundary_observer_ = std::move(observer);
}

std::uint64_t ShardedEngine::total_executed_events() const {
  std::uint64_t total = 0;
  for (const auto& l : lanes_) total += l->executed_events();
  return total;
}

std::size_t ShardedEngine::total_peak_pending_events() const {
  std::size_t total = 0;
  for (const auto& l : lanes_) total += l->peak_pending_events();
  return total;
}

Scheduler::RunLimits ShardedEngine::lane_limits() const {
  // Per-window watchdogs handed to each lane: whatever remains of the global
  // budget. A single lane may consume the whole remainder before the next
  // boundary check, so the collective total can overshoot by up to lanes-1
  // windows' worth — acceptable for a watchdog whose job is to stop runaway
  // runs, not to meter them exactly.
  Scheduler::RunLimits l;
  if (limits_.max_events != 0) {
    const std::uint64_t total = total_executed_events();
    l.max_events = limits_.max_events > total ? limits_.max_events - total : 1;
  }
  if (limits_.max_wall_seconds > 0) {
    const double rest = limits_.max_wall_seconds - elapsed_seconds(wall_start_);
    l.max_wall_seconds = std::max(rest, 0.01);
  }
  return l;
}

void ShardedEngine::on_window_boundary() noexcept {
  using SR = Scheduler::StopReason;
  // Every lane is parked in barrier B: the observer may read any lane's
  // scheduler and the shared simulation state without racing. It must not
  // throw (noexcept context) and must not mutate the schedule.
  if (boundary_observer_) boundary_observer_();
  for (const SR s : lane_stops_) {
    if (s == SR::kEventBudget || s == SR::kWallBudget) {
      stop_ = s;
      done_ = true;
      return;
    }
  }
  const std::uint64_t total = total_executed_events();
  if (limits_.max_events != 0 && total >= limits_.max_events) {
    stop_ = SR::kEventBudget;
    done_ = true;
    return;
  }
  if (limits_.max_wall_seconds > 0 &&
      elapsed_seconds(wall_start_) >= limits_.max_wall_seconds) {
    stop_ = SR::kWallBudget;
    done_ = true;
    return;
  }
  std::size_t strong = 0;
  for (const auto& l : lanes_) strong += l->strong_pending_events();
  if (strong == 0) {
    // Nothing anywhere can generate further work (drains already ran, so
    // in-flight cross-lane packets are counted). Mirrors the single-threaded
    // run_until returning early on an exhausted queue.
    stop_ = SR::kQueueExhausted;
    done_ = true;
    return;
  }
  if (window_end_ >= deadline_) {
    stop_ = SR::kDeadline;
    done_ = true;
    return;
  }
  window_end_ = std::min(window_end_ + window_, deadline_);
  per_lane_limits_ = lane_limits();
}

Scheduler::StopReason ShardedEngine::run_windows(Time deadline, Time window,
                                                 const Scheduler::RunLimits& limits,
                                                 const DrainFn& drain) {
  if (window <= Time::zero()) window = deadline - lane(0).now();
  deadline_ = deadline;
  window_ = window;
  window_end_ = std::min(lane(0).now() + window, deadline);
  limits_ = limits;
  wall_start_ = std::chrono::steady_clock::now();
  done_ = false;
  stop_ = Scheduler::StopReason::kQueueExhausted;
  per_lane_limits_ = lane_limits();
  std::fill(lane_stops_.begin(), lane_stops_.end(),
            Scheduler::StopReason::kQueueExhausted);

  // Barrier-B completion runs on exactly one (unspecified) thread while all
  // lanes are parked in arrive_and_wait, which is what lets it read every
  // scheduler and rewrite the shared window state without locks.
  struct Boundary {
    ShardedEngine* engine;
    void operator()() noexcept { engine->on_window_boundary(); }
  };
  const auto n = static_cast<std::ptrdiff_t>(lanes());
  std::barrier<> run_done(n);
  std::barrier<Boundary> window_done(n, Boundary{this});

  auto loop = [&](std::size_t i) {
    for (;;) {
      {
        obs::PhaseProfiler::Span span(profiler_, phase_work_, i);
        lane_stops_[i] = lanes_[i]->run_until(window_end_, per_lane_limits_);
      }
      {
        // Time spent waiting on the stragglers: the lane-imbalance signal.
        obs::PhaseProfiler::Span span(profiler_, phase_barrier_a_, i);
        run_done.arrive_and_wait();  // every producer is done with this window
      }
      {
        obs::PhaseProfiler::Span span(profiler_, phase_drain_, i);
        drain(i);  // pull this lane's inbound handoffs
      }
      {
        // Includes the boundary completion (stop decision + observer) for
        // whichever thread the barrier elects to run it.
        obs::PhaseProfiler::Span span(profiler_, phase_barrier_b_, i);
        window_done.arrive_and_wait();
      }
      if (done_) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(lanes() - 1);
  for (std::size_t i = 1; i < lanes(); ++i) {
    threads.emplace_back(loop, i);
  }
  loop(0);
  for (std::thread& t : threads) t.join();
  return stop_;
}

}  // namespace elephant::sim
