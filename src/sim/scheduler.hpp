#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace elephant::sim {

/// Opaque handle to a scheduled event; used to cancel timers.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
};

/// Discrete-event scheduler: a time-ordered queue of callbacks.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO
/// tie-break via a monotone sequence number), which keeps runs deterministic.
/// Cancellation is lazy: cancelled ids are remembered and skipped at pop
/// time, so cancel() is O(1) and the heap is never restructured.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Advances only inside run()/run_until().
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(Time at, Callback cb);

  /// Schedule `cb` after `delay` from now.
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, cb); }

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a no-op.
  void cancel(EventId id);

  /// Run until the queue is empty.
  void run();

  /// Run until the queue is empty or simulation time would exceed `deadline`.
  /// On return now() == min(deadline, time of last event).
  void run_until(Time deadline);

  /// Drop every pending event (used when tearing down a run early).
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& rhs) const {
      if (at != rhs.at) return at > rhs.at;
      return seq > rhs.seq;
    }
  };

  bool pop_one(Time deadline);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace elephant::sim
