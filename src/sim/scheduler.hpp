#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace elephant::obs {
struct SchedulerMetrics;
}  // namespace elephant::obs

namespace elephant::sim {

class ChoiceHook;

/// Opaque handle to a scheduled one-shot event; used to cancel it.
///
/// Encodes a slot index and that slot's generation. A handle is live exactly
/// while its slot is armed with a matching generation, so cancelling an
/// already-fired, already-cancelled, cleared, or forged id is a true no-op
/// decided in O(1) without any side table.
struct EventId {
  std::uint64_t value = 0;  ///< (generation << 32) | (slot + 1); 0 = invalid
  [[nodiscard]] bool valid() const { return value != 0; }
};

/// Discrete-event scheduler: a time-ordered queue of callbacks, engineered
/// so the steady-state per-event path never touches the allocator.
///
/// - Callbacks are `InplaceCallback`s stored in stable slots recycled
///   through a free list; the common `[this]`-sized captures live inline.
/// - The priority queue is an indexed 4-ary min-heap with back-pointers, so
///   cancel() removes its entry directly (no tombstones, no `unordered_set`
///   side table, and pending_events() is just the heap size). Each heap
///   entry carries its own (at, seq) sort key: sift loops compare and move
///   contiguous entries instead of dereferencing into the slot array, whose
///   ~100k scattered Slots would cost a cache miss per comparison in a
///   high-flow-count cell.
/// - Re-armable timers (`TimerHandle`) keep their slot and callback across
///   fires: re-scheduling updates the slot's key and sifts, instead of
///   growing the heap with a cancelled entry plus a fresh allocation.
///
/// ## Same-instant ordering contract
///
/// Events scheduled for the same instant fire in scheduling order: every
/// (re)arm draws a fresh value from a monotone sequence counter, and the
/// heap orders by (at, seq). This FIFO-among-ties behavior is an explicit,
/// documented contract, not an implementation accident:
///
///  - it is what makes whole runs deterministic functions of the seed (the
///    golden-digest tests pin it end to end);
///  - re-arming a timer for the *same* instant still demotes it behind
///    events armed earlier for that instant (the seq is re-drawn);
///  - lazy re-keying (see timer_rearm) never changes fire order — pop_one()
///    re-files stale entries against the slot's authoritative (at, seq)
///    before firing anything;
///  - the model checker's kSchedulerTie choice point branches over exactly
///    this tie set, with the FIFO pick as branch 0, so exploration off
///    reproduces the contract bit-for-bit.
///
/// Debug builds assert, on every fire, that no live same-instant entry with
/// a smaller sequence number was bypassed; a dedicated regression test arms
/// two timers for the same tick and asserts arm-order firing.
class Scheduler {
 public:
  using Callback = InplaceCallback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Advances only inside run()/run_until().
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(Time at, Callback cb);

  /// Schedule `cb` after `delay` from now.
  EventId schedule_in(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid id is a no-op.
  void cancel(EventId id);

  /// True while the event is queued and not cancelled; false once it has
  /// fired, been cancelled, or been dropped by clear().
  [[nodiscard]] bool pending(EventId id) const;

  /// Run until no *strong* events remain. Weak events (periodic samplers)
  /// fire while strong work exists but do not hold the run open on their
  /// own, so an instrumented simulation still terminates.
  void run();

  /// Run until the queue is empty or simulation time would exceed `deadline`.
  /// On return now() == min(deadline, time of last processed entry). Weak
  /// events keep firing here — the deadline already bounds the run.
  void run_until(Time deadline);

  /// Watchdog budgets for a bounded run (0 = unlimited). The wall clock is
  /// polled every few thousand events so the check stays off the hot path.
  struct RunLimits {
    std::uint64_t max_events = 0;   ///< executed-event budget for this call
    double max_wall_seconds = 0;    ///< wall-clock budget for this call
  };

  /// Why a bounded run returned.
  enum class StopReason {
    kQueueExhausted,  ///< no strong events left (weak samplers may remain)
    kDeadline,        ///< simulated time reached `deadline`
    kEventBudget,     ///< limits.max_events executed without finishing
    kWallBudget,      ///< limits.max_wall_seconds elapsed without finishing
  };

  /// run_until() with watchdog budgets: a runaway simulation (event storm or
  /// livelock) returns kEventBudget/kWallBudget instead of hanging the
  /// calling worker. now() is NOT advanced to `deadline` on a budget stop.
  StopReason run_until(Time deadline, const RunLimits& limits);

  /// Drop every pending event (used when tearing down a run early).
  /// Outstanding EventIds are invalidated; timers are disarmed but stay
  /// re-armable.
  void clear();

  /// Armed events, weak included (exact: cancellation removes eagerly).
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  /// Armed events that hold a run open (excludes weak samplers).
  [[nodiscard]] std::size_t strong_pending_events() const { return strong_armed_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// High-water mark of the event heap over the scheduler's life.
  [[nodiscard]] std::size_t peak_pending_events() const { return heap_peak_; }

  /// Attach telemetry gauges, published each time a run()/run_until() call
  /// returns (pull instrumentation — the per-event path is untouched). The
  /// pointed-to handles must outlive the scheduler or be detached with
  /// nullptr. Null (the default) costs one untaken branch per run-loop exit.
  void set_metrics(const obs::SchedulerMetrics* metrics) { metrics_ = metrics; }

  /// Attach a model-checking choice hook (null detaches, the default).
  /// With a hook attached, a fire instant with two or more live entries
  /// becomes a ChoiceKind::kSchedulerTie branch point — the hook picks which
  /// tied event fires first (branch 0 = the FIFO pick). Components reach the
  /// hook through their scheduler (see choice_hook()) for their own choice
  /// points. A null hook costs one untaken branch per event.
  void set_choice_hook(ChoiceHook* hook) { choice_hook_ = hook; }
  [[nodiscard]] ChoiceHook* choice_hook() const { return choice_hook_; }

  /// Deep copy of the scheduler's full state: counters, heap, free list, and
  /// every slot with its callback *cloned* (captures are copy-constructed).
  /// Captured only between events — save_image() asserts no slot is
  /// mid-fire. Restoring clones from the image again, so one image can seed
  /// arbitrarily many restores (DFS backtracking). Slot indices and
  /// generations are preserved, so TimerHandles and EventIds held by
  /// components remain valid across a restore, and `[this]` captures stay
  /// correct because components are restored in place.
  struct Image;
  [[nodiscard]] Image save_image() const;
  void restore_image(const Image& img);

  /// Digest of the pending-event state (now, each armed slot's identity,
  /// deadline and kind, in arrival order) for explored-state deduplication.
  /// Excludes executed-event and peak counters, and excludes absolute
  /// sequence values (only their relative order matters for behavior).
  [[nodiscard]] std::uint64_t state_hash() const;

  /// A re-armable timer owning one scheduler slot for its whole life.
  ///
  /// The callback is registered once; rearm() then only rewrites the slot's
  /// deadline and re-sifts its heap entry — no allocation, no tombstone, no
  /// callback reconstruction. Used by the RTO, delayed-ACK, pacing,
  /// delay-line and sampler timers, i.e. everything that re-schedules
  /// per-packet or per-interval.
  ///
  /// Weak timers do not keep run() alive (periodic samplers would otherwise
  /// hold the queue non-empty forever). A TimerHandle must not outlive its
  /// scheduler.
  class TimerHandle {
   public:
    TimerHandle() = default;
    TimerHandle(const TimerHandle&) = delete;
    TimerHandle& operator=(const TimerHandle&) = delete;
    ~TimerHandle() { reset(); }

    /// Register the callback and acquire a slot. Call exactly once before
    /// rearm() (reset() allows re-initialization).
    void init(Scheduler& sched, Callback cb, bool weak = false) {
      reset();
      sched_ = &sched;
      slot_ = sched.timer_create(std::move(cb), weak);
    }

    /// Release the slot; the handle returns to the uninitialized state.
    void reset() {
      if (sched_ != nullptr) {
        sched_->timer_destroy(slot_);
        sched_ = nullptr;
      }
    }

    /// (Re)schedule the fire time — whether currently idle, pending, or
    /// firing right now. `at` must not be in the past.
    void rearm(Time at) { sched_->timer_rearm(slot_, at); }

    /// Unschedule without releasing the slot. No-op when idle.
    void disarm() {
      if (sched_ != nullptr) sched_->timer_disarm(slot_);
    }

    [[nodiscard]] bool armed() const {
      return sched_ != nullptr && sched_->timer_armed(slot_);
    }
    /// Scheduled fire instant; Time::max() when not armed.
    [[nodiscard]] Time deadline() const {
      return armed() ? sched_->timer_deadline(slot_) : Time::max();
    }
    [[nodiscard]] explicit operator bool() const { return sched_ != nullptr; }

   private:
    Scheduler* sched_ = nullptr;
    std::uint32_t slot_ = 0;
  };

 private:
  friend class TimerHandle;

  static constexpr std::uint32_t kNpos = 0xffffffff;

  enum class SlotState : std::uint8_t {
    kFree,         ///< on the free list
    kOneShot,      ///< armed single-fire event; slot freed when it fires
    kTimerArmed,   ///< timer with a heap entry
    kTimerIdle,    ///< timer waiting for rearm(); owns no heap entry
    kTimerFiring,  ///< mid-callback; the heap entry is parked in place so a
                   ///< rearm from the callback (the dominant pattern) is a
                   ///< single in-place re-key instead of remove + insert
  };

  struct Slot {
    Time at{};
    std::uint64_t seq = 0;           ///< FIFO tie-break, fresh per (re)arm
    std::uint32_t heap_pos = kNpos;  ///< index into heap_, kNpos when absent
    std::uint32_t gen = 0;           ///< bumped on free; validates EventIds
    SlotState state = SlotState::kFree;
    bool weak = false;
    InplaceCallback cb;
  };

  // --- timer interface (via TimerHandle) ---
  std::uint32_t timer_create(Callback cb, bool weak);
  void timer_destroy(std::uint32_t slot);
  void timer_rearm(std::uint32_t slot, Time at);
  void timer_disarm(std::uint32_t slot);
  [[nodiscard]] bool timer_armed(std::uint32_t slot) const {
    return slots_[slot].state == SlotState::kTimerArmed;
  }
  [[nodiscard]] Time timer_deadline(std::uint32_t slot) const { return slots_[slot].at; }

  // --- slot management ---
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  // --- indexed 4-ary min-heap over (at, seq) ---

  /// One heap entry: the slot id plus a copy of its sort key, so ordering
  /// decisions stay inside the contiguous heap array. The slot's own
  /// (at, seq) is the authority; the copy is refreshed on insert and rearm.
  struct HeapEntry {
    Time at{};
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };
  [[nodiscard]] static bool heap_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  void heap_insert(std::uint32_t slot);
  void heap_remove(std::uint32_t pos);
  void heap_sift_up(std::uint32_t pos);
  void heap_sift_down(std::uint32_t pos);
  void heap_update(std::uint32_t pos);

  bool pop_one(Time deadline);
  /// With a choice hook attached: re-file every stale same-instant entry,
  /// collect the live tie set in seq order, and let the hook pick. Returns
  /// the heap position of the entry to fire (0 when there is no tie).
  [[nodiscard]] std::uint32_t choose_tied_entry();
  void fire_entry(std::uint32_t pos);
  void publish_metrics() const;

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t strong_armed_ = 0;
  std::size_t heap_peak_ = 0;
  const obs::SchedulerMetrics* metrics_ = nullptr;
  ChoiceHook* choice_hook_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::vector<std::uint32_t> free_slots_;
  /// (seq, heap position) scratch for the tie choice point; member so the
  /// per-event path stays allocation-free once warm.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> tie_scratch_;
};

/// Deep-copyable image of a Scheduler (see Scheduler::save_image()). Slots
/// hold cloned callbacks, so the image is independent of the live scheduler
/// and move-only (callbacks are). Defined out of line because it names the
/// private Slot/HeapEntry types.
struct Scheduler::Image {
  Time now{};
  std::uint64_t next_seq = 1;
  std::uint64_t executed = 0;
  std::size_t strong_armed = 0;
  std::vector<Slot> slots;
  std::vector<HeapEntry> heap;
  std::vector<std::uint32_t> free_slots;
};

using TimerHandle = Scheduler::TimerHandle;

}  // namespace elephant::sim
