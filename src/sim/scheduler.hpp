#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace elephant::sim {

/// Opaque handle to a scheduled event; used to cancel timers.
///
/// Carries the scheduled instant and a clear()-epoch so the scheduler can
/// decide liveness in O(1) without tracking every pending id: events are
/// processed in (time, seq) order, so an id is dead exactly when its instant
/// is in the past, or equals now() with a seq at or below the last-processed
/// watermark, or predates the last clear().
struct EventId {
  std::uint64_t value = 0;
  Time at{};
  std::uint32_t epoch = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
};

/// Discrete-event scheduler: a time-ordered queue of callbacks.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO
/// tie-break via a monotone sequence number), which keeps runs deterministic.
/// Cancellation is lazy: cancelled ids are remembered and skipped at pop
/// time, so cancel() is O(1) and the heap is never restructured. cancel()
/// verifies liveness first, so cancelling an already-fired, already-cancelled,
/// or forged id is a true no-op and the cancelled set only ever references
/// entries still in the queue — which keeps pending_events() exact.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Advances only inside run()/run_until().
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(Time at, Callback cb);

  /// Schedule `cb` after `delay` from now.
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, cb); }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid id is a no-op.
  void cancel(EventId id);

  /// True while the event is queued and not cancelled; false once it has
  /// fired, been cancelled, or been dropped by clear().
  [[nodiscard]] bool pending(EventId id) const;

  /// Run until the queue is empty.
  void run();

  /// Run until the queue is empty or simulation time would exceed `deadline`.
  /// On return now() == min(deadline, time of last processed entry).
  void run_until(Time deadline);

  /// Watchdog budgets for a bounded run (0 = unlimited). The wall clock is
  /// polled every few thousand events so the check stays off the hot path.
  struct RunLimits {
    std::uint64_t max_events = 0;   ///< executed-event budget for this call
    double max_wall_seconds = 0;    ///< wall-clock budget for this call
  };

  /// Why a bounded run returned.
  enum class StopReason {
    kQueueExhausted,  ///< no events left
    kDeadline,        ///< simulated time reached `deadline`
    kEventBudget,     ///< limits.max_events executed without finishing
    kWallBudget,      ///< limits.max_wall_seconds elapsed without finishing
  };

  /// run_until() with watchdog budgets: a runaway simulation (event storm or
  /// livelock) returns kEventBudget/kWallBudget instead of hanging the
  /// calling worker. now() is NOT advanced to `deadline` on a budget stop.
  StopReason run_until(Time deadline, const RunLimits& limits);

  /// Drop every pending event (used when tearing down a run early).
  /// Outstanding EventIds are invalidated.
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& rhs) const {
      if (at != rhs.at) return at > rhs.at;
      return seq > rhs.seq;
    }
  };

  bool pop_one(Time deadline);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  /// Seq of the most recent entry processed (fired or purged) — its `at` is
  /// always now_; together they form the liveness watermark for pending().
  std::uint64_t last_processed_seq_ = 0;
  std::uint32_t epoch_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace elephant::sim
