#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace elephant::obs {
class PhaseProfiler;
}

namespace elephant::sim {

/// Conservative bounded-lag parallel driver over K independent Schedulers.
///
/// Each lane (logical process) owns one Scheduler and runs on its own thread.
/// Simulated time advances in fixed windows no longer than the minimum
/// cross-lane propagation delay (the lookahead), so an event produced in lane
/// A during window W can only be due in lane B at or after the end of W.
/// That makes the protocol safe with two barriers per window:
///
///   run phase:    every lane runs its queue to the window end
///   barrier A:    all cross-lane handoffs for this window are now complete
///   drain phase:  every lane schedules its inbound handoffs locally
///   barrier B:    one thread (the barrier completion) decides whether to
///                 open the next window, and with what budgets
///
/// The barriers carry all synchronization: producers write plain (unlocked)
/// mailboxes during the run phase and consumers read them in the drain
/// phase, with barrier A providing the happens-before edge. Determinism
/// follows from each lane being sequential, the drain order being fixed by
/// the caller, and each Scheduler's FIFO tie-break being local.
class ShardedEngine {
 public:
  /// `lanes` independent schedulers, indexed 0..lanes-1. By convention the
  /// caller dedicates one lane to shared network state (the bottleneck).
  explicit ShardedEngine(std::size_t lanes);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
  [[nodiscard]] Scheduler& lane(std::size_t i) { return *lanes_[i]; }
  [[nodiscard]] const Scheduler& lane(std::size_t i) const { return *lanes_[i]; }

  /// Called once per lane per window, between the barriers: schedule every
  /// packet posted to this lane's inbound mailboxes during the run phase.
  using DrainFn = std::function<void(std::size_t lane)>;

  /// Drive all lanes to `deadline` in windows of `window` (clamped to the
  /// deadline). `limits` are watchdog budgets with the same semantics as the
  /// single-threaded Scheduler::run_until: the event budget counts executed
  /// events summed over all lanes and both budgets are re-checked at every
  /// window boundary, so a stop is detected within one window (plus at most
  /// one lane's in-window overshoot). Returns the collective stop reason;
  /// on kDeadline/kQueueExhausted every lane's now() has been advanced to
  /// its last completed window end.
  Scheduler::StopReason run_windows(Time deadline, Time window,
                                    const Scheduler::RunLimits& limits,
                                    const DrainFn& drain);

  /// Sum of executed events over all lanes (call only while no run is
  /// active).
  [[nodiscard]] std::uint64_t total_executed_events() const;
  /// Sum of heap high-water marks over all lanes.
  [[nodiscard]] std::size_t total_peak_pending_events() const;

  /// Attach a lane/phase profiler before run_windows(): the engine registers
  /// its four per-window phases (shard_work, shard_barrier_a, shard_drain,
  /// shard_barrier_b) and each lane thread wraps the corresponding stage of
  /// its loop in a span. The profiler must have at least lanes() lanes and
  /// outlive the run; null detaches. Pure wall-clock observation — lane
  /// schedules and digests are unaffected.
  void set_profiler(obs::PhaseProfiler* profiler);

  /// Observer invoked at every window boundary, on the one thread that runs
  /// the barrier-B completion while all lanes are parked — the only safe
  /// point to read cross-lane state (flow counters, queue stats) mid-run.
  /// Runs inside a noexcept context: the observer must not throw. It fires
  /// before the stop decision, so the final (possibly partial) window is
  /// observed too. Null detaches.
  void set_boundary_observer(std::function<void()> observer);

 private:
  /// Barrier-B completion: runs on exactly one thread while every lane is
  /// parked, so it may touch all schedulers and the shared window state.
  void on_window_boundary() noexcept;
  void lane_loop(std::size_t i, const DrainFn& drain);
  [[nodiscard]] Scheduler::RunLimits lane_limits() const;

  std::vector<std::unique_ptr<Scheduler>> lanes_;

  // Shared window state: written only by on_window_boundary() (all lanes
  // parked) or before the lane threads start; read by lanes after the
  // barrier releases them. The barrier supplies the happens-before edges,
  // so none of this needs atomics.
  Time deadline_{};
  Time window_{};
  Time window_end_{};
  Scheduler::RunLimits limits_{};
  Scheduler::RunLimits per_lane_limits_{};
  std::vector<Scheduler::StopReason> lane_stops_;
  Scheduler::StopReason stop_ = Scheduler::StopReason::kQueueExhausted;
  bool done_ = false;
  std::chrono::steady_clock::time_point wall_start_{};

  obs::PhaseProfiler* profiler_ = nullptr;
  std::size_t phase_work_ = 0;
  std::size_t phase_barrier_a_ = 0;
  std::size_t phase_drain_ = 0;
  std::size_t phase_barrier_b_ = 0;
  std::function<void()> boundary_observer_;
};

}  // namespace elephant::sim
