#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"

namespace elephant::sim {

/// Byte-buffer serializer for simulation snapshots. Components append their
/// mutable state in a fixed, documented order; SnapshotReader consumes it in
/// the same order. The format is process-private (host byte order, no
/// framing): a snapshot is restored by the very build that produced it,
/// within one process — it is a model-checking rewind mechanism, not an
/// interchange format.
class SnapshotWriter {
 public:
  /// Append a trivially-copyable value verbatim.
  template <typename T>
  void put_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "put_pod requires a trivially copyable type");
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_u8(std::uint8_t v) { put_pod(v); }
  void put_u32(std::uint32_t v) { put_pod(v); }
  void put_u64(std::uint64_t v) { put_pod(v); }
  void put_i64(std::int64_t v) { put_pod(v); }
  void put_f64(double v) { put_pod(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Append a counted run of trivially-copyable elements.
  template <typename T>
  void put_pod_span(const T* data, std::size_t n) {
    put_u64(static_cast<std::uint64_t>(n));
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n * sizeof(T));
  }

  template <typename T>
  void put_pod_vector(const std::vector<T>& v) {
    put_pod_span(v.data(), v.size());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Mirror of SnapshotWriter: consumes the byte buffer in write order. Reads
/// past the end assert in debug builds and zero-fill in release — a snapshot
/// is only ever paired with the code that wrote it, so a mismatch is a bug,
/// not an input error.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::vector<std::uint8_t>& buf)
      : p_(buf.data()), end_(buf.data() + buf.size()) {}

  template <typename T>
  void get_pod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "get_pod requires a trivially copyable type");
    assert(p_ + sizeof(T) <= end_ && "snapshot underrun");
    if (p_ + sizeof(T) > end_) {
      // void* cast: T is trivially copyable (asserted above) but may have a
      // user-provided constructor, which -Wclass-memaccess flags on its own.
      std::memset(static_cast<void*>(out), 0, sizeof(T));
      p_ = end_;
      return;
    }
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
  }

  template <typename T>
  [[nodiscard]] T get() {
    T v;
    get_pod(&v);
    return v;
  }

  [[nodiscard]] std::uint8_t get_u8() { return get<std::uint8_t>(); }
  [[nodiscard]] std::uint32_t get_u32() { return get<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get<std::uint64_t>(); }
  [[nodiscard]] std::int64_t get_i64() { return get<std::int64_t>(); }
  [[nodiscard]] double get_f64() { return get<double>(); }
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }

  template <typename T>
  void get_pod_vector(std::vector<T>* out) {
    const std::uint64_t n = get_u64();
    out->resize(static_cast<std::size_t>(n));
    for (auto& e : *out) get_pod(&e);
  }

  [[nodiscard]] bool exhausted() const { return p_ == end_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// A component whose full mutable state can be captured into and restored
/// from a snapshot byte stream. Implementations must write and read exactly
/// the same fields in the same order, and restoring must leave the component
/// bit-identical to the moment save() ran — the round-trip tests pin this by
/// comparing golden digests of interrupted vs uninterrupted runs.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual void save(SnapshotWriter& w) const = 0;
  virtual void load(SnapshotReader& r) = 0;
};

/// One captured simulation state: the scheduler's deep image plus every
/// Snapshottable component's bytes in a fixed registration order (the cell
/// defines and documents that order), plus a state hash for exploration
/// dedup. Move-only (the image owns cloned callbacks); restorable any
/// number of times into the same in-place component graph that produced it.
struct Snapshot {
  Scheduler::Image scheduler;
  std::vector<std::uint8_t> components;
  std::uint64_t state_hash = 0;
};

/// FNV-1a fold helpers for state hashing (dedup of explored states).
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

[[nodiscard]] inline std::uint64_t fnv1a_fold(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a_bytes(std::uint64_t h, const std::uint8_t* p,
                                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace elephant::sim
