#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace elephant::sim {

/// Grow-only chunked object arena with stable indices and addresses.
///
/// A high-flow-count cell allocates three to five heap objects per flow when
/// every sender, receiver, and congestion controller is a `unique_ptr`:
/// 100k flows scatter ~500k allocations across the heap and every per-ACK
/// walk chases cold pointers. A Slab packs objects of one type into
/// fixed-size chunks (~64 KiB each) so consecutive indices are consecutive
/// in memory, while never moving a constructed object — chunks are added,
/// not reallocated, so raw pointers and indices stay valid for the slab's
/// lifetime.
///
/// erase() destroys an object and pushes its slot onto a free list;
/// emplace() pops the free list in O(1) before growing. Iteration visits
/// live slots in index order, which is what makes slab-ordered flow walks
/// deterministic.
template <typename T>
class Slab {
 public:
  /// Objects per chunk: a power of two sized so one chunk is ~64 KiB (at
  /// least 8 objects, so huge types still amortize the chunk pointer).
  static constexpr std::size_t kChunkObjects = [] {
    std::size_t n = 8;
    while (n * sizeof(T) < 65536 && n < 65536) n *= 2;
    return n;
  }();

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;
  ~Slab() { clear(); }

  /// Live objects.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Slots ever handed out (live + free-listed); indices are < high_water().
  [[nodiscard]] std::size_t high_water() const { return end_; }
  /// Constructed-storage capacity (grows by whole chunks).
  [[nodiscard]] std::size_t capacity() const { return chunks_.size() * kChunkObjects; }
  /// Heap bytes held by the chunk storage (the RSS the slab pins).
  [[nodiscard]] std::size_t bytes() const {
    return chunks_.size() * kChunkObjects * sizeof(T) + live_.capacity() * sizeof(std::uint64_t);
  }

  [[nodiscard]] bool is_live(std::uint32_t i) const {
    return i < end_ && (live_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] T& operator[](std::uint32_t i) {
    assert(is_live(i));
    return *ptr(i);
  }
  [[nodiscard]] const T& operator[](std::uint32_t i) const {
    assert(is_live(i));
    return *ptr(i);
  }

  /// Construct in place, reusing a freed slot when one exists. Returns the
  /// stable index and address of the new object.
  template <typename... Args>
  std::pair<std::uint32_t, T*> emplace(Args&&... args) {
    std::uint32_t i;
    if (!free_.empty()) {
      i = free_.back();
      free_.pop_back();
    } else {
      if (end_ == capacity()) {
        chunks_.push_back(std::make_unique<Chunk>());
        live_.resize((capacity() + 63) / 64, 0);
      }
      i = end_++;
    }
    T* p = ptr(i);
    try {
      new (p) T(std::forward<Args>(args)...);
    } catch (...) {
      free_.push_back(i);
      throw;
    }
    live_[i >> 6] |= std::uint64_t{1} << (i & 63);
    ++size_;
    return {i, p};
  }

  /// Destroy the object at `i` and recycle its slot (O(1)).
  void erase(std::uint32_t i) {
    assert(is_live(i));
    ptr(i)->~T();
    live_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    --size_;
    free_.push_back(i);
  }

  /// Destroy every live object. Chunk storage is retained for reuse.
  void clear() {
    for (std::uint32_t i = 0; i < end_; ++i) {
      if (is_live(i)) {
        ptr(i)->~T();
        live_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
      }
    }
    size_ = 0;
    end_ = 0;
    free_.clear();
  }

  /// Visit live objects in index order: f(index, T&).
  template <typename F>
  void for_each(F&& f) {
    for (std::uint32_t i = 0; i < end_; ++i) {
      if (is_live(i)) f(i, *ptr(i));
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint32_t i = 0; i < end_; ++i) {
      if (is_live(i)) f(i, *ptr(i));
    }
  }

 private:
  struct Chunk {
    alignas(T) unsigned char raw[kChunkObjects * sizeof(T)];
  };

  [[nodiscard]] T* ptr(std::uint32_t i) {
    return std::launder(reinterpret_cast<T*>(chunks_[i / kChunkObjects]->raw) +
                        i % kChunkObjects);
  }
  [[nodiscard]] const T* ptr(std::uint32_t i) const {
    return std::launder(reinterpret_cast<const T*>(chunks_[i / kChunkObjects]->raw) +
                        i % kChunkObjects);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint64_t> live_;  ///< occupancy bitmap, one bit per slot
  std::vector<std::uint32_t> free_;  ///< recycled slots, LIFO
  std::uint32_t end_ = 0;            ///< high-water slot index
  std::size_t size_ = 0;
};

}  // namespace elephant::sim
