#pragma once

#include <cstdint>

namespace elephant::sim {

/// Catalog of the engine's enumerable nondeterminism. Every site that
/// consults the choice hook tags itself with one of these, so a recorded
/// schedule is self-describing and a replay can assert it is consuming the
/// same kind of decision it recorded.
enum class ChoiceKind : std::uint8_t {
  kSchedulerTie = 0,   ///< which of several same-timestamp events fires first
  kFaultLoss = 1,      ///< port fault layer: drop this packet or not
  kFaultReorder = 2,   ///< port fault layer: delay this packet or not
  kFaultDuplicate = 3, ///< port fault layer: duplicate this packet or not
  kGeTransition = 4,   ///< Gilbert-Elliott channel: flip good/bad state or not
  kGeLoss = 5,         ///< Gilbert-Elliott channel: drop in current state or not
};

[[nodiscard]] inline const char* to_string(ChoiceKind k) {
  switch (k) {
    case ChoiceKind::kSchedulerTie:
      return "scheduler_tie";
    case ChoiceKind::kFaultLoss:
      return "fault_loss";
    case ChoiceKind::kFaultReorder:
      return "fault_reorder";
    case ChoiceKind::kFaultDuplicate:
      return "fault_duplicate";
    case ChoiceKind::kGeTransition:
      return "ge_transition";
    case ChoiceKind::kGeLoss:
      return "ge_loss";
  }
  return "unknown";
}

/// Model-checking hook: turns one point of nondeterminism into an enumerable
/// branch. A site first computes its seeded outcome (consuming any RNG draws
/// exactly as it would with the hook absent — this keeps the RNG stream, and
/// therefore the position of every later choice point, schedule-independent),
/// then asks the hook which branch to take. Branch 0 is by convention the
/// seeded outcome; for binary sites branch 1 is its negation, and for the
/// scheduler tie the branches are the tied events in sequence order.
///
/// With no hook attached (the default) every site takes branch 0 without any
/// virtual call, so `mc` off changes nothing — the golden digests hold.
class ChoiceHook {
 public:
  virtual ~ChoiceHook() = default;

  /// Pick a branch in [0, n_branches). `n_branches` >= 2 always.
  [[nodiscard]] virtual std::uint32_t choose(ChoiceKind kind, std::uint32_t n_branches) = 0;
};

}  // namespace elephant::sim
