#include "metrics/fairness.hpp"

namespace elephant::metrics {

double jain_index(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double sum = 0;
  double sum_sq = 0;
  for (const double s : shares) {
    sum += s;
    sum_sq += s * s;
  }
  if (sum_sq <= 0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

double link_utilization(std::span<const double> throughputs_bps, double bottleneck_bps) {
  if (bottleneck_bps <= 0) return 0.0;
  double total = 0;
  for (const double t : throughputs_bps) total += t;
  return total / bottleneck_bps;
}

}  // namespace elephant::metrics
