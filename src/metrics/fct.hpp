#pragma once

#include <span>

namespace elephant::obs {
class LogLinHistogram;
}

namespace elephant::metrics {

/// Quantile q ∈ [0, 1] with linear interpolation between order statistics
/// (the "R-7" rule used by numpy's default percentile). `values` need not be
/// sorted; a sorted copy is made internally. Returns 0 for an empty span.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// p50/p95/p99 of a set of flow-completion times, plus count and mean.
struct FctSummary {
  std::size_t count = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
};

[[nodiscard]] FctSummary fct_summary(std::span<const double> fct_s);

/// Same summary from a log-linear histogram of completion times: O(1) memory
/// in the number of flows, with percentiles accurate to the histogram's
/// advertised relative error (≤1%) instead of exact order statistics. The
/// exact-span overload stays the default for the paper cells.
[[nodiscard]] FctSummary fct_summary(const obs::LogLinHistogram& fct_s);

/// FCT slowdown: measured FCT over the ideal FCT of an otherwise-empty path,
/// ideal = bytes · 8 / bottleneck_bps + rtt_s (one serialization + one RTT of
/// handshake/propagation). ≥ 1 in any sane run; 1 means the transfer saw an
/// empty bottleneck. Returns quiet NaN for degenerate (non-positive) inputs —
/// a 0 would read as "infinitely fast" and drag aggregated percentiles toward
/// zero, so callers must drop non-finite values before aggregating.
[[nodiscard]] double fct_slowdown(double fct_s, double bytes, double bottleneck_bps,
                                  double rtt_s);

}  // namespace elephant::metrics
