#include "metrics/fct.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "obs/histogram.hpp"

namespace elephant::metrics {

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

FctSummary fct_summary(std::span<const double> fct_s) {
  FctSummary s;
  s.count = fct_s.size();
  if (fct_s.empty()) return s;
  double sum = 0;
  for (double v : fct_s) sum += v;
  s.mean_s = sum / static_cast<double>(fct_s.size());
  s.p50_s = percentile(fct_s, 0.50);
  s.p95_s = percentile(fct_s, 0.95);
  s.p99_s = percentile(fct_s, 0.99);
  return s;
}

FctSummary fct_summary(const obs::LogLinHistogram& fct_s) {
  FctSummary s;
  s.count = static_cast<std::size_t>(fct_s.count());
  if (s.count == 0) return s;
  s.mean_s = fct_s.mean();
  s.p50_s = fct_s.quantile(0.50);
  s.p95_s = fct_s.quantile(0.95);
  s.p99_s = fct_s.quantile(0.99);
  return s;
}

double fct_slowdown(double fct_s, double bytes, double bottleneck_bps, double rtt_s) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  if (!(fct_s > 0) || !(bytes > 0) || !(bottleneck_bps > 0)) return kNaN;
  const double ideal = bytes * 8.0 / bottleneck_bps + (rtt_s > 0 ? rtt_s : 0);
  return ideal > 0 ? fct_s / ideal : kNaN;
}

}  // namespace elephant::metrics
