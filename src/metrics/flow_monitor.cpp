#include "metrics/flow_monitor.hpp"

namespace elephant::metrics {

void FlowMonitor::watch(const tcp::Flow& flow, std::string label) {
  if (label.empty()) {
    label = std::string(flow.sender().cc().name()) + "-" + std::to_string(flow.id());
  }
  series_.push_back(Series{&flow, std::move(label), {}});
  last_delivered_bytes_.push_back(0);
}

void FlowMonitor::start() {
  if (started_) return;
  started_ = true;
  timer_.rearm(sched_.now() + interval_);
}

void FlowMonitor::sample_all() {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const tcp::Flow& f = *series_[i].flow;
    FlowSample s;
    s.t = sched_.now();
    s.cwnd_segments = f.sender().cc().cwnd_segments();
    s.pipe_segments = f.sender().pipe_segments();
    s.srtt_ms = f.sender().rtt().srtt().ms();
    s.pacing_bps = f.sender().cc().pacing_rate_bps();
    const auto delivered = static_cast<double>(f.receiver().delivered_bytes());
    s.goodput_bps = (delivered - last_delivered_bytes_[i]) * 8.0 / interval_.sec();
    last_delivered_bytes_[i] = delivered;
    s.retx_units = f.sender().stats().retx_units;
    s.rtos = f.sender().stats().rtos;
    series_[i].samples.push_back(s);
  }
  timer_.rearm(sched_.now() + interval_);
}

void FlowMonitor::write_csv(std::ostream& out) const {
  out << "label,flow,t_s,cwnd_segments,pipe_segments,srtt_ms,pacing_bps,goodput_bps,"
         "retx_units,rtos\n";
  for (const Series& s : series_) {
    for (const FlowSample& p : s.samples) {
      out << s.label << ',' << s.flow->id() << ',' << p.t.sec() << ',' << p.cwnd_segments
          << ',' << p.pipe_segments << ',' << p.srtt_ms << ',' << p.pacing_bps << ','
          << p.goodput_bps << ',' << p.retx_units << ',' << p.rtos << '\n';
    }
  }
}

}  // namespace elephant::metrics
