#pragma once

#include <span>

namespace elephant::metrics {

/// Jain's fairness index (paper Eq. 2):
///   J = (Σ S_i)² / (n · Σ S_i²),  J ∈ [1/n, 1], 1 = perfectly fair.
/// Returns 1.0 for degenerate inputs (0 or all-zero shares), matching the
/// convention that an empty bottleneck is trivially fair.
[[nodiscard]] double jain_index(std::span<const double> shares);

/// Overall link utilization φ (paper Eq. 3): Σ throughput / bottleneck BW.
[[nodiscard]] double link_utilization(std::span<const double> throughputs_bps,
                                      double bottleneck_bps);

}  // namespace elephant::metrics
