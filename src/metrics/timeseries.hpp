#pragma once

#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace elephant::metrics {

/// Periodic sampler: polls a probe every `interval` of simulation time and
/// records (t, value) points — the building block for per-second throughput
/// traces like iperf3's interval reports.
class TimeSeries {
 public:
  using Probe = std::function<double()>;

  TimeSeries(sim::Scheduler& sched, sim::Time interval, Probe probe)
      : sched_(sched), interval_(interval), probe_(std::move(probe)) {
    // Weak timer: sampling never holds run() open once real work drains.
    timer_.init(sched_, [this] {
      points_.push_back({sched_.now(), probe_()});
      arm();
    }, /*weak=*/true);
  }

  /// Begin sampling; the first sample is taken one interval from now.
  void start() { arm(); }

  struct Point {
    sim::Time t;
    double value;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Convenience: successive differences (e.g. bytes → per-interval bytes).
  [[nodiscard]] std::vector<Point> deltas() const {
    std::vector<Point> out;
    out.reserve(points_.size());
    double prev = 0;
    for (const Point& p : points_) {
      out.push_back({p.t, p.value - prev});
      prev = p.value;
    }
    return out;
  }

 private:
  void arm() { timer_.rearm(sched_.now() + interval_); }

  sim::Scheduler& sched_;
  sim::Time interval_;
  sim::TimerHandle timer_;
  Probe probe_;
  std::vector<Point> points_;
};

}  // namespace elephant::metrics
