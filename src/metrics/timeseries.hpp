#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "obs/histogram.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace elephant::metrics {

/// Periodic sampler: polls a probe every `interval` of simulation time and
/// records (t, value) points — the building block for per-second throughput
/// traces like iperf3's interval reports.
///
/// Memory defaults to unbounded (paper cells keep every sample for the
/// figure scripts). set_capacity() switches to a bounded mode that, on
/// reaching the cap, decimates the stored points by two and doubles the
/// sampling interval — a multi-day soak run converges to a fixed-size,
/// progressively coarser trace instead of growing without bound.
/// set_histogram() additionally feeds every sample into a fixed-footprint
/// log-linear histogram, the O(1)-memory view of the same signal.
class TimeSeries {
 public:
  using Probe = std::function<double()>;

  TimeSeries(sim::Scheduler& sched, sim::Time interval, Probe probe)
      : sched_(sched), interval_(interval), probe_(std::move(probe)) {
    // Weak timer: sampling never holds run() open once real work drains.
    timer_.init(sched_, [this] { sample(); }, /*weak=*/true);
  }

  /// Begin sampling; the first sample is taken one interval from now.
  void start() { arm(); }

  /// Bound the stored points to at most `max_points` (min 2). Reaching the
  /// bound keeps every other point and doubles the interval, preserving the
  /// full time span at half the resolution. 0 restores unbounded mode.
  /// Call before start(); changing the cap mid-run only affects new samples.
  void set_capacity(std::size_t max_points) {
    capacity_ = max_points == 0 ? 0 : (max_points < 2 ? 2 : max_points);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Also record every sample into `h` (null detaches). The histogram sees
  /// all samples, including ones later dropped by decimation.
  void set_histogram(obs::LogLinHistogram* h) { hist_ = h; }

  /// Current sampling period (doubles on each decimation).
  [[nodiscard]] sim::Time interval() const { return interval_; }

  struct Point {
    sim::Time t;
    double value;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Convenience: successive differences (e.g. bytes → per-interval bytes).
  [[nodiscard]] std::vector<Point> deltas() const {
    std::vector<Point> out;
    out.reserve(points_.size());
    double prev = 0;
    for (const Point& p : points_) {
      out.push_back({p.t, p.value - prev});
      prev = p.value;
    }
    return out;
  }

 private:
  void arm() { timer_.rearm(sched_.now() + interval_); }

  void sample() {
    const double v = probe_();
    if (hist_ != nullptr) hist_->record(v);
    points_.push_back({sched_.now(), v});
    if (capacity_ != 0 && points_.size() >= capacity_) decimate();
    arm();
  }

  /// Keep points 1, 3, 5, ... and double the interval. Keeping the odd
  /// indices (not the even ones) retains the newest sample and leaves the
  /// survivors phase-aligned with the doubled cadence, so the whole trace
  /// stays evenly spaced across decimations and deltas() stays meaningful.
  void decimate() {
    std::size_t w = 0;
    for (std::size_t r = 1; r < points_.size(); r += 2) points_[w++] = points_[r];
    points_.resize(w);
    interval_ = 2 * interval_;
  }

  sim::Scheduler& sched_;
  sim::Time interval_;
  sim::TimerHandle timer_;
  Probe probe_;
  std::vector<Point> points_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded (paper default)
  obs::LogLinHistogram* hist_ = nullptr;
};

}  // namespace elephant::metrics
