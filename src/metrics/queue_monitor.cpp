#include "metrics/queue_monitor.hpp"

#include <algorithm>

namespace elephant::metrics {

void QueueMonitor::start() {
  if (started_) return;
  started_ = true;
  timer_.rearm(sched_.now() + interval_);
}

void QueueMonitor::sample() {
  QueueSample s;
  s.t = sched_.now();
  s.backlog_bytes = port_.qdisc().byte_length();
  s.backlog_packets = port_.qdisc().packet_length();
  const auto& st = port_.qdisc().stats();
  s.dropped_overflow = st.dropped_overflow;
  s.dropped_early = st.dropped_early;
  s.ecn_marked = st.ecn_marked;
  s.tx_bytes = port_.tx_bytes();
  const double sent = static_cast<double>(s.tx_bytes - last_tx_bytes_);
  s.utilization = sent * 8.0 / (port_.rate_bps() * interval_.sec());
  last_tx_bytes_ = s.tx_bytes;
  samples_.push_back(s);
  timer_.rearm(sched_.now() + interval_);
}

std::size_t QueueMonitor::max_backlog_bytes() const {
  std::size_t best = 0;
  for (const QueueSample& s : samples_) best = std::max(best, s.backlog_bytes);
  return best;
}

double QueueMonitor::mean_utilization() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (const QueueSample& s : samples_) sum += s.utilization;
  return sum / static_cast<double>(samples_.size());
}

void QueueMonitor::write_csv(std::ostream& out) const {
  out << "t_s,backlog_bytes,backlog_pkts,drop_overflow,drop_early,ecn_marked,utilization\n";
  for (const QueueSample& s : samples_) {
    out << s.t.sec() << ',' << s.backlog_bytes << ',' << s.backlog_packets << ','
        << s.dropped_overflow << ',' << s.dropped_early << ',' << s.ecn_marked << ','
        << s.utilization << '\n';
  }
}

}  // namespace elephant::metrics
