#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "tcp/flow.hpp"

namespace elephant::metrics {

/// One telemetry sample of a flow's transport state.
struct FlowSample {
  sim::Time t;
  double cwnd_segments = 0;
  double pipe_segments = 0;
  double srtt_ms = 0;
  double pacing_bps = 0;
  double goodput_bps = 0;       ///< receiver goodput over the last interval
  std::uint64_t retx_units = 0; ///< cumulative
  std::uint64_t rtos = 0;       ///< cumulative
};

/// Periodic per-flow telemetry — the simulated counterpart of the iperf3 +
/// `ss -ti` logs the paper publishes as its dataset contribution. Attach to
/// any number of flows; samples accumulate in memory and can be dumped as a
/// tidy CSV for offline analysis or ML training.
class FlowMonitor {
 public:
  FlowMonitor(sim::Scheduler& sched, sim::Time interval)
      : sched_(sched), interval_(interval) {
    // Weak timer: sampling never holds run() open once the flows finish.
    timer_.init(sched_, [this] { sample_all(); }, /*weak=*/true);
  }

  /// Register a flow. The caller keeps ownership; the flow must outlive the
  /// monitor's sampling (i.e. the scheduler run).
  void watch(const tcp::Flow& flow, std::string label = {});

  /// Begin sampling; the first sample lands one interval from now.
  void start();

  struct Series {
    const tcp::Flow* flow;
    std::string label;
    std::vector<FlowSample> samples;
  };
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }

  /// Tidy CSV: label,flow,t_s,cwnd,pipe,srtt_ms,pacing_bps,goodput_bps,retx,rtos
  void write_csv(std::ostream& out) const;

 private:
  void sample_all();

  sim::Scheduler& sched_;
  sim::Time interval_;
  sim::TimerHandle timer_;
  std::vector<Series> series_;
  std::vector<double> last_delivered_bytes_;
  bool started_ = false;
};

}  // namespace elephant::metrics
