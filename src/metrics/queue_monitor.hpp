#pragma once

#include <ostream>
#include <vector>

#include "net/port.hpp"
#include "sim/scheduler.hpp"

namespace elephant::metrics {

/// One telemetry sample of a router port's queue.
struct QueueSample {
  sim::Time t;
  std::size_t backlog_bytes = 0;
  std::size_t backlog_packets = 0;
  std::uint64_t dropped_overflow = 0;  ///< cumulative
  std::uint64_t dropped_early = 0;     ///< cumulative
  std::uint64_t ecn_marked = 0;        ///< cumulative
  std::uint64_t tx_bytes = 0;          ///< cumulative
  double utilization = 0;              ///< of link rate, over the last interval
};

/// Periodic router-queue telemetry — the "detailed router logs" the paper's
/// conclusion wants for understanding AQM-internal behaviour. Attach to any
/// Port (normally the bottleneck) and dump a CSV next to FlowMonitor's.
class QueueMonitor {
 public:
  QueueMonitor(sim::Scheduler& sched, const net::Port& port, sim::Time interval)
      : sched_(sched), port_(port), interval_(interval) {
    // Weak timer: sampling never holds run() open once the flows finish.
    timer_.init(sched_, [this] { sample(); }, /*weak=*/true);
  }

  void start();

  [[nodiscard]] const std::vector<QueueSample>& samples() const { return samples_; }

  /// Peak backlog observed at sampling instants.
  [[nodiscard]] std::size_t max_backlog_bytes() const;
  /// Mean utilization across sampled intervals.
  [[nodiscard]] double mean_utilization() const;

  /// Tidy CSV: t_s,backlog_bytes,backlog_pkts,drop_overflow,drop_early,ecn,utilization
  void write_csv(std::ostream& out) const;

 private:
  void sample();

  sim::Scheduler& sched_;
  const net::Port& port_;
  sim::Time interval_;
  sim::TimerHandle timer_;
  std::vector<QueueSample> samples_;
  std::uint64_t last_tx_bytes_ = 0;
  bool started_ = false;
};

}  // namespace elephant::metrics
