#pragma once

#include "cca/congestion_control.hpp"
#include "cca/windowed_filter.hpp"
#include "sim/random.hpp"

namespace elephant::cca {

/// BBRv2 tunables (google/bbr v2alpha defaults).
struct BbrV2Params {
  double high_gain = 2.885;
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  double probe_up_pacing_gain = 1.25;
  double probe_down_pacing_gain = 0.75;
  double loss_thresh = 0.02;        ///< the 2% per-round loss threshold
  double beta = 0.7;                ///< multiplicative inflight_hi reduction
  double headroom = 0.85;           ///< cruise below inflight_hi to leave room
  int startup_loss_rounds = 3;      ///< lossy rounds that end startup
  int bw_window_rounds = 10;
  sim::Time min_rtt_window = sim::Time::seconds(5.0);
  sim::Time probe_rtt_duration = sim::Time::milliseconds(200);
  double probe_rtt_cwnd_gain = 0.5;  ///< ProbeRTT floor: half the estimated BDP
  sim::Time min_probe_interval = sim::Time::seconds(2.0);  ///< cruise 2–3 s
  sim::Time max_probe_interval = sim::Time::seconds(3.0);
  double ecn_factor = 0.85;          ///< inflight_hi scaling on ECN-echo rounds
};

/// BBR version 2 (Cardwell et al., IETF-106; google/bbr v2alpha).
///
/// Keeps BBRv1's model-based core but bounds it with explicit loss/ECN
/// feedback: when the per-round loss rate exceeds `loss_thresh` (2%), the
/// upper inflight bound `inflight_hi` is cut by `beta` (0.7), and cruising
/// keeps `headroom` (85%) of that bound. Bandwidth probing follows the
/// DOWN → CRUISE → REFILL → UP cycle with randomized 2–3 s cruise periods.
/// These are exactly the mechanisms the paper invokes to explain BBRv2's
/// fairness (§5.1–§5.2): it yields to CUBIC in deep FIFO buffers (drop rate
/// crosses 2%) yet still dominates under RED's sub-threshold random drops.
class BbrV2 : public CongestionControl {
 public:
  explicit BbrV2(const CcaParams& params, BbrV2Params bbr = {});

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;
  void on_rto(sim::Time now) override;

  [[nodiscard]] double cwnd_segments() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override { return pacing_rate_bps_; }
  [[nodiscard]] bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  [[nodiscard]] std::string name() const override { return "bbr2"; }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  enum class Phase { kDown, kCruise, kRefill, kUp };
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] double inflight_hi() const { return inflight_hi_; }
  [[nodiscard]] double bw_estimate() const { return max_bw_.best(); }
  [[nodiscard]] sim::Time min_rtt() const { return min_rtt_; }

  void save(sim::SnapshotWriter& w) const override {
    w.put_pod(rng_);
    w.put_u8(static_cast<std::uint8_t>(mode_));
    w.put_u8(static_cast<std::uint8_t>(phase_));
    w.put_pod(max_bw_);
    w.put_i64(round_count_);
    w.put_pod(min_rtt_);
    w.put_pod(min_rtt_stamp_);
    w.put_pod(probe_rtt_done_);
    w.put_bool(probe_rtt_round_done_);
    w.put_bool(full_bw_reached_);
    w.put_f64(full_bw_);
    w.put_pod(full_bw_count_);
    w.put_pod(startup_lossy_rounds_);
    w.put_f64(inflight_hi_);
    w.put_f64(inflight_lo_);
    w.put_f64(lost_in_round_);
    w.put_f64(delivered_in_round_);
    w.put_bool(ece_in_round_);
    w.put_bool(loss_round_);
    w.put_pod(phase_start_);
    w.put_pod(cruise_duration_);
    w.put_bool(probe_up_hit_hi_);
    w.put_f64(probe_up_rounds_);
    w.put_f64(probe_up_acks_);
    w.put_f64(probe_up_cnt_);
    w.put_f64(pacing_gain_);
    w.put_f64(cwnd_gain_);
    w.put_f64(cwnd_);
    w.put_f64(prior_cwnd_);
    w.put_f64(pacing_rate_bps_);
  }
  void load(sim::SnapshotReader& r) override {
    r.get_pod(&rng_);
    mode_ = static_cast<Mode>(r.get_u8());
    phase_ = static_cast<Phase>(r.get_u8());
    r.get_pod(&max_bw_);
    round_count_ = r.get_i64();
    r.get_pod(&min_rtt_);
    r.get_pod(&min_rtt_stamp_);
    r.get_pod(&probe_rtt_done_);
    probe_rtt_round_done_ = r.get_bool();
    full_bw_reached_ = r.get_bool();
    full_bw_ = r.get_f64();
    r.get_pod(&full_bw_count_);
    r.get_pod(&startup_lossy_rounds_);
    inflight_hi_ = r.get_f64();
    inflight_lo_ = r.get_f64();
    lost_in_round_ = r.get_f64();
    delivered_in_round_ = r.get_f64();
    ece_in_round_ = r.get_bool();
    loss_round_ = r.get_bool();
    r.get_pod(&phase_start_);
    r.get_pod(&cruise_duration_);
    probe_up_hit_hi_ = r.get_bool();
    probe_up_rounds_ = r.get_f64();
    probe_up_acks_ = r.get_f64();
    probe_up_cnt_ = r.get_f64();
    pacing_gain_ = r.get_f64();
    cwnd_gain_ = r.get_f64();
    cwnd_ = r.get_f64();
    prior_cwnd_ = r.get_f64();
    pacing_rate_bps_ = r.get_f64();
  }

 private:
  [[nodiscard]] double bdp_segments(double gain) const;
  [[nodiscard]] double inflight_with_headroom() const;
  void update_model(const AckSample& ack);
  void end_of_round(const AckSample& ack);
  void update_state(const AckSample& ack);
  void start_probe_down(sim::Time now);
  void start_probe_cruise(sim::Time now);
  void start_probe_refill(sim::Time now);
  void start_probe_up(sim::Time now);
  void update_min_rtt(const AckSample& ack);
  void set_pacing_and_cwnd(const AckSample& ack);

  BbrV2Params bbr_;
  sim::Rng rng_;
  Mode mode_ = Mode::kStartup;
  Phase phase_ = Phase::kDown;

  MaxFilter<double, std::int64_t> max_bw_;
  std::int64_t round_count_ = 0;

  sim::Time min_rtt_ = sim::Time::zero();
  sim::Time min_rtt_stamp_ = sim::Time::zero();
  sim::Time probe_rtt_done_ = sim::Time::zero();
  bool probe_rtt_round_done_ = false;

  bool full_bw_reached_ = false;
  double full_bw_ = 0;
  int full_bw_count_ = 0;
  int startup_lossy_rounds_ = 0;

  double inflight_hi_ = 1e18;  ///< "infinite" until loss/ECN teaches us a bound
  double inflight_lo_ = 1e18;  ///< short-term loss bound, reset every REFILL
  double lost_in_round_ = 0;
  double delivered_in_round_ = 0;
  bool ece_in_round_ = false;
  bool loss_round_ = false;  ///< last completed round crossed loss_thresh

  sim::Time phase_start_ = sim::Time::zero();
  sim::Time cruise_duration_ = sim::Time::zero();
  bool probe_up_hit_hi_ = false;
  double probe_up_rounds_ = 0;  ///< rounds spent in the current UP phase
  double probe_up_acks_ = 0;    ///< acked segments toward the next hi bump
  double probe_up_cnt_ = 1;     ///< acked segments needed per +1 segment of hi

  double pacing_gain_;
  double cwnd_gain_;
  double cwnd_;
  double prior_cwnd_ = 0;
  double pacing_rate_bps_ = 0;
};

}  // namespace elephant::cca
