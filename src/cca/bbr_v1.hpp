#pragma once

#include "cca/congestion_control.hpp"
#include "cca/windowed_filter.hpp"
#include "sim/random.hpp"

namespace elephant::cca {

/// BBRv1 tunables (Linux tcp_bbr.c defaults).
struct BbrV1Params {
  double high_gain = 2.885;          ///< 2/ln(2): startup pacing & cwnd gain
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;            ///< ProbeBW cwnd gain → the 2×BDP inflight cap
  double probe_up_gain = 1.25;
  double probe_down_gain = 0.75;
  int bw_window_rounds = 10;
  sim::Time min_rtt_window = sim::Time::seconds(10.0);
  sim::Time probe_rtt_duration = sim::Time::milliseconds(200);
  double probe_rtt_cwnd_segments = 4;
  double full_bw_threshold = 1.25;   ///< startup exits when growth < 25% ...
  int full_bw_rounds = 3;            ///< ... for 3 consecutive rounds
};

/// BBR version 1 (Cardwell et al., CACM 2017; Linux tcp_bbr.c).
///
/// Model-based control: a windowed-max filter estimates bottleneck bandwidth,
/// a windowed-min filter estimates the propagation RTT, and the pacing rate /
/// cwnd are gains applied to their product. Packet loss is *not* a
/// congestion signal — only an RTO collapses the window — which is what
/// makes BBRv1 run over RED-style random drops (paper §5.2) and retransmit
/// far more than every other CCA (paper Fig. 8, Table 3).
class BbrV1 : public CongestionControl {
 public:
  explicit BbrV1(const CcaParams& params, BbrV1Params bbr = {});

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;
  void on_rto(sim::Time now) override;

  [[nodiscard]] double cwnd_segments() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override { return pacing_rate_bps_; }
  [[nodiscard]] bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  [[nodiscard]] std::string name() const override { return "bbr1"; }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] double bw_estimate() const { return max_bw_.best(); }  // segments/s
  [[nodiscard]] sim::Time min_rtt() const { return min_rtt_; }

  void save(sim::SnapshotWriter& w) const override {
    w.put_pod(rng_);
    w.put_u8(static_cast<std::uint8_t>(mode_));
    w.put_pod(max_bw_);
    w.put_i64(round_count_);
    w.put_pod(min_rtt_);
    w.put_pod(min_rtt_stamp_);
    w.put_pod(probe_rtt_done_);
    w.put_bool(probe_rtt_round_done_);
    w.put_bool(full_bw_reached_);
    w.put_f64(full_bw_);
    w.put_pod(full_bw_count_);
    w.put_pod(cycle_index_);
    w.put_pod(cycle_start_);
    w.put_bool(saw_loss_in_round_);
    w.put_f64(pacing_gain_);
    w.put_f64(cwnd_gain_);
    w.put_f64(cwnd_);
    w.put_f64(prior_cwnd_);
    w.put_f64(pacing_rate_bps_);
    w.put_bool(pacing_initialized_);
  }
  void load(sim::SnapshotReader& r) override {
    r.get_pod(&rng_);
    mode_ = static_cast<Mode>(r.get_u8());
    r.get_pod(&max_bw_);
    round_count_ = r.get_i64();
    r.get_pod(&min_rtt_);
    r.get_pod(&min_rtt_stamp_);
    r.get_pod(&probe_rtt_done_);
    probe_rtt_round_done_ = r.get_bool();
    full_bw_reached_ = r.get_bool();
    full_bw_ = r.get_f64();
    r.get_pod(&full_bw_count_);
    r.get_pod(&cycle_index_);
    r.get_pod(&cycle_start_);
    saw_loss_in_round_ = r.get_bool();
    pacing_gain_ = r.get_f64();
    cwnd_gain_ = r.get_f64();
    cwnd_ = r.get_f64();
    prior_cwnd_ = r.get_f64();
    pacing_rate_bps_ = r.get_f64();
    pacing_initialized_ = r.get_bool();
  }

 private:
  [[nodiscard]] double bdp_segments(double gain) const;
  void update_model(const AckSample& ack);
  void check_full_pipe(const AckSample& ack);
  void update_state(const AckSample& ack);
  void advance_cycle_phase(const AckSample& ack);
  void update_min_rtt(const AckSample& ack);
  void set_pacing_and_cwnd(const AckSample& ack);

  BbrV1Params bbr_;
  sim::Rng rng_;
  Mode mode_ = Mode::kStartup;

  MaxFilter<double, std::int64_t> max_bw_;  ///< segments/s over rounds
  std::int64_t round_count_ = 0;

  sim::Time min_rtt_ = sim::Time::zero();
  sim::Time min_rtt_stamp_ = sim::Time::zero();
  sim::Time probe_rtt_done_ = sim::Time::zero();
  bool probe_rtt_round_done_ = false;

  bool full_bw_reached_ = false;
  double full_bw_ = 0;
  int full_bw_count_ = 0;

  int cycle_index_ = 0;
  sim::Time cycle_start_ = sim::Time::zero();
  bool saw_loss_in_round_ = false;

  double pacing_gain_;
  double cwnd_gain_;
  double cwnd_;
  double prior_cwnd_ = 0;
  double pacing_rate_bps_ = 0;
  bool pacing_initialized_ = false;
};

}  // namespace elephant::cca
