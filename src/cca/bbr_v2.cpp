#include "cca/bbr_v2.hpp"

#include <algorithm>

namespace elephant::cca {

BbrV2::BbrV2(const CcaParams& params, BbrV2Params bbr)
    : CongestionControl(params),
      bbr_(bbr),
      rng_(params.seed ^ 0xBB22),
      max_bw_(bbr.bw_window_rounds, 0.0, 0),
      pacing_gain_(bbr.high_gain),
      cwnd_gain_(bbr.high_gain),
      cwnd_(params.initial_cwnd_segments) {}

double BbrV2::bdp_segments(double gain) const {
  const double bw = max_bw_.best();
  if (bw <= 0 || min_rtt_ == sim::Time::zero()) return params_.initial_cwnd_segments;
  return gain * bw * min_rtt_.sec();
}

double BbrV2::inflight_with_headroom() const {
  if (inflight_hi_ >= 1e17) return inflight_hi_;
  return std::max(bbr_.headroom * inflight_hi_, params_.min_cwnd_segments);
}

void BbrV2::update_model(const AckSample& ack) {
  delivered_in_round_ += ack.acked_segments;
  if (ack.ece) ece_in_round_ = true;
  if (ack.round_start) {
    end_of_round(ack);
    ++round_count_;
  }
  if (ack.delivery_rate > 0) max_bw_.update(ack.delivery_rate, round_count_);
}

void BbrV2::end_of_round(const AckSample& ack) {
  const double total = delivered_in_round_ + lost_in_round_;
  const double loss_rate = total > 0 ? lost_in_round_ / total : 0.0;
  loss_round_ = loss_rate > bbr_.loss_thresh;

  if (loss_round_) {
    if (mode_ == Mode::kStartup) {
      if (++startup_lossy_rounds_ >= bbr_.startup_loss_rounds) full_bw_reached_ = true;
      // Startup learned the pipe depth the hard way: bound future inflight.
      inflight_hi_ = std::min(inflight_hi_, std::max(ack.inflight_segments, bdp_segments(1.0)));
    } else {
      // The 2% rule (v2alpha bbr2_handle_inflight_too_high): bound inflight
      // at the level where the loss occurred, floored at beta * the gain
      // target. The floor is what stops a downward spiral while coexisting
      // with loss-based flows; the bound-at-loss-level is what makes BBRv2
      // yield in deep FIFO buffers, where overflow bursts put whole rounds
      // over the threshold (the paper's §5.1 explanation).
      inflight_hi_ =
          std::max(ack.inflight_segments, bdp_segments(cwnd_gain_) * bbr_.beta);
      const double lo_base = inflight_lo_ >= 1e17 ? cwnd_ : inflight_lo_;
      inflight_lo_ = std::max(lo_base * bbr_.beta, params_.min_cwnd_segments);
      if (mode_ == Mode::kProbeBw && (phase_ == Phase::kUp || phase_ == Phase::kRefill)) {
        start_probe_down(ack.now);
      }
    }
  } else if (ece_in_round_ && inflight_hi_ < 1e17) {
    inflight_hi_ = std::max(inflight_hi_ * bbr_.ecn_factor, params_.min_cwnd_segments);
  }

  lost_in_round_ = 0;
  delivered_in_round_ = 0;
  ece_in_round_ = false;

  // Startup also exits on a bandwidth plateau, like BBRv1.
  if (mode_ == Mode::kStartup && !full_bw_reached_) {
    const double bw = max_bw_.best();
    if (bw >= full_bw_ * 1.25) {
      full_bw_ = bw;
      full_bw_count_ = 0;
    } else if (++full_bw_count_ >= 3) {
      full_bw_reached_ = true;
    }
  }
}

void BbrV2::start_probe_down(sim::Time now) {
  phase_ = Phase::kDown;
  phase_start_ = now;
  pacing_gain_ = bbr_.probe_down_pacing_gain;
  probe_up_hit_hi_ = false;
}

void BbrV2::start_probe_cruise(sim::Time now) {
  phase_ = Phase::kCruise;
  phase_start_ = now;
  pacing_gain_ = 1.0;
  const double span = (bbr_.max_probe_interval - bbr_.min_probe_interval).sec();
  cruise_duration_ = bbr_.min_probe_interval + sim::Time::seconds(span * rng_.next_double());
}

void BbrV2::start_probe_refill(sim::Time now) {
  phase_ = Phase::kRefill;
  phase_start_ = now;
  pacing_gain_ = 1.0;
  inflight_lo_ = 1e18;  // v2alpha resets the short-term bounds before probing
}

void BbrV2::start_probe_up(sim::Time now) {
  phase_ = Phase::kUp;
  phase_start_ = now;
  pacing_gain_ = bbr_.probe_up_pacing_gain;
  probe_up_hit_hi_ = false;
  probe_up_rounds_ = 0;
  probe_up_acks_ = 0;
  probe_up_cnt_ = std::max(cwnd_, 1.0);
}

void BbrV2::update_state(const AckSample& ack) {
  switch (mode_) {
    case Mode::kStartup:
      if (full_bw_reached_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = bbr_.drain_gain;
        cwnd_gain_ = bbr_.high_gain;
      }
      break;
    case Mode::kDrain:
      if (ack.inflight_segments <= bdp_segments(1.0)) {
        mode_ = Mode::kProbeBw;
        cwnd_gain_ = bbr_.cwnd_gain;
        start_probe_down(ack.now);
      }
      break;
    case Mode::kProbeBw: {
      const sim::Time elapsed = ack.now - phase_start_;
      switch (phase_) {
        case Phase::kDown:
          if (ack.inflight_segments <= inflight_with_headroom() || elapsed > 2 * min_rtt_) {
            start_probe_cruise(ack.now);
          }
          break;
        case Phase::kCruise:
          if (elapsed >= cruise_duration_) start_probe_refill(ack.now);
          break;
        case Phase::kRefill:
          // One round at gain 1 to refill the pipe before probing up.
          if (ack.round_start) start_probe_up(ack.now);
          break;
        case Phase::kUp:
          if (ack.round_start) {
            ++probe_up_rounds_;
            probe_up_cnt_ = std::max(cwnd_ / probe_up_rounds_, 1.0);
          }
          if (probe_up_hit_hi_ && ack.inflight_segments >= inflight_hi_ * 0.99 &&
              inflight_hi_ < 1e17) {
            // Bound reached without excess loss: the path may have more room.
            // Raise the ceiling slow-start-style (v2alpha: ~probe_up_rounds
            // segments per round), not by a whole cwnd per RTT.
            probe_up_acks_ += ack.acked_segments;
            while (probe_up_acks_ >= probe_up_cnt_) {
              probe_up_acks_ -= probe_up_cnt_;
              inflight_hi_ += 1.0;
            }
          }
          if (inflight_hi_ >= 1e17) {
            // No learned bound: behave like a v1 probe round.
            if (elapsed > min_rtt_ &&
                (loss_round_ || ack.inflight_segments >= bdp_segments(1.25))) {
              start_probe_down(ack.now);
            }
          } else if (ack.inflight_segments >= inflight_hi_) {
            probe_up_hit_hi_ = true;
            if (elapsed > 4 * min_rtt_) start_probe_down(ack.now);
          }
          break;
      }
      break;
    }
    case Mode::kProbeRtt:
      break;
  }
}

void BbrV2::update_min_rtt(const AckSample& ack) {
  const bool expired = min_rtt_stamp_ != sim::Time::zero() &&
                       ack.now > min_rtt_stamp_ + bbr_.min_rtt_window;
  if (ack.rtt != sim::Time::zero() &&
      (min_rtt_ == sim::Time::zero() || ack.rtt < min_rtt_ || expired)) {
    min_rtt_ = ack.rtt;
    min_rtt_stamp_ = ack.now;
  }

  if (expired && mode_ != Mode::kProbeRtt && full_bw_reached_) {
    mode_ = Mode::kProbeRtt;
    prior_cwnd_ = cwnd_;
    pacing_gain_ = 1.0;
    probe_rtt_done_ = sim::Time::zero();
    probe_rtt_round_done_ = false;
  }

  if (mode_ == Mode::kProbeRtt) {
    const double floor_cwnd =
        std::max(bdp_segments(bbr_.probe_rtt_cwnd_gain), params_.min_cwnd_segments);
    if (probe_rtt_done_ == sim::Time::zero()) {
      if (ack.inflight_segments <= floor_cwnd * 1.1) {
        probe_rtt_done_ = ack.now + bbr_.probe_rtt_duration;
      }
    } else {
      if (ack.round_start) probe_rtt_round_done_ = true;
      if (probe_rtt_round_done_ && ack.now >= probe_rtt_done_) {
        min_rtt_stamp_ = ack.now;
        cwnd_ = std::max(cwnd_, prior_cwnd_);
        mode_ = Mode::kProbeBw;
        cwnd_gain_ = bbr_.cwnd_gain;
        start_probe_cruise(ack.now);
      }
    }
  }
}

void BbrV2::set_pacing_and_cwnd(const AckSample& ack) {
  const double bw = max_bw_.best();
  if (bw > 0 && min_rtt_ != sim::Time::zero()) {
    pacing_rate_bps_ = pacing_gain_ * bw * params_.mss_bytes * 8.0;
  } else if (pacing_rate_bps_ == 0 && ack.rtt != sim::Time::zero()) {
    pacing_rate_bps_ = bbr_.high_gain * cwnd_ * params_.mss_bytes * 8.0 / ack.rtt.sec();
  }

  if (mode_ == Mode::kProbeRtt) {
    const double floor_cwnd =
        std::max(bdp_segments(bbr_.probe_rtt_cwnd_gain), params_.min_cwnd_segments);
    cwnd_ = std::min(cwnd_, floor_cwnd);
    return;
  }

  double target = bdp_segments(cwnd_gain_);
  // Apply the inflight bounds: the full long-term bound while probing
  // up/refilling, the headroom-reduced bound while cruising or draining,
  // and always the short-term (loss-derived) bound.
  double bound = (mode_ == Mode::kProbeBw && (phase_ == Phase::kUp || phase_ == Phase::kRefill))
                     ? inflight_hi_
                     : inflight_with_headroom();
  bound = std::min(bound, inflight_lo_);
  target = std::min(target, bound);

  if (full_bw_reached_) {
    cwnd_ = std::min(cwnd_ + ack.acked_segments, target);
  } else if (cwnd_ < target ||
             ack.delivered_segments < 2 * params_.initial_cwnd_segments) {
    cwnd_ = std::min(cwnd_ + ack.acked_segments, inflight_hi_);
  }
  cwnd_ = std::max(cwnd_, params_.min_cwnd_segments);
}

void BbrV2::on_ack(const AckSample& ack) {
  if (ack.acked_segments <= 0 && !ack.ece) return;
  update_model(ack);
  update_state(ack);
  update_min_rtt(ack);
  set_pacing_and_cwnd(ack);
}

void BbrV2::on_loss(const LossSample& loss) {
  lost_in_round_ += loss.lost_segments;
}

void BbrV2::on_rto(sim::Time /*now*/) {
  prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
  cwnd_ = params_.min_cwnd_segments;
  // An RTO is the strongest congestion evidence BBRv2 gets: bound inflight.
  if (inflight_hi_ < 1e17) {
    inflight_hi_ = std::max(inflight_hi_ * bbr_.beta, params_.min_cwnd_segments);
  }
}

}  // namespace elephant::cca
