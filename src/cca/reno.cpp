#include "cca/reno.hpp"

#include <algorithm>

namespace elephant::cca {

void Reno::on_ack(const AckSample& ack) {
  if (ack.acked_segments <= 0) return;
  if (in_slow_start()) {
    cwnd_ += ack.acked_segments;
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;  // cap overshoot at exit
    return;
  }
  // Congestion avoidance: +1 segment per cwnd of acked data.
  acked_accum_ += ack.acked_segments;
  if (acked_accum_ >= cwnd_) {
    acked_accum_ -= cwnd_;
    cwnd_ += 1.0;
  }
}

void Reno::on_loss(const LossSample& loss) {
  if (!loss.new_congestion_event) return;  // one reduction per episode
  ssthresh_ = std::max(cwnd_ / 2.0, params_.min_cwnd_segments);
  cwnd_ = ssthresh_;
  acked_accum_ = 0;
}

void Reno::on_rto(sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, params_.min_cwnd_segments);
  cwnd_ = params_.min_cwnd_segments;
  acked_accum_ = 0;
}

}  // namespace elephant::cca
