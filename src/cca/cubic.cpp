#include "cca/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace elephant::cca {

Cubic::Cubic(const CcaParams& params, CubicParams cubic)
    : CongestionControl(params), cubic_(cubic), cwnd_(params.initial_cwnd_segments),
      ssthresh_(1e18) {}

void Cubic::hystart_update(const AckSample& ack) {
  // HyStart (Ha & Rhee): within each round collect the min RTT from the first
  // few samples; if it exceeds the previous round's min by a clamped
  // threshold, the queue has started building — leave slow start now.
  if (ack.round_start) {
    hs_prev_round_min_rtt_ = hs_round_min_rtt_;
    hs_round_min_rtt_ = sim::Time::max();
    hs_samples_ = 0;
  }
  if (ack.rtt == sim::Time::zero() || hs_samples_ >= 8) return;
  ++hs_samples_;
  hs_round_min_rtt_ = std::min(hs_round_min_rtt_, ack.rtt);
  if (hs_samples_ < 8 || hs_prev_round_min_rtt_ == sim::Time::max()) return;

  const auto base = hs_prev_round_min_rtt_;
  auto thresh = base / 8;
  const auto lo = sim::Time::milliseconds(4);
  const auto hi = sim::Time::milliseconds(16);
  thresh = std::clamp(thresh, lo, hi);
  if (hs_round_min_rtt_ >= base + thresh) {
    ssthresh_ = cwnd_;  // exit slow start without a loss
  }
}

void Cubic::enter_congestion_avoidance(sim::Time now) {
  epoch_start_ = now;
  if (cwnd_ < w_max_ && cubic_.fast_convergence) {
    // Release bandwidth faster when the flow is shrinking.
    w_max_ = cwnd_ * (2.0 - cubic_.beta) / 2.0;
  } else {
    w_max_ = cwnd_;
  }
  k_ = std::cbrt(w_max_ * (1.0 - cubic_.beta) / cubic_.c);
  w_est_ = cwnd_;
  est_accum_ = 0;
}

void Cubic::on_ack(const AckSample& ack) {
  if (ack.acked_segments <= 0) return;

  if (in_slow_start()) {
    cwnd_ += ack.acked_segments;
    if (cubic_.hystart) hystart_update(ack);
    if (cwnd_ < ssthresh_) return;
    cwnd_ = ssthresh_;  // fall through to CA on this ack
  }

  if (epoch_start_ == sim::Time::zero()) {
    // First CA epoch (e.g. HyStart exit without any loss yet).
    epoch_start_ = ack.now;
    if (w_max_ <= 0) w_max_ = cwnd_;
    k_ = std::cbrt(w_max_ * (1.0 - cubic_.beta) / cubic_.c);
    w_est_ = cwnd_;
    est_accum_ = 0;
  }

  const double t = (ack.now - epoch_start_).sec();
  const double rtt_s = ack.rtt != sim::Time::zero() ? ack.rtt.sec() : 0.0;

  // Target is the cubic curve one RTT ahead (RFC 8312 §4.1).
  const double dt = t + rtt_s;
  const double w_cubic = cubic_.c * (dt - k_) * (dt - k_) * (dt - k_) + w_max_;

  // Reno-equivalent window for the TCP-friendly region (RFC 8312 §4.2).
  if (cubic_.tcp_friendliness) {
    est_accum_ += ack.acked_segments;
    const double alpha = 3.0 * (1.0 - cubic_.beta) / (1.0 + cubic_.beta);
    if (w_est_ > 0 && est_accum_ >= w_est_) {
      est_accum_ -= w_est_;
      w_est_ += alpha;
    }
  }

  double target = w_cubic;
  if (cubic_.tcp_friendliness && w_est_ > target) target = w_est_;

  if (target > cwnd_) {
    // Approach the target over one cwnd of ACKs.
    cwnd_ += (target - cwnd_) / cwnd_ * ack.acked_segments;
  } else {
    // Max-probing plateau: creep forward very slowly.
    cwnd_ += ack.acked_segments / (100.0 * cwnd_);
  }
}

void Cubic::on_loss(const LossSample& loss) {
  if (!loss.new_congestion_event) return;
  enter_congestion_avoidance(loss.now);
  cwnd_ = std::max(cwnd_ * cubic_.beta, params_.min_cwnd_segments);
  ssthresh_ = cwnd_;
  w_est_ = cwnd_;  // TCP-friendly window restarts from the reduced window
}

void Cubic::on_rto(sim::Time /*now*/) {
  // Linux resets the cubic epoch and collapses to the minimum window.
  ssthresh_ = std::max(cwnd_ * cubic_.beta, params_.min_cwnd_segments);
  cwnd_ = params_.min_cwnd_segments;
  epoch_start_ = sim::Time::zero();
  w_max_ = ssthresh_;
}

}  // namespace elephant::cca
