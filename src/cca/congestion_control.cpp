#include "cca/congestion_control.hpp"

#include <stdexcept>

#include "cca/bbr_v1.hpp"
#include "cca/bbr_v2.hpp"
#include "cca/cubic.hpp"
#include "cca/htcp.hpp"
#include "cca/reno.hpp"

namespace elephant::cca {

std::string to_string(CcaKind kind) {
  switch (kind) {
    case CcaKind::kReno:
      return "reno";
    case CcaKind::kCubic:
      return "cubic";
    case CcaKind::kHtcp:
      return "htcp";
    case CcaKind::kBbrV1:
      return "bbr1";
    case CcaKind::kBbrV2:
      return "bbr2";
  }
  return "unknown";
}

CcaKind cca_kind_from_string(const std::string& name) {
  if (name == "reno") return CcaKind::kReno;
  if (name == "cubic") return CcaKind::kCubic;
  if (name == "htcp") return CcaKind::kHtcp;
  if (name == "bbr1" || name == "bbrv1" || name == "bbr") return CcaKind::kBbrV1;
  if (name == "bbr2" || name == "bbrv2") return CcaKind::kBbrV2;
  throw std::invalid_argument("unknown CCA name: " + name);
}

std::unique_ptr<CongestionControl> make_cca(CcaKind kind, const CcaParams& params) {
  switch (kind) {
    case CcaKind::kReno:
      return std::make_unique<Reno>(params);
    case CcaKind::kCubic:
      return std::make_unique<Cubic>(params);
    case CcaKind::kHtcp:
      return std::make_unique<Htcp>(params);
    case CcaKind::kBbrV1:
      return std::make_unique<BbrV1>(params);
    case CcaKind::kBbrV2:
      return std::make_unique<BbrV2>(params);
  }
  throw std::invalid_argument("unknown CCA kind");
}

}  // namespace elephant::cca
