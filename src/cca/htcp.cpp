#include "cca/htcp.hpp"

#include <algorithm>
#include <cmath>

namespace elephant::cca {

Htcp::Htcp(const CcaParams& params, HtcpParams htcp)
    : CongestionControl(params), htcp_(htcp), cwnd_(params.initial_cwnd_segments),
      ssthresh_(1e18) {}

void Htcp::update_alpha(sim::Time now, sim::Time rtt) {
  if (last_congestion_ == sim::Time::zero()) {
    alpha_ = 1.0;
    return;
  }
  const double delta = (now - last_congestion_).sec();
  if (delta <= htcp_.delta_l) {
    alpha_ = 1.0;
    return;
  }
  const double d = delta - htcp_.delta_l;
  double a = 1.0 + 10.0 * d + (d / 2.0) * (d / 2.0);
  if (htcp_.rtt_scaling && rtt != sim::Time::zero()) {
    // Optional RTT scaling normalizes aggressiveness across RTTs.
    a *= rtt.sec() / 0.1;
    a = std::max(a, 1.0);
  }
  // The published algorithm scales α by 2(1−β) to keep the average rate
  // matched to the AIMD fixed point.
  alpha_ = std::max(1.0, 2.0 * (1.0 - beta_) * a);
}

void Htcp::on_ack(const AckSample& ack) {
  if (ack.acked_segments <= 0) return;
  if (ack.rtt != sim::Time::zero()) {
    epoch_rtt_min_ = std::min(epoch_rtt_min_, ack.rtt);
    epoch_rtt_max_ = std::max(epoch_rtt_max_, ack.rtt);
  }

  if (in_slow_start()) {
    cwnd_ += ack.acked_segments;
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    return;
  }

  update_alpha(ack.now, ack.rtt);
  acked_accum_ += ack.acked_segments;
  if (acked_accum_ >= cwnd_) {
    acked_accum_ -= cwnd_;
    cwnd_ += alpha_;
  }
}

void Htcp::on_loss(const LossSample& loss) {
  if (!loss.new_congestion_event) return;

  // Throughput of the epoch that just ended (segments/s).
  double epoch_bw = 0;
  if (epoch_start_ != sim::Time::zero() && loss.now > epoch_start_) {
    epoch_bw = (loss.delivered_segments - epoch_throughput_) / (loss.now - epoch_start_).sec();
  }

  if (htcp_.bandwidth_switch && last_bw_ > 0 && epoch_bw > 0 &&
      std::abs(epoch_bw - last_bw_) > 0.2 * last_bw_) {
    // Linux htcp's use_bandwidth_switch: a >20% throughput shift between
    // epochs means the share is in flux — back off conservatively. Under
    // deep-buffer coexistence with CUBIC this fires often and is what lets
    // CUBIC gradually take over (paper Fig. 2(k)-(o)).
    beta_ = htcp_.beta_min;
  } else if (htcp_.adaptive_backoff && epoch_rtt_max_ > sim::Time::zero() &&
             epoch_rtt_min_ != sim::Time::max()) {
    beta_ = std::clamp(epoch_rtt_min_ / epoch_rtt_max_, htcp_.beta_min, htcp_.beta_max);
  } else {
    beta_ = htcp_.beta_min;
  }
  if (epoch_bw > 0) last_bw_ = epoch_bw;

  cwnd_ = std::max(cwnd_ * beta_, params_.min_cwnd_segments);
  ssthresh_ = cwnd_;
  last_congestion_ = loss.now;
  epoch_start_ = loss.now;
  epoch_rtt_min_ = sim::Time::max();
  epoch_rtt_max_ = sim::Time::zero();
  epoch_throughput_ = loss.delivered_segments;
  acked_accum_ = 0;
  alpha_ = 1.0;
}

void Htcp::on_rto(sim::Time now) {
  ssthresh_ = std::max(cwnd_ / 2.0, params_.min_cwnd_segments);
  cwnd_ = params_.min_cwnd_segments;
  last_congestion_ = now;
  epoch_rtt_min_ = sim::Time::max();
  epoch_rtt_max_ = sim::Time::zero();
  acked_accum_ = 0;
  alpha_ = 1.0;
}

}  // namespace elephant::cca
