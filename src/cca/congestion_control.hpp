#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/random.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace elephant::cca {

/// Static parameters every congestion controller receives.
struct CcaParams {
  double mss_bytes = 8900;            ///< wire bytes per segment (jumbo frames)
  double initial_cwnd_segments = 10;  ///< Linux IW10
  double min_cwnd_segments = 2;
  std::uint64_t seed = 1;             ///< for randomized probe timing (BBRv2)
};

/// Everything a controller may want to know about one incoming ACK.
/// Counts are in segments (MSS units), independent of TSO-style aggregation.
struct AckSample {
  sim::Time now{};
  sim::Time rtt{};                 ///< sample for this ACK; zero if invalid (retx-tainted)
  sim::Time min_rtt{};             ///< sender's lifetime minimum RTT estimate
  double acked_segments = 0;       ///< newly delivered by this ACK (cum + SACK)
  double inflight_segments = 0;    ///< pipe after processing this ACK
  double delivered_segments = 0;   ///< lifetime delivered total
  double delivery_rate = 0;        ///< segments/s rate sample; 0 if unavailable
  bool round_start = false;        ///< first ACK of a new packet-timed round trip
  bool ece = false;                ///< ECN echo set by the receiver
};

/// A batch of segments newly declared lost by the sender's scoreboard.
struct LossSample {
  sim::Time now{};
  double lost_segments = 0;
  double inflight_segments = 0;
  double delivered_segments = 0;
  /// True for the first loss of a new recovery episode: loss-based CCAs
  /// reduce once per episode, not once per lost packet.
  bool new_congestion_event = false;
};

/// The pluggable congestion-control interface — the axis the paper varies.
///
/// The sender drives controllers with ACK, loss, and RTO upcalls and reads
/// back a congestion window (segments) and an optional pacing rate. A pacing
/// rate of zero means the flow is ACK-clocked (loss-based Linux defaults
/// without sch_fq); BBR variants always pace.
class CongestionControl {
 public:
  explicit CongestionControl(const CcaParams& params) : params_(params) {}
  virtual ~CongestionControl() = default;

  CongestionControl(const CongestionControl&) = delete;
  CongestionControl& operator=(const CongestionControl&) = delete;

  virtual void on_ack(const AckSample& ack) = 0;
  virtual void on_loss(const LossSample& loss) = 0;
  virtual void on_rto(sim::Time now) = 0;

  [[nodiscard]] virtual double cwnd_segments() const = 0;
  /// Pacing rate in bits/s of payload; 0 disables pacing.
  [[nodiscard]] virtual double pacing_rate_bps() const { return 0.0; }
  [[nodiscard]] virtual bool in_slow_start() const { return false; }
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const CcaParams& params() const { return params_; }

  /// Snapshot the controller's mutable state (sim::Snapshottable contract).
  /// Defaults are no-ops for stateless stubs; every shipped algorithm
  /// overrides both. `params_` is immutable and not stored.
  virtual void save(sim::SnapshotWriter& w) const { (void)w; }
  virtual void load(sim::SnapshotReader& r) { (void)r; }

 protected:
  CcaParams params_;
};

/// The five algorithms the paper studies.
enum class CcaKind { kReno, kCubic, kHtcp, kBbrV1, kBbrV2 };

[[nodiscard]] std::string to_string(CcaKind kind);
[[nodiscard]] CcaKind cca_kind_from_string(const std::string& name);

/// Construct a controller by kind.
[[nodiscard]] std::unique_ptr<CongestionControl> make_cca(CcaKind kind, const CcaParams& params);

}  // namespace elephant::cca
