#pragma once

#include "cca/congestion_control.hpp"

namespace elephant::cca {

/// CUBIC tunables (RFC 8312 defaults, matching Linux `tcp_cubic`).
struct CubicParams {
  double c = 0.4;          ///< cubic scaling constant (segments/s^3)
  double beta = 0.7;       ///< multiplicative decrease factor
  bool fast_convergence = true;
  bool tcp_friendliness = true;
  bool hystart = true;     ///< delay-based slow-start exit (Linux default)
};

/// TCP CUBIC (RFC 8312) — the Linux default and the paper's reference CCA.
///
/// The window grows as a cubic function of time since the last congestion
/// event, anchored at the pre-loss window W_max; a "TCP-friendly" lower
/// bound keeps it at least as aggressive as Reno at small BDPs. HyStart's
/// delay-increase heuristic exits slow start before the buffer floods,
/// as Linux does.
class Cubic : public CongestionControl {
 public:
  explicit Cubic(const CcaParams& params, CubicParams cubic = {});

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;
  void on_rto(sim::Time now) override;

  [[nodiscard]] double cwnd_segments() const override { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::string name() const override { return "cubic"; }

  [[nodiscard]] double w_max() const { return w_max_; }
  [[nodiscard]] double k() const { return k_; }

  void save(sim::SnapshotWriter& w) const override {
    w.put_f64(cwnd_);
    w.put_f64(ssthresh_);
    w.put_f64(w_max_);
    w.put_f64(k_);
    w.put_pod(epoch_start_);
    w.put_f64(w_est_);
    w.put_f64(est_accum_);
    w.put_pod(hs_round_min_rtt_);
    w.put_pod(hs_prev_round_min_rtt_);
    w.put_pod(hs_samples_);
  }
  void load(sim::SnapshotReader& r) override {
    cwnd_ = r.get_f64();
    ssthresh_ = r.get_f64();
    w_max_ = r.get_f64();
    k_ = r.get_f64();
    r.get_pod(&epoch_start_);
    w_est_ = r.get_f64();
    est_accum_ = r.get_f64();
    r.get_pod(&hs_round_min_rtt_);
    r.get_pod(&hs_prev_round_min_rtt_);
    r.get_pod(&hs_samples_);
  }

 private:
  void enter_congestion_avoidance(sim::Time now);
  void hystart_update(const AckSample& ack);

  CubicParams cubic_;
  double cwnd_;
  double ssthresh_;
  double w_max_ = 0;
  double k_ = 0;                       ///< seconds to return to w_max
  sim::Time epoch_start_ = sim::Time::zero();
  double w_est_ = 0;                   ///< TCP-friendly (Reno-equivalent) window
  double est_accum_ = 0;

  // HyStart state (delay-increase detection, one evaluation per round).
  sim::Time hs_round_min_rtt_ = sim::Time::max();
  sim::Time hs_prev_round_min_rtt_ = sim::Time::max();
  int hs_samples_ = 0;
};

}  // namespace elephant::cca
