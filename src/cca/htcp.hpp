#pragma once

#include "cca/congestion_control.hpp"

namespace elephant::cca {

/// H-TCP tunables (Leith & Shorten, PFLDnet 2004).
struct HtcpParams {
  double delta_l = 1.0;      ///< seconds of low-speed (Reno) behaviour after loss
  double beta_min = 0.5;
  double beta_max = 0.8;
  bool adaptive_backoff = true;  ///< β = RTTmin/RTTmax measured per epoch
  bool bandwidth_switch = true;  ///< β = 0.5 on >20% inter-epoch throughput shift (Linux default)
  bool rtt_scaling = false;      ///< the paper's kernels keep Linux default (off)
};

/// Hamilton TCP: additive-increase rate grows with the time Δ since the last
/// congestion event — α(Δ) = 1 + 10(Δ−Δ_L) + ((Δ−Δ_L)/2)² — and the backoff
/// factor adapts to the observed queuing (β = RTT_min/RTT_max, clamped).
///
/// Long loss-free periods therefore make the flow rapidly more aggressive,
/// which is exactly why it scales to high BDPs, and why bufferbloat-induced
/// RTT growth (large FIFO buffers) pushes its β toward 0.5 and lets CUBIC
/// overtake it — the effect in paper Fig. 2(k)–(o).
class Htcp : public CongestionControl {
 public:
  explicit Htcp(const CcaParams& params, HtcpParams htcp = {});

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;
  void on_rto(sim::Time now) override;

  [[nodiscard]] double cwnd_segments() const override { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::string name() const override { return "htcp"; }

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }

  void save(sim::SnapshotWriter& w) const override {
    w.put_f64(cwnd_);
    w.put_f64(ssthresh_);
    w.put_f64(alpha_);
    w.put_f64(beta_);
    w.put_f64(acked_accum_);
    w.put_pod(last_congestion_);
    w.put_pod(epoch_rtt_min_);
    w.put_pod(epoch_rtt_max_);
    w.put_f64(epoch_throughput_);
    w.put_pod(epoch_start_);
    w.put_f64(last_bw_);
  }
  void load(sim::SnapshotReader& r) override {
    cwnd_ = r.get_f64();
    ssthresh_ = r.get_f64();
    alpha_ = r.get_f64();
    beta_ = r.get_f64();
    acked_accum_ = r.get_f64();
    r.get_pod(&last_congestion_);
    r.get_pod(&epoch_rtt_min_);
    r.get_pod(&epoch_rtt_max_);
    epoch_throughput_ = r.get_f64();
    r.get_pod(&epoch_start_);
    last_bw_ = r.get_f64();
  }

 private:
  void update_alpha(sim::Time now, sim::Time rtt);

  HtcpParams htcp_;
  double cwnd_;
  double ssthresh_;
  double alpha_ = 1.0;
  double beta_ = 0.5;
  double acked_accum_ = 0;

  sim::Time last_congestion_ = sim::Time::zero();
  sim::Time epoch_rtt_min_ = sim::Time::max();
  sim::Time epoch_rtt_max_ = sim::Time::zero();
  double epoch_throughput_ = 0;       ///< delivered segs at epoch start
  sim::Time epoch_start_ = sim::Time::zero();
  double last_bw_ = 0;                ///< previous epoch's throughput (segs/s)
};

}  // namespace elephant::cca
