#pragma once

#include <cstddef>
#include <stdexcept>

#include "cca/bbr_v1.hpp"
#include "cca/bbr_v2.hpp"
#include "cca/congestion_control.hpp"
#include "cca/cubic.hpp"
#include "cca/htcp.hpp"
#include "cca/reno.hpp"
#include "sim/slab.hpp"

namespace elephant::cca {

/// Constructs congestion controllers in-place out of per-kind slabs, so a
/// 100k-flow cell's CCA state is packed contiguously per algorithm instead
/// of scattered across one heap allocation per flow (the make_cca path).
/// Returned pointers are stable for the arena's lifetime; the arena frees
/// everything at destruction — individual controllers are never released,
/// matching flow lifetimes (flows are torn down with the cell, not
/// mid-run).
class CcaArena {
 public:
  CcaArena() = default;
  CcaArena(const CcaArena&) = delete;
  CcaArena& operator=(const CcaArena&) = delete;

  [[nodiscard]] CongestionControl* make(CcaKind kind, const CcaParams& params) {
    switch (kind) {
      case CcaKind::kReno:
        return reno_.emplace(params).second;
      case CcaKind::kCubic:
        return cubic_.emplace(params).second;
      case CcaKind::kHtcp:
        return htcp_.emplace(params).second;
      case CcaKind::kBbrV1:
        return bbr1_.emplace(params).second;
      case CcaKind::kBbrV2:
        return bbr2_.emplace(params).second;
    }
    throw std::invalid_argument("unknown CCA kind");
  }

  [[nodiscard]] std::size_t size() const {
    return reno_.size() + cubic_.size() + htcp_.size() + bbr1_.size() + bbr2_.size();
  }
  /// Heap bytes pinned by the controller slabs (the RSS-per-flow metric's
  /// CCA share).
  [[nodiscard]] std::size_t bytes() const {
    return reno_.bytes() + cubic_.bytes() + htcp_.bytes() + bbr1_.bytes() + bbr2_.bytes();
  }

 private:
  sim::Slab<Reno> reno_;
  sim::Slab<Cubic> cubic_;
  sim::Slab<Htcp> htcp_;
  sim::Slab<BbrV1> bbr1_;
  sim::Slab<BbrV2> bbr2_;
};

}  // namespace elephant::cca
