#pragma once

#include <cstdint>

namespace elephant::cca {

/// Kathleen Nichols' windowed min/max estimator, as used by Linux BBR
/// (lib/minmax.c): tracks the best, second-best and third-best samples so
/// the window can expire the current best without rescanning history.
///
/// `Compare(a, b)` returns true when `a` is a better estimate than `b`
/// (e.g. `>` for a max filter). `T` is the sample type, `TimeT` any
/// monotonically increasing timestamp (rounds or nanoseconds).
template <typename T, typename TimeT, typename Compare>
class WindowedFilter {
 public:
  WindowedFilter(TimeT window, T zero, TimeT zero_time) : window_(window) {
    reset(zero, zero_time);
  }

  void reset(T sample, TimeT time) {
    estimates_[0] = estimates_[1] = estimates_[2] = Entry{sample, time};
  }

  void update(T sample, TimeT time) {
    const Entry entry{sample, time};
    // A new best sample, or a window that has fully expired, resets everything.
    if (Compare{}(sample, estimates_[0].sample) || time - estimates_[2].time > window_) {
      reset(sample, time);
      return;
    }
    if (Compare{}(sample, estimates_[1].sample)) {
      estimates_[1] = entry;
      estimates_[2] = entry;
    } else if (Compare{}(sample, estimates_[2].sample)) {
      estimates_[2] = entry;
    }

    // Expire stale estimates.
    if (time - estimates_[0].time > window_) {
      estimates_[0] = estimates_[1];
      estimates_[1] = estimates_[2];
      estimates_[2] = entry;
      if (time - estimates_[0].time > window_) {
        estimates_[0] = estimates_[1];
        estimates_[1] = estimates_[2];
      }
      return;
    }
    if (estimates_[1].time == estimates_[0].time && time - estimates_[1].time > window_ / 4) {
      estimates_[1] = entry;
      estimates_[2] = entry;
      return;
    }
    if (estimates_[2].time == estimates_[1].time && time - estimates_[2].time > window_ / 2) {
      estimates_[2] = entry;
    }
  }

  [[nodiscard]] T best() const { return estimates_[0].sample; }
  [[nodiscard]] T second_best() const { return estimates_[1].sample; }
  [[nodiscard]] T third_best() const { return estimates_[2].sample; }

 private:
  struct Entry {
    T sample{};
    TimeT time{};
  };
  TimeT window_;
  Entry estimates_[3];
};

struct MaxCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a >= b;
  }
};
struct MinCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a <= b;
  }
};

template <typename T, typename TimeT>
using MaxFilter = WindowedFilter<T, TimeT, MaxCompare>;
template <typename T, typename TimeT>
using MinFilter = WindowedFilter<T, TimeT, MinCompare>;

}  // namespace elephant::cca
