#pragma once

#include "cca/congestion_control.hpp"

namespace elephant::cca {

/// TCP (New)Reno: slow start, AIMD congestion avoidance, halving on loss
/// (RFC 5681 / RFC 6582). The conservative baseline whose poor high-BDP
/// scaling the paper demonstrates.
class Reno : public CongestionControl {
 public:
  explicit Reno(const CcaParams& params)
      : CongestionControl(params),
        cwnd_(params.initial_cwnd_segments),
        ssthresh_(1e18) {}

  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;
  void on_rto(sim::Time now) override;

  [[nodiscard]] double cwnd_segments() const override { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::string name() const override { return "reno"; }
  [[nodiscard]] double ssthresh() const { return ssthresh_; }

  void save(sim::SnapshotWriter& w) const override {
    w.put_f64(cwnd_);
    w.put_f64(ssthresh_);
    w.put_f64(acked_accum_);
  }
  void load(sim::SnapshotReader& r) override {
    cwnd_ = r.get_f64();
    ssthresh_ = r.get_f64();
    acked_accum_ = r.get_f64();
  }

 private:
  double cwnd_;
  double ssthresh_;
  double acked_accum_ = 0;  ///< appropriate byte counting for CA increase
};

}  // namespace elephant::cca
