#include "cca/bbr_v1.hpp"

#include <algorithm>

namespace elephant::cca {

namespace {
constexpr double kPacingGainCycle[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr int kCycleLength = 8;
}  // namespace

BbrV1::BbrV1(const CcaParams& params, BbrV1Params bbr)
    : CongestionControl(params),
      bbr_(bbr),
      rng_(params.seed),
      max_bw_(bbr.bw_window_rounds, 0.0, 0),
      pacing_gain_(bbr.high_gain),
      cwnd_gain_(bbr.high_gain),
      cwnd_(params.initial_cwnd_segments) {}

double BbrV1::bdp_segments(double gain) const {
  const double bw = max_bw_.best();
  if (bw <= 0 || min_rtt_ == sim::Time::zero()) return params_.initial_cwnd_segments;
  return gain * bw * min_rtt_.sec();
}

void BbrV1::update_model(const AckSample& ack) {
  if (ack.round_start) {
    ++round_count_;
    saw_loss_in_round_ = false;
  }
  if (ack.delivery_rate > 0) max_bw_.update(ack.delivery_rate, round_count_);
}

void BbrV1::check_full_pipe(const AckSample& ack) {
  if (full_bw_reached_ || !ack.round_start) return;
  const double bw = max_bw_.best();
  if (bw >= full_bw_ * bbr_.full_bw_threshold) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= bbr_.full_bw_rounds) full_bw_reached_ = true;
}

void BbrV1::advance_cycle_phase(const AckSample& ack) {
  const double gain = kPacingGainCycle[cycle_index_];
  const sim::Time elapsed = ack.now - cycle_start_;
  bool advance = false;
  if (gain > 1.0) {
    // Stay in the probing phase until it has actually stressed the pipe.
    advance = elapsed > min_rtt_ &&
              (saw_loss_in_round_ || ack.inflight_segments >= bdp_segments(gain));
  } else if (gain < 1.0) {
    // Leave the drain phase as soon as the excess queue is gone.
    advance = elapsed > min_rtt_ || ack.inflight_segments <= bdp_segments(1.0);
  } else {
    advance = elapsed > min_rtt_;
  }
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % kCycleLength;
    cycle_start_ = ack.now;
    pacing_gain_ = kPacingGainCycle[cycle_index_];
  }
}

void BbrV1::update_state(const AckSample& ack) {
  switch (mode_) {
    case Mode::kStartup:
      check_full_pipe(ack);
      if (full_bw_reached_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = bbr_.drain_gain;
        cwnd_gain_ = bbr_.high_gain;
      }
      break;
    case Mode::kDrain:
      if (ack.inflight_segments <= bdp_segments(1.0)) {
        mode_ = Mode::kProbeBw;
        cwnd_gain_ = bbr_.cwnd_gain;
        // Start at a random phase other than the 1.25 probe (Linux behaviour)
        // to decorrelate competing BBR flows.
        cycle_index_ =
            1 + static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(kCycleLength - 1)));
        cycle_start_ = ack.now;
        pacing_gain_ = kPacingGainCycle[cycle_index_];
      }
      break;
    case Mode::kProbeBw:
      advance_cycle_phase(ack);
      break;
    case Mode::kProbeRtt:
      break;  // handled in update_min_rtt
  }
}

void BbrV1::update_min_rtt(const AckSample& ack) {
  const bool expired = min_rtt_stamp_ != sim::Time::zero() &&
                       ack.now > min_rtt_stamp_ + bbr_.min_rtt_window;
  if (ack.rtt != sim::Time::zero() &&
      (min_rtt_ == sim::Time::zero() || ack.rtt < min_rtt_ || expired)) {
    min_rtt_ = ack.rtt;
    min_rtt_stamp_ = ack.now;
  }

  if (expired && mode_ != Mode::kProbeRtt && full_bw_reached_) {
    mode_ = Mode::kProbeRtt;
    prior_cwnd_ = cwnd_;
    pacing_gain_ = 1.0;
    cwnd_gain_ = 1.0;
    probe_rtt_done_ = sim::Time::zero();
    probe_rtt_round_done_ = false;
  }

  if (mode_ == Mode::kProbeRtt) {
    if (probe_rtt_done_ == sim::Time::zero()) {
      if (ack.inflight_segments <= bbr_.probe_rtt_cwnd_segments + 1) {
        probe_rtt_done_ = ack.now + bbr_.probe_rtt_duration;
        probe_rtt_round_done_ = false;
      }
    } else {
      if (ack.round_start) probe_rtt_round_done_ = true;
      if (probe_rtt_round_done_ && ack.now >= probe_rtt_done_) {
        min_rtt_stamp_ = ack.now;
        cwnd_ = std::max(cwnd_, prior_cwnd_);
        if (full_bw_reached_) {
          mode_ = Mode::kProbeBw;
          cwnd_gain_ = bbr_.cwnd_gain;
          cycle_index_ = 2;
          cycle_start_ = ack.now;
          pacing_gain_ = kPacingGainCycle[cycle_index_];
        } else {
          mode_ = Mode::kStartup;
          pacing_gain_ = bbr_.high_gain;
          cwnd_gain_ = bbr_.high_gain;
        }
      }
    }
  }
}

void BbrV1::set_pacing_and_cwnd(const AckSample& ack) {
  const double bw = max_bw_.best();  // segments/s

  // Pacing: gain * estimated bottleneck bandwidth.
  if (bw > 0 && min_rtt_ != sim::Time::zero()) {
    const double rate = pacing_gain_ * bw * params_.mss_bytes * 8.0;
    if (!pacing_initialized_ || rate > 0) {
      pacing_rate_bps_ = rate;
      pacing_initialized_ = true;
    }
  } else if (!pacing_initialized_ && ack.rtt != sim::Time::zero()) {
    // Before the first bw sample: pace at high_gain * cwnd / rtt.
    pacing_rate_bps_ =
        bbr_.high_gain * cwnd_ * params_.mss_bytes * 8.0 / ack.rtt.sec();
  }

  // cwnd: grow by acked toward the gain-scaled BDP (the 2×BDP inflight cap).
  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = std::min(cwnd_, bbr_.probe_rtt_cwnd_segments);
    cwnd_ = std::max(cwnd_, params_.min_cwnd_segments);
    return;
  }
  const double target = bdp_segments(cwnd_gain_);
  if (full_bw_reached_) {
    cwnd_ = std::min(cwnd_ + ack.acked_segments, target);
  } else if (cwnd_ < target ||
             ack.delivered_segments < 2 * params_.initial_cwnd_segments) {
    // Startup: grow by acked while under the high-gain target (tcp_bbr.c
    // keeps growing a little past it, but never unboundedly).
    cwnd_ += ack.acked_segments;
  }
  cwnd_ = std::max(cwnd_, std::max(params_.min_cwnd_segments, bbr_.probe_rtt_cwnd_segments));
}

void BbrV1::on_ack(const AckSample& ack) {
  if (ack.acked_segments <= 0 && !ack.ece) return;
  update_model(ack);
  update_state(ack);
  update_min_rtt(ack);
  set_pacing_and_cwnd(ack);
}

void BbrV1::on_loss(const LossSample& /*loss*/) {
  // BBRv1 deliberately does not react to packet loss (no cwnd reduction);
  // the loss still matters to the cycle-phase logic above.
  saw_loss_in_round_ = true;
}

void BbrV1::on_rto(sim::Time /*now*/) {
  // Only a retransmission timeout collapses BBRv1's window (tcp_bbr.c saves
  // and later restores the prior cwnd; the model filters survive).
  prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
  cwnd_ = params_.min_cwnd_segments;
}

}  // namespace elephant::cca
