#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"
#include "trace/trace.hpp"

namespace elephant::aqm {

/// Counters every queue discipline maintains; read by tests and benches.
struct QueueStats {
  std::uint64_t enqueued = 0;         ///< packets accepted into the queue
  std::uint64_t dequeued = 0;         ///< packets handed to the link
  std::uint64_t dropped_overflow = 0; ///< tail/overflow drops (queue full)
  std::uint64_t dropped_early = 0;    ///< proactive AQM drops (RED/CoDel)
  std::uint64_t ecn_marked = 0;       ///< packets CE-marked instead of dropped
  std::uint64_t bytes_enqueued = 0;
  std::uint64_t bytes_dropped = 0;

  [[nodiscard]] std::uint64_t total_dropped() const {
    return dropped_overflow + dropped_early;
  }
};

/// Abstract queue discipline: the contract between a router egress port and
/// an AQM algorithm. Mirrors the Linux qdisc enqueue/dequeue split.
///
/// enqueue() may drop (returns false) or CE-mark the packet; dequeue() may
/// also drop internally (CoDel drops at dequeue time) and returns the next
/// packet to serialize, or nullopt when no packet is available.
class QueueDisc {
 public:
  explicit QueueDisc(sim::Scheduler& sched) : sched_(&sched) {}
  virtual ~QueueDisc() = default;

  QueueDisc(const QueueDisc&) = delete;
  QueueDisc& operator=(const QueueDisc&) = delete;

  virtual bool enqueue(net::Packet&& p) = 0;
  virtual std::optional<net::Packet> dequeue() = 0;

  [[nodiscard]] virtual std::size_t byte_length() const = 0;
  [[nodiscard]] virtual std::size_t packet_length() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  /// Attach a flight recorder (null detaches). Virtual so decorators
  /// (LossInjector, TBF) can forward to their inner qdisc.
  virtual void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }

  /// Snapshot the discipline's full mutable state (queued packets and
  /// algorithm variables included). Implementations override both, call the
  /// base first (it serializes the counters), then append their own fields
  /// in a fixed order. The decorators (LossInjector, TBF) forward to their
  /// inner qdisc after their own state.
  virtual void save(sim::SnapshotWriter& w) const { w.put_pod(stats_); }
  virtual void load(sim::SnapshotReader& r) { r.get_pod(&stats_); }

  /// Trace emitters for implementations; each is a no-op (one predictable
  /// branch) when no tracer is attached. Public so the shared codel_dequeue
  /// algorithm can report drops on behalf of its host qdisc.
  void trace_enqueue(const net::Packet& p) {
    if (tracer_ != nullptr) [[unlikely]] emit(trace::RecordType::kAqmEnqueue, p, 0);
  }
  void trace_drop(const net::Packet& p, bool early) {
    if (tracer_ != nullptr) [[unlikely]] emit(trace::RecordType::kAqmDrop, p, early ? 1 : 0);
  }
  void trace_mark(const net::Packet& p) {
    if (tracer_ != nullptr) [[unlikely]] emit(trace::RecordType::kAqmMark, p, 0);
  }

 protected:
  [[nodiscard]] sim::Time now() const { return sched_->now(); }

  /// Packet-deque (de)serialization shared by the deque-backed disciplines.
  static void save_packets(sim::SnapshotWriter& w, const std::deque<net::Packet>& q) {
    w.put_u64(q.size());
    for (const net::Packet& p : q) w.put_pod(p);
  }
  static void load_packets(sim::SnapshotReader& r, std::deque<net::Packet>* q) {
    const std::uint64_t n = r.get_u64();
    q->clear();
    for (std::uint64_t i = 0; i < n; ++i) q->push_back(r.get<net::Packet>());
  }

  sim::Scheduler* sched_;
  QueueStats stats_;
  trace::Tracer* tracer_ = nullptr;

 private:
  /// Out of line on purpose: keeps the tracing-off fast path of every
  /// enqueue/dequeue at a single null-check with no inlined record build.
  void emit(trace::RecordType type, const net::Packet& p, double v2);
};

}  // namespace elephant::aqm
