#pragma once

#include <memory>

#include "aqm/queue_disc.hpp"
#include "sim/random.hpp"

namespace elephant::aqm {

/// Decorator that drops arriving packets with a fixed probability before
/// they reach the inner queue discipline — the "variable rates of packet
/// loss" network-anomaly knob the paper lists as future work. Drops are
/// independent Bernoulli trials from a seeded stream, so runs stay
/// reproducible.
class LossInjector : public QueueDisc {
 public:
  LossInjector(sim::Scheduler& sched, std::unique_ptr<QueueDisc> inner, double loss_rate,
               std::uint64_t seed)
      : QueueDisc(sched), inner_(std::move(inner)), loss_rate_(loss_rate), rng_(seed) {}

  /// The interesting queue state lives in the inner qdisc, so hand the
  /// tracer through; injected drops are reported by the injector itself.
  void set_tracer(trace::Tracer* tracer) override {
    QueueDisc::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  bool enqueue(net::Packet&& p) override {
    if (loss_rate_ > 0 && rng_.next_double() < loss_rate_) {
      ++injected_drops_;
      injected_bytes_ += p.size;
      trace_drop(p, /*early=*/true);
      sync_stats();
      return false;
    }
    const bool ok = inner_->enqueue(std::move(p));
    sync_stats();
    return ok;
  }

  std::optional<net::Packet> dequeue() override {
    auto p = inner_->dequeue();
    sync_stats();
    return p;
  }

  [[nodiscard]] std::size_t byte_length() const override { return inner_->byte_length(); }
  [[nodiscard]] std::size_t packet_length() const override { return inner_->packet_length(); }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+loss";
  }

  [[nodiscard]] std::uint64_t injected_drops() const { return injected_drops_; }
  [[nodiscard]] double loss_rate() const { return loss_rate_; }
  [[nodiscard]] const QueueDisc& inner() const { return *inner_; }

  void save(sim::SnapshotWriter& w) const override {
    QueueDisc::save(w);
    w.put_pod(rng_);
    w.put_u64(injected_drops_);
    w.put_u64(injected_bytes_);
    inner_->save(w);
  }
  void load(sim::SnapshotReader& r) override {
    QueueDisc::load(r);
    r.get_pod(&rng_);
    injected_drops_ = r.get_u64();
    injected_bytes_ = r.get_u64();
    inner_->load(r);
  }

 private:
  /// Mirror the inner stats so Port/bench accounting sees one coherent view:
  /// every inner counter — including dropped_early from a proactive inner
  /// AQM such as RED — plus our injected drops folded into the early/byte
  /// totals.
  void sync_stats() {
    const QueueStats& in = inner_->stats();
    stats_.enqueued = in.enqueued;
    stats_.dequeued = in.dequeued;
    stats_.dropped_overflow = in.dropped_overflow;
    stats_.dropped_early = injected_drops_ + in.dropped_early;
    stats_.ecn_marked = in.ecn_marked;
    stats_.bytes_enqueued = in.bytes_enqueued;
    stats_.bytes_dropped = injected_bytes_ + in.bytes_dropped;
  }

  std::unique_ptr<QueueDisc> inner_;
  double loss_rate_;
  sim::Rng rng_;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_bytes_ = 0;
};

}  // namespace elephant::aqm
