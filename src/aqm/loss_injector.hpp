#pragma once

#include <memory>

#include "aqm/queue_disc.hpp"
#include "sim/random.hpp"

namespace elephant::aqm {

/// Decorator that drops arriving packets with a fixed probability before
/// they reach the inner queue discipline — the "variable rates of packet
/// loss" network-anomaly knob the paper lists as future work. Drops are
/// independent Bernoulli trials from a seeded stream, so runs stay
/// reproducible.
class LossInjector : public QueueDisc {
 public:
  LossInjector(sim::Scheduler& sched, std::unique_ptr<QueueDisc> inner, double loss_rate,
               std::uint64_t seed)
      : QueueDisc(sched), inner_(std::move(inner)), loss_rate_(loss_rate), rng_(seed) {}

  /// The interesting queue state lives in the inner qdisc, so hand the
  /// tracer through; injected drops are reported by the injector itself.
  void set_tracer(trace::Tracer* tracer) override {
    QueueDisc::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  bool enqueue(net::Packet&& p) override {
    if (loss_rate_ > 0 && rng_.next_double() < loss_rate_) {
      ++stats_.dropped_early;
      stats_.bytes_dropped += p.size;
      ++injected_drops_;
      trace_drop(p, /*early=*/true);
      return false;
    }
    const bool ok = inner_->enqueue(std::move(p));
    // Mirror the inner stats so Port/bench accounting sees one coherent view.
    stats_.enqueued = inner_->stats().enqueued;
    stats_.bytes_enqueued = inner_->stats().bytes_enqueued;
    stats_.dropped_overflow = inner_->stats().dropped_overflow;
    stats_.ecn_marked = inner_->stats().ecn_marked;
    return ok;
  }

  std::optional<net::Packet> dequeue() override {
    auto p = inner_->dequeue();
    stats_.dequeued = inner_->stats().dequeued;
    return p;
  }

  [[nodiscard]] std::size_t byte_length() const override { return inner_->byte_length(); }
  [[nodiscard]] std::size_t packet_length() const override { return inner_->packet_length(); }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+loss";
  }

  [[nodiscard]] std::uint64_t injected_drops() const { return injected_drops_; }
  [[nodiscard]] double loss_rate() const { return loss_rate_; }
  [[nodiscard]] const QueueDisc& inner() const { return *inner_; }

 private:
  std::unique_ptr<QueueDisc> inner_;
  double loss_rate_;
  sim::Rng rng_;
  std::uint64_t injected_drops_ = 0;
};

}  // namespace elephant::aqm
