#pragma once

#include <deque>

#include "aqm/queue_disc.hpp"
#include "sim/random.hpp"

namespace elephant::aqm {

/// PIE knobs (RFC 8033 / Linux `sch_pie` defaults).
struct PieConfig {
  std::size_t limit_bytes = 0;
  sim::Time target = sim::Time::milliseconds(15);     ///< target queueing delay
  sim::Time t_update = sim::Time::milliseconds(15);   ///< probability update period
  double alpha = 0.125;  ///< weight on (delay - target), in units of prob/second-of-error
  double beta = 1.25;    ///< weight on (delay - old_delay)
  sim::Time burst_allowance = sim::Time::milliseconds(150);
  std::uint32_t mean_packet = 9000;
  bool ecn = false;
  double ecn_prob_cap = 0.1;  ///< above this probability, drop even ECT packets
};

/// PIE — Proportional Integral controller Enhanced (RFC 8033).
///
/// Estimates queueing delay from the departure rate and drops arriving
/// packets with a probability driven by a PI controller on that delay.
/// Included beyond the paper's three AQMs: it is the other widely deployed
/// delay-controlling qdisc, and gives the future-work sweeps a second
/// modern reference point next to FQ-CoDel.
class PieQueue : public QueueDisc {
 public:
  PieQueue(sim::Scheduler& sched, PieConfig cfg, std::uint64_t seed);

  bool enqueue(net::Packet&& p) override;
  std::optional<net::Packet> dequeue() override;

  [[nodiscard]] std::size_t byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_length() const override { return queue_.size(); }
  [[nodiscard]] std::string name() const override { return "pie"; }

  [[nodiscard]] double drop_probability() const { return prob_; }
  [[nodiscard]] sim::Time estimated_delay() const { return cur_delay_; }
  [[nodiscard]] const PieConfig& config() const { return cfg_; }

  void save(sim::SnapshotWriter& w) const override {
    QueueDisc::save(w);
    w.put_pod(rng_);
    save_packets(w, queue_);
    w.put_u64(bytes_);
    w.put_f64(prob_);
    w.put_pod(cur_delay_);
    w.put_pod(old_delay_);
    w.put_pod(next_update_);
    w.put_pod(burst_left_);
    w.put_bool(in_measurement_);
    w.put_u64(dq_count_bytes_);
    w.put_pod(dq_start_);
    w.put_f64(avg_drain_rate_);
  }
  void load(sim::SnapshotReader& r) override {
    QueueDisc::load(r);
    r.get_pod(&rng_);
    load_packets(r, &queue_);
    bytes_ = static_cast<std::size_t>(r.get_u64());
    prob_ = r.get_f64();
    r.get_pod(&cur_delay_);
    r.get_pod(&old_delay_);
    r.get_pod(&next_update_);
    r.get_pod(&burst_left_);
    in_measurement_ = r.get_bool();
    dq_count_bytes_ = static_cast<std::size_t>(r.get_u64());
    r.get_pod(&dq_start_);
    avg_drain_rate_ = r.get_f64();
  }

 private:
  void update_probability();

  PieConfig cfg_;
  sim::Rng rng_;
  std::deque<net::Packet> queue_;
  std::size_t bytes_ = 0;

  double prob_ = 0.0;
  sim::Time cur_delay_ = sim::Time::zero();
  sim::Time old_delay_ = sim::Time::zero();
  sim::Time next_update_ = sim::Time::zero();
  sim::Time burst_left_ = sim::Time::zero();
  bool in_measurement_ = false;

  // Departure-rate estimation (RFC 8033 §5.2).
  std::size_t dq_count_bytes_ = 0;
  sim::Time dq_start_ = sim::Time::zero();
  double avg_drain_rate_ = 0.0;  ///< bytes/second
};

}  // namespace elephant::aqm
