#include "aqm/pie.hpp"

#include <algorithm>
#include <utility>

namespace elephant::aqm {

namespace {
/// Start a departure-rate measurement once at least this much backlog exists.
constexpr std::size_t kDqThresholdBytes = 64 * 1024;
}  // namespace

PieQueue::PieQueue(sim::Scheduler& sched, PieConfig cfg, std::uint64_t seed)
    : QueueDisc(sched), cfg_(cfg), rng_(seed) {
  burst_left_ = cfg_.burst_allowance;
}

void PieQueue::update_probability() {
  const sim::Time t = now();
  if (next_update_ == sim::Time::zero()) {
    next_update_ = t + cfg_.t_update;
    return;
  }
  if (t < next_update_) return;
  next_update_ = t + cfg_.t_update;

  // Current queueing delay estimate: backlog / drain rate.
  if (avg_drain_rate_ > 0) {
    cur_delay_ = sim::Time::seconds(static_cast<double>(bytes_) / avg_drain_rate_);
  }

  // PI controller (RFC 8033 §5.1), with the standard auto-scaling of the
  // gains when the probability is small so tiny queues do not oscillate.
  double alpha = cfg_.alpha;
  double beta = cfg_.beta;
  if (prob_ < 0.000001) {
    alpha /= 2048;
    beta /= 2048;
  } else if (prob_ < 0.00001) {
    alpha /= 512;
    beta /= 512;
  } else if (prob_ < 0.0001) {
    alpha /= 128;
    beta /= 128;
  } else if (prob_ < 0.001) {
    alpha /= 32;
    beta /= 32;
  } else if (prob_ < 0.01) {
    alpha /= 8;
    beta /= 8;
  } else if (prob_ < 0.1) {
    alpha /= 2;
    beta /= 2;
  }

  double p = prob_ + alpha * (cur_delay_ - cfg_.target).sec() +
             beta * (cur_delay_ - old_delay_).sec();

  // Exponential decay when the queue is idle and delay is zero.
  if (cur_delay_ == sim::Time::zero() && old_delay_ == sim::Time::zero()) {
    p *= 0.98;
  }
  prob_ = std::clamp(p, 0.0, 1.0);
  old_delay_ = cur_delay_;

  if (burst_left_ > sim::Time::zero()) {
    burst_left_ -= cfg_.t_update;
    if (prob_ == 0.0 && cur_delay_ < cfg_.target / 2 && old_delay_ < cfg_.target / 2) {
      burst_left_ = cfg_.burst_allowance;  // re-arm while uncongested
    }
  }
}

bool PieQueue::enqueue(net::Packet&& p) {
  update_probability();

  bool drop = false;
  if (bytes_ + p.size > cfg_.limit_bytes) {
    ++stats_.dropped_overflow;
    stats_.bytes_dropped += p.size;
    trace_drop(p, /*early=*/false);
    return false;
  }

  // Random early drop/mark unless still inside the startup burst allowance
  // or the queue is trivially small.
  if (burst_left_ <= sim::Time::zero() && prob_ > 0.0 &&
      bytes_ > 2 * cfg_.mean_packet) {
    if (rng_.next_double() < prob_) {
      if (cfg_.ecn && p.ecn_capable && prob_ < cfg_.ecn_prob_cap) {
        p.ecn_marked = true;
        ++stats_.ecn_marked;
        trace_mark(p);
      } else {
        drop = true;
      }
    }
  }
  if (drop) {
    ++stats_.dropped_early;
    stats_.bytes_dropped += p.size;
    trace_drop(p, /*early=*/true);
    return false;
  }

  bytes_ += p.size;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size;
  p.enqueue_time = now();
  trace_enqueue(p);
  queue_.push_back(std::move(p));
  return true;
}

std::optional<net::Packet> PieQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  net::Packet p = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= p.size;
  ++stats_.dequeued;

  // Departure-rate estimation: measure how long a chunk of backlog takes to
  // drain (RFC 8033 §5.2), EWMA over measurement periods.
  if (!in_measurement_ && bytes_ >= kDqThresholdBytes) {
    in_measurement_ = true;
    dq_start_ = now();
    dq_count_bytes_ = 0;
  }
  if (in_measurement_) {
    dq_count_bytes_ += p.size;
    if (dq_count_bytes_ >= kDqThresholdBytes) {
      const sim::Time elapsed = now() - dq_start_;
      if (elapsed > sim::Time::zero()) {
        const double rate = static_cast<double>(dq_count_bytes_) / elapsed.sec();
        avg_drain_rate_ = avg_drain_rate_ == 0.0 ? rate : 0.9 * avg_drain_rate_ + 0.1 * rate;
      }
      in_measurement_ = false;
    }
  }
  return p;
}

}  // namespace elephant::aqm
