#include "aqm/fifo.hpp"

#include <utility>

namespace elephant::aqm {

bool FifoQueue::enqueue(net::Packet&& p) {
  if (bytes_ + p.size > limit_bytes_) {
    ++stats_.dropped_overflow;
    stats_.bytes_dropped += p.size;
    trace_drop(p, /*early=*/false);
    return false;
  }
  bytes_ += p.size;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size;
  p.enqueue_time = now();
  trace_enqueue(p);
  queue_.push_back(std::move(p));
  return true;
}

std::optional<net::Packet> FifoQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  net::Packet p = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= p.size;
  ++stats_.dequeued;
  return p;
}

void FifoQueue::save(sim::SnapshotWriter& w) const {
  QueueDisc::save(w);
  w.put_u64(bytes_);
  w.put_u64(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) w.put_pod(queue_[i]);
}

void FifoQueue::load(sim::SnapshotReader& r) {
  QueueDisc::load(r);
  bytes_ = static_cast<std::size_t>(r.get_u64());
  const std::uint64_t n = r.get_u64();
  queue_.clear();
  for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.get<net::Packet>());
}

}  // namespace elephant::aqm
