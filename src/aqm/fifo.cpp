#include "aqm/fifo.hpp"

#include <utility>

namespace elephant::aqm {

bool FifoQueue::enqueue(net::Packet&& p) {
  if (bytes_ + p.size > limit_bytes_) {
    ++stats_.dropped_overflow;
    stats_.bytes_dropped += p.size;
    trace_drop(p, /*early=*/false);
    return false;
  }
  bytes_ += p.size;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size;
  p.enqueue_time = now();
  trace_enqueue(p);
  queue_.push_back(std::move(p));
  return true;
}

std::optional<net::Packet> FifoQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  net::Packet p = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= p.size;
  ++stats_.dequeued;
  return p;
}

}  // namespace elephant::aqm
