#pragma once

#include <deque>

#include "aqm/queue_disc.hpp"
#include "sim/random.hpp"

namespace elephant::aqm {

/// Configuration for RED. Defaults follow the common `tc qdisc ... red`
/// recipe the paper's scripts use: thresholds derived from the byte limit,
/// drop probability 0.02, gentle mode on.
struct RedConfig {
  std::size_t limit_bytes = 0;  ///< hard queue capacity
  std::size_t min_bytes = 0;    ///< min threshold; 0 → limit/12
  std::size_t max_bytes = 0;    ///< max threshold; 0 → limit/4
  double max_p = 0.02;          ///< drop probability at the max threshold
  double weight = 0.002;        ///< EWMA weight w_q (Floyd & Jacobson)
  bool gentle = true;           ///< ramp max_p→1 between max and 2*max
  bool ecn = false;             ///< mark ECT packets instead of dropping
  std::uint32_t mean_packet = 9000;  ///< for the idle-period decay estimate

  /// Adaptive RED (Floyd, Gummadi & Shenker 2001; `tc red adaptive`): adjust
  /// max_p every `adapt_interval` to steer the average queue into the middle
  /// half of [min, max] — AIMD on max_p within [adapt_p_min, adapt_p_max].
  /// This is the parameter self-tuning the paper's conclusion calls for to
  /// fix RED on high-bandwidth links.
  bool adaptive = false;
  sim::Time adapt_interval = sim::Time::milliseconds(500);
  double adapt_alpha = 0.01;  ///< additive max_p increase (capped at max_p/4)
  double adapt_beta = 0.9;    ///< multiplicative max_p decrease
  double adapt_p_min = 0.01;
  double adapt_p_max = 0.5;

  /// Fill the derived thresholds from the limit.
  void finalize();
};

/// Random Early Detection (Floyd & Jacobson 1993), byte-mode with the
/// "gentle" extension, as implemented by Linux `sch_red`.
///
/// The average queue is an EWMA updated on every arrival; between min and
/// max thresholds packets are dropped with probability scaled by the count
/// of packets since the last drop (uniformization). During idle periods the
/// average decays as if empty-queue departures had occurred.
class RedQueue : public QueueDisc {
 public:
  RedQueue(sim::Scheduler& sched, RedConfig cfg, std::uint64_t seed);

  bool enqueue(net::Packet&& p) override;
  std::optional<net::Packet> dequeue() override;

  [[nodiscard]] std::size_t byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_length() const override { return queue_.size(); }
  [[nodiscard]] std::string name() const override { return "red"; }

  [[nodiscard]] double average_queue() const { return avg_; }
  [[nodiscard]] double current_max_p() const { return max_p_; }
  [[nodiscard]] const RedConfig& config() const { return cfg_; }

  void save(sim::SnapshotWriter& w) const override {
    QueueDisc::save(w);
    w.put_pod(rng_);
    save_packets(w, queue_);
    w.put_u64(bytes_);
    w.put_f64(avg_);
    w.put_i64(count_);
    w.put_pod(idle_since_);
    w.put_f64(max_p_);
    w.put_pod(next_adapt_);
  }
  void load(sim::SnapshotReader& r) override {
    QueueDisc::load(r);
    r.get_pod(&rng_);
    load_packets(r, &queue_);
    bytes_ = static_cast<std::size_t>(r.get_u64());
    avg_ = r.get_f64();
    count_ = r.get_i64();
    r.get_pod(&idle_since_);
    max_p_ = r.get_f64();
    r.get_pod(&next_adapt_);
  }

 private:
  /// Probability of an early drop/mark for the current average queue.
  [[nodiscard]] double drop_probability() const;
  void decay_for_idle();
  void maybe_adapt();

  RedConfig cfg_;
  sim::Rng rng_;
  std::deque<net::Packet> queue_;
  std::size_t bytes_ = 0;
  double avg_ = 0.0;        ///< EWMA of queue length in bytes
  std::int64_t count_ = 0;  ///< packets since last early drop (-1 = fresh)
  sim::Time idle_since_ = sim::Time::zero();  ///< when the queue last became empty
  double max_p_ = 0.02;                       ///< live max_p (adapted if adaptive)
  sim::Time next_adapt_ = sim::Time::zero();
};

}  // namespace elephant::aqm
