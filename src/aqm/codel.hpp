#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>

#include "aqm/queue_disc.hpp"
#include "sim/time.hpp"

namespace elephant::aqm {

/// CoDel knobs (RFC 8289): 5 ms target sojourn, 100 ms initial interval.
struct CodelParams {
  sim::Time target = sim::Time::milliseconds(5);
  sim::Time interval = sim::Time::milliseconds(100);
  bool ecn = false;           ///< CE-mark ECT packets instead of dropping
  std::uint32_t mtu = 9066;   ///< below one MTU of backlog never drop
};

/// Per-queue CoDel controller state (RFC 8289 §5.3).
struct CodelState {
  sim::Time first_above_time = sim::Time::zero();  ///< zero = not above target
  sim::Time drop_next = sim::Time::zero();
  std::uint32_t count = 0;
  std::uint32_t lastcount = 0;
  bool dropping = false;

  /// Next drop instant: t + interval / sqrt(count).
  [[nodiscard]] sim::Time control_law(sim::Time t, sim::Time interval) const {
    const std::uint32_t n = count == 0 ? 1 : count;
    return t + sim::Time::nanoseconds(static_cast<std::int64_t>(
                   static_cast<double>(interval.ns()) / std::sqrt(static_cast<double>(n))));
  }
};

/// The CoDel dequeue algorithm, shared by the standalone CoDel qdisc and
/// FQ-CoDel's per-flow queues.
///
/// `Q` must provide: empty(), pop_front_packet() -> Packet, byte_length().
/// Drops are counted into `stats`. The kTraced instantiation additionally
/// reports dequeue-time drops and CE marks through `host`'s trace hooks;
/// hosts select it only while a flight recorder is attached, so the default
/// instantiation stays free of tracing code entirely.
template <bool kTraced = false, typename Q>
std::optional<net::Packet> codel_dequeue(Q& q, CodelState& st, const CodelParams& params,
                                         sim::Time now, QueueStats& stats,
                                         QueueDisc* host = nullptr) {
  auto next_packet = [&]() -> std::optional<net::Packet> {
    if (q.empty()) return std::nullopt;
    return q.pop_front_packet();
  };
  // Whether this packet's sojourn keeps us in the "above target" regime.
  auto ok_to_drop = [&](const net::Packet& p) -> bool {
    const sim::Time sojourn = now - p.enqueue_time;
    if (sojourn < params.target || q.byte_length() <= params.mtu) {
      st.first_above_time = sim::Time::zero();
      return false;
    }
    if (st.first_above_time == sim::Time::zero()) {
      st.first_above_time = now + params.interval;
      return false;
    }
    return now >= st.first_above_time;
  };
  auto signal = [&](net::Packet& p) -> bool {  // true = packet survives (marked)
    if (params.ecn && p.ecn_capable) {
      p.ecn_marked = true;
      ++stats.ecn_marked;
      if constexpr (kTraced) host->trace_mark(p);
      return true;
    }
    ++stats.dropped_early;
    stats.bytes_dropped += p.size;
    if constexpr (kTraced) host->trace_drop(p, /*early=*/true);
    return false;
  };

  std::optional<net::Packet> p = next_packet();
  if (!p) {
    st.dropping = false;
    return std::nullopt;
  }
  bool drop = ok_to_drop(*p);

  if (st.dropping) {
    if (!drop) {
      st.dropping = false;
    } else {
      while (st.dropping && now >= st.drop_next) {
        if (signal(*p)) {  // ECN mark: deliver the marked packet
          ++st.count;
          st.drop_next = st.control_law(st.drop_next, params.interval);
          ++stats.dequeued;
          return p;
        }
        ++st.count;
        p = next_packet();
        if (!p || !ok_to_drop(*p)) {
          st.dropping = false;
          break;
        }
        st.drop_next = st.control_law(st.drop_next, params.interval);
      }
    }
  } else if (drop) {
    if (!signal(*p)) p = next_packet();
    st.dropping = true;
    // Restart close to the previous drop rate if we were recently dropping.
    const std::uint32_t delta = st.count - st.lastcount;
    st.count = (delta > 1 && now - st.drop_next < 16 * params.interval) ? delta : 1;
    st.lastcount = st.count;
    st.drop_next = st.control_law(now, params.interval);
  }
  if (p) ++stats.dequeued;
  return p;
}

/// Standalone CoDel qdisc over a single byte-limited FIFO.
class CodelQueue : public QueueDisc {
 public:
  CodelQueue(sim::Scheduler& sched, std::size_t limit_bytes, CodelParams params = {});

  bool enqueue(net::Packet&& p) override;
  std::optional<net::Packet> dequeue() override;

  [[nodiscard]] std::size_t byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_length() const override { return queue_.size(); }
  [[nodiscard]] std::string name() const override { return "codel"; }
  [[nodiscard]] const CodelState& state() const { return state_; }

  void save(sim::SnapshotWriter& w) const override {
    QueueDisc::save(w);
    w.put_u64(bytes_);
    save_packets(w, queue_);
    w.put_pod(state_);
  }
  void load(sim::SnapshotReader& r) override {
    QueueDisc::load(r);
    bytes_ = static_cast<std::size_t>(r.get_u64());
    load_packets(r, &queue_);
    r.get_pod(&state_);
  }

 private:
  struct Access {
    CodelQueue& q;
    [[nodiscard]] bool empty() const { return q.queue_.empty(); }
    [[nodiscard]] std::size_t byte_length() const { return q.bytes_; }
    net::Packet pop_front_packet();
  };

  std::size_t limit_bytes_;
  std::size_t bytes_ = 0;
  std::deque<net::Packet> queue_;
  CodelParams params_;
  CodelState state_;
};

}  // namespace elephant::aqm
