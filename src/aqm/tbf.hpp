#pragma once

#include <memory>

#include "aqm/queue_disc.hpp"
#include "sim/time.hpp"

namespace elephant::aqm {

/// Token-bucket filter configuration (Linux `sch_tbf`).
struct TbfConfig {
  double rate_bps = 1e9;          ///< token refill rate
  std::size_t burst_bytes = 64 * 1024;  ///< bucket depth
};

/// Token-bucket filter wrapping an inner queue discipline.
///
/// The paper shapes router1's egress with `tc`, which rate-limits via a
/// token bucket with the AQM as child qdisc. Our Port already serializes at
/// the configured link rate (an equivalent shaping model for steady flows),
/// but TBF is provided for experiments that need burst-tolerant shaping
/// *below* line rate — e.g. emulating a 1G `tc` limit on a 100G port.
///
/// dequeue() only releases the head packet when enough tokens are banked;
/// otherwise it reports empty, and the port must poll again (the Port's
/// transmit loop retries on every enqueue and transmit-complete; for exact
/// conformance at low load, pair TBF with a periodic kick or leave it to
/// the natural packet cadence — both are exercised in the tests).
class TbfQueue : public QueueDisc {
 public:
  TbfQueue(sim::Scheduler& sched, std::unique_ptr<QueueDisc> inner, TbfConfig cfg)
      : QueueDisc(sched), inner_(std::move(inner)), cfg_(cfg),
        tokens_(static_cast<double>(cfg.burst_bytes)), last_refill_(now()) {}

  void set_tracer(trace::Tracer* tracer) override {
    QueueDisc::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  bool enqueue(net::Packet&& p) override {
    const bool ok = inner_->enqueue(std::move(p));
    mirror_stats();
    return ok;
  }

  std::optional<net::Packet> dequeue() override {
    refill();
    if (inner_->packet_length() == 0) return std::nullopt;
    // Peek cost: we must know the head size; QueueDisc has no peek, so pop
    // and hold the packet until affordable.
    if (!held_) {
      held_ = inner_->dequeue();
      mirror_stats();
      if (!held_) return std::nullopt;
    }
    if (tokens_ < static_cast<double>(held_->size)) return std::nullopt;
    tokens_ -= static_cast<double>(held_->size);
    auto out = std::move(held_);
    held_.reset();
    return out;
  }

  [[nodiscard]] std::size_t byte_length() const override {
    return inner_->byte_length() + (held_ ? held_->size : 0);
  }
  [[nodiscard]] std::size_t packet_length() const override {
    return inner_->packet_length() + (held_ ? 1 : 0);
  }
  [[nodiscard]] std::string name() const override { return inner_->name() + "+tbf"; }

  void save(sim::SnapshotWriter& w) const override {
    QueueDisc::save(w);
    w.put_f64(tokens_);
    w.put_pod(last_refill_);
    w.put_bool(held_.has_value());
    if (held_) w.put_pod(*held_);
    inner_->save(w);
  }
  void load(sim::SnapshotReader& r) override {
    QueueDisc::load(r);
    tokens_ = r.get_f64();
    r.get_pod(&last_refill_);
    if (r.get_bool()) {
      held_ = r.get<net::Packet>();
    } else {
      held_.reset();
    }
    inner_->load(r);
  }

  [[nodiscard]] double tokens() const { return tokens_; }
  [[nodiscard]] const TbfConfig& config() const { return cfg_; }
  /// Earliest instant the held head packet becomes sendable (for pollers).
  [[nodiscard]] sim::Time next_ready() const {
    if (!held_ || tokens_ >= static_cast<double>(held_->size)) return now();
    const double deficit = static_cast<double>(held_->size) - tokens_;
    return now() + sim::Time::seconds(deficit * 8.0 / cfg_.rate_bps);
  }

 private:
  void refill() {
    const sim::Time t = now();
    if (t > last_refill_) {
      tokens_ += (t - last_refill_).sec() * cfg_.rate_bps / 8.0;
      tokens_ = std::min(tokens_, static_cast<double>(cfg_.burst_bytes));
      last_refill_ = t;
    }
  }
  void mirror_stats() { stats_ = inner_->stats(); }

  std::unique_ptr<QueueDisc> inner_;
  TbfConfig cfg_;
  double tokens_;
  sim::Time last_refill_;
  std::optional<net::Packet> held_;
};

}  // namespace elephant::aqm
