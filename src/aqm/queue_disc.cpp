#include "aqm/queue_disc.hpp"

#include "trace/trace.hpp"

namespace elephant::aqm {

void QueueDisc::emit(trace::RecordType type, const net::Packet& p, double v2) {
  trace::TraceRecord r;
  r.t = now();
  r.type = type;
  r.flow = p.flow;
  r.seq = p.seq;
  r.v0 = static_cast<double>(byte_length());
  r.v1 = static_cast<double>(packet_length());
  r.v2 = v2;
  tracer_->record(r);
}

}  // namespace elephant::aqm
