#include "aqm/red.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace elephant::aqm {

void RedConfig::finalize() {
  if (min_bytes == 0) min_bytes = std::max<std::size_t>(limit_bytes / 12, mean_packet);
  if (max_bytes == 0) max_bytes = std::max<std::size_t>(limit_bytes / 4, 2 * min_bytes);
}

RedQueue::RedQueue(sim::Scheduler& sched, RedConfig cfg, std::uint64_t seed)
    : QueueDisc(sched), cfg_(cfg), rng_(seed) {
  cfg_.finalize();
  count_ = -1;
  max_p_ = cfg_.max_p;
}

void RedQueue::maybe_adapt() {
  // Floyd/Gummadi/Shenker self-tuning: hold avg within the middle half of
  // [min, max] by AIMD on max_p, evaluated on a fixed cadence.
  if (!cfg_.adaptive) return;
  const sim::Time t = now();
  if (next_adapt_ == sim::Time::zero()) {
    next_adapt_ = t + cfg_.adapt_interval;
    return;
  }
  if (t < next_adapt_) return;
  next_adapt_ = t + cfg_.adapt_interval;

  const double min_th = static_cast<double>(cfg_.min_bytes);
  const double max_th = static_cast<double>(cfg_.max_bytes);
  const double target_lo = min_th + 0.4 * (max_th - min_th);
  const double target_hi = min_th + 0.6 * (max_th - min_th);
  if (avg_ > target_hi && max_p_ < cfg_.adapt_p_max) {
    max_p_ += std::min(cfg_.adapt_alpha, max_p_ / 4.0);
  } else if (avg_ < target_lo && max_p_ > cfg_.adapt_p_min) {
    max_p_ *= cfg_.adapt_beta;
  }
  max_p_ = std::clamp(max_p_, cfg_.adapt_p_min, cfg_.adapt_p_max);
}

double RedQueue::drop_probability() const {
  const auto min_th = static_cast<double>(cfg_.min_bytes);
  const auto max_th = static_cast<double>(cfg_.max_bytes);
  if (avg_ < min_th) return 0.0;
  if (avg_ < max_th) return max_p_ * (avg_ - min_th) / (max_th - min_th);
  if (cfg_.gentle && avg_ < 2.0 * max_th) {
    return max_p_ + (1.0 - max_p_) * (avg_ - max_th) / max_th;
  }
  return 1.0;
}

void RedQueue::decay_for_idle() {
  // While the queue was empty the average should have kept shrinking; emulate
  // m departures of mean-sized packets at line rate (Floyd & Jacobson §4).
  const sim::Time idle = now() - idle_since_;
  if (idle <= sim::Time::zero()) return;
  // One "virtual departure" per mean packet transmission; the port rate is
  // not visible here, so use 10 us per packet as a conservative stand-in —
  // fast enough that long idles fully reset the average.
  const double departures = idle.us() / 10.0;
  avg_ *= std::pow(1.0 - cfg_.weight, departures);
}

bool RedQueue::enqueue(net::Packet&& p) {
  // Idle decay keys off the queue being empty *now*, not off a flag set at
  // dequeue time: when the average sits in the drop region while the queue
  // is empty, arrivals are dropped before any dequeue could run, and a
  // flag-based scheme would never decay the average again (a permanent
  // blackhole). Floyd & Jacobson's idle period is simply "time the queue
  // spent empty", which this measures directly.
  if (bytes_ == 0) {
    decay_for_idle();
    idle_since_ = now();
  }
  avg_ += cfg_.weight * (static_cast<double>(bytes_) - avg_);
  maybe_adapt();

  const double pb = drop_probability();
  bool early_signal = false;
  if (pb >= 1.0) {
    early_signal = true;
  } else if (pb > 0.0) {
    if (count_ < 0) {
      count_ = 0;  // fresh marking phase
    }
    ++count_;
    // Uniformize inter-drop spacing: pa = pb / (1 - count*pb).
    const double denom = 1.0 - static_cast<double>(count_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
    if (rng_.next_double() < pa) early_signal = true;
  } else {
    count_ = -1;
  }

  if (early_signal) {
    count_ = 0;
    if (cfg_.ecn && p.ecn_capable && pb < 1.0) {
      p.ecn_marked = true;
      ++stats_.ecn_marked;
      trace_mark(p);
    } else {
      ++stats_.dropped_early;
      stats_.bytes_dropped += p.size;
      trace_drop(p, /*early=*/true);
      return false;
    }
  }

  if (bytes_ + p.size > cfg_.limit_bytes) {
    ++stats_.dropped_overflow;
    stats_.bytes_dropped += p.size;
    count_ = 0;
    trace_drop(p, /*early=*/false);
    return false;
  }

  bytes_ += p.size;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size;
  p.enqueue_time = now();
  trace_enqueue(p);
  queue_.push_back(std::move(p));
  return true;
}

std::optional<net::Packet> RedQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  net::Packet p = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= p.size;
  ++stats_.dequeued;
  if (queue_.empty()) idle_since_ = now();
  return p;
}

}  // namespace elephant::aqm
