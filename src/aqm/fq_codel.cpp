#include "aqm/fq_codel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace elephant::aqm {

FqCodelQueue::FqCodelQueue(sim::Scheduler& sched, FqCodelConfig cfg)
    : QueueDisc(sched), cfg_(cfg), queues_(cfg.flows) {
  assert(cfg_.flows > 0);
  assert(cfg_.memory_limit_bytes > 0);
}

std::uint32_t FqCodelQueue::bucket_of(net::FlowId flow) const {
  // splitmix-style avalanche so sequential flow ids spread across buckets.
  std::uint64_t x = flow + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % cfg_.flows);
}

void FqCodelQueue::drop_from_fattest() {
  auto fattest = std::max_element(
      queues_.begin(), queues_.end(),
      [](const SubQueue& a, const SubQueue& b) { return a.bytes < b.bytes; });
  if (fattest == queues_.end() || fattest->pkts.empty()) return;
  net::Packet victim = std::move(fattest->pkts.front());
  fattest->pkts.pop_front();
  fattest->bytes -= victim.size;
  total_bytes_ -= victim.size;
  --total_packets_;
  ++stats_.dropped_overflow;
  stats_.bytes_dropped += victim.size;
  trace_drop(victim, /*early=*/false);
}

bool FqCodelQueue::enqueue(net::Packet&& p) {
  const std::uint32_t b = bucket_of(p.flow);
  SubQueue& sq = queues_[b];

  p.enqueue_time = now();
  const std::uint32_t size = p.size;
  sq.pkts.push_back(std::move(p));
  sq.bytes += size;
  total_bytes_ += size;
  ++total_packets_;
  ++stats_.enqueued;
  stats_.bytes_enqueued += size;
  trace_enqueue(sq.pkts.back());

  if (sq.in_list == ListState::kNone) {
    sq.deficit = cfg_.quantum;
    sq.in_list = ListState::kNew;
    new_flows_.push_back(b);
  }

  // Like Linux, overflow culls from the fattest queue, which may or may not
  // be the one we just enqueued to.
  while (total_bytes_ > cfg_.memory_limit_bytes) drop_from_fattest();
  return true;
}

std::optional<net::Packet> FqCodelQueue::dequeue() {
  // Dispatch once per dequeue; the untraced instantiation carries no tracing
  // code at all, so the recorder costs nothing while detached.
  if (tracer() != nullptr) [[unlikely]] return dequeue_impl<true>();
  return dequeue_impl<false>();
}

template <bool kTraced>
std::optional<net::Packet> FqCodelQueue::dequeue_impl() {
  while (true) {
    std::deque<std::uint32_t>* list = nullptr;
    if (!new_flows_.empty()) {
      list = &new_flows_;
    } else if (!old_flows_.empty()) {
      list = &old_flows_;
    } else {
      return std::nullopt;
    }

    const std::uint32_t b = list->front();
    SubQueue& sq = queues_[b];

    if (sq.deficit <= 0) {
      sq.deficit += cfg_.quantum;
      list->pop_front();
      sq.in_list = ListState::kOld;
      old_flows_.push_back(b);
      continue;
    }

    Access access{*this, sq};
    auto pkt = codel_dequeue<kTraced>(access, sq.codel, cfg_.codel, now(), stats_, this);
    if (!pkt) {
      list->pop_front();
      if (list == &new_flows_) {
        // An emptied new flow gets one more round as an old flow so a
        // quick follow-up burst cannot re-enter the priority list (RFC 8290 §4.2).
        sq.in_list = ListState::kOld;
        old_flows_.push_back(b);
      } else {
        sq.in_list = ListState::kNone;
      }
      continue;
    }
    sq.deficit -= pkt->size;
    return pkt;
  }
}

net::Packet FqCodelQueue::Access::pop_front_packet() {
  net::Packet p = std::move(sq.pkts.front());
  sq.pkts.pop_front();
  sq.bytes -= p.size;
  fq.total_bytes_ -= p.size;
  --fq.total_packets_;
  return p;
}

std::uint32_t FqCodelQueue::active_flows() const {
  return static_cast<std::uint32_t>(new_flows_.size() + old_flows_.size());
}

}  // namespace elephant::aqm
