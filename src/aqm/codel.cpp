#include "aqm/codel.hpp"

#include <utility>

namespace elephant::aqm {

CodelQueue::CodelQueue(sim::Scheduler& sched, std::size_t limit_bytes, CodelParams params)
    : QueueDisc(sched), limit_bytes_(limit_bytes), params_(params) {}

net::Packet CodelQueue::Access::pop_front_packet() {
  net::Packet p = std::move(q.queue_.front());
  q.queue_.pop_front();
  q.bytes_ -= p.size;
  return p;
}

bool CodelQueue::enqueue(net::Packet&& p) {
  if (bytes_ + p.size > limit_bytes_) {
    ++stats_.dropped_overflow;
    stats_.bytes_dropped += p.size;
    trace_drop(p, /*early=*/false);
    return false;
  }
  bytes_ += p.size;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size;
  p.enqueue_time = now();
  trace_enqueue(p);
  queue_.push_back(std::move(p));
  return true;
}

std::optional<net::Packet> CodelQueue::dequeue() {
  Access access{*this};
  return tracer() != nullptr
             ? codel_dequeue<true>(access, state_, params_, now(), stats_, this)
             : codel_dequeue(access, state_, params_, now(), stats_);
}

}  // namespace elephant::aqm
