#include "aqm/factory.hpp"

#include <stdexcept>

namespace elephant::aqm {

std::string to_string(AqmKind kind) {
  switch (kind) {
    case AqmKind::kFifo:
      return "fifo";
    case AqmKind::kRed:
      return "red";
    case AqmKind::kFqCodel:
      return "fq_codel";
    case AqmKind::kCodel:
      return "codel";
    case AqmKind::kRedAdaptive:
      return "red_adaptive";
    case AqmKind::kPie:
      return "pie";
  }
  return "unknown";
}

AqmKind aqm_kind_from_string(const std::string& name) {
  if (name == "fifo") return AqmKind::kFifo;
  if (name == "red") return AqmKind::kRed;
  if (name == "fq_codel" || name == "fqcodel") return AqmKind::kFqCodel;
  if (name == "codel") return AqmKind::kCodel;
  if (name == "red_adaptive" || name == "ared") return AqmKind::kRedAdaptive;
  if (name == "pie") return AqmKind::kPie;
  throw std::invalid_argument("unknown AQM name: " + name);
}

std::unique_ptr<QueueDisc> make_queue_disc(AqmKind kind, sim::Scheduler& sched,
                                           std::size_t limit_bytes, std::uint64_t seed,
                                           const AqmOptions& opts) {
  switch (kind) {
    case AqmKind::kFifo:
      return std::make_unique<FifoQueue>(sched, limit_bytes);
    case AqmKind::kRed:
    case AqmKind::kRedAdaptive: {
      RedConfig cfg = opts.red;
      cfg.limit_bytes = limit_bytes;
      cfg.ecn = opts.ecn;
      cfg.adaptive = kind == AqmKind::kRedAdaptive || cfg.adaptive;
      return std::make_unique<RedQueue>(sched, cfg, seed);
    }
    case AqmKind::kFqCodel: {
      FqCodelConfig cfg;
      cfg.memory_limit_bytes = limit_bytes;
      cfg.flows = opts.fq_flows;
      cfg.quantum = opts.fq_quantum;
      cfg.codel = opts.codel;
      cfg.codel.ecn = opts.ecn;
      return std::make_unique<FqCodelQueue>(sched, cfg);
    }
    case AqmKind::kCodel: {
      CodelParams params = opts.codel;
      params.ecn = opts.ecn;
      return std::make_unique<CodelQueue>(sched, limit_bytes, params);
    }
    case AqmKind::kPie: {
      PieConfig cfg = opts.pie;
      cfg.limit_bytes = limit_bytes;
      cfg.ecn = opts.ecn;
      return std::make_unique<PieQueue>(sched, cfg, seed);
    }
  }
  throw std::invalid_argument("unknown AQM kind");
}

}  // namespace elephant::aqm
