#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "aqm/codel.hpp"
#include "aqm/queue_disc.hpp"

namespace elephant::aqm {

/// FQ-CoDel configuration (RFC 8290 / Linux `sch_fq_codel` defaults, with the
/// quantum raised to one jumbo MTU as `tc` does on 9k-MTU interfaces).
struct FqCodelConfig {
  std::size_t memory_limit_bytes = 0;  ///< total backlog cap (the buffer size)
  std::uint32_t flows = 1024;          ///< number of hash buckets
  std::uint32_t quantum = 9066;        ///< DRR quantum in bytes
  CodelParams codel{};
};

/// Fair Queuing with Controlled Delay (RFC 8290).
///
/// Arriving packets are hashed by flow id into one of `flows` sub-queues.
/// Sub-queues are served by deficit round-robin with a two-tier (new/old)
/// flow list, and each sub-queue runs its own CoDel controller. When the
/// total backlog exceeds the memory limit, packets are culled from the head
/// of the fattest sub-queue, exactly as the Linux implementation does.
class FqCodelQueue : public QueueDisc {
 public:
  FqCodelQueue(sim::Scheduler& sched, FqCodelConfig cfg);

  bool enqueue(net::Packet&& p) override;
  std::optional<net::Packet> dequeue() override;

  [[nodiscard]] std::size_t byte_length() const override { return total_bytes_; }
  [[nodiscard]] std::size_t packet_length() const override { return total_packets_; }
  [[nodiscard]] std::string name() const override { return "fq_codel"; }

  [[nodiscard]] std::uint32_t active_flows() const;
  [[nodiscard]] const FqCodelConfig& config() const { return cfg_; }

  void save(sim::SnapshotWriter& w) const override {
    QueueDisc::save(w);
    w.put_u64(queues_.size());
    for (const SubQueue& sq : queues_) {
      save_packets(w, sq.pkts);
      w.put_u64(sq.bytes);
      w.put_i64(sq.deficit);
      w.put_pod(sq.codel);
      w.put_u8(static_cast<std::uint8_t>(sq.in_list));
    }
    w.put_u64(new_flows_.size());
    for (const std::uint32_t f : new_flows_) w.put_u32(f);
    w.put_u64(old_flows_.size());
    for (const std::uint32_t f : old_flows_) w.put_u32(f);
    w.put_u64(total_bytes_);
    w.put_u64(total_packets_);
  }
  void load(sim::SnapshotReader& r) override {
    QueueDisc::load(r);
    const std::uint64_t nq = r.get_u64();
    assert(nq == queues_.size() && "bucket count is fixed at construction");
    for (std::uint64_t i = 0; i < nq && i < queues_.size(); ++i) {
      SubQueue& sq = queues_[static_cast<std::size_t>(i)];
      load_packets(r, &sq.pkts);
      sq.bytes = static_cast<std::size_t>(r.get_u64());
      sq.deficit = r.get_i64();
      r.get_pod(&sq.codel);
      sq.in_list = static_cast<ListState>(r.get_u8());
    }
    const std::uint64_t nn = r.get_u64();
    new_flows_.clear();
    for (std::uint64_t i = 0; i < nn; ++i) new_flows_.push_back(r.get_u32());
    const std::uint64_t no = r.get_u64();
    old_flows_.clear();
    for (std::uint64_t i = 0; i < no; ++i) old_flows_.push_back(r.get_u32());
    total_bytes_ = static_cast<std::size_t>(r.get_u64());
    total_packets_ = static_cast<std::size_t>(r.get_u64());
  }

 private:
  enum class ListState : std::uint8_t { kNone, kNew, kOld };

  struct SubQueue {
    std::deque<net::Packet> pkts;
    std::size_t bytes = 0;
    std::int64_t deficit = 0;
    CodelState codel{};
    ListState in_list = ListState::kNone;
  };

  /// codel_dequeue adaptor over one sub-queue; keeps aggregate counters honest.
  struct Access {
    FqCodelQueue& fq;
    SubQueue& sq;
    [[nodiscard]] bool empty() const { return sq.pkts.empty(); }
    [[nodiscard]] std::size_t byte_length() const { return sq.bytes; }
    net::Packet pop_front_packet();
  };

  [[nodiscard]] std::uint32_t bucket_of(net::FlowId flow) const;
  void drop_from_fattest();
  /// DRR loop; instantiated with and without flight-recorder hooks so the
  /// untraced dequeue path carries no tracing code (see dequeue()).
  template <bool kTraced>
  std::optional<net::Packet> dequeue_impl();

  FqCodelConfig cfg_;
  std::vector<SubQueue> queues_;
  std::deque<std::uint32_t> new_flows_;
  std::deque<std::uint32_t> old_flows_;
  std::size_t total_bytes_ = 0;
  std::size_t total_packets_ = 0;
};

}  // namespace elephant::aqm
