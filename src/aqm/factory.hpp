#pragma once

#include <memory>
#include <string>

#include "aqm/codel.hpp"
#include "aqm/fifo.hpp"
#include "aqm/fq_codel.hpp"
#include "aqm/queue_disc.hpp"
#include "aqm/pie.hpp"
#include "aqm/red.hpp"

namespace elephant::aqm {

/// The queue disciplines the paper evaluates (FIFO, RED, FQ-CoDel), plus
/// plain CoDel, Adaptive RED (the self-tuning fix the paper's conclusion
/// calls for), and PIE (RFC 8033) for the extension sweeps.
enum class AqmKind { kFifo, kRed, kFqCodel, kCodel, kRedAdaptive, kPie };

[[nodiscard]] std::string to_string(AqmKind kind);
[[nodiscard]] AqmKind aqm_kind_from_string(const std::string& name);

/// Extra knobs beyond the buffer size; defaults match the paper's `tc` setup.
struct AqmOptions {
  bool ecn = false;
  RedConfig red{};          ///< limit is overwritten by `limit_bytes`
  PieConfig pie{};          ///< limit is overwritten by `limit_bytes`
  CodelParams codel{};
  std::uint32_t fq_flows = 1024;
  std::uint32_t fq_quantum = 9066;
};

/// Build a queue disc of `kind` with `limit_bytes` of buffer.
[[nodiscard]] std::unique_ptr<QueueDisc> make_queue_disc(AqmKind kind, sim::Scheduler& sched,
                                                         std::size_t limit_bytes,
                                                         std::uint64_t seed,
                                                         const AqmOptions& opts = {});

}  // namespace elephant::aqm
