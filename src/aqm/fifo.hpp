#pragma once

#include "aqm/queue_disc.hpp"
#include "sim/ring_deque.hpp"

namespace elephant::aqm {

/// Drop-tail FIFO, byte-limited — the `pfifo`/`bfifo` baseline in the paper.
///
/// Packets are dropped only when accepting one would exceed the byte limit;
/// no proactive signalling of any kind.
class FifoQueue : public QueueDisc {
 public:
  FifoQueue(sim::Scheduler& sched, std::size_t limit_bytes)
      : QueueDisc(sched), limit_bytes_(limit_bytes) {}

  bool enqueue(net::Packet&& p) override;
  std::optional<net::Packet> dequeue() override;

  [[nodiscard]] std::size_t byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_length() const override { return queue_.size(); }
  [[nodiscard]] std::string name() const override { return "fifo"; }
  [[nodiscard]] std::size_t limit_bytes() const { return limit_bytes_; }

  void save(sim::SnapshotWriter& w) const override;
  void load(sim::SnapshotReader& r) override;

 private:
  std::size_t limit_bytes_;
  std::size_t bytes_ = 0;
  sim::RingDeque<net::Packet> queue_;
};

}  // namespace elephant::aqm
