#pragma once

#include <string>
#include <string_view>

#include "trace/trace.hpp"

namespace elephant::trace {

/// Text encodings for trace records, shared by the file sinks (writers) and
/// the trace2csv tool / round-trip tests (readers).
///
/// Both encodings are lossless: time is emitted as integer nanoseconds and
/// the value slots with max_digits10 precision, so parse(format(r)) == r.

/// CSV column header (no trailing newline): t_ns,type,flow,seq,v0,v1,v2
[[nodiscard]] std::string csv_header();

/// Append one record as a CSV row (with trailing '\n').
void append_csv(const TraceRecord& r, std::string* out);

/// Append one record as a JSON object line (with trailing '\n').
void append_jsonl(const TraceRecord& r, std::string* out);

/// Parse one CSV row. Returns false on the header row, blank lines, or
/// malformed input.
[[nodiscard]] bool parse_csv(std::string_view line, TraceRecord* out);

/// Parse one JSONL line as written by append_jsonl. Key order independent;
/// returns false on malformed input or unknown record types.
[[nodiscard]] bool parse_jsonl(std::string_view line, TraceRecord* out);

}  // namespace elephant::trace
