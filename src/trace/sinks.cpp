#include "trace/sinks.hpp"

#include "trace/codec.hpp"

namespace elephant::trace {

CsvSink::CsvSink(std::ostream& out) : out_(out) { out_ << csv_header() << '\n'; }

void CsvSink::write(std::span<const TraceRecord> batch) {
  std::string buf;
  buf.reserve(batch.size() * 64);
  for (const TraceRecord& r : batch) append_csv(r, &buf);
  out_ << buf;
}

void JsonlSink::write(std::span<const TraceRecord> batch) {
  std::string buf;
  buf.reserve(batch.size() * 96);
  for (const TraceRecord& r : batch) append_jsonl(r, &buf);
  out_ << buf;
}

}  // namespace elephant::trace
