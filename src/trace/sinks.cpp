#include "trace/sinks.hpp"

#include "trace/codec.hpp"

namespace elephant::trace {

CsvSink::CsvSink(std::ostream& out) : out_(out) { out_ << csv_header() << '\n'; }

void CsvSink::write(std::span<const TraceRecord> batch) {
  std::string buf;
  buf.reserve(batch.size() * 64);
  for (const TraceRecord& r : batch) append_csv(r, &buf);
  out_ << buf;
}

std::uint64_t DigestSink::fold(std::uint64_t hash, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (i * 8)) & 0xff;
    hash *= 1099511628211ull;  // FNV-1a prime
  }
  return hash;
}

void DigestSink::write(std::span<const TraceRecord> batch) {
  auto bits = [](double d) {
    std::uint64_t u;
    static_assert(sizeof(u) == sizeof(d));
    __builtin_memcpy(&u, &d, sizeof(u));
    return u;
  };
  std::uint64_t h = hash_;
  for (const TraceRecord& r : batch) {
    h = fold(h, static_cast<std::uint64_t>(r.t.ns()));
    h = fold(h, static_cast<std::uint64_t>(r.type));
    h = fold(h, r.flow);
    h = fold(h, r.seq);
    h = fold(h, bits(r.v0));
    h = fold(h, bits(r.v1));
    h = fold(h, bits(r.v2));
  }
  hash_ = h;
  count_ += batch.size();
}

void JsonlSink::write(std::span<const TraceRecord> batch) {
  std::string buf;
  buf.reserve(batch.size() * 96);
  for (const TraceRecord& r : batch) append_jsonl(r, &buf);
  out_ << buf;
}

}  // namespace elephant::trace
