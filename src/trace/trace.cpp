#include "trace/trace.hpp"

#include <cassert>

namespace elephant::trace {

namespace {
constexpr const char* kTypeNames[kRecordTypeCount] = {
    "cwnd_update", "packet_sent", "packet_retx", "sack_mark",   "loss_mark",
    "rto_fire",    "aqm_enqueue", "aqm_drop",    "aqm_mark",    "queue_depth",
    "fault",       "flow_start",  "flow_end",
};
}  // namespace

const char* to_string(RecordType type) {
  const auto i = static_cast<std::size_t>(type);
  assert(i < kRecordTypeCount);
  return kTypeNames[i];
}

bool record_type_from_string(std::string_view name, RecordType* out) {
  for (std::size_t i = 0; i < kRecordTypeCount; ++i) {
    if (name == kTypeNames[i]) {
      *out = static_cast<RecordType>(i);
      return true;
    }
  }
  return false;
}

Tracer::Tracer(TraceSink& sink, std::size_t capacity, Overflow overflow)
    : sink_(sink), ring_(capacity == 0 ? 1 : capacity), overflow_(overflow) {}

Tracer::~Tracer() { flush(); }

void Tracer::enable(RecordType type, bool on) {
  const std::uint32_t bit = 1u << static_cast<unsigned>(type);
  if (on) {
    mask_ |= bit;
  } else {
    mask_ &= ~bit;
  }
}

void Tracer::enable_only(std::initializer_list<RecordType> types) {
  mask_ = 0;
  for (const RecordType t : types) mask_ |= 1u << static_cast<unsigned>(t);
}

void Tracer::drain() {
  sink_.write({ring_.data(), head_});
  head_ = 0;
}

void Tracer::flush() {
  if (overflow_ == Overflow::kOverwrite && wrapped_) {
    // Oldest surviving record sits at head_; emit the two spans in order.
    sink_.write({ring_.data() + head_, ring_.size() - head_});
    sink_.write({ring_.data(), head_});
    wrapped_ = false;
    head_ = 0;
  } else {
    drain();
  }
  sink_.flush();
}

}  // namespace elephant::trace
