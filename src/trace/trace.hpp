#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace elephant::trace {

/// What happened. Each type documents how the generic value slots v0–v2 are
/// used; `flow`/`seq` are zero where they do not apply.
enum class RecordType : std::uint8_t {
  kCwndUpdate = 0,  ///< flow; v0 = cwnd segments, v1 = pacing bps, v2 = srtt ms
  kPacketSent,      ///< flow, seq = unit; v0 = wire bytes, v1 = pipe units after send
  kPacketRetx,      ///< flow, seq = unit; v0 = wire bytes, v1 = pipe units, v2 = retx count
  kSackMark,        ///< flow, seq = unit newly SACKed; v0 = segments per unit
  kLossMark,        ///< flow, seq = unit marked lost (FACK/RACK); v0 = segments per unit
  kRtoFire,         ///< flow, seq = una; v0 = backoff factor, v1 = rto ms, v2 = lost units
  kAqmEnqueue,      ///< flow, seq; v0 = backlog bytes after, v1 = backlog packets
  kAqmDrop,         ///< flow, seq; v0 = backlog bytes, v1 = backlog packets, v2 = 1 early / 0 overflow
  kAqmMark,         ///< flow, seq; v0 = backlog bytes, v1 = backlog packets (ECN CE)
  kQueueDepth,      ///< periodic port sample; v0 = backlog bytes, v1 = packets, v2 = cumulative tx bytes
  kFault,           ///< fault-injection event; v0 = FaultKind, v1 = magnitude, v2 = 1 apply / 0 revert
  kFlowStart,       ///< workload flow instantiated; v0 = traffic-class index, v1 = transfer bytes (0 = elephant), v2 = dumbbell side
  kFlowEnd,         ///< finite flow completed; v0 = traffic-class index, v1 = transfer bytes, v2 = FCT seconds
};

inline constexpr std::size_t kRecordTypeCount = 13;

[[nodiscard]] const char* to_string(RecordType type);
/// Parse a name produced by to_string(); returns false on unknown names.
[[nodiscard]] bool record_type_from_string(std::string_view name, RecordType* out);

/// One flight-recorder event. Fixed-size and trivially copyable so the ring
/// buffer is a flat array and recording is a bounded store, never an
/// allocation.
struct TraceRecord {
  sim::Time t{};
  RecordType type = RecordType::kCwndUpdate;
  std::uint32_t flow = 0;
  std::uint64_t seq = 0;
  double v0 = 0;
  double v1 = 0;
  double v2 = 0;

  bool operator==(const TraceRecord&) const = default;
};

/// Where drained records go. Implementations must tolerate empty batches.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(std::span<const TraceRecord> batch) = 0;
  /// Called by Tracer::flush() after the ring is drained (e.g. fflush).
  virtual void flush() {}
};

/// What to do when the ring fills.
enum class Overflow {
  kDrain,      ///< hand the full ring to the sink and keep recording (tracing mode)
  kOverwrite,  ///< overwrite the oldest records; flush() emits the last N
               ///< in order (post-mortem flight-recorder mode)
};

/// The flight recorder: a fixed-capacity ring of typed records with a
/// per-type enable mask.
///
/// Instrumented components hold a `Tracer*` that is null by default, so the
/// hot path cost when tracing is off is a single predictable branch. When
/// tracing is on, record() is a mask test plus one 48-byte store; sink I/O
/// happens only on ring boundaries.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Tracer(TraceSink& sink, std::size_t capacity = kDefaultCapacity,
                  Overflow overflow = Overflow::kDrain);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(const TraceRecord& r) {
    if (!(mask_ & (1u << static_cast<unsigned>(r.type)))) return;
    ring_[head_] = r;
    ++recorded_;
    if (++head_ == ring_.size()) {
      if (overflow_ == Overflow::kDrain) {
        drain();
      } else {
        head_ = 0;
        wrapped_ = true;
      }
    }
  }

  [[nodiscard]] bool enabled(RecordType type) const {
    return (mask_ & (1u << static_cast<unsigned>(type))) != 0;
  }
  void enable(RecordType type, bool on);
  void enable_only(std::initializer_list<RecordType> types);
  void enable_all() { mask_ = kAllMask; }

  /// Drain buffered records to the sink (in chronological order for
  /// kOverwrite) and flush the sink. Idempotent; called by the destructor.
  void flush();

  /// Records accepted by the mask since construction (including any that
  /// were overwritten in kOverwrite mode).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] Overflow overflow_policy() const { return overflow_; }

 private:
  static constexpr std::uint32_t kAllMask = (1u << kRecordTypeCount) - 1;

  void drain();

  TraceSink& sink_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;
  bool wrapped_ = false;
  Overflow overflow_;
  std::uint32_t mask_ = kAllMask;
  std::uint64_t recorded_ = 0;
};

}  // namespace elephant::trace
