#pragma once

#include <ostream>
#include <vector>

#include "trace/trace.hpp"

namespace elephant::trace {

/// Discards everything. Useful for measuring pure recording overhead.
class NullSink : public TraceSink {
 public:
  void write(std::span<const TraceRecord> batch) override { count_ += batch.size(); }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Accumulates records in memory — the sink tests and analysis code use.
class MemorySink : public TraceSink {
 public:
  void write(std::span<const TraceRecord> batch) override {
    records_.insert(records_.end(), batch.begin(), batch.end());
  }
  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Streams records as CSV rows (header first). The caller owns the stream
/// and must keep it alive for the sink's lifetime.
class CsvSink : public TraceSink {
 public:
  explicit CsvSink(std::ostream& out);
  void write(std::span<const TraceRecord> batch) override;
  void flush() override { out_.flush(); }

 private:
  std::ostream& out_;
};

/// Streams records as one JSON object per line (JSONL).
class JsonlSink : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  void write(std::span<const TraceRecord> batch) override;
  void flush() override { out_.flush(); }

 private:
  std::ostream& out_;
};

/// Folds every record into a 64-bit FNV-1a digest over a canonical field
/// encoding (no struct padding, doubles by bit pattern). Two traces digest
/// equal iff they contain the same records in the same order — the cheap
/// backbone of the engine-swap determinism regression tests.
class DigestSink : public TraceSink {
 public:
  void write(std::span<const TraceRecord> batch) override;

  /// Digest of everything written so far (order-sensitive).
  [[nodiscard]] std::uint64_t digest() const { return hash_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Fold an arbitrary extra 64-bit word (e.g. a metric's bit pattern) into
  /// a hash; exposed so tests can digest final metrics the same way.
  [[nodiscard]] static std::uint64_t fold(std::uint64_t hash, std::uint64_t word);

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV-1a offset basis
  std::uint64_t count_ = 0;
};

/// Fans one record stream out to several sinks (e.g. memory + CSV file).
class TeeSink : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}
  void write(std::span<const TraceRecord> batch) override {
    for (TraceSink* s : sinks_) s->write(batch);
  }
  void flush() override {
    for (TraceSink* s : sinks_) s->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace elephant::trace
