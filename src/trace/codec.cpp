#include "trace/codec.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace elephant::trace {

namespace {

/// %.17g round-trips every double; %lld/% llu are exact for the id fields.
void append_row(const TraceRecord& r, const char* fmt, std::string* out) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, static_cast<long long>(r.t.ns()),
                              to_string(r.type), static_cast<unsigned>(r.flow),
                              static_cast<unsigned long long>(r.seq), r.v0, r.v1, r.v2);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

/// Locate `"key":` in a JSON object line and return the text after the colon
/// (value may be quoted); nullptr when absent.
const char* json_value(std::string_view line, const char* key, char* keybuf, std::size_t cap) {
  std::snprintf(keybuf, cap, "\"%s\":", key);
  const std::size_t pos = line.find(keybuf);
  if (pos == std::string_view::npos) return nullptr;
  return line.data() + pos + std::strlen(keybuf);
}

}  // namespace

std::string csv_header() { return "t_ns,type,flow,seq,v0,v1,v2"; }

void append_csv(const TraceRecord& r, std::string* out) {
  append_row(r, "%lld,%s,%u,%llu,%.17g,%.17g,%.17g\n", out);
}

void append_jsonl(const TraceRecord& r, std::string* out) {
  append_row(r,
             "{\"t_ns\":%lld,\"type\":\"%s\",\"flow\":%u,\"seq\":%llu,"
             "\"v0\":%.17g,\"v1\":%.17g,\"v2\":%.17g}\n",
             out);
}

bool parse_csv(std::string_view line_view, TraceRecord* out) {
  // Copy so the numeric parsers below see a NUL-terminated buffer.
  const std::string line(line_view);
  // Split into exactly 7 comma-separated fields; only `type` is non-numeric.
  const char* fields[7];
  std::size_t lens[7];
  std::size_t start = 0;
  for (int i = 0; i < 7; ++i) {
    const std::size_t comma = i < 6 ? line.find(',', start) : line.size();
    if (comma == std::string::npos) return false;
    fields[i] = line.data() + start;
    lens[i] = comma - start;
    start = comma + 1;
  }
  RecordType type;
  if (!record_type_from_string({fields[1], lens[1]}, &type)) return false;

  char* end = nullptr;
  const long long t_ns = std::strtoll(fields[0], &end, 10);
  if (end == fields[0]) return false;
  out->t = sim::Time::nanoseconds(t_ns);
  out->type = type;
  out->flow = static_cast<std::uint32_t>(std::strtoul(fields[2], nullptr, 10));
  out->seq = std::strtoull(fields[3], nullptr, 10);
  out->v0 = std::strtod(fields[4], nullptr);
  out->v1 = std::strtod(fields[5], nullptr);
  out->v2 = std::strtod(fields[6], nullptr);
  return true;
}

bool parse_jsonl(std::string_view line_view, TraceRecord* out) {
  const std::string line(line_view);
  char key[32];
  const char* t_ns = json_value(line, "t_ns", key, sizeof(key));
  const char* type = json_value(line, "type", key, sizeof(key));
  const char* flow = json_value(line, "flow", key, sizeof(key));
  const char* seq = json_value(line, "seq", key, sizeof(key));
  const char* v0 = json_value(line, "v0", key, sizeof(key));
  const char* v1 = json_value(line, "v1", key, sizeof(key));
  const char* v2 = json_value(line, "v2", key, sizeof(key));
  if (!t_ns || !type || !flow || !seq || !v0 || !v1 || !v2) return false;

  if (*type != '"') return false;
  const char* type_end = std::strchr(type + 1, '"');
  if (!type_end) return false;
  RecordType parsed_type;
  if (!record_type_from_string({type + 1, static_cast<std::size_t>(type_end - type - 1)},
                               &parsed_type)) {
    return false;
  }

  out->t = sim::Time::nanoseconds(std::strtoll(t_ns, nullptr, 10));
  out->type = parsed_type;
  out->flow = static_cast<std::uint32_t>(std::strtoul(flow, nullptr, 10));
  out->seq = std::strtoull(seq, nullptr, 10);
  out->v0 = std::strtod(v0, nullptr);
  out->v1 = std::strtod(v1, nullptr);
  out->v2 = std::strtod(v2, nullptr);
  return true;
}

}  // namespace elephant::trace
