#pragma once

#include <memory>

#include "aqm/queue_disc.hpp"
#include "fault/fault.hpp"
#include "sim/choice.hpp"
#include "sim/random.hpp"

namespace elephant::fault {

/// Decorator dropping arrivals from a two-state Gilbert–Elliott process —
/// bursty loss, where the Bernoulli aqm::LossInjector is memoryless. The
/// chain advances one step per arriving packet; each state drops with its
/// own probability. Seeded, so runs stay reproducible.
class GilbertElliottLoss : public aqm::QueueDisc {
 public:
  GilbertElliottLoss(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> inner,
                     const GilbertElliottParams& params, std::uint64_t seed)
      : QueueDisc(sched), inner_(std::move(inner)), params_(params), rng_(seed) {}

  void set_tracer(trace::Tracer* tracer) override {
    QueueDisc::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  bool enqueue(net::Packet&& p) override {
    // Advance the chain, then apply the (new) state's loss probability.
    // Both steps are model-checking choice points: the seeded draw is always
    // consumed first (keeping the RNG stream schedule-independent), then an
    // attached hook may flip the outcome — branch 0 is the seeded one, and a
    // certain/impossible transition or loss offers no branch.
    sim::ChoiceHook* hook = sched_->choice_hook();
    const double p_flip = bad_ ? params_.p_bad_to_good : params_.p_good_to_bad;
    const double flip_draw = rng_.next_double();
    bool flip = flip_draw < p_flip;
    if (hook != nullptr && p_flip > 0 && p_flip < 1.0 &&
        hook->choose(sim::ChoiceKind::kGeTransition, 2) != 0) {
      flip = !flip;
    }
    if (flip) bad_ = !bad_;
    const double loss = bad_ ? params_.loss_bad : params_.loss_good;
    if (loss > 0) {
      bool lost = rng_.next_double() < loss;
      if (hook != nullptr && loss < 1.0 &&
          hook->choose(sim::ChoiceKind::kGeLoss, 2) != 0) {
        lost = !lost;
      }
      if (lost) {
        ++injected_drops_;
        injected_bytes_ += p.size;
        trace_drop(p, /*early=*/true);
        sync_stats();
        return false;
      }
    }
    const bool ok = inner_->enqueue(std::move(p));
    sync_stats();
    return ok;
  }

  std::optional<net::Packet> dequeue() override {
    auto p = inner_->dequeue();
    sync_stats();
    return p;
  }

  [[nodiscard]] std::size_t byte_length() const override { return inner_->byte_length(); }
  [[nodiscard]] std::size_t packet_length() const override { return inner_->packet_length(); }
  [[nodiscard]] std::string name() const override { return inner_->name() + "+ge"; }

  [[nodiscard]] std::uint64_t injected_drops() const { return injected_drops_; }
  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }
  [[nodiscard]] const aqm::QueueDisc& inner() const { return *inner_; }

  void save(sim::SnapshotWriter& w) const override {
    QueueDisc::save(w);
    w.put_pod(rng_);
    w.put_bool(bad_);
    w.put_u64(injected_drops_);
    w.put_u64(injected_bytes_);
    inner_->save(w);
  }
  void load(sim::SnapshotReader& r) override {
    QueueDisc::load(r);
    r.get_pod(&rng_);
    bad_ = r.get_bool();
    injected_drops_ = r.get_u64();
    injected_bytes_ = r.get_u64();
    inner_->load(r);
  }

 private:
  /// Present one coherent stats view: the inner qdisc's counters plus our
  /// injected drops folded into the early-drop numbers.
  void sync_stats() {
    const aqm::QueueStats& in = inner_->stats();
    stats_.enqueued = in.enqueued;
    stats_.dequeued = in.dequeued;
    stats_.dropped_overflow = in.dropped_overflow;
    stats_.dropped_early = injected_drops_ + in.dropped_early;
    stats_.ecn_marked = in.ecn_marked;
    stats_.bytes_enqueued = in.bytes_enqueued;
    stats_.bytes_dropped = injected_bytes_ + in.bytes_dropped;
  }

  std::unique_ptr<aqm::QueueDisc> inner_;
  GilbertElliottParams params_;
  sim::Rng rng_;
  bool bad_ = false;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_bytes_ = 0;
};

}  // namespace elephant::fault
