#pragma once

#include <memory>

#include "aqm/queue_disc.hpp"
#include "fault/fault.hpp"
#include "sim/random.hpp"

namespace elephant::fault {

/// Decorator dropping arrivals from a two-state Gilbert–Elliott process —
/// bursty loss, where the Bernoulli aqm::LossInjector is memoryless. The
/// chain advances one step per arriving packet; each state drops with its
/// own probability. Seeded, so runs stay reproducible.
class GilbertElliottLoss : public aqm::QueueDisc {
 public:
  GilbertElliottLoss(sim::Scheduler& sched, std::unique_ptr<aqm::QueueDisc> inner,
                     const GilbertElliottParams& params, std::uint64_t seed)
      : QueueDisc(sched), inner_(std::move(inner)), params_(params), rng_(seed) {}

  void set_tracer(trace::Tracer* tracer) override {
    QueueDisc::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  bool enqueue(net::Packet&& p) override {
    // Advance the chain, then apply the (new) state's loss probability.
    const double flip = rng_.next_double();
    if (bad_ ? flip < params_.p_bad_to_good : flip < params_.p_good_to_bad) bad_ = !bad_;
    const double loss = bad_ ? params_.loss_bad : params_.loss_good;
    if (loss > 0 && rng_.next_double() < loss) {
      ++injected_drops_;
      injected_bytes_ += p.size;
      trace_drop(p, /*early=*/true);
      sync_stats();
      return false;
    }
    const bool ok = inner_->enqueue(std::move(p));
    sync_stats();
    return ok;
  }

  std::optional<net::Packet> dequeue() override {
    auto p = inner_->dequeue();
    sync_stats();
    return p;
  }

  [[nodiscard]] std::size_t byte_length() const override { return inner_->byte_length(); }
  [[nodiscard]] std::size_t packet_length() const override { return inner_->packet_length(); }
  [[nodiscard]] std::string name() const override { return inner_->name() + "+ge"; }

  [[nodiscard]] std::uint64_t injected_drops() const { return injected_drops_; }
  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }
  [[nodiscard]] const aqm::QueueDisc& inner() const { return *inner_; }

 private:
  /// Present one coherent stats view: the inner qdisc's counters plus our
  /// injected drops folded into the early-drop numbers.
  void sync_stats() {
    const aqm::QueueStats& in = inner_->stats();
    stats_.enqueued = in.enqueued;
    stats_.dequeued = in.dequeued;
    stats_.dropped_overflow = in.dropped_overflow;
    stats_.dropped_early = injected_drops_ + in.dropped_early;
    stats_.ecn_marked = in.ecn_marked;
    stats_.bytes_enqueued = in.bytes_enqueued;
    stats_.bytes_dropped = injected_bytes_ + in.bytes_dropped;
  }

  std::unique_ptr<aqm::QueueDisc> inner_;
  GilbertElliottParams params_;
  sim::Rng rng_;
  bool bad_ = false;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_bytes_ = 0;
};

}  // namespace elephant::fault
