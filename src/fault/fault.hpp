#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace elephant::net {
class Port;
}
namespace elephant::sim {
class Scheduler;
class SnapshotReader;
class SnapshotWriter;
}  // namespace elephant::sim
namespace elephant::trace {
class Tracer;
}

namespace elephant::fault {

/// The network anomalies the paper's §6 future work asks about, applied to
/// one port (the bottleneck) on a schedule.
enum class FaultKind : std::uint8_t {
  kLinkDown = 0,  ///< outage: nothing serializes for `duration`
  kRateScale,     ///< degrade: rate = nominal × `value` for `duration`
  kLossBurst,     ///< link corruption loss with probability `value`
  kReorder,       ///< probability `value` of a packet landing `delay` late
  kDuplicate,     ///< probability `value` of delivering a packet twice
  kJitter,        ///< uniform [0, `delay`) extra latency per packet
};

inline constexpr std::size_t kFaultKindCount = 6;

[[nodiscard]] const char* to_string(FaultKind kind);

/// One timed perturbation. `duration` of zero means the fault persists to the
/// end of the run; otherwise it is reverted `duration` after `at`.
struct FaultEvent {
  sim::Time at{};
  FaultKind kind = FaultKind::kLinkDown;
  double value = 0;     ///< kind-specific magnitude (rate factor, probability)
  sim::Time duration{};
  sim::Time delay{};    ///< reorder lateness / jitter amplitude
};

/// A schedule of faults for one run. Part of the experiment's identity:
/// signature() feeds the result-cache key, so perturbed and clean runs never
/// share cache entries.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  /// Stable content hash ("" for an empty plan), suitable as an id suffix.
  [[nodiscard]] std::string signature() const;

  FaultPlan& add(FaultEvent e) {
    events.push_back(e);
    return *this;
  }

  // Common scenarios.
  /// `flaps` down/up cycles of `down_for` each, the first starting at `at`,
  /// subsequent ones `period` apart (default: back-to-back with an equal up
  /// interval).
  [[nodiscard]] static FaultPlan link_flap(sim::Time at, sim::Time down_for, int flaps = 1,
                                           sim::Time period = sim::Time::zero());
  [[nodiscard]] static FaultPlan degrade(sim::Time at, double rate_factor,
                                         sim::Time for_time = sim::Time::zero());
  [[nodiscard]] static FaultPlan loss_burst(sim::Time at, double loss_prob,
                                            sim::Time for_time = sim::Time::zero());
  [[nodiscard]] static FaultPlan jitter_spike(sim::Time at, sim::Time amplitude,
                                              sim::Time for_time = sim::Time::zero());
};

/// Two-state Gilbert–Elliott loss parameters: bursty loss, complementing the
/// independent Bernoulli LossInjector. State advances per arriving packet;
/// a packet is lost with its state's loss probability.
struct GilbertElliottParams {
  double p_good_to_bad = 0;    ///< per-packet P(good → bad)
  double p_bad_to_good = 0.5;  ///< per-packet P(bad → good)
  double loss_good = 0;
  double loss_bad = 1.0;

  [[nodiscard]] bool enabled() const { return p_good_to_bad > 0 && p_bad_to_good > 0; }

  /// Long-run loss fraction: π_bad·loss_bad + π_good·loss_good.
  [[nodiscard]] double stationary_loss() const {
    if (!enabled()) return 0;
    const double pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good);
    return (1 - pi_bad) * loss_good + pi_bad * loss_bad;
  }

  /// Parameters hitting a target stationary loss with bursts of
  /// `mean_burst_packets` consecutive losses (loss_bad = 1, loss_good = 0).
  [[nodiscard]] static GilbertElliottParams from_loss(double stationary,
                                                      double mean_burst_packets);
};

/// Applies a FaultPlan to a port through the scheduler. Owns the RNG that
/// drives probabilistic link perturbations, so the injector must outlive the
/// run. Every apply/revert is emitted to the flight recorder as a kFault
/// record (v0 = kind, v1 = magnitude, v2 = 1 apply / 0 revert).
class FaultInjector {
 public:
  FaultInjector(sim::Scheduler& sched, net::Port& target, std::uint64_t seed,
                trace::Tracer* tracer = nullptr);

  /// Schedule every event of the plan (and its reversion, when bounded).
  void install(const FaultPlan& plan);

  [[nodiscard]] std::uint64_t applied() const { return applied_; }
  [[nodiscard]] std::uint64_t reverted() const { return reverted_; }

  /// Snapshot the injector's mutable state (sim::Snapshottable contract):
  /// the fault RNG, outage nesting depth, and apply/revert counters. The
  /// scheduled apply/revert events themselves live in the scheduler image.
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

 private:
  void apply(const FaultEvent& e, std::size_t index);
  void revert(const FaultEvent& e, std::size_t index);
  void record(const FaultEvent& e, std::size_t index, bool applying);

  sim::Scheduler& sched_;
  net::Port& target_;
  trace::Tracer* tracer_;
  sim::Rng rng_;
  double nominal_rate_bps_;
  int link_down_depth_ = 0;  ///< overlapping outages nest
  std::uint64_t applied_ = 0;
  std::uint64_t reverted_ = 0;
};

}  // namespace elephant::fault
