#include "fault/fault.hpp"

#include <cassert>
#include <cstdio>

#include "net/port.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"
#include "trace/trace.hpp"

namespace elephant::fault {

namespace {

constexpr const char* kKindNames[kFaultKindCount] = {
    "link_down", "rate_scale", "loss_burst", "reorder", "duplicate", "jitter",
};

/// FNV-1a over the event fields; stable across platforms so cache keys are.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  __builtin_memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

const char* to_string(FaultKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  assert(i < kFaultKindCount);
  return kKindNames[i];
}

std::string FaultPlan::signature() const {
  if (events.empty()) return "";
  std::uint64_t h = 14695981039346656037ull;
  for (const FaultEvent& e : events) {
    h = fnv1a(h, static_cast<std::uint64_t>(e.at.ns()));
    h = fnv1a(h, static_cast<std::uint64_t>(e.kind));
    h = fnv1a(h, bits(e.value));
    h = fnv1a(h, static_cast<std::uint64_t>(e.duration.ns()));
    h = fnv1a(h, static_cast<std::uint64_t>(e.delay.ns()));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

FaultPlan FaultPlan::link_flap(sim::Time at, sim::Time down_for, int flaps, sim::Time period) {
  if (period <= sim::Time::zero()) period = 2 * down_for;
  FaultPlan plan;
  for (int i = 0; i < flaps; ++i) {
    FaultEvent e;
    e.at = at + i * period;
    e.kind = FaultKind::kLinkDown;
    e.duration = down_for;
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan FaultPlan::degrade(sim::Time at, double rate_factor, sim::Time for_time) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRateScale;
  e.value = rate_factor;
  e.duration = for_time;
  return FaultPlan{}.add(e);
}

FaultPlan FaultPlan::loss_burst(sim::Time at, double loss_prob, sim::Time for_time) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLossBurst;
  e.value = loss_prob;
  e.duration = for_time;
  return FaultPlan{}.add(e);
}

FaultPlan FaultPlan::jitter_spike(sim::Time at, sim::Time amplitude, sim::Time for_time) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kJitter;
  e.delay = amplitude;
  e.duration = for_time;
  return FaultPlan{}.add(e);
}

GilbertElliottParams GilbertElliottParams::from_loss(double stationary,
                                                     double mean_burst_packets) {
  GilbertElliottParams p;
  if (stationary <= 0) return p;
  if (stationary > 0.99) stationary = 0.99;
  if (mean_burst_packets < 1) mean_burst_packets = 1;
  // loss_bad = 1, loss_good = 0 ⇒ π_bad = stationary and mean bad-state
  // sojourn = 1 / p_bad_to_good = mean burst length.
  p.loss_good = 0;
  p.loss_bad = 1.0;
  p.p_bad_to_good = 1.0 / mean_burst_packets;
  p.p_good_to_bad = p.p_bad_to_good * stationary / (1.0 - stationary);
  return p;
}

FaultInjector::FaultInjector(sim::Scheduler& sched, net::Port& target, std::uint64_t seed,
                             trace::Tracer* tracer)
    : sched_(sched), target_(target), tracer_(tracer), rng_(seed),
      nominal_rate_bps_(target.rate_bps()) {}

void FaultInjector::install(const FaultPlan& plan) {
  target_.set_fault_rng(&rng_);
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent e = plan.events[i];
    sched_.schedule_at(e.at, [this, e, i] { apply(e, i); });
    if (e.duration > sim::Time::zero()) {
      sched_.schedule_at(e.at + e.duration, [this, e, i] { revert(e, i); });
    }
  }
}

void FaultInjector::record(const FaultEvent& e, std::size_t index, bool applying) {
  if (tracer_ == nullptr) return;
  trace::TraceRecord r;
  r.t = sched_.now();
  r.type = trace::RecordType::kFault;
  r.seq = index;
  r.v0 = static_cast<double>(e.kind);
  r.v1 = e.value != 0 ? e.value : e.delay.ms();
  r.v2 = applying ? 1 : 0;
  tracer_->record(r);
}

void FaultInjector::apply(const FaultEvent& e, std::size_t index) {
  net::Port::LinkPerturb p = target_.perturb();
  switch (e.kind) {
    case FaultKind::kLinkDown:
      if (++link_down_depth_ == 1) target_.set_link_up(false);
      break;
    case FaultKind::kRateScale:
      // No stacking: overlapping rate faults overwrite, revert restores
      // the nominal rate.
      target_.set_rate_bps(nominal_rate_bps_ * e.value);
      break;
    case FaultKind::kLossBurst:
      p.loss_prob = e.value;
      break;
    case FaultKind::kReorder:
      p.reorder_prob = e.value;
      p.reorder_delay = e.delay;
      break;
    case FaultKind::kDuplicate:
      p.duplicate_prob = e.value;
      break;
    case FaultKind::kJitter:
      p.jitter = e.delay;
      break;
  }
  target_.set_perturb(p);
  ++applied_;
  record(e, index, /*applying=*/true);
}

void FaultInjector::revert(const FaultEvent& e, std::size_t index) {
  net::Port::LinkPerturb p = target_.perturb();
  switch (e.kind) {
    case FaultKind::kLinkDown:
      if (--link_down_depth_ == 0) target_.set_link_up(true);
      break;
    case FaultKind::kRateScale:
      target_.set_rate_bps(nominal_rate_bps_);
      break;
    case FaultKind::kLossBurst:
      p.loss_prob = 0;
      break;
    case FaultKind::kReorder:
      p.reorder_prob = 0;
      p.reorder_delay = sim::Time::zero();
      break;
    case FaultKind::kDuplicate:
      p.duplicate_prob = 0;
      break;
    case FaultKind::kJitter:
      p.jitter = sim::Time::zero();
      break;
  }
  target_.set_perturb(p);
  ++reverted_;
  record(e, index, /*applying=*/false);
}

void FaultInjector::save(sim::SnapshotWriter& w) const {
  w.put_pod(rng_);
  w.put_pod(link_down_depth_);
  w.put_u64(applied_);
  w.put_u64(reverted_);
}

void FaultInjector::load(sim::SnapshotReader& r) {
  r.get_pod(&rng_);
  r.get_pod(&link_down_depth_);
  applied_ = r.get_u64();
  reverted_ = r.get_u64();
}

}  // namespace elephant::fault
