#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqm/queue_disc.hpp"
#include "exp/config.hpp"

namespace elephant::exp {

/// Per-flow outcome of one run.
struct FlowResult {
  std::uint32_t flow = 0;
  int sender = 0;  ///< 0 = client1/cca1, 1 = client2/cca2
  std::string cca;
  double throughput_bps = 0;     ///< receiver goodput over the flow's active window
  double start_s = 0;            ///< staggered start offset (seconds into the run)
  std::uint64_t retx_segments = 0;
  std::uint64_t rtos = 0;
  double srtt_ms = 0;
};

/// Aggregate outcome of one run (one repetition of one configuration).
struct ExperimentResult {
  ExperimentConfig config;
  std::vector<FlowResult> flows;
  std::uint32_t n_flows = 0;       ///< flows actually instantiated (== flows.size())

  double sender_bps[2] = {0, 0};   ///< per-sender aggregate throughput (S1, S2)
  double jain2 = 1.0;              ///< per-sender Jain index (Eq. 2, n = 2)
  double utilization = 0;          ///< φ (Eq. 3)
  std::uint64_t retx_segments = 0; ///< Σ retransmitted segments (Fig. 8 metric)
  std::uint64_t rtos = 0;
  aqm::QueueStats bottleneck;

  std::uint64_t events_executed = 0;
  double wall_seconds = 0;
};

/// Repetition-averaged view (the paper averages 5 runs per configuration).
struct AveragedResult {
  ExperimentConfig config;
  int repetitions = 0;
  double sender_bps[2] = {0, 0};
  double jain2 = 1.0;
  double utilization = 0;
  double retx_segments = 0;
  double rtos = 0;
};

/// Execute one configuration once (seed taken from the config).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Execute `reps` repetitions with derived seeds and average. Uses the
/// on-disk cache (see cache.hpp) unless it is disabled.
[[nodiscard]] AveragedResult run_averaged(const ExperimentConfig& cfg, int reps,
                                          bool use_cache = true);

[[nodiscard]] AveragedResult average(const ExperimentConfig& cfg,
                                     const std::vector<ExperimentResult>& runs);

/// Repetition count for benches: ELEPHANT_REPS env var, default 1.
[[nodiscard]] int default_repetitions();

}  // namespace elephant::exp
