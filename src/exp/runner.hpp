#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqm/queue_disc.hpp"
#include "exp/config.hpp"

namespace elephant::exp {

/// Per-flow outcome of one run.
struct FlowResult {
  std::uint32_t flow = 0;
  int sender = 0;  ///< 0 = client1/cca1, 1 = client2/cca2
  std::string cca;
  double throughput_bps = 0;     ///< receiver goodput over the flow's active window
  double start_s = 0;            ///< staggered start offset (seconds into the run)
  std::uint64_t retx_segments = 0;
  std::uint64_t rtos = 0;
  double srtt_ms = 0;

  // Workload bookkeeping; defaults describe a legacy elephant.
  std::string cls;                   ///< traffic-class name ("" in the legacy path)
  std::uint64_t transfer_bytes = 0;  ///< finite transfer size; 0 = unbounded
  bool completed = false;            ///< finite flow fully acknowledged
  double fct_s = 0;                  ///< flow-completion time; 0 if not completed
};

/// Per-traffic-class aggregate of one run; populated only for non-default
/// workloads (the legacy elephant-only path reports no classes).
struct ClassResult {
  std::string name;
  std::uint32_t flows = 0;      ///< instantiated
  std::uint32_t completed = 0;  ///< finite flows fully acknowledged
  double throughput_bps = 0;    ///< Σ delivered bytes · 8 / run duration
  double share = 0;             ///< fraction of all delivered bytes
  double jain = 1.0;            ///< Jain index over the class's flow goodputs
  // FCT distribution over the class's completed finite flows (seconds).
  double fct_p50_s = 0;
  double fct_p95_s = 0;
  double fct_p99_s = 0;
  double fct_mean_s = 0;
  // FCT slowdown vs an empty path (bytes·8/BW + RTT); mice-harm headline.
  double slowdown_p50 = 0;
  double slowdown_p95 = 0;
  double slowdown_p99 = 0;
};

/// Aggregate outcome of one run (one repetition of one configuration).
struct ExperimentResult {
  ExperimentConfig config;
  std::vector<FlowResult> flows;
  std::vector<ClassResult> classes;  ///< per-class aggregates (workload runs only)
  std::uint32_t n_flows = 0;       ///< flows actually instantiated (== flows.size())

  double sender_bps[2] = {0, 0};   ///< per-sender aggregate throughput (S1, S2)
  double jain2 = 1.0;              ///< per-sender Jain index (Eq. 2, n = 2)
  double utilization = 0;          ///< φ (Eq. 3)
  std::uint64_t retx_segments = 0; ///< Σ retransmitted segments (Fig. 8 metric)
  std::uint64_t rtos = 0;
  aqm::QueueStats bottleneck;

  /// Fairness episodes detected during the run (empty unless
  /// config.episodes.enabled; see obs/episode.hpp).
  std::vector<obs::Episode> episodes;

  std::uint64_t events_executed = 0;
  double wall_seconds = 0;
};

/// Repetition-averaged view (the paper averages 5 runs per configuration).
struct AveragedResult {
  ExperimentConfig config;
  int repetitions = 0;
  double sender_bps[2] = {0, 0};
  double jain2 = 1.0;
  double utilization = 0;
  double retx_segments = 0;
  double rtos = 0;
  /// Per-class aggregates averaged across repetitions (matched by index;
  /// every repetition runs the same WorkloadSpec).
  std::vector<ClassResult> classes;

  /// Episode summary across repetitions (zero/empty when detection is off or
  /// nothing fired): mean count per repetition, and the worst episode seen in
  /// any repetition (minimum windowed Jain, with its victim and cause tag).
  double episodes = 0;
  double episode_worst_jain = 1.0;
  double episode_worst_t_s = 0;
  std::uint32_t episode_victim = 0;
  std::string episode_cause;
};

/// Execute one configuration once (seed taken from the config).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Execute `reps` repetitions with derived seeds and average. Uses the
/// on-disk cache (see cache.hpp) unless it is disabled.
[[nodiscard]] AveragedResult run_averaged(const ExperimentConfig& cfg, int reps,
                                          bool use_cache = true);

[[nodiscard]] AveragedResult average(const ExperimentConfig& cfg,
                                     const std::vector<ExperimentResult>& runs);

/// Repetition count for benches: ELEPHANT_REPS env var, default 1.
[[nodiscard]] int default_repetitions();

}  // namespace elephant::exp
