#include "exp/cache.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace elephant::exp {

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) enabled_ = false;
}

ResultCache& ResultCache::global() {
  static ResultCache cache = [] {
    const char* env = std::getenv("ELEPHANT_RESULTS_DIR");
    return ResultCache(env != nullptr ? std::filesystem::path(env)
                                      : std::filesystem::path("results"));
  }();
  return cache;
}

std::filesystem::path ResultCache::path_for(const ExperimentConfig& cfg) const {
  return dir_ / (cfg.id() + ".result");
}

std::optional<ExperimentResult> ResultCache::load(const ExperimentConfig& cfg) const {
  if (!enabled_) return std::nullopt;
  std::lock_guard lock(mu_);
  std::ifstream in(path_for(cfg));
  if (!in) return std::nullopt;

  std::unordered_map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  auto get = [&](const char* key) -> std::optional<double> {
    auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    return std::atof(it->second.c_str());
  };

  ExperimentResult res;
  res.config = cfg;
  const auto s1 = get("sender1_bps");
  const auto s2 = get("sender2_bps");
  const auto jain = get("jain2");
  const auto util = get("utilization");
  const auto retx = get("retx_segments");
  if (!s1 || !s2 || !jain || !util || !retx) return std::nullopt;
  res.sender_bps[0] = *s1;
  res.sender_bps[1] = *s2;
  res.jain2 = *jain;
  res.utilization = *util;
  res.retx_segments = static_cast<std::uint64_t>(*retx);
  res.rtos = static_cast<std::uint64_t>(get("rtos").value_or(0));
  res.n_flows = static_cast<std::uint32_t>(get("n_flows").value_or(0));
  res.events_executed = static_cast<std::uint64_t>(get("events").value_or(0));
  res.wall_seconds = get("wall_seconds").value_or(0);
  return res;
}

void ResultCache::store(const ExperimentResult& result) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto path = path_for(result.config);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out.precision(17);
    out << "id=" << result.config.id() << '\n'
        << "label=" << result.config.label() << '\n'
        << "sender1_bps=" << result.sender_bps[0] << '\n'
        << "sender2_bps=" << result.sender_bps[1] << '\n'
        << "jain2=" << result.jain2 << '\n'
        << "utilization=" << result.utilization << '\n'
        << "retx_segments=" << result.retx_segments << '\n'
        << "rtos=" << result.rtos << '\n'
        << "n_flows=" << result.n_flows << '\n'
        << "events=" << result.events_executed << '\n'
        << "wall_seconds=" << result.wall_seconds << '\n';
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

}  // namespace elephant::exp
