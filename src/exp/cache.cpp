#include "exp/cache.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>

namespace elephant::exp {

namespace {

/// FNV-1a 64-bit over the entry body. Not cryptographic — it guards against
/// torn writes, disk bit rot, and concurrent-writer interleaving, all of
/// which it catches with overwhelming probability.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Strict double parse: the whole field must be consumed (modulo trailing
/// whitespace / CR from foreign line endings) and the value finite.
/// std::atof would silently turn a mangled row into 0.0.
bool parse_field(const std::string& text, double* out) {
  const char* s = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) enabled_ = false;
}

ResultCache& ResultCache::global() {
  static ResultCache cache = [] {
    const char* env = std::getenv("ELEPHANT_RESULTS_DIR");
    return ResultCache(env != nullptr ? std::filesystem::path(env)
                                      : std::filesystem::path("results"));
  }();
  return cache;
}

std::filesystem::path ResultCache::path_for(const ExperimentConfig& cfg) const {
  return dir_ / (cfg.id() + ".result");
}

std::optional<ExperimentResult> ResultCache::load(const ExperimentConfig& cfg) const {
  auto res = load_impl(cfg);
  (res ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return res;
}

void ResultCache::quarantine(const std::filesystem::path& path) const {
  std::error_code ec;
  std::filesystem::rename(path, path.string() + ".corrupt", ec);
  if (ec) std::filesystem::remove(path, ec);
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "[cache] corrupt entry quarantined: %s\n", path.c_str());
}

std::optional<ExperimentResult> ResultCache::load_impl(const ExperimentConfig& cfg) const {
  if (!enabled_) return std::nullopt;
  std::lock_guard lock(mu_);
  const auto path = path_for(cfg);
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    content.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  // Verify the trailing checksum when present (entries from before the sum
  // line are accepted as-is — their field-level validation still applies).
  const auto sum_pos = content.rfind("sum=");
  if (sum_pos != std::string::npos && (sum_pos == 0 || content[sum_pos - 1] == '\n')) {
    const char* s = content.c_str() + sum_pos + 4;
    char* end = nullptr;
    const std::uint64_t recorded = std::strtoull(s, &end, 16);
    const bool parsed = end != s && (*end == '\n' || *end == '\0');
    if (!parsed || recorded != fnv1a(std::string_view(content).substr(0, sum_pos))) {
      quarantine(path);
      return std::nullopt;
    }
    content.erase(sum_pos);  // body only from here on
  }

  std::unordered_map<std::string, std::string> kv;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  // A present-but-unparseable field (garbage, NaN, Inf) marks the whole
  // entry corrupt; a *missing* optional field is just an older format.
  bool corrupt = false;
  auto get = [&](const char* key) -> std::optional<double> {
    auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    double v;
    if (!parse_field(it->second, &v)) {
      corrupt = true;
      return std::nullopt;
    }
    return v;
  };

  ExperimentResult res;
  res.config = cfg;
  const auto s1 = get("sender1_bps");
  const auto s2 = get("sender2_bps");
  const auto jain = get("jain2");
  const auto util = get("utilization");
  const auto retx = get("retx_segments");
  const auto rtos = get("rtos");
  const auto n_flows = get("n_flows");
  const auto events = get("events");
  const auto wall = get("wall_seconds");
  if (corrupt || !s1 || !s2 || !jain || !util || !retx) {
    // Truncated or mangled entry: serving it would turn garbage (atof's
    // silent 0.0) into a "valid" cached result. Quarantine so it regenerates
    // and the damaged bytes stay inspectable.
    quarantine(path);
    return std::nullopt;
  }
  res.sender_bps[0] = *s1;
  res.sender_bps[1] = *s2;
  res.jain2 = *jain;
  res.utilization = *util;
  res.retx_segments = static_cast<std::uint64_t>(*retx);
  res.rtos = static_cast<std::uint64_t>(rtos.value_or(0));
  res.n_flows = static_cast<std::uint32_t>(n_flows.value_or(0));
  res.events_executed = static_cast<std::uint64_t>(events.value_or(0));
  res.wall_seconds = wall.value_or(0);

  // Per-class aggregates (workload runs): "classN=name;f1;...;f12". A
  // workload config whose entry predates the class rows must regenerate —
  // serving it would silently drop the mice metrics.
  for (std::size_t ci = 0;; ++ci) {
    auto it = kv.find("class" + std::to_string(ci));
    if (it == kv.end()) break;
    std::vector<std::string> fields;
    std::stringstream ss(it->second);
    std::string field;
    while (std::getline(ss, field, ';')) fields.push_back(field);
    double v[12];
    bool ok = fields.size() == 13;
    for (std::size_t i = 0; ok && i < 12; ++i) ok = parse_field(fields[i + 1], &v[i]);
    if (!ok) {
      quarantine(path);
      return std::nullopt;
    }
    ClassResult cr;
    cr.name = fields[0];
    cr.flows = static_cast<std::uint32_t>(v[0]);
    cr.completed = static_cast<std::uint32_t>(v[1]);
    cr.throughput_bps = v[2];
    cr.share = v[3];
    cr.jain = v[4];
    cr.fct_p50_s = v[5];
    cr.fct_p95_s = v[6];
    cr.fct_p99_s = v[7];
    cr.fct_mean_s = v[8];
    cr.slowdown_p50 = v[9];
    cr.slowdown_p95 = v[10];
    cr.slowdown_p99 = v[11];
    res.classes.push_back(std::move(cr));
  }
  if (!cfg.workload.is_paper_default() &&
      res.classes.size() != cfg.workload.classes.size()) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return std::nullopt;
  }

  // Fairness episodes: "epN=cause;15 numeric fields". No format-migration
  // check is needed: the episode knobs are part of the config id, so an
  // episode-enabled config can never resolve to an entry written without
  // them — an entry with no ep rows genuinely had zero episodes.
  for (std::size_t ei = 0;; ++ei) {
    auto it = kv.find("ep" + std::to_string(ei));
    if (it == kv.end()) break;
    std::vector<std::string> fields;
    std::stringstream ss(it->second);
    std::string field;
    while (std::getline(ss, field, ';')) fields.push_back(field);
    double v[15];
    bool ok = fields.size() == 16;
    for (std::size_t i = 0; ok && i < 15; ++i) ok = parse_field(fields[i + 1], &v[i]);
    if (!ok) {
      quarantine(path);
      return std::nullopt;
    }
    obs::Episode ep;
    ep.cause = fields[0];
    ep.start_s = v[0];
    ep.end_s = v[1];
    ep.worst_jain = v[2];
    ep.worst_t_s = v[3];
    ep.victim_flow = static_cast<std::uint32_t>(v[4]);
    ep.victim_side = static_cast<int>(v[5]);
    ep.victim_share = v[6];
    ep.loss_injected = static_cast<std::uint64_t>(v[7]);
    ep.drops_overflow = static_cast<std::uint64_t>(v[8]);
    ep.drops_early = static_cast<std::uint64_t>(v[9]);
    ep.ecn_marks = static_cast<std::uint64_t>(v[10]);
    ep.rtos = static_cast<std::uint64_t>(v[11]);
    ep.retx = static_cast<std::uint64_t>(v[12]);
    ep.faults = static_cast<std::uint64_t>(v[13]);
    ep.cwnd_collapses = static_cast<std::uint32_t>(v[14]);
    res.episodes.push_back(std::move(ep));
  }
  return res;
}

void ResultCache::store(const ExperimentResult& result) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto path = path_for(result.config);
  // Unique per-(process, store) tmp name: concurrent sweep workers caching
  // the same cell must never interleave writes into one shared tmp file.
  // Each writes its own tmp, and the rename-over races are benign — results
  // are deterministic, so last-writer-wins installs identical bytes.
  const auto tmp = path.string() + ".tmp." + std::to_string(::getpid()) + "." +
                   std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed));

  std::ostringstream body;
  body.precision(17);
  body << "id=" << result.config.id() << '\n'
       << "label=" << result.config.label() << '\n'
       << "sender1_bps=" << result.sender_bps[0] << '\n'
       << "sender2_bps=" << result.sender_bps[1] << '\n'
       << "jain2=" << result.jain2 << '\n'
       << "utilization=" << result.utilization << '\n'
       << "retx_segments=" << result.retx_segments << '\n'
       << "rtos=" << result.rtos << '\n'
       << "n_flows=" << result.n_flows << '\n'
       << "events=" << result.events_executed << '\n'
       << "wall_seconds=" << result.wall_seconds << '\n';
  for (std::size_t ci = 0; ci < result.classes.size(); ++ci) {
    const ClassResult& c = result.classes[ci];
    body << "class" << ci << '=' << c.name << ';' << c.flows << ';' << c.completed << ';'
         << c.throughput_bps << ';' << c.share << ';' << c.jain << ';' << c.fct_p50_s
         << ';' << c.fct_p95_s << ';' << c.fct_p99_s << ';' << c.fct_mean_s << ';'
         << c.slowdown_p50 << ';' << c.slowdown_p95 << ';' << c.slowdown_p99 << '\n';
  }
  for (std::size_t ei = 0; ei < result.episodes.size(); ++ei) {
    const obs::Episode& ep = result.episodes[ei];
    body << "ep" << ei << '=' << ep.cause << ';' << ep.start_s << ';' << ep.end_s << ';'
         << ep.worst_jain << ';' << ep.worst_t_s << ';' << ep.victim_flow << ';'
         << ep.victim_side << ';' << ep.victim_share << ';' << ep.loss_injected << ';'
         << ep.drops_overflow << ';' << ep.drops_early << ';' << ep.ecn_marks << ';'
         << ep.rtos << ';' << ep.retx << ';' << ep.faults << ';' << ep.cwnd_collapses
         << '\n';
  }
  const std::string text = body.str();
  char sum[32];
  std::snprintf(sum, sizeof(sum), "sum=%016llx\n",
                static_cast<unsigned long long>(fnv1a(text)));

  bool written = false;
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (out) {
      out << text << sum;
      out.flush();
      written = out.good();
    }
  }
  std::error_code ec;
  if (!written) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "[cache] store failed (write error): %s\n", tmp.c_str());
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    // A failed rename means the result was NOT cached — saying nothing here
    // would turn every future hit into a silent re-simulation.
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "[cache] store failed (rename: %s): %s\n",
                 ec.message().c_str(), path.c_str());
    std::filesystem::remove(tmp, ec);
  }
}

}  // namespace elephant::exp
