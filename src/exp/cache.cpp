#include "exp/cache.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace elephant::exp {

namespace {

/// Strict double parse: the whole field must be consumed (modulo trailing
/// whitespace / CR from foreign line endings) and the value finite.
/// std::atof would silently turn a mangled row into 0.0.
bool parse_field(const std::string& text, double* out) {
  const char* s = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) enabled_ = false;
}

ResultCache& ResultCache::global() {
  static ResultCache cache = [] {
    const char* env = std::getenv("ELEPHANT_RESULTS_DIR");
    return ResultCache(env != nullptr ? std::filesystem::path(env)
                                      : std::filesystem::path("results"));
  }();
  return cache;
}

std::filesystem::path ResultCache::path_for(const ExperimentConfig& cfg) const {
  return dir_ / (cfg.id() + ".result");
}

std::optional<ExperimentResult> ResultCache::load(const ExperimentConfig& cfg) const {
  auto res = load_impl(cfg);
  (res ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return res;
}

std::optional<ExperimentResult> ResultCache::load_impl(const ExperimentConfig& cfg) const {
  if (!enabled_) return std::nullopt;
  std::lock_guard lock(mu_);
  const auto path = path_for(cfg);
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::unordered_map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  // A present-but-unparseable field (garbage, NaN, Inf) marks the whole
  // entry corrupt; a *missing* optional field is just an older format.
  bool corrupt = false;
  auto get = [&](const char* key) -> std::optional<double> {
    auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    double v;
    if (!parse_field(it->second, &v)) {
      corrupt = true;
      return std::nullopt;
    }
    return v;
  };

  ExperimentResult res;
  res.config = cfg;
  const auto s1 = get("sender1_bps");
  const auto s2 = get("sender2_bps");
  const auto jain = get("jain2");
  const auto util = get("utilization");
  const auto retx = get("retx_segments");
  const auto rtos = get("rtos");
  const auto n_flows = get("n_flows");
  const auto events = get("events");
  const auto wall = get("wall_seconds");
  if (corrupt || !s1 || !s2 || !jain || !util || !retx) {
    // Truncated or mangled entry: serving it would turn garbage (atof's
    // silent 0.0) into a "valid" cached result. Delete so it regenerates.
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return std::nullopt;
  }
  res.sender_bps[0] = *s1;
  res.sender_bps[1] = *s2;
  res.jain2 = *jain;
  res.utilization = *util;
  res.retx_segments = static_cast<std::uint64_t>(*retx);
  res.rtos = static_cast<std::uint64_t>(rtos.value_or(0));
  res.n_flows = static_cast<std::uint32_t>(n_flows.value_or(0));
  res.events_executed = static_cast<std::uint64_t>(events.value_or(0));
  res.wall_seconds = wall.value_or(0);

  // Per-class aggregates (workload runs): "classN=name;f1;...;f12". A
  // workload config whose entry predates the class rows must regenerate —
  // serving it would silently drop the mice metrics.
  for (std::size_t ci = 0;; ++ci) {
    auto it = kv.find("class" + std::to_string(ci));
    if (it == kv.end()) break;
    std::vector<std::string> fields;
    std::stringstream ss(it->second);
    std::string field;
    while (std::getline(ss, field, ';')) fields.push_back(field);
    double v[12];
    bool ok = fields.size() == 13;
    for (std::size_t i = 0; ok && i < 12; ++i) ok = parse_field(fields[i + 1], &v[i]);
    if (!ok) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
      return std::nullopt;
    }
    ClassResult cr;
    cr.name = fields[0];
    cr.flows = static_cast<std::uint32_t>(v[0]);
    cr.completed = static_cast<std::uint32_t>(v[1]);
    cr.throughput_bps = v[2];
    cr.share = v[3];
    cr.jain = v[4];
    cr.fct_p50_s = v[5];
    cr.fct_p95_s = v[6];
    cr.fct_p99_s = v[7];
    cr.fct_mean_s = v[8];
    cr.slowdown_p50 = v[9];
    cr.slowdown_p95 = v[10];
    cr.slowdown_p99 = v[11];
    res.classes.push_back(std::move(cr));
  }
  if (!cfg.workload.is_paper_default() &&
      res.classes.size() != cfg.workload.classes.size()) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return std::nullopt;
  }
  return res;
}

void ResultCache::store(const ExperimentResult& result) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto path = path_for(result.config);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out.precision(17);
    out << "id=" << result.config.id() << '\n'
        << "label=" << result.config.label() << '\n'
        << "sender1_bps=" << result.sender_bps[0] << '\n'
        << "sender2_bps=" << result.sender_bps[1] << '\n'
        << "jain2=" << result.jain2 << '\n'
        << "utilization=" << result.utilization << '\n'
        << "retx_segments=" << result.retx_segments << '\n'
        << "rtos=" << result.rtos << '\n'
        << "n_flows=" << result.n_flows << '\n'
        << "events=" << result.events_executed << '\n'
        << "wall_seconds=" << result.wall_seconds << '\n';
    for (std::size_t ci = 0; ci < result.classes.size(); ++ci) {
      const ClassResult& c = result.classes[ci];
      out << "class" << ci << '=' << c.name << ';' << c.flows << ';' << c.completed << ';'
          << c.throughput_bps << ';' << c.share << ';' << c.jain << ';' << c.fct_p50_s
          << ';' << c.fct_p95_s << ';' << c.fct_p99_s << ';' << c.fct_mean_s << ';'
          << c.slowdown_p50 << ';' << c.slowdown_p95 << ';' << c.slowdown_p99 << '\n';
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

}  // namespace elephant::exp
