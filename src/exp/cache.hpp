#pragma once

#include <atomic>
#include <filesystem>
#include <mutex>
#include <optional>

#include "exp/runner.hpp"

namespace elephant::exp {

/// On-disk result cache: one small key=value file per (config, seed) run
/// under the results directory (ELEPHANT_RESULTS_DIR, default ./results).
///
/// All figure benches and the Table 3 bench draw from the same 810-cell
/// matrix, so caching lets them share runs instead of re-simulating — and
/// makes re-running a bench after a crash cheap.
class ResultCache {
 public:
  explicit ResultCache(std::filesystem::path dir);

  /// The process-wide cache rooted at the env-configured directory.
  static ResultCache& global();

  [[nodiscard]] std::optional<ExperimentResult> load(const ExperimentConfig& cfg) const;
  void store(const ExperimentResult& result);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }
  /// Disable persistence (used by tests).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Lifetime load() outcomes (telemetry; relaxed counters, any thread).
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries found corrupt (checksum mismatch or mangled fields) and moved
  /// aside to `<entry>.corrupt` for post-mortem instead of silently deleted.
  [[nodiscard]] std::uint64_t quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }
  /// store() attempts that failed to persist (write error or rename failure).
  [[nodiscard]] std::uint64_t store_failures() const {
    return store_failures_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::filesystem::path path_for(const ExperimentConfig& cfg) const;
  [[nodiscard]] std::optional<ExperimentResult> load_impl(const ExperimentConfig& cfg) const;
  /// Move a corrupt entry to `<path>.corrupt` (best effort: plain remove if
  /// the rename fails) so the cell regenerates while the evidence survives.
  void quarantine(const std::filesystem::path& path) const;

  std::filesystem::path dir_;
  bool enabled_ = true;
  mutable std::mutex mu_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
  mutable std::atomic<std::uint64_t> store_failures_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};  ///< unique per-store tmp suffix
};

}  // namespace elephant::exp
