#pragma once

#include <filesystem>
#include <mutex>
#include <optional>

#include "exp/runner.hpp"

namespace elephant::exp {

/// On-disk result cache: one small key=value file per (config, seed) run
/// under the results directory (ELEPHANT_RESULTS_DIR, default ./results).
///
/// All figure benches and the Table 3 bench draw from the same 810-cell
/// matrix, so caching lets them share runs instead of re-simulating — and
/// makes re-running a bench after a crash cheap.
class ResultCache {
 public:
  explicit ResultCache(std::filesystem::path dir);

  /// The process-wide cache rooted at the env-configured directory.
  static ResultCache& global();

  [[nodiscard]] std::optional<ExperimentResult> load(const ExperimentConfig& cfg) const;
  void store(const ExperimentResult& result);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }
  /// Disable persistence (used by tests).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  [[nodiscard]] std::filesystem::path path_for(const ExperimentConfig& cfg) const;

  std::filesystem::path dir_;
  bool enabled_ = true;
  mutable std::mutex mu_;
};

}  // namespace elephant::exp
