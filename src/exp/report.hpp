#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace elephant::exp {

/// Inputs to `elephant report`: the sweep manifest (required) plus the
/// per-worker heartbeat journals. An empty `metrics_paths` auto-discovers
/// every `metrics*.jsonl` sitting next to the manifest.
struct ReportOptions {
  std::filesystem::path manifest_path;
  std::vector<std::filesystem::path> metrics_paths;
  std::size_t top_n = 10;  ///< rows in the slowest/episode rankings
};

/// Per-worker attribution, reconstructed from the manifest's claim lines and
/// (when a metrics journal is found) that worker's final heartbeat snapshot.
struct ReportWorker {
  std::string id;
  std::size_t cells = 0;   ///< successful completions attributed to this worker
  std::size_t claims = 0;  ///< claim lines journaled by this worker
  std::size_t steals = 0;  ///< claims taken over from another live holder
  double wall_s = 0;       ///< Σ journaled cell wall time
  double elapsed_s = 0;    ///< heartbeat elapsed (0 when no journal matched)
  double utilization = 0;  ///< wall_s / elapsed_s (0 when elapsed unknown)
};

/// One merged profiler phase (prof.* histograms folded across every journal).
struct ReportPhase {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0;
  double mean_s = 0;
};

/// One cell row in the slowest / most-unfair rankings.
struct ReportCellRow {
  std::string id;
  std::string worker;
  std::string status;
  double wall_s = 0;
  double episodes = 0;       ///< mean episode count per repetition
  double worst_jain = 1.0;   ///< worst windowed Jain across the cell's episodes
  std::uint32_t victim = 0;  ///< victim flow id at the worst window
  std::string cause;         ///< dominant-cause tag of the worst episode
};

/// The merged forensics view of one (possibly multi-worker) sweep: manifest
/// line history + per-worker metrics journals + per-cell episode summaries,
/// rendered as `elephant-report-v1` JSON or human markdown.
struct SweepSummary {
  std::string manifest;
  std::size_t cells_total = 0;  ///< distinct ids with a terminal journal line
  std::size_t completed = 0;    ///< ok + retried (latest terminal per id)
  std::size_t failed = 0;       ///< failed + timed out
  std::size_t claims = 0;       ///< total claim lines
  std::size_t steals = 0;       ///< lease takeovers
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0;  ///< hits / (hits + misses), 0 when neither
  double wall_s_total = 0;    ///< Σ journaled cell wall time, all workers
  std::vector<ReportWorker> workers;
  std::vector<ReportPhase> phases;          ///< prof.* + sweep.cell_wall_s
  std::vector<ReportCellRow> slowest;       ///< by wall_s, descending
  std::vector<ReportCellRow> episode_cells; ///< by worst_jain, ascending
};

/// Merge the sweep artifacts into one summary. Returns false (with a message
/// in *error) when the manifest is unreadable or contains no parseable line;
/// missing or torn metrics journals degrade gracefully (their fields stay 0).
[[nodiscard]] bool build_report(const ReportOptions& opt, SweepSummary* out,
                                std::string* error);

/// Serialize as the machine-readable `elephant-report-v1` JSON document.
[[nodiscard]] std::string render_report_json(const SweepSummary& r);

/// Render the human-readable markdown companion.
[[nodiscard]] std::string render_report_markdown(const SweepSummary& r);

}  // namespace elephant::exp
