#pragma once

// Pieces shared between the single-threaded runner (runner.cpp) and the
// sharded runner (sharded_runner.cpp). Internal to src/exp.

#include <chrono>
#include <cstdint>

#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace elephant::net {
class Port;
}

namespace elephant::exp {

class FlowFactory;

namespace detail {

/// Dumbbell parameters for one cell: the bottleneck knobs plus the RTT
/// rescaling rules, and the topology seed — the first (and only) draw this
/// helper takes from the cell RNG, in both engines, so the draw order is
/// preserved across the refactor.
[[nodiscard]] net::DumbbellConfig make_dumbbell_config(const ExperimentConfig& cfg,
                                                       sim::Rng& rng);

/// Everything after the event loop, shared verbatim by both engines:
/// per-flow results, fairness/utilization, telemetry publication, per-class
/// aggregation, and the post-run invariant checks.
[[nodiscard]] ExperimentResult finalize_experiment(
    const ExperimentConfig& cfg, sim::Time duration, FlowFactory& factory,
    net::Port& bottleneck, std::uint64_t events_executed,
    std::chrono::steady_clock::time_point wall_start);

/// The bounded-lag parallel engine behind run_experiment when cfg.shards > 1
/// (sharded_runner.cpp).
[[nodiscard]] ExperimentResult run_sharded_experiment(const ExperimentConfig& cfg);

/// Process-lifetime peak resident set in bytes (getrusage ru_maxrss), or 0
/// where the platform doesn't report it. Published as the mem.peak_rss_bytes
/// gauge at run finalization.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace detail
}  // namespace elephant::exp
