#include "exp/result_digest.hpp"

#include <cstdio>
#include <cstring>

#include "trace/sinks.hpp"

namespace elephant::exp {

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

std::uint64_t metrics_digest(const ExperimentResult& res) {
  // Field order is part of the contract: the golden digests in
  // tests/determinism_digest_test.cpp were captured with exactly this fold.
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto fold = trace::DigestSink::fold;
  h = fold(h, bits(res.sender_bps[0]));
  h = fold(h, bits(res.sender_bps[1]));
  h = fold(h, bits(res.jain2));
  h = fold(h, bits(res.utilization));
  h = fold(h, res.retx_segments);
  h = fold(h, res.rtos);
  h = fold(h, res.bottleneck.enqueued);
  h = fold(h, res.bottleneck.dequeued);
  h = fold(h, res.bottleneck.dropped_overflow);
  h = fold(h, res.bottleneck.dropped_early);
  h = fold(h, res.bottleneck.bytes_enqueued);
  for (const FlowResult& f : res.flows) {
    h = fold(h, bits(f.throughput_bps));
    h = fold(h, f.retx_segments);
    h = fold(h, f.rtos);
    h = fold(h, bits(f.srtt_ms));
  }
  return h;
}

std::vector<std::string> diff_results(const ExperimentResult& a, const ExperimentResult& b) {
  std::vector<std::string> out;
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  auto diff_f64 = [&](const std::string& name, double va, double vb) {
    if (bits(va) != bits(vb)) out.push_back(name + ": " + num(va) + " != " + num(vb));
  };
  auto diff_u64 = [&](const std::string& name, std::uint64_t va, std::uint64_t vb) {
    if (va != vb) out.push_back(name + ": " + std::to_string(va) + " != " + std::to_string(vb));
  };

  diff_f64("sender_bps[0]", a.sender_bps[0], b.sender_bps[0]);
  diff_f64("sender_bps[1]", a.sender_bps[1], b.sender_bps[1]);
  diff_f64("jain2", a.jain2, b.jain2);
  diff_f64("utilization", a.utilization, b.utilization);
  diff_u64("retx_segments", a.retx_segments, b.retx_segments);
  diff_u64("rtos", a.rtos, b.rtos);
  diff_u64("bottleneck.enqueued", a.bottleneck.enqueued, b.bottleneck.enqueued);
  diff_u64("bottleneck.dequeued", a.bottleneck.dequeued, b.bottleneck.dequeued);
  diff_u64("bottleneck.dropped_overflow", a.bottleneck.dropped_overflow,
           b.bottleneck.dropped_overflow);
  diff_u64("bottleneck.dropped_early", a.bottleneck.dropped_early, b.bottleneck.dropped_early);
  diff_u64("bottleneck.bytes_enqueued", a.bottleneck.bytes_enqueued, b.bottleneck.bytes_enqueued);
  diff_u64("n_flows", a.flows.size(), b.flows.size());
  const std::size_t n = a.flows.size() < b.flows.size() ? a.flows.size() : b.flows.size();
  for (std::size_t i = 0; i < n; ++i) {
    const FlowResult& fa = a.flows[i];
    const FlowResult& fb = b.flows[i];
    const std::string p = "flow[" + std::to_string(i) + "].";
    diff_f64(p + "throughput_bps", fa.throughput_bps, fb.throughput_bps);
    diff_u64(p + "retx_segments", fa.retx_segments, fb.retx_segments);
    diff_u64(p + "rtos", fa.rtos, fb.rtos);
    diff_f64(p + "srtt_ms", fa.srtt_ms, fb.srtt_ms);
  }
  return out;
}

}  // namespace elephant::exp
