#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace elephant::exp {

/// FNV-1a digest over the behaviorally meaningful fields of a finished run:
/// per-side throughputs, Jain index, utilization, aggregate retransmit/RTO
/// counts, the bottleneck queue counters, and every flow's throughput,
/// retransmits, RTOs and smoothed RTT (doubles by bit pattern).
///
/// events_executed and wall_seconds are deliberately excluded: the former
/// counts engine-internal timer wakeups (which may change across engine
/// versions without the simulation behaving differently), the latter is
/// wall-clock noise.
///
/// This is THE metrics digest: the golden determinism tests, the snapshot
/// round-trip tests, `elephant run --check-digest`, and the explorer's
/// replay verification all fold exactly these fields in exactly this order,
/// so their values are directly comparable.
[[nodiscard]] std::uint64_t metrics_digest(const ExperimentResult& res);

/// Field-level comparison of two results over the same fields the digest
/// folds. Returns one human-readable line per differing field ("jain2:
/// 0.98… != 0.97…"), empty when the results digest equal. Used to localize
/// a --check-digest or round-trip mismatch instead of reporting two opaque
/// hashes.
[[nodiscard]] std::vector<std::string> diff_results(const ExperimentResult& a,
                                                    const ExperimentResult& b);

}  // namespace elephant::exp
