#pragma once

#include <functional>
#include <vector>

#include "cca/arena.hpp"
#include "exp/config.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/slab.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "workload/workload.hpp"

namespace elephant::obs {
struct TcpMetrics;
}  // namespace elephant::obs

namespace elephant::exp {

class FlowFactory;

/// One instantiated flow plus the workload bookkeeping the runner needs to
/// aggregate per-class results after the run. Endpoints are raw pointers
/// into the factory's slabs (stable for the factory's lifetime), not owned
/// here — FlowInstance is plain data the completion/on-off thunks can use
/// as their context without any heap-allocated closure.
struct FlowInstance {
  tcp::TcpSender* sender = nullptr;
  tcp::TcpReceiver* receiver = nullptr;
  FlowFactory* owner = nullptr;  ///< back-pointer for static callback thunks
  const workload::TrafficClass* traffic = nullptr;  ///< null in the legacy path
  int side = 0;
  int cls = -1;  ///< index into WorkloadSpec::classes; -1 in the legacy path
  workload::ClassKind kind = workload::ClassKind::kElephant;
  std::uint64_t transfer_bytes = 0;  ///< 0 = unbounded
  sim::Time start_time = sim::Time::zero();
  sim::Rng app_rng{1};  ///< on/off think-time and burst-size stream
  sim::Scheduler* lane = nullptr;  ///< scheduler owning this flow's events
};

/// Where one flow's endpoints live: the lane scheduler its events run on,
/// the hosts its sender/receiver attach to, and the (per-lane) TCP telemetry
/// bundle. The single-threaded path places every flow on the cell scheduler
/// and the dumbbell's paper hosts; a sharded run places flow i on worker
/// lane i mod shards with that lane's private hosts.
struct FlowSite {
  sim::Scheduler* sched = nullptr;
  net::Host* client = nullptr;
  net::Host* server = nullptr;
  const obs::TcpMetrics* metrics = nullptr;
};

/// Maps (flow index, side) to a FlowSite. Called once per flow during
/// construction, in flow-index order, on a single thread.
using FlowPlacer = std::function<FlowSite(std::size_t flow_index, int side)>;

/// Instantiates every flow of an experiment cell from its WorkloadSpec.
///
/// Two construction paths:
///  - Default (empty) workload: byte-for-byte the historical two-sender
///    elephant setup — same object construction order and the same draws, in
///    the same order, from the shared cell RNG, so the golden-digest
///    determinism tests hold across the refactor.
///  - Non-default workload: each traffic class draws arrivals, sizes, and
///    per-flow CCA seeds from its own RNG sub-stream (sim::derive_seed of the
///    cell seed and the class index), so adding or editing one class never
///    perturbs another class's randomness. kFlowStart records are emitted per
///    flow, and finite flows emit kFlowEnd on completion.
///
/// Storage: flows, senders, receivers, and CCA state live in per-type slabs
/// (sim::Slab / cca::CcaArena) — three in-place constructions per flow into
/// contiguous chunks instead of three unique_ptr heap objects plus a
/// make_cca allocation plus std::function closures. The run's per-ACK walks
/// touch slab-dense memory, and the runner iterates flows by slab index.
///
/// The factory must outlive the scheduler run: on/off sources re-arm
/// themselves through callbacks that point back into it.
class FlowFactory {
 public:
  /// `metrics` (optional) is attached to every sender — including flows
  /// spawned lazily by Poisson arrivals mid-run — and must outlive the run.
  FlowFactory(sim::Scheduler& sched, net::Dumbbell& net, const ExperimentConfig& cfg,
              sim::Rng& cell_rng, const obs::TcpMetrics* metrics = nullptr);

  /// Sharded construction: endpoint placement is delegated to `placer`.
  /// Flow construction order — and therefore every draw from `cell_rng` and
  /// the class sub-streams — is identical to the single-lane constructor
  /// regardless of how the placer scatters the flows, which is what makes a
  /// fixed shard count bit-reproducible. Construction runs single-threaded
  /// before the lanes start.
  FlowFactory(FlowPlacer placer, const ExperimentConfig& cfg, sim::Rng& cell_rng);

  FlowFactory(const FlowFactory&) = delete;
  FlowFactory& operator=(const FlowFactory&) = delete;

  [[nodiscard]] std::size_t size() const { return flows_.size(); }
  /// Flows are appended in construction order and never erased mid-run, so
  /// slab indices 0..size()-1 are dense and iteration by index walks
  /// contiguous chunk memory.
  [[nodiscard]] const FlowInstance& flow(std::size_t i) const {
    return flows_[static_cast<std::uint32_t>(i)];
  }
  [[nodiscard]] FlowInstance& flow(std::size_t i) {
    return flows_[static_cast<std::uint32_t>(i)];
  }

  /// Heap bytes pinned by the per-flow state slabs (flow records, senders,
  /// receivers, CCA state) — the denominator-free half of the RSS-per-flow
  /// telemetry. Excludes scoreboard windows; see scoreboard_peak_bytes().
  [[nodiscard]] std::size_t arena_bytes() const {
    return flows_.bytes() + senders_.bytes() + receivers_.bytes() + ccas_.bytes();
  }
  /// High-water of *concurrently live* scoreboard window bytes across every
  /// flow (a shared ledger updated on grow/release). Completed flows release
  /// their windows, so this — not the sum of per-flow peaks — is what bounds
  /// a many-flow cell's memory.
  [[nodiscard]] std::size_t scoreboard_peak_bytes() const {
    return scoreboard_ledger_.peak;
  }

  /// Snapshot every flow's transport state in slab (construction) order
  /// (sim::Snapshottable contract): per flow, the on/off app RNG, the
  /// sender (scoreboard + CCA included), and the receiver. The flow set is
  /// fixed at construction — even Poisson arrivals are instantiated
  /// up-front with future start times — so the stored count is a
  /// cross-check, never a resize. The shared scoreboard ledger stays exact
  /// through Scoreboard::load's swap accounting.
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

 private:
  void build(sim::Rng& cell_rng);
  void build_legacy(sim::Rng& cell_rng);
  void build_workload();
  void build_class(int ci, const workload::TrafficClass& tc);
  FlowInstance& spawn(int ci, const workload::TrafficClass& tc, int side, sim::Time start,
                      std::uint64_t bytes, std::uint64_t cca_seed, std::uint64_t app_seed);
  [[nodiscard]] FlowSite site_for(std::size_t flow_index, int side);

  /// Static callback thunks: a FlowInstance* is the whole closure.
  static void flow_complete_thunk(void* ctx);
  static void app_idle_thunk(void* ctx);

  sim::Scheduler* sched_ = nullptr;  ///< null when a placer supplies lanes
  net::Dumbbell* net_ = nullptr;     ///< null when a placer supplies hosts
  FlowPlacer placer_;
  const ExperimentConfig& cfg_;
  const obs::TcpMetrics* metrics_ = nullptr;

  // Per-type arenas. Declaration order matters for teardown: flows_ (plain
  // data) first is fine anywhere, but senders_ must be destroyed before
  // ccas_ (senders hold raw CongestionControl*), i.e. declared after it.
  cca::CcaArena ccas_;
  sim::Slab<tcp::TcpReceiver> receivers_;
  sim::Slab<tcp::TcpSender> senders_;
  sim::Slab<FlowInstance> flows_;
  tcp::ScoreboardLedger scoreboard_ledger_;  ///< shared live-window account
};

}  // namespace elephant::exp
