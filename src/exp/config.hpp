#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqm/factory.hpp"
#include "cca/congestion_control.hpp"
#include "fault/fault.hpp"
#include "obs/episode.hpp"
#include "sim/time.hpp"
#include "workload/workload.hpp"

namespace elephant::trace {
class Tracer;
}

namespace elephant::sim {
class ChoiceHook;
}

namespace elephant::obs {
class MetricsRegistry;
}

namespace elephant::exp {

/// One cell of the paper's 810-configuration matrix (Table 1):
/// a CCA pair, an AQM, a buffer size in BDP units, and a bottleneck rate.
struct ExperimentConfig {
  cca::CcaKind cca1 = cca::CcaKind::kBbrV1;  ///< sender node 1 (vs ...)
  cca::CcaKind cca2 = cca::CcaKind::kCubic;  ///< sender node 2
  aqm::AqmKind aqm = aqm::AqmKind::kFifo;
  double buffer_bdp = 2.0;          ///< router1 queue length in BDP multiples
  double bottleneck_bps = 1e9;
  sim::Time rtt = sim::Time::milliseconds(62);  ///< Clemson↔TACC base RTT

  std::uint32_t total_flows = 0;    ///< 0 → paper Table 2 value for the BW
  sim::Time duration = sim::Time::zero();  ///< 0 → scaled default for the BW
  std::uint32_t aggregation = 0;    ///< segments per unit; 0 → default for BW
  std::uint32_t mss = 8900;         ///< jumbo frames, as in the paper
  std::uint64_t seed = 42;
  bool ecn = false;
  bool pace_all = false;            ///< ablation: pace loss-based CCAs too
  double random_loss = 0.0;         ///< Bernoulli loss at the bottleneck (future work)

  /// Bursty two-state loss at the bottleneck (network-anomaly knob, like
  /// random_loss but with loss memory). Part of the cache identity.
  fault::GilbertElliottParams ge_loss{};
  /// Timed network faults (flaps, degradation, reordering, ...) applied to
  /// the bottleneck during the run. Part of the cache identity.
  fault::FaultPlan fault_plan{};

  /// Traffic mix for the cell. Empty = the paper's elephant-only workload
  /// (the historical hard-coded setup, bit-identical to pre-workload builds
  /// and absent from the cache identity). Non-empty workloads are part of
  /// the cache identity via their signature.
  workload::WorkloadSpec workload{};

  /// Worker shards for the in-cell parallel engine (see sim/sharded_engine).
  /// 1 (the default) runs the historical single-threaded path bit-identically
  /// to pre-sharding builds. N > 1 scatters the TCP endpoints over N worker
  /// lanes plus a dedicated network lane for the bottleneck; results are
  /// deterministic per shard count but not bit-identical across counts, so
  /// the value is part of the cache identity (id() appends "-shN" only when
  /// N > 1, preserving existing cache keys and manifests).
  std::uint32_t shards = 1;

  /// Watchdog budgets (0 = unlimited): exceeding either aborts the run with
  /// exp::RunTimeout instead of hanging a sweep worker. Not part of the
  /// cache identity — a timed-out run never produces a cacheable result.
  std::uint64_t max_events = 0;
  double max_wall_seconds = 0;
  /// Post-run invariant checks (byte/packet conservation at the bottleneck,
  /// cwnd floor, finite throughput); violations throw InvariantViolation.
  bool check_invariants = true;

  /// Optional flight recorder attached to every sender and the bottleneck
  /// port for the run. Not part of the experiment identity: excluded from
  /// id(), and run_averaged() bypasses the result cache when set (a cached
  /// result would produce no trace).
  trace::Tracer* tracer = nullptr;
  /// Bottleneck queue-depth sampling period when tracing (kQueueDepth).
  sim::Time trace_queue_interval = sim::Time::milliseconds(100);
  /// Arm the periodic queue-depth sampler when tracing. Counterexample
  /// replay (mc::Explorer::replay) turns it off: the sampler's weak timer
  /// joins same-instant tie sets and would shift the recorded choice-point
  /// sequence, so a traced replay must run with the exact event population
  /// the untraced exploration had. Excluded from id() like the tracer.
  bool trace_queue_sampling = true;

  /// Optional telemetry registry the run publishes into (see obs/metrics.hpp):
  /// scheduler gauges, bottleneck sojourn histogram, TCP srtt/cwnd, and
  /// run-boundary counters from the existing stats structs. Pure observation
  /// like the tracer and likewise excluded from id(); unlike the tracer it
  /// does NOT disable the result cache — a cache hit simply contributes no
  /// samples. Histograms are written lock-free by the simulation thread, so
  /// each concurrently running cell needs its own registry (merge afterwards).
  obs::MetricsRegistry* metrics = nullptr;

  /// Fairness-episode detection (see obs/episode.hpp): when enabled, the run
  /// samples per-flow delivered bytes and bottleneck evidence every window_s
  /// of simulated time and segments the run into share-imbalance episodes.
  /// Pure observation — sampling adds no scheduler events, so digests are
  /// bit-identical with it on or off — but the *result* gains an episodes
  /// vector, so the detection knobs (enabled/window/thresholds) are part of
  /// the cache identity (id() appends "-ep..." only when enabled, preserving
  /// existing cache keys); the jsonl sink path is presentation-only and
  /// excluded.
  obs::EpisodeOptions episodes{};

  /// Optional model-checking choice hook (see sim/choice.hpp) installed on
  /// the cell scheduler for the run: the explorer steers scheduler ties and
  /// probabilistic fault outcomes through it. Null (the default) leaves
  /// every choice on its seeded branch — mc off changes nothing. Excluded
  /// from id() like the tracer: an explored run is never cached.
  sim::ChoiceHook* choice_hook = nullptr;

  /// BDP in bytes (paper Eq. 1): BW · RTT / 8.
  [[nodiscard]] double bdp_bytes() const { return bottleneck_bps * rtt.sec() / 8.0; }
  [[nodiscard]] double buffer_bytes() const { return buffer_bdp * bdp_bytes(); }

  /// Paper Table 2: total flows per bottleneck bandwidth.
  [[nodiscard]] static std::uint32_t paper_flows_for(double bps);
  /// TSO/GRO-style aggregation factor used to keep event counts tractable.
  [[nodiscard]] static std::uint32_t default_aggregation_for(double bps);
  /// Default (shortened) run length per bandwidth; scaled by
  /// ELEPHANT_DURATION_SCALE (paper: 200 s everywhere).
  [[nodiscard]] static sim::Time default_duration_for(double bps);

  [[nodiscard]] std::uint32_t effective_flows() const {
    return total_flows != 0 ? total_flows : paper_flows_for(bottleneck_bps);
  }
  [[nodiscard]] std::uint32_t effective_aggregation() const {
    return aggregation != 0 ? aggregation : default_aggregation_for(bottleneck_bps);
  }
  [[nodiscard]] sim::Time effective_duration() const;

  [[nodiscard]] bool intra() const { return cca1 == cca2; }

  /// Stable identifier used as the on-disk cache key.
  [[nodiscard]] std::string id() const;
  /// Human-readable label, e.g. "bbr1 vs cubic, fifo, 2 BDP, 1G".
  [[nodiscard]] std::string label() const;
};

/// Short bandwidth label ("100M", "25G").
[[nodiscard]] std::string bw_label(double bps);

/// The paper's axis values.
[[nodiscard]] const std::vector<double>& paper_bandwidths();          // 5 rates
[[nodiscard]] const std::vector<double>& paper_buffer_bdps();         // 6 sizes
[[nodiscard]] const std::vector<aqm::AqmKind>& paper_aqms();          // 3 AQMs
/// The 9 CCA pairings (5 inter vs CUBIC incl. CUBIC-CUBIC, 4 intra).
[[nodiscard]] const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& paper_cca_pairs();

}  // namespace elephant::exp
