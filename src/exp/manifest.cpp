#include "exp/manifest.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace elephant::exp {

namespace {

/// JSON string escape for the id/error fields (quotes, backslashes, control
/// characters); everything else passes through.
void append_escaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Locate `"key":` and return a pointer to the value text; nullptr if absent.
const char* find_value(const std::string& line, const char* key) {
  char pat[48];
  std::snprintf(pat, sizeof(pat), "\"%s\":", key);
  const std::size_t pos = line.find(pat);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + std::strlen(pat);
}

bool get_number(const std::string& line, const char* key, double* out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || !std::isfinite(d)) return false;
  *out = d;
  return true;
}

bool get_string(const std::string& line, const char* key, std::string* out) {
  const char* v = find_value(line, key);
  if (v == nullptr || *v != '"') return false;
  ++v;
  out->clear();
  for (; *v != '\0'; ++v) {
    if (*v == '"') return true;
    if (*v == '\\' && v[1] != '\0') {
      ++v;
      switch (*v) {
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        default:
          *out += *v;  // \" \\ \/ and (lossily) \uXXXX
      }
      continue;
    }
    *out += *v;
  }
  return false;  // unterminated: torn line
}

}  // namespace

SweepManifest::SweepManifest(std::filesystem::path path) : path_(std::move(path)) {
  std::error_code ec;
  if (path_.has_parent_path()) std::filesystem::create_directories(path_.parent_path(), ec);
  out_.open(path_, std::ios::app);
}

std::string SweepManifest::format_line(const ManifestEntry& e) {
  char buf[256];
  std::string line = "{\"i\":";
  line += std::to_string(e.index);
  line += ",\"id\":\"";
  append_escaped(e.id, &line);
  line += "\",\"status\":\"";
  line += to_string(e.status);
  std::snprintf(buf, sizeof(buf),
                "\",\"attempts\":%d,\"reps\":%d,\"s1_bps\":%.17g,\"s2_bps\":%.17g,"
                "\"jain2\":%.17g,\"util\":%.17g,\"retx\":%.17g,\"rtos\":%.17g",
                e.attempts, e.repetitions, e.sender_bps[0], e.sender_bps[1], e.jain2,
                e.utilization, e.retx_segments, e.rtos);
  line += buf;
  if (!e.classes.empty()) {
    // Per-class block only for workload cells, so elephant-only journal
    // lines stay byte-identical to the pre-workload format.
    line += ",\"classes\":[";
    for (std::size_t i = 0; i < e.classes.size(); ++i) {
      const ClassResult& c = e.classes[i];
      if (i != 0) line += ',';
      line += "{\"name\":\"";
      append_escaped(c.name, &line);
      std::snprintf(buf, sizeof(buf),
                    "\",\"flows\":%u,\"done\":%u,\"bps\":%.17g,\"share\":%.17g,"
                    "\"cjain\":%.17g,\"fct_p50\":%.17g,\"fct_p95\":%.17g,"
                    "\"fct_p99\":%.17g,\"fct_mean\":%.17g,\"sd_p50\":%.17g,"
                    "\"sd_p95\":%.17g,\"sd_p99\":%.17g}",
                    c.flows, c.completed, c.throughput_bps, c.share, c.jain, c.fct_p50_s,
                    c.fct_p95_s, c.fct_p99_s, c.fct_mean_s, c.slowdown_p50, c.slowdown_p95,
                    c.slowdown_p99);
      line += buf;
    }
    line += ']';
  }
  line += ",\"error\":\"";
  append_escaped(e.error, &line);
  line += "\"}";
  return line;
}

namespace {

/// Parse the optional `"classes":[{...},...]` block. Torn or malformed
/// blocks fail the whole line (the caller treats it as a torn journal line).
bool parse_classes(const std::string& line, std::vector<ClassResult>* out) {
  const std::size_t key = line.find("\"classes\":[");
  if (key == std::string::npos) return true;  // pre-workload line: no block
  std::size_t pos = key + std::strlen("\"classes\":[");
  while (pos < line.size() && line[pos] != ']') {
    const std::size_t open = line.find('{', pos);
    if (open == std::string::npos) return false;
    const std::size_t close = line.find('}', open);
    if (close == std::string::npos) return false;
    const std::string obj = line.substr(open, close - open + 1);
    ClassResult c;
    double flows, done, bps, share, jain, p50, p95, p99, mean, sd50, sd95, sd99;
    if (!get_string(obj, "name", &c.name) || !get_number(obj, "flows", &flows) ||
        !get_number(obj, "done", &done) || !get_number(obj, "bps", &bps) ||
        !get_number(obj, "share", &share) || !get_number(obj, "cjain", &jain) ||
        !get_number(obj, "fct_p50", &p50) || !get_number(obj, "fct_p95", &p95) ||
        !get_number(obj, "fct_p99", &p99) || !get_number(obj, "fct_mean", &mean) ||
        !get_number(obj, "sd_p50", &sd50) || !get_number(obj, "sd_p95", &sd95) ||
        !get_number(obj, "sd_p99", &sd99)) {
      return false;
    }
    c.flows = static_cast<std::uint32_t>(flows);
    c.completed = static_cast<std::uint32_t>(done);
    c.throughput_bps = bps;
    c.share = share;
    c.jain = jain;
    c.fct_p50_s = p50;
    c.fct_p95_s = p95;
    c.fct_p99_s = p99;
    c.fct_mean_s = mean;
    c.slowdown_p50 = sd50;
    c.slowdown_p95 = sd95;
    c.slowdown_p99 = sd99;
    out->push_back(std::move(c));
    pos = close + 1;
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  return pos < line.size();  // must have stopped on the closing ']'
}

}  // namespace

bool SweepManifest::parse_line(const std::string& line, ManifestEntry* out) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  ManifestEntry e;
  std::string status;
  double idx, attempts, reps, s1, s2, jain, util, retx, rtos;
  if (!get_string(line, "id", &e.id) || e.id.empty()) return false;
  if (!get_string(line, "status", &status) ||
      !run_status_from_string(status, &e.status)) {
    return false;
  }
  if (!get_number(line, "i", &idx) || !get_number(line, "attempts", &attempts) ||
      !get_number(line, "reps", &reps) || !get_number(line, "s1_bps", &s1) ||
      !get_number(line, "s2_bps", &s2) || !get_number(line, "jain2", &jain) ||
      !get_number(line, "util", &util) || !get_number(line, "retx", &retx) ||
      !get_number(line, "rtos", &rtos)) {
    return false;
  }
  if (!parse_classes(line, &e.classes)) return false;
  (void)get_string(line, "error", &e.error);  // optional
  e.index = static_cast<std::size_t>(idx);
  e.attempts = static_cast<int>(attempts);
  e.repetitions = static_cast<int>(reps);
  e.sender_bps[0] = s1;
  e.sender_bps[1] = s2;
  e.jain2 = jain;
  e.utilization = util;
  e.retx_segments = retx;
  e.rtos = rtos;
  *out = std::move(e);
  return true;
}

std::unordered_map<std::string, ManifestEntry> SweepManifest::load(
    const std::filesystem::path& path) {
  std::unordered_map<std::string, ManifestEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    ManifestEntry e;
    if (parse_line(line, &e)) entries[e.id] = std::move(e);
  }
  return entries;
}

void SweepManifest::append(const ManifestEntry& e) {
  std::lock_guard lock(mu_);
  if (!out_.is_open()) return;
  out_ << format_line(e) << '\n';
  out_.flush();
}

}  // namespace elephant::exp
