#include "exp/manifest.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace elephant::exp {

namespace {

/// JSON string escape for the id/error fields (quotes, backslashes, control
/// characters); everything else passes through.
void append_escaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Locate `"key":` and return a pointer to the value text; nullptr if absent.
const char* find_value(const std::string& line, const char* key) {
  char pat[48];
  std::snprintf(pat, sizeof(pat), "\"%s\":", key);
  const std::size_t pos = line.find(pat);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + std::strlen(pat);
}

bool get_number(const std::string& line, const char* key, double* out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || !std::isfinite(d)) return false;
  *out = d;
  return true;
}

/// Parse exactly four hex digits at `p` into `*out`. Returns false on any
/// non-hex character (including an early NUL from a torn line).
bool parse_hex4(const char* p, std::uint32_t* out) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = p[i];
    std::uint32_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint32_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<std::uint32_t>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

/// UTF-8 encode one code point (caller guarantees a valid scalar value).
void append_utf8(std::uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

bool get_string(const std::string& line, const char* key, std::string* out) {
  const char* v = find_value(line, key);
  if (v == nullptr || *v != '"') return false;
  ++v;
  out->clear();
  for (; *v != '\0'; ++v) {
    if (*v == '"') return true;
    if (*v == '\\' && v[1] != '\0') {
      ++v;
      switch (*v) {
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          // \uXXXX escapes decode to UTF-8 so ids round-trip through
          // --resume byte-identically. A lone or malformed surrogate half
          // has no UTF-8 spelling; fail the line rather than corrupt the id.
          std::uint32_t cp;
          if (!parse_hex4(v + 1, &cp)) return false;
          v += 4;
          if (cp >= 0xDC00 && cp <= 0xDFFF) return false;  // stray low half
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            std::uint32_t lo;
            if (v[1] != '\\' || v[2] != 'u' || !parse_hex4(v + 3, &lo) ||
                lo < 0xDC00 || lo > 0xDFFF) {
              return false;  // high half without a matching low half
            }
            v += 6;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(cp, out);
          break;
        }
        default:
          *out += *v;  // \" \\ \/
      }
      continue;
    }
    *out += *v;
  }
  return false;  // unterminated: torn line
}

/// printf onto the end of `*line`, growing the buffer to whatever the format
/// needs. A truncated manifest line is unparseable on --resume, so truncation
/// must be impossible rather than merely unlikely: vsnprintf reports the
/// required length and the append retries with an exact-size buffer whenever
/// the stack buffer is too small.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string* line, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n < 0) return;  // encoding error: nothing sane to append
  if (static_cast<std::size_t>(n) < sizeof(buf)) {
    line->append(buf, static_cast<std::size_t>(n));
    return;
  }
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  va_start(args, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, args);
  va_end(args);
  big.resize(static_cast<std::size_t>(n));
  *line += big;
}

}  // namespace

SweepManifest::SweepManifest(std::filesystem::path path) : path_(std::move(path)) {
  std::error_code ec;
  if (path_.has_parent_path()) std::filesystem::create_directories(path_.parent_path(), ec);
  // Raw O_APPEND fd instead of an ofstream: every append is one write(2)
  // whose return value we can check (an ofstream swallows short writes into
  // badbit long after the fact), and the fd doubles as the flock handle that
  // serializes appends across worker processes.
  // O_RDWR, not O_WRONLY: the work queue folds journal lines back through
  // this fd (pread), and tail repair peeks at the last byte before appending.
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) fail(std::string("open failed: ") + std::strerror(errno));
}

SweepManifest::~SweepManifest() {
  if (fd_ >= 0) ::close(fd_);
}

SweepManifest::ScopedLock::ScopedLock(SweepManifest& m) : m_(m) {
  m_.mu_.lock();
  if (m_.fd_ >= 0) {
    while (::flock(m_.fd_, LOCK_EX) != 0 && errno == EINTR) {
    }
  }
}

SweepManifest::ScopedLock::~ScopedLock() {
  if (m_.fd_ >= 0) ::flock(m_.fd_, LOCK_UN);
  m_.mu_.unlock();
}

void SweepManifest::fail(const std::string& what) {
  if (!failed_) error_ = what;  // keep the first failure; later ones are noise
  failed_ = true;
}

bool SweepManifest::ok() const {
  std::lock_guard lock(mu_);
  return fd_ >= 0 && !failed_;
}

std::string SweepManifest::last_error() const {
  std::lock_guard lock(mu_);
  return error_;
}

namespace {

/// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

bool SweepManifest::append_locked(const ManifestEntry& e) {
  if (fd_ < 0) {
    fail("manifest not open");
    return false;
  }
  // Tail repair: a writer SIGKILLed mid-write leaves a partial line with no
  // newline. Appending after it would merge our line into the fragment and
  // parse_line could then stitch fields from both — terminate the fragment
  // first so it becomes one clean, unparseable (skipped) line of its own.
  struct stat st;
  if (::fstat(fd_, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd_, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      if (!write_all(fd_, "\n", 1)) {
        fail(std::string("tail repair write failed: ") + std::strerror(errno));
        return false;
      }
    }
  }
  std::string line = format_line(e);
  line += '\n';
  if (!write_all(fd_, line.data(), line.size())) {
    fail(std::string("append failed: ") + std::strerror(errno));
    return false;
  }
  // fsync per line: the lease protocol's correctness leans on "a journaled
  // completion survives the writer's death". One fsync per cell (seconds of
  // simulation) is noise.
  if (::fsync(fd_) != 0) {
    fail(std::string("fsync failed: ") + std::strerror(errno));
    return false;
  }
  return true;
}

std::string SweepManifest::format_line(const ManifestEntry& e) {
  std::string line = "{\"i\":";
  line += std::to_string(e.index);
  line += ",\"id\":\"";
  append_escaped(e.id, &line);
  line += "\",\"status\":\"";
  line += to_string(e.status);
  appendf(&line,
          "\",\"attempts\":%d,\"reps\":%d,\"s1_bps\":%.17g,\"s2_bps\":%.17g,"
          "\"jain2\":%.17g,\"util\":%.17g,\"retx\":%.17g,\"rtos\":%.17g",
          e.attempts, e.repetitions, e.sender_bps[0], e.sender_bps[1], e.jain2,
          e.utilization, e.retx_segments, e.rtos);
  if (e.status == RunStatus::kClaimed) {
    // Lease fields ride only on claim lines so every completion line stays
    // byte-identical to the pre-lease journal format.
    line += ",\"worker\":\"";
    append_escaped(e.worker, &line);
    appendf(&line, "\",\"lease_until\":%.3f", e.lease_until_unix_s);
  }
  if (!e.classes.empty()) {
    // Per-class block only for workload cells, so elephant-only journal
    // lines stay byte-identical to the pre-workload format.
    line += ",\"classes\":[";
    for (std::size_t i = 0; i < e.classes.size(); ++i) {
      const ClassResult& c = e.classes[i];
      if (i != 0) line += ',';
      line += "{\"name\":\"";
      append_escaped(c.name, &line);
      appendf(&line,
              "\",\"flows\":%u,\"done\":%u,\"bps\":%.17g,\"share\":%.17g,"
              "\"cjain\":%.17g,\"fct_p50\":%.17g,\"fct_p95\":%.17g,"
              "\"fct_p99\":%.17g,\"fct_mean\":%.17g,\"sd_p50\":%.17g,"
              "\"sd_p95\":%.17g,\"sd_p99\":%.17g}",
              c.flows, c.completed, c.throughput_bps, c.share, c.jain, c.fct_p50_s,
              c.fct_p95_s, c.fct_p99_s, c.fct_mean_s, c.slowdown_p50, c.slowdown_p95,
              c.slowdown_p99);
    }
    line += ']';
  }
  // Both blocks below are conditional so lines from builds (or cells)
  // without them stay byte-identical to the earlier journal format.
  if (e.wall_s > 0) appendf(&line, ",\"wall_s\":%.17g", e.wall_s);
  if (e.episodes > 0) {
    appendf(&line,
            ",\"episodes\":{\"count\":%.17g,\"worst_jain\":%.17g,"
            "\"worst_t\":%.17g,\"victim\":%u,\"cause\":\"",
            e.episodes, e.episode_worst_jain, e.episode_worst_t_s,
            e.episode_victim);
    append_escaped(e.episode_cause, &line);
    line += "\"}";
  }
  line += ",\"error\":\"";
  append_escaped(e.error, &line);
  line += "\"}";
  return line;
}

namespace {

/// Parse the optional `"classes":[{...},...]` block. Torn or malformed
/// blocks fail the whole line (the caller treats it as a torn journal line).
bool parse_classes(const std::string& line, std::vector<ClassResult>* out) {
  const std::size_t key = line.find("\"classes\":[");
  if (key == std::string::npos) return true;  // pre-workload line: no block
  std::size_t pos = key + std::strlen("\"classes\":[");
  while (pos < line.size() && line[pos] != ']') {
    const std::size_t open = line.find('{', pos);
    if (open == std::string::npos) return false;
    const std::size_t close = line.find('}', open);
    if (close == std::string::npos) return false;
    const std::string obj = line.substr(open, close - open + 1);
    ClassResult c;
    double flows, done, bps, share, jain, p50, p95, p99, mean, sd50, sd95, sd99;
    if (!get_string(obj, "name", &c.name) || !get_number(obj, "flows", &flows) ||
        !get_number(obj, "done", &done) || !get_number(obj, "bps", &bps) ||
        !get_number(obj, "share", &share) || !get_number(obj, "cjain", &jain) ||
        !get_number(obj, "fct_p50", &p50) || !get_number(obj, "fct_p95", &p95) ||
        !get_number(obj, "fct_p99", &p99) || !get_number(obj, "fct_mean", &mean) ||
        !get_number(obj, "sd_p50", &sd50) || !get_number(obj, "sd_p95", &sd95) ||
        !get_number(obj, "sd_p99", &sd99)) {
      return false;
    }
    c.flows = static_cast<std::uint32_t>(flows);
    c.completed = static_cast<std::uint32_t>(done);
    c.throughput_bps = bps;
    c.share = share;
    c.jain = jain;
    c.fct_p50_s = p50;
    c.fct_p95_s = p95;
    c.fct_p99_s = p99;
    c.fct_mean_s = mean;
    c.slowdown_p50 = sd50;
    c.slowdown_p95 = sd95;
    c.slowdown_p99 = sd99;
    out->push_back(std::move(c));
    pos = close + 1;
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  return pos < line.size();  // must have stopped on the closing ']'
}

}  // namespace

bool SweepManifest::parse_line(const std::string& line, ManifestEntry* out) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  ManifestEntry e;
  std::string status;
  double idx, attempts, reps, s1, s2, jain, util, retx, rtos;
  if (!get_string(line, "id", &e.id) || e.id.empty()) return false;
  if (!get_string(line, "status", &status) ||
      !run_status_from_string(status, &e.status)) {
    return false;
  }
  if (!get_number(line, "i", &idx) || !get_number(line, "attempts", &attempts) ||
      !get_number(line, "reps", &reps) || !get_number(line, "s1_bps", &s1) ||
      !get_number(line, "s2_bps", &s2) || !get_number(line, "jain2", &jain) ||
      !get_number(line, "util", &util) || !get_number(line, "retx", &retx) ||
      !get_number(line, "rtos", &rtos)) {
    return false;
  }
  if (e.status == RunStatus::kClaimed) {
    // A claim without its lease fields is a torn line, not an old format:
    // claims and the fields were introduced together.
    if (!get_string(line, "worker", &e.worker) ||
        !get_number(line, "lease_until", &e.lease_until_unix_s)) {
      return false;
    }
  }
  if (!parse_classes(line, &e.classes)) return false;
  (void)get_number(line, "wall_s", &e.wall_s);  // optional
  // Optional episode summary block. Quotes inside the (escaped) error string
  // cannot spell the unescaped search key, so a plain find is safe — same
  // argument as the classes block.
  const std::size_t ep = line.find("\"episodes\":{");
  if (ep != std::string::npos) {
    const std::size_t open = ep + std::strlen("\"episodes\":");
    const std::size_t close = line.find('}', open);
    if (close == std::string::npos) return false;  // torn block
    const std::string obj = line.substr(open, close - open + 1);
    double victim = 0;
    if (!get_number(obj, "count", &e.episodes) ||
        !get_number(obj, "worst_jain", &e.episode_worst_jain) ||
        !get_number(obj, "worst_t", &e.episode_worst_t_s) ||
        !get_number(obj, "victim", &victim) ||
        !get_string(obj, "cause", &e.episode_cause)) {
      return false;
    }
    e.episode_victim = static_cast<std::uint32_t>(victim);
  }
  (void)get_string(line, "error", &e.error);  // optional
  e.index = static_cast<std::size_t>(idx);
  e.attempts = static_cast<int>(attempts);
  e.repetitions = static_cast<int>(reps);
  e.sender_bps[0] = s1;
  e.sender_bps[1] = s2;
  e.jain2 = jain;
  e.utilization = util;
  e.retx_segments = retx;
  e.rtos = rtos;
  *out = std::move(e);
  return true;
}

std::unordered_map<std::string, ManifestEntry> SweepManifest::load(
    const std::filesystem::path& path) {
  std::unordered_map<std::string, ManifestEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    ManifestEntry e;
    if (!parse_line(line, &e)) continue;
    if (e.status == RunStatus::kClaimed) {
      // Success is terminal: a stale claim (a worker that raced a finished
      // cell, or a steal journaled just before the victim's completion
      // landed) must not hide a recorded result from --resume.
      const auto it = entries.find(e.id);
      if (it != entries.end() && it->second.success()) continue;
    }
    entries[e.id] = std::move(e);
  }
  return entries;
}

void SweepManifest::append(const ManifestEntry& e) {
  ScopedLock lock(*this);
  (void)append_locked(e);  // failure is latched; callers poll ok()
}

}  // namespace elephant::exp
