#pragma once

#include <sys/types.h>

#include <cstddef>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exp/manifest.hpp"

namespace elephant::obs {
class MetricsRegistry;
}

namespace elephant::exp {

/// Crash-tolerant shared work queue over one sweep manifest, usable by any
/// number of `elephant sweep` processes (and threads within them) attacking
/// the same cell list on one host.
///
/// Protocol (all journal writes under the manifest's flock + fsync):
///  - claim:    append a kClaimed line {id, worker, lease_until = now+lease}.
///              Eligible cells are those with no recorded success, no live
///              lease, and no terminal outcome from the current run.
///  - renew:    a background thread re-appends the claim with a fresh expiry
///              every lease/3 while the cell runs, so a slow cell is never
///              mistaken for a dead worker's.
///  - steal:    a claim whose lease_until has passed is treated as unclaimed;
///              the next claimer takes it over (the dead-worker path).
///  - complete: append the terminal entry. Under the lock the tail is
///              re-read first; if another worker's success already landed
///              (a lease was stolen from a live-but-slow worker and both
///              finished) the duplicate is dropped, so every cell gets
///              exactly one completion line per converged sweep.
///
/// Resume semantics: with `resume`, the journal is folded from the start —
/// prior successes are done (fetch them via latest()), prior failures are
/// retryable, live claims are honored. Without `resume` the fold starts at
/// the current end of file, so pre-existing records are invisible (today's
/// "re-run everything" behavior) while concurrently started workers still
/// coordinate. Multi-worker invocations should therefore pass --resume; a
/// late-joining worker without it would re-run cells finished before it
/// started.
class LeasedWorkQueue {
 public:
  struct Options {
    std::string worker_id;  ///< must be unique per live worker process
    double lease_s = 60;
    bool resume = false;
    /// Optional telemetry: sweep.leases_{acquired,renewed,stolen,released},
    /// sweep.completions_dropped counters and the sweep.leases_held gauge.
    obs::MetricsRegistry* metrics = nullptr;
  };

  enum class Claim {
    kClaimed,     ///< *index holds the claimed cell; run it, then complete()
    kWaitLeased,  ///< nothing claimable now, but live leases remain — poll
    kAllDone,     ///< every cell has a terminal outcome (or resumed success)
  };

  /// `cells` is the sweep's (config index, config id) list in run order.
  LeasedWorkQueue(std::filesystem::path manifest_path,
                  std::vector<std::pair<std::size_t, std::string>> cells,
                  Options options);
  ~LeasedWorkQueue();

  LeasedWorkQueue(const LeasedWorkQueue&) = delete;
  LeasedWorkQueue& operator=(const LeasedWorkQueue&) = delete;

  /// Try to lease the first eligible cell (sweep order). Thread-safe.
  [[nodiscard]] Claim try_claim(std::size_t* index);

  /// Journal a terminal outcome for a cell this worker leased. Returns false
  /// if the completion was dropped because another worker's success already
  /// landed (the caller's result is identical by determinism — not an error).
  bool complete(const ManifestEntry& e);

  /// Expire all leases this worker still holds (appends zero-expiry claims)
  /// so other workers can take the cells over immediately. Used on abort
  /// paths; a graceful drain finishes its cells and has nothing to release.
  void release_all();

  /// Re-fold any journal lines other workers appended since the last claim,
  /// so latest() reflects the freshest cross-worker state.
  void refresh();

  /// Latest journal view of one cell (claims folded, success terminal).
  /// Includes prior entries only under resume. Null if never recorded.
  [[nodiscard]] std::optional<ManifestEntry> latest(const std::string& id) const;

  [[nodiscard]] SweepManifest& manifest() { return manifest_; }
  [[nodiscard]] const std::string& worker_id() const { return options_.worker_id; }
  /// Manifest still writable (claims/completions are landing durably).
  [[nodiscard]] bool healthy() const { return manifest_.ok(); }

 private:
  enum class Phase { kUnclaimed, kLeased, kDone };
  struct CellState {
    Phase phase = Phase::kUnclaimed;
    bool success = false;
    std::string worker;      ///< current lease holder (kLeased)
    double lease_until = 0;  ///< unix seconds (kLeased)
  };

  /// Fold journal lines appended since the cursor into the cell states.
  /// Caller holds mu_ and the manifest ScopedLock. `startup` applies the
  /// resume rule (failures retryable) to the initial snapshot.
  void fold_new_locked(bool startup);
  void apply_locked(const ManifestEntry& e, bool startup);
  void renew_loop();
  void publish_held_locked();

  SweepManifest manifest_;
  Options options_;
  std::vector<std::pair<std::size_t, std::string>> cells_;
  std::unordered_map<std::string, std::size_t> slot_by_id_;  ///< id → cells_ index

  mutable std::mutex mu_;
  std::vector<CellState> state_;                      ///< parallel to cells_
  std::unordered_map<std::string, ManifestEntry> latest_;
  off_t cursor_ = 0;  ///< next unread journal byte (complete lines only)
  std::set<std::size_t> held_;  ///< cells_ slots this worker currently leases

  std::condition_variable renew_cv_;
  bool stopping_ = false;
  std::thread renewer_;
};

}  // namespace elephant::exp
