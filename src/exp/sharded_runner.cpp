// run_experiment for cfg.shards > 1: the bounded-lag parallel engine.
//
// Layout: worker lanes 0..N-1 each own ~1/N of the TCP senders/receivers
// (flow i lives on lane i mod N) with private access links; lane N is the
// network lane owning both routers, the shaped bottleneck, and the reverse
// trunk, so AQM state and its RNG stay single-threaded. The bounded-lag
// window is the minimum access propagation delay; cross-lane packets travel
// through SPSC mailboxes drained at window boundaries (see
// sim/sharded_engine.hpp for the barrier protocol).
//
// Determinism: all construction (and every RNG draw) happens on one thread
// in the same order as the single-threaded engine; each lane is sequential;
// mailboxes drain in construction order. A fixed shard count is therefore
// bit-reproducible run to run. Different shard counts are distinct
// experiments (per-worker access links change the edge physics), which is
// why the shard count is part of the cache identity.

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "exp/episode_probe.hpp"
#include "exp/flow_factory.hpp"
#include "exp/runner.hpp"
#include "exp/runner_internal.hpp"
#include "exp/status.hpp"
#include "net/sharded_topology.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/sharded_engine.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace elephant::exp::detail {

ExperimentResult run_sharded_experiment(const ExperimentConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();

  const std::size_t workers = cfg.shards;
  sim::ShardedEngine engine(workers + 1);
  const std::size_t net_lane = workers;
  sim::Scheduler& net_sched = engine.lane(net_lane);

  sim::Rng rng(cfg.seed);
  const net::DumbbellConfig topo = make_dumbbell_config(cfg, rng);
  net::ShardedDumbbell net(engine, topo, workers);

  // Faults target the bottleneck, which lives in the network lane; the
  // injector's timers must run there too. Seed draw order matches the
  // single-threaded runner.
  std::optional<fault::FaultInjector> faults;
  if (!cfg.fault_plan.empty()) {
    faults.emplace(net_sched, net.bottleneck(), rng.next_u64(), cfg.tracer);
    faults->install(cfg.fault_plan);
  }

  const sim::Time duration = cfg.effective_duration();

  // Tracing in a sharded run covers the bottleneck only: the tracer is a
  // single-writer ring, and the bottleneck (plus the fault injector) is the
  // one component confined to a single lane. Per-sender records would be
  // written from every worker thread, so they are disabled below by handing
  // the factory a tracer-less config.
  if (cfg.tracer != nullptr) {
    net.set_tracer(cfg.tracer);
    net.bottleneck().start_queue_sampling(cfg.trace_queue_interval);
  }

  // Telemetry: histograms are single-writer, so every lane records into its
  // own registry, merged into cfg.metrics after the lanes join.
  std::deque<obs::MetricsRegistry> lane_regs;
  std::vector<obs::TcpMetrics> lane_tcp(workers);
  obs::QueueMetrics queue_metrics;
  if (cfg.metrics != nullptr) {
    for (std::size_t i = 0; i < workers + 1; ++i) lane_regs.emplace_back();
    for (std::size_t w = 0; w < workers; ++w) {
      lane_tcp[w].cwnd_segments = &lane_regs[w].gauge("tcp.cwnd_segments");
      lane_tcp[w].srtt_s = &lane_regs[w].histogram("tcp.srtt_s");
    }
    queue_metrics.sojourn_s = &lane_regs[net_lane].histogram("queue.sojourn_s");
    net.bottleneck().set_metrics(&queue_metrics);
  }

  ExperimentConfig factory_cfg = cfg;
  factory_cfg.tracer = nullptr;  // per-sender tracing is single-thread only

  FlowFactory factory(
      [&](std::size_t index, int side) {
        const std::size_t w = index % workers;
        FlowSite site;
        site.sched = &engine.lane(w);
        site.client = &net.client(w, side);
        site.server = &net.server(w, side);
        site.metrics = cfg.metrics != nullptr ? &lane_tcp[w] : nullptr;
        return site;
      },
      factory_cfg, rng);

  // Lane/phase profiler: per-(phase, lane) histograms written lock-free by
  // each lane thread, folded into cfg.metrics once the lanes join. Wall-time
  // observation only — lane schedules are untouched.
  std::optional<obs::PhaseProfiler> profiler;
  if (cfg.metrics != nullptr) {
    profiler.emplace(engine.lanes());
    engine.set_profiler(&*profiler);
  }

  // Fairness-episode sampling runs in the window-boundary observer: every
  // lane is parked there, so cross-lane flow state (receiver byte counts,
  // sender cwnd/retx) is safe to read. The observer schedules nothing, so
  // sharded digests stay bit-identical with detection on. Boundaries fire
  // every lookahead window (sub-RTT); the probe downsamples to the
  // configured episode window.
  std::optional<EpisodeProbe> probe;
  sim::Time next_sample = sim::Time::zero();
  if (cfg.episodes.enabled && cfg.episodes.valid()) {
    probe.emplace(cfg, factory, net.bottleneck(), faults ? &*faults : nullptr);
    const sim::Time window = sim::Time::seconds(cfg.episodes.window_s);
    probe->sample(sim::Time::zero());  // baseline
    next_sample = window;
    engine.set_boundary_observer([&engine, &probe, &next_sample, window, net_lane] {
      const sim::Time now = engine.lane(net_lane).now();
      if (now < next_sample) return;
      probe->sample(now);
      while (next_sample <= now) next_sample = next_sample + window;
    });
  }

  sim::Scheduler::RunLimits limits;
  limits.max_events = cfg.max_events;
  limits.max_wall_seconds = cfg.max_wall_seconds;
  const auto stop = engine.run_windows(
      duration, net.lookahead(), limits,
      [&](std::size_t lane) { net.drain_lane(lane, engine.lane(lane)); });
  if (probe) probe->finish(net_sched.now());
  if (stop == sim::Scheduler::StopReason::kEventBudget ||
      stop == sim::Scheduler::StopReason::kWallBudget) {
    const bool events = stop == sim::Scheduler::StopReason::kEventBudget;
    throw RunTimeout("run " + cfg.id() + " exceeded its " +
                     (events ? "event budget (" + std::to_string(cfg.max_events) + " events)"
                             : "wall budget (" + std::to_string(cfg.max_wall_seconds) +
                                   " s)") +
                     " at t=" + net_sched.now().to_string());
  }

  if (cfg.metrics != nullptr) {
    obs::MetricsRegistry& reg = *cfg.metrics;
    for (const obs::MetricsRegistry& local : lane_regs) reg.merge_from(local);
    // Scheduler gauges, published here instead of per run-loop exit (each
    // lane exits run_until once per window): totals over all lanes.
    reg.gauge("sim.events_executed")
        .set(static_cast<double>(engine.total_executed_events()));
    std::size_t depth = 0;
    for (std::size_t i = 0; i < engine.lanes(); ++i) depth += engine.lane(i).pending_events();
    reg.gauge("sim.heap_depth").set(static_cast<double>(depth));
    reg.gauge("sim.heap_peak").set(static_cast<double>(engine.total_peak_pending_events()));
    if (profiler) profiler->publish(reg);
  }

  ExperimentResult res =
      finalize_experiment(cfg, duration, factory, net.bottleneck(),
                          engine.total_executed_events(), wall_start);
  if (probe) {
    res.episodes = probe->episodes();
    if (cfg.metrics != nullptr) {
      cfg.metrics
          ->counter("episodes.count", "Fairness episodes detected across runs")
          .add(res.episodes.size());
      for (const obs::Episode& e : res.episodes) {
        cfg.metrics->histogram("episodes.worst_jain").record(e.worst_jain);
        cfg.metrics->histogram("episodes.duration_s").record(e.end_s - e.start_s);
      }
    }
  }
  return res;
}

}  // namespace elephant::exp::detail
