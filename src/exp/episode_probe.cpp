#include "exp/episode_probe.hpp"

#include <cstdio>

#include "aqm/loss_injector.hpp"
#include "exp/config.hpp"
#include "exp/flow_factory.hpp"
#include "fault/fault.hpp"
#include "fault/gilbert_elliott.hpp"
#include "net/port.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace elephant::exp {

EpisodeProbe::EpisodeProbe(const ExperimentConfig& cfg, FlowFactory& factory,
                           net::Port& bottleneck, const fault::FaultInjector* faults)
    : cfg_(cfg),
      factory_(factory),
      bottleneck_(bottleneck),
      faults_(faults),
      detector_(cfg.episodes) {}

obs::QueueSample EpisodeProbe::queue_sample() const {
  obs::QueueSample qs;
  const aqm::QueueDisc& outer = bottleneck_.qdisc();
  const aqm::QueueStats& stats = outer.stats();
  qs.dropped_overflow = stats.dropped_overflow;
  qs.ecn_marked = stats.ecn_marked;

  // The loss decorators fold their injected drops into dropped_early (one
  // coherent stats view); peel the decorator chain — GE wraps the Bernoulli
  // injector when both are active — to report them as injected evidence and
  // leave dropped_early meaning genuine AQM early drops.
  std::uint64_t injected = 0;
  const aqm::QueueDisc* q = &outer;
  if (const auto* ge = dynamic_cast<const fault::GilbertElliottLoss*>(q)) {
    injected += ge->injected_drops();
    q = &ge->inner();
  }
  if (const auto* li = dynamic_cast<const aqm::LossInjector*>(q)) {
    injected += li->injected_drops();
  }
  qs.dropped_early = stats.dropped_early > injected ? stats.dropped_early - injected : 0;
  // Fault-plan loss bursts act at the link, not the qdisc: the port counts
  // those drops separately and they never appear in the queue stats.
  qs.injected_loss = injected + bottleneck_.fault_lost();

  if (faults_ != nullptr) qs.faults_applied = faults_->applied();
  return qs;
}

void EpisodeProbe::sample(sim::Time t) {
  buf_.clear();
  buf_.reserve(factory_.size());
  for (std::size_t i = 0; i < factory_.size(); ++i) {
    const FlowInstance& inst = factory_.flow(i);
    if (inst.kind != workload::ClassKind::kElephant) continue;
    obs::FlowSample fs;
    fs.flow = inst.sender->config().flow;
    fs.side = inst.side + 1;  // report 1-based sender sides like the CLI does
    fs.delivered_bytes = inst.receiver->delivered_bytes();
    fs.retx_segments = inst.sender->retx_segments();
    fs.rtos = inst.sender->stats().rtos;
    fs.cwnd_segments = inst.sender->cc().cwnd_segments();
    const bool started = inst.start_time <= t;
    const bool gone = inst.sender->completed() && inst.sender->completion_time() <= t;
    fs.active = started && !gone;
    buf_.push_back(fs);
  }
  detector_.sample(t.sec(), buf_, queue_sample());
}

void EpisodeProbe::finish(sim::Time t) {
  detector_.finish(t.sec());
  const std::string& path = cfg_.episodes.jsonl_path;
  if (!path.empty() && !detector_.write_jsonl(path, cfg_.id())) {
    std::fprintf(stderr, "[episodes] warning: failed to write %s\n", path.c_str());
  }
}

}  // namespace elephant::exp
