#include "exp/config.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace elephant::exp {

namespace {

double duration_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("ELEPHANT_DURATION_SCALE")) {
      const double v = std::atof(env);
      if (v > 0) return v;
    }
    return 1.0;
  }();
  return scale;
}

}  // namespace

std::uint32_t ExperimentConfig::paper_flows_for(double bps) {
  if (bps <= 100e6) return 2;
  if (bps <= 500e6) return 10;
  if (bps <= 1e9) return 20;
  if (bps <= 10e9) return 200;
  return 500;
}

std::uint32_t ExperimentConfig::default_aggregation_for(double bps) {
  if (bps <= 100e6) return 1;
  if (bps <= 500e6) return 2;
  if (bps <= 1e9) return 4;
  if (bps <= 10e9) return 8;
  return 16;
}

sim::Time ExperimentConfig::default_duration_for(double bps) {
  // Shorter at high BW: cost per simulated second grows with the rate, and
  // the per-flow window (hence CUBIC's recovery time K) shrinks with the
  // Table 2 flow counts, so steady state arrives sooner. 100M keeps the
  // paper's full 200 s — its two-flow CUBIC sawtooth is the slowest to
  // converge and the cheapest to simulate.
  double secs = 200;
  if (bps > 100e6) secs = 120;
  if (bps > 500e6) secs = 90;
  if (bps > 1e9) secs = 60;
  if (bps > 10e9) secs = 45;
  return sim::Time::seconds(secs * duration_scale());
}

sim::Time ExperimentConfig::effective_duration() const {
  return duration != sim::Time::zero() ? duration : default_duration_for(bottleneck_bps);
}

std::string bw_label(double bps) {
  char buf[32];
  if (bps >= 1e9) {
    const double g = bps / 1e9;
    if (g == std::floor(g)) {
      std::snprintf(buf, sizeof(buf), "%.0fG", g);
    } else {
      std::snprintf(buf, sizeof(buf), "%.1fG", g);
    }
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fM", bps / 1e6);
  }
  return buf;
}

std::string ExperimentConfig::id() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s_vs_%s-%s-bdp%g-%s-f%u-d%g-a%u-r%g-s%llu%s%s%s",
                cca::to_string(cca1).c_str(), cca::to_string(cca2).c_str(),
                aqm::to_string(aqm).c_str(), buffer_bdp, bw_label(bottleneck_bps).c_str(),
                effective_flows(), effective_duration().sec(), effective_aggregation(),
                rtt.ms(), static_cast<unsigned long long>(seed), ecn ? "-ecn" : "",
                pace_all ? "-paceall" : "",
                random_loss > 0 ? ("-loss" + std::to_string(random_loss)).c_str() : "");
  std::string out = buf;
  if (ge_loss.enabled()) {
    std::snprintf(buf, sizeof(buf), "-ge%g,%g,%g,%g", ge_loss.p_good_to_bad,
                  ge_loss.p_bad_to_good, ge_loss.loss_good, ge_loss.loss_bad);
    out += buf;
  }
  if (!fault_plan.empty()) out += "-fault" + fault_plan.signature();
  if (!workload.is_paper_default()) out += "-wl[" + workload.signature() + "]";
  if (shards > 1) out += "-sh" + std::to_string(shards);
  if (episodes.enabled) {
    std::snprintf(buf, sizeof(buf), "-ep%g,%g,%g", episodes.window_s,
                  episodes.enter_jain, episodes.exit_jain);
    out += buf;
  }
  return out;
}

std::string ExperimentConfig::label() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s vs %s, %s, %g BDP, %s",
                cca::to_string(cca1).c_str(), cca::to_string(cca2).c_str(),
                aqm::to_string(aqm).c_str(), buffer_bdp, bw_label(bottleneck_bps).c_str());
  std::string out = buf;
  if (!workload.is_paper_default()) {
    out += " +";
    for (const workload::TrafficClass& c : workload.classes) {
      if (c.kind == workload::ClassKind::kElephant) continue;
      out += " " + c.name;
    }
  }
  return out;
}

const std::vector<double>& paper_bandwidths() {
  static const std::vector<double> v = {100e6, 500e6, 1e9, 10e9, 25e9};
  return v;
}

const std::vector<double>& paper_buffer_bdps() {
  static const std::vector<double> v = {0.5, 1, 2, 4, 8, 16};
  return v;
}

const std::vector<aqm::AqmKind>& paper_aqms() {
  static const std::vector<aqm::AqmKind> v = {aqm::AqmKind::kFifo, aqm::AqmKind::kFqCodel,
                                              aqm::AqmKind::kRed};
  return v;
}

const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& paper_cca_pairs() {
  using K = cca::CcaKind;
  static const std::vector<std::pair<K, K>> v = {
      {K::kBbrV1, K::kCubic}, {K::kBbrV2, K::kCubic}, {K::kHtcp, K::kCubic},
      {K::kReno, K::kCubic},  {K::kCubic, K::kCubic}, {K::kBbrV1, K::kBbrV1},
      {K::kBbrV2, K::kBbrV2}, {K::kHtcp, K::kHtcp},   {K::kReno, K::kReno},
  };
  return v;
}

}  // namespace elephant::exp
