#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>

namespace elephant::exp {

/// Sweep ETA from an EWMA of per-cell wall times.
///
/// The naive estimate `elapsed * remaining / done` answers "how long would
/// the rest take at the sweep's lifetime-average rate". That is badly wrong
/// in two common regimes: a warm cache front-loads near-instant cells (the
/// average says the sweep is nearly free right up until the first real cell
/// lands), and heterogeneous matrices mix 100 Mb/s cells with 10 Gb/s ones
/// whose event counts differ by orders of magnitude. An exponentially
/// weighted moving average of recent cell durations tracks the *current*
/// cost regime instead, and dividing by the worker count accounts for
/// parallel drain.
///
/// Thread-safe: cells complete on pool threads while the heartbeat thread
/// reads the estimate.
class EtaEstimator {
 public:
  /// Smoothing factor: ~the last 1/alpha cells dominate the estimate. 0.3
  /// adapts within a handful of cells after a regime change (cache hits →
  /// misses) while still averaging out per-cell jitter.
  static constexpr double kAlpha = 0.3;

  /// Record one completed cell's wall time (seconds). Non-positive samples
  /// are clamped to 0 (cache hits legitimately take ~microseconds).
  void record_cell(double wall_s) {
    const double s = wall_s > 0 ? wall_s : 0;
    std::lock_guard lock(mu_);
    ewma_s_ = samples_ == 0 ? s : kAlpha * s + (1 - kAlpha) * ewma_s_;
    ++samples_;
  }

  /// Number of cells recorded so far.
  [[nodiscard]] std::size_t samples() const {
    std::lock_guard lock(mu_);
    return samples_;
  }

  /// Current per-cell EWMA (seconds); 0 until the first sample.
  [[nodiscard]] double cell_ewma_s() const {
    std::lock_guard lock(mu_);
    return ewma_s_;
  }

  /// Estimated seconds to finish `total - done` remaining cells with
  /// `workers` parallel lanes (clamped to >= 1). 0 until the first sample
  /// or once nothing remains.
  [[nodiscard]] double eta_s(std::size_t done, std::size_t total,
                             int workers) const {
    if (done >= total) return 0;
    std::lock_guard lock(mu_);
    if (samples_ == 0) return 0;
    const double lanes = static_cast<double>(std::max(workers, 1));
    return ewma_s_ * static_cast<double>(total - done) / lanes;
  }

 private:
  mutable std::mutex mu_;
  double ewma_s_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace elephant::exp
