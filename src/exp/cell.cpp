#include "exp/cell.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "exp/runner_internal.hpp"
#include "exp/status.hpp"
#include "trace/trace.hpp"

namespace elephant::exp {

Cell::Cell(const ExperimentConfig& cfg)
    : cfg_(cfg), wall_start_(std::chrono::steady_clock::now()), rng_(cfg_.seed) {
  assert(cfg_.shards <= 1 && "Cell is the single-shard engine; use run_experiment");

  // Everything below mirrors the historical run_experiment() body exactly —
  // same construction order, same RNG draws — so a Cell-driven run is
  // bit-identical to pre-Cell builds (golden digests pin it).
  const net::DumbbellConfig topo = detail::make_dumbbell_config(cfg_, rng_);
  net_.emplace(sched_, topo);

  // The injector owns the RNG behind probabilistic link perturbations, so it
  // must outlive the scheduler run. Constructed (and the seed stream
  // consumed) only when a plan exists, keeping fault-free runs bit-identical
  // to pre-fault-subsystem results.
  if (!cfg_.fault_plan.empty()) {
    faults_.emplace(sched_, net_->bottleneck(), rng_.next_u64(), cfg_.tracer);
    faults_->install(cfg_.fault_plan);
  }

  duration_ = cfg_.effective_duration();

  if (cfg_.tracer != nullptr) {
    net_->set_tracer(cfg_.tracer);
    if (cfg_.trace_queue_sampling) {
      net_->bottleneck().start_queue_sampling(cfg_.trace_queue_interval);
    }
  }

  // Telemetry wiring: register the run's handles once (this may allocate),
  // then hand the components raw pointers so steady-state updates never
  // touch the registry. The bundles live on the cell for the whole run.
  if (cfg_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *cfg_.metrics;
    sched_metrics_.events_executed =
        &reg.gauge("sim.events_executed", "Events executed by the cell scheduler");
    sched_metrics_.heap_depth = &reg.gauge("sim.heap_depth");
    sched_metrics_.heap_peak =
        &reg.gauge("sim.heap_peak", "High-water mark of the event heap");
    sched_metrics_.run_wall_s = &reg.histogram(
        "prof.sched_run_s", "Wall seconds per scheduler run_until call");
    sched_.set_metrics(&sched_metrics_);
    queue_metrics_.sojourn_s = &reg.histogram(
        "queue.sojourn_s", "Bottleneck queueing delay per dequeued packet");
    net_->bottleneck().set_metrics(&queue_metrics_);
    tcp_metrics_.cwnd_segments = &reg.gauge("tcp.cwnd_segments");
    tcp_metrics_.srtt_s = &reg.histogram("tcp.srtt_s");
    prof_run_s_ = &reg.histogram("prof.cell_run_s",
                                 "Wall seconds in the cell's event loop");
    prof_finalize_s_ = &reg.histogram(
        "prof.cell_finalize_s", "Wall seconds aggregating and checking results");
  }

  // All flows — legacy elephants or a full WorkloadSpec mix — come from the
  // factory; it must outlive the run (on/off sources call back into it).
  factory_.emplace(sched_, *net_, cfg_, rng_,
                   cfg_.metrics != nullptr ? &tcp_metrics_ : nullptr);

  // Fairness-episode sampling reads flows and the bottleneck qdisc but never
  // schedules anything, so constructing the probe is digest-neutral.
  if (cfg_.episodes.enabled && cfg_.episodes.valid()) {
    probe_.emplace(cfg_, *factory_, net_->bottleneck(),
                   faults_ ? &*faults_ : nullptr);
  }

  // Installed after setup: construction consumes no choice points, and a
  // null hook (the default) leaves every branch on its seeded outcome.
  sched_.set_choice_hook(cfg_.choice_hook);

  if (cfg_.metrics != nullptr) {
    cfg_.metrics
        ->histogram("prof.cell_setup_s",
                    "Wall seconds constructing topology, faults, and flows")
        .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              wall_start_)
                    .count());
  }
}

sim::Scheduler::StopReason Cell::run_chunk(std::uint64_t max_events, sim::Time deadline) {
  sim::Scheduler::RunLimits limits;
  limits.max_events = max_events;
  return sched_.run_until(deadline, limits);
}

ExperimentResult Cell::run_to_completion() {
  const auto throw_on_budget = [this](sim::Scheduler::StopReason stop) {
    if (stop == sim::Scheduler::StopReason::kEventBudget ||
        stop == sim::Scheduler::StopReason::kWallBudget) {
      const bool events = stop == sim::Scheduler::StopReason::kEventBudget;
      throw RunTimeout("run " + cfg_.id() + " exceeded its " +
                       (events ? "event budget (" + std::to_string(cfg_.max_events) +
                                     " events)"
                               : "wall budget (" + std::to_string(cfg_.max_wall_seconds) +
                                     " s)") +
                       " at t=" + sched_.now().to_string());
    }
  };

  {
    obs::ScopedTimer run_timer(prof_run_s_);
    if (!probe_) {
      // Historical path: one run_until call for the whole cell.
      sim::Scheduler::RunLimits limits;
      limits.max_events = cfg_.max_events;
      limits.max_wall_seconds = cfg_.max_wall_seconds;
      throw_on_budget(sched_.run_until(duration_, limits));
    } else {
      // Episode sampling: chop the run into detector windows. Re-invoking
      // run_until at a window boundary schedules nothing and executes the
      // same events in the same order, so digests stay bit-identical to the
      // single-call path; the watchdog budgets are carried across chunks so
      // their collective meaning is unchanged.
      const sim::Time window = sim::Time::seconds(cfg_.episodes.window_s);
      const auto run_start = std::chrono::steady_clock::now();
      probe_->sample(sim::Time::zero());  // baseline
      sim::Time next = window;
      for (;;) {
        sim::Scheduler::RunLimits limits;
        if (cfg_.max_events > 0) {
          const std::uint64_t used = sched_.executed_events();
          limits.max_events = cfg_.max_events > used ? cfg_.max_events - used : 1;
        }
        if (cfg_.max_wall_seconds > 0) {
          const double rest =
              cfg_.max_wall_seconds -
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            run_start)
                  .count();
          limits.max_wall_seconds = rest > 0.01 ? rest : 0.01;
        }
        const auto stop = sched_.run_until(std::min(duration_, next), limits);
        throw_on_budget(stop);
        probe_->sample(sched_.now());
        if (stop == sim::Scheduler::StopReason::kQueueExhausted ||
            sched_.now() >= duration_) {
          break;
        }
        next = next + window;
      }
      probe_->finish(sched_.now());
    }
  }
  return finalize();
}

ExperimentResult Cell::finalize() {
  obs::ScopedTimer finalize_timer(prof_finalize_s_);
  ExperimentResult res =
      detail::finalize_experiment(cfg_, duration_, *factory_, net_->bottleneck(),
                                  sched_.executed_events(), wall_start_);
  if (probe_) {
    res.episodes = probe_->episodes();
    if (cfg_.metrics != nullptr) {
      cfg_.metrics
          ->counter("episodes.count",
                    "Fairness episodes detected across runs")
          .add(res.episodes.size());
      for (const obs::Episode& e : res.episodes) {
        cfg_.metrics->histogram("episodes.worst_jain").record(e.worst_jain);
        cfg_.metrics->histogram("episodes.duration_s").record(e.end_s - e.start_s);
      }
    }
  }
  return res;
}

void Cell::serialize_components(sim::SnapshotWriter& w) const {
  w.put_pod(rng_);
  net_->save(w);
  if (faults_) faults_->save(w);
  factory_->save(w);
}

sim::Snapshot Cell::snapshot() const {
  assert(cfg_.tracer == nullptr && "snapshots require tracing off (traces cannot rewind)");
  sim::Snapshot s;
  s.scheduler = sched_.save_image();
  sim::SnapshotWriter w;
  serialize_components(w);
  s.components = std::move(w).take();
  s.state_hash = sim::fnv1a_bytes(sim::fnv1a_fold(sim::kFnvOffset, sched_.state_hash()),
                                  s.components.data(), s.components.size());
  return s;
}

void Cell::restore(const sim::Snapshot& snap) {
  sched_.restore_image(snap.scheduler);
  sim::SnapshotReader r(snap.components);
  r.get_pod(&rng_);
  net_->load(r);
  if (faults_) faults_->load(r);
  factory_->load(r);
  assert(r.exhausted() && "snapshot layout mismatch: trailing bytes after restore");
}

std::uint64_t Cell::state_hash() const {
  sim::SnapshotWriter w;
  serialize_components(w);
  return sim::fnv1a_bytes(sim::fnv1a_fold(sim::kFnvOffset, sched_.state_hash()),
                          w.bytes().data(), w.bytes().size());
}

}  // namespace elephant::exp
