#include "exp/cell.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "exp/runner_internal.hpp"
#include "exp/status.hpp"
#include "trace/trace.hpp"

namespace elephant::exp {

Cell::Cell(const ExperimentConfig& cfg)
    : cfg_(cfg), wall_start_(std::chrono::steady_clock::now()), rng_(cfg_.seed) {
  assert(cfg_.shards <= 1 && "Cell is the single-shard engine; use run_experiment");

  // Everything below mirrors the historical run_experiment() body exactly —
  // same construction order, same RNG draws — so a Cell-driven run is
  // bit-identical to pre-Cell builds (golden digests pin it).
  const net::DumbbellConfig topo = detail::make_dumbbell_config(cfg_, rng_);
  net_.emplace(sched_, topo);

  // The injector owns the RNG behind probabilistic link perturbations, so it
  // must outlive the scheduler run. Constructed (and the seed stream
  // consumed) only when a plan exists, keeping fault-free runs bit-identical
  // to pre-fault-subsystem results.
  if (!cfg_.fault_plan.empty()) {
    faults_.emplace(sched_, net_->bottleneck(), rng_.next_u64(), cfg_.tracer);
    faults_->install(cfg_.fault_plan);
  }

  duration_ = cfg_.effective_duration();

  if (cfg_.tracer != nullptr) {
    net_->set_tracer(cfg_.tracer);
    if (cfg_.trace_queue_sampling) {
      net_->bottleneck().start_queue_sampling(cfg_.trace_queue_interval);
    }
  }

  // Telemetry wiring: register the run's handles once (this may allocate),
  // then hand the components raw pointers so steady-state updates never
  // touch the registry. The bundles live on the cell for the whole run.
  if (cfg_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *cfg_.metrics;
    sched_metrics_.events_executed = &reg.gauge("sim.events_executed");
    sched_metrics_.heap_depth = &reg.gauge("sim.heap_depth");
    sched_metrics_.heap_peak = &reg.gauge("sim.heap_peak");
    sched_.set_metrics(&sched_metrics_);
    queue_metrics_.sojourn_s = &reg.histogram("queue.sojourn_s");
    net_->bottleneck().set_metrics(&queue_metrics_);
    tcp_metrics_.cwnd_segments = &reg.gauge("tcp.cwnd_segments");
    tcp_metrics_.srtt_s = &reg.histogram("tcp.srtt_s");
  }

  // All flows — legacy elephants or a full WorkloadSpec mix — come from the
  // factory; it must outlive the run (on/off sources call back into it).
  factory_.emplace(sched_, *net_, cfg_, rng_,
                   cfg_.metrics != nullptr ? &tcp_metrics_ : nullptr);

  // Installed after setup: construction consumes no choice points, and a
  // null hook (the default) leaves every branch on its seeded outcome.
  sched_.set_choice_hook(cfg_.choice_hook);
}

sim::Scheduler::StopReason Cell::run_chunk(std::uint64_t max_events, sim::Time deadline) {
  sim::Scheduler::RunLimits limits;
  limits.max_events = max_events;
  return sched_.run_until(deadline, limits);
}

ExperimentResult Cell::run_to_completion() {
  sim::Scheduler::RunLimits limits;
  limits.max_events = cfg_.max_events;
  limits.max_wall_seconds = cfg_.max_wall_seconds;
  const auto stop = sched_.run_until(duration_, limits);
  if (stop == sim::Scheduler::StopReason::kEventBudget ||
      stop == sim::Scheduler::StopReason::kWallBudget) {
    const bool events = stop == sim::Scheduler::StopReason::kEventBudget;
    throw RunTimeout("run " + cfg_.id() + " exceeded its " +
                     (events ? "event budget (" + std::to_string(cfg_.max_events) + " events)"
                             : "wall budget (" + std::to_string(cfg_.max_wall_seconds) +
                                   " s)") +
                     " at t=" + sched_.now().to_string());
  }
  return finalize();
}

ExperimentResult Cell::finalize() {
  return detail::finalize_experiment(cfg_, duration_, *factory_, net_->bottleneck(),
                                     sched_.executed_events(), wall_start_);
}

void Cell::serialize_components(sim::SnapshotWriter& w) const {
  w.put_pod(rng_);
  net_->save(w);
  if (faults_) faults_->save(w);
  factory_->save(w);
}

sim::Snapshot Cell::snapshot() const {
  assert(cfg_.tracer == nullptr && "snapshots require tracing off (traces cannot rewind)");
  sim::Snapshot s;
  s.scheduler = sched_.save_image();
  sim::SnapshotWriter w;
  serialize_components(w);
  s.components = std::move(w).take();
  s.state_hash = sim::fnv1a_bytes(sim::fnv1a_fold(sim::kFnvOffset, sched_.state_hash()),
                                  s.components.data(), s.components.size());
  return s;
}

void Cell::restore(const sim::Snapshot& snap) {
  sched_.restore_image(snap.scheduler);
  sim::SnapshotReader r(snap.components);
  r.get_pod(&rng_);
  net_->load(r);
  if (faults_) faults_->load(r);
  factory_->load(r);
  assert(r.exhausted() && "snapshot layout mismatch: trailing bytes after restore");
}

std::uint64_t Cell::state_hash() const {
  sim::SnapshotWriter w;
  serialize_components(w);
  return sim::fnv1a_bytes(sim::fnv1a_fold(sim::kFnvOffset, sched_.state_hash()),
                          w.bytes().data(), w.bytes().size());
}

}  // namespace elephant::exp
