// `elephant report`: merge the durable artifacts of one sweep — the manifest
// journal (claims + completions), the per-worker heartbeat journals, and the
// per-cell fairness-episode summaries — into a single forensics document.
//
// Attribution walks the manifest's full line history, not the latest-per-id
// view: a completion belongs to the worker whose claim preceded it, a claim
// on a cell another worker still holds is a lease steal, and re-journaled
// terminal lines (retries, takeovers) resolve to the latest one per id.

#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "exp/manifest.hpp"
#include "exp/status.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace elephant::exp {

namespace {

constexpr const char* kLocalWorker = "local";

struct CellState {
  ManifestEntry latest;      ///< latest terminal line for the id
  bool has_terminal = false;
  std::string holder;        ///< worker of the live claim, "" when none
  std::string completed_by;  ///< worker attributed to `latest`
};

void appendf(std::string* out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  *out += buf;
}

void append_quoted(const std::string& s, std::string* out) {
  *out += '"';
  obs::append_json_escaped(s, out);
  *out += '"';
}

ReportCellRow make_row(const CellState& st) {
  ReportCellRow row;
  row.id = st.latest.id;
  row.worker = st.completed_by;
  row.status = to_string(st.latest.status);
  row.wall_s = st.latest.wall_s;
  row.episodes = st.latest.episodes;
  row.worst_jain = st.latest.episode_worst_jain;
  row.victim = st.latest.episode_victim;
  row.cause = st.latest.episode_cause;
  return row;
}

}  // namespace

bool build_report(const ReportOptions& opt, SweepSummary* out, std::string* error) {
  *out = SweepSummary{};
  out->manifest = opt.manifest_path.string();

  std::ifstream in(opt.manifest_path);
  if (!in) {
    if (error != nullptr) *error = "cannot open manifest: " + opt.manifest_path.string();
    return false;
  }

  // Pass 1: manifest line history → per-cell attribution + claim/steal tally.
  std::map<std::string, CellState> cells;      // by id
  std::map<std::string, ReportWorker> workers; // by worker id
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    ManifestEntry e;
    if (!SweepManifest::parse_line(line, &e)) continue;  // torn line
    ++parsed;
    if (e.status == RunStatus::kClaimed) {
      ++out->claims;
      ReportWorker& w = workers[e.worker];
      w.id = e.worker;
      ++w.claims;
      CellState& st = cells[e.id];
      if (!st.holder.empty() && st.holder != e.worker) {
        ++out->steals;
        ++w.steals;
      }
      st.holder = e.worker;
    } else {
      CellState& st = cells[e.id];
      st.latest = std::move(e);
      st.has_terminal = true;
      st.completed_by = st.holder.empty() ? kLocalWorker : st.holder;
      st.holder.clear();  // the lease is spent
    }
  }
  if (parsed == 0) {
    if (error != nullptr) {
      *error = "no parseable journal line in " + opt.manifest_path.string();
    }
    return false;
  }

  // Aggregate the latest terminal outcome per cell.
  for (const auto& [id, st] : cells) {
    if (!st.has_terminal) continue;
    ++out->cells_total;
    if (st.latest.success()) {
      ++out->completed;
      ReportWorker& w = workers[st.completed_by];
      w.id = st.completed_by;
      ++w.cells;
      w.wall_s += st.latest.wall_s;
      out->wall_s_total += st.latest.wall_s;
    } else {
      ++out->failed;
    }
    if (st.latest.wall_s > 0) out->slowest.push_back(make_row(st));
    if (st.latest.episodes > 0) out->episode_cells.push_back(make_row(st));
  }

  // Pass 2: per-worker metrics journals, merged into one registry. Journal
  // merge is associative with in-process merge_from (obs_journal_test pins
  // it), so the folded histograms read as if one registry had seen the
  // whole sweep.
  std::vector<std::filesystem::path> journals = opt.metrics_paths;
  if (journals.empty()) {
    const std::filesystem::path dir = opt.manifest_path.has_parent_path()
                                          ? opt.manifest_path.parent_path()
                                          : std::filesystem::path(".");
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const std::string name = it->path().filename().string();
      if (name.rfind("metrics", 0) == 0 && name.size() > 6 &&
          name.compare(name.size() - 6, 6, ".jsonl") == 0) {
        journals.push_back(it->path());
      }
    }
    std::sort(journals.begin(), journals.end());
  }
  obs::MetricsRegistry merged;
  for (const std::filesystem::path& p : journals) {
    obs::JournalSnapshot snap;
    std::string jerr;
    if (!obs::read_final_snapshot(p, &snap, &jerr)) continue;  // degrade
    obs::merge_into(snap, &merged);
    // Worker match: the snapshot's own tag, else derive from the
    // "metrics-<worker>.jsonl" filename, else the single-process journal.
    std::string wid = snap.worker;
    if (wid.empty()) {
      const std::string name = p.filename().string();
      if (name.rfind("metrics-", 0) == 0 && name.size() > 14) {
        wid = name.substr(8, name.size() - 14);
      } else {
        wid = kLocalWorker;
      }
    }
    ReportWorker& w = workers[wid];
    w.id = wid;
    w.elapsed_s = snap.elapsed_s;
  }
  out->cache_hits = merged.counter("sweep.cache_hits").value();
  out->cache_misses = merged.counter("sweep.cache_misses").value();
  if (out->cache_hits + out->cache_misses > 0) {
    out->cache_hit_rate = static_cast<double>(out->cache_hits) /
                          static_cast<double>(out->cache_hits + out->cache_misses);
  }
  {
    std::lock_guard lock(merged.mutex());
    merged.for_each_histogram([&](const std::string& name,
                                  const obs::LogLinHistogram& h) {
      if (h.count() == 0) return;
      if (name.rfind("prof.", 0) != 0 && name != "sweep.cell_wall_s") return;
      ReportPhase ph;
      ph.name = name;
      ph.count = h.count();
      ph.total_s = h.sum();
      ph.mean_s = h.mean();
      out->phases.push_back(std::move(ph));
    });
  }

  for (auto& [id, w] : workers) {
    if (w.elapsed_s > 0) w.utilization = w.wall_s / w.elapsed_s;
    out->workers.push_back(std::move(w));
  }

  std::sort(out->slowest.begin(), out->slowest.end(),
            [](const ReportCellRow& a, const ReportCellRow& b) {
              return a.wall_s != b.wall_s ? a.wall_s > b.wall_s : a.id < b.id;
            });
  if (out->slowest.size() > opt.top_n) out->slowest.resize(opt.top_n);
  std::sort(out->episode_cells.begin(), out->episode_cells.end(),
            [](const ReportCellRow& a, const ReportCellRow& b) {
              return a.worst_jain != b.worst_jain ? a.worst_jain < b.worst_jain
                                                  : a.id < b.id;
            });
  if (out->episode_cells.size() > opt.top_n) out->episode_cells.resize(opt.top_n);
  return true;
}

namespace {

void append_row_json(const ReportCellRow& row, std::string* out) {
  *out += "{\"id\":";
  append_quoted(row.id, out);
  *out += ",\"worker\":";
  append_quoted(row.worker, out);
  *out += ",\"status\":";
  append_quoted(row.status, out);
  appendf(out, ",\"wall_s\":%.17g", row.wall_s);
  appendf(out, ",\"episodes\":%.17g", row.episodes);
  appendf(out, ",\"worst_jain\":%.17g", row.worst_jain);
  appendf(out, ",\"victim\":%.17g", static_cast<double>(row.victim));
  *out += ",\"cause\":";
  append_quoted(row.cause, out);
  *out += '}';
}

}  // namespace

std::string render_report_json(const SweepSummary& r) {
  std::string out = "{\"schema\":\"elephant-report-v1\",\"manifest\":";
  append_quoted(r.manifest, &out);
  out += ",\"cells\":{";
  appendf(&out, "\"total\":%.17g", static_cast<double>(r.cells_total));
  appendf(&out, ",\"completed\":%.17g", static_cast<double>(r.completed));
  appendf(&out, ",\"failed\":%.17g", static_cast<double>(r.failed));
  appendf(&out, ",\"claims\":%.17g", static_cast<double>(r.claims));
  appendf(&out, ",\"steals\":%.17g", static_cast<double>(r.steals));
  appendf(&out, ",\"wall_s_total\":%.17g", r.wall_s_total);
  out += "},\"cache\":{";
  appendf(&out, "\"hits\":%.17g", static_cast<double>(r.cache_hits));
  appendf(&out, ",\"misses\":%.17g", static_cast<double>(r.cache_misses));
  appendf(&out, ",\"hit_rate\":%.17g", r.cache_hit_rate);
  out += "},\"workers\":[";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    const ReportWorker& w = r.workers[i];
    if (i != 0) out += ',';
    out += "{\"id\":";
    append_quoted(w.id, &out);
    appendf(&out, ",\"cells\":%.17g", static_cast<double>(w.cells));
    appendf(&out, ",\"claims\":%.17g", static_cast<double>(w.claims));
    appendf(&out, ",\"steals\":%.17g", static_cast<double>(w.steals));
    appendf(&out, ",\"wall_s\":%.17g", w.wall_s);
    appendf(&out, ",\"elapsed_s\":%.17g", w.elapsed_s);
    appendf(&out, ",\"utilization\":%.17g", w.utilization);
    out += '}';
  }
  out += "],\"phases\":[";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const ReportPhase& p = r.phases[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    append_quoted(p.name, &out);
    appendf(&out, ",\"count\":%.17g", static_cast<double>(p.count));
    appendf(&out, ",\"total_s\":%.17g", p.total_s);
    appendf(&out, ",\"mean_s\":%.17g", p.mean_s);
    out += '}';
  }
  out += "],\"slowest_cells\":[";
  for (std::size_t i = 0; i < r.slowest.size(); ++i) {
    if (i != 0) out += ',';
    append_row_json(r.slowest[i], &out);
  }
  out += "],\"episode_cells\":[";
  for (std::size_t i = 0; i < r.episode_cells.size(); ++i) {
    if (i != 0) out += ',';
    append_row_json(r.episode_cells[i], &out);
  }
  out += "]}";
  return out;
}

std::string render_report_markdown(const SweepSummary& r) {
  std::string md = "# Sweep report\n\nManifest: `" + r.manifest + "`\n\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "- cells: %zu terminal (%zu completed, %zu failed)\n"
                "- leases: %zu claims, %zu steals\n"
                "- cache: %llu hits / %llu misses (%.1f%% hit rate)\n"
                "- simulated wall time: %.1f s across all workers\n\n",
                r.cells_total, r.completed, r.failed, r.claims, r.steals,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses),
                100.0 * r.cache_hit_rate, r.wall_s_total);
  md += buf;

  md += "## Workers\n\n| worker | cells | claims | steals | busy s | elapsed s | util |\n"
        "|---|---:|---:|---:|---:|---:|---:|\n";
  for (const ReportWorker& w : r.workers) {
    std::snprintf(buf, sizeof(buf), "| %s | %zu | %zu | %zu | %.1f | %.1f | %.0f%% |\n",
                  w.id.c_str(), w.cells, w.claims, w.steals, w.wall_s, w.elapsed_s,
                  100.0 * w.utilization);
    md += buf;
  }

  md += "\n## Wall-time by phase\n\n| phase | count | total s | mean s |\n"
        "|---|---:|---:|---:|\n";
  for (const ReportPhase& p : r.phases) {
    std::snprintf(buf, sizeof(buf), "| %s | %llu | %.3f | %.3g |\n", p.name.c_str(),
                  static_cast<unsigned long long>(p.count), p.total_s, p.mean_s);
    md += buf;
  }

  md += "\n## Slowest cells\n\n| cell | worker | status | wall s |\n|---|---|---|---:|\n";
  for (const ReportCellRow& row : r.slowest) {
    std::snprintf(buf, sizeof(buf), "| `%s` | %s | %s | %.2f |\n", row.id.c_str(),
                  row.worker.c_str(), row.status.c_str(), row.wall_s);
    md += buf;
  }

  md += "\n## Cells by unfairness-episode severity\n\n"
        "| cell | episodes | worst Jain | victim | cause |\n|---|---:|---:|---:|---|\n";
  for (const ReportCellRow& row : r.episode_cells) {
    std::snprintf(buf, sizeof(buf), "| `%s` | %.1f | %.3f | %u | %s |\n",
                  row.id.c_str(), row.episodes, row.worst_jain, row.victim,
                  row.cause.c_str());
    md += buf;
  }
  if (r.episode_cells.empty()) md += "\n_No fairness episodes recorded._\n";
  return md;
}

}  // namespace elephant::exp
