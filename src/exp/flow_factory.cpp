#include "exp/flow_factory.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "trace/trace.hpp"

namespace elephant::exp {

namespace {

/// Exponential with the given mean; u ∈ [0, 1) so 1−u ∈ (0, 1] keeps the log
/// finite. Mean 0 (or negative) degenerates to 0.
double exponential(sim::Rng& rng, double mean) {
  if (!(mean > 0)) return 0;
  return -mean * std::log(1.0 - rng.next_double());
}

/// Hard cap on instantiated flows per run: an over-eager Poisson rate should
/// degrade into a truncated arrival sequence, not an out-of-memory kill.
/// Slab-dense per-flow state keeps even the cap's worth of flows to a few
/// hundred MB, so the cap sits at the million-flow roadmap scale.
constexpr std::size_t kMaxFlows = 1u << 20;

}  // namespace

FlowFactory::FlowFactory(sim::Scheduler& sched, net::Dumbbell& net,
                         const ExperimentConfig& cfg, sim::Rng& cell_rng,
                         const obs::TcpMetrics* metrics)
    : sched_(&sched), net_(&net), cfg_(cfg), metrics_(metrics) {
  build(cell_rng);
}

FlowFactory::FlowFactory(FlowPlacer placer, const ExperimentConfig& cfg, sim::Rng& cell_rng)
    : placer_(std::move(placer)), cfg_(cfg) {
  build(cell_rng);
}

void FlowFactory::build(sim::Rng& cell_rng) {
  if (cfg_.workload.is_paper_default()) {
    build_legacy(cell_rng);
  } else {
    build_workload();
  }
}

FlowSite FlowFactory::site_for(std::size_t flow_index, int side) {
  if (placer_) return placer_(flow_index, side);
  return FlowSite{sched_, &net_->client(side), &net_->server(side), metrics_};
}

void FlowFactory::build_legacy(sim::Rng& rng) {
  const std::uint32_t n_flows = std::max<std::uint32_t>(cfg_.effective_flows(), 1);
  // Split across the two sender nodes; odd counts give the extra flow to
  // side 0 (cca1) deterministically, instead of silently dropping it.
  const std::uint32_t per_side[2] = {(n_flows + 1) / 2, n_flows / 2};
  const std::uint32_t agg = cfg_.effective_aggregation();

  for (int side = 0; side < 2; ++side) {
    const cca::CcaKind kind = side == 0 ? cfg_.cca1 : cfg_.cca2;
    for (std::uint32_t i = 0; i < per_side[side]; ++i) {
      const net::FlowId flow = static_cast<net::FlowId>(flows_.size() + 1);
      const FlowSite site = site_for(flows_.size(), side);
      net::Host& client = *site.client;
      net::Host& server = *site.server;

      cca::CcaParams cp;
      cp.mss_bytes = cfg_.mss;
      cp.initial_cwnd_segments = std::max<double>(10.0, agg);
      cp.min_cwnd_segments = std::max<double>(2.0, agg);
      cp.seed = rng.next_u64();

      tcp::TcpSenderConfig sc;
      sc.flow = flow;
      sc.src = client.id();
      sc.dst = server.id();
      sc.mss = cfg_.mss;
      sc.agg = agg;
      sc.ecn = cfg_.ecn;
      sc.pace_always = cfg_.pace_all;
      // Stagger starts within half a second, like scripted iperf3 launches.
      sc.start_time = sim::Time::seconds(0.5 * rng.next_double());

      tcp::TcpReceiver* receiver =
          receivers_.emplace(*site.sched, server, client.id(), flow).second;
      tcp::TcpSender* sender =
          senders_.emplace(*site.sched, client, sc, ccas_.make(kind, cp)).second;
      FlowInstance& inst = *flows_.emplace().second;
      inst.sender = sender;
      inst.receiver = receiver;
      inst.owner = this;
      inst.side = side;
      inst.start_time = sc.start_time;
      inst.lane = site.sched;
      if (cfg_.tracer != nullptr) sender->set_tracer(cfg_.tracer);
      if (site.metrics != nullptr) sender->set_metrics(site.metrics);
      sender->set_scoreboard_ledger(&scoreboard_ledger_);
      client.register_endpoint(flow, sender);
      server.register_endpoint(flow, receiver);
      sender->start();
    }
  }
}

void FlowFactory::build_workload() {
  for (int ci = 0; ci < static_cast<int>(cfg_.workload.classes.size()); ++ci) {
    build_class(ci, cfg_.workload.classes[static_cast<std::size_t>(ci)]);
  }
}

void FlowFactory::build_class(int ci, const workload::TrafficClass& tc) {
  using workload::Arrival;
  using workload::ClassKind;

  // Every class owns a disjoint seed sub-stream of the cell seed: arrivals
  // and sizes from class_rng, CCA/app seeds from further per-flow streams.
  const std::uint64_t class_base =
      sim::derive_seed(cfg_.seed, 0x200000000ULL + static_cast<std::uint64_t>(ci));
  sim::Rng class_rng(sim::derive_seed(class_base, 1));
  const sim::Time duration = cfg_.effective_duration();

  auto side_for = [&](std::uint32_t fi, std::uint32_t n) -> int {
    if (tc.side == 0 || tc.side == 1) return tc.side;
    if (tc.kind == ClassKind::kElephant) {
      // Mirror the paper split: the first ceil(n/2) flows on side 0.
      return fi < (n + 1) / 2 ? 0 : 1;
    }
    return static_cast<int>(fi % 2);  // alternate short flows across sides
  };
  auto seeds_for = [&](std::uint32_t fi, std::uint64_t* cca_seed, std::uint64_t* app_seed) {
    *cca_seed = sim::derive_seed(class_base, 0x100000000ULL + fi);
    *app_seed = sim::derive_seed(class_base, 0x200000000ULL + fi);
  };

  if (tc.arrival == Arrival::kPoisson) {
    if (!(tc.arrival_rate_hz > 0)) return;
    sim::Time t = tc.start_offset;
    for (std::uint32_t fi = 0; flows_.size() < kMaxFlows; ++fi) {
      if (tc.count != 0 && fi >= tc.count) break;
      t += sim::Time::seconds(exponential(class_rng, 1.0 / tc.arrival_rate_hz));
      if (t >= duration) break;
      const std::uint64_t bytes =
          tc.kind == ClassKind::kElephant ? 0 : tc.size.sample(class_rng);
      std::uint64_t cca_seed = 0;
      std::uint64_t app_seed = 0;
      seeds_for(fi, &cca_seed, &app_seed);
      spawn(ci, tc, side_for(fi, tc.count), t, bytes, cca_seed, app_seed);
    }
    return;
  }

  // Staggered arrivals: a fixed flow count spread uniformly over the window.
  std::uint32_t n = tc.count;
  if (n == 0 && tc.kind == ClassKind::kElephant) n = cfg_.effective_flows();
  for (std::uint32_t fi = 0; fi < n && flows_.size() < kMaxFlows; ++fi) {
    const sim::Time start =
        tc.start_offset + sim::Time::seconds(tc.start_window.sec() * class_rng.next_double());
    const std::uint64_t bytes =
        tc.kind == ClassKind::kElephant ? 0 : tc.size.sample(class_rng);
    std::uint64_t cca_seed = 0;
    std::uint64_t app_seed = 0;
    seeds_for(fi, &cca_seed, &app_seed);
    spawn(ci, tc, side_for(fi, n), start, bytes, cca_seed, app_seed);
  }
}

FlowInstance& FlowFactory::spawn(int ci, const workload::TrafficClass& tc, int side,
                                 sim::Time start, std::uint64_t bytes,
                                 std::uint64_t cca_seed, std::uint64_t app_seed) {
  using workload::ClassKind;
  const net::FlowId flow = static_cast<net::FlowId>(flows_.size() + 1);
  const FlowSite site = site_for(flows_.size(), side);
  net::Host& client = *site.client;
  net::Host& server = *site.server;
  const std::uint32_t agg = cfg_.effective_aggregation();
  const cca::CcaKind kind =
      tc.cca_from_pair ? (side == 0 ? cfg_.cca1 : cfg_.cca2) : tc.cca;

  cca::CcaParams cp;
  cp.mss_bytes = cfg_.mss;
  cp.initial_cwnd_segments = std::max<double>(10.0, agg);
  cp.min_cwnd_segments = std::max<double>(2.0, agg);
  cp.seed = cca_seed;

  tcp::TcpSenderConfig sc;
  sc.flow = flow;
  sc.src = client.id();
  sc.dst = server.id();
  sc.mss = cfg_.mss;
  sc.agg = agg;
  sc.ecn = cfg_.ecn;
  sc.pace_always = cfg_.pace_all;
  sc.start_time = start;
  if (tc.kind == ClassKind::kFinite) {
    sc.transfer_units = tcp::bytes_to_units(bytes, cfg_.mss, agg);
  } else if (tc.kind == ClassKind::kOnOff) {
    sc.app_limited = true;
  }

  tcp::TcpReceiver* receiver =
      receivers_.emplace(*site.sched, server, client.id(), flow).second;
  tcp::TcpSender* sender =
      senders_.emplace(*site.sched, client, sc, ccas_.make(kind, cp)).second;
  FlowInstance& inst = *flows_.emplace().second;
  inst.sender = sender;
  inst.receiver = receiver;
  inst.owner = this;
  inst.traffic = &cfg_.workload.classes[static_cast<std::size_t>(ci)];
  inst.side = side;
  inst.cls = ci;
  inst.kind = tc.kind;
  inst.transfer_bytes = bytes;
  inst.start_time = start;
  inst.app_rng = sim::Rng(app_seed);
  inst.lane = site.sched;
  if (cfg_.tracer != nullptr) sender->set_tracer(cfg_.tracer);
  if (site.metrics != nullptr) sender->set_metrics(site.metrics);
  sender->set_scoreboard_ledger(&scoreboard_ledger_);
  client.register_endpoint(flow, sender);
  server.register_endpoint(flow, receiver);

  if (cfg_.tracer != nullptr) {
    trace::TraceRecord r;
    r.t = start;
    r.type = trace::RecordType::kFlowStart;
    r.flow = flow;
    r.v0 = ci;
    r.v1 = static_cast<double>(bytes);
    r.v2 = side;
    cfg_.tracer->record(r);
  }

  if (tc.kind == ClassKind::kFinite) {
    sender->set_on_complete(&FlowFactory::flow_complete_thunk, &inst);
  } else if (tc.kind == ClassKind::kOnOff) {
    sender->set_on_app_idle(&FlowFactory::app_idle_thunk, &inst);
  }

  sender->start();
  if (tc.kind == ClassKind::kOnOff) {
    // First burst; held by the sender until start_time.
    sender->offer_bytes(bytes);
  }
  return inst;
}

void FlowFactory::save(sim::SnapshotWriter& w) const {
  w.put_u64(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const FlowInstance& f = flow(i);
    w.put_pod(f.app_rng);
    f.sender->save(w);
    f.receiver->save(w);
  }
}

void FlowFactory::load(sim::SnapshotReader& r) {
  const std::uint64_t n = r.get_u64();
  assert(n == flows_.size() && "flow set is fixed at construction");
  for (std::size_t i = 0; i < flows_.size() && i < n; ++i) {
    FlowInstance& f = flow(i);
    r.get_pod(&f.app_rng);
    f.sender->load(r);
    f.receiver->load(r);
  }
}

void FlowFactory::flow_complete_thunk(void* ctx) {
  const FlowInstance& f = *static_cast<FlowInstance*>(ctx);
  if (f.owner->cfg_.tracer == nullptr) return;
  trace::TraceRecord r;
  r.t = f.lane->now();
  r.type = trace::RecordType::kFlowEnd;
  r.flow = f.sender->config().flow;
  r.v0 = f.cls;
  r.v1 = static_cast<double>(f.transfer_bytes);
  r.v2 = (f.lane->now() - f.start_time).sec();
  f.owner->cfg_.tracer->record(r);
}

void FlowFactory::app_idle_thunk(void* ctx) {
  auto* f = static_cast<FlowInstance*>(ctx);
  const workload::TrafficClass& tc = *f->traffic;
  const sim::Time think = sim::Time::seconds(exponential(f->app_rng, tc.off_mean.sec()));
  // Think-time wakeups are flow events: they belong to the flow's lane. The
  // one-pointer capture stays inside the scheduler callback's inline buffer.
  f->lane->schedule_in(think, [f] {
    f->sender->offer_bytes(f->traffic->size.sample(f->app_rng));
  });
}

}  // namespace elephant::exp
