#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "exp/config.hpp"
#include "exp/episode_probe.hpp"
#include "exp/flow_factory.hpp"
#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"

namespace elephant::exp {

/// One single-shard experiment cell held open for stepping, snapshotting,
/// and restoring — the substrate both run_experiment() (construct, run to
/// the configured duration, finalize) and the model checker (src/mc: run a
/// bounded chunk, snapshot, branch, restore, repeat) drive.
///
/// Construction replays the historical run_experiment() setup byte for
/// byte: the same objects constructed in the same order with the same draws
/// from the cell RNG, so golden digests are unchanged with mc off
/// (tests/determinism_digest_test.cpp pins this).
///
/// Snapshot layout, in fixed registration order:
///   1. scheduler image (heap + every slot with its callback cloned)
///   2. cell RNG
///   3. dumbbell: every port (qdisc decorator chains included), host and
///      router counters, in construction order
///   4. fault injector (present only when the config has a fault plan)
///   5. flow factory: per flow, app RNG + sender (scoreboard and CCA
///      included) + receiver, in slab order
///
/// Components are restored in place — `[this]` captures inside cloned
/// scheduler callbacks stay valid because no component object ever moves.
/// Snapshots require tracing off (a flight-recorder file cannot be rewound);
/// counterexample replay re-runs the choice trace from scratch instead.
class Cell {
 public:
  explicit Cell(const ExperimentConfig& cfg);

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] net::Dumbbell& network() { return *net_; }
  [[nodiscard]] FlowFactory& flows() { return *factory_; }
  [[nodiscard]] sim::Time duration() const { return duration_; }
  [[nodiscard]] sim::Time now() const { return sched_.now(); }

  /// Execute at most `max_events` further events (0 = unbounded), never past
  /// `deadline`. Returns why the chunk stopped; on kEventBudget the clock
  /// stays at the last executed event, so snapshots taken here sit exactly
  /// on an event boundary.
  sim::Scheduler::StopReason run_chunk(std::uint64_t max_events, sim::Time deadline);
  sim::Scheduler::StopReason run_chunk(std::uint64_t max_events) {
    return run_chunk(max_events, duration_);
  }

  /// Historical run_experiment() behavior: run to the configured duration
  /// under the config's watchdog budgets (throwing RunTimeout on a budget
  /// stop) and finalize.
  ExperimentResult run_to_completion();

  /// Aggregate results and (when configured) check invariants against the
  /// current state. Normally called once the clock reached duration();
  /// calling mid-run is safe — conservation and cwnd invariants hold at
  /// every event boundary — but per-flow throughputs are then averaged over
  /// the flow's full configured window, not the elapsed part.
  ExperimentResult finalize();

  /// Capture the full simulation state. Requires cfg.tracer == nullptr.
  [[nodiscard]] sim::Snapshot snapshot() const;
  /// Restore a snapshot taken from *this cell* (same config, same process).
  /// A snapshot can be restored any number of times (DFS backtracking).
  void restore(const sim::Snapshot& snap);
  /// Hash of the full simulation state (scheduler pending-event digest plus
  /// every component's serialized bytes) for explored-state deduplication.
  [[nodiscard]] std::uint64_t state_hash() const;

 private:
  void serialize_components(sim::SnapshotWriter& w) const;

  ExperimentConfig cfg_;  ///< stable copy: the factory holds a reference
  std::chrono::steady_clock::time_point wall_start_;
  sim::Scheduler sched_;
  sim::Rng rng_;
  sim::Time duration_{};
  std::optional<net::Dumbbell> net_;
  std::optional<fault::FaultInjector> faults_;
  obs::SchedulerMetrics sched_metrics_;
  obs::QueueMetrics queue_metrics_;
  obs::TcpMetrics tcp_metrics_;
  std::optional<FlowFactory> factory_;
  /// Fairness-episode sampler (cfg.episodes.enabled only); read-only against
  /// the simulation, so its presence never changes a digest.
  std::optional<EpisodeProbe> probe_;
  /// Runner-phase wall-time histograms (cfg.metrics only): prof.cell_run_s /
  /// prof.cell_finalize_s, plus prof.sched_run_s via sched_metrics_.
  obs::LogLinHistogram* prof_run_s_ = nullptr;
  obs::LogLinHistogram* prof_finalize_s_ = nullptr;
};

}  // namespace elephant::exp
