#include "exp/work_queue.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"

namespace elephant::exp {

namespace {

/// Wall-clock seconds. Leases arbitrate between processes on one host, so
/// the shared system clock (not a per-process steady clock) is the one
/// meaningful time base for expiry.
double unix_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LeasedWorkQueue::LeasedWorkQueue(std::filesystem::path manifest_path,
                                 std::vector<std::pair<std::size_t, std::string>> cells,
                                 Options options)
    : manifest_(std::move(manifest_path)),
      options_(std::move(options)),
      cells_(std::move(cells)) {
  state_.resize(cells_.size());
  slot_by_id_.reserve(cells_.size());
  for (std::size_t slot = 0; slot < cells_.size(); ++slot) {
    slot_by_id_.emplace(cells_[slot].second, slot);
  }
  {
    std::lock_guard g(mu_);
    SweepManifest::ScopedLock fl(manifest_);
    if (options_.resume) {
      // Startup snapshot: prior successes are done, prior failures become
      // retryable, live claims from concurrent workers are honored.
      fold_new_locked(/*startup=*/true);
    } else if (manifest_.fd() >= 0) {
      // Non-resume keeps today's "re-run everything" semantics: records
      // written before this worker started are invisible. The cursor skip
      // happens under the flock so a claim landing concurrently with our
      // startup is still seen by the first fold.
      struct stat st;
      if (::fstat(manifest_.fd(), &st) == 0) cursor_ = st.st_size;
    }
  }
  renewer_ = std::thread([this] { renew_loop(); });
}

LeasedWorkQueue::~LeasedWorkQueue() {
  {
    std::lock_guard g(mu_);
    stopping_ = true;
  }
  renew_cv_.notify_all();
  if (renewer_.joinable()) renewer_.join();
  // Normal convergence completes every held cell; leases left behind here
  // are an abort path. Expire them so other workers need not wait.
  release_all();
}

void LeasedWorkQueue::apply_locked(const ManifestEntry& e, bool startup) {
  // Success is terminal in the latest-entry view too (same rule as load()).
  const auto lit = latest_.find(e.id);
  const bool prior_success = lit != latest_.end() && lit->second.success();
  if (!(e.status == RunStatus::kClaimed && prior_success)) latest_[e.id] = e;

  const auto sit = slot_by_id_.find(e.id);
  if (sit == slot_by_id_.end()) return;  // foreign id (journal shared with another slice)
  CellState& s = state_[sit->second];
  if (s.phase == Phase::kDone && s.success) return;
  if (e.status == RunStatus::kClaimed) {
    s.phase = Phase::kLeased;
    s.worker = e.worker;
    s.lease_until = e.lease_until_unix_s;
  } else if (startup && !e.success()) {
    // Resume rule: a failure journaled by a *previous* run gets one more
    // chance. Failures recorded during this run stay terminal, so workers
    // do not ping-pong a poisoned cell forever.
    s.phase = Phase::kUnclaimed;
    s.worker.clear();
  } else {
    s.phase = Phase::kDone;
    s.success = e.success();
  }
}

void LeasedWorkQueue::fold_new_locked(bool startup) {
  const int fd = manifest_.fd();
  if (fd < 0) return;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= cursor_) return;
  std::string buf(static_cast<std::size_t>(st.st_size - cursor_), '\0');
  std::size_t got = 0;
  while (got < buf.size()) {
    const ssize_t r = ::pread(fd, buf.data() + got, buf.size() - got,
                              cursor_ + static_cast<off_t>(got));
    if (r <= 0) break;
    got += static_cast<std::size_t>(r);
  }
  buf.resize(got);
  // Consume complete lines only. A crashed writer's unterminated fragment
  // stays unconsumed until a later append's tail repair terminates it (the
  // fragment then folds as one unparseable, skipped line).
  std::size_t consumed = 0;
  for (std::size_t pos = 0;;) {
    const std::size_t nl = buf.find('\n', pos);
    if (nl == std::string::npos) break;
    ManifestEntry e;
    if (SweepManifest::parse_line(buf.substr(pos, nl - pos), &e)) {
      apply_locked(e, startup);
    }
    pos = nl + 1;
    consumed = pos;
  }
  cursor_ += static_cast<off_t>(consumed);
}

void LeasedWorkQueue::publish_held_locked() {
  if (options_.metrics != nullptr) {
    options_.metrics->gauge("sweep.leases_held").set(static_cast<double>(held_.size()));
  }
}

LeasedWorkQueue::Claim LeasedWorkQueue::try_claim(std::size_t* index) {
  std::lock_guard g(mu_);
  SweepManifest::ScopedLock fl(manifest_);
  fold_new_locked(/*startup=*/false);
  const double now = unix_now();
  const std::size_t npos = cells_.size();
  std::size_t pick = npos;
  bool all_done = true;
  for (std::size_t slot = 0; slot < cells_.size(); ++slot) {
    CellState& s = state_[slot];
    if (s.phase == Phase::kLeased && s.lease_until <= now) {
      s.phase = Phase::kUnclaimed;  // expired: stealable (keep s.worker for accounting)
    }
    if (s.phase == Phase::kDone) continue;
    all_done = false;
    if (s.phase == Phase::kUnclaimed) {
      pick = slot;
      break;
    }
  }
  if (pick == npos) return all_done ? Claim::kAllDone : Claim::kWaitLeased;

  ManifestEntry c;
  c.index = cells_[pick].first;
  c.id = cells_[pick].second;
  c.status = RunStatus::kClaimed;
  c.attempts = 0;
  c.worker = options_.worker_id;
  c.lease_until_unix_s = now + options_.lease_s;
  if (!manifest_.append_locked(c)) {
    // Journal write failed (disk full, ...). Claiming without a durable
    // claim record would break exactly-once; surface through healthy().
    return Claim::kWaitLeased;
  }
  const bool stolen = !state_[pick].worker.empty() && state_[pick].worker != options_.worker_id;
  state_[pick].phase = Phase::kLeased;
  state_[pick].worker = options_.worker_id;
  state_[pick].lease_until = c.lease_until_unix_s;
  held_.insert(pick);
  if (options_.metrics != nullptr) {
    options_.metrics->counter("sweep.leases_acquired").add(1);
    if (stolen) options_.metrics->counter("sweep.leases_stolen").add(1);
  }
  publish_held_locked();
  *index = cells_[pick].first;
  return Claim::kClaimed;
}

bool LeasedWorkQueue::complete(const ManifestEntry& e) {
  std::lock_guard g(mu_);
  SweepManifest::ScopedLock fl(manifest_);
  fold_new_locked(/*startup=*/false);
  const auto sit = slot_by_id_.find(e.id);
  if (sit == slot_by_id_.end()) return false;
  CellState& s = state_[sit->second];
  held_.erase(sit->second);
  publish_held_locked();
  if (s.phase == Phase::kDone && s.success) {
    // Another worker's success landed while we were running (our lease was
    // stolen by an impatient peer, then both finished). The results are
    // bit-identical by determinism; keep the journal at exactly one
    // completion per cell and drop ours.
    if (options_.metrics != nullptr) {
      options_.metrics->counter("sweep.completions_dropped").add(1);
    }
    return false;
  }
  if (!manifest_.append_locked(e)) return false;
  s.phase = Phase::kDone;
  s.success = e.success();
  latest_[e.id] = e;
  return true;
}

void LeasedWorkQueue::release_all() {
  std::lock_guard g(mu_);
  if (held_.empty()) return;
  SweepManifest::ScopedLock fl(manifest_);
  const std::size_t released = held_.size();
  for (const std::size_t slot : held_) {
    ManifestEntry c;
    c.index = cells_[slot].first;
    c.id = cells_[slot].second;
    c.status = RunStatus::kClaimed;
    c.attempts = 0;
    c.worker = options_.worker_id;
    c.lease_until_unix_s = 0;  // already expired: instantly stealable
    (void)manifest_.append_locked(c);
    state_[slot].phase = Phase::kUnclaimed;
    state_[slot].worker.clear();
  }
  held_.clear();
  if (options_.metrics != nullptr) {
    options_.metrics->counter("sweep.leases_released").add(released);
  }
  publish_held_locked();
}

void LeasedWorkQueue::refresh() {
  std::lock_guard g(mu_);
  SweepManifest::ScopedLock fl(manifest_);
  fold_new_locked(/*startup=*/false);
}

std::optional<ManifestEntry> LeasedWorkQueue::latest(const std::string& id) const {
  std::lock_guard g(mu_);
  const auto it = latest_.find(id);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

void LeasedWorkQueue::renew_loop() {
  std::unique_lock lk(mu_);
  while (!stopping_) {
    const auto period =
        std::chrono::duration<double>(std::max(options_.lease_s / 3.0, 0.02));
    if (renew_cv_.wait_for(lk, period, [this] { return stopping_; })) break;
    if (held_.empty()) continue;
    SweepManifest::ScopedLock fl(manifest_);
    const double until = unix_now() + options_.lease_s;
    for (const std::size_t slot : held_) {
      ManifestEntry c;
      c.index = cells_[slot].first;
      c.id = cells_[slot].second;
      c.status = RunStatus::kClaimed;
      c.attempts = 0;
      c.worker = options_.worker_id;
      c.lease_until_unix_s = until;
      if (!manifest_.append_locked(c)) break;  // unhealthy; sweep will abort
      state_[slot].lease_until = until;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->counter("sweep.leases_renewed").add(held_.size());
    }
  }
}

}  // namespace elephant::exp
