#pragma once

#include <functional>
#include <vector>

#include "exp/config.hpp"
#include "exp/runner.hpp"

namespace elephant::exp {

/// Cartesian experiment matrix builder. With the paper's axes this yields
/// the full 810-configuration grid of Table 1.
[[nodiscard]] std::vector<ExperimentConfig> make_matrix(
    const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& pairs,
    const std::vector<aqm::AqmKind>& aqms, const std::vector<double>& buffer_bdps,
    const std::vector<double>& bandwidths, std::uint64_t seed = 42);

/// The full paper matrix (9 pairs × 3 AQMs × 6 buffers × 5 bandwidths).
[[nodiscard]] std::vector<ExperimentConfig> paper_matrix(std::uint64_t seed = 42);

struct SweepOptions {
  int repetitions = 1;
  int threads = 0;  ///< 0 → hardware concurrency
  bool use_cache = true;
  /// Called after each config completes (from the submitting thread order is
  /// not guaranteed); `done`/`total` enable progress reporting.
  std::function<void(const AveragedResult&, std::size_t done, std::size_t total)> on_result;
};

/// Run a batch of configurations, optionally in parallel (each run owns its
/// scheduler and RNG, so runs are embarrassingly parallel). Results are
/// returned in input order.
[[nodiscard]] std::vector<AveragedResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                                    const SweepOptions& options = {});

}  // namespace elephant::exp
