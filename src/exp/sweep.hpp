#pragma once

#include <atomic>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "exp/manifest.hpp"
#include "exp/runner.hpp"
#include "exp/status.hpp"

namespace elephant::obs {
class MetricsRegistry;
}

namespace elephant::exp {

/// Cartesian experiment matrix builder. With the paper's axes this yields
/// the full 810-configuration grid of Table 1.
[[nodiscard]] std::vector<ExperimentConfig> make_matrix(
    const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& pairs,
    const std::vector<aqm::AqmKind>& aqms, const std::vector<double>& buffer_bdps,
    const std::vector<double>& bandwidths, std::uint64_t seed = 42);

/// The full paper matrix (9 pairs × 3 AQMs × 6 buffers × 5 bandwidths).
[[nodiscard]] std::vector<ExperimentConfig> paper_matrix(std::uint64_t seed = 42);

/// Outcome of one sweep cell. `result` is meaningful only when
/// `succeeded(status)`; otherwise `error` carries the exception text of the
/// final attempt.
struct RunRecord {
  RunStatus status = RunStatus::kOk;
  int attempts = 0;    ///< simulation attempts actually made (0 if resumed)
  bool resumed = false;  ///< satisfied from the manifest, not re-run
  double wall_s = 0;   ///< wall seconds this worker spent on the cell (0 if resumed)
  std::string error;
  AveragedResult result;

  [[nodiscard]] bool success() const { return succeeded(status); }
};

struct SweepReport {
  std::vector<RunRecord> records;  ///< one per config, input order

  [[nodiscard]] std::size_t count(RunStatus s) const;
  [[nodiscard]] std::size_t completed() const;  ///< ok + retried
  [[nodiscard]] std::size_t failed() const;     ///< failed + timed out
  [[nodiscard]] std::size_t skipped() const;    ///< never attempted (drained)
};

/// Deterministic retry backoff: base · 2^(attempt-1) · U with U ∈ [0.5, 1.5)
/// derived from sim::derive_seed(seed, 0x300000000 + attempt) — the jitter is
/// a pure function of (cell seed, attempt), so re-running a sweep reproduces
/// its retry schedule exactly while distinct cells still decorrelate.
/// `attempt` is 1-based (the first retry); returns 0 when base_s <= 0.
[[nodiscard]] double retry_backoff_s(std::uint64_t seed, int attempt, double base_s);

struct SweepOptions {
  int repetitions = 1;
  int threads = 0;  ///< 0 → hardware concurrency
  bool use_cache = true;
  /// Extra simulation attempts (with a reseeded RNG) after a failure before
  /// the cell is recorded as failed. 0 disables retry.
  int max_retries = 0;
  /// Per-run watchdog budgets, applied to every cell (0 = unlimited). A run
  /// that trips either budget is recorded as timed out, never retried.
  std::uint64_t run_event_budget = 0;
  double run_wall_budget_seconds = 0;
  /// Append-only JSONL journal of cell outcomes. Empty path disables it.
  std::filesystem::path manifest_path;
  /// Satisfy cells whose id already has a *successful* manifest entry from
  /// the journal instead of re-running them. Requires manifest_path.
  bool resume = false;

  // Multi-worker lease coordination (see work_queue.hpp). Active whenever a
  // manifest is configured and lease_s > 0: cells are claimed through the
  // journal, so any number of sweep processes can share one manifest and a
  // killed worker costs at most its in-flight cells (stolen after lease_s).
  // A single worker with leases enabled produces byte-identical result
  // artifacts to the lease-free path — claims add journal lines but never
  // perturb execution order, seeds, or completion-line formats.
  /// Unique id of this worker process; "" derives "pid<pid>".
  std::string worker_id;
  /// Lease duration in seconds; <= 0 disables claim coordination and keeps
  /// the journal-only single-process path.
  double lease_s = 60;
  /// First-retry backoff delay (doubles per further attempt, with
  /// deterministic jitter — see retry_backoff_s). 0 retries immediately.
  double backoff_base_s = 0.25;
  /// Graceful drain flag (e.g. set from a SIGTERM handler): when it becomes
  /// true, workers finish and journal their in-flight cells, claim nothing
  /// further, and return; unattempted cells are reported as kSkipped.
  const std::atomic<bool>* cancel = nullptr;
  /// Called after each config completes (from the submitting thread; order
  /// is not guaranteed); `done`/`total` enable progress reporting.
  std::function<void(const AveragedResult&, std::size_t done, std::size_t total)> on_result;

  /// Shared telemetry registry for the whole sweep (see obs/metrics.hpp).
  /// Each cell simulates against its own thread-local registry, merged into
  /// this one when the cell finishes — workers never contend and histograms
  /// stay single-writer. On top of the per-run metrics the sweep adds
  /// sweep.cells_{done,failed,resumed}, sweep.retries, sweep.cache_{hits,
  /// misses}, and a sweep.cell_wall_s histogram. Null with stats_interval_s
  /// > 0 provisions an internal registry for the heartbeat's lifetime.
  obs::MetricsRegistry* metrics = nullptr;
  /// Wall-clock self-profiling period: > 0 runs a heartbeat thread that
  /// appends one JSON snapshot per tick to `metrics_path` and prints
  /// progress (cells done/total, ETA, current cell, event rate) to stderr.
  /// 0 (default) disables the heartbeat.
  double stats_interval_s = 0;
  /// Heartbeat JSONL destination. Empty → "metrics.jsonl" next to the
  /// manifest, or in the working directory when there is no manifest.
  std::filesystem::path metrics_path;
};

/// Run a batch of configurations, optionally in parallel (each run owns its
/// scheduler and RNG, so runs are embarrassingly parallel), with per-cell
/// fault isolation: a throwing or budget-tripping run marks its own record
/// and the sweep carries on. Records are returned in input order.
[[nodiscard]] SweepReport run_sweep_resilient(const std::vector<ExperimentConfig>& configs,
                                              const SweepOptions& options = {});

/// Legacy strict interface: as run_sweep_resilient, but a failed cell leaves
/// a default-constructed AveragedResult in its slot. Results in input order.
[[nodiscard]] std::vector<AveragedResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                                    const SweepOptions& options = {});

}  // namespace elephant::exp
