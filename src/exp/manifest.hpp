#pragma once

#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exp/runner.hpp"
#include "exp/status.hpp"

namespace elephant::exp {

/// One journal line: the recorded outcome of one sweep cell, or — when
/// `status == RunStatus::kClaimed` — a worker's lease on a cell it is about
/// to run (see work_queue.hpp for the lease protocol).
struct ManifestEntry {
  std::size_t index = 0;  ///< position in the sweep's config vector
  std::string id;         ///< ExperimentConfig::id() — the resume key
  RunStatus status = RunStatus::kOk;
  int attempts = 1;
  int repetitions = 0;
  double sender_bps[2] = {0, 0};
  double jain2 = 0;
  double utilization = 0;
  double retx_segments = 0;
  double rtos = 0;
  /// Per-traffic-class aggregates for mixed-workload cells (FCT percentiles,
  /// shares); empty for elephant-only cells, whose journal lines are
  /// byte-identical to the pre-workload format.
  std::vector<ClassResult> classes;
  /// Wall seconds the executing worker spent on the cell. Serialized only
  /// when > 0, so journal lines from resumed cells (and pre-profiler
  /// builds) keep their exact prior format.
  double wall_s = 0;
  /// Fairness-episode summary (see obs/episode.hpp); serialized as a
  /// conditional "episodes" block only when `episodes > 0`, so
  /// detection-off cells keep the pre-episode line format byte for byte.
  double episodes = 0;            ///< mean episode count per repetition
  double episode_worst_jain = 1.0;
  double episode_worst_t_s = 0;
  std::uint32_t episode_victim = 0;
  std::string episode_cause;
  std::string error;  ///< exception message for failed/timed-out cells

  // Lease fields, serialized only on kClaimed lines so completion lines keep
  // their exact pre-lease format. `lease_until_unix_s` is wall-clock time
  // (system_clock seconds): leases arbitrate between processes on one host,
  // so a shared clock is exactly what expiry must be measured against.
  std::string worker;              ///< claiming worker's id
  double lease_until_unix_s = 0;   ///< lease expiry; <= now means stealable

  [[nodiscard]] bool success() const { return succeeded(status); }
  [[nodiscard]] bool terminal() const { return status != RunStatus::kClaimed; }
};

/// Append-only JSONL journal of a sweep: one line per claim or completed
/// cell. Appends go through a raw O_APPEND fd under an flock + fsync, so
/// multiple worker *processes* can interleave whole lines on one journal and
/// a crashed or killed worker loses at most the line in flight. `load()`
/// tolerates a torn final line (the crash case) by skipping anything that
/// does not parse; the latest entry per id wins, except that a claim never
/// supersedes a recorded success — success is terminal, so a stale claim
/// racing a completion cannot resurrect a finished cell.
///
/// Unlike the pre-lease implementation, write failures are detected: a
/// failed append (disk full, journal unlinked, ...) latches ok() to false
/// and keeps the first error message, so the sweep can fail loudly instead
/// of recording ghost completions.
class SweepManifest {
 public:
  /// Opens `path` for appending (parent directories are created).
  explicit SweepManifest(std::filesystem::path path);
  ~SweepManifest();

  SweepManifest(const SweepManifest&) = delete;
  SweepManifest& operator=(const SweepManifest&) = delete;

  /// Parse an existing journal into its latest-entry-per-id view (claims
  /// folded under the success-is-terminal rule). A missing file yields an
  /// empty map.
  [[nodiscard]] static std::unordered_map<std::string, ManifestEntry> load(
      const std::filesystem::path& path);

  /// Parse one journal line; false on torn/malformed input.
  [[nodiscard]] static bool parse_line(const std::string& line, ManifestEntry* out);
  /// Serialize one entry as a single JSON object line (no trailing newline).
  [[nodiscard]] static std::string format_line(const ManifestEntry& e);

  /// Cross-process critical section: in-process mutex + flock(LOCK_EX) on
  /// the journal fd. Used by the work queue to make read-tail + append-claim
  /// atomic against concurrent workers; plain append() takes it internally.
  class ScopedLock {
   public:
    explicit ScopedLock(SweepManifest& m);
    ~ScopedLock();
    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;

   private:
    SweepManifest& m_;
  };

  /// Append one entry (lock taken internally). Failure latches ok() false.
  void append(const ManifestEntry& e);
  /// As append(), but the caller already holds a ScopedLock. Returns false
  /// on write failure. Repairs a torn tail (a crashed writer's partial line
  /// gets a terminating newline) before writing, so journal lines can never
  /// merge across crashes.
  bool append_locked(const ManifestEntry& e);

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  /// True while the journal is open and no append has failed.
  [[nodiscard]] bool ok() const;
  /// First failure message ("" while ok()).
  [[nodiscard]] std::string last_error() const;
  /// Underlying fd for readers that must share the flock (work queue).
  [[nodiscard]] int fd() const { return fd_; }

 private:
  void fail(const std::string& what);

  std::filesystem::path path_;
  int fd_ = -1;
  mutable std::mutex mu_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace elephant::exp
