#pragma once

#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exp/runner.hpp"
#include "exp/status.hpp"

namespace elephant::exp {

/// One journal line: the recorded outcome of one sweep cell.
struct ManifestEntry {
  std::size_t index = 0;  ///< position in the sweep's config vector
  std::string id;         ///< ExperimentConfig::id() — the resume key
  RunStatus status = RunStatus::kOk;
  int attempts = 1;
  int repetitions = 0;
  double sender_bps[2] = {0, 0};
  double jain2 = 0;
  double utilization = 0;
  double retx_segments = 0;
  double rtos = 0;
  /// Per-traffic-class aggregates for mixed-workload cells (FCT percentiles,
  /// shares); empty for elephant-only cells, whose journal lines are
  /// byte-identical to the pre-workload format.
  std::vector<ClassResult> classes;
  std::string error;  ///< exception message for failed/timed-out cells

  [[nodiscard]] bool success() const { return succeeded(status); }
};

/// Append-only JSONL journal of a sweep: one line per completed cell,
/// flushed per append so a crashed or killed sweep loses at most the cell in
/// flight. `load()` tolerates a torn final line (the crash case) by skipping
/// anything that does not parse; the latest entry per id wins, so a re-run
/// of a previously failed cell supersedes the failure.
class SweepManifest {
 public:
  /// Opens `path` for appending (parent directories are created).
  explicit SweepManifest(std::filesystem::path path);

  /// Parse an existing journal into its latest-entry-per-id view. A missing
  /// file yields an empty map.
  [[nodiscard]] static std::unordered_map<std::string, ManifestEntry> load(
      const std::filesystem::path& path);

  /// Parse one journal line; false on torn/malformed input.
  [[nodiscard]] static bool parse_line(const std::string& line, ManifestEntry* out);
  /// Serialize one entry as a single JSON object line (no trailing newline).
  [[nodiscard]] static std::string format_line(const ManifestEntry& e);

  void append(const ManifestEntry& e);

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] bool ok() const { return out_.is_open(); }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::mutex mu_;
};

}  // namespace elephant::exp
