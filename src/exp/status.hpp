#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace elephant::exp {

/// Outcome of one sweep cell under the resilient engine. kClaimed is not an
/// outcome but a lease record in the journal: a worker announcing it owns the
/// cell until the lease expires (see work_queue.hpp). kSkipped never reaches
/// the journal; it marks report slots for cells a drained sweep left behind.
enum class RunStatus {
  kOk,        ///< completed on the first attempt
  kRetried,   ///< completed after one or more reseeded retries
  kFailed,    ///< every attempt threw (config error, invariant violation, ...)
  kTimedOut,  ///< every attempt exceeded a watchdog budget
  kClaimed,   ///< journal only: leased by a worker, result pending
  kSkipped,   ///< report only: never attempted (graceful drain)
};

[[nodiscard]] inline const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kRetried:
      return "retried";
    case RunStatus::kFailed:
      return "failed";
    case RunStatus::kTimedOut:
      return "timed_out";
    case RunStatus::kClaimed:
      return "claimed";
    case RunStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

[[nodiscard]] inline bool run_status_from_string(std::string_view name, RunStatus* out) {
  for (const RunStatus s : {RunStatus::kOk, RunStatus::kRetried, RunStatus::kFailed,
                            RunStatus::kTimedOut, RunStatus::kClaimed}) {
    if (name == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

/// A run produced a result (ok or after retries).
[[nodiscard]] inline bool succeeded(RunStatus s) {
  return s == RunStatus::kOk || s == RunStatus::kRetried;
}

/// Thrown by run_experiment when a watchdog budget (wall clock or executed
/// events) is exceeded — the run is killed cleanly instead of hanging its
/// sweep worker.
class RunTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the post-run invariant checker so a physically inconsistent run
/// fails loudly instead of being cached as a valid result.
class InvariantViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace elephant::exp
