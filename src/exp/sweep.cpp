#include "exp/sweep.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "sim/random.hpp"

namespace elephant::exp {

std::vector<ExperimentConfig> make_matrix(
    const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& pairs,
    const std::vector<aqm::AqmKind>& aqms, const std::vector<double>& buffer_bdps,
    const std::vector<double>& bandwidths, std::uint64_t seed) {
  std::vector<ExperimentConfig> out;
  out.reserve(pairs.size() * aqms.size() * buffer_bdps.size() * bandwidths.size());
  for (const auto& [c1, c2] : pairs) {
    for (const aqm::AqmKind aqm : aqms) {
      for (const double bdp : buffer_bdps) {
        for (const double bw : bandwidths) {
          ExperimentConfig cfg;
          cfg.cca1 = c1;
          cfg.cca2 = c2;
          cfg.aqm = aqm;
          cfg.buffer_bdp = bdp;
          cfg.bottleneck_bps = bw;
          cfg.seed = seed;
          out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

std::vector<ExperimentConfig> paper_matrix(std::uint64_t seed) {
  return make_matrix(paper_cca_pairs(), paper_aqms(), paper_buffer_bdps(), paper_bandwidths(),
                     seed);
}

std::size_t SweepReport::count(RunStatus s) const {
  std::size_t n = 0;
  for (const RunRecord& r : records) {
    if (r.status == s) ++n;
  }
  return n;
}

std::size_t SweepReport::completed() const {
  return count(RunStatus::kOk) + count(RunStatus::kRetried);
}

std::size_t SweepReport::failed() const {
  return count(RunStatus::kFailed) + count(RunStatus::kTimedOut);
}

namespace {

/// Reconstruct the averaged view of a previously journaled cell. Per-flow
/// detail is not journaled, but the sweep-level aggregates are complete.
AveragedResult from_manifest(const ExperimentConfig& cfg, const ManifestEntry& e) {
  AveragedResult avg;
  avg.config = cfg;
  avg.repetitions = e.repetitions;
  avg.sender_bps[0] = e.sender_bps[0];
  avg.sender_bps[1] = e.sender_bps[1];
  avg.jain2 = e.jain2;
  avg.utilization = e.utilization;
  avg.retx_segments = e.retx_segments;
  avg.rtos = e.rtos;
  avg.classes = e.classes;
  return avg;
}

ManifestEntry to_manifest(std::size_t index, const std::string& id, const RunRecord& rec) {
  ManifestEntry e;
  e.index = index;
  e.id = id;
  e.status = rec.status;
  e.attempts = rec.attempts;
  e.repetitions = rec.result.repetitions;
  e.sender_bps[0] = rec.result.sender_bps[0];
  e.sender_bps[1] = rec.result.sender_bps[1];
  e.jain2 = rec.result.jain2;
  e.utilization = rec.result.utilization;
  e.retx_segments = rec.result.retx_segments;
  e.rtos = rec.result.rtos;
  e.classes = rec.result.classes;
  e.error = rec.error;
  return e;
}

/// Execute one cell with isolation: budgets applied, failures caught, up to
/// `max_retries` reseeded re-attempts for plain failures. Budget trips are
/// deterministic, so retrying them would just burn the same budget again.
RunRecord run_cell(const ExperimentConfig& base, const SweepOptions& options) {
  RunRecord rec;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    ExperimentConfig cfg = base;
    if (cfg.max_events == 0) cfg.max_events = options.run_event_budget;
    if (cfg.max_wall_seconds == 0) cfg.max_wall_seconds = options.run_wall_budget_seconds;
    // Reseed retries: a crash tied to one RNG stream (e.g. a pathological
    // packet interleaving) should not condemn the cell. The seed is part of
    // the cache id, so a retry never collides with the failed attempt.
    // Attempt 0 is stream 0 (the configured seed); retries draw from a
    // dedicated sub-stream block so they can never collide with
    // run_averaged's repetition streams of the same base seed.
    cfg.seed = attempt == 0 ? base.seed
                            : sim::derive_seed(base.seed,
                                               0x100000000ULL + static_cast<std::uint64_t>(attempt));
    rec.attempts = attempt + 1;
    try {
      rec.result = run_averaged(cfg, options.repetitions, options.use_cache);
      rec.status = attempt == 0 ? RunStatus::kOk : RunStatus::kRetried;
      rec.error.clear();
      return rec;
    } catch (const RunTimeout& e) {
      rec.status = RunStatus::kTimedOut;
      rec.error = e.what();
      return rec;
    } catch (const std::exception& e) {
      rec.status = RunStatus::kFailed;
      rec.error = e.what();
    } catch (...) {
      rec.status = RunStatus::kFailed;
      rec.error = "unknown exception";
    }
  }
  return rec;
}

}  // namespace

SweepReport run_sweep_resilient(const std::vector<ExperimentConfig>& configs,
                                const SweepOptions& options) {
  SweepReport report;
  report.records.resize(configs.size());
  if (configs.empty()) return report;

  std::unique_ptr<SweepManifest> manifest;
  std::unordered_map<std::string, ManifestEntry> prior;
  if (!options.manifest_path.empty()) {
    if (options.resume) prior = SweepManifest::load(options.manifest_path);
    manifest = std::make_unique<SweepManifest>(options.manifest_path);
  }

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(configs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex report_mu;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      RunRecord& rec = report.records[i];
      const std::string id = configs[i].id();

      // Resume satisfies successful journal entries without re-running;
      // failed or timed-out entries are re-attempted (latest line wins when
      // the new outcome is journaled).
      const auto it = prior.find(id);
      if (it != prior.end() && it->second.success()) {
        rec.status = it->second.status;
        rec.attempts = 0;
        rec.resumed = true;
        rec.result = from_manifest(configs[i], it->second);
      } else {
        rec = run_cell(configs[i], options);
        if (manifest) manifest->append(to_manifest(i, id, rec));
      }

      const std::size_t d = done.fetch_add(1) + 1;
      if (options.on_result) {
        std::lock_guard lock(report_mu);
        options.on_result(rec.result, d, configs.size());
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return report;
}

std::vector<AveragedResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                      const SweepOptions& options) {
  SweepReport report = run_sweep_resilient(configs, options);
  std::vector<AveragedResult> results;
  results.reserve(report.records.size());
  for (RunRecord& rec : report.records) results.push_back(std::move(rec.result));
  return results;
}

}  // namespace elephant::exp
