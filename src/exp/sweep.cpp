#include "exp/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exp/cache.hpp"
#include "obs/export.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace elephant::exp {

std::vector<ExperimentConfig> make_matrix(
    const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& pairs,
    const std::vector<aqm::AqmKind>& aqms, const std::vector<double>& buffer_bdps,
    const std::vector<double>& bandwidths, std::uint64_t seed) {
  std::vector<ExperimentConfig> out;
  out.reserve(pairs.size() * aqms.size() * buffer_bdps.size() * bandwidths.size());
  for (const auto& [c1, c2] : pairs) {
    for (const aqm::AqmKind aqm : aqms) {
      for (const double bdp : buffer_bdps) {
        for (const double bw : bandwidths) {
          ExperimentConfig cfg;
          cfg.cca1 = c1;
          cfg.cca2 = c2;
          cfg.aqm = aqm;
          cfg.buffer_bdp = bdp;
          cfg.bottleneck_bps = bw;
          cfg.seed = seed;
          out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

std::vector<ExperimentConfig> paper_matrix(std::uint64_t seed) {
  return make_matrix(paper_cca_pairs(), paper_aqms(), paper_buffer_bdps(), paper_bandwidths(),
                     seed);
}

std::size_t SweepReport::count(RunStatus s) const {
  std::size_t n = 0;
  for (const RunRecord& r : records) {
    if (r.status == s) ++n;
  }
  return n;
}

std::size_t SweepReport::completed() const {
  return count(RunStatus::kOk) + count(RunStatus::kRetried);
}

std::size_t SweepReport::failed() const {
  return count(RunStatus::kFailed) + count(RunStatus::kTimedOut);
}

namespace {

/// Reconstruct the averaged view of a previously journaled cell. Per-flow
/// detail is not journaled, but the sweep-level aggregates are complete.
AveragedResult from_manifest(const ExperimentConfig& cfg, const ManifestEntry& e) {
  AveragedResult avg;
  avg.config = cfg;
  avg.repetitions = e.repetitions;
  avg.sender_bps[0] = e.sender_bps[0];
  avg.sender_bps[1] = e.sender_bps[1];
  avg.jain2 = e.jain2;
  avg.utilization = e.utilization;
  avg.retx_segments = e.retx_segments;
  avg.rtos = e.rtos;
  avg.classes = e.classes;
  return avg;
}

ManifestEntry to_manifest(std::size_t index, const std::string& id, const RunRecord& rec) {
  ManifestEntry e;
  e.index = index;
  e.id = id;
  e.status = rec.status;
  e.attempts = rec.attempts;
  e.repetitions = rec.result.repetitions;
  e.sender_bps[0] = rec.result.sender_bps[0];
  e.sender_bps[1] = rec.result.sender_bps[1];
  e.jain2 = rec.result.jain2;
  e.utilization = rec.result.utilization;
  e.retx_segments = rec.result.retx_segments;
  e.rtos = rec.result.rtos;
  e.classes = rec.result.classes;
  e.error = rec.error;
  return e;
}

/// Execute one cell with isolation: budgets applied, failures caught, up to
/// `max_retries` reseeded re-attempts for plain failures. Budget trips are
/// deterministic, so retrying them would just burn the same budget again.
RunRecord run_cell(const ExperimentConfig& base, const SweepOptions& options,
                   obs::MetricsRegistry* cell_metrics) {
  RunRecord rec;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    ExperimentConfig cfg = base;
    cfg.metrics = cell_metrics;
    if (cfg.max_events == 0) cfg.max_events = options.run_event_budget;
    if (cfg.max_wall_seconds == 0) cfg.max_wall_seconds = options.run_wall_budget_seconds;
    // Reseed retries: a crash tied to one RNG stream (e.g. a pathological
    // packet interleaving) should not condemn the cell. The seed is part of
    // the cache id, so a retry never collides with the failed attempt.
    // Attempt 0 is stream 0 (the configured seed); retries draw from a
    // dedicated sub-stream block so they can never collide with
    // run_averaged's repetition streams of the same base seed.
    cfg.seed = attempt == 0 ? base.seed
                            : sim::derive_seed(base.seed,
                                               0x100000000ULL + static_cast<std::uint64_t>(attempt));
    rec.attempts = attempt + 1;
    try {
      rec.result = run_averaged(cfg, options.repetitions, options.use_cache);
      rec.status = attempt == 0 ? RunStatus::kOk : RunStatus::kRetried;
      rec.error.clear();
      return rec;
    } catch (const RunTimeout& e) {
      rec.status = RunStatus::kTimedOut;
      rec.error = e.what();
      return rec;
    } catch (const std::exception& e) {
      rec.status = RunStatus::kFailed;
      rec.error = e.what();
    } catch (...) {
      rec.status = RunStatus::kFailed;
      rec.error = "unknown exception";
    }
  }
  return rec;
}

}  // namespace

SweepReport run_sweep_resilient(const std::vector<ExperimentConfig>& configs,
                                const SweepOptions& options) {
  SweepReport report;
  report.records.resize(configs.size());
  if (configs.empty()) return report;

  std::unique_ptr<SweepManifest> manifest;
  std::unordered_map<std::string, ManifestEntry> prior;
  if (!options.manifest_path.empty()) {
    if (options.resume) prior = SweepManifest::load(options.manifest_path);
    manifest = std::make_unique<SweepManifest>(options.manifest_path);
  }

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(configs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex report_mu;

  // Sweep telemetry: a caller-supplied shared registry, or an internal one
  // when only the heartbeat asked for it. Cells simulate into thread-local
  // registries merged here at cell boundaries.
  std::optional<obs::MetricsRegistry> owned_registry;
  obs::MetricsRegistry* reg = options.metrics;
  if (reg == nullptr && options.stats_interval_s > 0) {
    owned_registry.emplace();
    reg = &*owned_registry;
  }
  const std::uint64_t cache_hits0 = ResultCache::global().hits();
  const std::uint64_t cache_misses0 = ResultCache::global().misses();
  std::mutex status_mu;
  std::string current_label;
  obs::Counter* events_total = nullptr;
  if (reg != nullptr) {
    reg->gauge("sweep.cells_total").set(static_cast<double>(configs.size()));
    events_total = &reg->counter("sim.events");
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  std::optional<obs::Heartbeat> heartbeat;
  if (options.stats_interval_s > 0) {
    obs::Heartbeat::Options hb;
    hb.interval_s = options.stats_interval_s;
    hb.jsonl_path = options.metrics_path;
    if (hb.jsonl_path.empty()) {
      hb.jsonl_path = options.manifest_path.empty()
                          ? std::filesystem::path("metrics.jsonl")
                          : options.manifest_path.parent_path() / "metrics.jsonl";
    }
    // Shared-registry histograms change only under merge_from's lock, so
    // live ticks may include them.
    hb.histograms_in_ticks = true;
    heartbeat.emplace(
        *reg, hb,
        [&, total = configs.size()](std::string* fields, std::string* line) {
          const std::size_t d = done.load();
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
                  .count();
          const double eta = d > 0 ? elapsed * static_cast<double>(total - d) /
                                         static_cast<double>(d)
                                   : 0;
          const std::uint64_t events = events_total->value();
          const double rate = elapsed > 0 ? static_cast<double>(events) / elapsed : 0;
          std::string cell;
          {
            std::lock_guard lock(status_mu);
            cell = current_label;
          }
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "\"cells_done\":%zu,\"cells_total\":%zu,\"eta_s\":%.1f,"
                        "\"event_rate\":%.3g,\"cache_hits\":%" PRIu64 ",\"cell\":\"",
                        d, total, eta, rate,
                        ResultCache::global().hits() - cache_hits0);
          *fields += buf;
          obs::append_json_escaped(cell, fields);
          *fields += "\",";
          std::snprintf(buf, sizeof(buf),
                        "[sweep] %zu/%zu cells, eta %.0fs, %.3g ev/s, running: %s", d,
                        total, eta, rate, cell.c_str());
          *line = buf;
        });
    heartbeat->start();
  }

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      RunRecord& rec = report.records[i];
      const std::string id = configs[i].id();
      if (reg != nullptr) {
        std::lock_guard lock(status_mu);
        current_label = configs[i].label();
      }

      // Resume satisfies successful journal entries without re-running;
      // failed or timed-out entries are re-attempted (latest line wins when
      // the new outcome is journaled).
      const auto it = prior.find(id);
      if (it != prior.end() && it->second.success()) {
        rec.status = it->second.status;
        rec.attempts = 0;
        rec.resumed = true;
        rec.result = from_manifest(configs[i], it->second);
        if (reg != nullptr) reg->counter("sweep.cells_resumed").add(1);
      } else if (reg != nullptr) {
        // This cell's simulation writes a private registry (histograms are
        // single-writer); fold it into the shared one when the cell is done.
        obs::MetricsRegistry local;
        const auto cell_start = std::chrono::steady_clock::now();
        rec = run_cell(configs[i], options, &local);
        local.histogram("sweep.cell_wall_s")
            .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  cell_start)
                        .count());
        reg->merge_from(local);
        if (rec.attempts > 1) reg->counter("sweep.retries").add(rec.attempts - 1);
        if (!rec.success()) reg->counter("sweep.cells_failed").add(1);
        if (manifest) manifest->append(to_manifest(i, id, rec));
      } else {
        rec = run_cell(configs[i], options, nullptr);
        if (manifest) manifest->append(to_manifest(i, id, rec));
      }

      const std::size_t d = done.fetch_add(1) + 1;
      if (reg != nullptr) reg->counter("sweep.cells_done").add(1);
      if (options.on_result) {
        std::lock_guard lock(report_mu);
        options.on_result(rec.result, d, configs.size());
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (reg != nullptr) {
    reg->counter("sweep.cache_hits").add(ResultCache::global().hits() - cache_hits0);
    reg->counter("sweep.cache_misses").add(ResultCache::global().misses() - cache_misses0);
  }
  // The final heartbeat snapshot (histograms included) sees the finished
  // counters above; ~Heartbeat would emit it anyway, but stop explicitly so
  // the ordering is visible.
  if (heartbeat) heartbeat->stop();
  return report;
}

std::vector<AveragedResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                      const SweepOptions& options) {
  SweepReport report = run_sweep_resilient(configs, options);
  std::vector<AveragedResult> results;
  results.reserve(report.records.size());
  for (RunRecord& rec : report.records) results.push_back(std::move(rec.result));
  return results;
}

}  // namespace elephant::exp
