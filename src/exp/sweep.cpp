#include "exp/sweep.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exp/cache.hpp"
#include "exp/eta.hpp"
#include "exp/work_queue.hpp"
#include "obs/export.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace elephant::exp {

std::vector<ExperimentConfig> make_matrix(
    const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& pairs,
    const std::vector<aqm::AqmKind>& aqms, const std::vector<double>& buffer_bdps,
    const std::vector<double>& bandwidths, std::uint64_t seed) {
  std::vector<ExperimentConfig> out;
  out.reserve(pairs.size() * aqms.size() * buffer_bdps.size() * bandwidths.size());
  for (const auto& [c1, c2] : pairs) {
    for (const aqm::AqmKind aqm : aqms) {
      for (const double bdp : buffer_bdps) {
        for (const double bw : bandwidths) {
          ExperimentConfig cfg;
          cfg.cca1 = c1;
          cfg.cca2 = c2;
          cfg.aqm = aqm;
          cfg.buffer_bdp = bdp;
          cfg.bottleneck_bps = bw;
          cfg.seed = seed;
          out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

std::vector<ExperimentConfig> paper_matrix(std::uint64_t seed) {
  return make_matrix(paper_cca_pairs(), paper_aqms(), paper_buffer_bdps(), paper_bandwidths(),
                     seed);
}

std::size_t SweepReport::count(RunStatus s) const {
  std::size_t n = 0;
  for (const RunRecord& r : records) {
    if (r.status == s) ++n;
  }
  return n;
}

std::size_t SweepReport::completed() const {
  return count(RunStatus::kOk) + count(RunStatus::kRetried);
}

std::size_t SweepReport::failed() const {
  return count(RunStatus::kFailed) + count(RunStatus::kTimedOut);
}

std::size_t SweepReport::skipped() const { return count(RunStatus::kSkipped); }

double retry_backoff_s(std::uint64_t seed, int attempt, double base_s) {
  if (base_s <= 0 || attempt <= 0) return 0;
  // Cap the exponent: past 2^20 the sweep has bigger problems than jitter.
  const double expo = base_s * std::ldexp(1.0, std::min(attempt - 1, 20));
  const std::uint64_t r =
      sim::derive_seed(seed, 0x300000000ULL + static_cast<std::uint64_t>(attempt));
  const double u = static_cast<double>(r >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return expo * (0.5 + u);
}

namespace {

bool cancelled(const SweepOptions& options) {
  return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
}

/// Sleep for `delay_s`, waking early (returning false) if the sweep is
/// draining. 50 ms slices keep drain latency human-imperceptible.
bool interruptible_sleep(double delay_s, const SweepOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(delay_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancelled(options)) return false;
    const std::chrono::duration<double> remaining =
        deadline - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::min<std::chrono::duration<double>>(
        remaining, std::chrono::milliseconds(50)));
  }
  return !cancelled(options);
}

/// Reconstruct the averaged view of a previously journaled cell. Per-flow
/// detail is not journaled, but the sweep-level aggregates are complete.
AveragedResult from_manifest(const ExperimentConfig& cfg, const ManifestEntry& e) {
  AveragedResult avg;
  avg.config = cfg;
  avg.repetitions = e.repetitions;
  avg.sender_bps[0] = e.sender_bps[0];
  avg.sender_bps[1] = e.sender_bps[1];
  avg.jain2 = e.jain2;
  avg.utilization = e.utilization;
  avg.retx_segments = e.retx_segments;
  avg.rtos = e.rtos;
  avg.classes = e.classes;
  avg.episodes = e.episodes;
  avg.episode_worst_jain = e.episode_worst_jain;
  avg.episode_worst_t_s = e.episode_worst_t_s;
  avg.episode_victim = e.episode_victim;
  avg.episode_cause = e.episode_cause;
  return avg;
}

ManifestEntry to_manifest(std::size_t index, const std::string& id, const RunRecord& rec) {
  ManifestEntry e;
  e.index = index;
  e.id = id;
  e.status = rec.status;
  e.attempts = rec.attempts;
  e.repetitions = rec.result.repetitions;
  e.sender_bps[0] = rec.result.sender_bps[0];
  e.sender_bps[1] = rec.result.sender_bps[1];
  e.jain2 = rec.result.jain2;
  e.utilization = rec.result.utilization;
  e.retx_segments = rec.result.retx_segments;
  e.rtos = rec.result.rtos;
  e.classes = rec.result.classes;
  e.wall_s = rec.wall_s;
  e.episodes = rec.result.episodes;
  e.episode_worst_jain = rec.result.episode_worst_jain;
  e.episode_worst_t_s = rec.result.episode_worst_t_s;
  e.episode_victim = rec.result.episode_victim;
  e.episode_cause = rec.result.episode_cause;
  e.error = rec.error;
  return e;
}

/// Execute one cell with isolation: budgets applied, failures caught, up to
/// `max_retries` reseeded re-attempts for plain failures, each preceded by
/// exponential backoff with deterministic jitter (a crash from transient
/// host pressure — OOM, disk stall — deserves breathing room, and jitter
/// decorrelates workers retrying neighboring cells). Budget trips are
/// deterministic, so retrying them would just burn the same budget again.
RunRecord run_cell(const ExperimentConfig& base, const SweepOptions& options,
                   obs::MetricsRegistry* cell_metrics) {
  RunRecord rec;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    if (attempt > 0 &&
        !interruptible_sleep(retry_backoff_s(base.seed, attempt, options.backoff_base_s),
                             options)) {
      return rec;  // drained mid-backoff: report the last failure as-is
    }
    ExperimentConfig cfg = base;
    cfg.metrics = cell_metrics;
    if (cfg.max_events == 0) cfg.max_events = options.run_event_budget;
    if (cfg.max_wall_seconds == 0) cfg.max_wall_seconds = options.run_wall_budget_seconds;
    // Reseed retries: a crash tied to one RNG stream (e.g. a pathological
    // packet interleaving) should not condemn the cell. The seed is part of
    // the cache id, so a retry never collides with the failed attempt.
    // Attempt 0 is stream 0 (the configured seed); retries draw from a
    // dedicated sub-stream block so they can never collide with
    // run_averaged's repetition streams of the same base seed.
    cfg.seed = attempt == 0 ? base.seed
                            : sim::derive_seed(base.seed,
                                               0x100000000ULL + static_cast<std::uint64_t>(attempt));
    rec.attempts = attempt + 1;
    try {
      rec.result = run_averaged(cfg, options.repetitions, options.use_cache);
      rec.status = attempt == 0 ? RunStatus::kOk : RunStatus::kRetried;
      rec.error.clear();
      return rec;
    } catch (const RunTimeout& e) {
      rec.status = RunStatus::kTimedOut;
      rec.error = e.what();
      return rec;
    } catch (const std::exception& e) {
      rec.status = RunStatus::kFailed;
      rec.error = e.what();
    } catch (...) {
      rec.status = RunStatus::kFailed;
      rec.error = "unknown exception";
    }
  }
  return rec;
}

}  // namespace

SweepReport run_sweep_resilient(const std::vector<ExperimentConfig>& configs,
                                const SweepOptions& options) {
  SweepReport report;
  report.records.resize(configs.size());
  if (configs.empty()) return report;

  std::vector<std::string> ids;
  ids.reserve(configs.size());
  for (const ExperimentConfig& cfg : configs) ids.push_back(cfg.id());

  const std::string worker_id =
      options.worker_id.empty() ? "pid" + std::to_string(::getpid()) : options.worker_id;
  const bool queue_mode = !options.manifest_path.empty() && options.lease_s > 0;

  // Sweep telemetry registry is provisioned below; the queue wants it at
  // construction, so resolve it first.
  std::optional<obs::MetricsRegistry> owned_registry;
  obs::MetricsRegistry* reg = options.metrics;
  if (reg == nullptr && options.stats_interval_s > 0) {
    owned_registry.emplace();
    reg = &*owned_registry;
  }

  std::unique_ptr<SweepManifest> manifest;   // journal-only path (lease_s <= 0)
  std::unique_ptr<LeasedWorkQueue> queue;    // multi-worker lease path
  std::unordered_map<std::string, ManifestEntry> prior;
  if (queue_mode) {
    std::vector<std::pair<std::size_t, std::string>> cells;
    cells.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) cells.emplace_back(i, ids[i]);
    LeasedWorkQueue::Options qopt;
    qopt.worker_id = worker_id;
    qopt.lease_s = options.lease_s;
    qopt.resume = options.resume;
    qopt.metrics = reg;
    queue = std::make_unique<LeasedWorkQueue>(options.manifest_path, std::move(cells),
                                              std::move(qopt));
  } else if (!options.manifest_path.empty()) {
    if (options.resume) prior = SweepManifest::load(options.manifest_path);
    manifest = std::make_unique<SweepManifest>(options.manifest_path);
  }
  SweepManifest* journal = queue ? &queue->manifest() : manifest.get();
  if (journal != nullptr && !journal->ok()) {
    // An unusable journal means no durable record of anything this sweep
    // does — fail now, loudly, instead of simulating for hours into a void.
    throw std::runtime_error("sweep manifest unusable (" +
                             options.manifest_path.string() +
                             "): " + journal->last_error());
  }

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(configs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex report_mu;
  // Cells resolved by this worker's own threads; set before the pool joins,
  // read after — the join is the happens-before edge. Everything still false
  // after the run is filled from the journal (other workers / resume) or
  // marked kSkipped (drain).
  std::vector<char> touched(configs.size(), 0);

  const std::uint64_t cache_hits0 = ResultCache::global().hits();
  const std::uint64_t cache_misses0 = ResultCache::global().misses();
  std::mutex status_mu;
  std::string current_label;
  obs::Counter* events_total = nullptr;
  if (reg != nullptr) {
    reg->gauge("sweep.cells_total").set(static_cast<double>(configs.size()));
    events_total = &reg->counter("sim.events");
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  // ETA from an EWMA of recent cell wall times (see eta.hpp): robust to a
  // warm-cache prefix and to heterogeneous matrices where the lifetime
  // average badly misprices the remaining cells.
  EtaEstimator eta;
  std::optional<obs::Heartbeat> heartbeat;
  if (options.stats_interval_s > 0) {
    obs::Heartbeat::Options hb;
    hb.interval_s = options.stats_interval_s;
    hb.jsonl_path = options.metrics_path;
    if (hb.jsonl_path.empty()) {
      // Per-worker journals when an explicit worker id is in play: N worker
      // processes appending one shared metrics.jsonl would interleave lines.
      const std::string name = options.worker_id.empty()
                                   ? "metrics.jsonl"
                                   : "metrics-" + options.worker_id + ".jsonl";
      hb.jsonl_path = options.manifest_path.empty()
                          ? std::filesystem::path(name)
                          : options.manifest_path.parent_path() / name;
    }
    if (queue_mode) hb.worker_tag = worker_id;
    // Shared-registry histograms change only under merge_from's lock, so
    // live ticks may include them.
    hb.histograms_in_ticks = true;
    heartbeat.emplace(
        *reg, hb,
        [&, total = configs.size()](std::string* fields, std::string* line) {
          const std::size_t d = done.load();
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
                  .count();
          const double eta_s = eta.eta_s(d, total, threads);
          const std::uint64_t events = events_total->value();
          const double rate = elapsed > 0 ? static_cast<double>(events) / elapsed : 0;
          std::string cell;
          {
            std::lock_guard lock(status_mu);
            cell = current_label;
          }
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "\"cells_done\":%zu,\"cells_total\":%zu,\"eta_s\":%.1f,"
                        "\"event_rate\":%.3g,\"cache_hits\":%" PRIu64 ",\"cell\":\"",
                        d, total, eta_s, rate,
                        ResultCache::global().hits() - cache_hits0);
          *fields += buf;
          obs::append_json_escaped(cell, fields);
          *fields += "\",";
          std::snprintf(buf, sizeof(buf),
                        "[sweep] %zu/%zu cells, eta %.0fs, %.3g ev/s, running: %s", d,
                        total, eta_s, rate, cell.c_str());
          *line = buf;
        });
    heartbeat->start();
  }

  // Simulate one cell into a private registry (histograms are single-writer)
  // and fold the telemetry into the shared one at the cell boundary.
  auto execute_cell = [&](std::size_t i) -> RunRecord {
    if (reg != nullptr) {
      std::lock_guard lock(status_mu);
      current_label = configs[i].label();
    }
    RunRecord rec;
    const auto cell_start = std::chrono::steady_clock::now();
    if (reg != nullptr) {
      obs::MetricsRegistry local;
      rec = run_cell(configs[i], options, &local);
      rec.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 cell_start)
                       .count();
      local
          .histogram("sweep.cell_wall_s",
                     "Wall seconds per sweep cell (all attempts, this worker)")
          .record(rec.wall_s);
      reg->merge_from(local);
      if (rec.attempts > 1) reg->counter("sweep.retries").add(rec.attempts - 1);
      if (!rec.success()) reg->counter("sweep.cells_failed").add(1);
    } else {
      rec = run_cell(configs[i], options, nullptr);
      rec.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 cell_start)
                       .count();
    }
    eta.record_cell(rec.wall_s);
    return rec;
  };

  auto publish = [&](std::size_t i, const RunRecord& rec) {
    touched[i] = 1;
    const std::size_t d = done.fetch_add(1) + 1;
    if (reg != nullptr) reg->counter("sweep.cells_done").add(1);
    if (options.on_result) {
      std::lock_guard lock(report_mu);
      options.on_result(rec.result, d, configs.size());
    }
  };

  // Lease-coordinated worker: cells come from the shared journal queue, so
  // any number of processes (and this process's threads) interleave safely.
  auto queue_worker = [&] {
    while (true) {
      if (cancelled(options)) return;       // drain: claim nothing further
      if (!queue->healthy()) return;        // journal write failed: abort
      std::size_t i = 0;
      const LeasedWorkQueue::Claim claim = queue->try_claim(&i);
      if (claim == LeasedWorkQueue::Claim::kAllDone) return;
      if (claim == LeasedWorkQueue::Claim::kWaitLeased) {
        // Other workers hold every remaining cell; poll for steals or
        // completions at a fraction of the lease so takeover is prompt.
        if (!interruptible_sleep(std::clamp(options.lease_s / 4.0, 0.05, 0.5), options)) {
          return;
        }
        continue;
      }
      RunRecord& rec = report.records[i];
      rec = execute_cell(i);
      queue->complete(to_manifest(i, ids[i], rec));
      publish(i, rec);
    }
  };

  // Journal-only worker (lease_s <= 0 or no manifest): today's atomic-counter
  // scan, plus drain and write-failure checks.
  auto plain_worker = [&] {
    while (true) {
      if (cancelled(options)) return;
      if (manifest && !manifest->ok()) return;
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      RunRecord& rec = report.records[i];

      // Resume satisfies successful journal entries without re-running;
      // failed or timed-out entries are re-attempted (latest line wins when
      // the new outcome is journaled).
      const auto it = prior.find(ids[i]);
      if (it != prior.end() && it->second.success()) {
        rec.status = it->second.status;
        rec.attempts = 0;
        rec.resumed = true;
        rec.result = from_manifest(configs[i], it->second);
        if (reg != nullptr) reg->counter("sweep.cells_resumed").add(1);
      } else {
        rec = execute_cell(i);
        if (manifest) manifest->append(to_manifest(i, ids[i], rec));
      }
      publish(i, rec);
    }
  };

  auto worker = [&] { queue ? queue_worker() : plain_worker(); };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Fill report slots this worker never ran: from the journal when another
  // worker (or a prior resumed run) produced a terminal outcome, else mark
  // kSkipped — a drained sweep must not let default-constructed records
  // masquerade as successes.
  if (queue) queue->refresh();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (touched[i]) continue;
    RunRecord& rec = report.records[i];
    std::optional<ManifestEntry> e;
    if (queue) {
      e = queue->latest(ids[i]);
    } else {
      const auto it = prior.find(ids[i]);
      if (it != prior.end()) e = it->second;
    }
    if (e && e->terminal()) {
      rec.status = e->status;
      rec.attempts = 0;
      rec.resumed = true;
      rec.error = e->error;
      if (e->success()) rec.result = from_manifest(configs[i], *e);
      if (reg != nullptr) reg->counter("sweep.cells_resumed").add(1);
    } else {
      rec.status = RunStatus::kSkipped;
      rec.error = "not attempted (sweep drained)";
    }
  }

  if (reg != nullptr) {
    reg->counter("sweep.cache_hits").add(ResultCache::global().hits() - cache_hits0);
    reg->counter("sweep.cache_misses").add(ResultCache::global().misses() - cache_misses0);
  }
  // The final heartbeat snapshot (histograms included) sees the finished
  // counters above; ~Heartbeat would emit it anyway, but stop explicitly so
  // the ordering is visible.
  if (heartbeat) heartbeat->stop();

  // Ghost completions are worse than a dead sweep: if any journal write
  // failed (disk full, unlinked manifest), surface it as an error rather
  // than returning a report whose durable record is silently incomplete.
  if (journal != nullptr && !journal->ok()) {
    throw std::runtime_error("sweep aborted: manifest write failed (" +
                             options.manifest_path.string() +
                             "): " + journal->last_error());
  }
  return report;
}

std::vector<AveragedResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                      const SweepOptions& options) {
  SweepReport report = run_sweep_resilient(configs, options);
  std::vector<AveragedResult> results;
  results.reserve(report.records.size());
  for (RunRecord& rec : report.records) results.push_back(std::move(rec.result));
  return results;
}

}  // namespace elephant::exp
