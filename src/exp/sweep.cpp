#include "exp/sweep.hpp"

#include <atomic>
#include <mutex>
#include <thread>

namespace elephant::exp {

std::vector<ExperimentConfig> make_matrix(
    const std::vector<std::pair<cca::CcaKind, cca::CcaKind>>& pairs,
    const std::vector<aqm::AqmKind>& aqms, const std::vector<double>& buffer_bdps,
    const std::vector<double>& bandwidths, std::uint64_t seed) {
  std::vector<ExperimentConfig> out;
  out.reserve(pairs.size() * aqms.size() * buffer_bdps.size() * bandwidths.size());
  for (const auto& [c1, c2] : pairs) {
    for (const aqm::AqmKind aqm : aqms) {
      for (const double bdp : buffer_bdps) {
        for (const double bw : bandwidths) {
          ExperimentConfig cfg;
          cfg.cca1 = c1;
          cfg.cca2 = c2;
          cfg.aqm = aqm;
          cfg.buffer_bdp = bdp;
          cfg.bottleneck_bps = bw;
          cfg.seed = seed;
          out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

std::vector<ExperimentConfig> paper_matrix(std::uint64_t seed) {
  return make_matrix(paper_cca_pairs(), paper_aqms(), paper_buffer_bdps(), paper_bandwidths(),
                     seed);
}

std::vector<AveragedResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                      const SweepOptions& options) {
  std::vector<AveragedResult> results(configs.size());
  if (configs.empty()) return results;

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(configs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex report_mu;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      results[i] = run_averaged(configs[i], options.repetitions, options.use_cache);
      const std::size_t d = done.fetch_add(1) + 1;
      if (options.on_result) {
        std::lock_guard lock(report_mu);
        options.on_result(results[i], d, configs.size());
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return results;
}

}  // namespace elephant::exp
