#include "exp/runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "exp/cache.hpp"
#include "exp/cell.hpp"
#include "exp/flow_factory.hpp"
#include "exp/runner_internal.hpp"
#include "exp/status.hpp"
#include "metrics/fairness.hpp"
#include "metrics/fct.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace elephant::exp {

namespace detail {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

net::DumbbellConfig make_dumbbell_config(const ExperimentConfig& cfg, sim::Rng& rng) {
  net::DumbbellConfig topo;
  topo.bottleneck_bps = cfg.bottleneck_bps;
  topo.aqm = cfg.aqm;
  topo.bottleneck_buffer_bytes = static_cast<std::size_t>(cfg.buffer_bytes());
  topo.aqm_options.ecn = cfg.ecn;
  topo.random_loss = cfg.random_loss;
  topo.ge_loss = cfg.ge_loss;
  topo.seed = rng.next_u64();
  // Propagation splits to the paper's 62 ms RTT by default; respect a
  // non-default cfg.rtt by scaling the trunk delay.
  const sim::Time default_rtt = 2 * (topo.client_delay + topo.trunk_delay + topo.server_delay);
  if (cfg.rtt != default_rtt) {
    const sim::Time edge = topo.client_delay + topo.server_delay;
    topo.trunk_delay = cfg.rtt / 2 - edge;
    if (topo.trunk_delay < sim::Time::microseconds(10)) {
      // Tiny RTTs: floor the trunk delay and split whatever half-RTT remains
      // across the edges — clamped so no delay ever goes negative (a
      // negative propagation would schedule events in the past).
      topo.trunk_delay = sim::Time::microseconds(10);
      sim::Time rest = cfg.rtt / 2 - topo.trunk_delay;
      if (rest < sim::Time::microseconds(2)) rest = sim::Time::microseconds(2);
      topo.client_delay = topo.server_delay = rest / 2;
    }
  }
  return topo;
}

ExperimentResult finalize_experiment(const ExperimentConfig& cfg, sim::Time duration,
                                     FlowFactory& factory, net::Port& bottleneck,
                                     std::uint64_t events_executed,
                                     std::chrono::steady_clock::time_point wall_start) {
  ExperimentResult res;
  res.config = cfg;
  res.n_flows = static_cast<std::uint32_t>(factory.size());
  double side_bps[2] = {0, 0};
  std::vector<double> flow_bps;
  flow_bps.reserve(factory.size());
  for (std::size_t i = 0; i < factory.size(); ++i) {
    const FlowInstance& inst = factory.flow(i);
    FlowResult fr;
    fr.flow = inst.sender->config().flow;
    fr.sender = inst.side;
    fr.cca = inst.sender->cc().name();
    fr.start_s = inst.start_time.sec();
    if (inst.cls >= 0) {
      fr.cls = cfg.workload.classes[static_cast<std::size_t>(inst.cls)].name;
    }
    fr.transfer_bytes = inst.transfer_bytes;
    fr.completed = inst.sender->completed();
    if (fr.completed) {
      fr.fct_s = (inst.sender->completion_time() - inst.start_time).sec();
    }
    // Measure goodput over the flow's own active window: the staggered
    // starts (up to 0.5 s) would otherwise bias late starters low. Finite
    // flows that completed are active only until their last ACK.
    const sim::Time active =
        fr.completed ? inst.sender->completion_time() - inst.start_time
                     : duration - inst.start_time;
    fr.throughput_bps =
        active > sim::Time::zero()
            ? static_cast<double>(inst.receiver->delivered_bytes()) * 8.0 / active.sec()
            : 0.0;
    fr.retx_segments = inst.sender->retx_segments();
    fr.rtos = inst.sender->stats().rtos;
    fr.srtt_ms = inst.sender->rtt().srtt().ms();
    side_bps[inst.side] += fr.throughput_bps;
    res.retx_segments += fr.retx_segments;
    res.rtos += fr.rtos;
    flow_bps.push_back(fr.throughput_bps);
    res.flows.push_back(std::move(fr));
  }
  res.sender_bps[0] = side_bps[0];
  res.sender_bps[1] = side_bps[1];
  res.jain2 = metrics::jain_index(std::span<const double>(side_bps, 2));
  res.utilization = metrics::link_utilization(flow_bps, cfg.bottleneck_bps);
  res.bottleneck = bottleneck.qdisc().stats();
  res.events_executed = events_executed;
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (cfg.metrics != nullptr) {
    // Run-boundary publication: counters ride the stats the components
    // already keep, so the hot paths paid nothing for them.
    obs::MetricsRegistry& reg = *cfg.metrics;
    const aqm::QueueStats& qs = res.bottleneck;
    reg.counter("queue.enqueued").add(qs.enqueued);
    reg.counter("queue.dequeued").add(qs.dequeued);
    reg.counter("queue.dropped_overflow").add(qs.dropped_overflow);
    reg.counter("queue.dropped_early").add(qs.dropped_early);
    reg.counter("queue.ecn_marked").add(qs.ecn_marked);
    std::uint64_t acks = 0;
    std::uint64_t congestion_events = 0;
    for (std::size_t i = 0; i < factory.size(); ++i) {
      const FlowInstance& inst = factory.flow(i);
      acks += inst.sender->stats().acks_received;
      congestion_events += inst.sender->stats().congestion_events;
    }
    reg.counter("tcp.acks_received").add(acks);
    reg.counter("tcp.congestion_events").add(congestion_events);
    reg.counter("tcp.retx_segments").add(res.retx_segments);
    reg.counter("tcp.rtos").add(res.rtos);
    reg.counter("sim.events").add(res.events_executed);
    reg.counter("runs.completed").add(1);
    if (res.wall_seconds > 0) {
      reg.gauge("sim.sim_s_per_wall_s").set(duration.sec() / res.wall_seconds);
    }
    // Memory telemetry: peak scoreboard footprint across all flows (peaks
    // survive the post-completion release), the flow-state arenas, and the
    // process peak RSS the kernel observed. Gauges, not counters: each run
    // reports its own footprint.
    reg.gauge("mem.scoreboard_peak_bytes")
        .set(static_cast<double>(factory.scoreboard_peak_bytes()));
    reg.gauge("mem.flow_arena_bytes").set(static_cast<double>(factory.arena_bytes()));
    if (const std::uint64_t rss = detail::peak_rss_bytes(); rss > 0) {
      reg.gauge("mem.peak_rss_bytes").set(static_cast<double>(rss));
    }
  }

  if (!cfg.workload.is_paper_default()) {
    // Per-class aggregation: byte shares over the whole run, Jain across the
    // class's flow goodputs, FCT/slowdown percentiles over completed finite
    // flows.
    double total_bytes = 0;
    std::vector<double> class_bytes(cfg.workload.classes.size(), 0.0);
    for (std::size_t i = 0; i < factory.size(); ++i) {
      const FlowInstance& inst = factory.flow(i);
      const auto delivered = static_cast<double>(inst.receiver->delivered_bytes());
      total_bytes += delivered;
      if (inst.cls >= 0) class_bytes[static_cast<std::size_t>(inst.cls)] += delivered;
    }
    // Utilization over per-flow window rates (the legacy definition above)
    // overcounts when short flows burst and leave; for mixed traffic φ is
    // total delivered bytes over the link's capacity for the whole run.
    if (duration > sim::Time::zero() && cfg.bottleneck_bps > 0) {
      res.utilization = total_bytes * 8.0 / (duration.sec() * cfg.bottleneck_bps);
    }
    for (std::size_t ci = 0; ci < cfg.workload.classes.size(); ++ci) {
      const workload::TrafficClass& tc = cfg.workload.classes[ci];
      ClassResult cr;
      cr.name = tc.name;
      std::vector<double> goodputs;
      std::vector<double> fcts;
      std::vector<double> slowdowns;
      for (std::size_t i = 0; i < factory.size(); ++i) {
        const FlowInstance& inst = factory.flow(i);
        if (inst.cls != static_cast<int>(ci)) continue;
        const FlowResult& fr = res.flows[i];
        ++cr.flows;
        goodputs.push_back(fr.throughput_bps);
        if (fr.completed) {
          ++cr.completed;
          fcts.push_back(fr.fct_s);
          // fct_slowdown reports degenerate inputs (zero-byte transfers,
          // unset bottleneck) as NaN; a NaN in the percentile input would
          // poison the sort, so drop those samples here.
          const double sd = metrics::fct_slowdown(fr.fct_s,
                                                  static_cast<double>(fr.transfer_bytes),
                                                  cfg.bottleneck_bps, cfg.rtt.sec());
          if (std::isfinite(sd)) slowdowns.push_back(sd);
        }
      }
      cr.throughput_bps =
          duration > sim::Time::zero() ? class_bytes[ci] * 8.0 / duration.sec() : 0.0;
      cr.share = total_bytes > 0 ? class_bytes[ci] / total_bytes : 0.0;
      cr.jain = metrics::jain_index(goodputs);
      const metrics::FctSummary fs = metrics::fct_summary(fcts);
      cr.fct_mean_s = fs.mean_s;
      cr.fct_p50_s = fs.p50_s;
      cr.fct_p95_s = fs.p95_s;
      cr.fct_p99_s = fs.p99_s;
      cr.slowdown_p50 = metrics::percentile(slowdowns, 0.50);
      cr.slowdown_p95 = metrics::percentile(slowdowns, 0.95);
      cr.slowdown_p99 = metrics::percentile(slowdowns, 0.99);
      res.classes.push_back(std::move(cr));
    }
  }

  if (cfg.check_invariants) {
    auto fail = [&](const std::string& what) {
      throw InvariantViolation("run " + cfg.id() + ": " + what);
    };
    const aqm::QueueStats& qs = res.bottleneck;
    const auto backlog_pkts = static_cast<std::uint64_t>(bottleneck.qdisc().packet_length());
    const auto backlog_bytes = static_cast<std::uint64_t>(bottleneck.qdisc().byte_length());
    // Packet conservation at the bottleneck: every accepted packet either
    // left the queue, was dropped after acceptance (CoDel-style dequeue
    // drops land in dropped_early; FQ-CoDel overflow evicts an already
    // accepted victim into dropped_overflow), or is still queued.
    if (qs.enqueued < qs.dequeued + backlog_pkts ||
        qs.enqueued > qs.dequeued + qs.dropped_early + qs.dropped_overflow + backlog_pkts) {
      fail("bottleneck packet conservation violated: enqueued=" +
           std::to_string(qs.enqueued) + " dequeued=" + std::to_string(qs.dequeued) +
           " early=" + std::to_string(qs.dropped_early) +
           " overflow=" + std::to_string(qs.dropped_overflow) +
           " backlog=" + std::to_string(backlog_pkts));
    }
    // Byte conservation: bytes handed to the link (the port's tx counter)
    // plus the backlog never exceed the accepted bytes, and the gap is
    // bounded by the dropped bytes.
    const std::uint64_t tx = bottleneck.tx_bytes();
    if (qs.bytes_enqueued < tx + backlog_bytes ||
        qs.bytes_enqueued > tx + backlog_bytes + qs.bytes_dropped) {
      fail("bottleneck byte conservation violated: bytes_enqueued=" +
           std::to_string(qs.bytes_enqueued) + " tx_bytes=" + std::to_string(tx) +
           " backlog=" + std::to_string(backlog_bytes) +
           " dropped=" + std::to_string(qs.bytes_dropped));
    }
    for (std::size_t i = 0; i < factory.size(); ++i) {
      const FlowInstance& inst = factory.flow(i);
      const double cwnd = inst.sender->cc().cwnd_segments();
      const double floor = inst.sender->cc().params().min_cwnd_segments;
      if (!(cwnd >= floor - 1e-9) || !std::isfinite(cwnd)) {
        fail("flow " + std::to_string(inst.sender->config().flow) + " cwnd " +
             std::to_string(cwnd) + " below floor " + std::to_string(floor));
      }
      // A finite flow that reports completion must have delivered the whole
      // object to its receiver (byte conservation end to end).
      if (inst.sender->completed() &&
          inst.receiver->delivered_bytes() <
              std::uint64_t{inst.sender->config().transfer_units} *
                  inst.sender->config().mss * inst.sender->config().agg) {
        fail("flow " + std::to_string(inst.sender->config().flow) +
             " completed but delivered only " +
             std::to_string(inst.receiver->delivered_bytes()) + " bytes");
      }
    }
    for (const FlowResult& fr : res.flows) {
      if (!(fr.throughput_bps >= 0) || !std::isfinite(fr.throughput_bps)) {
        fail("flow " + std::to_string(fr.flow) + " throughput " +
             std::to_string(fr.throughput_bps) + " is negative or non-finite");
      }
      if (fr.completed && !(fr.fct_s > 0 && std::isfinite(fr.fct_s))) {
        fail("flow " + std::to_string(fr.flow) + " completed with bad FCT " +
             std::to_string(fr.fct_s));
      }
    }
  }

  if (cfg.tracer != nullptr) cfg.tracer->flush();
  return res;
}

}  // namespace detail

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (cfg.shards > 1) return detail::run_sharded_experiment(cfg);

  // The single-shard engine lives in exp::Cell so the model checker can hold
  // a run open for stepping and snapshot/restore; constructing a cell and
  // running it to completion is the historical behavior bit for bit.
  Cell cell(cfg);
  return cell.run_to_completion();
}

AveragedResult average(const ExperimentConfig& cfg, const std::vector<ExperimentResult>& runs) {
  AveragedResult avg;
  avg.config = cfg;
  avg.repetitions = static_cast<int>(runs.size());
  if (runs.empty()) return avg;
  avg.jain2 = 0;  // accumulator: clear the "trivially fair" default
  for (const ExperimentResult& r : runs) {
    avg.sender_bps[0] += r.sender_bps[0];
    avg.sender_bps[1] += r.sender_bps[1];
    avg.jain2 += r.jain2;
    avg.utilization += r.utilization;
    avg.retx_segments += static_cast<double>(r.retx_segments);
    avg.rtos += static_cast<double>(r.rtos);
  }
  const double n = static_cast<double>(runs.size());
  avg.sender_bps[0] /= n;
  avg.sender_bps[1] /= n;
  avg.jain2 /= n;
  avg.utilization /= n;
  avg.retx_segments /= n;
  avg.rtos /= n;

  // Episode summary: mean count per repetition plus the single worst episode
  // seen anywhere (a sweep ranks cells by how unfair they ever got, not by
  // how the unfairness averaged out).
  double episode_total = 0;
  for (const ExperimentResult& r : runs) {
    episode_total += static_cast<double>(r.episodes.size());
    for (const obs::Episode& e : r.episodes) {
      if (e.worst_jain < avg.episode_worst_jain || avg.episode_cause.empty()) {
        avg.episode_worst_jain = e.worst_jain;
        avg.episode_worst_t_s = e.worst_t_s;
        avg.episode_victim = e.victim_flow;
        avg.episode_cause = e.cause;
      }
    }
  }
  avg.episodes = episode_total / n;

  // Per-class means, matched by index (every repetition runs the same
  // WorkloadSpec and therefore reports the same class list).
  const std::size_t n_classes = runs.front().classes.size();
  for (std::size_t ci = 0; ci < n_classes; ++ci) {
    ClassResult acc;
    acc.name = runs.front().classes[ci].name;
    acc.jain = 0;  // accumulator
    double flows = 0;
    double completed = 0;
    for (const ExperimentResult& r : runs) {
      if (ci >= r.classes.size()) continue;
      const ClassResult& c = r.classes[ci];
      flows += c.flows;
      completed += c.completed;
      acc.throughput_bps += c.throughput_bps;
      acc.share += c.share;
      acc.jain += c.jain;
      acc.fct_p50_s += c.fct_p50_s;
      acc.fct_p95_s += c.fct_p95_s;
      acc.fct_p99_s += c.fct_p99_s;
      acc.fct_mean_s += c.fct_mean_s;
      acc.slowdown_p50 += c.slowdown_p50;
      acc.slowdown_p95 += c.slowdown_p95;
      acc.slowdown_p99 += c.slowdown_p99;
    }
    acc.flows = static_cast<std::uint32_t>(std::llround(flows / n));
    acc.completed = static_cast<std::uint32_t>(std::llround(completed / n));
    acc.throughput_bps /= n;
    acc.share /= n;
    acc.jain /= n;
    acc.fct_p50_s /= n;
    acc.fct_p95_s /= n;
    acc.fct_p99_s /= n;
    acc.fct_mean_s /= n;
    acc.slowdown_p50 /= n;
    acc.slowdown_p95 /= n;
    acc.slowdown_p99 /= n;
    avg.classes.push_back(std::move(acc));
  }
  return avg;
}

AveragedResult run_averaged(const ExperimentConfig& cfg, int reps, bool use_cache) {
  // A cache hit would skip the simulation and therefore emit no trace.
  if (cfg.tracer != nullptr) use_cache = false;
  std::vector<ExperimentResult> runs;
  runs.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    ExperimentConfig c = cfg;
    // Repetition r runs sub-stream r of the configured seed (stream 0 is the
    // seed itself, so single-rep results keep their identity).
    c.seed = sim::derive_seed(cfg.seed, static_cast<std::uint64_t>(r));
    if (use_cache) {
      if (auto cached = ResultCache::global().load(c)) {
        runs.push_back(*std::move(cached));
        continue;
      }
    }
    ExperimentResult res = run_experiment(c);
    if (use_cache) ResultCache::global().store(res);
    runs.push_back(std::move(res));
  }
  return average(cfg, runs);
}

int default_repetitions() {
  if (const char* env = std::getenv("ELEPHANT_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

}  // namespace elephant::exp
