#include "exp/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "exp/cache.hpp"
#include "metrics/fairness.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace elephant::exp {

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Scheduler sched;
  sim::Rng rng(cfg.seed);

  net::DumbbellConfig topo;
  topo.bottleneck_bps = cfg.bottleneck_bps;
  topo.aqm = cfg.aqm;
  topo.bottleneck_buffer_bytes = static_cast<std::size_t>(cfg.buffer_bytes());
  topo.aqm_options.ecn = cfg.ecn;
  topo.random_loss = cfg.random_loss;
  topo.seed = rng.next_u64();
  // Propagation splits to the paper's 62 ms RTT by default; respect a
  // non-default cfg.rtt by scaling the trunk delay.
  const sim::Time default_rtt = 2 * (topo.client_delay + topo.trunk_delay + topo.server_delay);
  if (cfg.rtt != default_rtt) {
    const sim::Time edge = topo.client_delay + topo.server_delay;
    topo.trunk_delay = cfg.rtt / 2 - edge;
    if (topo.trunk_delay < sim::Time::microseconds(10)) {
      topo.trunk_delay = sim::Time::microseconds(10);
      topo.client_delay = topo.server_delay =
          (cfg.rtt / 2 - topo.trunk_delay) / 2;
    }
  }
  net::Dumbbell net(sched, topo);

  const std::uint32_t n_flows = std::max<std::uint32_t>(cfg.effective_flows(), 1);
  // Split across the two sender nodes; odd counts give the extra flow to
  // side 0 (cca1) deterministically, instead of silently dropping it.
  const std::uint32_t per_side[2] = {(n_flows + 1) / 2, n_flows / 2};
  const std::uint32_t agg = cfg.effective_aggregation();
  const sim::Time duration = cfg.effective_duration();

  struct FlowEnd {
    std::unique_ptr<tcp::TcpSender> sender;
    std::unique_ptr<tcp::TcpReceiver> receiver;
    int side;
  };
  std::vector<FlowEnd> ends;
  ends.reserve(n_flows);

  if (cfg.tracer != nullptr) {
    net.set_tracer(cfg.tracer);
    net.bottleneck().start_queue_sampling(cfg.trace_queue_interval);
  }

  for (int side = 0; side < 2; ++side) {
    const cca::CcaKind kind = side == 0 ? cfg.cca1 : cfg.cca2;
    for (std::uint32_t i = 0; i < per_side[side]; ++i) {
      const net::FlowId flow = static_cast<net::FlowId>(ends.size() + 1);
      net::Host& client = net.client(side);
      net::Host& server = net.server(side);

      cca::CcaParams cp;
      cp.mss_bytes = cfg.mss;
      cp.initial_cwnd_segments = std::max<double>(10.0, agg);
      cp.min_cwnd_segments = std::max<double>(2.0, agg);
      cp.seed = rng.next_u64();

      tcp::TcpSenderConfig sc;
      sc.flow = flow;
      sc.src = client.id();
      sc.dst = server.id();
      sc.mss = cfg.mss;
      sc.agg = agg;
      sc.ecn = cfg.ecn;
      sc.pace_always = cfg.pace_all;
      // Stagger starts within half a second, like scripted iperf3 launches.
      sc.start_time = sim::Time::seconds(0.5 * rng.next_double());

      FlowEnd end;
      end.side = side;
      end.receiver = std::make_unique<tcp::TcpReceiver>(sched, server, client.id(), flow);
      end.sender = std::make_unique<tcp::TcpSender>(sched, client, sc,
                                                    cca::make_cca(kind, cp));
      if (cfg.tracer != nullptr) end.sender->set_tracer(cfg.tracer);
      client.register_endpoint(flow, end.sender.get());
      server.register_endpoint(flow, end.receiver.get());
      end.sender->start();
      ends.push_back(std::move(end));
    }
  }

  sched.run_until(duration);

  ExperimentResult res;
  res.config = cfg;
  res.n_flows = static_cast<std::uint32_t>(ends.size());
  double side_bps[2] = {0, 0};
  std::vector<double> flow_bps;
  flow_bps.reserve(ends.size());
  for (const FlowEnd& end : ends) {
    FlowResult fr;
    fr.flow = end.sender->config().flow;
    fr.sender = end.side;
    fr.cca = end.sender->cc().name();
    fr.start_s = end.sender->config().start_time.sec();
    // Measure goodput over the flow's own active window: the staggered
    // starts (up to 0.5 s) would otherwise bias late starters low.
    const sim::Time active = duration - end.sender->config().start_time;
    fr.throughput_bps =
        active > sim::Time::zero()
            ? static_cast<double>(end.receiver->delivered_bytes()) * 8.0 / active.sec()
            : 0.0;
    fr.retx_segments = end.sender->retx_segments();
    fr.rtos = end.sender->stats().rtos;
    fr.srtt_ms = end.sender->rtt().srtt().ms();
    side_bps[end.side] += fr.throughput_bps;
    res.retx_segments += fr.retx_segments;
    res.rtos += fr.rtos;
    flow_bps.push_back(fr.throughput_bps);
    res.flows.push_back(std::move(fr));
  }
  res.sender_bps[0] = side_bps[0];
  res.sender_bps[1] = side_bps[1];
  res.jain2 = metrics::jain_index(std::span<const double>(side_bps, 2));
  res.utilization = metrics::link_utilization(flow_bps, cfg.bottleneck_bps);
  res.bottleneck = net.bottleneck().qdisc().stats();
  res.events_executed = sched.executed_events();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (cfg.tracer != nullptr) cfg.tracer->flush();
  return res;
}

AveragedResult average(const ExperimentConfig& cfg, const std::vector<ExperimentResult>& runs) {
  AveragedResult avg;
  avg.config = cfg;
  avg.repetitions = static_cast<int>(runs.size());
  if (runs.empty()) return avg;
  avg.jain2 = 0;  // accumulator: clear the "trivially fair" default
  for (const ExperimentResult& r : runs) {
    avg.sender_bps[0] += r.sender_bps[0];
    avg.sender_bps[1] += r.sender_bps[1];
    avg.jain2 += r.jain2;
    avg.utilization += r.utilization;
    avg.retx_segments += static_cast<double>(r.retx_segments);
    avg.rtos += static_cast<double>(r.rtos);
  }
  const double n = static_cast<double>(runs.size());
  avg.sender_bps[0] /= n;
  avg.sender_bps[1] /= n;
  avg.jain2 /= n;
  avg.utilization /= n;
  avg.retx_segments /= n;
  avg.rtos /= n;
  return avg;
}

AveragedResult run_averaged(const ExperimentConfig& cfg, int reps, bool use_cache) {
  // A cache hit would skip the simulation and therefore emit no trace.
  if (cfg.tracer != nullptr) use_cache = false;
  std::vector<ExperimentResult> runs;
  runs.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    ExperimentConfig c = cfg;
    c.seed = cfg.seed + static_cast<std::uint64_t>(r) * 1000003;
    if (use_cache) {
      if (auto cached = ResultCache::global().load(c)) {
        runs.push_back(*std::move(cached));
        continue;
      }
    }
    ExperimentResult res = run_experiment(c);
    if (use_cache) ResultCache::global().store(res);
    runs.push_back(std::move(res));
  }
  return average(cfg, runs);
}

int default_repetitions() {
  if (const char* env = std::getenv("ELEPHANT_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

}  // namespace elephant::exp
