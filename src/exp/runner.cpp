#include "exp/runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "exp/cache.hpp"
#include "exp/status.hpp"
#include "metrics/fairness.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace elephant::exp {

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Scheduler sched;
  sim::Rng rng(cfg.seed);

  net::DumbbellConfig topo;
  topo.bottleneck_bps = cfg.bottleneck_bps;
  topo.aqm = cfg.aqm;
  topo.bottleneck_buffer_bytes = static_cast<std::size_t>(cfg.buffer_bytes());
  topo.aqm_options.ecn = cfg.ecn;
  topo.random_loss = cfg.random_loss;
  topo.ge_loss = cfg.ge_loss;
  topo.seed = rng.next_u64();
  // Propagation splits to the paper's 62 ms RTT by default; respect a
  // non-default cfg.rtt by scaling the trunk delay.
  const sim::Time default_rtt = 2 * (topo.client_delay + topo.trunk_delay + topo.server_delay);
  if (cfg.rtt != default_rtt) {
    const sim::Time edge = topo.client_delay + topo.server_delay;
    topo.trunk_delay = cfg.rtt / 2 - edge;
    if (topo.trunk_delay < sim::Time::microseconds(10)) {
      // Tiny RTTs: floor the trunk delay and split whatever half-RTT remains
      // across the edges — clamped so no delay ever goes negative (a
      // negative propagation would schedule events in the past).
      topo.trunk_delay = sim::Time::microseconds(10);
      sim::Time rest = cfg.rtt / 2 - topo.trunk_delay;
      if (rest < sim::Time::microseconds(2)) rest = sim::Time::microseconds(2);
      topo.client_delay = topo.server_delay = rest / 2;
    }
  }
  net::Dumbbell net(sched, topo);

  // The injector owns the RNG behind probabilistic link perturbations, so it
  // must outlive the scheduler run below. Constructed (and the seed stream
  // consumed) only when a plan exists, keeping fault-free runs bit-identical
  // to pre-fault-subsystem results.
  std::optional<fault::FaultInjector> faults;
  if (!cfg.fault_plan.empty()) {
    faults.emplace(sched, net.bottleneck(), rng.next_u64(), cfg.tracer);
    faults->install(cfg.fault_plan);
  }

  const std::uint32_t n_flows = std::max<std::uint32_t>(cfg.effective_flows(), 1);
  // Split across the two sender nodes; odd counts give the extra flow to
  // side 0 (cca1) deterministically, instead of silently dropping it.
  const std::uint32_t per_side[2] = {(n_flows + 1) / 2, n_flows / 2};
  const std::uint32_t agg = cfg.effective_aggregation();
  const sim::Time duration = cfg.effective_duration();

  struct FlowEnd {
    std::unique_ptr<tcp::TcpSender> sender;
    std::unique_ptr<tcp::TcpReceiver> receiver;
    int side;
  };
  std::vector<FlowEnd> ends;
  ends.reserve(n_flows);

  if (cfg.tracer != nullptr) {
    net.set_tracer(cfg.tracer);
    net.bottleneck().start_queue_sampling(cfg.trace_queue_interval);
  }

  for (int side = 0; side < 2; ++side) {
    const cca::CcaKind kind = side == 0 ? cfg.cca1 : cfg.cca2;
    for (std::uint32_t i = 0; i < per_side[side]; ++i) {
      const net::FlowId flow = static_cast<net::FlowId>(ends.size() + 1);
      net::Host& client = net.client(side);
      net::Host& server = net.server(side);

      cca::CcaParams cp;
      cp.mss_bytes = cfg.mss;
      cp.initial_cwnd_segments = std::max<double>(10.0, agg);
      cp.min_cwnd_segments = std::max<double>(2.0, agg);
      cp.seed = rng.next_u64();

      tcp::TcpSenderConfig sc;
      sc.flow = flow;
      sc.src = client.id();
      sc.dst = server.id();
      sc.mss = cfg.mss;
      sc.agg = agg;
      sc.ecn = cfg.ecn;
      sc.pace_always = cfg.pace_all;
      // Stagger starts within half a second, like scripted iperf3 launches.
      sc.start_time = sim::Time::seconds(0.5 * rng.next_double());

      FlowEnd end;
      end.side = side;
      end.receiver = std::make_unique<tcp::TcpReceiver>(sched, server, client.id(), flow);
      end.sender = std::make_unique<tcp::TcpSender>(sched, client, sc,
                                                    cca::make_cca(kind, cp));
      if (cfg.tracer != nullptr) end.sender->set_tracer(cfg.tracer);
      client.register_endpoint(flow, end.sender.get());
      server.register_endpoint(flow, end.receiver.get());
      end.sender->start();
      ends.push_back(std::move(end));
    }
  }

  sim::Scheduler::RunLimits limits;
  limits.max_events = cfg.max_events;
  limits.max_wall_seconds = cfg.max_wall_seconds;
  const auto stop = sched.run_until(duration, limits);
  if (stop == sim::Scheduler::StopReason::kEventBudget ||
      stop == sim::Scheduler::StopReason::kWallBudget) {
    const bool events = stop == sim::Scheduler::StopReason::kEventBudget;
    throw RunTimeout("run " + cfg.id() + " exceeded its " +
                     (events ? "event budget (" + std::to_string(cfg.max_events) + " events)"
                             : "wall budget (" + std::to_string(cfg.max_wall_seconds) +
                                   " s)") +
                     " at t=" + sched.now().to_string());
  }

  ExperimentResult res;
  res.config = cfg;
  res.n_flows = static_cast<std::uint32_t>(ends.size());
  double side_bps[2] = {0, 0};
  std::vector<double> flow_bps;
  flow_bps.reserve(ends.size());
  for (const FlowEnd& end : ends) {
    FlowResult fr;
    fr.flow = end.sender->config().flow;
    fr.sender = end.side;
    fr.cca = end.sender->cc().name();
    fr.start_s = end.sender->config().start_time.sec();
    // Measure goodput over the flow's own active window: the staggered
    // starts (up to 0.5 s) would otherwise bias late starters low.
    const sim::Time active = duration - end.sender->config().start_time;
    fr.throughput_bps =
        active > sim::Time::zero()
            ? static_cast<double>(end.receiver->delivered_bytes()) * 8.0 / active.sec()
            : 0.0;
    fr.retx_segments = end.sender->retx_segments();
    fr.rtos = end.sender->stats().rtos;
    fr.srtt_ms = end.sender->rtt().srtt().ms();
    side_bps[end.side] += fr.throughput_bps;
    res.retx_segments += fr.retx_segments;
    res.rtos += fr.rtos;
    flow_bps.push_back(fr.throughput_bps);
    res.flows.push_back(std::move(fr));
  }
  res.sender_bps[0] = side_bps[0];
  res.sender_bps[1] = side_bps[1];
  res.jain2 = metrics::jain_index(std::span<const double>(side_bps, 2));
  res.utilization = metrics::link_utilization(flow_bps, cfg.bottleneck_bps);
  res.bottleneck = net.bottleneck().qdisc().stats();
  res.events_executed = sched.executed_events();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (cfg.check_invariants) {
    auto fail = [&](const std::string& what) {
      throw InvariantViolation("run " + cfg.id() + ": " + what);
    };
    const aqm::QueueStats& qs = res.bottleneck;
    const auto backlog_pkts = static_cast<std::uint64_t>(net.bottleneck().qdisc().packet_length());
    const auto backlog_bytes = static_cast<std::uint64_t>(net.bottleneck().qdisc().byte_length());
    // Packet conservation at the bottleneck: every accepted packet either
    // left the queue, was dropped after acceptance (CoDel-style dequeue
    // drops land in dropped_early; FQ-CoDel overflow evicts an already
    // accepted victim into dropped_overflow), or is still queued.
    if (qs.enqueued < qs.dequeued + backlog_pkts ||
        qs.enqueued > qs.dequeued + qs.dropped_early + qs.dropped_overflow + backlog_pkts) {
      fail("bottleneck packet conservation violated: enqueued=" +
           std::to_string(qs.enqueued) + " dequeued=" + std::to_string(qs.dequeued) +
           " early=" + std::to_string(qs.dropped_early) +
           " overflow=" + std::to_string(qs.dropped_overflow) +
           " backlog=" + std::to_string(backlog_pkts));
    }
    // Byte conservation: bytes handed to the link (the port's tx counter)
    // plus the backlog never exceed the accepted bytes, and the gap is
    // bounded by the dropped bytes.
    const std::uint64_t tx = net.bottleneck().tx_bytes();
    if (qs.bytes_enqueued < tx + backlog_bytes ||
        qs.bytes_enqueued > tx + backlog_bytes + qs.bytes_dropped) {
      fail("bottleneck byte conservation violated: bytes_enqueued=" +
           std::to_string(qs.bytes_enqueued) + " tx_bytes=" + std::to_string(tx) +
           " backlog=" + std::to_string(backlog_bytes) +
           " dropped=" + std::to_string(qs.bytes_dropped));
    }
    for (const FlowEnd& end : ends) {
      const double cwnd = end.sender->cc().cwnd_segments();
      const double floor = end.sender->cc().params().min_cwnd_segments;
      if (!(cwnd >= floor - 1e-9) || !std::isfinite(cwnd)) {
        fail("flow " + std::to_string(end.sender->config().flow) + " cwnd " +
             std::to_string(cwnd) + " below floor " + std::to_string(floor));
      }
    }
    for (const FlowResult& fr : res.flows) {
      if (!(fr.throughput_bps >= 0) || !std::isfinite(fr.throughput_bps)) {
        fail("flow " + std::to_string(fr.flow) + " throughput " +
             std::to_string(fr.throughput_bps) + " is negative or non-finite");
      }
    }
  }

  if (cfg.tracer != nullptr) cfg.tracer->flush();
  return res;
}

AveragedResult average(const ExperimentConfig& cfg, const std::vector<ExperimentResult>& runs) {
  AveragedResult avg;
  avg.config = cfg;
  avg.repetitions = static_cast<int>(runs.size());
  if (runs.empty()) return avg;
  avg.jain2 = 0;  // accumulator: clear the "trivially fair" default
  for (const ExperimentResult& r : runs) {
    avg.sender_bps[0] += r.sender_bps[0];
    avg.sender_bps[1] += r.sender_bps[1];
    avg.jain2 += r.jain2;
    avg.utilization += r.utilization;
    avg.retx_segments += static_cast<double>(r.retx_segments);
    avg.rtos += static_cast<double>(r.rtos);
  }
  const double n = static_cast<double>(runs.size());
  avg.sender_bps[0] /= n;
  avg.sender_bps[1] /= n;
  avg.jain2 /= n;
  avg.utilization /= n;
  avg.retx_segments /= n;
  avg.rtos /= n;
  return avg;
}

AveragedResult run_averaged(const ExperimentConfig& cfg, int reps, bool use_cache) {
  // A cache hit would skip the simulation and therefore emit no trace.
  if (cfg.tracer != nullptr) use_cache = false;
  std::vector<ExperimentResult> runs;
  runs.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    ExperimentConfig c = cfg;
    c.seed = cfg.seed + static_cast<std::uint64_t>(r) * 1000003;
    if (use_cache) {
      if (auto cached = ResultCache::global().load(c)) {
        runs.push_back(*std::move(cached));
        continue;
      }
    }
    ExperimentResult res = run_experiment(c);
    if (use_cache) ResultCache::global().store(res);
    runs.push_back(std::move(res));
  }
  return average(cfg, runs);
}

int default_repetitions() {
  if (const char* env = std::getenv("ELEPHANT_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

}  // namespace elephant::exp
