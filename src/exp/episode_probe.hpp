#pragma once

#include <string>
#include <vector>

#include "obs/episode.hpp"
#include "sim/time.hpp"

namespace elephant::net {
class Port;
}
namespace elephant::fault {
class FaultInjector;
}

namespace elephant::exp {

class FlowFactory;
struct ExperimentConfig;

/// Bridges the live simulation objects to the obs::EpisodeDetector: each
/// sample() reads cumulative per-flow delivered bytes / retx / RTO / cwnd
/// from the flow factory and drop/mark/injected-loss/fault evidence from the
/// bottleneck qdisc chain, then feeds the plain-number snapshot to the
/// detector. Read-only against the simulation — it schedules nothing and
/// mutates nothing, which is what keeps episode-enabled runs digest-identical
/// to plain ones.
///
/// Only elephant-class flows participate in the fairness window (the paper's
/// object of study); mice and background aggregates would read as permanent
/// "unfairness" against the elephants they are meant to contrast with.
///
/// Sharded runs call sample() from the window-boundary observer, where every
/// lane is parked — the only point cross-lane flow state is safe to read.
class EpisodeProbe {
 public:
  /// `faults` may be null (no fault plan). All references must outlive the
  /// probe. Detector options come from cfg.episodes.
  EpisodeProbe(const ExperimentConfig& cfg, FlowFactory& factory,
               net::Port& bottleneck, const fault::FaultInjector* faults);

  /// Ingest the cumulative state at simulated time `t`. Allocation-free after
  /// the first call (the sample buffer is reused).
  void sample(sim::Time t);

  /// Close any open episode and, when cfg.episodes.jsonl_path is set, write
  /// episodes.jsonl (failures are reported to stderr, not thrown — the run's
  /// result must survive a full disk).
  void finish(sim::Time t);

  [[nodiscard]] const std::vector<obs::Episode>& episodes() const {
    return detector_.episodes();
  }
  [[nodiscard]] obs::EpisodeDetector& detector() { return detector_; }

 private:
  [[nodiscard]] obs::QueueSample queue_sample() const;

  const ExperimentConfig& cfg_;
  FlowFactory& factory_;
  net::Port& bottleneck_;
  const fault::FaultInjector* faults_;
  obs::EpisodeDetector detector_;
  std::vector<obs::FlowSample> buf_;
};

}  // namespace elephant::exp
