#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace elephant::workload {

const char* to_string(ClassKind kind) {
  switch (kind) {
    case ClassKind::kElephant: return "elephant";
    case ClassKind::kFinite: return "finite";
    case ClassKind::kOnOff: return "onoff";
  }
  return "?";
}

const char* to_string(Arrival arrival) {
  switch (arrival) {
    case Arrival::kStagger: return "stagger";
    case Arrival::kPoisson: return "poisson";
  }
  return "?";
}

const char* to_string(SizeDist dist) {
  switch (dist) {
    case SizeDist::kFixed: return "fixed";
    case SizeDist::kPareto: return "pareto";
    case SizeDist::kLognormal: return "lognormal";
    case SizeDist::kEmpirical: return "empirical";
  }
  return "?";
}

std::uint64_t SizeSpec::sample(sim::Rng& rng) const {
  double bytes = mean_bytes;
  switch (dist) {
    case SizeDist::kFixed:
      break;
    case SizeDist::kPareto: {
      // Mean of Pareto(x_min, α) is x_min·α/(α−1); invert for x_min so the
      // configured mean holds. 1−u ∈ (0, 1] keeps the pow() finite.
      const double alpha = std::max(shape, 1.0 + 1e-9);
      const double x_min = mean_bytes * (alpha - 1.0) / alpha;
      const double u = rng.next_double();
      bytes = x_min / std::pow(1.0 - u, 1.0 / alpha);
      break;
    }
    case SizeDist::kLognormal: {
      // μ chosen so E[X] = mean_bytes. Box–Muller; u1 nudged away from 0.
      const double mu = std::log(std::max(mean_bytes, 1.0)) - 0.5 * sigma * sigma;
      double u1 = rng.next_double();
      const double u2 = rng.next_double();
      if (u1 <= 0.0) u1 = 0x1.0p-53;
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
      bytes = std::exp(mu + sigma * z);
      break;
    }
    case SizeDist::kEmpirical: {
      if (cdf.empty()) break;
      const double u = rng.next_double();
      // First point with cumulative probability ≥ u; interpolate linearly
      // from the previous point (or from probability 0 at the first size).
      std::size_t i = 0;
      while (i < cdf.size() && cdf[i].first < u) ++i;
      if (i >= cdf.size()) {
        bytes = cdf.back().second;
        break;
      }
      const double p1 = cdf[i].first;
      const double b1 = cdf[i].second;
      const double p0 = i == 0 ? 0.0 : cdf[i - 1].first;
      const double b0 = i == 0 ? b1 : cdf[i - 1].second;
      bytes = p1 > p0 ? b0 + (b1 - b0) * (u - p0) / (p1 - p0) : b1;
      break;
    }
  }
  if (!(bytes >= 1.0)) bytes = 1.0;
  return static_cast<std::uint64_t>(std::llround(bytes));
}

SizeSpec SizeSpec::fixed(double bytes) {
  SizeSpec s;
  s.dist = SizeDist::kFixed;
  s.mean_bytes = bytes;
  return s;
}

SizeSpec SizeSpec::pareto(double mean_bytes, double shape) {
  SizeSpec s;
  s.dist = SizeDist::kPareto;
  s.mean_bytes = mean_bytes;
  s.shape = shape;
  return s;
}

SizeSpec SizeSpec::lognormal(double mean_bytes, double sigma) {
  SizeSpec s;
  s.dist = SizeDist::kLognormal;
  s.mean_bytes = mean_bytes;
  s.sigma = sigma;
  return s;
}

SizeSpec SizeSpec::empirical(std::vector<std::pair<double, double>> points) {
  SizeSpec s;
  s.dist = SizeDist::kEmpirical;
  s.cdf = std::move(points);
  // Mean of the piecewise-linear inverse CDF (trapezoid per segment), so
  // empirical specs report a comparable intensity.
  double mean = 0;
  double prev_p = 0;
  double prev_b = s.cdf.empty() ? 0 : s.cdf.front().second;
  for (const auto& [p, b] : s.cdf) {
    mean += (p - prev_p) * 0.5 * (b + prev_b);
    prev_p = p;
    prev_b = b;
  }
  s.mean_bytes = mean;
  return s;
}

bool SizeSpec::load_cdf_file(const std::string& path, SizeSpec* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::vector<std::pair<double, double>> points;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    double bytes = 0;
    double prob = 0;
    if (!(ls >> bytes)) continue;  // blank / comment-only line
    if (!(ls >> prob) || !(bytes >= 0) || !(prob >= 0.0) || !(prob <= 1.0)) {
      if (error) *error = path + ":" + std::to_string(lineno) + ": expected '<bytes> <cum_prob in [0,1]>'";
      return false;
    }
    if (!points.empty() && (prob < points.back().first || bytes < points.back().second)) {
      if (error) *error = path + ":" + std::to_string(lineno) + ": CDF points must be nondecreasing";
      return false;
    }
    points.emplace_back(prob, bytes);
  }
  if (points.empty()) {
    if (error) *error = path + ": no CDF points";
    return false;
  }
  if (points.back().first < 1.0) points.back().first = 1.0;  // close the tail
  *out = empirical(std::move(points));
  return true;
}

std::string SizeSpec::signature() const {
  char buf[96];
  switch (dist) {
    case SizeDist::kFixed:
      std::snprintf(buf, sizeof(buf), "fix%g", mean_bytes);
      break;
    case SizeDist::kPareto:
      std::snprintf(buf, sizeof(buf), "par%g,%g", mean_bytes, shape);
      break;
    case SizeDist::kLognormal:
      std::snprintf(buf, sizeof(buf), "log%g,%g", mean_bytes, sigma);
      break;
    case SizeDist::kEmpirical: {
      // FNV-1a over the point table: two empirical specs collide only if the
      // tables are identical.
      std::uint64_t h = 14695981039346656037ull;
      auto fold = [&h](double d) {
        std::uint64_t u = 0;
        __builtin_memcpy(&u, &d, sizeof(u));
        for (int i = 0; i < 8; ++i) {
          h ^= (u >> (8 * i)) & 0xff;
          h *= 1099511628211ull;
        }
      };
      for (const auto& [p, b] : cdf) {
        fold(p);
        fold(b);
      }
      std::snprintf(buf, sizeof(buf), "emp%zu:%016llx", cdf.size(),
                    static_cast<unsigned long long>(h));
      break;
    }
  }
  return buf;
}

std::string TrafficClass::signature() const {
  char buf[160];
  std::string cca_s = cca_from_pair ? "pair" : cca::to_string(cca);
  std::snprintf(buf, sizeof(buf), "%s:%s,%s,n%u,sd%d,%s,o%g,w%g,r%g", name.c_str(),
                to_string(kind), cca_s.c_str(), count, side, to_string(arrival),
                start_offset.sec(), start_window.sec(), arrival_rate_hz);
  std::string out = buf;
  if (kind != ClassKind::kElephant) out += "," + size.signature();
  if (kind == ClassKind::kOnOff) {
    std::snprintf(buf, sizeof(buf), ",off%g", off_mean.sec());
    out += buf;
  }
  return out;
}

std::string WorkloadSpec::signature() const {
  std::string out;
  for (const TrafficClass& c : classes) {
    if (!out.empty()) out += '+';
    out += c.signature();
  }
  return out;
}

WorkloadSpec WorkloadSpec::paper() { return WorkloadSpec{}; }

WorkloadSpec WorkloadSpec::mice_elephants() {
  WorkloadSpec spec;
  TrafficClass elephants;
  elephants.name = "elephants";
  elephants.kind = ClassKind::kElephant;
  elephants.cca_from_pair = true;
  elephants.count = 0;  // cell's paper flow count
  spec.classes.push_back(elephants);

  TrafficClass mice;
  mice.name = "mice";
  mice.kind = ClassKind::kFinite;
  mice.cca = cca::CcaKind::kCubic;  // web/short traffic is overwhelmingly CUBIC
  mice.count = 40;
  mice.arrival = Arrival::kStagger;
  // Let the elephants grab the link first, then spread the mice out so most
  // observe steady-state elephant occupancy (and all finish inside the run).
  mice.start_offset = sim::Time::seconds(2);
  mice.start_window = sim::Time::seconds(20);
  mice.size = SizeSpec::pareto(/*mean_bytes=*/500e3, /*shape=*/1.5);
  spec.classes.push_back(mice);
  return spec;
}

WorkloadSpec WorkloadSpec::poisson_web() {
  WorkloadSpec spec;
  TrafficClass elephants;
  elephants.name = "elephants";
  elephants.kind = ClassKind::kElephant;
  elephants.cca_from_pair = true;
  spec.classes.push_back(elephants);

  TrafficClass web;
  web.name = "web";
  web.kind = ClassKind::kFinite;
  web.cca = cca::CcaKind::kCubic;
  web.arrival = Arrival::kPoisson;
  web.arrival_rate_hz = 4.0;
  web.start_offset = sim::Time::seconds(2);
  web.count = 0;  // uncapped: rate × remaining duration arrivals
  web.size = SizeSpec::lognormal(/*mean_bytes=*/200e3, /*sigma=*/1.2);
  spec.classes.push_back(web);
  return spec;
}

WorkloadSpec WorkloadSpec::onoff_bursts() {
  WorkloadSpec spec;
  TrafficClass elephants;
  elephants.name = "elephants";
  elephants.kind = ClassKind::kElephant;
  elephants.cca_from_pair = true;
  spec.classes.push_back(elephants);

  TrafficClass onoff;
  onoff.name = "onoff";
  onoff.kind = ClassKind::kOnOff;
  onoff.cca = cca::CcaKind::kCubic;
  onoff.count = 8;
  onoff.arrival = Arrival::kStagger;
  onoff.start_offset = sim::Time::seconds(1);
  onoff.start_window = sim::Time::seconds(2);
  onoff.size = SizeSpec::fixed(2e6);  // 2 MB bursts (streaming-chunk sized)
  onoff.off_mean = sim::Time::seconds(1);
  spec.classes.push_back(onoff);
  return spec;
}

bool WorkloadSpec::from_name(const std::string& name, WorkloadSpec* out) {
  if (name == "paper") {
    *out = paper();
  } else if (name == "mice-elephants") {
    *out = mice_elephants();
  } else if (name == "poisson-web") {
    *out = poisson_web();
  } else if (name == "onoff") {
    *out = onoff_bursts();
  } else {
    return false;
  }
  return true;
}

const std::vector<std::string>& WorkloadSpec::preset_names() {
  static const std::vector<std::string> names = {"paper", "mice-elephants", "poisson-web",
                                                 "onoff"};
  return names;
}

}  // namespace elephant::workload
