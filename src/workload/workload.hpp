#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cca/congestion_control.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace elephant::workload {

/// What a traffic class's flows are.
enum class ClassKind : std::uint8_t {
  kElephant,  ///< persistent bulk transfer, never completes (the paper's flows)
  kFinite,    ///< finite-size transfer ("mouse"): completes, yields an FCT
  kOnOff,     ///< application-limited source: bursts separated by think time
};

/// How a class's flows arrive.
enum class Arrival : std::uint8_t {
  kStagger,  ///< uniform within [start_offset, start_offset + start_window]
  kPoisson,  ///< Poisson process at arrival_rate_hz from start_offset on
};

/// Flow-size (or burst-size) distribution families.
enum class SizeDist : std::uint8_t { kFixed, kPareto, kLognormal, kEmpirical };

[[nodiscard]] const char* to_string(ClassKind kind);
[[nodiscard]] const char* to_string(Arrival arrival);
[[nodiscard]] const char* to_string(SizeDist dist);

/// A flow/burst size distribution. All families are parameterized by their
/// mean so workload intensity is comparable across families.
struct SizeSpec {
  SizeDist dist = SizeDist::kFixed;
  double mean_bytes = 1e6;  ///< kFixed: the size; kPareto/kLognormal: the mean
  double shape = 1.5;       ///< Pareto tail index (> 1, heavier tail as it → 1)
  double sigma = 1.0;       ///< lognormal σ of ln(size)
  /// kEmpirical: inverse-CDF table of (cumulative probability, bytes) points,
  /// ascending in probability; sampled with linear interpolation.
  std::vector<std::pair<double, double>> cdf;

  /// Draw one size in bytes (always ≥ 1).
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;

  [[nodiscard]] static SizeSpec fixed(double bytes);
  [[nodiscard]] static SizeSpec pareto(double mean_bytes, double shape);
  [[nodiscard]] static SizeSpec lognormal(double mean_bytes, double sigma);
  [[nodiscard]] static SizeSpec empirical(std::vector<std::pair<double, double>> points);

  /// Load an empirical CDF from a text file of "<bytes> <cum_prob>" lines
  /// (the ns-2 / flow-generator convention used for web and datacenter
  /// mixes; '#' starts a comment). Probabilities must be nondecreasing in
  /// [0, 1]; the last point is treated as the distribution's upper bound.
  [[nodiscard]] static bool load_cdf_file(const std::string& path, SizeSpec* out,
                                          std::string* error);

  /// Stable identity string (part of the experiment cache key).
  [[nodiscard]] std::string signature() const;
};

/// One class of flows sharing kind, CCA, arrival process, and size law.
struct TrafficClass {
  std::string name = "class";
  ClassKind kind = ClassKind::kElephant;

  /// CCA for every flow of the class — unless cca_from_pair, which mirrors
  /// the paper's setup: side-0 flows run the cell's cca1, side-1 flows cca2.
  cca::CcaKind cca = cca::CcaKind::kCubic;
  bool cca_from_pair = false;

  /// Flows to instantiate. 0 means: for elephants, the cell's effective flow
  /// count (paper Table 2); for Poisson classes, no cap (whatever number of
  /// arrivals fits in the run). Stagger-arrival finite/on-off classes need an
  /// explicit count.
  std::uint32_t count = 0;

  /// Dumbbell side (0 or 1); -1 alternates flows across both sides.
  int side = -1;

  Arrival arrival = Arrival::kStagger;
  sim::Time start_offset = sim::Time::zero();           ///< arrivals begin here
  sim::Time start_window = sim::Time::seconds(0.5);     ///< kStagger span
  double arrival_rate_hz = 0.0;                         ///< kPoisson mean rate

  /// kFinite: transfer size. kOnOff: per-burst size. Ignored for elephants.
  SizeSpec size = SizeSpec::fixed(1e6);
  /// kOnOff: mean exponential think time between bursts.
  sim::Time off_mean = sim::Time::seconds(1);

  [[nodiscard]] std::string signature() const;
};

/// The full traffic description of one experiment cell.
///
/// An empty class list is the paper's elephant-only workload and runs the
/// legacy hard-coded two-sender setup: flow construction order, RNG stream
/// consumption, and therefore every packet timestamp stay bit-identical to
/// pre-workload builds (guarded by the golden-digest tests). Non-empty specs
/// instantiate flows through exp::FlowFactory with per-flow RNG sub-streams
/// derived via sim::derive_seed, so adding a class never perturbs another
/// class's randomness.
struct WorkloadSpec {
  std::vector<TrafficClass> classes;

  [[nodiscard]] bool is_paper_default() const { return classes.empty(); }

  /// Cache-identity string; empty for the default workload so existing cell
  /// ids (and previously cached results) are unchanged.
  [[nodiscard]] std::string signature() const;

  /// Built-in presets. "paper" is the default elephant-only workload.
  [[nodiscard]] static WorkloadSpec paper();
  /// Paper elephants + 40 staggered CUBIC mice (Pareto-sized short flows).
  [[nodiscard]] static WorkloadSpec mice_elephants();
  /// Paper elephants + Poisson arrivals of lognormal web-like transfers.
  [[nodiscard]] static WorkloadSpec poisson_web();
  /// Paper elephants + application-limited on/off burst sources.
  [[nodiscard]] static WorkloadSpec onoff_bursts();

  /// Resolve a preset by name; false if unknown.
  [[nodiscard]] static bool from_name(const std::string& name, WorkloadSpec* out);
  [[nodiscard]] static const std::vector<std::string>& preset_names();
};

}  // namespace elephant::workload
