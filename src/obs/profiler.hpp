#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace elephant::obs {

class MetricsRegistry;

/// Low-overhead wall-time profiler for the engine's lanes and phases — the
/// instrument behind the "where does a window go: work, barrier wait, or
/// mailbox drain" question the sharded engine's tuning needs.
///
/// Layout: `register_phase()` calls (single-threaded, before the run) name
/// the phases; each (phase, lane) pair owns one LogLinHistogram in a flat
/// array sized once at the last registration. During the run a lane thread
/// records spans only into its own (phase, lane) histograms, so the hot path
/// is lock-free and allocation-free: a Span is two steady_clock reads and one
/// histogram record. A null profiler disables a Span entirely (no clock
/// read), mirroring the ScopedTimer idiom.
///
/// After the lanes join, publish() folds the per-lane histograms into
/// `prof.<phase>` histograms of a MetricsRegistry (plus `prof.<phase>.lane<i>`
/// when per-lane detail is requested), where heartbeats, journals, and the
/// sweep report pick them up for free.
class PhaseProfiler {
 public:
  /// `lanes` concurrent writers (one per engine lane; single-threaded users
  /// pass 1).
  explicit PhaseProfiler(std::size_t lanes);

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Register a phase before the run starts (not thread-safe; allocates).
  /// Returns the phase index Spans are opened with.
  std::size_t register_phase(std::string name);

  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] std::size_t phases() const { return names_.size(); }
  [[nodiscard]] const std::string& phase_name(std::size_t phase) const {
    return names_[phase];
  }

  /// Record `seconds` into (phase, lane) directly — for callers that already
  /// hold a measured duration.
  void record(std::size_t phase, std::size_t lane, double seconds) {
    hists_[phase * lanes_ + lane].record(seconds);
  }

  [[nodiscard]] const LogLinHistogram& histogram(std::size_t phase,
                                                 std::size_t lane) const {
    return hists_[phase * lanes_ + lane];
  }

  /// RAII span: records the elapsed wall time into (phase, lane) on
  /// destruction. A null profiler makes construction and destruction free
  /// (no clock read), so instrumented code paths cost one untaken branch
  /// when profiling is off.
  class Span {
   public:
    Span(PhaseProfiler* p, std::size_t phase, std::size_t lane)
        : p_(p), phase_(phase), lane_(lane) {
      if (p_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Span() {
      if (p_ != nullptr) {
        p_->record(phase_, lane_,
                   std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 start_)
                       .count());
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    PhaseProfiler* p_;
    std::size_t phase_;
    std::size_t lane_;
    std::chrono::steady_clock::time_point start_{};
  };

  /// Fold every lane's histogram of each phase into `prof.<name>` in `reg`
  /// (bucket-wise merge under the registry mutex). With `per_lane` set, also
  /// publish `prof.<name>.lane<i>` for each lane that recorded anything.
  /// Call after the lanes have joined (the profiler must be quiescent).
  void publish(MetricsRegistry& reg, bool per_lane = false) const;

 private:
  std::size_t lanes_;
  std::vector<std::string> names_;
  std::vector<LogLinHistogram> hists_;  ///< [phase * lanes_ + lane]
};

}  // namespace elephant::obs
