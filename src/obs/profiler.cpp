#include "obs/profiler.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace elephant::obs {

PhaseProfiler::PhaseProfiler(std::size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {}

std::size_t PhaseProfiler::register_phase(std::string name) {
  names_.push_back(std::move(name));
  hists_.resize(names_.size() * lanes_);
  return names_.size() - 1;
}

void PhaseProfiler::publish(MetricsRegistry& reg, bool per_lane) const {
  for (std::size_t p = 0; p < names_.size(); ++p) {
    LogLinHistogram& total = reg.histogram(
        "prof." + names_[p],
        "Wall seconds spent in this engine phase (merged across lanes)");
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      const LogLinHistogram& h = hists_[p * lanes_ + lane];
      if (h.count() == 0) continue;
      total.merge(h);
      if (per_lane) {
        reg.histogram("prof." + names_[p] + ".lane" + std::to_string(lane))
            .merge(h);
      }
    }
  }
}

}  // namespace elephant::obs
