#include "obs/journal.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/metrics.hpp"

namespace elephant::obs {

namespace {

// Minimal JSON cursor over one line: just enough grammar for the heartbeat
// exporter's output (objects, arrays, strings with escapes, numbers, bools,
// null), in the same hand-rolled spirit as the manifest parser — no external
// JSON dependency.
struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n')) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return p < end ? *p : '\0';
  }
};

bool parse_string(Cursor* c, std::string* out) {
  if (!c->eat('"')) return false;
  out->clear();
  while (c->p < c->end) {
    const char ch = *c->p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c->p >= c->end) return false;
      const char esc = *c->p++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          // The exporter only emits \u00xx for control bytes; decode the
          // low byte and drop the (always-zero) high byte.
          if (c->end - c->p < 4) return false;
          char hex[5] = {c->p[0], c->p[1], c->p[2], c->p[3], '\0'};
          c->p += 4;
          out->push_back(static_cast<char>(std::strtol(hex, nullptr, 16) & 0xff));
          break;
        }
        default: return false;
      }
    } else {
      out->push_back(ch);
    }
  }
  return false;
}

bool parse_number(Cursor* c, double* out) {
  c->skip_ws();
  char* endp = nullptr;
  *out = std::strtod(c->p, &endp);
  if (endp == c->p) return false;
  c->p = endp;
  return true;
}

bool parse_literal(Cursor* c, std::string_view lit) {
  c->skip_ws();
  if (static_cast<std::size_t>(c->end - c->p) < lit.size()) return false;
  if (std::string_view(c->p, lit.size()) != lit) return false;
  c->p += lit.size();
  return true;
}

bool skip_value(Cursor* c);

bool skip_members(Cursor* c, char close) {
  // After the opening brace/bracket: skip "key":value or value lists.
  if (c->eat(close)) return true;
  for (;;) {
    if (close == '}') {
      std::string key;
      if (!parse_string(c, &key) || !c->eat(':')) return false;
    }
    if (!skip_value(c)) return false;
    if (c->eat(close)) return true;
    if (!c->eat(',')) return false;
  }
}

bool skip_value(Cursor* c) {
  switch (c->peek()) {
    case '{': c->eat('{'); return skip_members(c, '}');
    case '[': c->eat('['); return skip_members(c, ']');
    case '"': {
      std::string s;
      return parse_string(c, &s);
    }
    case 't': return parse_literal(c, "true");
    case 'f': return parse_literal(c, "false");
    case 'n': return parse_literal(c, "null");
    default: {
      double d = 0;
      return parse_number(c, &d);
    }
  }
}

// Parse {"name":number,...} into the given map.
template <typename Map, typename Value>
bool parse_number_map(Cursor* c, Map* out) {
  if (!c->eat('{')) return false;
  if (c->eat('}')) return true;
  for (;;) {
    std::string key;
    double v = 0;
    if (!parse_string(c, &key) || !c->eat(':') || !parse_number(c, &v)) return false;
    (*out)[key] = static_cast<Value>(v);
    if (c->eat('}')) return true;
    if (!c->eat(',')) return false;
  }
}

bool parse_histogram(Cursor* c, LogLinHistogram* h) {
  if (!c->eat('{')) return false;
  double count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  bool have_buckets = false;
  if (c->eat('}')) return true;
  for (;;) {
    std::string key;
    if (!parse_string(c, &key) || !c->eat(':')) return false;
    if (key == "count") {
      if (!parse_number(c, &count)) return false;
    } else if (key == "sum") {
      if (!parse_number(c, &sum)) return false;
    } else if (key == "min") {
      if (!parse_number(c, &min)) return false;
    } else if (key == "max") {
      if (!parse_number(c, &max)) return false;
    } else if (key == "mean") {
      if (!parse_number(c, &mean)) return false;
    } else if (key == "buckets") {
      have_buckets = true;
      if (!c->eat('[')) return false;
      if (!c->eat(']')) {
        for (;;) {
          double index = 0;
          double n = 0;
          if (!c->eat('[') || !parse_number(c, &index) || !c->eat(',') ||
              !parse_number(c, &n) || !c->eat(']')) {
            return false;
          }
          h->add_bucket(static_cast<std::size_t>(index),
                        static_cast<std::uint64_t>(n));
          if (c->eat(']')) break;
          if (!c->eat(',')) return false;
        }
      }
    } else {
      if (!skip_value(c)) return false;
    }
    if (c->eat('}')) break;
    if (!c->eat(',')) return false;
  }
  if (!have_buckets && count > 0) {
    // Pre-bucket-dump journal: lossy reconstruction at the recorded mean.
    h->record_n(mean, static_cast<std::uint64_t>(count));
  }
  h->restore_summary(sum, min, max);
  return true;
}

}  // namespace

bool parse_journal_line(std::string_view line, JournalSnapshot* out) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return false;
  if (c.eat('}')) return true;
  for (;;) {
    std::string key;
    if (!parse_string(&c, &key) || !c.eat(':')) return false;
    if (key == "elapsed_s") {
      if (!parse_number(&c, &out->elapsed_s)) return false;
    } else if (key == "final") {
      if (parse_literal(&c, "true")) {
        out->final_snapshot = true;
      } else if (parse_literal(&c, "false")) {
        out->final_snapshot = false;
      } else {
        return false;
      }
    } else if (key == "worker") {
      if (!parse_string(&c, &out->worker)) return false;
    } else if (key == "counters") {
      if (!parse_number_map<std::map<std::string, std::uint64_t>, std::uint64_t>(
              &c, &out->counters)) {
        return false;
      }
    } else if (key == "gauges") {
      if (!parse_number_map<std::map<std::string, double>, double>(&c,
                                                                   &out->gauges)) {
        return false;
      }
    } else if (key == "histograms") {
      if (!c.eat('{')) return false;
      if (!c.eat('}')) {
        for (;;) {
          std::string name;
          if (!parse_string(&c, &name) || !c.eat(':')) return false;
          if (!parse_histogram(&c, &out->histograms[name])) return false;
          if (c.eat('}')) break;
          if (!c.eat(',')) return false;
        }
      }
    } else if (c.peek() == '-' || (c.peek() >= '0' && c.peek() <= '9')) {
      double v = 0;
      if (!parse_number(&c, &v)) return false;
      out->extra[key] = v;
    } else {
      if (!skip_value(&c)) return false;
    }
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

bool read_final_snapshot(const std::filesystem::path& path, JournalSnapshot* out,
                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path.string();
    return false;
  }
  bool found = false;
  std::string line;
  JournalSnapshot last;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalSnapshot snap;
    if (!parse_journal_line(line, &snap)) continue;  // tolerate a torn tail
    last = std::move(snap);
    found = true;
    // Keep scanning: a later final snapshot (or tick) supersedes.
  }
  if (!found) {
    if (error != nullptr) *error = "no parseable journal line in " + path.string();
    return false;
  }
  *out = std::move(last);
  return true;
}

void merge_into(const JournalSnapshot& snap, MetricsRegistry* reg) {
  for (const auto& [name, v] : snap.counters) reg->counter(name).add(v);
  for (const auto& [name, v] : snap.gauges) reg->gauge(name).set(v);
  for (const auto& [name, h] : snap.histograms) {
    LogLinHistogram& dest = reg->histogram(name);
    std::lock_guard lock(reg->mutex());
    dest.merge(h);
  }
}

}  // namespace elephant::obs
