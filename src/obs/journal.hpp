#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace elephant::obs {

class MetricsRegistry;

/// One parsed heartbeat line: the caller status fields we care about plus
/// the full registry snapshot, with histograms reconstructed bucket-for-bucket
/// from the sparse dump the exporter writes. This is the C++ half of the
/// metrics.jsonl round trip — `tools/check_metrics_jsonl.py` checks shape,
/// this checks semantics (and feeds `elephant report`).
struct JournalSnapshot {
  double elapsed_s = 0;
  bool final_snapshot = false;
  std::string worker;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LogLinHistogram> histograms;
  /// Top-level numeric caller fields (e.g. "cells_done") not covered above.
  std::map<std::string, double> extra;
};

/// Parse one JSONL heartbeat line. Returns false on malformed input (the
/// snapshot may be partially filled). Histograms written before the sparse
/// bucket dump existed reconstruct lossily as `count` observations at the
/// recorded mean.
[[nodiscard]] bool parse_journal_line(std::string_view line, JournalSnapshot* out);

/// Read a journal file and return its final snapshot: the last line flagged
/// `"final":true`, else the last parseable line. Returns false (with a
/// message in *error if non-null) when the file is unreadable or no line
/// parses.
[[nodiscard]] bool read_final_snapshot(const std::filesystem::path& path,
                                       JournalSnapshot* out, std::string* error);

/// Fold a snapshot into a registry: counters add, gauges overwrite,
/// histograms merge bucket-wise — the same semantics as
/// MetricsRegistry::merge_from, which makes journal-mediated aggregation
/// associative with in-process aggregation.
void merge_into(const JournalSnapshot& snap, MetricsRegistry* reg);

}  // namespace elephant::obs
