#include "obs/heartbeat.hpp"

#include <fstream>

#include "obs/export.hpp"

namespace elephant::obs {

Heartbeat::Heartbeat(const MetricsRegistry& reg, Options options, StatusFn status)
    : reg_(reg), options_(std::move(options)), status_(std::move(status)) {
  // Guard the tick period: a zero/negative interval would either busy-spin
  // the emitter thread or (with the old silent fallback) quietly ignore what
  // the caller asked for. Clamp and say so once.
  effective_interval_s_ = options_.interval_s;
  if (!(effective_interval_s_ > 0)) {  // catches NaN too
    effective_interval_s_ = kFallbackIntervalS;
  } else if (effective_interval_s_ < kMinIntervalS) {
    effective_interval_s_ = kMinIntervalS;
  }
  if (effective_interval_s_ != options_.interval_s) {
    std::FILE* warn = options_.console != nullptr ? options_.console : stderr;
    std::fprintf(warn,
                 "[heartbeat] warning: interval %g s is out of range, using %g s\n",
                 options_.interval_s, effective_interval_s_);
    std::fflush(warn);
  }
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::start() {
  std::lock_guard lock(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  started_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
}

void Heartbeat::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  emit(/*final_snapshot=*/true);
  std::lock_guard lock(mu_);
  running_ = false;
}

void Heartbeat::run() {
  std::unique_lock lock(mu_);
  const auto interval = std::chrono::duration<double>(effective_interval_s_);
  while (!cv_.wait_for(lock, interval, [this] { return stopping_; })) {
    lock.unlock();
    emit(/*final_snapshot=*/false);
    lock.lock();
  }
}

void Heartbeat::emit(bool final_snapshot) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  std::string fields;
  std::string console_line;
  if (status_) status_(&fields, &console_line);

  if (!options_.jsonl_path.empty()) {
    std::string line = "{\"elapsed_s\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", elapsed);
    line += buf;
    line += ",\"final\":";
    line += final_snapshot ? "true" : "false";
    line += ',';
    if (!options_.worker_tag.empty()) {
      line += "\"worker\":\"";
      append_json_escaped(options_.worker_tag, &line);
      line += "\",";
    }
    line += fields;  // caller fields, each already comma-terminated
    // Splice the registry object's members into this line's object.
    std::string reg_json;
    append_json(reg_, &reg_json,
                /*include_histograms=*/final_snapshot || options_.histograms_in_ticks);
    line.append(reg_json, 1, reg_json.size() - 2);  // strip the outer { }
    line += "}\n";
    std::ofstream out(options_.jsonl_path, std::ios::app);
    if (out) out << line << std::flush;
  }

  if (options_.console != nullptr) {
    if (console_line.empty()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "[heartbeat] t=%.1fs tick=%llu", elapsed,
                    static_cast<unsigned long long>(ticks() + 1));
      console_line = buf;
    }
    if (options_.worker_tag.empty()) {
      std::fprintf(options_.console, "%s%s\n", final_snapshot ? "[final] " : "",
                   console_line.c_str());
    } else {
      std::fprintf(options_.console, "[%s] %s%s\n", options_.worker_tag.c_str(),
                   final_snapshot ? "[final] " : "", console_line.c_str());
    }
    std::fflush(options_.console);
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace elephant::obs
