#include "obs/histogram.hpp"

#include <algorithm>

namespace elephant::obs {

double LogLinHistogram::bucket_midpoint(std::size_t index) {
  const auto octave = static_cast<int>(index) / kSubBuckets + kMinExp;
  const auto sub = static_cast<int>(index) % kSubBuckets;
  const double width = std::ldexp(1.0, octave) / kSubBuckets;
  const double low = std::ldexp(1.0, octave) + width * sub;
  return low + width / 2.0;
}

double LogLinHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min();
  if (q >= 1) return max();
  // Rank of the target observation, 1-based: the smallest bucket whose
  // cumulative count reaches it holds the quantile.
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += buckets_[i];
    if (cum >= rank && buckets_[i] > 0) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max();  // unreachable while count_ is consistent with the buckets
}

void LogLinHistogram::merge(const LogLinHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogLinHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

}  // namespace elephant::obs
