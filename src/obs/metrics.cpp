#include "obs/metrics.hpp"

namespace elephant::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

LogLinHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // The source is quiescent (contract), so only this registry needs locking.
  // Registration helpers re-lock; collect the work first, then apply.
  std::scoped_lock lock(mu_);
  for (const auto& [name, c] : other.counters_) {
    counters_.try_emplace(name).first->second.add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_.try_emplace(name).first->second.set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_.try_emplace(name).first->second.merge(h);
  }
}

}  // namespace elephant::obs
