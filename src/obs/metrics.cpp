#include "obs/metrics.hpp"

namespace elephant::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

LogLinHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  std::lock_guard lock(mu_);
  if (!help.empty()) help_.try_emplace(std::string(name), std::string(help));
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard lock(mu_);
  if (!help.empty()) help_.try_emplace(std::string(name), std::string(help));
  return gauges_.try_emplace(std::string(name)).first->second;
}

LogLinHistogram& MetricsRegistry::histogram(std::string_view name,
                                            std::string_view help) {
  std::lock_guard lock(mu_);
  if (!help.empty()) help_.try_emplace(std::string(name), std::string(help));
  return histograms_.try_emplace(std::string(name)).first->second;
}

std::string_view MetricsRegistry::help_text(std::string_view name) const {
  const auto it = help_.find(name);
  return it != help_.end() ? std::string_view(it->second) : std::string_view();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // The source is quiescent (contract), so only this registry needs locking.
  // Registration helpers re-lock; collect the work first, then apply.
  std::scoped_lock lock(mu_);
  for (const auto& [name, c] : other.counters_) {
    counters_.try_emplace(name).first->second.add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_.try_emplace(name).first->second.set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_.try_emplace(name).first->second.merge(h);
  }
  for (const auto& [name, help] : other.help_) {
    help_.try_emplace(name, help);
  }
}

}  // namespace elephant::obs
