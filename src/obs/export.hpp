#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace elephant::obs {

/// Append a Prometheus text-format snapshot of the registry: counters as
/// `counter`, gauges as `gauge`, histograms as `summary` (p50/p95/p99 plus
/// _sum/_count/_min/_max). Metric names are sanitized to [a-zA-Z0-9_:]
/// (dots become underscores). Takes the registry mutex.
void write_prometheus(const MetricsRegistry& reg, std::string* out);

/// Append one JSON object (no trailing newline) with the registry contents:
///   {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
///    "sum":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..}}}
/// With include_histograms=false the histograms key is omitted — the
/// heartbeat uses this for live ticks against a registry whose histograms a
/// running simulation is still writing lock-free. Takes the registry mutex.
void append_json(const MetricsRegistry& reg, std::string* out,
                 bool include_histograms = true);

/// JSON string escaping for the writers above and the heartbeat's status
/// fields (quotes, backslashes, control characters).
void append_json_escaped(std::string_view s, std::string* out);

}  // namespace elephant::obs
