#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace elephant::obs {

namespace {

std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void append_double(double v, std::string* out) {
  if (!std::isfinite(v)) v = 0;  // JSON has no Inf/NaN literals
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

void append_u64(std::uint64_t v, std::string* out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

// Exposition-format help escaping: only backslash and line feed are special
// in a HELP line (text runs to end of line).
void append_prom_help(std::string_view name, std::string_view help,
                      std::string* out) {
  if (help.empty()) return;
  *out += "# HELP " + std::string(name) + ' ';
  for (const char c : help) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: out->push_back(c);
    }
  }
  *out += '\n';
}

}  // namespace

void append_json_escaped(std::string_view s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void write_prometheus(const MetricsRegistry& reg, std::string* out) {
  std::lock_guard lock(reg.mutex());
  reg.for_each_counter([&](const std::string& name, const Counter& c) {
    const std::string n = prom_name(name);
    append_prom_help(n, reg.help_text(name), out);
    *out += "# TYPE " + n + " counter\n" + n + " ";
    append_u64(c.value(), out);
    *out += '\n';
  });
  reg.for_each_gauge([&](const std::string& name, const Gauge& g) {
    const std::string n = prom_name(name);
    append_prom_help(n, reg.help_text(name), out);
    *out += "# TYPE " + n + " gauge\n" + n + " ";
    append_double(g.value(), out);
    *out += '\n';
  });
  reg.for_each_histogram([&](const std::string& name, const LogLinHistogram& h) {
    const std::string n = prom_name(name);
    append_prom_help(n, reg.help_text(name), out);
    *out += "# TYPE " + n + " summary\n";
    for (const auto& [q, label] :
         {std::pair{0.5, "0.5"}, std::pair{0.95, "0.95"}, std::pair{0.99, "0.99"}}) {
      *out += n + "{quantile=\"" + label + "\"} ";
      append_double(h.quantile(q), out);
      *out += '\n';
    }
    *out += n + "_sum ";
    append_double(h.sum(), out);
    *out += '\n' + n + "_count ";
    append_u64(h.count(), out);
    *out += '\n' + n + "_min ";
    append_double(h.min(), out);
    *out += '\n' + n + "_max ";
    append_double(h.max(), out);
    *out += '\n';
  });
}

void append_json(const MetricsRegistry& reg, std::string* out, bool include_histograms) {
  std::lock_guard lock(reg.mutex());
  *out += "{\"counters\":{";
  bool first = true;
  reg.for_each_counter([&](const std::string& name, const Counter& c) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    append_json_escaped(name, out);
    *out += "\":";
    append_u64(c.value(), out);
  });
  *out += "},\"gauges\":{";
  first = true;
  reg.for_each_gauge([&](const std::string& name, const Gauge& g) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    append_json_escaped(name, out);
    *out += "\":";
    append_double(g.value(), out);
  });
  *out += '}';
  if (include_histograms) {
    *out += ",\"histograms\":{";
    first = true;
    reg.for_each_histogram([&](const std::string& name, const LogLinHistogram& h) {
      if (!first) *out += ',';
      first = false;
      *out += '"';
      append_json_escaped(name, out);
      *out += "\":{\"count\":";
      append_u64(h.count(), out);
      *out += ",\"sum\":";
      append_double(h.sum(), out);
      *out += ",\"min\":";
      append_double(h.min(), out);
      *out += ",\"max\":";
      append_double(h.max(), out);
      *out += ",\"mean\":";
      append_double(h.mean(), out);
      *out += ",\"p50\":";
      append_double(h.quantile(0.5), out);
      *out += ",\"p95\":";
      append_double(h.quantile(0.95), out);
      *out += ",\"p99\":";
      append_double(h.quantile(0.99), out);
      // Sparse bucket dump makes the journal line a lossless transport: the
      // C++ journal reader reconstructs a mergeable histogram from it.
      *out += ",\"buckets\":[";
      bool first_bucket = true;
      h.for_each_bucket([&](std::size_t index, std::uint64_t n) {
        if (!first_bucket) *out += ',';
        first_bucket = false;
        *out += "[";
        append_u64(index, out);
        *out += ',';
        append_u64(n, out);
        *out += ']';
      });
      *out += "]}";
    });
    *out += '}';
  }
  *out += '}';
}

}  // namespace elephant::obs
