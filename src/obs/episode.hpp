#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elephant::obs {

/// Detection knobs carried on ExperimentConfig. The identity-relevant fields
/// (enabled, window_s, enter_jain, exit_jain) are folded into the config id —
/// an episode-enabled cell is a different cache/manifest key from its plain
/// twin — while jsonl_path is presentation-only and excluded.
struct EpisodeOptions {
  bool enabled = false;
  double window_s = 1.0;    ///< sampling window (simulated seconds)
  double enter_jain = 0.6;  ///< open an episode when windowed Jain drops below
  double exit_jain = 0.8;   ///< close it when windowed Jain recovers to/above
  std::string jsonl_path;   ///< optional episodes.jsonl sink (empty = none)

  [[nodiscard]] bool valid() const {
    return window_s > 0 && enter_jain > 0 && enter_jain <= exit_jain &&
           exit_jain <= 1.0;
  }
};

/// Cumulative per-flow observation at one window boundary. `active` means the
/// flow was live for the *entire* preceding window (started at or before the
/// previous sample, not yet completed there) — partially-present flows would
/// otherwise read as starved at birth and death.
struct FlowSample {
  std::uint32_t flow = 0;
  int side = 0;                        ///< 1 or 2 (elephant sender side)
  std::uint64_t delivered_bytes = 0;   ///< cumulative at the receiver
  std::uint64_t retx_segments = 0;     ///< cumulative retransmissions
  std::uint64_t rtos = 0;              ///< cumulative RTO firings
  double cwnd_segments = 0;            ///< instantaneous cwnd
  bool active = false;
};

/// Cumulative bottleneck-queue and fault-layer evidence at the same boundary.
struct QueueSample {
  std::uint64_t dropped_overflow = 0;  ///< tail/overflow drops
  std::uint64_t dropped_early = 0;     ///< AQM early drops (injected excluded)
  std::uint64_t ecn_marked = 0;        ///< CE marks
  std::uint64_t injected_loss = 0;     ///< GE/Bernoulli loss-injector drops
  std::uint64_t faults_applied = 0;    ///< fault-injector actions applied
};

/// One contiguous stretch of windows whose per-flow goodput shares stayed
/// unfair (windowed Jain under the hysteresis thresholds), with the evidence
/// that accumulated while it was open and a dominant-cause tag.
struct Episode {
  double start_s = 0;       ///< start of the first unfair window
  double end_s = 0;         ///< end of the last unfair window
  double worst_jain = 1.0;  ///< minimum windowed Jain inside the episode
  double worst_t_s = 0;     ///< window end where worst_jain occurred
  std::uint32_t victim_flow = 0;  ///< lowest-share flow at the worst window
  int victim_side = 0;
  double victim_share = 0;  ///< victim throughput / fair share, at worst window
  // Evidence deltas summed over the episode's windows.
  std::uint64_t loss_injected = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_early = 0;
  std::uint64_t ecn_marks = 0;
  std::uint64_t rtos = 0;
  std::uint64_t retx = 0;
  std::uint64_t faults = 0;
  std::uint32_t cwnd_collapses = 0;  ///< windows where some cwnd halved or worse
  /// Dominant-cause tag by evidence precedence: loss-burst > fault >
  /// queue-overflow > aqm-early-drop > ecn-mark > rto-storm > cwnd-collapse >
  /// unknown.
  std::string cause;
};

/// Streaming detector: feed cumulative per-flow + queue samples at a fixed
/// window cadence; it differentiates them into windowed shares, runs a
/// hysteresis state machine on the windowed Jain index, and accumulates the
/// coincident evidence of each open episode. Pure observation — it never
/// touches the scheduler, so attaching it cannot perturb a run's digest.
class EpisodeDetector {
 public:
  explicit EpisodeDetector(EpisodeOptions opt);

  /// Ingest the cumulative state at simulated time `t_s`. The first call
  /// establishes the baseline; each later call closes the window
  /// [prev_t, t_s). Flows may appear/disappear between calls (keyed by id).
  void sample(double t_s, const std::vector<FlowSample>& flows,
              const QueueSample& queue);

  /// Close any episode still open at end of run (end_s = t_s).
  void finish(double t_s);

  [[nodiscard]] const std::vector<Episode>& episodes() const { return episodes_; }
  [[nodiscard]] bool in_episode() const { return open_; }
  [[nodiscard]] const EpisodeOptions& options() const { return opt_; }

  /// Append one JSON line per episode to `path` (created/truncated).
  /// Returns false on I/O failure.
  [[nodiscard]] bool write_jsonl(const std::string& path,
                                 const std::string& cell_id) const;

  /// Serialize one episode as a JSON object (used by the jsonl writer and
  /// exposed for the manifest/report plumbing tests).
  static void append_episode_json(const Episode& e, std::string* out);

 private:
  struct PrevFlow {
    std::uint64_t delivered_bytes = 0;
    std::uint64_t retx_segments = 0;
    std::uint64_t rtos = 0;
    double cwnd_segments = 0;
    bool active = false;
    bool seen = false;
  };

  void close_episode(double end_s);
  static const char* classify(const Episode& e);

  EpisodeOptions opt_;
  std::vector<Episode> episodes_;
  Episode current_{};
  bool open_ = false;
  bool have_baseline_ = false;
  double prev_t_ = 0;
  QueueSample prev_queue_{};
  std::vector<PrevFlow> prev_flows_;  ///< indexed by flow id (dense, grows)
};

}  // namespace elephant::obs
