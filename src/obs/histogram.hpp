#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace elephant::obs {

/// Bounded-memory log-linear histogram (HdrHistogram-style) for non-negative
/// values spanning many orders of magnitude: queue sojourn times in
/// microseconds next to cell wall times in minutes.
///
/// Each power-of-two octave in [2^kMinExp, 2^kMaxExp) is split into
/// kSubBuckets linear buckets, so a recorded value lands in a bucket whose
/// width is at most value/kSubBuckets. quantile() reports the bucket
/// midpoint, bounding the relative error by 1/(2·kSubBuckets) ≈ 0.78% —
/// advertised as kMaxRelativeError (1%). Values outside the range clamp to
/// the edge buckets; exact min/max/sum are tracked on the side so the edges
/// and the mean stay exact.
///
/// The footprint is fixed at construction (kBucketCount · 8 B ≈ 32 KiB) and
/// record() is a frexp, a handful of integer ops, and one store — it never
/// allocates, which is what lets the telemetry layer stay on during full
/// sweeps. Histograms merge by bucket-wise addition, so per-run (per-thread)
/// instances combine into sweep-level aggregates associatively and without
/// error amplification.
///
/// Thread contract: single writer (or external synchronization). Counters
/// and gauges in the registry are atomic; histograms deliberately are not,
/// so the per-packet record path stays a plain increment. Cross-thread
/// aggregation goes through MetricsRegistry::merge_from(), which locks the
/// destination.
class LogLinHistogram {
 public:
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 64 per octave
  static constexpr int kMinExp = -30;  ///< lowest octave: [2^-30, 2^-29) ≈ 1 ns as seconds
  static constexpr int kMaxExp = 34;   ///< clamp ceiling: 2^34 ≈ 1.7e10
  static constexpr int kOctaves = kMaxExp - kMinExp;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kOctaves) * kSubBuckets;
  static constexpr double kMaxRelativeError = 1.0 / 100.0;  ///< advertised bound

  LogLinHistogram() : buckets_(kBucketCount, 0) {}

  /// Record one observation. Non-finite values are dropped; v ≤ 0 counts
  /// into the lowest bucket (exact min_ still remembers the true value).
  void record(double v) { record_n(v, 1); }

  void record_n(double v, std::uint64_t n) {
    if (n == 0 || std::isnan(v)) return;
    buckets_[bucket_index(v)] += n;
    count_ += n;
    sum_ += v * static_cast<double>(n);
    if (v < min_ || count_ == n) min_ = v;
    if (v > max_ || count_ == n) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
  }

  /// Quantile q ∈ [0, 1]: midpoint of the bucket holding the ⌈q·count⌉-th
  /// observation, clamped to the exact [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Bucket-wise addition; associative and commutative, so per-thread and
  /// per-cell histograms aggregate in any order to the same result.
  void merge(const LogLinHistogram& other);

  void reset();

  /// Visit every non-empty bucket as f(index, count) in index order — the
  /// sparse view the JSON exporter serializes.
  template <typename F>
  void for_each_bucket(F&& f) const {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (buckets_[i] != 0) f(i, buckets_[i]);
    }
  }

  /// Reconstruction path for the journal reader: add `n` observations
  /// directly into bucket `index`. The side summary (sum/min/max) is
  /// approximated from the bucket midpoint; callers that know the exact
  /// values (the exporter writes them) should follow up with
  /// restore_summary(). Out-of-range indices are dropped.
  void add_bucket(std::size_t index, std::uint64_t n) {
    if (index >= kBucketCount || n == 0) return;
    buckets_[index] += n;
    count_ += n;
    const double v = bucket_midpoint(index);
    sum_ += v * static_cast<double>(n);
    if (v < min_ || count_ == n) min_ = v;
    if (v > max_ || count_ == n) max_ = v;
  }

  /// Overwrite the side summary with exact values recovered from a journal.
  /// No-op on an empty histogram (an empty histogram reports 0s already).
  void restore_summary(double sum, double min, double max) {
    if (count_ == 0) return;
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

  /// The value a whole bucket reports (its midpoint) — exposed for tests.
  [[nodiscard]] static double bucket_midpoint(std::size_t index);
  [[nodiscard]] static std::size_t bucket_index(double v) {
    if (!(v >= kMinValue())) return 0;  // ≤ 0, sub-range, or NaN-guarded
    if (v >= kMaxValue()) return kBucketCount - 1;
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // v = frac·2^exp, frac ∈ [0.5, 1)
    const int octave = exp - 1 - kMinExp;     // v ∈ [2^(exp-1), 2^exp)
    const auto sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);
    return static_cast<std::size_t>(octave) * kSubBuckets +
           static_cast<std::size_t>(sub < kSubBuckets ? sub : kSubBuckets - 1);
  }

  [[nodiscard]] static constexpr double kMinValue() {
    return 1.0 / (1ull << -kMinExp);  // 2^kMinExp
  }
  [[nodiscard]] static constexpr double kMaxValue() {
    return static_cast<double>(1ull << kMaxExp);  // 2^kMaxExp
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace elephant::obs
