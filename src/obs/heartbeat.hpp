#pragma once

#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace elephant::obs {

/// Periodic self-profiling emitter: every `interval_s` of wall time it
/// appends one JSON line (registry snapshot plus caller status fields) to an
/// append-only JSONL file and prints a one-line progress report to the
/// console stream — the "is my multi-hour sweep alive and on schedule"
/// channel that the flight recorder is too heavy to provide.
///
/// Runs on its own thread; start()/stop() bracket the emitting window and
/// stop() writes a final full snapshot (histograms included) before joining.
/// Live ticks include histograms only when Options::histograms_in_ticks is
/// set — safe for a shared sweep registry whose histogram writes hold the
/// registry mutex, unsafe for a single-run registry the simulation thread
/// writes lock-free.
class Heartbeat {
 public:
  struct Options {
    double interval_s = 10.0;
    std::filesystem::path jsonl_path;  ///< empty = console only
    std::FILE* console = stderr;       ///< null = file only
    bool histograms_in_ticks = false;  ///< see class comment
    /// Non-empty tags every emission with a `"worker"` JSON field and
    /// prefixes console lines with `[id]` — disambiguates interleaved
    /// stderr when several sweep workers share a terminal.
    std::string worker_tag;
  };

  /// Injects caller context into each emission: append extra top-level JSON
  /// fields (each followed by a comma, e.g. `"cells_done":12,`) to `fields`
  /// and/or a human progress line to `line`. Called from the heartbeat
  /// thread; synchronize any state it reads.
  using StatusFn = std::function<void(std::string* fields, std::string* line)>;

  /// Smallest tick period the guard will allow: a sub-10ms request is a
  /// configuration bug (the emitter would out-shout the work it reports on).
  static constexpr double kMinIntervalS = 0.01;
  /// What a zero/negative interval clamps to (the documented default).
  static constexpr double kFallbackIntervalS = 10.0;

  Heartbeat(const MetricsRegistry& reg, Options options, StatusFn status = {});
  ~Heartbeat();  ///< stops (with final snapshot) if still running

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void start();
  /// Emit the final full snapshot and join the thread. Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// The tick period actually in force after the constructor's guard:
  /// `interval_s` as requested, kFallbackIntervalS for zero/negative
  /// requests, kMinIntervalS for positive-but-sub-minimum ones. Clamping
  /// prints one warning to the console stream (stderr if none).
  [[nodiscard]] double effective_interval_s() const { return effective_interval_s_; }

 private:
  void run();
  void emit(bool final_snapshot);

  const MetricsRegistry& reg_;
  Options options_;
  StatusFn status_;
  double effective_interval_s_ = kFallbackIntervalS;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread thread_;
  std::atomic<std::uint64_t> ticks_{0};
  std::chrono::steady_clock::time_point started_{};
};

}  // namespace elephant::obs
