#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace elephant::obs {

/// Monotone event counter. Updates are relaxed atomics, so any thread may
/// bump any counter at any time (per-cell sweep workers, the in-run sampler,
/// the heartbeat reader) without synchronization; one uncontended add is a
/// single locked instruction, and reads never block writers.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (cwnd, heap depth, sim-time). A set()
/// is one relaxed store — cheap enough to publish from a hot loop's exit.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Named metrics for one scope (a run, a sweep, a process). Registration
/// (find-or-create) locks and may allocate; the returned references are
/// stable for the registry's lifetime, so components register once at wiring
/// time and update lock-free afterwards — the steady state never touches the
/// registry, its mutex, or the allocator.
///
/// Thread contract: Counter/Gauge updates are atomic and safe from any
/// thread. Histogram writes are single-writer (one registry per running
/// cell); writing a *shared* registry's histogram requires holding mutex(),
/// which is also what merge_from() and the export writers take.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LogLinHistogram& histogram(std::string_view name);

  /// Find-or-create with a one-line description attached on first sight —
  /// the Prometheus writer emits it as `# HELP`. An empty help string, or a
  /// name that already has one, leaves the stored text unchanged.
  [[nodiscard]] Counter& counter(std::string_view name, std::string_view help);
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view help);
  [[nodiscard]] LogLinHistogram& histogram(std::string_view name,
                                           std::string_view help);

  /// Description registered for `name`, or an empty view. Called with
  /// mutex() held (the export writers) or after registration has quiesced.
  [[nodiscard]] std::string_view help_text(std::string_view name) const;

  /// Fold another registry into this one: counters add, gauges take the
  /// source value, histograms merge bucket-wise. Locks this registry; the
  /// source must be quiescent (its run has finished).
  void merge_from(const MetricsRegistry& other);

  /// Guards histogram access on shared registries and is taken internally by
  /// merge_from() and the writers in export.hpp.
  [[nodiscard]] std::mutex& mutex() const { return mu_; }

  /// Visitors used by the export writers; called with mutex() held.
  template <typename F>
  void for_each_counter(F&& f) const {
    for (const auto& [name, c] : counters_) f(name, c);
  }
  template <typename F>
  void for_each_gauge(F&& f) const {
    for (const auto& [name, g] : gauges_) f(name, g);
  }
  template <typename F>
  void for_each_histogram(F&& f) const {
    for (const auto& [name, h] : histograms_) f(name, h);
  }

 private:
  mutable std::mutex mu_;
  // std::map: node stability makes every returned reference permanent, and
  // iteration order is deterministic for the exporters.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LogLinHistogram, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// RAII wall-clock timer: records elapsed seconds into a histogram on
/// destruction. A null histogram disables it entirely (no clock read), so
/// `ScopedTimer t(maybe_null)` is the self-profiling idiom for code that
/// runs with telemetry off by default.
class ScopedTimer {
 public:
  explicit ScopedTimer(LogLinHistogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) {
      h_->record(std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                     .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LogLinHistogram* h_;
  std::chrono::steady_clock::time_point start_{};
};

/// Gauges the scheduler publishes when a run/run_until call returns — pull
/// instrumentation: the per-event hot path is untouched, the cost is three
/// relaxed stores per run-loop exit (measured <2% even on the empty-churn
/// micro-benchmark that calls run_until once per event).
struct SchedulerMetrics {
  Gauge* events_executed = nullptr;  ///< monotone total over the scheduler's life
  Gauge* heap_depth = nullptr;       ///< pending events at loop exit
  Gauge* heap_peak = nullptr;        ///< high-water mark of the event heap
  /// Wall seconds per run_until(deadline, limits) call. Left null by the
  /// hot-path benchmarks (which call run_until once per event): the clock is
  /// only read when this is wired, so arming it is an explicit opt-in by the
  /// cell runners whose run_until calls span whole windows.
  LogLinHistogram* run_wall_s = nullptr;
};

/// Hot-layer handles for one bottleneck port and its qdisc. The counters are
/// published from QueueStats at run boundaries (the qdisc already counts);
/// only the sojourn histogram is a genuinely new per-packet write, gated on
/// one null check in the dequeue path.
struct QueueMetrics {
  LogLinHistogram* sojourn_s = nullptr;  ///< queueing delay per dequeued packet
};

/// Hot-layer handles shared by every TcpSender of a run. Counters ride the
/// existing TcpSenderStats and are published at run end; the histogram and
/// gauge are updated per ACK behind one null check.
struct TcpMetrics {
  Gauge* cwnd_segments = nullptr;   ///< most recent cwnd across flows
  LogLinHistogram* srtt_s = nullptr;  ///< smoothed RTT at each RTT-sample ACK
};

}  // namespace elephant::obs
