#include "obs/episode.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace elephant::obs {

namespace {

void appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

}  // namespace

EpisodeDetector::EpisodeDetector(EpisodeOptions opt) : opt_(std::move(opt)) {}

void EpisodeDetector::sample(double t_s, const std::vector<FlowSample>& flows,
                             const QueueSample& queue) {
  // Grow the dense prev-state table to cover every flow id seen.
  std::uint32_t max_id = 0;
  for (const FlowSample& f : flows) max_id = std::max(max_id, f.flow);
  if (prev_flows_.size() <= max_id) prev_flows_.resize(max_id + 1);

  if (!have_baseline_) {
    have_baseline_ = true;
  } else {
    // Differentiate the window [prev_t_, t_s): goodput deltas over flows that
    // were live for the whole window, plus the evidence deltas.
    double sum = 0;
    double sum_sq = 0;
    std::size_t n_active = 0;
    double min_delta = 0;
    const FlowSample* victim = nullptr;
    std::uint64_t retx_delta = 0;
    std::uint64_t rto_delta = 0;
    bool cwnd_collapse = false;
    for (const FlowSample& f : flows) {
      const PrevFlow& prev = prev_flows_[f.flow];
      if (!prev.seen || !prev.active) continue;
      const auto d = static_cast<double>(f.delivered_bytes - prev.delivered_bytes);
      sum += d;
      sum_sq += d * d;
      if (victim == nullptr || d < min_delta) {
        min_delta = d;
        victim = &f;
      }
      ++n_active;
      if (f.retx_segments >= prev.retx_segments) {
        retx_delta += f.retx_segments - prev.retx_segments;
      }
      if (f.rtos >= prev.rtos) rto_delta += f.rtos - prev.rtos;
      if (prev.cwnd_segments > 0 && f.cwnd_segments < 0.5 * prev.cwnd_segments) {
        cwnd_collapse = true;
      }
    }

    // Windowed Jain over the active flows' goodput deltas; an all-idle window
    // (sum == 0) reads as fair — nobody is being starved of nothing.
    double jain = 1.0;
    if (n_active >= 2 && sum > 0) {
      jain = (sum * sum) / (static_cast<double>(n_active) * sum_sq);
    }

    const bool unfair = n_active >= 2 && jain < opt_.enter_jain;

    if (open_ && (jain >= opt_.exit_jain || n_active < 2)) {
      // The previous window was the last unfair one.
      close_episode(prev_t_);
    }
    if (!open_ && unfair) {
      open_ = true;
      current_ = Episode{};
      current_.start_s = prev_t_;
      current_.worst_jain = 1.0;
    }
    if (open_) {
      // Accumulate this window's evidence into the open episode.
      current_.loss_injected += queue.injected_loss - prev_queue_.injected_loss;
      current_.drops_overflow += queue.dropped_overflow - prev_queue_.dropped_overflow;
      current_.drops_early += queue.dropped_early - prev_queue_.dropped_early;
      current_.ecn_marks += queue.ecn_marked - prev_queue_.ecn_marked;
      current_.faults += queue.faults_applied - prev_queue_.faults_applied;
      current_.retx += retx_delta;
      current_.rtos += rto_delta;
      if (cwnd_collapse) ++current_.cwnd_collapses;
      if (jain < current_.worst_jain) {
        current_.worst_jain = jain;
        current_.worst_t_s = t_s;
        if (victim != nullptr) {
          current_.victim_flow = victim->flow;
          current_.victim_side = victim->side;
          const double fair = sum / static_cast<double>(n_active);
          current_.victim_share = fair > 0 ? min_delta / fair : 0;
        }
      }
      current_.end_s = t_s;
    }
  }

  // Roll the cumulative state forward.
  for (PrevFlow& p : prev_flows_) p.seen = false;
  for (const FlowSample& f : flows) {
    PrevFlow& p = prev_flows_[f.flow];
    p.delivered_bytes = f.delivered_bytes;
    p.retx_segments = f.retx_segments;
    p.rtos = f.rtos;
    p.cwnd_segments = f.cwnd_segments;
    p.active = f.active;
    p.seen = true;
  }
  prev_queue_ = queue;
  prev_t_ = t_s;
}

void EpisodeDetector::finish(double t_s) {
  if (open_) close_episode(std::max(t_s, current_.end_s));
}

void EpisodeDetector::close_episode(double end_s) {
  current_.end_s = end_s;
  current_.cause = classify(current_);
  episodes_.push_back(current_);
  open_ = false;
}

const char* EpisodeDetector::classify(const Episode& e) {
  // Injected loss outranks the bare fault-applied counter: a GE-loss fault
  // bumps both, and "loss-burst" is the more specific story; a link flap
  // bumps only the fault counter and still classifies as "fault".
  if (e.loss_injected > 0) return "loss-burst";
  if (e.faults > 0) return "fault";
  if (e.drops_overflow > 0) return "queue-overflow";
  if (e.drops_early > 0) return "aqm-early-drop";
  if (e.ecn_marks > 0) return "ecn-mark";
  if (e.rtos > 0) return "rto-storm";
  if (e.cwnd_collapses > 0) return "cwnd-collapse";
  return "unknown";
}

void EpisodeDetector::append_episode_json(const Episode& e, std::string* out) {
  appendf(out, "{\"start_s\":%.6g,\"end_s\":%.6g,\"worst_jain\":%.6g",
          e.start_s, e.end_s, e.worst_jain);
  appendf(out, ",\"worst_t_s\":%.6g,\"victim_flow\":%" PRIu32
               ",\"victim_side\":%d,\"victim_share\":%.6g",
          e.worst_t_s, e.victim_flow, e.victim_side, e.victim_share);
  appendf(out,
          ",\"loss_injected\":%" PRIu64 ",\"drops_overflow\":%" PRIu64
          ",\"drops_early\":%" PRIu64 ",\"ecn_marks\":%" PRIu64,
          e.loss_injected, e.drops_overflow, e.drops_early, e.ecn_marks);
  appendf(out,
          ",\"rtos\":%" PRIu64 ",\"retx\":%" PRIu64 ",\"faults\":%" PRIu64
          ",\"cwnd_collapses\":%" PRIu32,
          e.rtos, e.retx, e.faults, e.cwnd_collapses);
  *out += ",\"cause\":\"";
  *out += e.cause;  // tags are fixed strings, no escaping needed
  *out += "\"}";
}

bool EpisodeDetector::write_jsonl(const std::string& path,
                                  const std::string& cell_id) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  for (const Episode& e : episodes_) {
    std::string line = "{\"cell\":\"";
    for (const char c : cell_id) {  // ids are [-A-Za-z0-9_.,\[\]]; escape anyway
      if (c == '"' || c == '\\') line.push_back('\\');
      line.push_back(c);
    }
    line += "\",\"episode\":";
    append_episode_json(e, &line);
    line += "}\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) ok = false;
  }
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

}  // namespace elephant::obs
