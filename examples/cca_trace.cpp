// CCA trace: record full transport telemetry (cwnd, pipe, srtt, pacing rate,
// per-second goodput, retransmissions) for one flow of each requested CCA
// competing on the same bottleneck, and write an ML-ready CSV — the
// simulated counterpart of the paper's published iperf3/ss log dataset.
//
// Usage: cca_trace [out.csv] [mbps] [seconds] [cca ...]
//   e.g. cca_trace trace.csv 500 60 bbr1 cubic

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "metrics/flow_monitor.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  const char* out_path = argc > 1 ? argv[1] : "cca_trace.csv";
  const double mbps = argc > 2 ? std::atof(argv[2]) : 100;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 60;
  std::vector<cca::CcaKind> kinds;
  for (int i = 4; i < argc; ++i) kinds.push_back(cca::cca_kind_from_string(argv[i]));
  if (kinds.empty()) kinds = {cca::CcaKind::kBbrV1, cca::CcaKind::kCubic};

  sim::Scheduler sched;
  sim::Rng rng(99);
  net::DumbbellConfig topo;
  topo.bottleneck_bps = mbps * 1e6;
  topo.bottleneck_buffer_bytes =
      static_cast<std::size_t>(2.0 * topo.bottleneck_bps * 0.062 / 8.0);
  net::Dumbbell net(sched, topo);

  std::vector<std::unique_ptr<tcp::Flow>> flows;
  metrics::FlowMonitor monitor(sched, sim::Time::seconds(1));
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    tcp::FlowConfig fc;
    fc.id = static_cast<net::FlowId>(i + 1);
    fc.cca = kinds[i];
    fc.seed = rng.next_u64();
    fc.start_time = sim::Time::seconds(0.2 * rng.next_double());
    const int side = static_cast<int>(i % 2);
    flows.push_back(std::make_unique<tcp::Flow>(sched, net.client(side), net.server(side), fc));
    monitor.watch(*flows.back());
    flows.back()->start();
  }
  monitor.start();

  std::printf("Tracing %zu flows over %.0f Mb/s FIFO (2 BDP) for %.0f s...\n", kinds.size(),
              mbps, seconds);
  sched.run_until(sim::Time::seconds(seconds));

  std::ofstream out(out_path);
  monitor.write_csv(out);
  std::printf("Wrote %s (%zu samples per flow)\n", out_path,
              monitor.series().empty() ? 0 : monitor.series()[0].samples.size());

  for (const auto& s : monitor.series()) {
    double sum = 0;
    for (const auto& p : s.samples) sum += p.goodput_bps;
    std::printf("  %-10s avg %8.2f Mb/s, final cwnd %7.0f segs, %llu retx\n",
                s.label.c_str(), sum / s.samples.size() / 1e6,
                s.samples.back().cwnd_segments,
                static_cast<unsigned long long>(s.samples.back().retx_units));
  }
  return 0;
}
