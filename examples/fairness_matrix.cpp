// Fairness matrix: every CCA against every CCA at one bandwidth/AQM — a
// head-to-head grid of Jain indices showing which algorithms coexist.
// (The paper tests the CUBIC column; this example fills in the whole grid,
// one of the "future work" directions.)
//
// Usage: fairness_matrix [aqm] [mbps] [buffer_bdp]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/config.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace elephant;
  using cca::CcaKind;

  aqm::AqmKind aqm = aqm::AqmKind::kFifo;
  double mbps = 100;
  double bdp = 2.0;
  if (argc > 1) aqm = aqm::aqm_kind_from_string(argv[1]);
  if (argc > 2) mbps = std::atof(argv[2]);
  if (argc > 3) bdp = std::atof(argv[3]);

  const std::vector<CcaKind> all = {CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp,
                                    CcaKind::kBbrV1, CcaKind::kBbrV2};

  std::printf("Jain fairness grid, %s @ %.0f Mb/s, %.1f BDP buffer (20 s per cell)\n\n",
              aqm::to_string(aqm).c_str(), mbps, bdp);
  std::printf("%8s", "");
  for (const CcaKind col : all) std::printf(" %8s", cca::to_string(col).c_str());
  std::printf("\n");

  for (const CcaKind row : all) {
    std::printf("%8s", cca::to_string(row).c_str());
    for (const CcaKind col : all) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = row;
      cfg.cca2 = col;
      cfg.aqm = aqm;
      cfg.buffer_bdp = bdp;
      cfg.bottleneck_bps = mbps * 1e6;
      cfg.duration = sim::Time::seconds(20);
      const auto res = exp::run_experiment(cfg);
      std::printf(" %8.3f", res.jain2);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(1.0 = the two sender nodes share the bottleneck equally)\n");
  return 0;
}
