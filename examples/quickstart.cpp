// Quickstart: simulate one cell of the paper's matrix — BBRv1 vs CUBIC over
// a 1 Gb/s bottleneck with a 2-BDP FIFO buffer — and print per-sender
// throughput, Jain's fairness index, utilization, and retransmissions.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [cca1] [cca2] [aqm] [buffer_bdp] [bw_gbps]

#include <cstdio>
#include <cstdlib>

#include "exp/config.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  exp::ExperimentConfig cfg;
  cfg.cca1 = cca::CcaKind::kBbrV1;
  cfg.cca2 = cca::CcaKind::kCubic;
  cfg.aqm = aqm::AqmKind::kFifo;
  cfg.buffer_bdp = 2.0;
  cfg.bottleneck_bps = 1e9;
  cfg.duration = sim::Time::seconds(30);

  if (argc > 1) cfg.cca1 = cca::cca_kind_from_string(argv[1]);
  if (argc > 2) cfg.cca2 = cca::cca_kind_from_string(argv[2]);
  if (argc > 3) cfg.aqm = aqm::aqm_kind_from_string(argv[3]);
  if (argc > 4) cfg.buffer_bdp = std::atof(argv[4]);
  if (argc > 5) cfg.bottleneck_bps = std::atof(argv[5]) * 1e9;
  if (argc > 6) cfg.duration = sim::Time::seconds(std::atof(argv[6]));
  if (argc > 7) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[7]));

  std::printf("Running: %s  (%u flows, %.0f s simulated)\n", cfg.label().c_str(),
              cfg.effective_flows(), cfg.effective_duration().sec());

  const exp::ExperimentResult res = exp::run_experiment(cfg);

  std::printf("\n  sender1 (%s): %8.2f Mb/s\n", cca::to_string(cfg.cca1).c_str(),
              res.sender_bps[0] / 1e6);
  std::printf("  sender2 (%s): %8.2f Mb/s\n", cca::to_string(cfg.cca2).c_str(),
              res.sender_bps[1] / 1e6);
  std::printf("  Jain index J : %8.3f\n", res.jain2);
  std::printf("  utilization φ: %8.3f\n", res.utilization);
  std::printf("  retransmitted: %8llu segments (%llu RTOs)\n",
              static_cast<unsigned long long>(res.retx_segments),
              static_cast<unsigned long long>(res.rtos));
  std::printf("  bottleneck drops: %llu overflow, %llu early\n",
              static_cast<unsigned long long>(res.bottleneck.dropped_overflow),
              static_cast<unsigned long long>(res.bottleneck.dropped_early));
  std::printf("  [%llu events in %.2f s wall]\n",
              static_cast<unsigned long long>(res.events_executed), res.wall_seconds);
  return 0;
}
