// RTT unfairness on a parking-lot chain: one long flow crosses `hops`
// bottlenecks (high RTT), competing at each hop with a local cross flow
// (low RTT). Classic result: loss-based CCAs starve the long flow roughly
// per-hop; BBR's model-based shares are much flatter — the "varying RTTs"
// study the paper leaves as future work.
//
// Usage: rtt_unfairness [hops] [mbps]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/parking_lot.hpp"
#include "sim/random.hpp"
#include "tcp/flow.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  const int hops = argc > 1 ? std::atoi(argv[1]) : 3;
  const double mbps = argc > 2 ? std::atof(argv[2]) : 100;

  std::printf("Parking lot: %d hops @ %.0f Mb/s, FIFO 2xBDP per hop (40 s per CCA)\n\n",
              hops, mbps);
  std::printf("%-8s %14s %16s %14s\n", "CCA", "long(Mb/s)", "cross-avg(Mb/s)", "long share");

  for (const cca::CcaKind kind :
       {cca::CcaKind::kReno, cca::CcaKind::kCubic, cca::CcaKind::kHtcp,
        cca::CcaKind::kBbrV1, cca::CcaKind::kBbrV2}) {
    sim::Scheduler sched;
    sim::Rng rng(11);
    net::ParkingLotConfig cfg;
    cfg.hops = hops;
    cfg.bottleneck_bps = mbps * 1e6;
    cfg.buffer_bytes_per_hop =
        static_cast<std::size_t>(2.0 * cfg.bottleneck_bps * 0.024 / 8.0);
    cfg.seed = rng.next_u64();
    net::ParkingLot pl(sched, cfg);

    std::vector<std::unique_ptr<tcp::Flow>> flows;
    auto add = [&](net::Host& src, net::Host& dst) {
      tcp::FlowConfig fc;
      fc.id = static_cast<net::FlowId>(flows.size() + 1);
      fc.cca = kind;
      fc.seed = rng.next_u64();
      fc.start_time = sim::Time::seconds(0.2 * rng.next_double());
      flows.push_back(std::make_unique<tcp::Flow>(sched, src, dst, fc));
      flows.back()->start();
    };
    add(pl.long_src(), pl.long_dst());
    for (int i = 0; i < hops; ++i) add(pl.cross_src(i), pl.cross_dst(i));

    const double duration = 40;
    sched.run_until(sim::Time::seconds(duration));

    const double long_bps = flows[0]->goodput_bps(sim::Time::seconds(duration));
    double cross = 0;
    for (std::size_t i = 1; i < flows.size(); ++i) {
      cross += flows[i]->goodput_bps(sim::Time::seconds(duration));
    }
    cross /= static_cast<double>(flows.size() - 1);
    std::printf("%-8s %14.2f %16.2f %13.1f%%\n", cca::to_string(kind).c_str(),
                long_bps / 1e6, cross / 1e6, 100.0 * long_bps / (long_bps + cross));
  }
  std::printf("\n(50%% would be a perfectly RTT-fair split at each hop.)\n");
  return 0;
}
