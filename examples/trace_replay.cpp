// Trace replay: run one traced experiment with the flight recorder attached
// and write the full event stream to disk — per-flow cwnd/pacing updates,
// packet sends and retransmissions, SACK/loss marks, RTO fires, bottleneck
// AQM enqueue/drop/mark decisions, and periodic queue-depth samples. The
// output is the raw material for the paper's time-series figures (cwnd vs
// time, queue occupancy vs time).
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/trace_replay [cca1] [cca2] [aqm] [out.csv|out.jsonl]
//
// The extension picks the codec: .jsonl writes JSON lines, anything else CSV.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  exp::ExperimentConfig cfg;
  cfg.cca1 = cca::CcaKind::kBbrV1;
  cfg.cca2 = cca::CcaKind::kCubic;
  cfg.aqm = aqm::AqmKind::kFifo;
  cfg.bottleneck_bps = 1e9;
  cfg.duration = sim::Time::seconds(30);
  std::string out_path = "trace.csv";

  if (argc > 1) cfg.cca1 = cca::cca_kind_from_string(argv[1]);
  if (argc > 2) cfg.cca2 = cca::cca_kind_from_string(argv[2]);
  if (argc > 3) cfg.aqm = aqm::aqm_kind_from_string(argv[3]);
  if (argc > 4) out_path = argv[4];

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  const bool jsonl = out_path.size() > 6 && out_path.rfind(".jsonl") == out_path.size() - 6;
  std::unique_ptr<trace::TraceSink> sink;
  if (jsonl) {
    sink = std::make_unique<trace::JsonlSink>(out);
  } else {
    sink = std::make_unique<trace::CsvSink>(out);
  }
  trace::Tracer tracer(*sink);
  cfg.tracer = &tracer;

  std::printf("Tracing: %s -> %s (%s)\n", cfg.label().c_str(), out_path.c_str(),
              jsonl ? "jsonl" : "csv");
  const exp::ExperimentResult res = exp::run_experiment(cfg);

  std::printf("  sender1 (%s): %8.2f Mb/s\n", cca::to_string(cfg.cca1).c_str(),
              res.sender_bps[0] / 1e6);
  std::printf("  sender2 (%s): %8.2f Mb/s\n", cca::to_string(cfg.cca2).c_str(),
              res.sender_bps[1] / 1e6);
  std::printf("  %llu trace records written\n",
              static_cast<unsigned long long>(tracer.recorded()));
  std::printf("  plot cwnd:  awk -F, '$2==\"cwnd_update\"{print $1/1e9, $3, $5}' %s\n",
              out_path.c_str());
  std::printf("  plot queue: awk -F, '$2==\"queue_depth\"{print $1/1e9, $5}' %s\n",
              out_path.c_str());
  return 0;
}
