// Elephant transfer: the paper's motivating scenario — a large science data
// transfer (many parallel bulk flows, like a Science DMZ DTN) sharing a
// high-throughput link with another site's transfer. Prints a per-second
// throughput trace for each sender plus a transfer-time summary.
//
// Usage: elephant_transfer [cca1] [cca2] [gbps] [seconds]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cca/congestion_control.hpp"
#include "metrics/timeseries.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  cca::CcaKind cca1 = cca::CcaKind::kBbrV2;
  cca::CcaKind cca2 = cca::CcaKind::kCubic;
  double gbps = 1.0;
  double seconds = 30.0;
  if (argc > 1) cca1 = cca::cca_kind_from_string(argv[1]);
  if (argc > 2) cca2 = cca::cca_kind_from_string(argv[2]);
  if (argc > 3) gbps = std::atof(argv[3]);
  if (argc > 4) seconds = std::atof(argv[4]);

  sim::Scheduler sched;
  sim::Rng rng(2024);

  net::DumbbellConfig topo;
  topo.bottleneck_bps = gbps * 1e9;
  topo.aqm = aqm::AqmKind::kFqCodel;  // the paper's recommended AQM
  topo.bottleneck_buffer_bytes =
      static_cast<std::size_t>(2.0 * topo.bottleneck_bps * 0.062 / 8.0);
  net::Dumbbell net(sched, topo);

  // 8 parallel streams per site, GridFTP-style.
  constexpr int kStreamsPerSite = 8;
  struct Flow {
    std::unique_ptr<tcp::TcpSender> tx;
    std::unique_ptr<tcp::TcpReceiver> rx;
    int side;
  };
  std::vector<Flow> flows;
  for (int side = 0; side < 2; ++side) {
    for (int i = 0; i < kStreamsPerSite; ++i) {
      const net::FlowId id = static_cast<net::FlowId>(flows.size() + 1);
      cca::CcaParams cp;
      cp.seed = rng.next_u64();
      tcp::TcpSenderConfig sc;
      sc.flow = id;
      sc.src = net.client(side).id();
      sc.dst = net.server(side).id();
      sc.agg = gbps >= 10 ? 8 : 1;
      cp.min_cwnd_segments = sc.agg;
      sc.start_time = sim::Time::seconds(0.2 * rng.next_double());
      Flow f;
      f.side = side;
      f.rx = std::make_unique<tcp::TcpReceiver>(sched, net.server(side),
                                                net.client(side).id(), id);
      f.tx = std::make_unique<tcp::TcpSender>(
          sched, net.client(side), sc, cca::make_cca(side == 0 ? cca1 : cca2, cp));
      net.client(side).register_endpoint(id, f.tx.get());
      net.server(side).register_endpoint(id, f.rx.get());
      f.tx->start();
      flows.push_back(std::move(f));
    }
  }

  // Per-second throughput traces per site.
  auto site_bytes = [&](int side) {
    double total = 0;
    for (const Flow& f : flows) {
      if (f.side == side) total += static_cast<double>(f.rx->delivered_bytes());
    }
    return total;
  };
  metrics::TimeSeries trace1(sched, sim::Time::seconds(1), [&] { return site_bytes(0); });
  metrics::TimeSeries trace2(sched, sim::Time::seconds(1), [&] { return site_bytes(1); });
  trace1.start();
  trace2.start();

  std::printf("Elephant transfer: site1=%s vs site2=%s over %.0f Gb/s FQ-CoDel, %d+%d streams\n\n",
              cca::to_string(cca1).c_str(), cca::to_string(cca2).c_str(), gbps,
              kStreamsPerSite, kStreamsPerSite);
  sched.run_until(sim::Time::seconds(seconds));

  const auto d1 = trace1.deltas();
  const auto d2 = trace2.deltas();
  std::printf("  t(s)   site1(Mb/s)  site2(Mb/s)\n");
  for (std::size_t i = 0; i < d1.size() && i < d2.size(); ++i) {
    std::printf("  %4.0f   %10.1f  %10.1f\n", d1[i].t.sec(), d1[i].value * 8 / 1e6,
                d2[i].value * 8 / 1e6);
  }

  const double total1 = site_bytes(0);
  const double total2 = site_bytes(1);
  std::uint64_t retx = 0;
  for (const Flow& f : flows) retx += f.tx->retx_segments();
  std::printf("\n  site1 moved %.2f GB (%.1f Mb/s avg)\n", total1 / 1e9,
              total1 * 8 / seconds / 1e6);
  std::printf("  site2 moved %.2f GB (%.1f Mb/s avg)\n", total2 / 1e9,
              total2 * 8 / seconds / 1e6);
  std::printf("  total retransmissions: %llu segments\n",
              static_cast<unsigned long long>(retx));
  return 0;
}
