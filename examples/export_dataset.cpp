// Dataset exporter — the paper's fourth contribution is a reproducible
// dataset of TCP logs "useful for developing, training, and testing TCP ML
// models". This tool runs a configurable slice of the experiment matrix and
// writes a tidy CSV (one row per run, plus a per-flow CSV) ready for pandas
// or similar.
//
// Usage: export_dataset [out_prefix] [aqm|all] [max_bw_gbps]
//   e.g. export_dataset dataset fifo 1     -> dataset_runs.csv, dataset_flows.csv

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "exp/config.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  std::string prefix = argc > 1 ? argv[1] : "dataset";
  const std::string aqm_arg = argc > 2 ? argv[2] : "all";
  const double max_bw = (argc > 3 ? std::atof(argv[3]) : 1.0) * 1e9;

  std::vector<aqm::AqmKind> aqms;
  if (aqm_arg == "all") {
    aqms = exp::paper_aqms();
  } else {
    aqms = {aqm::aqm_kind_from_string(aqm_arg)};
  }
  std::vector<double> bws;
  for (const double bw : exp::paper_bandwidths()) {
    if (bw <= max_bw) bws.push_back(bw);
  }

  const auto configs =
      exp::make_matrix(exp::paper_cca_pairs(), aqms, exp::paper_buffer_bdps(), bws);

  std::ofstream runs(prefix + "_runs.csv");
  std::ofstream flows(prefix + "_flows.csv");
  runs << "cca1,cca2,aqm,buffer_bdp,bw_bps,flows,duration_s,seed,"
          "sender1_bps,sender2_bps,jain2,utilization,retx_segments,rtos,"
          "bottleneck_drops_overflow,bottleneck_drops_early\n";
  flows << "cca1,cca2,aqm,buffer_bdp,bw_bps,flow,sender,cca,throughput_bps,"
           "retx_segments,rtos,srtt_ms\n";

  std::size_t done = 0;
  for (const auto& cfg : configs) {
    const auto res = exp::run_experiment(cfg);
    runs << cca::to_string(cfg.cca1) << ',' << cca::to_string(cfg.cca2) << ','
         << aqm::to_string(cfg.aqm) << ',' << cfg.buffer_bdp << ',' << cfg.bottleneck_bps
         << ',' << cfg.effective_flows() << ',' << cfg.effective_duration().sec() << ','
         << cfg.seed << ',' << res.sender_bps[0] << ',' << res.sender_bps[1] << ','
         << res.jain2 << ',' << res.utilization << ',' << res.retx_segments << ','
         << res.rtos << ',' << res.bottleneck.dropped_overflow << ','
         << res.bottleneck.dropped_early << '\n';
    for (const auto& f : res.flows) {
      flows << cca::to_string(cfg.cca1) << ',' << cca::to_string(cfg.cca2) << ','
            << aqm::to_string(cfg.aqm) << ',' << cfg.buffer_bdp << ','
            << cfg.bottleneck_bps << ',' << f.flow << ',' << f.sender << ',' << f.cca
            << ',' << f.throughput_bps << ',' << f.retx_segments << ',' << f.rtos << ','
            << f.srtt_ms << '\n';
    }
    ++done;
    std::fprintf(stderr, "\r%zu/%zu runs", done, configs.size());
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\nWrote %s_runs.csv and %s_flows.csv (%zu runs)\n", prefix.c_str(),
               prefix.c_str(), done);
  return 0;
}
