// Mice and elephants: short transfers (mice) competing with bulk science
// flows (elephants) under each AQM. Flow-completion time is "the right
// metric for congestion control" (Dukkipati & McKeown, cited by the paper);
// this example shows why the paper's AQM choice matters beyond elephant
// fairness: FIFO bufferbloat multiplies mouse FCT, FQ-CoDel insulates mice.
//
// Usage: mice_and_elephants [elephant_cca] [mbps] [mouse_kb]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sim/random.hpp"
#include "tcp/flow.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  cca::CcaKind elephant_cca = cca::CcaKind::kCubic;
  double mbps = 100;
  double mouse_kb = 900;  // ~100 jumbo segments
  if (argc > 1) elephant_cca = cca::cca_kind_from_string(argv[1]);
  if (argc > 2) mbps = std::atof(argv[2]);
  if (argc > 3) mouse_kb = std::atof(argv[3]);

  std::printf("Mice (%0.f KB, CUBIC) vs %s elephants at %.0f Mb/s, 2 BDP buffer\n\n",
              mouse_kb, cca::to_string(elephant_cca).c_str(), mbps);
  std::printf("%-10s %14s %14s %16s\n", "AQM", "median FCT", "p95 FCT", "elephant Mb/s");

  for (const aqm::AqmKind aqm :
       {aqm::AqmKind::kFifo, aqm::AqmKind::kRed, aqm::AqmKind::kFqCodel,
        aqm::AqmKind::kPie}) {
    sim::Scheduler sched;
    sim::Rng rng(7);
    net::DumbbellConfig topo;
    topo.bottleneck_bps = mbps * 1e6;
    topo.aqm = aqm;
    topo.bottleneck_buffer_bytes =
        static_cast<std::size_t>(2.0 * topo.bottleneck_bps * 0.062 / 8.0);
    topo.seed = rng.next_u64();
    net::Dumbbell net(sched, topo);

    std::vector<std::unique_ptr<tcp::Flow>> flows;
    auto add_flow = [&](int side, cca::CcaKind kind, std::uint64_t bytes,
                        sim::Time start) -> tcp::Flow& {
      tcp::FlowConfig fc;
      fc.id = static_cast<net::FlowId>(flows.size() + 1);
      fc.cca = kind;
      fc.transfer_bytes = bytes;
      fc.start_time = start;
      fc.seed = rng.next_u64();
      flows.push_back(
          std::make_unique<tcp::Flow>(sched, net.client(side), net.server(side), fc));
      flows.back()->start();
      return *flows.back();
    };

    // Two elephants warm up for 5 s, then 40 mice arrive over 20 s.
    add_flow(0, elephant_cca, 0, sim::Time::seconds(0.0));
    add_flow(0, elephant_cca, 0, sim::Time::seconds(0.1));
    std::vector<tcp::Flow*> mice;
    for (int i = 0; i < 40; ++i) {
      const auto start = sim::Time::seconds(5.0 + 0.5 * i);
      mice.push_back(&add_flow(1, cca::CcaKind::kCubic,
                               static_cast<std::uint64_t>(mouse_kb * 1000), start));
    }
    const double duration = 60;
    sched.run_until(sim::Time::seconds(duration));

    std::vector<double> fct;
    for (const tcp::Flow* m : mice) {
      if (m->completed()) fct.push_back(m->completion_time().ms());
    }
    std::sort(fct.begin(), fct.end());
    const double elephant_bps =
        flows[0]->goodput_bps(sim::Time::seconds(duration)) +
        flows[1]->goodput_bps(sim::Time::seconds(duration));

    if (fct.empty()) {
      std::printf("%-10s %14s %14s %15.1f\n", aqm::to_string(aqm).c_str(), "n/a", "n/a",
                  elephant_bps / 1e6);
      continue;
    }
    const double median = fct[fct.size() / 2];
    const double p95 = fct[static_cast<std::size_t>(static_cast<double>(fct.size() - 1) * 0.95)];
    std::printf("%-10s %12.1fms %12.1fms %15.1f   (%zu/40 mice done)\n",
                aqm::to_string(aqm).c_str(), median, p95, elephant_bps / 1e6, fct.size());
  }
  std::printf("\n(FIFO: mice wait behind the elephants' standing queue; FQ-CoDel gives\n"
              " them their own queue and near-propagation-delay FCTs.)\n");
  return 0;
}
