// AQM showdown: the same CCA pair across all three AQMs and two buffer
// depths, printing a compact comparison table — a miniature of the paper's
// §5.2 analysis that runs in seconds.
//
// Usage: aqm_showdown [cca1] [cca2] [mbps]

#include <cstdio>
#include <cstdlib>

#include "exp/config.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace elephant;

  cca::CcaKind cca1 = cca::CcaKind::kBbrV1;
  cca::CcaKind cca2 = cca::CcaKind::kCubic;
  double mbps = 100;
  if (argc > 1) cca1 = cca::cca_kind_from_string(argv[1]);
  if (argc > 2) cca2 = cca::cca_kind_from_string(argv[2]);
  if (argc > 3) mbps = std::atof(argv[3]);

  std::printf("AQM showdown: %s vs %s at %.0f Mb/s (30 s per cell)\n\n",
              cca::to_string(cca1).c_str(), cca::to_string(cca2).c_str(), mbps);
  std::printf("%-10s %7s | %10s %10s %7s %7s %9s\n", "AQM", "buffer", "S1(Mb/s)",
              "S2(Mb/s)", "J", "util", "retx");

  for (const aqm::AqmKind aqm : exp::paper_aqms()) {
    for (const double bdp : {2.0, 16.0}) {
      exp::ExperimentConfig cfg;
      cfg.cca1 = cca1;
      cfg.cca2 = cca2;
      cfg.aqm = aqm;
      cfg.buffer_bdp = bdp;
      cfg.bottleneck_bps = mbps * 1e6;
      cfg.duration = sim::Time::seconds(30);
      const auto res = exp::run_experiment(cfg);
      std::printf("%-10s %5.1fBDP | %10.2f %10.2f %7.3f %7.3f %9llu\n",
                  aqm::to_string(aqm).c_str(), bdp, res.sender_bps[0] / 1e6,
                  res.sender_bps[1] / 1e6, res.jain2, res.utilization,
                  static_cast<unsigned long long>(res.retx_segments));
    }
  }
  return 0;
}
