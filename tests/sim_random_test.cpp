#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace elephant::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedValuesInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, BoundedZeroIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.next_exponential(1.0), 0.0);
}

TEST(DeriveSeed, StreamZeroIsTheBaseSeed) {
  EXPECT_EQ(derive_seed(42, 0), 42u);
  EXPECT_EQ(derive_seed(0xDEADBEEF, 0), 0xDEADBEEFu);
}

TEST(DeriveSeed, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 4096; ++id) seen.insert(derive_seed(42, id));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(DeriveSeed, StreamsAreIndependent) {
  // The generators seeded from adjacent streams must not be correlated: no
  // output collisions over a short horizon, unlike the additive ad-hoc
  // `seed + i` scheme this helper replaced (where close seeds can yield
  // overlapping splitmix orbits).
  Rng a(derive_seed(7, 1));
  Rng b(derive_seed(7, 2));
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(DeriveSeed, StableAcrossReleases) {
  // Bit-for-bit golden values, captured at introduction. These are part of
  // the reproducibility contract: a change here silently re-maps every
  // previously journaled repetition/retry seed.
  EXPECT_EQ(derive_seed(42, 1), 0x28efe333b266f103ull);
  EXPECT_EQ(derive_seed(42, 2), 0x47526757130f9f52ull);
  EXPECT_EQ(derive_seed(43, 1), 0x9cde98852e60034bull);
  EXPECT_EQ(derive_seed(20240817, 7), 0x97e562b797350ab3ull);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(29);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace elephant::sim
