#include "cca/reno.hpp"

#include <gtest/gtest.h>

namespace elephant::cca {
namespace {

AckSample ack(double acked, double now_s = 1.0, double rtt_ms = 62) {
  AckSample a;
  a.now = sim::Time::seconds(now_s);
  a.rtt = sim::Time::milliseconds(static_cast<std::int64_t>(rtt_ms));
  a.acked_segments = acked;
  return a;
}

LossSample loss(bool new_event = true, double now_s = 1.0) {
  LossSample l;
  l.now = sim::Time::seconds(now_s);
  l.lost_segments = 1;
  l.new_congestion_event = new_event;
  return l;
}

TEST(Reno, StartsInSlowStartAtInitialWindow) {
  Reno r{CcaParams{}};
  EXPECT_DOUBLE_EQ(r.cwnd_segments(), 10.0);
  EXPECT_TRUE(r.in_slow_start());
}

TEST(Reno, SlowStartDoublesPerRtt) {
  Reno r{CcaParams{}};
  // Acking a full window in slow start doubles cwnd.
  r.on_ack(ack(10));
  EXPECT_DOUBLE_EQ(r.cwnd_segments(), 20.0);
}

TEST(Reno, LossHalvesWindowAndExitsSlowStart) {
  Reno r{CcaParams{}};
  r.on_ack(ack(30));  // cwnd 40
  r.on_loss(loss());
  EXPECT_DOUBLE_EQ(r.cwnd_segments(), 20.0);
  EXPECT_FALSE(r.in_slow_start());
}

TEST(Reno, CongestionAvoidanceAddsOnePerRtt) {
  Reno r{CcaParams{}};
  r.on_loss(loss());  // cwnd 5, CA
  const double w0 = r.cwnd_segments();
  // Ack one full window: +1 segment.
  double acked = 0;
  while (acked < w0) {
    r.on_ack(ack(1));
    acked += 1;
  }
  EXPECT_NEAR(r.cwnd_segments(), w0 + 1.0, 1e-9);
}

TEST(Reno, DuplicateLossSignalsIgnoredWithinEpisode) {
  Reno r{CcaParams{}};
  r.on_ack(ack(30));
  r.on_loss(loss(true));
  const double w = r.cwnd_segments();
  r.on_loss(loss(false));
  r.on_loss(loss(false));
  EXPECT_DOUBLE_EQ(r.cwnd_segments(), w);
}

TEST(Reno, RtoCollapsesToMinimum) {
  Reno r{CcaParams{}};
  r.on_ack(ack(100));
  r.on_rto(sim::Time::seconds(2));
  EXPECT_DOUBLE_EQ(r.cwnd_segments(), 2.0);
  EXPECT_TRUE(r.in_slow_start());      // restart below ssthresh
  EXPECT_GT(r.ssthresh(), 2.0);
}

TEST(Reno, NeverBelowMinCwnd) {
  Reno r{CcaParams{}};
  for (int i = 0; i < 20; ++i) {
    r.on_loss(loss(true));
  }
  EXPECT_GE(r.cwnd_segments(), 2.0);
}

TEST(Reno, SlowStartCapsAtSsthresh) {
  Reno r{CcaParams{}};
  r.on_ack(ack(100));
  r.on_loss(loss());  // ssthresh = cwnd/2
  r.on_rto(sim::Time::seconds(1));
  const double ssthresh = r.ssthresh();
  // Grow back: cwnd must not overshoot ssthresh within slow start.
  while (r.in_slow_start()) r.on_ack(ack(4));
  EXPECT_LE(r.cwnd_segments(), ssthresh + 1e-9);
}

}  // namespace
}  // namespace elephant::cca
