#include "cca/cubic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace elephant::cca {
namespace {

AckSample ack(double acked, double now_s, double rtt_ms = 62, bool round_start = false) {
  AckSample a;
  a.now = sim::Time::seconds(now_s);
  a.rtt = sim::Time::milliseconds(static_cast<std::int64_t>(rtt_ms));
  a.acked_segments = acked;
  a.round_start = round_start;
  return a;
}

LossSample loss(double now_s) {
  LossSample l;
  l.now = sim::Time::seconds(now_s);
  l.lost_segments = 1;
  l.new_congestion_event = true;
  return l;
}

TEST(Cubic, LossMultipliesByBeta) {
  Cubic c{CcaParams{}};
  c.on_ack(ack(90, 1.0));  // slow start: cwnd 100
  EXPECT_DOUBLE_EQ(c.cwnd_segments(), 100.0);
  c.on_loss(loss(1.1));
  EXPECT_NEAR(c.cwnd_segments(), 70.0, 1e-9);
  EXPECT_NEAR(c.w_max(), 100.0, 1e-9);
}

TEST(Cubic, KMatchesRfc8312) {
  Cubic c{CcaParams{}};
  c.on_ack(ack(90, 1.0));
  c.on_loss(loss(1.0));
  // K = cbrt(W_max * (1-beta) / C) = cbrt(100 * 0.3 / 0.4) = cbrt(75).
  EXPECT_NEAR(c.k(), std::cbrt(75.0), 1e-9);
}

TEST(Cubic, RecoversTowardWmaxWithinK) {
  Cubic c{CcaParams{}};
  c.on_ack(ack(90, 1.0));
  c.on_loss(loss(1.0));
  // Feed steady acks for K seconds: window should approach W_max again.
  const double k = c.k();
  double t = 1.0;
  while (t < 1.0 + k + 1.0) {
    c.on_ack(ack(c.cwnd_segments(), t));
    t += 0.062;
  }
  EXPECT_GT(c.cwnd_segments(), 95.0);
}

TEST(Cubic, GrowthIsSlowNearWmaxFastBeyond) {
  // The signature cubic shape: concave approach to the plateau, then convex
  // growth past it.
  Cubic c{CcaParams{}};
  c.on_ack(ack(90, 1.0));
  c.on_loss(loss(1.0));
  const double k = c.k();
  auto growth_during = [&](double from, double to) {
    double t = from;
    const double w0 = c.cwnd_segments();
    while (t < to) {
      c.on_ack(ack(c.cwnd_segments(), t));
      t += 0.062;
    }
    return c.cwnd_segments() - w0;
  };
  const double early = growth_during(1.0, 1.0 + 0.4 * k);       // steep recovery
  const double plateau = growth_during(1.0 + 0.8 * k, 1.0 + 1.2 * k);  // near K: flat
  EXPECT_GT(early, plateau);
}

TEST(Cubic, FastConvergenceLowersWmax) {
  CubicParams p;
  p.fast_convergence = true;
  Cubic c{CcaParams{}, p};
  c.on_ack(ack(90, 1.0));
  c.on_loss(loss(1.0));  // W_max = 100
  // Second loss at a smaller window: W_max scaled by (2-beta)/2 = 0.65.
  c.on_loss(loss(1.1));
  // cwnd was 70 at the loss: W_max = 70 * 0.65 = 45.5.
  EXPECT_NEAR(c.w_max(), 70.0 * 0.65, 1e-6);
}

TEST(Cubic, TcpFriendlyFloorInSmallWindows) {
  // With tiny windows the Reno-equivalent estimate dominates the cubic term,
  // so growth should at least match Reno's.
  Cubic c{CcaParams{}};
  c.on_ack(ack(2, 1.0));  // cwnd 12, slow start
  c.on_loss(loss(1.0));   // cwnd ~8.4
  const double w0 = c.cwnd_segments();
  double t = 1.0;
  for (int rtt = 0; rtt < 10; ++rtt) {
    c.on_ack(ack(c.cwnd_segments(), t));
    t += 0.062;
  }
  EXPECT_GT(c.cwnd_segments(), w0 + 1.0);
}

TEST(Cubic, HystartExitsOnDelayIncrease) {
  CubicParams p;
  p.hystart = true;
  Cubic c{CcaParams{}, p};
  double t = 0.0;
  double rtt = 62;
  // Rounds of 8+ samples with sharply growing RTT: HyStart must fire well
  // before the window reaches absurd sizes.
  for (int round = 0; round < 30 && c.in_slow_start(); ++round) {
    c.on_ack(ack(1, t, rtt, /*round_start=*/true));
    for (int i = 0; i < 9; ++i) c.on_ack(ack(1, t += 0.001, rtt));
    rtt += 30;  // the queue is clearly building
    t += 0.06;
  }
  EXPECT_FALSE(c.in_slow_start());
  EXPECT_LT(c.cwnd_segments(), 400.0);
}

TEST(Cubic, NoHystartNoEarlyExit) {
  CubicParams p;
  p.hystart = false;
  Cubic c{CcaParams{}, p};
  double t = 0.0;
  double rtt = 62;
  for (int round = 0; round < 10; ++round) {
    c.on_ack(ack(1, t, rtt, true));
    for (int i = 0; i < 9; ++i) c.on_ack(ack(1, t += 0.001, rtt));
    rtt += 30;
    t += 0.06;
  }
  EXPECT_TRUE(c.in_slow_start());
}

TEST(Cubic, RtoResetsToMinimum) {
  Cubic c{CcaParams{}};
  c.on_ack(ack(90, 1.0));
  c.on_rto(sim::Time::seconds(2));
  EXPECT_DOUBLE_EQ(c.cwnd_segments(), 2.0);
}

TEST(Cubic, CwndNeverNegativeOrBelowMin) {
  Cubic c{CcaParams{}};
  for (int i = 0; i < 50; ++i) c.on_loss(loss(1.0 + i * 0.01));
  EXPECT_GE(c.cwnd_segments(), 2.0);
}

}  // namespace
}  // namespace elephant::cca
