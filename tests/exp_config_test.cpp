#include "exp/config.hpp"

#include <gtest/gtest.h>

#include "exp/sweep.hpp"

namespace elephant::exp {
namespace {

TEST(Config, BdpMatchesPaperEquation) {
  ExperimentConfig cfg;
  cfg.bottleneck_bps = 1e9;
  cfg.rtt = sim::Time::milliseconds(62);
  // BDP = BW * RTT / 8 = 1e9 * 0.062 / 8 = 7.75 MB.
  EXPECT_NEAR(cfg.bdp_bytes(), 7.75e6, 1.0);
  cfg.buffer_bdp = 2;
  EXPECT_NEAR(cfg.buffer_bytes(), 15.5e6, 1.0);
}

TEST(Config, PaperFlowCountsMatchTable2) {
  EXPECT_EQ(ExperimentConfig::paper_flows_for(100e6), 2u);
  EXPECT_EQ(ExperimentConfig::paper_flows_for(500e6), 10u);
  EXPECT_EQ(ExperimentConfig::paper_flows_for(1e9), 20u);
  EXPECT_EQ(ExperimentConfig::paper_flows_for(10e9), 200u);
  EXPECT_EQ(ExperimentConfig::paper_flows_for(25e9), 500u);
}

TEST(Config, AggregationGrowsWithBandwidth) {
  EXPECT_EQ(ExperimentConfig::default_aggregation_for(100e6), 1u);
  EXPECT_LE(ExperimentConfig::default_aggregation_for(1e9), 4u);
  EXPECT_GE(ExperimentConfig::default_aggregation_for(25e9),
            ExperimentConfig::default_aggregation_for(10e9));
}

TEST(Config, IdIsStableAndUnique) {
  ExperimentConfig a;
  ExperimentConfig b;
  EXPECT_EQ(a.id(), b.id());
  b.buffer_bdp = 4;
  EXPECT_NE(a.id(), b.id());
  b = a;
  b.seed = 43;
  EXPECT_NE(a.id(), b.id());
  b = a;
  b.aqm = aqm::AqmKind::kRed;
  EXPECT_NE(a.id(), b.id());
}

TEST(Config, BwLabels) {
  EXPECT_EQ(bw_label(100e6), "100M");
  EXPECT_EQ(bw_label(500e6), "500M");
  EXPECT_EQ(bw_label(1e9), "1G");
  EXPECT_EQ(bw_label(10e9), "10G");
  EXPECT_EQ(bw_label(25e9), "25G");
}

TEST(Config, PaperMatrixHas810Cells) {
  EXPECT_EQ(paper_matrix().size(), 810u);
}

TEST(Config, PaperAxesMatchTable1) {
  EXPECT_EQ(paper_bandwidths().size(), 5u);
  EXPECT_EQ(paper_buffer_bdps().size(), 6u);
  EXPECT_EQ(paper_aqms().size(), 3u);
  EXPECT_EQ(paper_cca_pairs().size(), 9u);
}

TEST(Config, IntraDetection) {
  ExperimentConfig cfg;
  cfg.cca1 = cca::CcaKind::kCubic;
  cfg.cca2 = cca::CcaKind::kCubic;
  EXPECT_TRUE(cfg.intra());
  cfg.cca1 = cca::CcaKind::kBbrV1;
  EXPECT_FALSE(cfg.intra());
}

TEST(Config, KindStringsRoundTrip) {
  using cca::CcaKind;
  for (CcaKind k : {CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp, CcaKind::kBbrV1,
                    CcaKind::kBbrV2}) {
    EXPECT_EQ(cca::cca_kind_from_string(cca::to_string(k)), k);
  }
  using aqm::AqmKind;
  for (AqmKind k : {AqmKind::kFifo, AqmKind::kRed, AqmKind::kFqCodel, AqmKind::kCodel}) {
    EXPECT_EQ(aqm::aqm_kind_from_string(aqm::to_string(k)), k);
  }
  EXPECT_THROW(cca::cca_kind_from_string("nope"), std::invalid_argument);
  EXPECT_THROW(aqm::aqm_kind_from_string("nope"), std::invalid_argument);
}

TEST(Config, EffectiveDurationRespectsOverride) {
  ExperimentConfig cfg;
  cfg.duration = sim::Time::seconds(12);
  EXPECT_EQ(cfg.effective_duration(), sim::Time::seconds(12));
  cfg.duration = sim::Time::zero();
  EXPECT_GT(cfg.effective_duration(), sim::Time::zero());
}

TEST(Config, MatrixBuilderRespectsAxes) {
  auto m = make_matrix({{cca::CcaKind::kCubic, cca::CcaKind::kCubic}},
                       {aqm::AqmKind::kFifo}, {1.0, 2.0}, {1e9});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].buffer_bdp, 1.0);
  EXPECT_EQ(m[1].buffer_bdp, 2.0);
}

}  // namespace
}  // namespace elephant::exp
