#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace elephant::exp {
namespace {

using cca::CcaKind;

TEST(Runner, FlowSplitIsHalfAndHalf) {
  auto cfg = test::quick_config(CcaKind::kBbrV1, CcaKind::kCubic, aqm::AqmKind::kFifo,
                                2.0, 100e6, 5);
  cfg.total_flows = 8;
  const auto res = run_experiment(cfg);
  int side0 = 0;
  int side1 = 0;
  for (const auto& f : res.flows) {
    (f.sender == 0 ? side0 : side1)++;
  }
  EXPECT_EQ(side0, 4);
  EXPECT_EQ(side1, 4);
}

TEST(Runner, SidesRunTheConfiguredCcas) {
  auto cfg = test::quick_config(CcaKind::kHtcp, CcaKind::kReno, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  const auto res = run_experiment(cfg);
  for (const auto& f : res.flows) {
    EXPECT_EQ(f.cca, f.sender == 0 ? "htcp" : "reno");
  }
}

TEST(Runner, ConfigEchoedInResult) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kRed, 4.0,
                                100e6, 5);
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.config.id(), cfg.id());
}

TEST(Runner, RandomLossReachesTheBottleneck) {
  auto cfg = test::quick_config(CcaKind::kBbrV1, CcaKind::kBbrV1, aqm::AqmKind::kFifo, 2.0,
                                100e6, 10);
  cfg.random_loss = 0.02;
  const auto res = run_experiment(cfg);
  // The loss injector reports through the qdisc's early-drop counter.
  EXPECT_GT(res.bottleneck.dropped_early, 0u);
}

TEST(Runner, WallClockAndEventsPopulated) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.events_executed, 1000u);
  EXPECT_GT(res.wall_seconds, 0.0);
}

TEST(Runner, DifferentSeedsDifferentMicrostate) {
  auto a = test::quick_config(CcaKind::kBbrV2, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                              100e6, 10);
  auto b = a;
  b.seed = a.seed + 1;
  const auto ra = run_experiment(a);
  const auto rb = run_experiment(b);
  EXPECT_NE(ra.events_executed, rb.events_executed);
}

TEST(Runner, AveragedResultAveragesAcrossSeeds) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  const auto avg = run_averaged(cfg, 2, /*use_cache=*/false);
  EXPECT_EQ(avg.repetitions, 2);
  EXPECT_GT(avg.utilization, 0.3);
  EXPECT_LE(avg.jain2, 1.0);
  EXPECT_GE(avg.jain2, 0.5);
}

TEST(Runner, PaceAllSmoothsLossBasedBursts) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 0.5,
                                100e6, 20);
  auto paced = cfg;
  paced.pace_all = true;
  const auto res = run_experiment(cfg);
  const auto res_paced = run_experiment(paced);
  // Pacing must not break anything; utilization stays comparable.
  EXPECT_GT(res_paced.utilization, res.utilization - 0.15);
}

TEST(Runner, OddFlowCountRunsEveryFlow) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  cfg.total_flows = 3;
  const auto res = run_experiment(cfg);
  // The seed rounded 3 down to 1-per-side and silently ran 2 flows. The
  // remainder now goes to side 0: a 2/1 split, with the actual count echoed.
  ASSERT_EQ(res.flows.size(), 3u);
  EXPECT_EQ(res.n_flows, 3u);
  int side0 = 0;
  int side1 = 0;
  for (const auto& f : res.flows) (f.sender == 0 ? side0 : side1)++;
  EXPECT_EQ(side0, 2);
  EXPECT_EQ(side1, 1);
}

TEST(Runner, TinyRttClampKeepsDelaysPositive) {
  // Regression: an RTT below the default edge-delay sum used to drive the
  // client/server propagation negative, scheduling deliveries in the past.
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  for (const std::int64_t rtt_us : {40, 200, 2000}) {
    cfg.rtt = sim::Time::microseconds(rtt_us);
    // Pin the buffer to ~5 packets: a BDP-derived buffer at these RTTs would
    // be smaller than one segment and starve the link regardless of delays.
    cfg.buffer_bdp = 45000.0 / cfg.bdp_bytes();
    const auto res = run_experiment(cfg);  // invariant checker on by default
    EXPECT_GT(res.events_executed, 1000u) << "rtt=" << rtt_us << "us";
    for (const auto& f : res.flows) {
      EXPECT_TRUE(std::isfinite(f.throughput_bps));
      EXPECT_GE(f.throughput_bps, 0.0);
      // A sub-millisecond path must report a sub-millisecond smoothed RTT,
      // not the 62 ms default split.
      if (rtt_us <= 200) EXPECT_LT(f.srtt_ms, 10.0);
    }
  }
}

TEST(Runner, CustomLargeRttIsHonored) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 10);
  cfg.rtt = sim::Time::milliseconds(120);
  const auto res = run_experiment(cfg);
  double srtt_min = 1e9;
  for (const auto& f : res.flows) srtt_min = std::min(srtt_min, f.srtt_ms);
  EXPECT_GE(srtt_min, 115.0);  // propagation floor, queueing only adds
}

TEST(Runner, ThroughputWindowExcludesStaggeredStart) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  const auto res = run_experiment(cfg);
  const double dur = cfg.effective_duration().sec();
  for (const auto& f : res.flows) {
    EXPECT_GE(f.start_s, 0.0);
    EXPECT_LT(f.start_s, 0.5);  // starts staggered within half a second
    // Goodput is measured over (duration - start), so a flow saturating the
    // link after a late start is not reported below its delivered rate.
    EXPECT_GT(f.throughput_bps, 0.0);
    EXPECT_LT(f.throughput_bps, cfg.bottleneck_bps * 1.01);
    // Reconstructing delivered bytes from the reported window must agree
    // with a full-duration normalization only when start_s == 0.
    const double window = dur - f.start_s;
    EXPECT_GT(window, 0.0);
  }
}

}  // namespace
}  // namespace elephant::exp
