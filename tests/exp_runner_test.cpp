#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant::exp {
namespace {

using cca::CcaKind;

TEST(Runner, FlowSplitIsHalfAndHalf) {
  auto cfg = test::quick_config(CcaKind::kBbrV1, CcaKind::kCubic, aqm::AqmKind::kFifo,
                                2.0, 100e6, 5);
  cfg.total_flows = 8;
  const auto res = run_experiment(cfg);
  int side0 = 0;
  int side1 = 0;
  for (const auto& f : res.flows) {
    (f.sender == 0 ? side0 : side1)++;
  }
  EXPECT_EQ(side0, 4);
  EXPECT_EQ(side1, 4);
}

TEST(Runner, SidesRunTheConfiguredCcas) {
  auto cfg = test::quick_config(CcaKind::kHtcp, CcaKind::kReno, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  const auto res = run_experiment(cfg);
  for (const auto& f : res.flows) {
    EXPECT_EQ(f.cca, f.sender == 0 ? "htcp" : "reno");
  }
}

TEST(Runner, ConfigEchoedInResult) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kRed, 4.0,
                                100e6, 5);
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.config.id(), cfg.id());
}

TEST(Runner, RandomLossReachesTheBottleneck) {
  auto cfg = test::quick_config(CcaKind::kBbrV1, CcaKind::kBbrV1, aqm::AqmKind::kFifo, 2.0,
                                100e6, 10);
  cfg.random_loss = 0.02;
  const auto res = run_experiment(cfg);
  // The loss injector reports through the qdisc's early-drop counter.
  EXPECT_GT(res.bottleneck.dropped_early, 0u);
}

TEST(Runner, WallClockAndEventsPopulated) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.events_executed, 1000u);
  EXPECT_GT(res.wall_seconds, 0.0);
}

TEST(Runner, DifferentSeedsDifferentMicrostate) {
  auto a = test::quick_config(CcaKind::kBbrV2, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                              100e6, 10);
  auto b = a;
  b.seed = a.seed + 1;
  const auto ra = run_experiment(a);
  const auto rb = run_experiment(b);
  EXPECT_NE(ra.events_executed, rb.events_executed);
}

TEST(Runner, AveragedResultAveragesAcrossSeeds) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  const auto avg = run_averaged(cfg, 2, /*use_cache=*/false);
  EXPECT_EQ(avg.repetitions, 2);
  EXPECT_GT(avg.utilization, 0.3);
  EXPECT_LE(avg.jain2, 1.0);
  EXPECT_GE(avg.jain2, 0.5);
}

TEST(Runner, PaceAllSmoothsLossBasedBursts) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 0.5,
                                100e6, 20);
  auto paced = cfg;
  paced.pace_all = true;
  const auto res = run_experiment(cfg);
  const auto res_paced = run_experiment(paced);
  // Pacing must not break anything; utilization stays comparable.
  EXPECT_GT(res_paced.utilization, res.utilization - 0.15);
}

TEST(Runner, OddFlowCountStillRuns) {
  auto cfg = test::quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                                100e6, 5);
  cfg.total_flows = 3;  // per-sender max(3/2,1) = 1 each
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.flows.size(), 2u);
}

}  // namespace
}  // namespace elephant::exp
