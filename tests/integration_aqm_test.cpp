#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant {
namespace {

using cca::CcaKind;
using test::quick_config;
using test::run_uncached;

TEST(AqmIntegration, FifoRetxFallWhenBufferGrowsPastBdp) {
  // Fig. 8(a)-(b): under FIFO, bigger buffers mean fewer drops. The cleanest
  // regime for the claim is sub-BDP → super-BDP (at very deep buffers CUBIC's
  // overshoot ∝ the inflated detection RTT partially offsets it — see
  // EXPERIMENTS.md).
  auto small = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 0.5,
                            100e6, 120);
  auto large = small;
  large.buffer_bdp = 2;
  const auto res_small = run_uncached(small);
  const auto res_large = run_uncached(large);
  EXPECT_GT(res_small.retx_segments, res_large.retx_segments);
}

TEST(AqmIntegration, BbrV1RetransmitsMostIntraCca) {
  // Fig. 8 / Table 3 ordering: BBRv1's loss-blindness makes it the top
  // retransmitter with FIFO.
  auto bbr = quick_config(CcaKind::kBbrV1, CcaKind::kBbrV1, aqm::AqmKind::kFifo, 0.5,
                          100e6, 40);
  auto cub = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 0.5,
                          100e6, 40);
  const auto res_bbr = run_uncached(bbr);
  const auto res_cub = run_uncached(cub);
  EXPECT_GT(res_bbr.retx_segments, res_cub.retx_segments);
}

TEST(AqmIntegration, BbrV2RetransmitsLessThanBbrV1) {
  auto v1 = quick_config(CcaKind::kBbrV1, CcaKind::kBbrV1, aqm::AqmKind::kRed, 2.0, 100e6,
                         40);
  auto v2 = quick_config(CcaKind::kBbrV2, CcaKind::kBbrV2, aqm::AqmKind::kRed, 2.0, 100e6,
                         40);
  const auto res1 = run_uncached(v1);
  const auto res2 = run_uncached(v2);
  EXPECT_GT(res1.retx_segments, res2.retx_segments);
}

TEST(AqmIntegration, RedUnderutilizesVsFifoForLossBased) {
  // Fig. 7: RED's random early drops cost loss-based CCAs utilization.
  auto fifo = quick_config(CcaKind::kReno, CcaKind::kReno, aqm::AqmKind::kFifo, 2.0, 100e6,
                           40);
  auto red = fifo;
  red.aqm = aqm::AqmKind::kRed;
  const auto res_fifo = run_uncached(fifo);
  const auto res_red = run_uncached(red);
  EXPECT_GE(res_fifo.utilization, res_red.utilization - 0.02);
}

TEST(AqmIntegration, FqCodelKeepsLatencyLow) {
  // CoDel's 5 ms target: srtt must stay near base RTT even with a deep
  // buffer, unlike FIFO bufferbloat.
  auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFqCodel, 8.0,
                          100e6, 40);
  const auto res = run_uncached(cfg);
  for (const auto& f : res.flows) {
    EXPECT_LT(f.srtt_ms, 62.0 + 40.0);
  }
}

TEST(AqmIntegration, FqCodelStillUtilizesWell) {
  auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFqCodel, 2.0,
                          100e6, 40);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.utilization, 0.8);
}

TEST(AqmIntegration, BottleneckStatsPopulated) {
  auto cfg = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 1.0,
                          100e6, 20);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.bottleneck.enqueued, 0u);
  EXPECT_GT(res.bottleneck.dequeued, 0u);
  EXPECT_LE(res.bottleneck.dequeued, res.bottleneck.enqueued);
}

TEST(AqmIntegration, EcnReducesRetransmissionsWithRed) {
  // With ECN on, RED marks instead of dropping for ECT flows; BBRv2
  // responds to ECE without losses, so retransmissions drop.
  auto base = quick_config(CcaKind::kBbrV2, CcaKind::kBbrV2, aqm::AqmKind::kRed, 2.0,
                           100e6, 30);
  auto ecn = base;
  ecn.ecn = true;
  const auto res_base = run_uncached(base);
  const auto res_ecn = run_uncached(ecn);
  EXPECT_LT(res_ecn.retx_segments, res_base.retx_segments + 1);
}

}  // namespace
}  // namespace elephant
