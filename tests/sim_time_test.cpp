#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace elephant::sim {
namespace {

TEST(Time, ConversionRoundTrips) {
  EXPECT_EQ(Time::milliseconds(62).ns(), 62'000'000);
  EXPECT_DOUBLE_EQ(Time::milliseconds(62).ms(), 62.0);
  EXPECT_DOUBLE_EQ(Time::seconds(1.5).sec(), 1.5);
  EXPECT_EQ(Time::microseconds(10).ns(), 10'000);
  EXPECT_EQ(Time::zero().ns(), 0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::milliseconds(10);
  const Time b = Time::milliseconds(4);
  EXPECT_EQ((a + b).ms(), 14.0);
  EXPECT_EQ((a - b).ms(), 6.0);
  EXPECT_EQ((a * 3).ms(), 30.0);
  EXPECT_EQ((3 * a).ms(), 30.0);
  EXPECT_EQ((a / 2).ms(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((a * 0.5).ms(), 5.0);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::seconds(1);
  t += Time::seconds(2);
  EXPECT_DOUBLE_EQ(t.sec(), 3.0);
  t -= Time::seconds(0.5);
  EXPECT_DOUBLE_EQ(t.sec(), 2.5);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::milliseconds(1), Time::milliseconds(2));
  EXPECT_GT(Time::seconds(1), Time::milliseconds(2));
  EXPECT_EQ(Time::milliseconds(1000), Time::seconds(1));
  EXPECT_LE(Time::zero(), Time::zero());
}

TEST(Time, NegativeDifferencesAreRepresentable) {
  const Time d = Time::milliseconds(1) - Time::milliseconds(3);
  EXPECT_EQ(d.ns(), -2'000'000);
  EXPECT_LT(d, Time::zero());
}

TEST(Time, TransmissionTime) {
  // 12500 bytes at 1 Mb/s = 0.1 s.
  EXPECT_NEAR(transmission_time(12500, 1e6).sec(), 0.1, 1e-12);
  // One jumbo frame at 25 Gb/s ≈ 2.848 us.
  EXPECT_NEAR(transmission_time(8900, 25e9).us(), 2.848, 0.001);
}

TEST(Time, ToStringPicksSensibleUnits) {
  EXPECT_EQ(Time::seconds(1.5).to_string(), "1.5s");
  EXPECT_EQ(Time::milliseconds(62).to_string(), "62ms");
  EXPECT_EQ(Time::microseconds(10).to_string(), "10us");
  EXPECT_EQ(Time::nanoseconds(5).to_string(), "5ns");
}

// 2^63 ns ≈ 9.2e9 s ≈ 292 years — far beyond any experiment length.
TEST(Time, MaxIsHuge) { EXPECT_GT(Time::max().sec(), 9e9); }

}  // namespace
}  // namespace elephant::sim
