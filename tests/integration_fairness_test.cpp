#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant {
namespace {

using cca::CcaKind;
using test::quick_config;
using test::run_uncached;

/// Intra-CCA runs must be fair between the two senders — the paper's
/// Fig. 3(c)-(d) baseline (J ≈ 1 for every CCA under FIFO).
class IntraCcaFairness : public ::testing::TestWithParam<CcaKind> {};

TEST_P(IntraCcaFairness, FifoJainNearOne) {
  auto cfg = quick_config(GetParam(), GetParam(), aqm::AqmKind::kFifo, 2.0, 100e6, 40);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.jain2, 0.85) << cca::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllCcas, IntraCcaFairness,
                         ::testing::Values(CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp,
                                           CcaKind::kBbrV2),
                         [](const auto& info) { return cca::to_string(info.param); });

TEST(Fairness, FqCodelEqualizesBbrV1VsCubic) {
  // The paper's headline FQ_CODEL result: per-flow queues equalize even the
  // most mismatched pair.
  auto cfg = quick_config(CcaKind::kBbrV1, CcaKind::kCubic, aqm::AqmKind::kFqCodel, 2.0,
                          100e6, 40);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.jain2, 0.95);
}

TEST(Fairness, BbrV1BeatsCubicInSmallFifoBuffers) {
  // Fig. 2(a)-(e) left side: below the equilibrium buffer size BBRv1 takes
  // the larger share.
  auto cfg = quick_config(CcaKind::kBbrV1, CcaKind::kCubic, aqm::AqmKind::kFifo, 0.5,
                          100e6, 40);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.sender_bps[0], res.sender_bps[1]);
}

TEST(Fairness, CubicOvertakesBbrV1InDeepFifoBuffers) {
  // Fig. 2(a): past ~2 BDP at 100 Mb/s CUBIC wins (BBR's inflight cap).
  auto cfg = quick_config(CcaKind::kBbrV1, CcaKind::kCubic, aqm::AqmKind::kFifo, 8.0,
                          100e6, 60);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.sender_bps[1], res.sender_bps[0]);
}

TEST(Fairness, RedStarvesCubicAgainstBbrV1) {
  // Fig. 4(a)-(e): BBRv1 sails over RED's random drops, CUBIC collapses.
  auto cfg = quick_config(CcaKind::kBbrV1, CcaKind::kCubic, aqm::AqmKind::kRed, 2.0,
                          100e6, 40);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.sender_bps[0], 2.0 * res.sender_bps[1]);
  EXPECT_LT(res.jain2, 0.9);
}

TEST(Fairness, RenoFairAgainstCubicWithRed) {
  // Fig. 4(p)-(t): RED equalizes the loss-based pair.
  auto cfg = quick_config(CcaKind::kReno, CcaKind::kCubic, aqm::AqmKind::kRed, 2.0, 100e6,
                          60);
  const auto res = run_uncached(cfg);
  EXPECT_GT(res.jain2, 0.8);
}

TEST(Fairness, JainAlwaysInValidRange) {
  for (auto aqm : {aqm::AqmKind::kFifo, aqm::AqmKind::kRed, aqm::AqmKind::kFqCodel}) {
    auto cfg = quick_config(CcaKind::kBbrV2, CcaKind::kCubic, aqm, 1.0, 100e6, 15);
    const auto res = run_uncached(cfg);
    EXPECT_GE(res.jain2, 0.5);
    EXPECT_LE(res.jain2, 1.0);
  }
}

TEST(Fairness, DeterministicGivenSeed) {
  auto cfg = quick_config(CcaKind::kBbrV2, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                          100e6, 15);
  const auto a = run_uncached(cfg);
  const auto b = run_uncached(cfg);
  EXPECT_DOUBLE_EQ(a.sender_bps[0], b.sender_bps[0]);
  EXPECT_DOUBLE_EQ(a.sender_bps[1], b.sender_bps[1]);
  EXPECT_EQ(a.retx_segments, b.retx_segments);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace elephant
