#include <gtest/gtest.h>

#include <vector>

#include "aqm/fifo.hpp"
#include "net/port.hpp"
#include "tcp/tcp_receiver.hpp"
#include "test_util.hpp"

namespace elephant::tcp {
namespace {

/// Minimal harness (no NIC timing subtleties needed for interval logic).
struct Harness {
  sim::Scheduler sched;
  net::Host server{5, "server"};
  struct Capture : net::Node {
    Capture() : Node(1, "capture") {}
    void receive(net::Packet&& p) override { acks.push_back(std::move(p)); }
    std::vector<net::Packet> acks;
  } capture;
  std::unique_ptr<net::Port> nic;
  std::unique_ptr<TcpReceiver> rx;

  Harness() {
    nic = std::make_unique<net::Port>(sched, std::make_unique<aqm::FifoQueue>(sched, 1 << 24),
                                      100e9, sim::Time::zero(), "nic");
    nic->connect(&capture);
    server.attach_nic(nic.get());
    rx = std::make_unique<TcpReceiver>(sched, server, 1, 7);
  }
  void deliver(std::uint64_t seq) {
    rx->on_packet(test::make_packet(7, seq));
    sched.run_until(sched.now() + sim::Time::milliseconds(1));
  }
  const net::Packet& last_ack() { return capture.acks.back(); }
};

TEST(ReceiverIntervals, BridgingMergeJoinsTwoRuns) {
  Harness h;
  h.deliver(0);
  h.deliver(2);
  h.deliver(4);
  // Two separate runs {2} and {4}; delivering 3 must bridge them into [2,5).
  h.deliver(3);
  const net::Packet& ack = h.last_ack();
  EXPECT_EQ(ack.n_sacks, 1);
  EXPECT_EQ(ack.sacks[0].start, 2u);
  EXPECT_EQ(ack.sacks[0].end, 5u);
}

TEST(ReceiverIntervals, ExtendDownward) {
  Harness h;
  h.deliver(0);
  h.deliver(5);
  h.deliver(4);  // extends [5,6) down to [4,6)
  const net::Packet& ack = h.last_ack();
  EXPECT_EQ(ack.n_sacks, 1);
  EXPECT_EQ(ack.sacks[0].start, 4u);
  EXPECT_EQ(ack.sacks[0].end, 6u);
}

TEST(ReceiverIntervals, ExtendUpward) {
  Harness h;
  h.deliver(0);
  h.deliver(4);
  h.deliver(5);  // extends [4,5) up to [4,6)
  const net::Packet& ack = h.last_ack();
  EXPECT_EQ(ack.n_sacks, 1);
  EXPECT_EQ(ack.sacks[0].start, 4u);
  EXPECT_EQ(ack.sacks[0].end, 6u);
}

TEST(ReceiverIntervals, DuplicateInsideRunDetected) {
  Harness h;
  h.deliver(0);
  h.deliver(3);
  h.deliver(4);
  h.deliver(5);
  const auto dups_before = h.rx->duplicate_units();
  h.deliver(4);  // strictly inside [3,6)
  EXPECT_EQ(h.rx->duplicate_units(), dups_before + 1);
}

TEST(ReceiverIntervals, ManyRunsKeepThreeNewestSacks) {
  Harness h;
  h.deliver(0);
  for (std::uint64_t base : {10ull, 20ull, 30ull, 40ull, 50ull}) h.deliver(base);
  const net::Packet& ack = h.last_ack();
  EXPECT_EQ(ack.n_sacks, 3);
  // Block 1 is the most recent arrival's run (50); the rest are the highest
  // distinct runs (duplicates are suppressed).
  EXPECT_EQ(ack.sacks[0].start, 50u);
  EXPECT_EQ(ack.sacks[1].start, 40u);
  EXPECT_EQ(ack.sacks[2].start, 30u);
}

TEST(ReceiverIntervals, GapFillConsumesExactlyOneInterval) {
  Harness h;
  h.deliver(0);
  h.deliver(2);
  h.deliver(3);
  h.deliver(6);
  h.deliver(1);  // fills 1: contiguous through 3, but 6 still buffered
  EXPECT_EQ(h.rx->delivered_units(), 4u);
  const net::Packet& ack = h.last_ack();
  EXPECT_EQ(ack.ack, 4u);
  EXPECT_EQ(ack.n_sacks, 1);
  EXPECT_EQ(ack.sacks[0].start, 6u);
}

TEST(ReceiverIntervals, MassiveReorderingEventuallyLinearizes) {
  Harness h;
  // Deliver 0..63 in a scrambled (deterministic) order.
  std::vector<std::uint64_t> order;
  for (std::uint64_t i = 0; i < 64; ++i) order.push_back((i * 37) % 64);
  for (const std::uint64_t u : order) h.deliver(u);
  EXPECT_EQ(h.rx->delivered_units(), 64u);
  EXPECT_EQ(h.last_ack().ack, 64u);
  EXPECT_EQ(h.last_ack().n_sacks, 0);
  EXPECT_EQ(h.rx->duplicate_units(), 0u);
}

}  // namespace
}  // namespace elephant::tcp
