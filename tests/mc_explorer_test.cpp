// Model-checker exploration: the ScheduleController steers runs down
// prescribed branch prefixes, the Explorer enumerates bounded-depth
// schedules with end-state dedup, oracle violations serialize to a
// replayable choice trace, and replay reproduces the identical failure.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/config.hpp"
#include "exp/result_digest.hpp"
#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "mc/choice_trace.hpp"
#include "mc/controller.hpp"
#include "mc/explorer.hpp"

namespace elephant {
namespace {

// The acceptance cell: two flows over a small bottleneck with a loss burst
// covering the middle of the run — every in-burst packet is a kFaultLoss
// branch, so the schedule space is rich but each schedule is milliseconds.
exp::ExperimentConfig fault_cell() {
  exp::ExperimentConfig cfg;
  cfg.cca1 = cca::CcaKind::kCubic;
  cfg.cca2 = cca::CcaKind::kBbrV1;
  cfg.aqm = aqm::AqmKind::kFifo;
  cfg.buffer_bdp = 1.0;
  cfg.bottleneck_bps = 20e6;
  cfg.total_flows = 2;
  cfg.duration = sim::Time::seconds(1);
  cfg.seed = 7;
  for (const fault::FaultEvent& e :
       fault::FaultPlan::loss_burst(sim::Time::seconds(0.2), 0.05, sim::Time::seconds(0.5))
           .events) {
    cfg.fault_plan.add(e);
  }
  return cfg;
}

TEST(ChoiceTrace, SerializeParseRoundTrip) {
  mc::ChoiceTrace t;
  t.config_id = "cubic_vs_bbr1-fifo-bdp1-20M";
  t.oracle = "jain_floor";
  t.detail = "jain2 0.7 below floor 0.9 (S1 3 Mbps, S2 15 Mbps)";
  t.at_s = 1.25;
  t.state_hash = 0xdeadbeefcafef00dull;
  t.horizon_s = 1.5;
  t.window_s = 0.25;
  t.jain_floor = 0.9;
  t.retx_storm_segments = 500;
  t.max_schedule_events = 1000000;
  t.choices = {{sim::ChoiceKind::kSchedulerTie, 3, 2},
               {sim::ChoiceKind::kFaultLoss, 2, 0},
               {sim::ChoiceKind::kGeLoss, 2, 1}};

  mc::ChoiceTrace back;
  std::string error;
  ASSERT_TRUE(mc::ChoiceTrace::parse(t.serialize(), &back, &error)) << error;
  EXPECT_EQ(back.config_id, t.config_id);
  EXPECT_EQ(back.oracle, t.oracle);
  EXPECT_EQ(back.detail, t.detail);
  EXPECT_EQ(back.at_s, t.at_s);
  EXPECT_EQ(back.state_hash, t.state_hash);
  EXPECT_EQ(back.horizon_s, t.horizon_s);
  EXPECT_EQ(back.window_s, t.window_s);
  EXPECT_EQ(back.jain_floor, t.jain_floor);
  EXPECT_EQ(back.retx_storm_segments, t.retx_storm_segments);
  EXPECT_EQ(back.max_schedule_events, t.max_schedule_events);
  ASSERT_EQ(back.choices.size(), t.choices.size());
  for (std::size_t i = 0; i < t.choices.size(); ++i) {
    EXPECT_EQ(back.choices[i].kind, t.choices[i].kind);
    EXPECT_EQ(back.choices[i].n_branches, t.choices[i].n_branches);
    EXPECT_EQ(back.choices[i].chosen, t.choices[i].chosen);
  }

  EXPECT_FALSE(mc::ChoiceTrace::parse("not a trace", &back, &error));
}

// An attached controller with an empty plan takes branch 0 everywhere — by
// the choice-point protocol that IS the seeded schedule, so the result must
// be bit-identical to a hook-free run of the same cell.
TEST(McExplorer, EmptyPlanMatchesHookFreeRun) {
  const exp::ExperimentConfig cfg = fault_cell();
  const std::uint64_t want = exp::metrics_digest(exp::run_experiment(cfg));

  mc::ScheduleController controller;
  controller.reset({});
  exp::ExperimentConfig steered = cfg;
  steered.choice_hook = &controller;
  EXPECT_EQ(exp::metrics_digest(exp::run_experiment(steered)), want);
  EXPECT_GT(controller.trace().size(), 0u) << "fault cell consulted no choice points";
}

// Acceptance: bounded exploration of the 2-flow fault cell enumerates at
// least 50 distinct schedules, with the dedup set accounting for every run.
TEST(McExplorer, EnumeratesDistinctSchedules) {
  mc::ExplorerOptions opts;
  opts.max_depth = 8;
  opts.max_schedules = 120;
  mc::Explorer explorer(fault_cell(), opts);
  const mc::ExploreStats st = explorer.explore();

  EXPECT_GE(st.distinct_states, 50u);
  EXPECT_EQ(st.schedules_run, st.distinct_states + st.duplicate_states);
  EXPECT_GT(st.max_choice_points, opts.max_depth) << "cell too small to exercise the bound";
  EXPECT_TRUE(explorer.violations().empty());
}

// Flipping one fault-loss branch must actually change the run: the first
// alternative schedule may not collapse back onto the seeded end state.
TEST(McExplorer, BranchesProduceDifferentStates) {
  mc::ExplorerOptions opts;
  opts.max_depth = 1;  // seeded run + every branch of the first choice point
  opts.max_schedules = 4;
  mc::Explorer explorer(fault_cell(), opts);
  const mc::ExploreStats st = explorer.explore();
  EXPECT_GE(st.distinct_states, 2u);
}

// Acceptance: a planted violation is found, its choice trace serializes to
// a file, and replaying the file reproduces the identical failure — same
// oracle, same detail, same end-state hash.
TEST(McExplorer, PlantedViolationReplaysIdentically) {
  const exp::ExperimentConfig cfg = fault_cell();
  const std::string path = testing::TempDir() + "mc_counterexample.trace";

  mc::ExplorerOptions opts;
  opts.max_depth = 6;
  opts.max_schedules = 40;
  // Plant: under the loss burst this cell's Jain index sits far below 0.99
  // in every schedule, so the very first one is a counterexample.
  opts.jain_floor = 0.99;
  opts.trace_out = path;
  mc::Explorer explorer(cfg, opts);
  const mc::ExploreStats st = explorer.explore();
  ASSERT_GT(st.violations, 0u);
  const mc::Violation& v = explorer.violations().front();
  EXPECT_EQ(v.oracle, "jain_floor");

  mc::ChoiceTrace stored;
  std::string error;
  ASSERT_TRUE(mc::ChoiceTrace::read_file(path, &stored, &error)) << error;
  EXPECT_EQ(stored.config_id, cfg.id());
  EXPECT_EQ(stored.oracle, v.oracle);
  EXPECT_EQ(stored.state_hash, v.trace.state_hash);
  ASSERT_EQ(stored.choices.size(), v.trace.choices.size());

  const mc::Explorer::ReplayReport rep = mc::Explorer::replay(cfg, stored);
  EXPECT_TRUE(rep.config_matches);
  EXPECT_FALSE(rep.diverged);
  EXPECT_TRUE(rep.hash_matches) << "replay end-state hash drifted";
  EXPECT_TRUE(rep.violation_reproduced);
  EXPECT_EQ(rep.oracle, v.oracle);
  EXPECT_EQ(rep.detail, v.detail);
  EXPECT_EQ(rep.at_s, v.at_s);
  EXPECT_TRUE(rep.ok());

  std::remove(path.c_str());
}

// Replay against the wrong cell must refuse via the config identity echo.
TEST(McExplorer, ReplayRejectsMismatchedConfig) {
  exp::ExperimentConfig cfg = fault_cell();
  mc::ExplorerOptions opts;
  opts.max_depth = 2;
  opts.max_schedules = 2;
  opts.jain_floor = 0.99;
  mc::Explorer explorer(cfg, opts);
  explorer.explore();
  ASSERT_FALSE(explorer.violations().empty());

  exp::ExperimentConfig other = cfg;
  other.seed = cfg.seed + 1;
  const mc::Explorer::ReplayReport rep =
      mc::Explorer::replay(other, explorer.violations().front().trace);
  EXPECT_FALSE(rep.config_matches);
  EXPECT_FALSE(rep.ok());
}

// The starvation and retransmit-storm oracles fire on a cell engineered to
// trip them: a hard 60% loss burst stalls both flows' delivery for longer
// than the probe window.
TEST(McExplorer, WindowedOraclesDetectStalls) {
  exp::ExperimentConfig cfg = fault_cell();
  cfg.fault_plan = fault::FaultPlan{};
  for (const fault::FaultEvent& e :
       fault::FaultPlan::loss_burst(sim::Time::seconds(0.2), 0.6, sim::Time::seconds(0.6))
           .events) {
    cfg.fault_plan.add(e);
  }
  mc::ExplorerOptions opts;
  opts.max_depth = 4;
  opts.max_schedules = 8;
  opts.starvation_window_s = 0.1;
  mc::Explorer explorer(cfg, opts);
  explorer.explore();
  ASSERT_FALSE(explorer.violations().empty());
  const mc::Violation& v = explorer.violations().front();
  EXPECT_EQ(v.oracle, "starvation");
  EXPECT_GT(v.at_s, 0.0);
  EXPECT_LT(v.at_s, 1.0) << "starvation must be detected mid-run, not at the horizon";

  // Same cell, retransmit-storm detector: the burst forces a storm of
  // retransmissions well above a deliberately tiny per-window threshold.
  mc::ExplorerOptions storm;
  storm.max_depth = 4;
  storm.max_schedules = 8;
  storm.retx_storm_segments = 5;
  mc::Explorer explorer2(cfg, storm);
  explorer2.explore();
  ASSERT_FALSE(explorer2.violations().empty());
  EXPECT_EQ(explorer2.violations().front().oracle, "retx_storm");
}

}  // namespace
}  // namespace elephant
