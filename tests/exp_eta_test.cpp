#include "exp/eta.hpp"

#include <gtest/gtest.h>

namespace elephant::exp {
namespace {

TEST(EtaEstimatorTest, ZeroUntilFirstSampleAndWhenNothingRemains) {
  EtaEstimator eta;
  EXPECT_DOUBLE_EQ(eta.eta_s(0, 10, 1), 0.0);
  eta.record_cell(2.0);
  EXPECT_DOUBLE_EQ(eta.eta_s(10, 10, 1), 0.0);
  EXPECT_DOUBLE_EQ(eta.eta_s(11, 10, 1), 0.0);
}

TEST(EtaEstimatorTest, ConstantCellsGiveExactEstimate) {
  EtaEstimator eta;
  for (int i = 0; i < 20; ++i) eta.record_cell(2.0);
  EXPECT_NEAR(eta.cell_ewma_s(), 2.0, 1e-12);
  EXPECT_NEAR(eta.eta_s(20, 30, 1), 20.0, 1e-9);
  // Parallel drain divides by the worker count (clamped to >= 1).
  EXPECT_NEAR(eta.eta_s(20, 30, 4), 5.0, 1e-9);
  EXPECT_NEAR(eta.eta_s(20, 30, 0), 20.0, 1e-9);
}

TEST(EtaEstimatorTest, AdaptsAfterWarmCachePrefix) {
  // The failure mode of the old `elapsed * remaining / done` estimate: 100
  // near-instant cache hits followed by real 10 s cells. The lifetime
  // average would predict ~0.1 s/cell; the EWMA converges to ~10 s within a
  // handful of real cells.
  EtaEstimator eta;
  for (int i = 0; i < 100; ++i) eta.record_cell(0.001);
  for (int i = 0; i < 10; ++i) eta.record_cell(10.0);
  EXPECT_GT(eta.cell_ewma_s(), 9.0);
  // 90 remaining cells on 1 worker: the naive lifetime-average estimate
  // would say ~86 s; the EWMA says ~900 s.
  EXPECT_GT(eta.eta_s(110, 200, 1), 800.0);
}

TEST(EtaEstimatorTest, ClampsNegativeSamplesAndCounts) {
  EtaEstimator eta;
  eta.record_cell(-5.0);
  EXPECT_DOUBLE_EQ(eta.cell_ewma_s(), 0.0);
  EXPECT_EQ(eta.samples(), 1u);
  eta.record_cell(1.0);
  EXPECT_EQ(eta.samples(), 2u);
  EXPECT_NEAR(eta.cell_ewma_s(), EtaEstimator::kAlpha * 1.0, 1e-12);
}

}  // namespace
}  // namespace elephant::exp
