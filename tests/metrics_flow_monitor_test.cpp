#include "metrics/flow_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "net/topology.hpp"

namespace elephant::metrics {
namespace {

struct Fixture {
  sim::Scheduler sched;
  net::Dumbbell net;
  Fixture() : net(sched, topo()) {}
  static net::DumbbellConfig topo() {
    net::DumbbellConfig cfg;
    cfg.bottleneck_bps = 100e6;
    cfg.bottleneck_buffer_bytes = static_cast<std::size_t>(2 * 100e6 * 0.062 / 8);
    return cfg;
  }
  tcp::Flow flow(net::FlowId id, cca::CcaKind kind) {
    tcp::FlowConfig fc;
    fc.id = id;
    fc.cca = kind;
    fc.seed = id;
    return tcp::Flow(sched, net.client(0), net.server(0), fc);
  }
};

TEST(FlowMonitor, SamplesAtConfiguredInterval) {
  Fixture f;
  tcp::Flow flow = f.flow(1, cca::CcaKind::kCubic);
  FlowMonitor mon(f.sched, sim::Time::seconds(1));
  mon.watch(flow);
  flow.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(10.5));
  ASSERT_EQ(mon.series().size(), 1u);
  EXPECT_EQ(mon.series()[0].samples.size(), 10u);
}

TEST(FlowMonitor, SamplesCarryLiveTransportState) {
  Fixture f;
  tcp::Flow flow = f.flow(1, cca::CcaKind::kCubic);
  FlowMonitor mon(f.sched, sim::Time::seconds(1));
  mon.watch(flow);
  flow.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(5.5));
  const auto& samples = mon.series()[0].samples;
  ASSERT_GE(samples.size(), 5u);
  EXPECT_GT(samples.back().cwnd_segments, 0.0);
  EXPECT_GT(samples.back().srtt_ms, 60.0);
  EXPECT_GT(samples.back().goodput_bps, 1e6);
}

TEST(FlowMonitor, GoodputIsPerInterval) {
  Fixture f;
  tcp::Flow flow = f.flow(1, cca::CcaKind::kCubic);
  FlowMonitor mon(f.sched, sim::Time::seconds(1));
  mon.watch(flow);
  flow.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(20.5));
  const auto& samples = mon.series()[0].samples;
  // Steady state: per-interval goodput approaches the bottleneck rate, and
  // must never wildly exceed it (it is a delta, not a cumulative count).
  for (std::size_t i = 5; i < samples.size(); ++i) {
    EXPECT_LT(samples[i].goodput_bps, 110e6);
  }
  EXPECT_GT(samples.back().goodput_bps, 60e6);
}

TEST(FlowMonitor, DefaultLabelEncodesCcaAndId) {
  Fixture f;
  tcp::Flow flow = f.flow(3, cca::CcaKind::kBbrV1);
  FlowMonitor mon(f.sched, sim::Time::seconds(1));
  mon.watch(flow);
  EXPECT_EQ(mon.series()[0].label, "bbr1-3");
}

TEST(FlowMonitor, CsvHasHeaderAndRows) {
  Fixture f;
  tcp::Flow flow = f.flow(1, cca::CcaKind::kReno);
  FlowMonitor mon(f.sched, sim::Time::seconds(1));
  mon.watch(flow, "myflow");
  flow.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(3.5));
  std::ostringstream out;
  mon.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("label,flow,t_s,cwnd_segments"), std::string::npos);
  EXPECT_NE(csv.find("myflow,1,1,"), std::string::npos);
  // header + 3 samples
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(FlowMonitor, WatchesMultipleFlows) {
  Fixture f;
  tcp::Flow a = f.flow(1, cca::CcaKind::kCubic);
  tcp::Flow b = f.flow(2, cca::CcaKind::kBbrV2);
  FlowMonitor mon(f.sched, sim::Time::seconds(1));
  mon.watch(a);
  mon.watch(b);
  a.start();
  b.start();
  mon.start();
  f.sched.run_until(sim::Time::seconds(5.5));
  ASSERT_EQ(mon.series().size(), 2u);
  EXPECT_EQ(mon.series()[0].samples.size(), mon.series()[1].samples.size());
}

}  // namespace
}  // namespace elephant::metrics
