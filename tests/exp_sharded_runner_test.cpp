// Determinism and invariance suite for the flow-sharded parallel engine
// (exp/sharded_runner.cpp). The shards=1 golden identity is covered by
// determinism_digest_test.cpp — shards=1 takes the legacy single-threaded
// path verbatim, so those digests pin it; this file covers the parallel
// path: fixed shard counts must be bit-reproducible run to run, and the
// post-run conservation checks must hold at every shard count.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "exp/runner.hpp"
#include "exp/status.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace elephant::exp {
namespace {

ExperimentConfig sharded_config(std::uint32_t shards) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kBbrV1,
                                aqm::AqmKind::kFifo, 1.0, 100e6, /*duration_s=*/3);
  cfg.total_flows = 6;  // spread over the lanes: 6 flows on up to 4 workers
  cfg.seed = 20240817;
  cfg.shards = shards;
  return cfg;
}

void expect_bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.n_flows, b.n_flows);
  EXPECT_EQ(a.sender_bps[0], b.sender_bps[0]);
  EXPECT_EQ(a.sender_bps[1], b.sender_bps[1]);
  EXPECT_EQ(a.jain2, b.jain2);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.retx_segments, b.retx_segments);
  EXPECT_EQ(a.rtos, b.rtos);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].throughput_bps, b.flows[i].throughput_bps) << "flow " << i;
    EXPECT_EQ(a.flows[i].retx_segments, b.flows[i].retx_segments) << "flow " << i;
    EXPECT_EQ(a.flows[i].rtos, b.flows[i].rtos) << "flow " << i;
    EXPECT_EQ(a.flows[i].srtt_ms, b.flows[i].srtt_ms) << "flow " << i;
  }
}

TEST(ShardedRunner, ShardCountIsPartOfTheCacheIdentity) {
  const std::string one = sharded_config(1).id();
  const std::string four = sharded_config(4).id();
  EXPECT_EQ(one.find("-sh"), std::string::npos)
      << "shards=1 must keep the legacy cache key: " << one;
  EXPECT_NE(four.find("-sh4"), std::string::npos) << four;
  EXPECT_NE(one, four);
}

TEST(ShardedRunner, FixedShardCountIsBitReproducible) {
  const auto first = test::run_uncached(sharded_config(3));
  const auto second = test::run_uncached(sharded_config(3));
  expect_bit_identical(first, second);
  EXPECT_GT(first.utilization, 0.1);
}

TEST(ShardedRunner, ConservationChecksHoldAtEveryShardCount) {
  // finalize_experiment runs the post-run invariant checks (delivery
  // conservation, utilization bounds) and throws on violation, so a clean
  // return at each shard count is the assertion; the explicit checks below
  // pin the externally visible aggregates.
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const auto res = test::run_uncached(sharded_config(shards));
    EXPECT_EQ(res.n_flows, 6u) << "shards=" << shards;
    EXPECT_GT(res.utilization, 0.1) << "shards=" << shards;
    EXPECT_LE(res.utilization, 1.01) << "shards=" << shards;
    EXPECT_GT(res.sender_bps[0] + res.sender_bps[1], 0.0) << "shards=" << shards;
    EXPECT_GE(res.jain2, 0.5) << "shards=" << shards;
    EXPECT_LE(res.jain2, 1.0) << "shards=" << shards;
    EXPECT_GT(res.events_executed, 0u) << "shards=" << shards;
  }
}

TEST(ShardedRunner, WorksWithMoreShardsThanFlows) {
  // 6 flows on 8 workers leaves two lanes idle; idle lanes must still
  // participate in the window barriers without stalling termination.
  auto cfg = sharded_config(8);
  cfg.duration = sim::Time::seconds(1);
  const auto res = test::run_uncached(cfg);
  EXPECT_EQ(res.n_flows, 6u);
  EXPECT_GT(res.utilization, 0.1);
}

TEST(ShardedRunner, MergesPerLaneTelemetryIntoCallerRegistry) {
  obs::MetricsRegistry reg;
  auto cfg = sharded_config(2);
  cfg.duration = sim::Time::seconds(2);
  cfg.metrics = &reg;
  const auto res = test::run_uncached(cfg);
  EXPECT_GT(res.utilization, 0.1);
  EXPECT_EQ(reg.gauge("sim.events_executed").value(),
            static_cast<double>(res.events_executed));
  // Worker-lane histograms (TCP) and the network-lane histogram (queue
  // sojourn) must both survive the merge.
  EXPECT_GT(reg.histogram("tcp.srtt_s").count(), 0u);
  EXPECT_GT(reg.histogram("queue.sojourn_s").count(), 0u);
  EXPECT_GT(reg.gauge("tcp.cwnd_segments").value(), 0.0);
}

TEST(ShardedRunner, EventBudgetStopsShardedRunWithTimeout) {
  auto cfg = sharded_config(2);
  cfg.max_events = 2000;
  EXPECT_THROW((void)test::run_uncached(cfg), RunTimeout);
}

}  // namespace
}  // namespace elephant::exp
