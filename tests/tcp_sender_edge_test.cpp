#include <gtest/gtest.h>

#include <vector>

#include "aqm/fifo.hpp"
#include "net/port.hpp"
#include "tcp/tcp_sender.hpp"
#include "test_util.hpp"

namespace elephant::tcp {
namespace {

/// Same scaffolding as tcp_sender_test, duplicated deliberately small.
class StubCca : public cca::CongestionControl {
 public:
  explicit StubCca(double cwnd) : CongestionControl(cca::CcaParams{}), cwnd_(cwnd) {}
  void on_ack(const cca::AckSample& a) override { acks.push_back(a); }
  void on_loss(const cca::LossSample& l) override { losses.push_back(l); }
  void on_rto(sim::Time) override { ++rtos; }
  [[nodiscard]] double cwnd_segments() const override { return cwnd_; }
  [[nodiscard]] std::string name() const override { return "stub"; }
  std::vector<cca::AckSample> acks;
  std::vector<cca::LossSample> losses;
  int rtos = 0;

 private:
  double cwnd_;
};

struct Harness {
  sim::Scheduler sched;
  net::Host client{1, "client"};
  struct Capture : net::Node {
    Capture() : Node(5, "capture") {}
    void receive(net::Packet&& p) override { sent.push_back(std::move(p)); }
    std::vector<net::Packet> sent;
  } wire;
  std::unique_ptr<net::Port> nic;
  std::unique_ptr<TcpSender> tx;
  StubCca* cc = nullptr;

  explicit Harness(double cwnd, std::uint32_t reorder_units = 3) {
    nic = std::make_unique<net::Port>(sched,
                                      std::make_unique<aqm::FifoQueue>(sched, 1 << 28),
                                      100e9, sim::Time::zero(), "nic");
    nic->connect(&wire);
    client.attach_nic(nic.get());
    TcpSenderConfig cfg;
    cfg.flow = 7;
    cfg.src = 1;
    cfg.dst = 5;
    cfg.reorder_units = reorder_units;
    auto stub = std::make_unique<StubCca>(cwnd);
    cc = stub.get();
    tx = std::make_unique<TcpSender>(sched, client, cfg, std::move(stub));
    tx->start();
    settle();
  }
  void settle() { sched.run_until(sched.now() + sim::Time::milliseconds(1)); }
  void ack_at(sim::Time at, std::uint64_t cum, std::vector<net::SackBlock> sacks = {},
              bool ece = false) {
    sched.schedule_at(at, [this, cum, sacks, ece] {
      net::Packet a;
      a.flow = 7;
      a.is_ack = true;
      a.ack = cum;
      a.ece = ece;
      a.n_sacks = static_cast<std::uint8_t>(std::min<std::size_t>(sacks.size(), 3));
      for (std::uint8_t i = 0; i < a.n_sacks; ++i) a.sacks[i] = sacks[i];
      tx->on_packet(std::move(a));
    });
    sched.run_until(at + sim::Time::milliseconds(1));
  }
};

TEST(TcpSenderEdge, MildReorderingDoesNotTriggerLoss) {
  Harness h(10);
  // SACKs for units 1,2 (below the dup threshold of 3) then the cumulative
  // catches up: no loss, no retransmission.
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 3}});
  h.ack_at(sim::Time::milliseconds(63), 3);
  EXPECT_TRUE(h.cc->losses.empty());
  EXPECT_EQ(h.tx->stats().retx_units, 0u);
  EXPECT_EQ(h.tx->stats().lost_units_marked, 0u);
}

TEST(TcpSenderEdge, ReorderToleranceIsConfigurable) {
  Harness strict(10, /*reorder_units=*/1);
  strict.ack_at(sim::Time::milliseconds(62), 0, {{1, 3}});
  EXPECT_EQ(strict.tx->stats().lost_units_marked, 1u);  // threshold 1: unit 0 lost

  Harness lax(10, /*reorder_units=*/5);
  lax.ack_at(sim::Time::milliseconds(62), 0, {{1, 5}});
  EXPECT_EQ(lax.tx->stats().lost_units_marked, 0u);  // only 4 sacked above unit 0
}

TEST(TcpSenderEdge, EceReachesCca) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 2, {}, /*ece=*/true);
  ASSERT_FALSE(h.cc->acks.empty());
  EXPECT_TRUE(h.cc->acks.back().ece);
}

TEST(TcpSenderEdge, DuplicateAckWithNoNewsIsQuiet) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 4);
  const auto acks_before = h.cc->acks.size();
  // Same cumulative again, no sacks: nothing delivered; CCA not bothered.
  h.ack_at(sim::Time::milliseconds(63), 4);
  EXPECT_EQ(h.cc->acks.size(), acks_before);
}

TEST(TcpSenderEdge, AckBeyondNextSeqIsClamped) {
  Harness h(5);
  h.ack_at(sim::Time::milliseconds(62), 1000);  // bogus cumulative
  // Clamped to what was actually sent (5 units); the freed window then
  // releases new data, so the flow continues normally.
  EXPECT_EQ(h.tx->una(), 5u);
  EXPECT_GE(h.tx->next_seq(), 10u);
  h.sched.run_until(sim::Time::milliseconds(100));
  EXPECT_GT(h.wire.sent.size(), 5u);
}

TEST(TcpSenderEdge, LostUnitRetransmittedOnlyOnce) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 6}});
  EXPECT_EQ(h.tx->stats().retx_units, 1u);
  // More sacks in the same episode must not re-retransmit unit 0 (it is
  // in flight again).
  h.ack_at(sim::Time::milliseconds(64), 0, {{1, 9}});
  EXPECT_EQ(h.tx->stats().retx_units, 1u);
}

TEST(TcpSenderEdge, RetransmissionLostAgainIsRecovered) {
  Harness h(10);
  // Episode 1: unit 0 lost, retransmitted at ~62 ms.
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 6}});
  ASSERT_EQ(h.tx->stats().retx_units, 1u);
  // The retransmission is lost too: newer units (sent after it) get SACKed.
  // RACK ordering marks it lost again.
  h.ack_at(sim::Time::milliseconds(130), 0, {{1, 11}});
  EXPECT_GE(h.tx->stats().retx_units, 2u);
  // Cumulative finally completes everything sent so far (clamped), which
  // ends the recovery episode; new data released by the ack is fine.
  h.ack_at(sim::Time::milliseconds(200), 1'000'000);
  EXPECT_FALSE(h.tx->in_recovery());
  EXPECT_EQ(h.tx->stats().lost_units_marked, h.tx->stats().retx_units);
}

TEST(TcpSenderEdge, PartialAckKeepsRecoveryAlive) {
  Harness h(20);
  h.ack_at(sim::Time::milliseconds(62), 0, {{2, 8}});  // 0 and 1 lost
  ASSERT_TRUE(h.tx->in_recovery());
  // Cumulative covers unit 0 only: still in recovery (recovery point ahead).
  h.ack_at(sim::Time::milliseconds(70), 1);
  EXPECT_TRUE(h.tx->in_recovery());
}

// RTO timing scaffolding: one 62 ms RTT sample puts the estimator at its
// 200 ms floor, so every deadline below is now + 200 ms * backoff.

TEST(TcpSenderEdge, RtoBackoffResetsOnCumulativeProgress) {
  Harness h(10);
  // Sample the RTT (rto -> 200 ms floor); the initial 1 s timer stays armed.
  h.ack_at(sim::Time::milliseconds(62), 1);
  // No further ACKs: the lazy timer fires at 1000 ms (deadline long past),
  // then backs off 2x -> next fire at 1400 ms, then 4x -> armed for 2200 ms.
  h.sched.run_until(sim::Time::milliseconds(1450));
  ASSERT_EQ(h.tx->stats().rtos, 2u);
  // Cumulative progress at 1500 ms resets the backoff to 1, pulling the
  // deadline to 1700 ms. The armed 2200 ms timer finds it expired and fires.
  // Without the reset the deadline would be 1500 + 800 = 2300 ms and the
  // timer would re-arm instead of firing.
  h.ack_at(sim::Time::milliseconds(1500), 6);
  h.sched.run_until(sim::Time::milliseconds(2250));
  EXPECT_EQ(h.tx->stats().rtos, 3u);
}

TEST(TcpSenderEdge, SackOnlyAckRefreshesRtoTimer) {
  // A/B pair around the initial timer's 1000 ms firing: SACK-only delivery
  // progress (una pinned at 1) must push the RTO deadline forward exactly
  // like cumulative progress does, while a no-news duplicate must not.
  Harness refreshed(10);
  refreshed.ack_at(sim::Time::milliseconds(62), 1);        // deadline -> 262 ms
  refreshed.ack_at(sim::Time::milliseconds(900), 1, {{5, 7}});  // SACK-only
  refreshed.sched.run_until(sim::Time::milliseconds(1300));
  EXPECT_EQ(refreshed.tx->stats().rtos, 0u);  // 1000 ms firing re-armed

  Harness stalled(10);
  stalled.ack_at(sim::Time::milliseconds(62), 1);
  stalled.ack_at(sim::Time::milliseconds(900), 1);  // duplicate: no delivery
  stalled.sched.run_until(sim::Time::milliseconds(1300));
  EXPECT_EQ(stalled.tx->stats().rtos, 1u);  // deadline stayed at 262 ms
}

TEST(TcpSenderEdge, RtoDisarmsWhenNothingOutstanding) {
  Harness h(5);
  h.tx->stop();  // no new data after the initial window
  h.ack_at(sim::Time::milliseconds(62), 5);  // everything delivered
  h.sched.run_until(sim::Time::seconds(5));
  EXPECT_EQ(h.tx->stats().rtos, 0u);
}

TEST(TcpSenderEdge, StatsCountersConsistent) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 6}});
  h.ack_at(sim::Time::milliseconds(124), h.tx->next_seq());
  const auto& st = h.tx->stats();
  EXPECT_EQ(st.lost_units_marked, st.retx_units);
  EXPECT_GE(st.units_sent, st.retx_units);
  EXPECT_GT(st.acks_received, 0u);
}

}  // namespace
}  // namespace elephant::tcp
