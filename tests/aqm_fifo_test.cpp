#include "aqm/fifo.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

TEST(Fifo, EnqueueDequeuePreservesOrder) {
  sim::Scheduler sched;
  FifoQueue q(sched, 1 << 20);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(make_packet(1, i)));
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Fifo, DropsWhenFull) {
  sim::Scheduler sched;
  FifoQueue q(sched, 3 * 8900);
  EXPECT_TRUE(q.enqueue(make_packet(1, 0)));
  EXPECT_TRUE(q.enqueue(make_packet(1, 1)));
  EXPECT_TRUE(q.enqueue(make_packet(1, 2)));
  EXPECT_FALSE(q.enqueue(make_packet(1, 3)));  // would exceed the byte limit
  EXPECT_EQ(q.stats().dropped_overflow, 1u);
  EXPECT_EQ(q.packet_length(), 3u);
}

TEST(Fifo, ByteAccounting) {
  sim::Scheduler sched;
  FifoQueue q(sched, 1 << 20);
  EXPECT_TRUE(q.enqueue(make_packet(1, 0, 1000)));
  EXPECT_TRUE(q.enqueue(make_packet(1, 1, 500)));
  EXPECT_EQ(q.byte_length(), 1500u);
  (void)q.dequeue();
  EXPECT_EQ(q.byte_length(), 500u);
  (void)q.dequeue();
  EXPECT_EQ(q.byte_length(), 0u);
}

TEST(Fifo, DropPreservesEarlierPackets) {
  sim::Scheduler sched;
  FifoQueue q(sched, 2 * 8900);
  EXPECT_TRUE(q.enqueue(make_packet(1, 10)));
  EXPECT_TRUE(q.enqueue(make_packet(1, 11)));
  EXPECT_FALSE(q.enqueue(make_packet(1, 12)));
  EXPECT_EQ(q.dequeue()->seq, 10u);
  EXPECT_EQ(q.dequeue()->seq, 11u);
}

TEST(Fifo, NeverDropsEarly) {
  sim::Scheduler sched;
  FifoQueue q(sched, 100 * 8900);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(q.enqueue(make_packet(1, i)));
  EXPECT_EQ(q.stats().dropped_early, 0u);
  EXPECT_EQ(q.stats().enqueued, 100u);
}

TEST(Fifo, StatsCountDequeues) {
  sim::Scheduler sched;
  FifoQueue q(sched, 1 << 20);
  (void)q.enqueue(make_packet(1, 0));
  (void)q.enqueue(make_packet(1, 1));
  (void)q.dequeue();
  EXPECT_EQ(q.stats().dequeued, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

TEST(Fifo, TinyLimitStillAcceptsNothingTooBig) {
  sim::Scheduler sched;
  FifoQueue q(sched, 100);  // smaller than one jumbo frame
  EXPECT_FALSE(q.enqueue(make_packet(1, 0)));
  EXPECT_EQ(q.byte_length(), 0u);
}

TEST(Fifo, SetsEnqueueTimestamp) {
  sim::Scheduler sched;
  FifoQueue q(sched, 1 << 20);
  sched.schedule_at(sim::Time::milliseconds(7), [&] {
    (void)q.enqueue(make_packet(1, 0));
  });
  sched.run();
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->enqueue_time, sim::Time::milliseconds(7));
}

}  // namespace
}  // namespace elephant::aqm
