#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "aqm/fifo.hpp"
#include "fault/gilbert_elliott.hpp"
#include "test_util.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

namespace elephant::fault {
namespace {

using test::make_packet;

TEST(FaultPlan, SignatureIsStableAndSensitive) {
  const auto a = FaultPlan::link_flap(sim::Time::seconds(5), sim::Time::seconds(1));
  const auto b = FaultPlan::link_flap(sim::Time::seconds(5), sim::Time::seconds(1));
  auto c = FaultPlan::link_flap(sim::Time::seconds(5), sim::Time::seconds(2));
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_NE(a.signature(), c.signature());
  EXPECT_EQ(FaultPlan{}.signature(), "");
  EXPECT_EQ(a.signature().size(), 16u);
}

TEST(FaultPlan, LinkFlapBuilderSpacesCycles) {
  const auto plan = FaultPlan::link_flap(sim::Time::seconds(2), sim::Time::seconds(1),
                                         /*flaps=*/3);
  ASSERT_EQ(plan.events.size(), 3u);
  // Default period: equal down and up intervals → cycles 2 s apart.
  EXPECT_EQ(plan.events[0].at, sim::Time::seconds(2));
  EXPECT_EQ(plan.events[1].at, sim::Time::seconds(4));
  EXPECT_EQ(plan.events[2].at, sim::Time::seconds(6));
  for (const auto& e : plan.events) {
    EXPECT_EQ(e.kind, FaultKind::kLinkDown);
    EXPECT_EQ(e.duration, sim::Time::seconds(1));
  }
}

TEST(GilbertElliott, FromLossHitsStationaryTarget) {
  for (const double target : {0.001, 0.01, 0.05, 0.2}) {
    const auto p = GilbertElliottParams::from_loss(target, 10);
    ASSERT_TRUE(p.enabled());
    EXPECT_NEAR(p.stationary_loss(), target, 1e-12);
    EXPECT_DOUBLE_EQ(p.p_bad_to_good, 0.1);  // mean burst of 10 packets
  }
  EXPECT_FALSE(GilbertElliottParams::from_loss(0, 10).enabled());
}

TEST(GilbertElliott, EmpiricalLossMatchesStationaryRate) {
  sim::Scheduler sched;
  const auto params = GilbertElliottParams::from_loss(0.05, 8);
  GilbertElliottLoss q(sched, std::make_unique<aqm::FifoQueue>(sched, std::size_t{1} << 40),
                       params, 42);
  const int n = 200000;
  int dropped = 0;
  for (int i = 0; i < n; ++i) {
    if (!q.enqueue(make_packet(1, static_cast<std::uint64_t>(i)))) {
      ++dropped;
    } else {
      (void)q.dequeue();  // keep the inner queue empty
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.05, 0.01);
  EXPECT_EQ(q.injected_drops(), static_cast<std::uint64_t>(dropped));
  // The merge folds injected drops into the early-drop counter.
  EXPECT_EQ(q.stats().dropped_early, q.injected_drops());
}

TEST(GilbertElliott, LossComesInBursts) {
  // Same stationary rate, very different texture: mean drop-run length must
  // reflect the bad-state sojourn, not the ~1.02 a Bernoulli process gives.
  sim::Scheduler sched;
  const auto params = GilbertElliottParams::from_loss(0.02, 20);
  GilbertElliottLoss q(sched, std::make_unique<aqm::FifoQueue>(sched, std::size_t{1} << 40),
                       params, 7);
  int runs = 0;
  int losses = 0;
  bool in_run = false;
  for (int i = 0; i < 300000; ++i) {
    if (!q.enqueue(make_packet(1, static_cast<std::uint64_t>(i)))) {
      ++losses;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      (void)q.dequeue();
      in_run = false;
    }
  }
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(losses) / runs;
  EXPECT_GT(mean_run, 5.0);  // bursty: far above Bernoulli's ≈1
}

TEST(GilbertElliott, NameAdvertisesDecoration) {
  sim::Scheduler sched;
  GilbertElliottLoss q(sched, std::make_unique<aqm::FifoQueue>(sched, std::size_t{1} << 30),
                       GilbertElliottParams::from_loss(0.01, 4), 1);
  EXPECT_EQ(q.name(), "fifo+ge");
}

TEST(FaultConfig, PlanAndGeLossJoinTheExperimentId) {
  auto base = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                 aqm::AqmKind::kFifo, 2.0, 100e6, 5);
  auto flapped = base;
  flapped.fault_plan = FaultPlan::link_flap(sim::Time::seconds(1), sim::Time::seconds(1));
  auto bursty = base;
  bursty.ge_loss = GilbertElliottParams::from_loss(0.01, 10);
  EXPECT_NE(base.id(), flapped.id());
  EXPECT_NE(base.id(), bursty.id());
  EXPECT_NE(flapped.id(), bursty.id());
}

TEST(FaultScenario, LinkFlapCausesRtosThenRecovers) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 20);
  cfg.fault_plan = FaultPlan::link_flap(sim::Time::seconds(5), sim::Time::seconds(2));

  trace::MemorySink sink;
  trace::Tracer tracer(sink);
  tracer.enable_only({trace::RecordType::kFault});
  cfg.tracer = &tracer;

  const auto res = test::run_uncached(cfg);  // invariant checker on by default

  // A 2 s outage at a 62 ms RTT starves every in-flight segment: the
  // senders must fall back to timeout recovery at least once...
  EXPECT_GE(res.rtos, 1u);
  // ...and the 13 s after the link returns are plenty to refill the pipe.
  EXPECT_GT(res.utilization, 0.5);

  int applies = 0;
  int reverts = 0;
  for (const auto& r : sink.records()) {
    if (r.type != trace::RecordType::kFault) continue;
    (r.v2 != 0 ? applies : reverts)++;
    EXPECT_EQ(static_cast<FaultKind>(r.v0), FaultKind::kLinkDown);
  }
  EXPECT_EQ(applies, 1);
  EXPECT_EQ(reverts, 1);
}

TEST(FaultScenario, RateDegradeReducesThroughput) {
  auto clean = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                  aqm::AqmKind::kFifo, 2.0, 100e6, 12);
  auto degraded = clean;
  // 20% of nominal for the middle 8 seconds.
  degraded.fault_plan =
      FaultPlan::degrade(sim::Time::seconds(2), 0.2, sim::Time::seconds(8));
  const auto res_clean = test::run_uncached(clean);
  const auto res_degraded = test::run_uncached(degraded);
  EXPECT_LT(res_degraded.utilization, res_clean.utilization - 0.2);
  EXPECT_GT(res_degraded.utilization, 0.05);  // still moving, not wedged
}

TEST(FaultScenario, MildReorderingCausesNoSpuriousFastRetransmit) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 16.0, 100e6, 10);
  // 1% of packets land ~1.5 ms late: one or two packets pass each straggler,
  // below the 3-dupACK fast-retransmit threshold. With a deep (16 BDP)
  // buffer there is no congestive loss either, so any retransmission would
  // be a spurious reaction to reordering.
  FaultEvent e;
  e.at = sim::Time::seconds(1);
  e.kind = FaultKind::kReorder;
  e.value = 0.01;
  e.delay = sim::Time::microseconds(1500);
  cfg.fault_plan.add(e);
  const auto res = test::run_uncached(cfg);
  EXPECT_EQ(res.retx_segments, 0u);
  EXPECT_GT(res.utilization, 0.5);
}

TEST(FaultScenario, DuplicationIsHarmless) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 10);
  FaultEvent e;
  e.at = sim::Time::seconds(1);
  e.kind = FaultKind::kDuplicate;
  e.value = 0.05;
  cfg.fault_plan.add(e);
  const auto res = test::run_uncached(cfg);
  EXPECT_GT(res.utilization, 0.5);
}

TEST(FaultScenario, LossBurstTripsRetransmissions) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 10);
  cfg.fault_plan =
      FaultPlan::loss_burst(sim::Time::seconds(2), 0.3, sim::Time::seconds(2));
  const auto res = test::run_uncached(cfg);
  EXPECT_GT(res.retx_segments, 0u);
}

TEST(FaultScenario, GilbertElliottEndToEndRunsAndLoses) {
  auto cfg = test::quick_config(cca::CcaKind::kBbrV1, cca::CcaKind::kBbrV1,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 10);
  cfg.ge_loss = GilbertElliottParams::from_loss(0.01, 10);
  const auto res = test::run_uncached(cfg);
  EXPECT_GT(res.bottleneck.dropped_early, 0u);
  EXPECT_GT(res.retx_segments, 0u);
  EXPECT_GT(res.utilization, 0.3);  // BBR shrugs off random loss
}

TEST(FaultScenario, FaultFreePlanLeavesRunByteIdentical) {
  // An empty plan must not perturb the RNG stream: results stay identical to
  // a build that never heard of fault injection (cache compatibility).
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 5);
  const auto a = test::run_uncached(cfg);
  const auto b = test::run_uncached(cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.jain2, b.jain2);
}

}  // namespace
}  // namespace elephant::fault
