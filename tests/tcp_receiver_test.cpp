#include "tcp/tcp_receiver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "aqm/fifo.hpp"
#include "net/port.hpp"
#include "test_util.hpp"

namespace elephant::tcp {
namespace {

/// Harness: a receiver on a host whose NIC feeds a capture node, so every
/// generated ACK is observable with its arrival-order intact.
struct Harness {
  sim::Scheduler sched;
  net::Host server{5, "server"};
  struct Capture : net::Node {
    Capture() : Node(1, "capture") {}
    void receive(net::Packet&& p) override { acks.push_back(std::move(p)); }
    std::vector<net::Packet> acks;
  } capture;
  std::unique_ptr<net::Port> nic;
  std::unique_ptr<TcpReceiver> rx;

  Harness() {
    nic = std::make_unique<net::Port>(
        sched, std::make_unique<aqm::FifoQueue>(sched, 1 << 24), 100e9, sim::Time::zero(),
        "server-nic");
    nic->connect(&capture);
    server.attach_nic(nic.get());
    rx = std::make_unique<TcpReceiver>(sched, server, /*peer=*/1, /*flow=*/7);
  }

  void deliver(std::uint64_t seq) {
    net::Packet p = test::make_packet(7, seq);
    rx->on_packet(std::move(p));
    // Flush the ACK through the capture NIC without firing the 40 ms
    // delayed-ACK timer (sched.run() would drain it and ack every packet).
    sched.run_until(sched.now() + sim::Time::milliseconds(1));
  }
  const net::Packet& last_ack() { return capture.acks.back(); }
};

TEST(TcpReceiver, InOrderDeliveryAdvancesCumulativeAck) {
  Harness h;
  h.deliver(0);
  h.deliver(1);
  ASSERT_FALSE(h.capture.acks.empty());
  EXPECT_EQ(h.last_ack().ack, 2u);
  EXPECT_EQ(h.rx->delivered_units(), 2u);
}

TEST(TcpReceiver, DelayedAckEverySecondSegment) {
  Harness h;
  h.deliver(0);  // 1st in-order packet: no immediate ack required...
  const std::size_t after_one = h.capture.acks.size();
  h.deliver(1);  // ...2nd must trigger one
  EXPECT_GT(h.capture.acks.size(), after_one);
  // Over 10 in-order packets, roughly 5 ACKs.
  Harness h2;
  for (std::uint64_t i = 0; i < 10; ++i) h2.deliver(i);
  EXPECT_LE(h2.capture.acks.size(), 6u);
  EXPECT_GE(h2.capture.acks.size(), 5u);
}

TEST(TcpReceiver, OutOfOrderTriggersImmediateDupAck) {
  Harness h;
  h.deliver(0);
  h.deliver(1);
  const std::size_t before = h.capture.acks.size();
  h.deliver(5);  // gap: 2,3,4 missing
  ASSERT_GT(h.capture.acks.size(), before);
  const net::Packet& ack = h.last_ack();
  EXPECT_EQ(ack.ack, 2u);  // cumulative stays
  ASSERT_GE(ack.n_sacks, 1);
  EXPECT_EQ(ack.sacks[0].start, 5u);
  EXPECT_EQ(ack.sacks[0].end, 6u);
}

TEST(TcpReceiver, SackBlocksCoverMultipleRuns) {
  Harness h;
  h.deliver(0);
  h.deliver(3);
  h.deliver(5);
  h.deliver(7);
  const net::Packet& ack = h.last_ack();
  EXPECT_EQ(ack.ack, 1u);
  EXPECT_EQ(ack.n_sacks, 3);  // runs {7},{5},{3} (most recent first)
  EXPECT_EQ(ack.sacks[0].start, 7u);
}

TEST(TcpReceiver, GapFillDrainsOutOfOrderBuffer) {
  Harness h;
  h.deliver(0);
  h.deliver(2);
  h.deliver(3);
  EXPECT_EQ(h.rx->delivered_units(), 1u);
  h.deliver(1);  // fills the hole: 0..3 now contiguous
  EXPECT_EQ(h.rx->delivered_units(), 4u);
  EXPECT_EQ(h.last_ack().ack, 4u);
  EXPECT_EQ(h.last_ack().n_sacks, 0);
}

TEST(TcpReceiver, DuplicateUnitsCounted) {
  Harness h;
  h.deliver(0);
  h.deliver(0);  // below rcv_next: spurious
  EXPECT_EQ(h.rx->duplicate_units(), 1u);
  h.deliver(3);
  h.deliver(3);  // duplicate in the ooo buffer
  EXPECT_EQ(h.rx->duplicate_units(), 2u);
}

TEST(TcpReceiver, EcnEchoSetUntilAcked) {
  Harness h;
  net::Packet marked = test::make_packet(7, 0);
  marked.ecn_marked = true;
  h.rx->on_packet(std::move(marked));
  h.sched.run();
  ASSERT_FALSE(h.capture.acks.empty());
  EXPECT_TRUE(h.last_ack().ece);
  // Next unmarked packets produce non-ECE acks.
  h.deliver(1);
  h.deliver(2);
  EXPECT_FALSE(h.last_ack().ece);
}

TEST(TcpReceiver, CountsDeliveredBytes) {
  Harness h;
  h.deliver(0);
  h.deliver(1);
  EXPECT_EQ(h.rx->delivered_bytes(), 2u * 8900u);
}

TEST(TcpReceiver, IgnoresAckPackets) {
  Harness h;
  net::Packet ack;
  ack.flow = 7;
  ack.is_ack = true;
  h.rx->on_packet(std::move(ack));
  EXPECT_EQ(h.rx->received_packets(), 0u);
}

TEST(TcpReceiver, AckCarriesPeerAddressing) {
  Harness h;
  h.deliver(0);
  h.deliver(1);
  EXPECT_EQ(h.last_ack().dst, 1u);
  EXPECT_EQ(h.last_ack().src, 5u);
  EXPECT_EQ(h.last_ack().flow, 7u);
  EXPECT_TRUE(h.last_ack().is_ack);
}

}  // namespace
}  // namespace elephant::tcp
