#include "sim/slab.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace elephant::sim {
namespace {

/// Counts constructions/destructions so tests can prove the slab destroys
/// exactly the live objects, exactly once.
struct Tracked {
  static int live;
  explicit Tracked(int v) : value(v) { ++live; }
  Tracked(const Tracked&) = delete;
  ~Tracked() { --live; }
  int value;
};
int Tracked::live = 0;

struct Throws {
  explicit Throws(bool do_throw) {
    if (do_throw) throw std::runtime_error("ctor failure");
  }
};

TEST(Slab, EmplaceReturnsStableIndicesAndAddresses) {
  Slab<std::uint64_t> slab;
  std::vector<std::uint64_t*> addrs;
  // Cross several chunk boundaries; existing addresses must never move.
  const std::size_t n = Slab<std::uint64_t>::kChunkObjects * 3 + 17;
  for (std::size_t i = 0; i < n; ++i) {
    auto [idx, p] = slab.emplace(static_cast<std::uint64_t>(i));
    EXPECT_EQ(idx, i);
    addrs.push_back(p);
  }
  EXPECT_EQ(slab.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(addrs[i], &slab[static_cast<std::uint32_t>(i)]);
    EXPECT_EQ(slab[static_cast<std::uint32_t>(i)], i);
  }
  // Consecutive indices within one chunk are consecutive in memory.
  EXPECT_EQ(addrs[1], addrs[0] + 1);
}

TEST(Slab, EraseRecyclesSlotsLifo) {
  Tracked::live = 0;
  {
    Slab<Tracked> slab;
    slab.emplace(0);
    slab.emplace(1);
    slab.emplace(2);
    EXPECT_EQ(Tracked::live, 3);
    slab.erase(1);
    EXPECT_EQ(Tracked::live, 2);
    EXPECT_FALSE(slab.is_live(1));
    auto [idx, p] = slab.emplace(99);
    EXPECT_EQ(idx, 1u);  // freed slot reused before growth
    EXPECT_EQ(p->value, 99);
    EXPECT_EQ(slab.size(), 3u);
    EXPECT_EQ(slab.high_water(), 3u);
  }
  EXPECT_EQ(Tracked::live, 0);  // destructor destroyed every live object
}

TEST(Slab, ForEachVisitsLiveSlotsInIndexOrder) {
  Slab<int> slab;
  for (int i = 0; i < 10; ++i) slab.emplace(i);
  slab.erase(3);
  slab.erase(7);
  std::vector<std::uint32_t> seen;
  slab.for_each([&](std::uint32_t i, int v) {
    EXPECT_EQ(static_cast<int>(i), v);
    seen.push_back(i);
  });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1, 2, 4, 5, 6, 8, 9}));
  const Slab<int>& cslab = slab;
  std::size_t count = 0;
  cslab.for_each([&](std::uint32_t, const int&) { ++count; });
  EXPECT_EQ(count, slab.size());
}

TEST(Slab, ClearDestroysEverythingButKeepsChunks) {
  Tracked::live = 0;
  Slab<Tracked> slab;
  for (int i = 0; i < 100; ++i) slab.emplace(i);
  const std::size_t cap = slab.capacity();
  const std::size_t bytes = slab.bytes();
  slab.clear();
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.capacity(), cap);  // storage retained for reuse
  EXPECT_EQ(slab.bytes(), bytes);
  auto [idx, p] = slab.emplace(7);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(p->value, 7);
}

TEST(Slab, ThrowingConstructorLeavesSlabConsistent) {
  Slab<Throws> slab;
  slab.emplace(false);
  EXPECT_THROW(slab.emplace(true), std::runtime_error);
  EXPECT_EQ(slab.size(), 1u);
  EXPECT_FALSE(slab.is_live(1));
  // The failed slot is recycled, not leaked.
  auto [idx, p] = slab.emplace(false);
  EXPECT_EQ(idx, 1u);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(slab.size(), 2u);
}

TEST(Slab, BytesGrowByWholeChunks) {
  Slab<std::uint64_t> slab;
  EXPECT_EQ(slab.bytes(), 0u);
  slab.emplace(1);
  const std::size_t one_chunk = slab.bytes();
  EXPECT_GE(one_chunk, Slab<std::uint64_t>::kChunkObjects * sizeof(std::uint64_t));
  for (std::size_t i = 1; i < Slab<std::uint64_t>::kChunkObjects; ++i) slab.emplace(i);
  EXPECT_EQ(slab.bytes(), one_chunk);  // same chunk until it fills
  slab.emplace(0);
  EXPECT_GT(slab.bytes(), one_chunk);
}

TEST(Slab, LargeObjectsStillChunk) {
  struct Big {
    char payload[10000];
  };
  // kChunkObjects floors at 8 even when that overshoots the 64 KiB target.
  EXPECT_EQ(Slab<Big>::kChunkObjects, 8u);
  Slab<Big> slab;
  for (int i = 0; i < 20; ++i) slab.emplace();
  EXPECT_EQ(slab.size(), 20u);
}

}  // namespace
}  // namespace elephant::sim
