#include "aqm/tbf.hpp"

#include <gtest/gtest.h>

#include "aqm/fifo.hpp"
#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

TbfQueue make_tbf(sim::Scheduler& sched, double rate_bps, std::size_t burst = 64 * 1024) {
  TbfConfig cfg;
  cfg.rate_bps = rate_bps;
  cfg.burst_bytes = burst;
  return TbfQueue(sched, std::make_unique<FifoQueue>(sched, std::size_t{1} << 26), cfg);
}

TEST(Tbf, BurstPassesImmediately) {
  sim::Scheduler sched;
  auto q = make_tbf(sched, 1e6, 4 * 8900);
  for (std::uint64_t i = 0; i < 4; ++i) (void)q.enqueue(make_packet(1, i));
  int released = 0;
  while (q.dequeue().has_value()) ++released;
  EXPECT_EQ(released, 4);  // exactly the bucket depth
}

TEST(Tbf, BeyondBurstIsRateLimited) {
  sim::Scheduler sched;
  auto q = make_tbf(sched, 8900.0 * 8.0, 8900);  // one packet of burst, 1 pkt/s rate
  for (std::uint64_t i = 0; i < 3; ++i) (void)q.enqueue(make_packet(1, i));
  EXPECT_TRUE(q.dequeue().has_value());   // burst
  EXPECT_FALSE(q.dequeue().has_value());  // no tokens yet
  bool got_second = false;
  sched.schedule_at(sim::Time::seconds(1.01), [&] { got_second = q.dequeue().has_value(); });
  sched.run();
  EXPECT_TRUE(got_second);
}

TEST(Tbf, NextReadyPredictsRelease) {
  sim::Scheduler sched;
  auto q = make_tbf(sched, 8900.0 * 8.0, 8900);
  (void)q.enqueue(make_packet(1, 0));
  (void)q.enqueue(make_packet(1, 1));
  (void)q.dequeue();                       // consume burst
  EXPECT_FALSE(q.dequeue().has_value());   // holds packet 1
  const sim::Time ready = q.next_ready();
  EXPECT_GT(ready, sched.now());
  EXPECT_LE(ready, sched.now() + sim::Time::seconds(1.01));
}

TEST(Tbf, TokensCapAtBurst) {
  sim::Scheduler sched;
  auto q = make_tbf(sched, 1e9, 10000);
  // Long idle: tokens must not exceed the bucket depth.
  sched.schedule_at(sim::Time::seconds(10), [&] {
    (void)q.enqueue(make_packet(1, 0));
    (void)q.dequeue();
  });
  sched.run();
  EXPECT_LE(q.tokens(), 10000.0);
}

TEST(Tbf, AccountsHeldPacket) {
  sim::Scheduler sched;
  auto q = make_tbf(sched, 8900.0 * 8.0, 8900);
  (void)q.enqueue(make_packet(1, 0));
  (void)q.enqueue(make_packet(1, 1));
  (void)q.dequeue();
  (void)q.dequeue();  // holds the head internally
  EXPECT_EQ(q.packet_length(), 1u);
  EXPECT_EQ(q.byte_length(), 8900u);
}

TEST(Tbf, InnerDropsStillCounted) {
  sim::Scheduler sched;
  TbfConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.burst_bytes = 1 << 20;
  TbfQueue q(sched, std::make_unique<FifoQueue>(sched, 2 * 8900), cfg);
  (void)q.enqueue(make_packet(1, 0));
  (void)q.enqueue(make_packet(1, 1));
  EXPECT_FALSE(q.enqueue(make_packet(1, 2)));
  EXPECT_EQ(q.stats().dropped_overflow, 1u);
}

TEST(Tbf, NameAdvertisesShaping) {
  sim::Scheduler sched;
  auto q = make_tbf(sched, 1e9);
  EXPECT_EQ(q.name(), "fifo+tbf");
}

}  // namespace
}  // namespace elephant::aqm
