#include <gtest/gtest.h>

#include "aqm/factory.hpp"
#include "aqm/red.hpp"
#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

RedConfig adaptive_cfg(std::size_t limit = 1000 * 8900) {
  RedConfig cfg;
  cfg.limit_bytes = limit;
  cfg.adaptive = true;
  cfg.weight = 0.02;  // fast-moving average so tests converge quickly
  return cfg;
}

/// Drive the queue with a fixed 2-in-1-out pattern for `steps` milliseconds.
void drive(sim::Scheduler& sched, RedQueue& q, int steps, int in_per_ms, int out_per_ms) {
  std::uint64_t i = 1000000;
  for (int step = 0; step < steps; ++step) {
    sched.schedule_at(sched.now() + sim::Time::milliseconds(step + 1), [&q, &i, in_per_ms,
                                                                        out_per_ms] {
      for (int k = 0; k < in_per_ms; ++k) (void)q.enqueue(make_packet(1, i++));
      for (int k = 0; k < out_per_ms; ++k) (void)q.dequeue();
    });
  }
  sched.run();
}

TEST(AdaptiveRed, MaxPStartsAtConfiguredValue) {
  sim::Scheduler sched;
  RedQueue q(sched, adaptive_cfg(), 1);
  EXPECT_DOUBLE_EQ(q.current_max_p(), 0.02);
}

TEST(AdaptiveRed, MaxPRisesWhenQueueSitsHigh) {
  sim::Scheduler sched;
  RedQueue q(sched, adaptive_cfg(), 1);
  // Persistent overload: avg rides above the 0.6 waypoint → max_p must climb.
  drive(sched, q, 8000, 3, 1);
  EXPECT_GT(q.current_max_p(), 0.02);
}

TEST(AdaptiveRed, MaxPFallsWhenQueueStaysLow) {
  sim::Scheduler sched;
  RedConfig cfg = adaptive_cfg();
  cfg.max_p = 0.3;  // start artificially high
  RedQueue q(sched, cfg, 1);
  // Light load: avg below the 0.4 waypoint → max_p decays toward p_min.
  drive(sched, q, 8000, 1, 1);
  EXPECT_LT(q.current_max_p(), 0.3);
}

TEST(AdaptiveRed, MaxPStaysWithinBounds) {
  sim::Scheduler sched;
  RedQueue q(sched, adaptive_cfg(), 1);
  drive(sched, q, 20000, 4, 1);
  EXPECT_LE(q.current_max_p(), 0.5);
  EXPECT_GE(q.current_max_p(), 0.01);
}

TEST(AdaptiveRed, NonAdaptiveMaxPNeverMoves) {
  sim::Scheduler sched;
  RedConfig cfg = adaptive_cfg();
  cfg.adaptive = false;
  RedQueue q(sched, cfg, 1);
  drive(sched, q, 5000, 3, 1);
  EXPECT_DOUBLE_EQ(q.current_max_p(), 0.02);
}

TEST(AdaptiveRed, FactoryKindSetsAdaptive) {
  sim::Scheduler sched;
  auto q = make_queue_disc(AqmKind::kRedAdaptive, sched, 1 << 24, 1);
  EXPECT_EQ(q->name(), "red");  // same algorithm, self-tuned parameters
  const auto* red = dynamic_cast<const RedQueue*>(q.get());
  ASSERT_NE(red, nullptr);
  EXPECT_TRUE(red->config().adaptive);
}

TEST(AdaptiveRed, ImprovesHighBandwidthUtilization) {
  // The paper's conclusion: RED's high-BW failure is a parameter-tuning
  // problem. Adaptive RED should not do *worse* than static RED at 1G.
  auto fixed = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                  aqm::AqmKind::kRed, 2.0, 1e9, 30);
  auto adaptive = fixed;
  adaptive.aqm = aqm::AqmKind::kRedAdaptive;
  const auto res_fixed = test::run_uncached(fixed);
  const auto res_adaptive = test::run_uncached(adaptive);
  EXPECT_GE(res_adaptive.utilization, res_fixed.utilization - 0.05);
}

}  // namespace
}  // namespace elephant::aqm
