#include <gtest/gtest.h>

#include <array>

#include "metrics/fairness.hpp"
#include "metrics/timeseries.hpp"
#include "obs/histogram.hpp"

namespace elephant::metrics {
namespace {

TEST(Jain, PerfectFairnessIsOne) {
  const std::array<double, 2> equal = {100.0, 100.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
  const std::array<double, 5> equal5 = {7, 7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(jain_index(equal5), 1.0);
}

TEST(Jain, TotalStarvationIsHalfForTwoFlows) {
  const std::array<double, 2> starved = {100.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(starved), 0.5);
}

TEST(Jain, MatchesPaperEquationForTwoSenders) {
  // J = (S1+S2)^2 / (2 (S1^2+S2^2)).
  const std::array<double, 2> s = {80.0, 20.0};
  const double expected = (100.0 * 100.0) / (2.0 * (6400.0 + 400.0));
  EXPECT_DOUBLE_EQ(jain_index(s), expected);
}

TEST(Jain, BoundedBetweenInverseNAndOne) {
  const std::array<double, 4> skewed = {1000, 1, 1, 1};
  const double j = jain_index(skewed);
  EXPECT_GE(j, 0.25);
  EXPECT_LE(j, 1.0);
}

TEST(Jain, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index(std::span<const double>{}), 1.0);
  const std::array<double, 3> zeros = {0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Jain, ScaleInvariant) {
  const std::array<double, 3> a = {1, 2, 3};
  const std::array<double, 3> b = {10, 20, 30};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(Utilization, FullLinkIsOne) {
  const std::array<double, 2> flows = {5e8, 5e8};
  EXPECT_DOUBLE_EQ(link_utilization(flows, 1e9), 1.0);
}

TEST(Utilization, HalfLink) {
  const std::array<double, 1> flows = {5e8};
  EXPECT_DOUBLE_EQ(link_utilization(flows, 1e9), 0.5);
}

TEST(Utilization, ZeroBandwidthGuard) {
  const std::array<double, 1> flows = {5e8};
  EXPECT_DOUBLE_EQ(link_utilization(flows, 0), 0.0);
}

TEST(TimeSeries, SamplesAtInterval) {
  sim::Scheduler sched;
  double counter = 0;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [&] { return counter; });
  ts.start();
  sched.schedule_at(sim::Time::seconds(0.5), [&] { counter = 10; });
  sched.schedule_at(sim::Time::seconds(1.5), [&] { counter = 30; });
  sched.run_until(sim::Time::seconds(3.5));
  ASSERT_EQ(ts.points().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.points()[0].value, 10);
  EXPECT_DOUBLE_EQ(ts.points()[1].value, 30);
  EXPECT_DOUBLE_EQ(ts.points()[2].value, 30);
  EXPECT_EQ(ts.points()[0].t, sim::Time::seconds(1.0));
}

TEST(TimeSeries, DeltasDifference) {
  sim::Scheduler sched;
  double counter = 0;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [&] { return counter += 5; });
  ts.start();
  sched.run_until(sim::Time::seconds(3.5));
  const auto d = ts.deltas();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0].value, 5);
  EXPECT_DOUBLE_EQ(d[1].value, 5);
  EXPECT_DOUBLE_EQ(d[2].value, 5);
}

TEST(TimeSeries, UnboundedByDefault) {
  sim::Scheduler sched;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [] { return 1.0; });
  EXPECT_EQ(ts.capacity(), 0u);
  ts.start();
  sched.run_until(sim::Time::seconds(100.5));
  EXPECT_EQ(ts.points().size(), 100u);
  EXPECT_EQ(ts.interval(), sim::Time::seconds(1.0));
}

TEST(TimeSeries, BoundedModeDecimatesByTwoAndDoublesInterval) {
  sim::Scheduler sched;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [&] {
    return sched.now().sec();  // sample value == sample time
  });
  ts.set_capacity(8);
  ts.start();
  sched.run_until(sim::Time::seconds(20.5));

  // t=1..8 fills the buffer → decimate to {2,4,6,8}, interval 2 s; t=10..16
  // refills to 8 → decimate to {4,8,12,16}, interval 4 s; then t=20.
  const auto& pts = ts.points();
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_EQ(ts.interval(), sim::Time::seconds(4.0));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].t, sim::Time::seconds(4.0 * static_cast<double>(i + 1)))
        << "i=" << i;
    EXPECT_DOUBLE_EQ(pts[i].value, pts[i].t.sec()) << "i=" << i;
  }
}

TEST(TimeSeries, BoundedSoakConvergesToFixedFootprint) {
  sim::Scheduler sched;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [&] { return sched.now().sec(); });
  ts.set_capacity(16);
  ts.start();
  sched.run_until(sim::Time::seconds(1000.5));
  // A 1000-sample soak stays within the cap while spanning the whole run.
  EXPECT_LE(ts.points().size(), 16u);
  EXPECT_GE(ts.points().size(), 8u);
  EXPECT_GT(ts.interval(), sim::Time::seconds(1.0));
  EXPECT_GT(ts.points().back().t, sim::Time::seconds(900.0));
}

TEST(TimeSeries, CapacityFloorIsTwoAndZeroRestoresUnbounded) {
  sim::Scheduler sched;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [] { return 0.0; });
  ts.set_capacity(1);
  EXPECT_EQ(ts.capacity(), 2u);
  ts.set_capacity(0);
  EXPECT_EQ(ts.capacity(), 0u);
}

TEST(TimeSeries, HistogramSeesEverySampleIncludingDecimatedOnes) {
  sim::Scheduler sched;
  obs::LogLinHistogram hist;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [&] { return sched.now().sec(); });
  ts.set_capacity(4);
  ts.set_histogram(&hist);
  ts.start();
  sched.run_until(sim::Time::seconds(12.5));
  // Samples at t = 1,2,3,4 (→ decimate), 6,8 (→ decimate), 12: the bounded
  // buffer dropped points, the histogram saw all seven.
  EXPECT_EQ(hist.count(), 7u);
  EXPECT_LT(ts.points().size(), hist.count());
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 12.0);
}

}  // namespace
}  // namespace elephant::metrics
