#include <gtest/gtest.h>

#include <array>

#include "metrics/fairness.hpp"
#include "metrics/timeseries.hpp"

namespace elephant::metrics {
namespace {

TEST(Jain, PerfectFairnessIsOne) {
  const std::array<double, 2> equal = {100.0, 100.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
  const std::array<double, 5> equal5 = {7, 7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(jain_index(equal5), 1.0);
}

TEST(Jain, TotalStarvationIsHalfForTwoFlows) {
  const std::array<double, 2> starved = {100.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(starved), 0.5);
}

TEST(Jain, MatchesPaperEquationForTwoSenders) {
  // J = (S1+S2)^2 / (2 (S1^2+S2^2)).
  const std::array<double, 2> s = {80.0, 20.0};
  const double expected = (100.0 * 100.0) / (2.0 * (6400.0 + 400.0));
  EXPECT_DOUBLE_EQ(jain_index(s), expected);
}

TEST(Jain, BoundedBetweenInverseNAndOne) {
  const std::array<double, 4> skewed = {1000, 1, 1, 1};
  const double j = jain_index(skewed);
  EXPECT_GE(j, 0.25);
  EXPECT_LE(j, 1.0);
}

TEST(Jain, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index(std::span<const double>{}), 1.0);
  const std::array<double, 3> zeros = {0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Jain, ScaleInvariant) {
  const std::array<double, 3> a = {1, 2, 3};
  const std::array<double, 3> b = {10, 20, 30};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(Utilization, FullLinkIsOne) {
  const std::array<double, 2> flows = {5e8, 5e8};
  EXPECT_DOUBLE_EQ(link_utilization(flows, 1e9), 1.0);
}

TEST(Utilization, HalfLink) {
  const std::array<double, 1> flows = {5e8};
  EXPECT_DOUBLE_EQ(link_utilization(flows, 1e9), 0.5);
}

TEST(Utilization, ZeroBandwidthGuard) {
  const std::array<double, 1> flows = {5e8};
  EXPECT_DOUBLE_EQ(link_utilization(flows, 0), 0.0);
}

TEST(TimeSeries, SamplesAtInterval) {
  sim::Scheduler sched;
  double counter = 0;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [&] { return counter; });
  ts.start();
  sched.schedule_at(sim::Time::seconds(0.5), [&] { counter = 10; });
  sched.schedule_at(sim::Time::seconds(1.5), [&] { counter = 30; });
  sched.run_until(sim::Time::seconds(3.5));
  ASSERT_EQ(ts.points().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.points()[0].value, 10);
  EXPECT_DOUBLE_EQ(ts.points()[1].value, 30);
  EXPECT_DOUBLE_EQ(ts.points()[2].value, 30);
  EXPECT_EQ(ts.points()[0].t, sim::Time::seconds(1.0));
}

TEST(TimeSeries, DeltasDifference) {
  sim::Scheduler sched;
  double counter = 0;
  TimeSeries ts(sched, sim::Time::seconds(1.0), [&] { return counter += 5; });
  ts.start();
  sched.run_until(sim::Time::seconds(3.5));
  const auto d = ts.deltas();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0].value, 5);
  EXPECT_DOUBLE_EQ(d[1].value, 5);
  EXPECT_DOUBLE_EQ(d[2].value, 5);
}

}  // namespace
}  // namespace elephant::metrics
