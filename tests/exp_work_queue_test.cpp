#include "exp/work_queue.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "exp/manifest.hpp"
#include "obs/metrics.hpp"

namespace elephant::exp {
namespace {

class WorkQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("elephant_work_queue_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::filesystem::path manifest_path() const { return dir_ / "m.jsonl"; }

  static std::vector<std::pair<std::size_t, std::string>> cells(int n) {
    std::vector<std::pair<std::size_t, std::string>> out;
    for (int i = 0; i < n; ++i) {
      out.emplace_back(static_cast<std::size_t>(i), "cell-" + std::to_string(i));
    }
    return out;
  }

  static ManifestEntry success(std::size_t index, const std::string& id) {
    ManifestEntry e;
    e.index = index;
    e.id = id;
    e.status = RunStatus::kOk;
    e.attempts = 1;
    e.jain2 = 0.5 + static_cast<double>(index) * 0.01;
    return e;
  }

  /// Raw line scan: terminal (non-claimed) lines per id, no folding.
  std::map<std::string, int> terminal_counts() const {
    std::map<std::string, int> counts;
    std::ifstream in(manifest_path());
    std::string line;
    while (std::getline(in, line)) {
      ManifestEntry e;
      if (SweepManifest::parse_line(line, &e) && e.status != RunStatus::kClaimed) {
        counts[e.id]++;
      }
    }
    return counts;
  }

  std::filesystem::path dir_;
};

TEST_F(WorkQueueTest, ClaimsInSweepOrderThenReportsAllDone) {
  LeasedWorkQueue::Options opt;
  opt.worker_id = "w0";
  opt.lease_s = 60;
  LeasedWorkQueue q(manifest_path(), cells(3), opt);

  for (std::size_t want = 0; want < 3; ++want) {
    std::size_t got = 99;
    ASSERT_EQ(q.try_claim(&got), LeasedWorkQueue::Claim::kClaimed);
    EXPECT_EQ(got, want);
    EXPECT_TRUE(q.complete(success(got, "cell-" + std::to_string(got))));
  }
  std::size_t unused = 0;
  EXPECT_EQ(q.try_claim(&unused), LeasedWorkQueue::Claim::kAllDone);
}

TEST_F(WorkQueueTest, LiveLeaseBlocksOtherWorkersExpiredLeaseIsStolen) {
  // A foreign claim with a live lease parks the cell; one with an expired
  // lease is stolen (the dead-worker takeover path), counted as a steal.
  {
    SweepManifest m(manifest_path());
    ManifestEntry live;
    live.index = 0;
    live.id = "cell-0";
    live.status = RunStatus::kClaimed;
    live.worker = "other";
    live.lease_until_unix_s = 4e9;  // far future
    m.append(live);
    ManifestEntry dead = live;
    dead.index = 1;
    dead.id = "cell-1";
    dead.lease_until_unix_s = 1;  // 1970: long expired
    m.append(dead);
  }

  obs::MetricsRegistry reg;
  LeasedWorkQueue::Options opt;
  opt.worker_id = "w0";
  opt.lease_s = 60;
  opt.resume = true;  // fold the pre-existing claims
  opt.metrics = &reg;
  LeasedWorkQueue q(manifest_path(), cells(2), opt);

  std::size_t got = 99;
  ASSERT_EQ(q.try_claim(&got), LeasedWorkQueue::Claim::kClaimed);
  EXPECT_EQ(got, 1u);  // the expired one, stolen
  EXPECT_EQ(reg.counter("sweep.leases_stolen").value(), 1u);
  EXPECT_TRUE(q.complete(success(1, "cell-1")));

  // cell-0's lease is live: nothing claimable, but not done either.
  EXPECT_EQ(q.try_claim(&got), LeasedWorkQueue::Claim::kWaitLeased);
}

TEST_F(WorkQueueTest, DuplicateCompletionIsDroppedAfterForeignSuccess) {
  obs::MetricsRegistry reg;
  LeasedWorkQueue::Options opt;
  opt.worker_id = "w0";
  opt.lease_s = 60;
  opt.metrics = &reg;
  LeasedWorkQueue q(manifest_path(), cells(1), opt);

  std::size_t got = 99;
  ASSERT_EQ(q.try_claim(&got), LeasedWorkQueue::Claim::kClaimed);

  // While "we" run the cell, a peer that stole our lease finishes it first.
  {
    SweepManifest peer(manifest_path());
    peer.append(success(0, "cell-0"));
  }

  EXPECT_FALSE(q.complete(success(0, "cell-0")));  // dropped, not re-journaled
  EXPECT_EQ(reg.counter("sweep.completions_dropped").value(), 1u);
  EXPECT_EQ(terminal_counts()["cell-0"], 1);  // exactly one completion line
}

TEST_F(WorkQueueTest, LoadFoldsInterleavedClaimAndCompleteRecords) {
  // The resume fold must treat claims as transient: a claim before a success
  // is superseded, a claim *after* a success never shadows it, and a cell
  // with only an (expired or not) claim surfaces as kClaimed.
  {
    SweepManifest m(manifest_path());
    ManifestEntry claim_a;
    claim_a.index = 0;
    claim_a.id = "a";
    claim_a.status = RunStatus::kClaimed;
    claim_a.worker = "w1";
    claim_a.lease_until_unix_s = 4e9;
    m.append(claim_a);
    m.append(success(0, "a"));  // supersedes the claim

    ManifestEntry claim_b = claim_a;
    claim_b.index = 1;
    claim_b.id = "b";
    claim_b.lease_until_unix_s = 1;  // expired, never completed
    m.append(claim_b);

    m.append(success(2, "c"));
    ManifestEntry claim_c = claim_a;
    claim_c.index = 2;
    claim_c.id = "c";
    m.append(claim_c);  // stale claim landing after the success: ignored
  }

  const auto entries = SweepManifest::load(manifest_path());
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.at("a").status, RunStatus::kOk);
  EXPECT_EQ(entries.at("b").status, RunStatus::kClaimed);
  EXPECT_EQ(entries.at("b").worker, "w1");
  EXPECT_EQ(entries.at("c").status, RunStatus::kOk);  // success is terminal
}

TEST_F(WorkQueueTest, FreshQueueRerunsPriorRecordsResumeHonorsThem) {
  {
    SweepManifest m(manifest_path());
    m.append(success(0, "cell-0"));
  }

  LeasedWorkQueue::Options fresh;
  fresh.worker_id = "w0";
  fresh.lease_s = 60;
  {
    // Without resume, records that predate the queue are invisible: the cell
    // is claimed and re-run (today's "re-run everything" semantics).
    LeasedWorkQueue q(manifest_path(), cells(1), fresh);
    std::size_t got = 99;
    EXPECT_EQ(q.try_claim(&got), LeasedWorkQueue::Claim::kClaimed);
    EXPECT_EQ(got, 0u);
    EXPECT_TRUE(q.complete(success(0, "cell-0")));
  }

  LeasedWorkQueue::Options resume = fresh;
  resume.worker_id = "w1";
  resume.resume = true;
  LeasedWorkQueue q(manifest_path(), cells(1), resume);
  std::size_t got = 99;
  EXPECT_EQ(q.try_claim(&got), LeasedWorkQueue::Claim::kAllDone);
  const auto latest = q.latest("cell-0");
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->success());
}

TEST_F(WorkQueueTest, ReleaseAllMakesHeldCellsInstantlyStealable) {
  LeasedWorkQueue::Options opt;
  opt.worker_id = "w0";
  opt.lease_s = 3600;  // far too long to expire naturally in this test
  LeasedWorkQueue a(manifest_path(), cells(1), opt);
  std::size_t got = 99;
  ASSERT_EQ(a.try_claim(&got), LeasedWorkQueue::Claim::kClaimed);
  a.release_all();

  LeasedWorkQueue::Options opt_b = opt;
  opt_b.worker_id = "w1";
  opt_b.resume = true;
  LeasedWorkQueue b(manifest_path(), cells(1), opt_b);
  EXPECT_EQ(b.try_claim(&got), LeasedWorkQueue::Claim::kClaimed);
  EXPECT_EQ(got, 0u);
  EXPECT_TRUE(b.complete(success(0, "cell-0")));
}

TEST_F(WorkQueueTest, CrashResumeRerunsExactlyInflightAndUnclaimedCells) {
  // The crash-resume e2e: cell-0 completed by a previous run; a worker is
  // SIGKILLed while *holding* cell-1; resume must re-run exactly cell-1
  // (after lease expiry) and the never-claimed cell-2 — and nothing else.
  {
    SweepManifest m(manifest_path());
    m.append(success(0, "cell-0"));
  }

  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Worker process: claim the first eligible cell, signal, then hang as a
    // stand-in for a long simulation until SIGKILL arrives.
    ::close(ready[0]);
    LeasedWorkQueue::Options opt;
    opt.worker_id = "doomed";
    opt.lease_s = 0.2;
    opt.resume = true;
    LeasedWorkQueue q(manifest_path(), cells(3), opt);
    std::size_t got = 99;
    if (q.try_claim(&got) != LeasedWorkQueue::Claim::kClaimed || got != 1) {
      ::_exit(1);
    }
    const char byte = 'r';
    (void)!::write(ready[1], &byte, 1);
    std::this_thread::sleep_for(std::chrono::seconds(30));
    ::_exit(2);  // unreachable: SIGKILL lands first
  }

  ::close(ready[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);  // child holds cell-1's lease
  ::close(ready[0]);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  ASSERT_EQ(::waitpid(child, nullptr, 0), child);

  LeasedWorkQueue::Options opt;
  opt.worker_id = "survivor";
  opt.lease_s = 60;
  opt.resume = true;
  LeasedWorkQueue q(manifest_path(), cells(3), opt);

  std::vector<std::size_t> ran;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    std::size_t got = 99;
    const auto claim = q.try_claim(&got);
    if (claim == LeasedWorkQueue::Claim::kAllDone) break;
    if (claim == LeasedWorkQueue::Claim::kWaitLeased) {
      // cell-1's orphaned lease (0.2 s) has not expired yet.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    ran.push_back(got);
    EXPECT_TRUE(q.complete(success(got, "cell-" + std::to_string(got))));
  }

  // Exactly the in-flight cell (stolen from the dead worker) and the
  // never-claimed cell — the order depends on when the orphan lease expires,
  // because the survivor rightly starts on cell-2 rather than waiting.
  std::sort(ran.begin(), ran.end());
  ASSERT_EQ(ran.size(), 2u);
  EXPECT_EQ(ran[0], 1u);
  EXPECT_EQ(ran[1], 2u);
  const auto counts = terminal_counts();
  EXPECT_EQ(counts.at("cell-0"), 1);
  EXPECT_EQ(counts.at("cell-1"), 1);
  EXPECT_EQ(counts.at("cell-2"), 1);
}

TEST_F(WorkQueueTest, ConcurrentWorkersConvergeExactlyOnce) {
  constexpr int kCells = 12;
  auto work = [&](const std::string& worker_id, int* completions) {
    LeasedWorkQueue::Options opt;
    opt.worker_id = worker_id;
    opt.lease_s = 60;
    opt.resume = true;
    LeasedWorkQueue q(manifest_path(), cells(kCells), opt);
    while (true) {
      std::size_t got = 99;
      const auto claim = q.try_claim(&got);
      if (claim == LeasedWorkQueue::Claim::kAllDone) return;
      if (claim == LeasedWorkQueue::Claim::kWaitLeased) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));  // "simulate"
      if (q.complete(success(got, "cell-" + std::to_string(got)))) ++*completions;
    }
  };

  int done_a = 0;
  int done_b = 0;
  std::thread a(work, "wa", &done_a);
  std::thread b(work, "wb", &done_b);
  a.join();
  b.join();

  EXPECT_EQ(done_a + done_b, kCells);
  const auto counts = terminal_counts();
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(kCells));
  for (const auto& [id, n] : counts) EXPECT_EQ(n, 1) << id;
}

}  // namespace
}  // namespace elephant::exp
