#include "tcp/tcp_sender.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "aqm/fifo.hpp"
#include "net/port.hpp"
#include "test_util.hpp"

namespace elephant::tcp {
namespace {

/// Scriptable congestion controller: fixed cwnd, records upcalls.
class StubCca : public cca::CongestionControl {
 public:
  explicit StubCca(double cwnd, double pacing_bps = 0)
      : CongestionControl(cca::CcaParams{}), cwnd_(cwnd), pacing_bps_(pacing_bps) {}

  void on_ack(const cca::AckSample& ack) override { acks.push_back(ack); }
  void on_loss(const cca::LossSample& loss) override { losses.push_back(loss); }
  void on_rto(sim::Time) override { ++rtos; }
  [[nodiscard]] double cwnd_segments() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_bps() const override { return pacing_bps_; }
  [[nodiscard]] std::string name() const override { return "stub"; }

  void set_cwnd(double c) { cwnd_ = c; }
  std::vector<cca::AckSample> acks;
  std::vector<cca::LossSample> losses;
  int rtos = 0;

 private:
  double cwnd_;
  double pacing_bps_;
};

/// Harness: sender on a host whose NIC feeds a capture node; ACKs are fed
/// back by hand so tests control the network's behaviour exactly.
struct Harness {
  sim::Scheduler sched;
  net::Host client{1, "client"};
  struct Capture : net::Node {
    Capture() : Node(5, "capture") {}
    void receive(net::Packet&& p) override { sent.push_back(std::move(p)); }
    std::vector<net::Packet> sent;
  } wire;
  std::unique_ptr<net::Port> nic;
  std::unique_ptr<TcpSender> tx;
  StubCca* cc = nullptr;

  explicit Harness(double cwnd, double pacing_bps = 0, std::uint32_t agg = 1) {
    nic = std::make_unique<net::Port>(
        sched, std::make_unique<aqm::FifoQueue>(sched, std::size_t{1} << 30), 100e9,
        sim::Time::zero(), "client-nic");
    nic->connect(&wire);
    client.attach_nic(nic.get());
    TcpSenderConfig cfg;
    cfg.flow = 7;
    cfg.src = 1;
    cfg.dst = 5;
    cfg.agg = agg;
    auto stub = std::make_unique<StubCca>(cwnd, pacing_bps);
    cc = stub.get();
    tx = std::make_unique<TcpSender>(sched, client, cfg, std::move(stub));
    tx->start();
    settle();
  }

  /// Run briefly past `now` so in-flight events (sends, NIC delivery) land —
  /// never sched.run(): the sender's self-rearming RTO timer keeps the event
  /// queue populated forever.
  void settle() { sched.run_until(sched.now() + sim::Time::milliseconds(1)); }

  /// Feed a cumulative ACK (optionally with SACK blocks) at time `at`.
  void ack_at(sim::Time at, std::uint64_t cum,
              std::vector<net::SackBlock> sacks = {}) {
    sched.schedule_at(at, [this, cum, sacks] {
      net::Packet a;
      a.flow = 7;
      a.is_ack = true;
      a.ack = cum;
      a.n_sacks = static_cast<std::uint8_t>(std::min<std::size_t>(sacks.size(), 3));
      for (std::uint8_t i = 0; i < a.n_sacks; ++i) a.sacks[i] = sacks[i];
      tx->on_packet(std::move(a));
    });
    sched.run_until(at + sim::Time::milliseconds(1));
  }
};

TEST(TcpSender, SendsInitialWindow) {
  Harness h(10);
  EXPECT_EQ(h.wire.sent.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(h.wire.sent[i].seq, i);
  EXPECT_EQ(h.tx->pipe_segments(), 10.0);
}

TEST(TcpSender, AckAdvancesWindowAndSendsMore) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 5);
  EXPECT_EQ(h.tx->una(), 5u);
  EXPECT_EQ(h.wire.sent.size(), 15u);  // 5 more released
  EXPECT_EQ(h.tx->pipe_segments(), 10.0);
}

TEST(TcpSender, RttSampleFedToCca) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 2);
  ASSERT_FALSE(h.cc->acks.empty());
  EXPECT_NEAR(h.cc->acks.back().rtt.ms(), 62.0, 0.5);
  EXPECT_EQ(h.cc->acks.back().acked_segments, 2.0);
}

TEST(TcpSender, SackMarksLossAfterThreshold) {
  Harness h(10);
  // Unit 0 lost; SACK units 1..5 (≥3 above): 0 must be marked lost and
  // retransmitted.
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 6}});
  ASSERT_FALSE(h.cc->losses.empty());
  EXPECT_TRUE(h.cc->losses[0].new_congestion_event);
  EXPECT_EQ(h.tx->stats().retx_units, 1u);
  // The retransmission reuses seq 0 (new data may legitimately follow it,
  // since SACKed units freed congestion-window space).
  bool saw_retx_of_0 = false;
  for (const auto& p : h.wire.sent) saw_retx_of_0 |= (p.retx && p.seq == 0);
  EXPECT_TRUE(saw_retx_of_0);
}

TEST(TcpSender, NoLossBeforeDupThreshold) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 3}});  // only 2 sacked above
  EXPECT_TRUE(h.cc->losses.empty());
  EXPECT_EQ(h.tx->stats().retx_units, 0u);
}

TEST(TcpSender, SingleCongestionEventPerRecoveryEpisode) {
  Harness h(20);
  h.ack_at(sim::Time::milliseconds(62), 0, {{2, 8}});   // loss of 0,1
  h.ack_at(sim::Time::milliseconds(63), 0, {{2, 12}});  // more sacks, same episode
  std::size_t new_events = 0;
  for (const auto& l : h.cc->losses) new_events += l.new_congestion_event ? 1 : 0;
  EXPECT_EQ(new_events, 1u);
}

TEST(TcpSender, RecoveryExitsWhenRecoveryPointAcked) {
  Harness h(10);
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 6}});
  EXPECT_TRUE(h.tx->in_recovery());
  // Cumulative ack past everything sent so far ends the episode.
  h.ack_at(sim::Time::milliseconds(130), h.tx->next_seq());
  EXPECT_FALSE(h.tx->in_recovery());
}

TEST(TcpSender, RtoFiresAndCollapses) {
  Harness h(10);
  // No ACKs at all: the 1 s initial RTO must fire and mark everything lost.
  h.sched.run_until(sim::Time::seconds(1.5));
  EXPECT_GE(h.cc->rtos, 1);
  EXPECT_GE(h.tx->stats().rtos, 1u);
  // Retransmissions of the first units happened.
  bool saw_retx = false;
  for (const auto& p : h.wire.sent) saw_retx |= p.retx;
  EXPECT_TRUE(saw_retx);
}

TEST(TcpSender, RtoBacksOffExponentially) {
  Harness h(2);
  h.sched.run_until(sim::Time::seconds(10));
  // RTOs at ~1s, 3s (1+2), 7s (3+4): at least 3 within 10 s, not dozens.
  EXPECT_GE(h.tx->stats().rtos, 3u);
  EXPECT_LE(h.tx->stats().rtos, 5u);
}

TEST(TcpSender, SackedUnitCancelsPendingRetransmit) {
  Harness h(10);
  // Mark 0 lost via sacks of 1..5...
  h.ack_at(sim::Time::milliseconds(62), 0, {{1, 6}});
  const auto retx_before = h.tx->stats().retx_units;
  EXPECT_EQ(retx_before, 1u);
  // ...then cumulative covers everything: no further retransmissions.
  h.ack_at(sim::Time::milliseconds(70), h.tx->next_seq());
  EXPECT_EQ(h.tx->stats().retx_units, retx_before);
}

TEST(TcpSender, AggregationMultipliesSegmentAccounting) {
  Harness h(40, 0, /*agg=*/4);
  // pipe is in segments: 40/4 = 10 units in flight.
  EXPECT_EQ(h.tx->pipe_segments(), 40.0);
  EXPECT_EQ(h.wire.sent.size(), 10u);
  EXPECT_EQ(h.wire.sent[0].segments, 4u);
  EXPECT_EQ(h.wire.sent[0].size, 4u * 8900u);
  h.ack_at(sim::Time::milliseconds(62), 2);
  EXPECT_EQ(h.cc->acks.back().acked_segments, 8.0);
  EXPECT_EQ(h.tx->retx_segments(), 0u);
}

TEST(TcpSender, PacingSpacesTransmissions) {
  // cwnd 100 but pacing at exactly 1 unit per 10 ms (8900*8 bits / rate).
  const double rate = 8900.0 * 8.0 / 0.010;
  Harness h(100, rate);
  h.sched.run_until(sim::Time::milliseconds(95));
  // ~1 immediately + one per 10 ms: about 10 by t=95ms, far below 100.
  EXPECT_GE(h.wire.sent.size(), 8u);
  EXPECT_LE(h.wire.sent.size(), 12u);
}

TEST(TcpSender, ZeroWindowStillMakesProgress) {
  Harness h(0.5);  // cwnd below one segment
  EXPECT_EQ(h.wire.sent.size(), 1u);  // pipe==0 exemption
}

TEST(TcpSender, DeliveryRateSampleIsSane) {
  Harness h(10);
  // ACK 5 units after one RTT; delivery rate ≈ 5 units / 62 ms ≈ 80/s.
  h.ack_at(sim::Time::milliseconds(62), 5);
  ASSERT_FALSE(h.cc->acks.empty());
  const double rate = h.cc->acks.back().delivery_rate;
  EXPECT_GT(rate, 20.0);
  EXPECT_LT(rate, 200.0);
}

TEST(TcpSender, RoundStartSignaledOncePerRtt) {
  Harness h(4);
  h.ack_at(sim::Time::milliseconds(62), 1);
  h.ack_at(sim::Time::milliseconds(63), 2);
  h.ack_at(sim::Time::milliseconds(64), 4);
  // First ack of flow: round start. Subsequent acks for data sent in the
  // same round: not round starts until data sent after ack #1 is acked.
  ASSERT_GE(h.cc->acks.size(), 3u);
  EXPECT_TRUE(h.cc->acks[0].round_start);
  EXPECT_FALSE(h.cc->acks[1].round_start);
  // Ack of unit 5 (sent after first ack) begins the next round.
  h.ack_at(sim::Time::milliseconds(124), 5);
  EXPECT_TRUE(h.cc->acks.back().round_start);
}

TEST(TcpSender, StopEndsNewData) {
  Harness h(10);
  h.tx->stop();
  h.ack_at(sim::Time::milliseconds(62), 10);
  EXPECT_EQ(h.wire.sent.size(), 10u);  // nothing new after stop
  EXPECT_EQ(h.tx->pipe_segments(), 0.0);
}

}  // namespace
}  // namespace elephant::tcp
