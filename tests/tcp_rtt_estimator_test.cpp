#include "tcp/rtt_estimator.hpp"

#include <gtest/gtest.h>

namespace elephant::tcp {
namespace {

TEST(RttEstimator, InitialRtoIsOneSecond) {
  RttEstimator est;
  EXPECT_EQ(est.rto(), sim::Time::seconds(1.0));
  EXPECT_FALSE(est.has_sample());
}

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator est;
  est.add_sample(sim::Time::milliseconds(62));
  EXPECT_EQ(est.srtt(), sim::Time::milliseconds(62));
  EXPECT_EQ(est.rttvar(), sim::Time::milliseconds(31));
  EXPECT_TRUE(est.has_sample());
}

TEST(RttEstimator, ConvergesToSteadyRtt) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(sim::Time::milliseconds(62));
  EXPECT_NEAR(est.srtt().ms(), 62.0, 0.5);
  EXPECT_NEAR(est.rttvar().ms(), 0.0, 1.0);
  // RTO floors at min_rto (200 ms) with tiny variance.
  EXPECT_EQ(est.rto(), sim::Time::milliseconds(200));
}

TEST(RttEstimator, RtoGrowsWithVariance) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) {
    est.add_sample(sim::Time::milliseconds(i % 2 == 0 ? 50 : 250));
  }
  EXPECT_GT(est.rto(), sim::Time::milliseconds(250));
}

TEST(RttEstimator, TracksMinRtt) {
  RttEstimator est;
  est.add_sample(sim::Time::milliseconds(80));
  est.add_sample(sim::Time::milliseconds(62));
  est.add_sample(sim::Time::milliseconds(100));
  EXPECT_EQ(est.min_rtt(), sim::Time::milliseconds(62));
  EXPECT_EQ(est.latest(), sim::Time::milliseconds(100));
}

TEST(RttEstimator, IgnoresNonPositiveSamples) {
  RttEstimator est;
  est.add_sample(sim::Time::zero());
  est.add_sample(sim::Time::milliseconds(-5));
  EXPECT_FALSE(est.has_sample());
}

TEST(RttEstimator, RtoClampedToMax) {
  RttEstimator est(sim::Time::milliseconds(200), sim::Time::seconds(60));
  est.add_sample(sim::Time::seconds(100));
  EXPECT_EQ(est.rto(), sim::Time::seconds(60));
}

TEST(RttEstimator, CustomMinRto) {
  RttEstimator est(sim::Time::milliseconds(50));
  for (int i = 0; i < 100; ++i) est.add_sample(sim::Time::milliseconds(10));
  EXPECT_EQ(est.rto(), sim::Time::milliseconds(50));
}

}  // namespace
}  // namespace elephant::tcp
