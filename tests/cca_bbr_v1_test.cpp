#include "cca/bbr_v1.hpp"

#include <gtest/gtest.h>

namespace elephant::cca {
namespace {

/// Drives a BbrV1 instance with a synthetic steady path: bandwidth in
/// segments/s, RTT, one ack per "step", round starts every RTT.
struct Driver {
  BbrV1 bbr{CcaParams{}};
  double t = 0.1;
  double delivered = 0;

  AckSample step(double rate, double rtt_s, double acked = 10, bool round = false,
                 double inflight = 50) {
    AckSample a;
    a.now = sim::Time::seconds(t);
    a.rtt = sim::Time::seconds(rtt_s);
    a.min_rtt = sim::Time::seconds(rtt_s);
    a.acked_segments = acked;
    delivered += acked;
    a.delivered_segments = delivered;
    a.delivery_rate = rate;
    a.round_start = round;
    a.inflight_segments = inflight;
    bbr.on_ack(a);
    return a;
  }

  /// One full round: several acks then a round boundary.
  void round(double rate, double rtt_s, double inflight = 50) {
    for (int i = 0; i < 4; ++i) {
      step(rate, rtt_s, 10, false, inflight);
      t += rtt_s / 5;
    }
    step(rate, rtt_s, 10, true, inflight);
    t += rtt_s / 5;
  }
};

TEST(BbrV1, StartsInStartupWithHighGain) {
  Driver d;
  EXPECT_EQ(d.bbr.mode(), BbrV1::Mode::kStartup);
  d.round(1000, 0.062);
  // Pacing at high_gain × bw.
  EXPECT_NEAR(d.bbr.pacing_rate_bps(), 2.885 * 1000 * 8900 * 8, 1e6);
}

TEST(BbrV1, ExitsStartupWhenBandwidthPlateaus) {
  Driver d;
  d.round(1000, 0.062);
  d.round(2000, 0.062);
  d.round(4000, 0.062);  // growing: stay in startup
  EXPECT_EQ(d.bbr.mode(), BbrV1::Mode::kStartup);
  for (int i = 0; i < 5; ++i) d.round(4000, 0.062);  // plateau
  EXPECT_NE(d.bbr.mode(), BbrV1::Mode::kStartup);
}

TEST(BbrV1, DrainsThenProbesBandwidth) {
  Driver d;
  for (int i = 0; i < 10; ++i) d.round(4000, 0.062, /*inflight=*/600);
  // With inflight well above BDP (4000*0.062=248), mode is Drain.
  EXPECT_EQ(d.bbr.mode(), BbrV1::Mode::kDrain);
  // Let inflight fall below BDP: ProbeBW.
  d.round(4000, 0.062, /*inflight=*/100);
  EXPECT_EQ(d.bbr.mode(), BbrV1::Mode::kProbeBw);
}

TEST(BbrV1, CwndCappedAtTwoBdpInProbeBw) {
  Driver d;
  for (int i = 0; i < 10; ++i) d.round(4000, 0.062, 600);
  d.round(4000, 0.062, 100);
  ASSERT_EQ(d.bbr.mode(), BbrV1::Mode::kProbeBw);
  for (int i = 0; i < 50; ++i) d.round(4000, 0.062, 300);
  // BDP = 4000 * 0.062 = 248 segments; cap = 2×BDP = 496.
  EXPECT_LE(d.bbr.cwnd_segments(), 2.0 * 248 + 1);
  EXPECT_GT(d.bbr.cwnd_segments(), 1.5 * 248);
}

TEST(BbrV1, LossDoesNotReduceWindow) {
  Driver d;
  for (int i = 0; i < 10; ++i) d.round(4000, 0.062, 600);
  d.round(4000, 0.062, 100);
  const double w = d.bbr.cwnd_segments();
  LossSample l;
  l.now = sim::Time::seconds(d.t);
  l.lost_segments = 50;
  l.new_congestion_event = true;
  d.bbr.on_loss(l);
  EXPECT_DOUBLE_EQ(d.bbr.cwnd_segments(), w);
}

TEST(BbrV1, RtoCollapsesWindow) {
  Driver d;
  for (int i = 0; i < 10; ++i) d.round(4000, 0.062, 600);
  d.bbr.on_rto(sim::Time::seconds(d.t));
  EXPECT_LE(d.bbr.cwnd_segments(), 4.0);
  // Bandwidth model survives the RTO.
  EXPECT_GT(d.bbr.bw_estimate(), 3000.0);
}

TEST(BbrV1, MinRttTracksFloor) {
  Driver d;
  d.round(1000, 0.080);
  d.round(1000, 0.062);
  d.round(1000, 0.090);
  EXPECT_EQ(d.bbr.min_rtt(), sim::Time::seconds(0.062));
}

TEST(BbrV1, EntersProbeRttAfterWindowExpiry) {
  Driver d;
  for (int i = 0; i < 10; ++i) d.round(4000, 0.062, 600);
  d.round(4000, 0.062, 100);
  ASSERT_EQ(d.bbr.mode(), BbrV1::Mode::kProbeBw);
  // Hold RTT slightly above the floor for >10 s of sim time.
  while (d.t < 12.0) d.round(4000, 0.070, 300);
  EXPECT_EQ(d.bbr.mode(), BbrV1::Mode::kProbeRtt);
  EXPECT_LE(d.bbr.cwnd_segments(), 4.0 + 1e-9);
}

TEST(BbrV1, ProbeRttExitsAfterDwell) {
  Driver d;
  for (int i = 0; i < 10; ++i) d.round(4000, 0.062, 600);
  d.round(4000, 0.062, 100);
  while (d.t < 12.0) d.round(4000, 0.070, 300);
  ASSERT_EQ(d.bbr.mode(), BbrV1::Mode::kProbeRtt);
  // Drain inflight to ≤ 4 and dwell 200 ms + a round.
  const double start = d.t;
  while (d.t < start + 1.0) d.round(4000, 0.062, 3);
  EXPECT_EQ(d.bbr.mode(), BbrV1::Mode::kProbeBw);
}

TEST(BbrV1, PacingGainCyclesInProbeBw) {
  Driver d;
  for (int i = 0; i < 10; ++i) d.round(4000, 0.062, 600);
  d.round(4000, 0.062, 100);
  ASSERT_EQ(d.bbr.mode(), BbrV1::Mode::kProbeBw);
  // Across many rounds the pacing rate must visit >1 values (cycle gains).
  // Keep inflight above 1.25*BDP (=310) so the probe phase can complete.
  double min_rate = 1e18;
  double max_rate = 0;
  for (int i = 0; i < 30; ++i) {
    d.round(4000, 0.062, 330);
    min_rate = std::min(min_rate, d.bbr.pacing_rate_bps());
    max_rate = std::max(max_rate, d.bbr.pacing_rate_bps());
  }
  EXPECT_LT(min_rate, max_rate);
  const double base = 4000 * 8900 * 8;
  EXPECT_NEAR(min_rate, 0.75 * base, 0.02 * base);
  EXPECT_NEAR(max_rate, 1.25 * base, 0.02 * base);
}

}  // namespace
}  // namespace elephant::cca
