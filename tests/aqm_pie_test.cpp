#include "aqm/pie.hpp"

#include "aqm/factory.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

PieConfig small_pie(std::size_t limit = std::size_t{1} << 26) {
  PieConfig cfg;
  cfg.limit_bytes = limit;
  return cfg;
}

TEST(Pie, StartsWithZeroProbability) {
  sim::Scheduler sched;
  PieQueue q(sched, small_pie(), 1);
  EXPECT_DOUBLE_EQ(q.drop_probability(), 0.0);
}

TEST(Pie, PassesLightTraffic) {
  sim::Scheduler sched;
  PieQueue q(sched, small_pie(), 1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(1, i)));
    (void)q.dequeue();
  }
  EXPECT_EQ(q.stats().dropped_early, 0u);
}

TEST(Pie, ProbabilityRisesUnderStandingQueue) {
  sim::Scheduler sched;
  PieQueue q(sched, small_pie(), 1);
  // Feed a persistent backlog: enqueue 2, dequeue 1, with time advancing so
  // the drain-rate estimator and PI controller engage.
  std::uint64_t i = 0;
  for (int step = 0; step < 3000; ++step) {
    sched.schedule_at(sim::Time::milliseconds(1) * (step + 1), [&] {
      (void)q.enqueue(make_packet(1, i++));
      (void)q.enqueue(make_packet(1, i++));
      (void)q.dequeue();
    });
  }
  sched.run();
  EXPECT_GT(q.drop_probability(), 0.0);
  EXPECT_GT(q.stats().dropped_early, 0u);
}

TEST(Pie, ProbabilityDecaysWhenCongestionClears) {
  sim::Scheduler sched;
  PieQueue q(sched, small_pie(), 1);
  std::uint64_t i = 0;
  for (int step = 0; step < 3000; ++step) {
    sched.schedule_at(sim::Time::milliseconds(1) * (step + 1), [&] {
      (void)q.enqueue(make_packet(1, i++));
      (void)q.enqueue(make_packet(1, i++));
      (void)q.dequeue();
    });
  }
  sched.run();
  const double p_congested = q.drop_probability();
  ASSERT_GT(p_congested, 0.0);
  // Drain fully, then idle trickle: probability must decay.
  while (q.dequeue().has_value()) {
  }
  for (int step = 0; step < 3000; ++step) {
    sched.schedule_at(sched.now() + sim::Time::milliseconds(1) * (step + 1), [&] {
      (void)q.enqueue(make_packet(1, i++));
      (void)q.dequeue();
    });
  }
  sched.run();
  EXPECT_LT(q.drop_probability(), p_congested);
}

TEST(Pie, BurstAllowancePassesInitialBurst) {
  sim::Scheduler sched;
  PieQueue q(sched, small_pie(), 1);
  // A burst right at start must not be early-dropped (150 ms allowance).
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(q.enqueue(make_packet(1, i)));
  EXPECT_EQ(q.stats().dropped_early, 0u);
}

TEST(Pie, OverflowStillBounded) {
  sim::Scheduler sched;
  PieQueue q(sched, small_pie(3 * 8900), 1);
  (void)q.enqueue(make_packet(1, 0));
  (void)q.enqueue(make_packet(1, 1));
  (void)q.enqueue(make_packet(1, 2));
  EXPECT_FALSE(q.enqueue(make_packet(1, 3)));
  EXPECT_EQ(q.stats().dropped_overflow, 1u);
}

TEST(Pie, EndToEndKeepsDelayNearTarget) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kPie, 8.0, 100e6, 30);
  const auto res = test::run_uncached(cfg);
  EXPECT_GT(res.utilization, 0.7);
  // 8 BDP of FIFO would give ~560 ms srtt; PIE should hold far less.
  for (const auto& f : res.flows) EXPECT_LT(f.srtt_ms, 62.0 + 120.0);
}

TEST(Pie, FactoryConstructs) {
  sim::Scheduler sched;
  auto q = make_queue_disc(AqmKind::kPie, sched, 1 << 20, 1);
  EXPECT_EQ(q->name(), "pie");
}

}  // namespace
}  // namespace elephant::aqm
