#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hpp"

namespace elephant {
namespace {

using cca::CcaKind;
using test::quick_config;
using test::run_uncached;

/// Property sweep over (CCA pair, AQM, buffer): system-wide invariants that
/// must hold for EVERY configuration, not just the paper's headline cells.
using PropertyParams = std::tuple<CcaKind, aqm::AqmKind, double>;

class SystemInvariants : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(SystemInvariants, ConservationFairnessAndSanity) {
  const auto [kind, aqm_kind, bdp] = GetParam();
  auto cfg = quick_config(kind, CcaKind::kCubic, aqm_kind, bdp, 100e6, 20);
  const auto res = run_uncached(cfg);

  // Conservation: total goodput cannot exceed the bottleneck (small epsilon
  // for measurement-window edge effects).
  EXPECT_LE(res.utilization, 1.02);

  // Jain's index bounds for two senders.
  EXPECT_GE(res.jain2, 0.5 - 1e-9);
  EXPECT_LE(res.jain2, 1.0 + 1e-9);

  // Non-negative counters.
  for (const auto& f : res.flows) {
    EXPECT_GE(f.throughput_bps, 0.0);
    EXPECT_GE(f.srtt_ms, 0.0);
  }

  // Queue accounting: everything enqueued is dequeued or still queued.
  const auto& q = res.bottleneck;
  EXPECT_LE(q.dequeued, q.enqueued);

  // The run must have made real progress.
  EXPECT_GT(res.utilization, 0.05);
  EXPECT_GT(res.events_executed, 1000u);
}

std::string property_name(const ::testing::TestParamInfo<PropertyParams>& info) {
  const auto [kind, aqm_kind, bdp] = info.param;
  std::string s = cca::to_string(kind) + "_" + aqm::to_string(aqm_kind) + "_bdp";
  const int whole = static_cast<int>(bdp);
  const int frac = static_cast<int>(bdp * 10) % 10;
  s += std::to_string(whole);
  if (frac != 0) s += "p" + std::to_string(frac);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SystemInvariants,
    ::testing::Combine(::testing::Values(CcaKind::kReno, CcaKind::kCubic, CcaKind::kHtcp,
                                         CcaKind::kBbrV1, CcaKind::kBbrV2),
                       ::testing::Values(aqm::AqmKind::kFifo, aqm::AqmKind::kRed,
                                         aqm::AqmKind::kFqCodel, aqm::AqmKind::kPie,
                                         aqm::AqmKind::kRedAdaptive),
                       ::testing::Values(0.5, 2.0, 16.0)),
    property_name);

/// Aggregation must not change macroscopic outcomes (the TSO substitution's
/// correctness argument): same config ±agg gives comparable utilization.
TEST(AggregationProperty, UtilizationInsensitiveToAggregation) {
  auto cfg1 = quick_config(CcaKind::kCubic, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                           500e6, 20);
  cfg1.aggregation = 1;
  auto cfg2 = cfg1;
  cfg2.aggregation = 4;
  const auto r1 = run_uncached(cfg1);
  const auto r2 = run_uncached(cfg2);
  EXPECT_NEAR(r1.utilization, r2.utilization, 0.15);
}

/// Seeds change microscopic outcomes but invariants hold across seeds.
TEST(SeedProperty, InvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = quick_config(CcaKind::kBbrV2, CcaKind::kCubic, aqm::AqmKind::kFifo, 2.0,
                            100e6, 15);
    cfg.seed = seed;
    const auto res = run_uncached(cfg);
    EXPECT_LE(res.utilization, 1.02) << "seed " << seed;
    EXPECT_GT(res.utilization, 0.3) << "seed " << seed;
  }
}

}  // namespace
}  // namespace elephant
