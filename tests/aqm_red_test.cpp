#include "aqm/red.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

RedConfig small_red(std::size_t limit = 100 * 8900) {
  RedConfig cfg;
  cfg.limit_bytes = limit;
  return cfg;
}

TEST(Red, FinalizeDerivesThresholds) {
  RedConfig cfg;
  cfg.limit_bytes = 1'200'000;
  cfg.finalize();
  EXPECT_EQ(cfg.min_bytes, 100'000u);
  EXPECT_EQ(cfg.max_bytes, 300'000u);
}

TEST(Red, FinalizeRespectsExplicitThresholds) {
  RedConfig cfg;
  cfg.limit_bytes = 1'200'000;
  cfg.min_bytes = 50'000;
  cfg.max_bytes = 90'000;
  cfg.finalize();
  EXPECT_EQ(cfg.min_bytes, 50'000u);
  EXPECT_EQ(cfg.max_bytes, 90'000u);
}

TEST(Red, FinalizeFloorsTinyLimits) {
  RedConfig cfg;
  cfg.limit_bytes = 10'000;  // limit/12 < one packet
  cfg.finalize();
  EXPECT_GE(cfg.min_bytes, cfg.mean_packet);
  EXPECT_GE(cfg.max_bytes, 2 * cfg.min_bytes);
}

TEST(Red, NoDropsBelowMinThreshold) {
  sim::Scheduler sched;
  RedQueue q(sched, small_red(), 1);
  // A handful of packets keeps avg below min: no early drops possible.
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(1, i)));
    (void)q.dequeue();
  }
  EXPECT_EQ(q.stats().dropped_early, 0u);
}

TEST(Red, DropsProbabilisticallyAboveMin) {
  sim::Scheduler sched;
  RedConfig cfg = small_red(1000 * 8900);
  cfg.weight = 0.2;  // fast-moving average for the test
  RedQueue q(sched, cfg, 1);
  int dropped = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    if (!q.enqueue(make_packet(1, i))) ++dropped;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(q.stats().dropped_early, 0u);
}

TEST(Red, HardDropsAtTwiceMaxThreshold) {
  sim::Scheduler sched;
  RedConfig cfg = small_red(1000 * 8900);
  cfg.weight = 1.0;  // avg == instantaneous queue
  RedQueue q(sched, cfg, 1);
  cfg.finalize();
  // Fill well past 2*max: every enqueue must now fail.
  std::uint64_t i = 0;
  while (q.byte_length() < 2 * cfg.max_bytes + 8900) {
    (void)q.enqueue(make_packet(1, i++));
    if (i > 100000) break;
  }
  EXPECT_FALSE(q.enqueue(make_packet(1, i)));
}

TEST(Red, OverflowDropsCountedSeparately) {
  sim::Scheduler sched;
  RedConfig cfg;
  cfg.limit_bytes = 2 * 8900;
  cfg.min_bytes = 100 * 8900;  // thresholds far above the limit: no early drops
  cfg.max_bytes = 200 * 8900;
  RedQueue q(sched, cfg, 1);
  EXPECT_TRUE(q.enqueue(make_packet(1, 0)));
  EXPECT_TRUE(q.enqueue(make_packet(1, 1)));
  EXPECT_FALSE(q.enqueue(make_packet(1, 2)));
  EXPECT_EQ(q.stats().dropped_overflow, 1u);
  EXPECT_EQ(q.stats().dropped_early, 0u);
}

TEST(Red, AverageTracksQueue) {
  sim::Scheduler sched;
  RedConfig cfg = small_red();
  cfg.weight = 0.5;
  RedQueue q(sched, cfg, 1);
  EXPECT_DOUBLE_EQ(q.average_queue(), 0.0);
  (void)q.enqueue(make_packet(1, 0, 1000));
  (void)q.enqueue(make_packet(1, 1, 1000));
  (void)q.enqueue(make_packet(1, 2, 1000));
  EXPECT_GT(q.average_queue(), 0.0);
  EXPECT_LE(q.average_queue(), 3000.0);
}

TEST(Red, IdleDecayShrinksAverage) {
  sim::Scheduler sched;
  RedConfig cfg = small_red();
  cfg.weight = 0.5;
  RedQueue q(sched, cfg, 1);
  for (std::uint64_t i = 0; i < 10; ++i) (void)q.enqueue(make_packet(1, i));
  while (q.dequeue().has_value()) {
  }
  const double avg_before = q.average_queue();
  ASSERT_GT(avg_before, 0.0);
  // Let a long idle period elapse, then enqueue: the average must have decayed.
  sched.schedule_at(sim::Time::seconds(5), [&] { (void)q.enqueue(make_packet(1, 99)); });
  sched.run();
  EXPECT_LT(q.average_queue(), avg_before * 0.1);
}

TEST(Red, EcnMarksInsteadOfDropping) {
  sim::Scheduler sched;
  RedConfig cfg = small_red(1000 * 8900);
  cfg.weight = 0.5;
  cfg.ecn = true;
  RedQueue q(sched, cfg, 1);
  cfg.finalize();
  // Hold the queue between min and max thresholds (2 in, 1 out): the
  // probabilistic region, where every early signal must become a CE mark.
  std::uint64_t i = 0;
  while (q.byte_length() < (cfg.min_bytes + cfg.max_bytes) / 2) {
    net::Packet p = make_packet(1, i++);
    p.ecn_capable = true;
    (void)q.enqueue(std::move(p));
  }
  for (int step = 0; step < 4000; ++step) {
    net::Packet p = make_packet(1, i++);
    p.ecn_capable = true;
    (void)q.enqueue(std::move(p));
    (void)q.dequeue();
  }
  EXPECT_GT(q.stats().ecn_marked, 0u);
  EXPECT_EQ(q.stats().dropped_early, 0u);  // all early signals became marks
}

TEST(Red, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Scheduler sched;
    RedConfig cfg;
    cfg.limit_bytes = 1000 * 8900;
    cfg.weight = 0.2;
    RedQueue q(sched, cfg, seed);
    std::uint64_t drops = 0;
    for (std::uint64_t i = 0; i < 5000; ++i) {
      if (!q.enqueue(make_packet(1, i))) ++drops;
      if (i % 3 == 0) (void)q.dequeue();
    }
    return drops;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  // Different seeds should (with overwhelming probability) differ.
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace elephant::aqm
