// End-to-end tests of mixed-traffic cells: mice (finite transfers) and
// on/off sources sharing the bottleneck with the paper's elephants, built
// through exp::FlowFactory from a WorkloadSpec.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "exp/runner.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

namespace elephant::exp {
namespace {

// A cheap mixed cell: 2 paper elephants + 12 fixed-size CUBIC mice that all
// arrive in the first half of the run, so every mouse finishes comfortably.
ExperimentConfig mixed_cell() {
  ExperimentConfig cfg;
  cfg.cca1 = cca::CcaKind::kCubic;
  cfg.cca2 = cca::CcaKind::kBbrV1;
  cfg.aqm = aqm::AqmKind::kFifo;
  cfg.buffer_bdp = 1.0;
  cfg.bottleneck_bps = 100e6;
  cfg.duration = sim::Time::seconds(30);
  cfg.seed = 20240817;

  workload::TrafficClass elephants;
  elephants.name = "elephants";
  elephants.kind = workload::ClassKind::kElephant;
  elephants.cca_from_pair = true;

  workload::TrafficClass mice;
  mice.name = "mice";
  mice.kind = workload::ClassKind::kFinite;
  mice.cca = cca::CcaKind::kCubic;
  mice.count = 12;
  mice.start_offset = sim::Time::seconds(2);
  mice.start_window = sim::Time::seconds(12);
  mice.size = workload::SizeSpec::fixed(250e3);

  cfg.workload.classes = {elephants, mice};
  return cfg;
}

const ClassResult& find_class(const ExperimentResult& res, const std::string& name) {
  for (const ClassResult& c : res.classes) {
    if (c.name == name) return c;
  }
  ADD_FAILURE() << "class " << name << " missing from result";
  static ClassResult none;
  return none;
}

TEST(WorkloadRunner, MixedCellCompletesEveryMouse) {
  const ExperimentResult res = run_experiment(mixed_cell());

  // Both populations were instantiated.
  ASSERT_EQ(res.classes.size(), 2u);
  const ClassResult& elephants = find_class(res, "elephants");
  const ClassResult& mice = find_class(res, "mice");
  EXPECT_EQ(elephants.flows, 2u);  // paper Table 2 count at 100 Mbps
  EXPECT_EQ(mice.flows, 12u);

  // Every finite flow completed, with a finite, ordered FCT distribution.
  EXPECT_EQ(mice.completed, mice.flows);
  EXPECT_GT(mice.fct_p50_s, 0.0);
  EXPECT_TRUE(std::isfinite(mice.fct_p99_s));
  EXPECT_LE(mice.fct_p50_s, mice.fct_p95_s);
  EXPECT_LE(mice.fct_p95_s, mice.fct_p99_s);
  // Slowdown ≥ 1: nobody beats an empty path.
  EXPECT_GE(mice.slowdown_p50, 1.0);
  EXPECT_LE(mice.slowdown_p50, mice.slowdown_p99);

  // Mixed-traffic utilization is delivered bytes over capacity — a physical
  // quantity, so it cannot exceed 1 (plus header overhead slack).
  EXPECT_GT(res.utilization, 0.5);
  EXPECT_LE(res.utilization, 1.05);

  // Elephants never complete and dominate the byte share.
  EXPECT_EQ(elephants.completed, 0u);
  EXPECT_GT(elephants.share, mice.share);
  EXPECT_NEAR(elephants.share + mice.share, 1.0, 1e-9);

  // Per-flow rows carry the workload bookkeeping.
  std::uint32_t finite = 0;
  for (const FlowResult& fr : res.flows) {
    if (fr.cls == "mice") {
      ++finite;
      EXPECT_EQ(fr.transfer_bytes, 250000u);
      EXPECT_TRUE(fr.completed);
      EXPECT_GT(fr.fct_s, 0.0);
      EXPECT_GE(fr.start_s, 2.0);
      EXPECT_LE(fr.start_s, 14.0);
    } else {
      EXPECT_EQ(fr.cls, "elephants");
      EXPECT_FALSE(fr.completed);
    }
  }
  EXPECT_EQ(finite, 12u);
}

TEST(WorkloadRunner, SameSeedIsBitReproducible) {
  const ExperimentResult a = run_experiment(mixed_cell());
  const ExperimentResult b = run_experiment(mixed_cell());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].throughput_bps, b.flows[i].throughput_bps) << "flow " << i;
    EXPECT_EQ(a.flows[i].fct_s, b.flows[i].fct_s) << "flow " << i;
    EXPECT_EQ(a.flows[i].start_s, b.flows[i].start_s) << "flow " << i;
    EXPECT_EQ(a.flows[i].retx_segments, b.flows[i].retx_segments) << "flow " << i;
  }
  EXPECT_EQ(a.retx_segments, b.retx_segments);
  EXPECT_EQ(a.bottleneck.enqueued, b.bottleneck.enqueued);
}

TEST(WorkloadRunner, SeedChangesTheMiceDraws) {
  ExperimentConfig cfg = mixed_cell();
  const ExperimentResult a = run_experiment(cfg);
  cfg.seed = 123456789;
  const ExperimentResult b = run_experiment(cfg);
  // Start times are drawn from the per-class sub-stream of the cell seed, so
  // a different seed must move them.
  bool any_start_differs = false;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    if (a.flows[i].cls == "mice" && a.flows[i].start_s != b.flows[i].start_s) {
      any_start_differs = true;
    }
  }
  EXPECT_TRUE(any_start_differs);
}

TEST(WorkloadRunner, TraceCarriesFlowStartAndEndRecords) {
  trace::MemorySink sink;
  trace::Tracer tracer(sink, 1 << 14);
  tracer.enable_only({trace::RecordType::kFlowStart, trace::RecordType::kFlowEnd});
  ExperimentConfig cfg = mixed_cell();
  cfg.tracer = &tracer;
  const ExperimentResult res = run_experiment(cfg);
  tracer.flush();

  std::size_t starts = 0;
  std::size_t ends = 0;
  for (const trace::TraceRecord& r : sink.records()) {
    if (r.type == trace::RecordType::kFlowStart) {
      ++starts;
      EXPECT_TRUE(r.v0 == 0.0 || r.v0 == 1.0);  // class index
      EXPECT_TRUE(r.v2 == 0.0 || r.v2 == 1.0);  // dumbbell side
    } else if (r.type == trace::RecordType::kFlowEnd) {
      ++ends;
      EXPECT_EQ(r.v0, 1.0);                       // only the mice complete
      EXPECT_DOUBLE_EQ(r.v1, 250000.0);           // transfer bytes
      EXPECT_GT(r.v2, 0.0);                       // FCT seconds
    }
  }
  EXPECT_EQ(starts, res.n_flows);
  const ClassResult& mice = find_class(res, "mice");
  EXPECT_EQ(ends, mice.completed);
}

TEST(WorkloadRunner, PoissonArrivalsSpawnAndComplete) {
  ExperimentConfig cfg = mixed_cell();
  cfg.workload = workload::WorkloadSpec::poisson_web();
  cfg.duration = sim::Time::seconds(12);
  const ExperimentResult res = run_experiment(cfg);
  const ClassResult& web = find_class(res, "web");
  // ~4 arrivals/s from t=2 over 10 s → around 40; the exact count is a
  // deterministic function of the seed, but it is certainly not zero.
  EXPECT_GT(web.flows, 5u);
  EXPECT_GT(web.completed, 0u);
  EXPECT_LE(web.fct_p50_s, web.fct_p99_s);
}

TEST(WorkloadRunner, OnOffSourcesSendButNeverComplete) {
  ExperimentConfig cfg = mixed_cell();
  cfg.workload = workload::WorkloadSpec::onoff_bursts();
  cfg.duration = sim::Time::seconds(12);
  const ExperimentResult res = run_experiment(cfg);
  const ClassResult& onoff = find_class(res, "onoff");
  EXPECT_EQ(onoff.flows, 8u);
  EXPECT_EQ(onoff.completed, 0u);       // app-limited sources are unbounded
  EXPECT_GT(onoff.throughput_bps, 0.0);  // ... but they did transmit bursts
  EXPECT_LT(onoff.share, 1.0);
}

TEST(WorkloadRunner, AveragedRunCarriesClasses) {
  ExperimentConfig cfg = mixed_cell();
  const AveragedResult avg = run_averaged(cfg, /*reps=*/2, /*use_cache=*/false);
  ASSERT_EQ(avg.classes.size(), 2u);
  EXPECT_EQ(avg.classes[1].name, "mice");
  EXPECT_EQ(avg.classes[1].flows, 12u);
  EXPECT_EQ(avg.classes[1].completed, 12u);
  EXPECT_GT(avg.classes[1].fct_p50_s, 0.0);
}

TEST(WorkloadRunner, DefaultWorkloadReportsNoClasses) {
  ExperimentConfig cfg = mixed_cell();
  cfg.workload = workload::WorkloadSpec::paper();
  cfg.duration = sim::Time::seconds(5);
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_TRUE(res.classes.empty());
  for (const FlowResult& fr : res.flows) EXPECT_TRUE(fr.cls.empty());
}

}  // namespace
}  // namespace elephant::exp
