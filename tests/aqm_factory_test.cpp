#include "aqm/factory.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant::aqm {
namespace {

TEST(AqmFactory, BuildsEveryKind) {
  sim::Scheduler sched;
  for (const AqmKind kind :
       {AqmKind::kFifo, AqmKind::kRed, AqmKind::kFqCodel, AqmKind::kCodel}) {
    auto q = make_queue_disc(kind, sched, 1 << 20, 1);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->name(), to_string(kind));
    EXPECT_EQ(q->byte_length(), 0u);
  }
}

TEST(AqmFactory, AppliesLimit) {
  sim::Scheduler sched;
  auto q = make_queue_disc(AqmKind::kFifo, sched, 2 * 8900, 1);
  EXPECT_TRUE(q->enqueue(test::make_packet(1, 0)));
  EXPECT_TRUE(q->enqueue(test::make_packet(1, 1)));
  EXPECT_FALSE(q->enqueue(test::make_packet(1, 2)));
}

TEST(AqmFactory, EcnOptionFlowsThrough) {
  sim::Scheduler sched;
  AqmOptions opts;
  opts.ecn = true;
  auto red = make_queue_disc(AqmKind::kRed, sched, 1 << 20, 1, opts);
  ASSERT_NE(red, nullptr);
  const auto* typed = dynamic_cast<const RedQueue*>(red.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_TRUE(typed->config().ecn);
}

TEST(AqmFactory, FqCodelOptionsApplied) {
  sim::Scheduler sched;
  AqmOptions opts;
  opts.fq_flows = 64;
  opts.fq_quantum = 1500;
  auto q = make_queue_disc(AqmKind::kFqCodel, sched, 1 << 20, 1, opts);
  const auto* typed = dynamic_cast<const FqCodelQueue*>(q.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->config().flows, 64u);
  EXPECT_EQ(typed->config().quantum, 1500u);
}

TEST(AqmFactory, RedSeedDeterminism) {
  sim::Scheduler sched;
  auto run_drops = [&](std::uint64_t seed) {
    auto q = make_queue_disc(AqmKind::kRed, sched, 100 * 8900, seed);
    std::uint64_t drops = 0;
    for (std::uint64_t i = 0; i < 3000; ++i) {
      if (!q->enqueue(test::make_packet(1, i))) ++drops;
      if (i % 2 == 0) (void)q->dequeue();
    }
    return drops;
  };
  EXPECT_EQ(run_drops(9), run_drops(9));
}

}  // namespace
}  // namespace elephant::aqm
