#include "workload/workload.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

namespace elephant::workload {
namespace {

double sample_mean(const SizeSpec& spec, int n, std::uint64_t seed = 7) {
  sim::Rng rng(seed);
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(spec.sample(rng));
  return sum / n;
}

TEST(SizeSpec, FixedIsExact) {
  const SizeSpec s = SizeSpec::fixed(123456);
  sim::Rng rng(1);
  EXPECT_EQ(s.sample(rng), 123456u);
  EXPECT_EQ(s.sample(rng), 123456u);
}

TEST(SizeSpec, ParetoHitsConfiguredMean) {
  // Shape 2.5 has finite variance, so 200k samples settle near the mean.
  const SizeSpec s = SizeSpec::pareto(1e6, 2.5);
  const double mean = sample_mean(s, 200000);
  EXPECT_NEAR(mean, 1e6, 0.05e6);
}

TEST(SizeSpec, ParetoNeverBelowScale) {
  const SizeSpec s = SizeSpec::pareto(1e6, 1.5);
  const double x_min = 1e6 * (1.5 - 1.0) / 1.5;
  sim::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(s.sample(rng), static_cast<std::uint64_t>(x_min));
  }
}

TEST(SizeSpec, LognormalHitsConfiguredMean) {
  const SizeSpec s = SizeSpec::lognormal(1e6, 1.0);
  const double mean = sample_mean(s, 200000);
  EXPECT_NEAR(mean, 1e6, 0.1e6);
}

TEST(SizeSpec, SamplesAreAtLeastOneByte) {
  const SizeSpec tiny = SizeSpec::lognormal(1.0, 3.0);
  sim::Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(tiny.sample(rng), 1u);
}

TEST(SizeSpec, EmpiricalInterpolatesBetweenPoints) {
  // Two-point CDF: 10 KB at p=0.5, 100 KB at p=1.0. Below the first knot the
  // inverse CDF is flat at the first size; above it, linear between knots.
  const SizeSpec s = SizeSpec::empirical({{0.5, 10e3}, {1.0, 100e3}});
  sim::Rng rng(11);
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t b = s.sample(rng);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
    EXPECT_LE(b, 100000u);
  }
  EXPECT_EQ(lo, 10000u);  // u < 0.5 clamps to the first knot's size
  EXPECT_GT(hi, 90000u);
}

TEST(SizeSpec, EmpiricalMeanIsTrapezoidIntegral) {
  const SizeSpec s = SizeSpec::empirical({{1.0, 100.0}});
  // Single point: linear ramp from 100 at p=0 to 100 at p=1 → mean 100.
  EXPECT_DOUBLE_EQ(s.mean_bytes, 100.0);
}

class CdfFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("workload_cdf_" + std::to_string(::getpid()) + ".txt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  void write(const char* text) { std::ofstream(path_) << text; }
  std::filesystem::path path_;
};

TEST_F(CdfFileTest, LoadsPointsWithCommentsAndBlanks) {
  write("# web mix\n10000 0.5\n\n100000 0.9  # tail\n1000000 1.0\n");
  SizeSpec s;
  std::string error;
  ASSERT_TRUE(SizeSpec::load_cdf_file(path_.string(), &s, &error)) << error;
  EXPECT_EQ(s.dist, SizeDist::kEmpirical);
  ASSERT_EQ(s.cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(s.cdf[0].first, 0.5);
  EXPECT_DOUBLE_EQ(s.cdf[0].second, 10000.0);
  EXPECT_DOUBLE_EQ(s.cdf[2].first, 1.0);
}

TEST_F(CdfFileTest, ClosesAnOpenTail) {
  write("1000 0.5\n5000 0.9\n");
  SizeSpec s;
  std::string error;
  ASSERT_TRUE(SizeSpec::load_cdf_file(path_.string(), &s, &error)) << error;
  EXPECT_DOUBLE_EQ(s.cdf.back().first, 1.0);
}

TEST_F(CdfFileTest, RejectsDecreasingProbability) {
  write("1000 0.9\n5000 0.5\n");
  SizeSpec s;
  std::string error;
  EXPECT_FALSE(SizeSpec::load_cdf_file(path_.string(), &s, &error));
  EXPECT_NE(error.find("nondecreasing"), std::string::npos);
}

TEST_F(CdfFileTest, RejectsOutOfRangeProbability) {
  write("1000 1.5\n");
  SizeSpec s;
  std::string error;
  EXPECT_FALSE(SizeSpec::load_cdf_file(path_.string(), &s, &error));
}

TEST_F(CdfFileTest, RejectsMissingFileAndEmptyFile) {
  SizeSpec s;
  std::string error;
  EXPECT_FALSE(SizeSpec::load_cdf_file("/nonexistent/cdf.txt", &s, &error));
  write("# only comments\n");
  EXPECT_FALSE(SizeSpec::load_cdf_file(path_.string(), &s, &error));
}

TEST(Workload, DefaultIsPaperWorkload) {
  EXPECT_TRUE(WorkloadSpec{}.is_paper_default());
  EXPECT_TRUE(WorkloadSpec::paper().is_paper_default());
  EXPECT_EQ(WorkloadSpec{}.signature(), "");
  EXPECT_FALSE(WorkloadSpec::mice_elephants().is_paper_default());
}

TEST(Workload, PresetsResolveByName) {
  for (const std::string& name : WorkloadSpec::preset_names()) {
    WorkloadSpec spec;
    EXPECT_TRUE(WorkloadSpec::from_name(name, &spec)) << name;
  }
  WorkloadSpec spec;
  EXPECT_FALSE(WorkloadSpec::from_name("nope", &spec));
}

TEST(Workload, PresetShapes) {
  const WorkloadSpec mice = WorkloadSpec::mice_elephants();
  ASSERT_EQ(mice.classes.size(), 2u);
  EXPECT_EQ(mice.classes[0].kind, ClassKind::kElephant);
  EXPECT_TRUE(mice.classes[0].cca_from_pair);
  EXPECT_EQ(mice.classes[1].kind, ClassKind::kFinite);
  EXPECT_GT(mice.classes[1].count, 0u);

  const WorkloadSpec web = WorkloadSpec::poisson_web();
  ASSERT_EQ(web.classes.size(), 2u);
  EXPECT_EQ(web.classes[1].arrival, Arrival::kPoisson);
  EXPECT_GT(web.classes[1].arrival_rate_hz, 0.0);

  const WorkloadSpec onoff = WorkloadSpec::onoff_bursts();
  ASSERT_EQ(onoff.classes.size(), 2u);
  EXPECT_EQ(onoff.classes[1].kind, ClassKind::kOnOff);
}

TEST(Workload, SignaturesDistinguishPresets) {
  std::set<std::string> sigs;
  for (const std::string& name : WorkloadSpec::preset_names()) {
    WorkloadSpec spec;
    ASSERT_TRUE(WorkloadSpec::from_name(name, &spec));
    sigs.insert(spec.signature());
  }
  EXPECT_EQ(sigs.size(), WorkloadSpec::preset_names().size());
}

TEST(Workload, SignatureTracksEveryKnob) {
  WorkloadSpec a = WorkloadSpec::mice_elephants();
  WorkloadSpec b = a;
  b.classes[1].count += 1;
  EXPECT_NE(a.signature(), b.signature());
  b = a;
  b.classes[1].size.mean_bytes *= 2;
  EXPECT_NE(a.signature(), b.signature());
  b = a;
  b.classes[1].start_window = b.classes[1].start_window * 2;
  EXPECT_NE(a.signature(), b.signature());
  b = a;
  b.classes[1].cca = cca::CcaKind::kReno;
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Workload, EmpiricalSignatureHashesThePointTable) {
  const SizeSpec a = SizeSpec::empirical({{0.5, 1000.0}, {1.0, 5000.0}});
  const SizeSpec b = SizeSpec::empirical({{0.5, 1000.0}, {1.0, 5001.0}});
  EXPECT_NE(a.signature(), b.signature());
  const SizeSpec c = SizeSpec::empirical({{0.5, 1000.0}, {1.0, 5000.0}});
  EXPECT_EQ(a.signature(), c.signature());
}

TEST(Workload, ToStringCoversAllEnumerators) {
  EXPECT_STREQ(to_string(ClassKind::kElephant), "elephant");
  EXPECT_STREQ(to_string(ClassKind::kFinite), "finite");
  EXPECT_STREQ(to_string(ClassKind::kOnOff), "onoff");
  EXPECT_STREQ(to_string(Arrival::kStagger), "stagger");
  EXPECT_STREQ(to_string(Arrival::kPoisson), "poisson");
  EXPECT_STREQ(to_string(SizeDist::kFixed), "fixed");
  EXPECT_STREQ(to_string(SizeDist::kPareto), "pareto");
  EXPECT_STREQ(to_string(SizeDist::kLognormal), "lognormal");
  EXPECT_STREQ(to_string(SizeDist::kEmpirical), "empirical");
}

}  // namespace
}  // namespace elephant::workload
