#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "tcp/flow.hpp"

namespace elephant::tcp {
namespace {

struct Fixture {
  sim::Scheduler sched;
  net::Dumbbell net;
  Fixture() : net(sched, topo()) {}
  static net::DumbbellConfig topo() {
    net::DumbbellConfig cfg;
    cfg.bottleneck_bps = 100e6;
    cfg.bottleneck_buffer_bytes = static_cast<std::size_t>(2 * 100e6 * 0.062 / 8);
    return cfg;
  }
  Flow flow(net::FlowId id, std::uint64_t bytes, sim::Time start = sim::Time::zero(),
            std::uint32_t agg = 1) {
    FlowConfig fc;
    fc.id = id;
    fc.cca = cca::CcaKind::kCubic;
    fc.transfer_bytes = bytes;
    fc.start_time = start;
    fc.agg = agg;
    fc.seed = id;
    return Flow(sched, net.client(0), net.server(0), fc);
  }
};

TEST(FiniteTransfer, CompletesAndRecordsFct) {
  Fixture f;
  Flow mouse = f.flow(1, 890'000);  // 100 units
  mouse.start();
  f.sched.run_until(sim::Time::seconds(5));
  EXPECT_TRUE(mouse.completed());
  // ≥1 RTT; well under a second at 100 Mb/s.
  EXPECT_GT(mouse.completion_time(), sim::Time::milliseconds(62));
  EXPECT_LT(mouse.completion_time(), sim::Time::seconds(1));
}

TEST(FiniteTransfer, DeliversExactlyTheObject) {
  Fixture f;
  Flow mouse = f.flow(1, 890'000);
  mouse.start();
  f.sched.run_until(sim::Time::seconds(5));
  EXPECT_EQ(mouse.receiver().delivered_units(), 100u);
  EXPECT_EQ(mouse.receiver().delivered_bytes(), 890'000u);
}

TEST(FiniteTransfer, SizeRoundsUpToUnits) {
  Fixture f;
  Flow odd = f.flow(1, 10'000, sim::Time::zero(), /*agg=*/1);  // 2 units of 8900
  odd.start();
  f.sched.run_until(sim::Time::seconds(2));
  EXPECT_TRUE(odd.completed());
  EXPECT_EQ(odd.receiver().delivered_units(), 2u);
}

TEST(FiniteTransfer, FctMeasuredFromConfiguredStart) {
  Fixture f;
  Flow late = f.flow(1, 890'000, sim::Time::seconds(3));
  late.start();
  f.sched.run_until(sim::Time::seconds(10));
  ASSERT_TRUE(late.completed());
  EXPECT_LT(late.completion_time(), sim::Time::seconds(2));
}

TEST(FiniteTransfer, UnboundedFlowNeverCompletes) {
  Fixture f;
  Flow elephant = f.flow(1, 0);
  elephant.start();
  f.sched.run_until(sim::Time::seconds(3));
  EXPECT_FALSE(elephant.completed());
  EXPECT_EQ(elephant.completion_time(), sim::Time::zero());
}

TEST(FiniteTransfer, CompletesDespiteLosses) {
  Fixture f;
  // Elephant floods the queue; the mouse still completes (retransmissions).
  Flow elephant = f.flow(1, 0);
  Flow mouse = f.flow(2, 890'000, sim::Time::seconds(2));
  elephant.start();
  mouse.start();
  f.sched.run_until(sim::Time::seconds(30));
  EXPECT_TRUE(mouse.completed());
}

TEST(FiniteTransfer, CompletionCallbackFiresOnceAndReleasesTimers) {
  Fixture f;
  Flow mouse = f.flow(1, 890'000);
  int completions = 0;
  sim::Time completed_at;
  mouse.sender().set_on_complete([&] {
    ++completions;
    completed_at = f.sched.now();
  });
  mouse.start();
  // Unbounded run: terminates only when no strong events remain. A dangling
  // RTO timer (>= 200 ms min RTO) would hold the run open well past the
  // completion instant; the delayed-ACK timer accounts for at most 40 ms.
  f.sched.run();
  ASSERT_TRUE(mouse.completed());
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(completed_at, mouse.sender().completion_time());
  EXPECT_LE(f.sched.now(), mouse.sender().completion_time() + sim::Time::milliseconds(100));
  EXPECT_EQ(f.sched.strong_pending_events(), 0u);
}

TEST(AppLimited, SendsOnlyOfferedData) {
  Fixture f;
  FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  fc.app_limited = true;
  fc.seed = 1;
  Flow flow(f.sched, f.net.client(0), f.net.server(0), fc);
  flow.start();
  flow.sender().offer_units(10);
  f.sched.run_until(sim::Time::seconds(5));
  EXPECT_EQ(flow.receiver().delivered_units(), 10u);
  EXPECT_FALSE(flow.completed());  // app-limited flows are unbounded
}

TEST(AppLimited, IdleCallbackDrivesNextBurst) {
  Fixture f;
  FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  fc.app_limited = true;
  fc.seed = 1;
  Flow flow(f.sched, f.net.client(0), f.net.server(0), fc);
  int idles = 0;
  flow.sender().set_on_app_idle([&] {
    ++idles;
    // Think for 500 ms, then offer the next burst (three bursts total).
    if (idles < 3) {
      f.sched.schedule_in(sim::Time::milliseconds(500),
                          [&] { flow.sender().offer_units(5); });
    }
  });
  flow.start();
  flow.sender().offer_units(5);
  f.sched.run_until(sim::Time::seconds(20));
  EXPECT_EQ(idles, 3);
  EXPECT_EQ(flow.receiver().delivered_units(), 15u);
}

TEST(AppLimited, OfferBeforeStartIsHeldUntilStartTime) {
  Fixture f;
  FlowConfig fc;
  fc.id = 1;
  fc.cca = cca::CcaKind::kCubic;
  fc.app_limited = true;
  fc.start_time = sim::Time::seconds(2);
  fc.seed = 1;
  Flow flow(f.sched, f.net.client(0), f.net.server(0), fc);
  flow.start();
  flow.sender().offer_units(4);
  f.sched.run_until(sim::Time::seconds(1));
  EXPECT_EQ(flow.receiver().delivered_units(), 0u);
  f.sched.run_until(sim::Time::seconds(5));
  EXPECT_EQ(flow.receiver().delivered_units(), 4u);
}

TEST(FiniteTransfer, FctWorsensBehindBufferbloat) {
  // A mouse behind a CUBIC elephant in a deep FIFO waits out the standing
  // queue; the same mouse alone is far faster.
  Fixture alone;
  Flow solo = alone.flow(1, 890'000);
  solo.start();
  alone.sched.run_until(sim::Time::seconds(10));
  ASSERT_TRUE(solo.completed());

  Fixture busy;
  Flow elephant = busy.flow(1, 0);
  Flow mouse = busy.flow(2, 890'000, sim::Time::seconds(5));
  elephant.start();
  mouse.start();
  busy.sched.run_until(sim::Time::seconds(40));
  ASSERT_TRUE(mouse.completed());
  EXPECT_GT(mouse.completion_time(), solo.completion_time());
}

}  // namespace
}  // namespace elephant::tcp
