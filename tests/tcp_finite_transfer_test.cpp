#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "tcp/flow.hpp"

namespace elephant::tcp {
namespace {

struct Fixture {
  sim::Scheduler sched;
  net::Dumbbell net;
  Fixture() : net(sched, topo()) {}
  static net::DumbbellConfig topo() {
    net::DumbbellConfig cfg;
    cfg.bottleneck_bps = 100e6;
    cfg.bottleneck_buffer_bytes = static_cast<std::size_t>(2 * 100e6 * 0.062 / 8);
    return cfg;
  }
  Flow flow(net::FlowId id, std::uint64_t bytes, sim::Time start = sim::Time::zero(),
            std::uint32_t agg = 1) {
    FlowConfig fc;
    fc.id = id;
    fc.cca = cca::CcaKind::kCubic;
    fc.transfer_bytes = bytes;
    fc.start_time = start;
    fc.agg = agg;
    fc.seed = id;
    return Flow(sched, net.client(0), net.server(0), fc);
  }
};

TEST(FiniteTransfer, CompletesAndRecordsFct) {
  Fixture f;
  Flow mouse = f.flow(1, 890'000);  // 100 units
  mouse.start();
  f.sched.run_until(sim::Time::seconds(5));
  EXPECT_TRUE(mouse.completed());
  // ≥1 RTT; well under a second at 100 Mb/s.
  EXPECT_GT(mouse.completion_time(), sim::Time::milliseconds(62));
  EXPECT_LT(mouse.completion_time(), sim::Time::seconds(1));
}

TEST(FiniteTransfer, DeliversExactlyTheObject) {
  Fixture f;
  Flow mouse = f.flow(1, 890'000);
  mouse.start();
  f.sched.run_until(sim::Time::seconds(5));
  EXPECT_EQ(mouse.receiver().delivered_units(), 100u);
  EXPECT_EQ(mouse.receiver().delivered_bytes(), 890'000u);
}

TEST(FiniteTransfer, SizeRoundsUpToUnits) {
  Fixture f;
  Flow odd = f.flow(1, 10'000, sim::Time::zero(), /*agg=*/1);  // 2 units of 8900
  odd.start();
  f.sched.run_until(sim::Time::seconds(2));
  EXPECT_TRUE(odd.completed());
  EXPECT_EQ(odd.receiver().delivered_units(), 2u);
}

TEST(FiniteTransfer, FctMeasuredFromConfiguredStart) {
  Fixture f;
  Flow late = f.flow(1, 890'000, sim::Time::seconds(3));
  late.start();
  f.sched.run_until(sim::Time::seconds(10));
  ASSERT_TRUE(late.completed());
  EXPECT_LT(late.completion_time(), sim::Time::seconds(2));
}

TEST(FiniteTransfer, UnboundedFlowNeverCompletes) {
  Fixture f;
  Flow elephant = f.flow(1, 0);
  elephant.start();
  f.sched.run_until(sim::Time::seconds(3));
  EXPECT_FALSE(elephant.completed());
  EXPECT_EQ(elephant.completion_time(), sim::Time::zero());
}

TEST(FiniteTransfer, CompletesDespiteLosses) {
  Fixture f;
  // Elephant floods the queue; the mouse still completes (retransmissions).
  Flow elephant = f.flow(1, 0);
  Flow mouse = f.flow(2, 890'000, sim::Time::seconds(2));
  elephant.start();
  mouse.start();
  f.sched.run_until(sim::Time::seconds(30));
  EXPECT_TRUE(mouse.completed());
}

TEST(FiniteTransfer, FctWorsensBehindBufferbloat) {
  // A mouse behind a CUBIC elephant in a deep FIFO waits out the standing
  // queue; the same mouse alone is far faster.
  Fixture alone;
  Flow solo = alone.flow(1, 890'000);
  solo.start();
  alone.sched.run_until(sim::Time::seconds(10));
  ASSERT_TRUE(solo.completed());

  Fixture busy;
  Flow elephant = busy.flow(1, 0);
  Flow mouse = busy.flow(2, 890'000, sim::Time::seconds(5));
  elephant.start();
  mouse.start();
  busy.sched.run_until(sim::Time::seconds(40));
  ASSERT_TRUE(mouse.completed());
  EXPECT_GT(mouse.completion_time(), solo.completion_time());
}

}  // namespace
}  // namespace elephant::tcp
