#include "tcp/flow.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace elephant::tcp {
namespace {

struct Fixture {
  sim::Scheduler sched;
  net::Dumbbell net;

  Fixture() : net(sched, make_topo()) {}

  static net::DumbbellConfig make_topo() {
    net::DumbbellConfig cfg;
    cfg.bottleneck_bps = 100e6;
    cfg.bottleneck_buffer_bytes = static_cast<std::size_t>(2 * 100e6 * 0.062 / 8);
    return cfg;
  }

  Flow make_flow(net::FlowId id, cca::CcaKind kind, std::uint32_t agg = 1) {
    FlowConfig fc;
    fc.id = id;
    fc.cca = kind;
    fc.agg = agg;
    fc.seed = id * 7919;
    return Flow(sched, net.client(0), net.server(0), fc);
  }
};

TEST(Flow, TransfersDataEndToEnd) {
  Fixture f;
  Flow flow = f.make_flow(1, cca::CcaKind::kCubic);
  flow.start();
  f.sched.run_until(sim::Time::seconds(10));
  EXPECT_GT(flow.receiver().delivered_units(), 1000u);
  EXPECT_GT(flow.goodput_bps(sim::Time::seconds(10)), 50e6);
}

TEST(Flow, GoodputZeroBeforeStart) {
  Fixture f;
  Flow flow = f.make_flow(1, cca::CcaKind::kReno);
  EXPECT_DOUBLE_EQ(flow.goodput_bps(sim::Time::zero()), 0.0);
  EXPECT_DOUBLE_EQ(flow.goodput_bps(sim::Time::seconds(1)), 0.0);
}

TEST(Flow, StopHaltsNewData) {
  Fixture f;
  Flow flow = f.make_flow(1, cca::CcaKind::kCubic);
  flow.start();
  f.sched.run_until(sim::Time::seconds(2));
  flow.stop();
  f.sched.run_until(sim::Time::seconds(4));
  const auto delivered_at_4 = flow.receiver().delivered_units();
  f.sched.run_until(sim::Time::seconds(8));
  // Everything in flight at stop() has long landed; no new data flows.
  EXPECT_EQ(flow.receiver().delivered_units(), delivered_at_4);
}

TEST(Flow, CcaSelectionIsHonored) {
  Fixture f;
  Flow bbr = f.make_flow(1, cca::CcaKind::kBbrV1);
  Flow reno = f.make_flow(2, cca::CcaKind::kReno);
  EXPECT_EQ(bbr.sender().cc().name(), "bbr1");
  EXPECT_EQ(reno.sender().cc().name(), "reno");
}

TEST(Flow, AggregationAppliesToWirePackets) {
  Fixture f;
  Flow flow = f.make_flow(1, cca::CcaKind::kCubic, /*agg=*/4);
  flow.start();
  f.sched.run_until(sim::Time::seconds(5));
  // Receiver counts bytes: all units are agg*mss on the wire.
  EXPECT_EQ(flow.receiver().delivered_bytes() % (4 * 8900), 0u);
  EXPECT_GT(flow.receiver().delivered_bytes(), 0u);
}

TEST(Flow, TwoFlowsShareOneHostPair) {
  Fixture f;
  Flow a = f.make_flow(1, cca::CcaKind::kCubic);
  Flow b = f.make_flow(2, cca::CcaKind::kCubic);
  a.start();
  b.start();
  f.sched.run_until(sim::Time::seconds(20));
  const double ga = a.goodput_bps(sim::Time::seconds(20));
  const double gb = b.goodput_bps(sim::Time::seconds(20));
  EXPECT_GT(ga, 10e6);
  EXPECT_GT(gb, 10e6);
  EXPECT_LT(ga + gb, 100e6 * 1.02);
}

}  // namespace
}  // namespace elephant::tcp
