#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "trace/codec.hpp"
#include "trace/sinks.hpp"

namespace elephant::trace {
namespace {

TraceRecord make_record(std::int64_t t_us, RecordType type, std::uint32_t flow,
                        std::uint64_t seq, double v0 = 0, double v1 = 0, double v2 = 0) {
  TraceRecord r;
  r.t = sim::Time::microseconds(t_us);
  r.type = type;
  r.flow = flow;
  r.seq = seq;
  r.v0 = v0;
  r.v1 = v1;
  r.v2 = v2;
  return r;
}

TEST(Tracer, RecordsReachSinkOnFlush) {
  MemorySink sink;
  Tracer tracer(sink, 16);
  tracer.record(make_record(1, RecordType::kCwndUpdate, 7, 0, 10.0));
  tracer.record(make_record(2, RecordType::kPacketSent, 7, 1, 8900.0));
  EXPECT_TRUE(sink.records().empty());  // buffered, not yet drained
  tracer.flush();
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].type, RecordType::kCwndUpdate);
  EXPECT_EQ(sink.records()[1].seq, 1u);
  EXPECT_EQ(tracer.recorded(), 2u);
}

TEST(Tracer, DrainModeSpillsAtCapacityWithoutLoss) {
  MemorySink sink;
  Tracer tracer(sink, 4, Overflow::kDrain);
  for (int i = 0; i < 10; ++i) {
    tracer.record(make_record(i, RecordType::kPacketSent, 1, static_cast<std::uint64_t>(i)));
  }
  tracer.flush();
  ASSERT_EQ(sink.records().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.records()[i].seq, static_cast<std::uint64_t>(i));
  }
}

TEST(Tracer, OverwriteModeKeepsLastNInOrder) {
  MemorySink sink;
  Tracer tracer(sink, 4, Overflow::kOverwrite);
  for (int i = 0; i < 10; ++i) {
    tracer.record(make_record(i, RecordType::kPacketSent, 1, static_cast<std::uint64_t>(i)));
  }
  tracer.flush();
  // Capacity 4: the flight recorder retains records 6..9, chronologically.
  ASSERT_EQ(sink.records().size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.records()[i].seq, static_cast<std::uint64_t>(6 + i));
  }
  EXPECT_EQ(tracer.recorded(), 10u);  // counts overwritten records too
}

TEST(Tracer, MaskFiltersDisabledTypes) {
  MemorySink sink;
  Tracer tracer(sink, 16);
  EXPECT_TRUE(tracer.enabled(RecordType::kSackMark));
  tracer.enable_only({RecordType::kCwndUpdate, RecordType::kQueueDepth});
  EXPECT_FALSE(tracer.enabled(RecordType::kSackMark));
  tracer.record(make_record(1, RecordType::kCwndUpdate, 1, 0));
  tracer.record(make_record(2, RecordType::kSackMark, 1, 5));
  tracer.record(make_record(3, RecordType::kQueueDepth, 0, 0));
  tracer.enable(RecordType::kSackMark, true);
  tracer.record(make_record(4, RecordType::kSackMark, 1, 6));
  tracer.flush();
  ASSERT_EQ(sink.records().size(), 3u);
  EXPECT_EQ(sink.records()[0].type, RecordType::kCwndUpdate);
  EXPECT_EQ(sink.records()[1].type, RecordType::kQueueDepth);
  EXPECT_EQ(sink.records()[2].seq, 6u);
}

TEST(Tracer, DestructorFlushes) {
  MemorySink sink;
  {
    Tracer tracer(sink, 16);
    tracer.record(make_record(1, RecordType::kRtoFire, 3, 9, 2.0, 400.0, 5.0));
  }
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].v1, 400.0);
}

TEST(Tracer, FlushIsIdempotent) {
  MemorySink sink;
  Tracer tracer(sink, 16);
  tracer.record(make_record(1, RecordType::kAqmDrop, 2, 11));
  tracer.flush();
  tracer.flush();
  EXPECT_EQ(sink.records().size(), 1u);
}

TEST(RecordType, NamesRoundTrip) {
  for (std::size_t i = 0; i < kRecordTypeCount; ++i) {
    const auto type = static_cast<RecordType>(i);
    RecordType parsed;
    ASSERT_TRUE(record_type_from_string(to_string(type), &parsed)) << to_string(type);
    EXPECT_EQ(parsed, type);
  }
  RecordType parsed;
  EXPECT_FALSE(record_type_from_string("nonsense", &parsed));
}

TEST(Codec, CsvRoundTripIsLossless) {
  // Awkward values on purpose: negative-exponent doubles, full uint64 seq,
  // sub-microsecond timestamps.
  std::vector<TraceRecord> records = {
      make_record(0, RecordType::kCwndUpdate, 1, 0, 10.000000000000002, 1.25e9, 62.125),
      make_record(123456789, RecordType::kAqmDrop, 4294967295u, 18446744073709551615ull,
                  -1.5e-300, 3.14159265358979312, 1.0),
      make_record(7, RecordType::kQueueDepth, 0, 0, 0.0, 0.1, 1e308),
      make_record(5000000, RecordType::kFlowStart, 12, 0, 1.0, 450000.0, 1.0),
      make_record(5480000, RecordType::kFlowEnd, 12, 0, 1.0, 450000.0, 0.48),
  };
  for (const TraceRecord& r : records) {
    std::string line;
    append_csv(r, &line);
    TraceRecord back;
    ASSERT_TRUE(parse_csv(line, &back)) << line;
    EXPECT_EQ(back, r) << line;
  }
}

TEST(Codec, JsonlRoundTripIsLossless) {
  std::vector<TraceRecord> records = {
      make_record(987654321, RecordType::kSackMark, 12, 345, 4.0, 17.0, 2.0),
      make_record(1, RecordType::kPacketRetx, 2, 99, 8900.0, 3.0, 1.0),
  };
  for (const TraceRecord& r : records) {
    std::string line;
    append_jsonl(r, &line);
    TraceRecord back;
    ASSERT_TRUE(parse_jsonl(line, &back)) << line;
    EXPECT_EQ(back, r) << line;
  }
}

TEST(Codec, ParseRejectsGarbage) {
  TraceRecord out;
  EXPECT_FALSE(parse_csv("", &out));
  EXPECT_FALSE(parse_csv(csv_header(), &out));
  EXPECT_FALSE(parse_csv("1,2,3", &out));
  EXPECT_FALSE(parse_csv("x,cwnd_update,1,0,0,0,0", &out));
  EXPECT_FALSE(parse_csv("1,not_a_type,1,0,0,0,0", &out));
  EXPECT_FALSE(parse_jsonl("", &out));
  EXPECT_FALSE(parse_jsonl("{}", &out));
  EXPECT_FALSE(parse_jsonl("not json", &out));
}

TEST(Sinks, CsvSinkWritesHeaderAndRows) {
  std::ostringstream out;
  {
    CsvSink sink(out);
    Tracer tracer(sink, 8);
    tracer.record(make_record(1000, RecordType::kPacketSent, 7, 42, 8900.0, 3.0));
  }
  std::istringstream in(out.str());
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(header, csv_header());
  TraceRecord back;
  ASSERT_TRUE(parse_csv(row, &back));
  EXPECT_EQ(back.flow, 7u);
  EXPECT_EQ(back.seq, 42u);
}

TEST(Sinks, TeeFansOutToAllSinks) {
  MemorySink a;
  NullSink b;
  TeeSink tee({&a, &b});
  Tracer tracer(tee, 8);
  tracer.record(make_record(1, RecordType::kAqmEnqueue, 1, 2));
  tracer.flush();
  EXPECT_EQ(a.records().size(), 1u);
  EXPECT_EQ(b.count(), 1u);
}

}  // namespace
}  // namespace elephant::trace
