#include "net/port.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "aqm/fifo.hpp"
#include "net/node.hpp"
#include "test_util.hpp"

namespace elephant::net {
namespace {

using test::make_packet;

/// Records every packet it receives, with arrival time.
class SinkNode : public Node {
 public:
  SinkNode(sim::Scheduler& sched, NodeId id) : Node(id, "sink"), sched_(sched) {}
  void receive(Packet&& p) override {
    arrivals.push_back({sched_.now(), std::move(p)});
  }
  struct Arrival {
    sim::Time t;
    Packet p;
  };
  std::vector<Arrival> arrivals;

 private:
  sim::Scheduler& sched_;
};

std::unique_ptr<Port> make_port(sim::Scheduler& sched, double bps, sim::Time delay, Node* to,
               std::size_t buf = 1 << 24) {
  auto p = std::make_unique<Port>(sched, std::make_unique<aqm::FifoQueue>(sched, buf), bps, delay, "test");
  p->connect(to);
  return p;
}

TEST(Port, DeliversAfterSerializationPlusPropagation) {
  sim::Scheduler sched;
  SinkNode sink(sched, 2);
  // 1 Mb/s, 10 ms propagation, 12500-byte packet → 100 ms + 10 ms.
  auto port_ptr = make_port(sched, 1e6, sim::Time::milliseconds(10), &sink);
  Port& port = *port_ptr;
  port.send(make_packet(1, 0, 12500));
  sched.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].t, sim::Time::milliseconds(110));
}

TEST(Port, BackToBackPacketsSerialize) {
  sim::Scheduler sched;
  SinkNode sink(sched, 2);
  auto port_ptr = make_port(sched, 1e6, sim::Time::zero(), &sink);
  Port& port = *port_ptr;
  port.send(make_packet(1, 0, 12500));  // 100 ms each
  port.send(make_packet(1, 1, 12500));
  port.send(make_packet(1, 2, 12500));
  sched.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].t, sim::Time::milliseconds(100));
  EXPECT_EQ(sink.arrivals[1].t, sim::Time::milliseconds(200));
  EXPECT_EQ(sink.arrivals[2].t, sim::Time::milliseconds(300));
}

TEST(Port, PreservesOrder) {
  sim::Scheduler sched;
  SinkNode sink(sched, 2);
  auto port_ptr = make_port(sched, 1e9, sim::Time::milliseconds(1), &sink);
  Port& port = *port_ptr;
  for (std::uint64_t i = 0; i < 50; ++i) port.send(make_packet(1, i, 1500));
  sched.run();
  ASSERT_EQ(sink.arrivals.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(sink.arrivals[i].p.seq, i);
}

TEST(Port, CountsTransmitted) {
  sim::Scheduler sched;
  SinkNode sink(sched, 2);
  auto port_ptr = make_port(sched, 1e9, sim::Time::zero(), &sink);
  Port& port = *port_ptr;
  port.send(make_packet(1, 0, 1000));
  port.send(make_packet(1, 1, 500));
  sched.run();
  EXPECT_EQ(port.tx_packets(), 2u);
  EXPECT_EQ(port.tx_bytes(), 1500u);
}

TEST(Port, DropsDoNotReachPeer) {
  sim::Scheduler sched;
  SinkNode sink(sched, 2);
  auto port_ptr = make_port(sched, 1e3, sim::Time::zero(), &sink, 2 * 8900);  // tiny buffer
  Port& port = *port_ptr;
  for (std::uint64_t i = 0; i < 10; ++i) port.send(make_packet(1, i));
  sched.run();
  // Transmission is slow (1 kb/s) but everything fits or drops; only
  // non-dropped packets arrive.
  EXPECT_EQ(sink.arrivals.size(), port.tx_packets());
  EXPECT_LT(sink.arrivals.size(), 10u);
  EXPECT_GT(port.qdisc().stats().dropped_overflow, 0u);
}

TEST(Port, IdleThenBusyRestartsCleanly) {
  sim::Scheduler sched;
  SinkNode sink(sched, 2);
  auto port_ptr = make_port(sched, 1e6, sim::Time::zero(), &sink);
  Port& port = *port_ptr;
  port.send(make_packet(1, 0, 12500));
  sched.run();
  // Send another after the line went idle.
  sched.schedule_at(sim::Time::seconds(1), [&] { port.send(make_packet(1, 1, 12500)); });
  sched.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[1].t, sim::Time::seconds(1.1));
}

TEST(Router, ForwardsByDestination) {
  sim::Scheduler sched;
  SinkNode a(sched, 10);
  SinkNode b(sched, 11);
  Router router(3, "r");
  auto to_a_ptr = make_port(sched, 1e9, sim::Time::zero(), &a);
  Port& to_a = *to_a_ptr;
  auto to_b_ptr = make_port(sched, 1e9, sim::Time::zero(), &b);
  Port& to_b = *to_b_ptr;
  router.set_route(10, &to_a);
  router.set_route(11, &to_b);

  Packet p1 = make_packet(1, 0);
  p1.dst = 10;
  Packet p2 = make_packet(2, 0);
  p2.dst = 11;
  router.receive(std::move(p1));
  router.receive(std::move(p2));
  sched.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(router.forwarded(), 2u);
}

TEST(Router, DropsUnroutable) {
  Router router(3, "r");
  Packet p = make_packet(1, 0);
  p.dst = 99;
  router.receive(std::move(p));
  EXPECT_EQ(router.no_route_drops(), 1u);
}

TEST(Host, DemuxesByFlow) {
  sim::Scheduler sched;
  Host host(5, "h");
  struct Counter : PacketHandler {
    int count = 0;
    void on_packet(Packet&&) override { ++count; }
  };
  Counter f1, f2;
  host.register_endpoint(1, &f1);
  host.register_endpoint(2, &f2);
  host.receive(make_packet(1, 0));
  host.receive(make_packet(2, 0));
  host.receive(make_packet(2, 1));
  EXPECT_EQ(f1.count, 1);
  EXPECT_EQ(f2.count, 2);
  // Unknown flow is counted, not crashed on.
  host.receive(make_packet(9, 0));
  EXPECT_EQ(host.no_endpoint_drops(), 1u);
}

}  // namespace
}  // namespace elephant::net
