// Proves the event engine's zero-allocation steady state: after warm-up
// (slot/heap/ring growth to the high-water mark, callback pool priming), a
// loss-free paper-style cell must run without a single call to the global
// allocator. A regression here means some per-packet path regrew a
// std::function, deque block, or heap node.
//
// The hook below replaces global operator new/delete for the whole test
// binary with counting malloc/free wrappers; every other test runs on it
// too, which is harmless.
//
// The measured scenario is a single BBRv1 flow into a deep FIFO buffer:
// bounded cwnd, no loss, no reordering — so the known allocating paths that
// are deliberately out of scope (the receiver's out-of-order interval map,
// fault-injection captures) stay cold. Loss-path allocations are bounded by
// episode count, not packet count, and are documented in DESIGN.md.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "cca/congestion_control.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t n, std::size_t align) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    if (posix_memalign(&p, align, n) != 0) throw std::bad_alloc();
  } else {
    p = std::malloc(n > 0 ? n : 1);
    if (p == nullptr) throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n, 0); }
void* operator new[](std::size_t n) { return counted_alloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace elephant {
namespace {

TEST(AllocSteadyState, NoAllocationsAfterWarmup) {
  sim::Scheduler sched;

  net::DumbbellConfig topo;
  topo.bottleneck_bps = 100e6;
  topo.aqm = aqm::AqmKind::kFifo;
  topo.bottleneck_buffer_bytes = std::size_t{16} << 20;  // deep: no loss
  net::Dumbbell net(sched, topo);

  cca::CcaParams cp;
  cp.mss_bytes = 8900;
  cp.seed = 7;
  tcp::TcpSenderConfig sc;
  sc.flow = 1;
  sc.src = net.client(0).id();
  sc.dst = net.server(0).id();
  sc.mss = 8900;

  tcp::TcpReceiver receiver(sched, net.server(0), net.client(0).id(), 1);
  tcp::TcpSender sender(sched, net.client(0), sc,
                        cca::make_cca(cca::CcaKind::kBbrV1, cp));
  net.client(0).register_endpoint(1, &sender);
  net.server(0).register_endpoint(1, &receiver);
  sender.start();

  // Warm-up: slow start, BBR STARTUP overshoot, one full ProbeBW gain
  // cycle — every container reaches its high-water mark.
  sched.run_until(sim::Time::seconds(2));
  ASSERT_GT(receiver.delivered_units(), 0u) << "warm-up produced no traffic";

  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  sched.run_until(sim::Time::seconds(6));
  const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady state touched the allocator " << (after - before) << " times";
  EXPECT_EQ(sender.stats().rtos, 0u) << "scenario invalid: RTO fired";
  EXPECT_EQ(sender.stats().retx_units, 0u) << "scenario invalid: loss occurred";
}

// The telemetry layer's steady-state contract: registration may allocate
// (find-or-create inserts a map node), but every subsequent counter bump,
// gauge store, histogram record, and scoped-timer sample is allocation-free —
// that is what makes it safe to leave instrumentation wired into per-packet
// paths.
TEST(AllocSteadyState, MetricsUpdatesAreAllocationFree) {
  obs::MetricsRegistry reg;
  obs::Counter& counter = reg.counter("sim.events");
  obs::Gauge& gauge = reg.gauge("tcp.cwnd_segments");
  obs::LogLinHistogram& hist = reg.histogram("queue.sojourn_s");
  hist.record(1e-3);  // histograms are fixed arrays; no lazy growth to prime

  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    counter.add();
    gauge.set(static_cast<double>(i));
    hist.record(1e-6 * static_cast<double>(i + 1));
    obs::ScopedTimer timer(&hist);
  }
  (void)hist.quantile(0.99);  // reads are allocation-free too
  const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "metrics steady state touched the allocator " << (after - before) << " times";
  EXPECT_EQ(counter.value(), 100000u);
  EXPECT_EQ(hist.count(), 200001u);
}

// Same proof end-to-end: the instrumented single-flow scenario above must
// stay allocation-free with live scheduler/queue/TCP metric handles attached,
// not just with the registry exercised in isolation.
TEST(AllocSteadyState, InstrumentedRunStaysAllocationFree) {
  obs::MetricsRegistry reg;
  obs::SchedulerMetrics sched_metrics;
  sched_metrics.events_executed = &reg.gauge("sim.events_executed");
  sched_metrics.heap_depth = &reg.gauge("sim.heap_depth");
  sched_metrics.heap_peak = &reg.gauge("sim.heap_peak");
  obs::QueueMetrics queue_metrics;
  queue_metrics.sojourn_s = &reg.histogram("queue.sojourn_s");
  obs::TcpMetrics tcp_metrics;
  tcp_metrics.cwnd_segments = &reg.gauge("tcp.cwnd_segments");
  tcp_metrics.srtt_s = &reg.histogram("tcp.srtt_s");

  sim::Scheduler sched;
  sched.set_metrics(&sched_metrics);

  net::DumbbellConfig topo;
  topo.bottleneck_bps = 100e6;
  topo.aqm = aqm::AqmKind::kFifo;
  topo.bottleneck_buffer_bytes = std::size_t{16} << 20;
  net::Dumbbell net(sched, topo);
  net.bottleneck().set_metrics(&queue_metrics);

  cca::CcaParams cp;
  cp.mss_bytes = 8900;
  cp.seed = 7;
  tcp::TcpSenderConfig sc;
  sc.flow = 1;
  sc.src = net.client(0).id();
  sc.dst = net.server(0).id();
  sc.mss = 8900;

  tcp::TcpReceiver receiver(sched, net.server(0), net.client(0).id(), 1);
  tcp::TcpSender sender(sched, net.client(0), sc,
                        cca::make_cca(cca::CcaKind::kBbrV1, cp));
  sender.set_metrics(&tcp_metrics);
  net.client(0).register_endpoint(1, &sender);
  net.server(0).register_endpoint(1, &receiver);
  sender.start();

  sched.run_until(sim::Time::seconds(2));
  ASSERT_GT(receiver.delivered_units(), 0u) << "warm-up produced no traffic";

  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  sched.run_until(sim::Time::seconds(6));
  const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "instrumented steady state touched the allocator " << (after - before)
      << " times";
  // And the instrumentation actually observed the run.
  EXPECT_GT(reg.gauge("sim.events_executed").value(), 0.0);
  EXPECT_GT(reg.histogram("queue.sojourn_s").count(), 0u);
  EXPECT_GT(reg.histogram("tcp.srtt_s").count(), 0u);
  EXPECT_GT(reg.gauge("tcp.cwnd_segments").value(), 0.0);
}

}  // namespace
}  // namespace elephant
