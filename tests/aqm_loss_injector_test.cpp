#include "aqm/loss_injector.hpp"

#include <gtest/gtest.h>

#include "aqm/fifo.hpp"
#include "aqm/red.hpp"
#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

LossInjector make(sim::Scheduler& sched, double rate, std::uint64_t seed = 1,
                  std::size_t limit = std::size_t{1} << 30) {
  return LossInjector(sched, std::make_unique<FifoQueue>(sched, limit), rate, seed);
}

TEST(LossInjector, ZeroRatePassesEverything) {
  sim::Scheduler sched;
  auto q = make(sched, 0.0);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(q.enqueue(make_packet(1, i)));
  EXPECT_EQ(q.injected_drops(), 0u);
  EXPECT_EQ(q.packet_length(), 1000u);
}

TEST(LossInjector, DropRateApproximatelyHonored) {
  sim::Scheduler sched;
  auto q = make(sched, 0.1);
  int dropped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!q.enqueue(make_packet(1, static_cast<std::uint64_t>(i)))) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.1, 0.01);
  EXPECT_EQ(q.injected_drops(), static_cast<std::uint64_t>(dropped));
}

TEST(LossInjector, SurvivorsComeOutInOrder) {
  sim::Scheduler sched;
  auto q = make(sched, 0.3);
  for (std::uint64_t i = 0; i < 100; ++i) (void)q.enqueue(make_packet(1, i));
  std::uint64_t prev = 0;
  bool first = true;
  while (auto p = q.dequeue()) {
    if (!first) EXPECT_GT(p->seq, prev);
    prev = p->seq;
    first = false;
  }
}

TEST(LossInjector, DeterministicPerSeed) {
  auto drops_with_seed = [](std::uint64_t seed) {
    sim::Scheduler sched;
    auto q = make(sched, 0.2, seed);
    std::uint64_t d = 0;
    for (std::uint64_t i = 0; i < 5000; ++i) {
      if (!q.enqueue(make_packet(1, i))) ++d;
    }
    return d;
  };
  EXPECT_EQ(drops_with_seed(3), drops_with_seed(3));
  EXPECT_NE(drops_with_seed(3), drops_with_seed(4));
}

TEST(LossInjector, InnerOverflowStillCounted) {
  sim::Scheduler sched;
  auto q = make(sched, 0.0, 1, 2 * 8900);
  (void)q.enqueue(make_packet(1, 0));
  (void)q.enqueue(make_packet(1, 1));
  EXPECT_FALSE(q.enqueue(make_packet(1, 2)));
  EXPECT_EQ(q.stats().dropped_overflow, 1u);
  EXPECT_EQ(q.injected_drops(), 0u);
}

TEST(LossInjector, InnerEarlyDropsMergedIntoStats) {
  // Regression: the stats merge used to overwrite dropped_early with only the
  // injector's own count, hiding a proactive inner AQM's early drops (RED)
  // from Port accounting and the invariant checker.
  sim::Scheduler sched;
  RedConfig rc;
  rc.limit_bytes = 200 * 8900;
  rc.min_bytes = 2 * 8900;
  rc.max_bytes = 4 * 8900;
  rc.max_p = 0.9;
  rc.weight = 1.0;  // instantaneous average: early drops start immediately
  LossInjector q(sched, std::make_unique<RedQueue>(sched, rc, 11), 0.1, 7);
  for (std::uint64_t i = 0; i < 2000; ++i) (void)q.enqueue(make_packet(1, i));
  const QueueStats& merged = q.stats();
  const QueueStats& in = q.inner().stats();
  ASSERT_GT(in.dropped_early, 0u);
  ASSERT_GT(q.injected_drops(), 0u);
  EXPECT_EQ(merged.dropped_early, q.injected_drops() + in.dropped_early);
  EXPECT_EQ(merged.enqueued, in.enqueued);
  EXPECT_EQ(merged.dropped_overflow, in.dropped_overflow);
  // Bytes of injected drops are folded in on top of the inner's dropped bytes.
  EXPECT_EQ(merged.bytes_dropped, q.injected_drops() * 8900 + in.bytes_dropped);
}

TEST(LossInjector, NameAdvertisesDecoration) {
  sim::Scheduler sched;
  auto q = make(sched, 0.1);
  EXPECT_EQ(q.name(), "fifo+loss");
}

TEST(LossInjector, EndToEndLossyExperimentRuns) {
  auto cfg = test::quick_config(cca::CcaKind::kBbrV1, cca::CcaKind::kBbrV1,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 15);
  cfg.random_loss = 0.01;
  const auto res = test::run_uncached(cfg);
  // BBRv1 is loss-blind: still fills most of the link at 1% loss.
  EXPECT_GT(res.utilization, 0.5);
  EXPECT_GT(res.retx_segments, 0u);
}

TEST(LossInjector, LossCrushesRenoMoreThanBbr) {
  auto reno = test::quick_config(cca::CcaKind::kReno, cca::CcaKind::kReno,
                                 aqm::AqmKind::kFifo, 2.0, 100e6, 15);
  reno.random_loss = 0.005;
  auto bbr = reno;
  bbr.cca1 = bbr.cca2 = cca::CcaKind::kBbrV1;
  const auto res_reno = test::run_uncached(reno);
  const auto res_bbr = test::run_uncached(bbr);
  EXPECT_GT(res_bbr.utilization, res_reno.utilization);
}

}  // namespace
}  // namespace elephant::aqm
