#include "cca/bbr_v2.hpp"

#include <gtest/gtest.h>

namespace elephant::cca {
namespace {

struct Driver {
  BbrV2 bbr{CcaParams{}};
  double t = 0.1;
  double delivered = 0;

  void ack(double rate, double rtt_s, double acked, bool round, double inflight) {
    AckSample a;
    a.now = sim::Time::seconds(t);
    a.rtt = sim::Time::seconds(rtt_s);
    a.min_rtt = sim::Time::seconds(rtt_s);
    a.acked_segments = acked;
    delivered += acked;
    a.delivered_segments = delivered;
    a.delivery_rate = rate;
    a.round_start = round;
    a.inflight_segments = inflight;
    bbr.on_ack(a);
  }

  void lose(double segments) {
    LossSample l;
    l.now = sim::Time::seconds(t);
    l.lost_segments = segments;
    l.new_congestion_event = true;
    bbr.on_loss(l);
  }

  void round(double rate, double rtt_s, double inflight = 50, double lost = 0) {
    for (int i = 0; i < 4; ++i) {
      ack(rate, rtt_s, 10, false, inflight);
      t += rtt_s / 5;
    }
    if (lost > 0) lose(lost);
    ack(rate, rtt_s, 10, true, inflight);
    t += rtt_s / 5;
  }

  void reach_probe_bw() {
    for (int i = 0; i < 10; ++i) round(4000, 0.062, 600);
    while (bbr.mode() == BbrV2::Mode::kDrain) round(4000, 0.062, 100);
  }
};

TEST(BbrV2, StartupExitsOnPlateau) {
  Driver d;
  EXPECT_EQ(d.bbr.mode(), BbrV2::Mode::kStartup);
  d.round(1000, 0.062);
  d.round(2000, 0.062);
  for (int i = 0; i < 6; ++i) d.round(4000, 0.062);
  EXPECT_NE(d.bbr.mode(), BbrV2::Mode::kStartup);
}

TEST(BbrV2, StartupExitsOnSustainedLoss) {
  Driver d;
  // Bandwidth keeps growing (would stay in startup), but every round loses
  // >2%: after startup_loss_rounds the mode must change.
  double rate = 1000;
  for (int i = 0; i < 6 && d.bbr.mode() == BbrV2::Mode::kStartup; ++i) {
    d.round(rate, 0.062, 100, /*lost=*/10);  // 10 lost vs 50 delivered = 17%
    rate *= 1.5;
  }
  EXPECT_NE(d.bbr.mode(), BbrV2::Mode::kStartup);
  // And it learned an inflight bound.
  EXPECT_LT(d.bbr.inflight_hi(), 1e17);
}

TEST(BbrV2, LossAboveThresholdBoundsInflight) {
  Driver d;
  d.reach_probe_bw();
  // A >2% round bounds inflight at max(inflight-at-loss, beta * gain target)
  // — the v2alpha bbr2_handle_inflight_too_high rule.
  d.round(4000, 0.062, 300, /*lost=*/20);
  const double hi1 = d.bbr.inflight_hi();
  ASSERT_LT(hi1, 1e17);
  // BDP = 248, target = 2*248 = 496; floor = 0.7*496 = 347 > inflight 300.
  EXPECT_NEAR(hi1, 347.2, 5.0);
  // Loss at a much higher inflight bounds at that level instead.
  d.round(4000, 0.062, 600, /*lost=*/20);
  EXPECT_NEAR(d.bbr.inflight_hi(), 600, 5.0);
}

TEST(BbrV2, LossBelowThresholdIsIgnored) {
  Driver d;
  d.reach_probe_bw();
  d.round(4000, 0.062, 300, 20);  // learn a bound
  const double hi = d.bbr.inflight_hi();
  // 0.2 lost vs 50 delivered = 0.4% < 2%: no reduction.
  d.round(4000, 0.062, 300, 0.2);
  EXPECT_DOUBLE_EQ(d.bbr.inflight_hi(), hi);
}

TEST(BbrV2, CwndRespectsInflightHiWithHeadroom) {
  Driver d;
  d.reach_probe_bw();
  for (int i = 0; i < 3; ++i) d.round(4000, 0.062, 300, 30);
  const double hi = d.bbr.inflight_hi();
  ASSERT_LT(hi, 1e17);
  for (int i = 0; i < 20; ++i) d.round(4000, 0.062, 100);
  if (d.bbr.phase() == BbrV2::Phase::kCruise || d.bbr.phase() == BbrV2::Phase::kDown) {
    EXPECT_LE(d.bbr.cwnd_segments(), d.bbr.inflight_hi() * 0.85 + 1);
  }
  EXPECT_LE(d.bbr.cwnd_segments(), d.bbr.inflight_hi() + 1);
}

TEST(BbrV2, ProbeCycleVisitsPhases) {
  Driver d;
  d.reach_probe_bw();
  ASSERT_EQ(d.bbr.mode(), BbrV2::Mode::kProbeBw);
  bool saw_cruise = false;
  bool saw_up = false;
  bool saw_refill = false;
  // ~8 s of acks: at least one full CRUISE→REFILL→UP cycle. Inflight sits
  // above 1.25*BDP so the UP phase can complete. Phases are sampled on every
  // ack — DOWN can be a single-ack transient, so the cycle is asserted via
  // the three sustained phases plus the return to CRUISE below.
  const double until = d.t + 8.0;
  int acks = 0;
  while (d.t < until) {
    d.ack(4000, 0.062, 10, (++acks % 5) == 0, 330);
    d.t += 0.0124;
    switch (d.bbr.phase()) {
      case BbrV2::Phase::kCruise:
        saw_cruise = true;
        break;
      case BbrV2::Phase::kUp:
        saw_up = true;
        break;
      case BbrV2::Phase::kRefill:
        saw_refill = true;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_cruise);
  EXPECT_TRUE(saw_refill);
  EXPECT_TRUE(saw_up);
}

TEST(BbrV2, LossDuringProbeUpEndsProbe) {
  Driver d;
  d.reach_probe_bw();
  d.round(4000, 0.062, 300, 20);  // learn inflight_hi
  // Walk to the UP phase.
  const double until = d.t + 8.0;
  while (d.bbr.phase() != BbrV2::Phase::kUp && d.t < until) d.round(4000, 0.062, 250);
  ASSERT_EQ(d.bbr.phase(), BbrV2::Phase::kUp);
  d.round(4000, 0.062, 400, /*lost=*/30);  // big loss during probe
  EXPECT_EQ(d.bbr.phase(), BbrV2::Phase::kDown);
}

TEST(BbrV2, RetransmitsLessAggressivelyThanV1AfterRto) {
  Driver d;
  d.reach_probe_bw();
  d.round(4000, 0.062, 300, 20);
  const double hi = d.bbr.inflight_hi();
  d.bbr.on_rto(sim::Time::seconds(d.t));
  EXPECT_LT(d.bbr.inflight_hi(), hi);
  EXPECT_LE(d.bbr.cwnd_segments(), 2.0 + 1e-9);
}

TEST(BbrV2, EcnRoundShrinksBound) {
  Driver d;
  d.reach_probe_bw();
  d.round(4000, 0.062, 300, 20);  // learn a bound
  const double hi = d.bbr.inflight_hi();
  // A round with ECE marks but no loss.
  for (int i = 0; i < 4; ++i) {
    AckSample a;
    a.now = sim::Time::seconds(d.t);
    a.rtt = sim::Time::seconds(0.062);
    a.acked_segments = 10;
    d.delivered += 10;
    a.delivered_segments = d.delivered;
    a.delivery_rate = 4000;
    a.inflight_segments = 300;
    a.ece = true;
    d.bbr.on_ack(a);
    d.t += 0.0124;
  }
  AckSample closing;
  closing.now = sim::Time::seconds(d.t);
  closing.rtt = sim::Time::seconds(0.062);
  closing.acked_segments = 10;
  d.delivered += 10;
  closing.delivered_segments = d.delivered;
  closing.delivery_rate = 4000;
  closing.inflight_segments = 300;
  closing.round_start = true;
  d.bbr.on_ack(closing);
  EXPECT_LT(d.bbr.inflight_hi(), hi);
}

TEST(BbrV2, MinRttWindowShorterThanV1) {
  BbrV2Params p;
  EXPECT_EQ(p.min_rtt_window, sim::Time::seconds(5.0));
}

}  // namespace
}  // namespace elephant::cca
