#include "obs/heartbeat.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace elephant::obs {
namespace {

class HeartbeatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("elephant_heartbeat_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::filesystem::path jsonl() const { return dir_ / "metrics.jsonl"; }

  static std::vector<std::string> read_lines(const std::filesystem::path& p) {
    std::ifstream in(p);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

  std::filesystem::path dir_;
};

TEST_F(HeartbeatTest, TicksAndAppendsOneJsonObjectPerLine) {
  MetricsRegistry reg;
  reg.counter("sim.events").add(123);

  Heartbeat::Options opts;
  opts.interval_s = 0.02;
  opts.jsonl_path = jsonl();
  opts.console = nullptr;
  Heartbeat hb(reg, opts);
  hb.start();
  while (hb.ticks() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  hb.stop();

  EXPECT_GE(hb.ticks(), 3u);  // ≥2 live ticks + the final snapshot
  const auto lines = read_lines(jsonl());
  ASSERT_GE(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"elapsed_s\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"sim.events\":123"), std::string::npos) << line;
  }
  // Exactly the last line is the final snapshot.
  EXPECT_NE(lines.back().find("\"final\":true"), std::string::npos);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"final\":false"), std::string::npos) << lines[i];
  }
}

TEST_F(HeartbeatTest, HistogramsOnlyInFinalSnapshotByDefault) {
  MetricsRegistry reg;
  reg.histogram("tcp.srtt_s").record(0.02);

  Heartbeat::Options opts;
  opts.interval_s = 0.02;
  opts.jsonl_path = jsonl();
  opts.console = nullptr;
  Heartbeat hb(reg, opts);
  hb.start();
  while (hb.ticks() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  hb.stop();

  const auto lines = read_lines(jsonl());
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front().find("histograms"), std::string::npos);
  EXPECT_NE(lines.back().find("\"histograms\":{\"tcp.srtt_s\":{\"count\":1"),
            std::string::npos);
}

TEST_F(HeartbeatTest, StatusFieldsAreInjectedIntoEveryLine) {
  MetricsRegistry reg;
  Heartbeat::Options opts;
  opts.interval_s = 0.01;
  opts.jsonl_path = jsonl();
  opts.console = nullptr;
  Heartbeat hb(reg, opts, [](std::string* fields, std::string* line) {
    *fields += "\"cells_done\":7,";
    *line = "custom progress";
  });
  hb.start();
  while (hb.ticks() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  hb.stop();

  const auto lines = read_lines(jsonl());
  ASSERT_FALSE(lines.empty());
  for (const auto& line : lines) {
    EXPECT_NE(line.find("\"cells_done\":7"), std::string::npos) << line;
  }
}

TEST_F(HeartbeatTest, StopIsIdempotentAndEmitsExactlyOneFinalSnapshot) {
  MetricsRegistry reg;
  Heartbeat::Options opts;
  opts.interval_s = 60;  // never fires a live tick
  opts.jsonl_path = jsonl();
  opts.console = nullptr;
  Heartbeat hb(reg, opts);
  hb.start();
  hb.stop();
  hb.stop();
  EXPECT_EQ(hb.ticks(), 1u);
  EXPECT_EQ(read_lines(jsonl()).size(), 1u);
}

TEST_F(HeartbeatTest, ZeroAndNegativeIntervalsClampToDefault) {
  // A zero, negative, or NaN --stats-interval must not spin the emitter
  // thread (interval 0 would busy-write the journal); it falls back to the
  // documented 10 s default and warns once.
  MetricsRegistry reg;
  for (const double bad : {0.0, -3.0, std::nan("")}) {
    Heartbeat::Options opts;
    opts.interval_s = bad;
    opts.jsonl_path = jsonl();
    opts.console = nullptr;
    Heartbeat hb(reg, opts);
    EXPECT_DOUBLE_EQ(hb.effective_interval_s(), Heartbeat::kFallbackIntervalS)
        << "interval " << bad;
    hb.start();
    hb.stop();
    EXPECT_EQ(hb.ticks(), 1u) << "interval " << bad;  // only the final snapshot
  }
}

TEST_F(HeartbeatTest, SubMinimumIntervalClampsUpNormalIntervalUnchanged) {
  MetricsRegistry reg;
  Heartbeat::Options opts;
  opts.interval_s = 0.001;  // positive but below the 10 ms floor
  opts.console = nullptr;
  {
    Heartbeat hb(reg, opts);
    EXPECT_DOUBLE_EQ(hb.effective_interval_s(), Heartbeat::kMinIntervalS);
  }
  opts.interval_s = 2.5;
  {
    Heartbeat hb(reg, opts);
    EXPECT_DOUBLE_EQ(hb.effective_interval_s(), 2.5);
  }
}

// End-to-end: a self-profiling sweep fills the shared registry and writes the
// heartbeat journal next to nothing in particular (explicit metrics_path).
TEST_F(HeartbeatTest, SweepPublishesProgressMetricsAndJournal) {
  std::vector<exp::ExperimentConfig> configs;
  for (int i = 0; i < 3; ++i) {
    auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                  aqm::AqmKind::kFifo, 2.0, 100e6, 1);
    cfg.seed = 900 + static_cast<std::uint64_t>(i);
    configs.push_back(cfg);
  }

  MetricsRegistry reg;
  exp::SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 2;
  opts.metrics = &reg;
  opts.stats_interval_s = 0.01;
  opts.metrics_path = jsonl();
  const exp::SweepReport report = run_sweep_resilient(configs, opts);
  ASSERT_EQ(report.completed(), 3u);

  EXPECT_EQ(reg.counter("sweep.cells_done").value(), 3u);
  EXPECT_EQ(reg.counter("sweep.cells_failed").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("sweep.cells_total").value(), 3.0);
  EXPECT_GT(reg.counter("sim.events").value(), 0u);
  EXPECT_EQ(reg.histogram("sweep.cell_wall_s").count(), 3u);
  EXPECT_GT(reg.counter("queue.dequeued").value(), 0u);
  EXPECT_GT(reg.counter("tcp.acks_received").value(), 0u);

  const auto lines = read_lines(jsonl());
  ASSERT_FALSE(lines.empty());
  const std::string& last = lines.back();
  EXPECT_NE(last.find("\"final\":true"), std::string::npos);
  EXPECT_NE(last.find("\"cells_done\":3"), std::string::npos);
  EXPECT_NE(last.find("\"cells_total\":3"), std::string::npos);
  EXPECT_NE(last.find("\"sweep.cell_wall_s\""), std::string::npos);
}

// stats_interval_s alone must be enough: the sweep owns a private registry
// and still emits the journal.
TEST_F(HeartbeatTest, SweepOwnsRegistryWhenOnlyIntervalIsSet) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 1);
  exp::SweepOptions opts;
  opts.use_cache = false;
  opts.threads = 1;
  opts.stats_interval_s = 0.01;
  opts.metrics_path = jsonl();
  const exp::SweepReport report = run_sweep_resilient({cfg}, opts);
  ASSERT_EQ(report.completed(), 1u);

  const auto lines = read_lines(jsonl());
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"cells_done\":1"), std::string::npos);
  EXPECT_NE(lines.back().find("\"sim.events\":"), std::string::npos);
}

}  // namespace
}  // namespace elephant::obs
