#include "obs/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace elephant::obs {
namespace {

/// Compose one heartbeat-shaped journal line exactly the way
/// obs::Heartbeat::emit does: caller status fields, then the registry JSON
/// spliced in minus its outer braces.
std::string compose_line(const MetricsRegistry& reg, double elapsed_s, bool final,
                         const std::string& worker = "") {
  char head[128];
  std::snprintf(head, sizeof(head), "{\"elapsed_s\":%.3f,\"final\":%s,", elapsed_s,
                final ? "true" : "false");
  std::string line = head;
  if (!worker.empty()) line += "\"worker\":\"" + worker + "\",";
  line += "\"cells_done\":3,";
  std::string reg_json;
  append_json(reg, &reg_json);
  line.append(reg_json, 1, reg_json.size() - 2);
  line += "}";
  return line;
}

std::map<std::size_t, std::uint64_t> buckets_of(const LogLinHistogram& h) {
  std::map<std::size_t, std::uint64_t> out;
  h.for_each_bucket([&](std::size_t index, std::uint64_t n) { out[index] = n; });
  return out;
}

void expect_histograms_equal(const LogLinHistogram& a, const LogLinHistogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  EXPECT_EQ(buckets_of(a), buckets_of(b));
}

void expect_registries_equal(const MetricsRegistry& a, const MetricsRegistry& b) {
  a.for_each_counter([&](const std::string& name, const Counter& c) {
    EXPECT_EQ(c.value(), const_cast<MetricsRegistry&>(b).counter(name).value())
        << "counter " << name;
  });
  a.for_each_gauge([&](const std::string& name, const Gauge& g) {
    EXPECT_DOUBLE_EQ(g.value(), const_cast<MetricsRegistry&>(b).gauge(name).value())
        << "gauge " << name;
  });
  a.for_each_histogram([&](const std::string& name, const LogLinHistogram& h) {
    SCOPED_TRACE("histogram " + name);
    expect_histograms_equal(h, const_cast<MetricsRegistry&>(b).histogram(name));
  });
}

MetricsRegistry& fill(MetricsRegistry& reg, int scale) {
  reg.counter("sweep.cache_hits").add(10u * scale);
  reg.counter("sweep.cache_misses").add(3u * scale);
  reg.gauge("sched.heap_depth").set(42.0 * scale);
  LogLinHistogram& h = reg.histogram("prof.cell_run_s");
  for (int i = 1; i <= 50; ++i) h.record(scale * 1e-4 * i);
  h.record(scale * 123.456);  // far bucket: exercises the sparse dump
  reg.histogram("sweep.cell_wall_s").record(0.25 * scale);
  return reg;
}

TEST(JournalTest, HeartbeatLineRoundTripsRegistryExactly) {
  MetricsRegistry reg;
  fill(reg, 1);
  const std::string line = compose_line(reg, 12.5, true, "w1");

  JournalSnapshot snap;
  ASSERT_TRUE(parse_journal_line(line, &snap));
  EXPECT_DOUBLE_EQ(snap.elapsed_s, 12.5);
  EXPECT_TRUE(snap.final_snapshot);
  EXPECT_EQ(snap.worker, "w1");
  EXPECT_DOUBLE_EQ(snap.extra.at("cells_done"), 3.0);
  EXPECT_EQ(snap.counters.at("sweep.cache_hits"), 10u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sched.heap_depth"), 42.0);

  MetricsRegistry rebuilt;
  merge_into(snap, &rebuilt);
  expect_registries_equal(reg, rebuilt);
}

TEST(JournalTest, JournalMergeMatchesInProcessMergeFrom) {
  // Aggregating N workers through their journals must equal aggregating the
  // same registries in-process — the associativity contract `elephant report`
  // relies on when it folds per-worker metrics.jsonl files together.
  MetricsRegistry r1;
  MetricsRegistry r2;
  fill(r1, 1);
  fill(r2, 7);
  r2.counter("sweep.lease_steals").add(2);  // metric only worker 2 has

  MetricsRegistry direct;
  direct.merge_from(r1);
  direct.merge_from(r2);

  MetricsRegistry via_journal;
  for (const MetricsRegistry* src : {&r1, &r2}) {
    JournalSnapshot snap;
    ASSERT_TRUE(parse_journal_line(compose_line(*src, 1.0, true), &snap));
    merge_into(snap, &via_journal);
  }
  expect_registries_equal(direct, via_journal);
}

TEST(JournalTest, ReadFinalSnapshotTakesLastParseableLineAndSkipsTornTail) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("elephant_journal_" + std::to_string(::getpid()) + ".jsonl");
  {
    MetricsRegistry tick1;
    tick1.counter("sweep.cache_hits").add(1);
    MetricsRegistry tick2;
    tick2.counter("sweep.cache_hits").add(5);
    std::ofstream out(path);
    out << compose_line(tick1, 1.0, false, "w2") << "\n";
    out << compose_line(tick2, 2.0, true, "w2") << "\n";
    out << "{\"elapsed_s\":3.0,\"cou";  // torn tail from a crashed worker
  }

  JournalSnapshot snap;
  std::string error;
  ASSERT_TRUE(read_final_snapshot(path, &snap, &error)) << error;
  EXPECT_DOUBLE_EQ(snap.elapsed_s, 2.0);
  EXPECT_TRUE(snap.final_snapshot);
  EXPECT_EQ(snap.worker, "w2");
  EXPECT_EQ(snap.counters.at("sweep.cache_hits"), 5u);
  std::filesystem::remove(path);
}

TEST(JournalTest, ReadFinalSnapshotReportsMissingAndEmptyFiles) {
  JournalSnapshot snap;
  std::string error;
  EXPECT_FALSE(read_final_snapshot("/nonexistent/metrics.jsonl", &snap, &error));
  EXPECT_FALSE(error.empty());

  const auto path = std::filesystem::temp_directory_path() /
                    ("elephant_journal_empty_" + std::to_string(::getpid()) + ".jsonl");
  { std::ofstream out(path); }
  error.clear();
  EXPECT_FALSE(read_final_snapshot(path, &snap, &error));
  EXPECT_NE(error.find("no parseable"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(JournalTest, MalformedLinesAreRejected) {
  JournalSnapshot snap;
  EXPECT_FALSE(parse_journal_line("", &snap));
  EXPECT_FALSE(parse_journal_line("not json", &snap));
  EXPECT_FALSE(parse_journal_line("{\"elapsed_s\":}", &snap));
  EXPECT_FALSE(parse_journal_line("{\"final\":maybe}", &snap));
  EXPECT_TRUE(parse_journal_line("{}", &snap));
}

}  // namespace
}  // namespace elephant::obs
