#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant::net {
namespace {

TEST(Dumbbell, BaseRttIs62ms) {
  sim::Scheduler sched;
  Dumbbell d(sched, DumbbellConfig{});
  EXPECT_EQ(d.base_rtt(), sim::Time::milliseconds(62));
}

TEST(Dumbbell, BottleneckCarriesConfiguredAqm) {
  sim::Scheduler sched;
  DumbbellConfig cfg;
  cfg.aqm = aqm::AqmKind::kRed;
  Dumbbell d(sched, cfg);
  EXPECT_EQ(d.bottleneck().qdisc().name(), "red");
  EXPECT_DOUBLE_EQ(d.bottleneck().rate_bps(), cfg.bottleneck_bps);
}

TEST(Dumbbell, ClientToServerPathWorksEndToEnd) {
  sim::Scheduler sched;
  DumbbellConfig cfg;
  cfg.bottleneck_bps = 1e9;
  Dumbbell d(sched, cfg);

  struct Catcher : PacketHandler {
    sim::Scheduler& sched;
    sim::Time arrived = sim::Time::zero();
    explicit Catcher(sim::Scheduler& s) : sched(s) {}
    void on_packet(Packet&&) override { arrived = sched.now(); }
  };
  Catcher catcher(sched);
  d.server(0).register_endpoint(42, &catcher);

  Packet p = test::make_packet(42, 0);
  p.src = d.client(0).id();
  p.dst = d.server(0).id();
  d.client(0).transmit(std::move(p));
  sched.run();

  // One-way propagation is 31 ms; serialization adds a little.
  EXPECT_GT(catcher.arrived, sim::Time::milliseconds(31));
  EXPECT_LT(catcher.arrived, sim::Time::milliseconds(32));
}

TEST(Dumbbell, ReverseAckPathWorks) {
  sim::Scheduler sched;
  Dumbbell d(sched, DumbbellConfig{});

  struct Catcher : PacketHandler {
    int count = 0;
    void on_packet(Packet&&) override { ++count; }
  };
  Catcher catcher;
  d.client(1).register_endpoint(7, &catcher);

  Packet ack;
  ack.flow = 7;
  ack.is_ack = true;
  ack.size = kAckBytes;
  ack.src = d.server(1).id();
  ack.dst = d.client(1).id();
  d.server(1).transmit(std::move(ack));
  sched.run();
  EXPECT_EQ(catcher.count, 1);
}

TEST(Dumbbell, CustomRttViaRunnerScalesTrunkDelay) {
  // Covered indirectly: an experiment with rtt=20ms must produce srtt ≈ 20ms.
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, 5);
  cfg.rtt = sim::Time::milliseconds(20);
  const auto res = test::run_uncached(cfg);
  ASSERT_FALSE(res.flows.empty());
  EXPECT_GT(res.flows[0].srtt_ms, 19.0);
  // Base 20 ms plus at most the 2-BDP queueing delay (2 x 20 ms) and slack.
  EXPECT_LT(res.flows[0].srtt_ms, 20.0 + 40.0 + 5.0);
}

TEST(Dumbbell, BothClientsShareTheBottleneck) {
  sim::Scheduler sched;
  DumbbellConfig cfg;
  Dumbbell d(sched, cfg);
  // Packets from both clients to both servers traverse r1->r2.
  for (int side = 0; side < 2; ++side) {
    Packet p = test::make_packet(static_cast<FlowId>(side + 1), 0);
    p.src = d.client(side).id();
    p.dst = d.server(side).id();
    d.client(side).transmit(std::move(p));
  }
  struct Null : PacketHandler {
    void on_packet(Packet&&) override {}
  } null_handler;
  d.server(0).register_endpoint(1, &null_handler);
  d.server(1).register_endpoint(2, &null_handler);
  sched.run();
  EXPECT_EQ(d.bottleneck().tx_packets(), 2u);
}

}  // namespace
}  // namespace elephant::net
