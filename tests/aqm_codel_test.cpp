#include "aqm/codel.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace elephant::aqm {
namespace {

using test::make_packet;

TEST(Codel, PassesTrafficBelowTarget) {
  sim::Scheduler sched;
  CodelQueue q(sched, 1 << 24);
  // Enqueue and immediately dequeue: sojourn 0 < target, never drops.
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(1, i)));
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_EQ(q.stats().dropped_early, 0u);
}

TEST(Codel, DropsWhenSojournPersistsAboveTarget) {
  sim::Scheduler sched;
  CodelQueue q(sched, 1 << 24);
  // Fill the queue, then dequeue slowly so sojourn stays far above 5 ms for
  // longer than one interval (100 ms): CoDel must enter dropping state.
  for (std::uint64_t i = 0; i < 400; ++i) (void)q.enqueue(make_packet(1, i));
  std::uint64_t dequeued = 0;
  for (int step = 0; step < 300; ++step) {
    sched.schedule_at(sim::Time::milliseconds(10) * (step + 1), [&] {
      if (q.dequeue().has_value()) ++dequeued;
      (void)q.enqueue(make_packet(2, 1000 + static_cast<std::uint64_t>(dequeued)));
    });
  }
  sched.run();
  EXPECT_GT(q.stats().dropped_early, 0u);
}

TEST(Codel, RecoversWhenCongestionClears) {
  sim::Scheduler sched;
  CodelQueue q(sched, 1 << 24);
  for (std::uint64_t i = 0; i < 200; ++i) (void)q.enqueue(make_packet(1, i));
  // Drain everything slowly (provokes drops), then run fresh packets through
  // with zero sojourn: no further drops.
  for (int step = 0; step < 400; ++step) {
    sched.schedule_at(sim::Time::milliseconds(5) * (step + 1), [&] { (void)q.dequeue(); });
  }
  sched.run();
  const auto drops_after_drain = q.stats().dropped_early;
  bool dropped_later = false;
  for (std::uint64_t i = 0; i < 100; ++i) {
    (void)q.enqueue(make_packet(1, 10000 + i));
    if (!q.dequeue().has_value()) dropped_later = true;
  }
  EXPECT_FALSE(dropped_later);
  EXPECT_EQ(q.stats().dropped_early, drops_after_drain);
}

TEST(Codel, ControlLawAcceleratesWithCount) {
  CodelState st;
  const sim::Time iv = sim::Time::milliseconds(100);
  st.count = 1;
  const sim::Time t1 = st.control_law(sim::Time::zero(), iv);
  st.count = 4;
  const sim::Time t4 = st.control_law(sim::Time::zero(), iv);
  st.count = 16;
  const sim::Time t16 = st.control_law(sim::Time::zero(), iv);
  EXPECT_EQ(t1, iv);
  EXPECT_EQ(t4.ns(), iv.ns() / 2);
  EXPECT_EQ(t16.ns(), iv.ns() / 4);
}

TEST(Codel, OverflowDropsAtLimit) {
  sim::Scheduler sched;
  CodelQueue q(sched, 2 * 8900);
  EXPECT_TRUE(q.enqueue(make_packet(1, 0)));
  EXPECT_TRUE(q.enqueue(make_packet(1, 1)));
  EXPECT_FALSE(q.enqueue(make_packet(1, 2)));
  EXPECT_EQ(q.stats().dropped_overflow, 1u);
}

TEST(Codel, EmptyDequeueReturnsNullopt) {
  sim::Scheduler sched;
  CodelQueue q(sched, 1 << 20);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(Codel, OneMtuBacklogNeverDrops) {
  sim::Scheduler sched;
  CodelQueue q(sched, 1 << 24);
  // A single queued packet (≤ MTU backlog) must never be CoDel-dropped even
  // with a huge sojourn time.
  (void)q.enqueue(make_packet(1, 0));
  sched.schedule_at(sim::Time::seconds(10), [&] {
    auto p = q.dequeue();
    EXPECT_TRUE(p.has_value());
  });
  sched.run();
  EXPECT_EQ(q.stats().dropped_early, 0u);
}

}  // namespace
}  // namespace elephant::aqm
