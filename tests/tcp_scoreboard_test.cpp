// Lockstep property test for the SoA bitmap Scoreboard against a per-unit
// array-of-structs reference that re-implements the historical
// RingDeque<UnitState> semantics one unit at a time. The SoA layout claims
// bit-identical behavior (same counters, same callback order, same sample
// selection); this test drives both through randomized SACK/loss/RTO
// sequences and through the bitmap's boundary cases — una crossing a 64-unit
// word, ring wrap past 2^20 units, and the uint8 retx counter wrapping at
// 255 (the golden paper-cell trace contains such wraps, so saturation would
// be a behavior change, not a cleanup).

#include "tcp/scoreboard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace elephant::tcp {
namespace {

/// The historical per-unit layout: one struct per outstanding unit, indexed
/// by `abs - una`. Every operation walks units one at a time — the semantics
/// the word-at-a-time scans must reproduce exactly.
class RefScoreboard {
 public:
  [[nodiscard]] std::uint64_t una() const { return una_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  [[nodiscard]] std::uint64_t pipe_units() const { return pipe_; }
  [[nodiscard]] std::uint64_t lost_pending() const { return lost_pending_; }
  [[nodiscard]] std::uint64_t highest_sacked() const { return highest_sacked_; }
  [[nodiscard]] sim::Time latest_sacked_sent_time() const { return latest_sacked_sent_time_; }

  [[nodiscard]] bool is_inflight(std::uint64_t abs) const { return at(abs).inflight; }
  [[nodiscard]] bool is_sacked(std::uint64_t abs) const { return at(abs).sacked; }
  [[nodiscard]] bool is_lost(std::uint64_t abs) const { return at(abs).lost; }
  [[nodiscard]] std::uint8_t retx_of(std::uint64_t abs) const { return at(abs).retx; }

  std::uint8_t record_send(std::uint64_t abs, sim::Time now, double delivered_segments,
                           sim::Time delivered_time_eff) {
    if (abs == next_seq_) {
      units_.emplace_back();
      ++next_seq_;
    } else {
      Unit& u = at(abs);
      u.lost = false;
      ++u.retx;  // uint8: wraps at 256
      if (lost_pending_ > 0) --lost_pending_;
      min_unresolved_ = std::min(min_unresolved_, abs);
    }
    Unit& u = at(abs);
    u.sent_time = now;
    u.delivered_at_send = delivered_segments;
    u.delivered_time_at_send = delivered_time_eff;
    u.inflight = true;
    ++pipe_;
    return u.retx;
  }

  bool advance_una(std::uint64_t ack_to, std::uint64_t* newly, DeliverySample* newest) {
    const bool progressed = ack_to > una_;
    while (una_ < ack_to) {
      const Unit& u = units_.front();
      if (u.inflight) --pipe_;
      if (u.lost && lost_pending_ > 0) --lost_pending_;
      if (!u.delivered_counted) {
        ++*newly;
        newest->consider(u.retx, u.sent_time, u.delivered_at_send, u.delivered_time_at_send);
      }
      units_.pop_front();
      ++una_;
    }
    min_unresolved_ = std::max(min_unresolved_, una_);
    return progressed;
  }

  template <typename OnSack>
  void sack_range(std::uint64_t start, std::uint64_t end, std::uint64_t* newly,
                  DeliverySample* newest, OnSack&& on_sack) {
    const std::uint64_t lo = std::max(start, std::max(una_, min_unresolved_));
    const std::uint64_t hi = std::min(end, next_seq_);
    for (std::uint64_t abs = lo; abs < hi; ++abs) {
      Unit& u = at(abs);
      if (u.sacked) continue;
      u.sacked = true;
      if (u.inflight) {
        u.inflight = false;
        --pipe_;
      }
      if (u.lost) {
        u.lost = false;
        if (lost_pending_ > 0) --lost_pending_;
      }
      if (!u.delivered_counted) {
        u.delivered_counted = true;
        ++*newly;
        newest->consider(u.retx, u.sent_time, u.delivered_at_send, u.delivered_time_at_send);
      }
      if (u.sent_time > latest_sacked_sent_time_) latest_sacked_sent_time_ = u.sent_time;
      if (abs + 1 > highest_sacked_) highest_sacked_ = abs + 1;
      on_sack(abs, u.retx);
    }
  }

  template <typename OnLoss>
  std::uint64_t mark_losses(std::uint32_t reorder_units, OnLoss&& on_loss) {
    if (highest_sacked_ <= una_) return 0;
    const std::uint64_t fack_limit =
        highest_sacked_ > reorder_units ? highest_sacked_ - reorder_units : 0;
    std::uint64_t newly_lost = 0;
    bool prefix_resolved = true;
    for (std::uint64_t abs = std::max(min_unresolved_, una_); abs < fack_limit; ++abs) {
      Unit& u = at(abs);
      if (prefix_resolved) {
        if (u.sacked) {
          min_unresolved_ = abs + 1;
          continue;
        }
        prefix_resolved = false;
      }
      if (u.inflight && u.sent_time <= latest_sacked_sent_time_) {
        u.lost = true;
        u.inflight = false;
        --pipe_;
        ++lost_pending_;
        ++newly_lost;
        on_loss(abs, u.retx);
      }
    }
    return newly_lost;
  }

  std::uint64_t rto_mark_all() {
    lost_pending_ = 0;
    for (std::uint64_t abs = una_; abs < next_seq_; ++abs) {
      Unit& u = at(abs);
      if (u.inflight) {
        u.inflight = false;
        --pipe_;
      }
      if (!u.sacked) {
        u.lost = true;
        ++lost_pending_;
      }
    }
    min_unresolved_ = una_;
    return lost_pending_;
  }

  [[nodiscard]] std::optional<std::uint64_t> pick_retx() {
    if (lost_pending_ == 0) return std::nullopt;
    for (std::uint64_t abs = std::max(min_unresolved_, una_); abs < next_seq_; ++abs) {
      if (at(abs).lost) return abs;
    }
    lost_pending_ = 0;
    return std::nullopt;
  }

 private:
  struct Unit {
    sim::Time sent_time = sim::Time::zero();
    sim::Time delivered_time_at_send = sim::Time::zero();
    double delivered_at_send = 0;
    std::uint8_t retx = 0;
    bool inflight = false;
    bool sacked = false;
    bool lost = false;
    bool delivered_counted = false;
  };

  [[nodiscard]] Unit& at(std::uint64_t abs) { return units_[abs - una_]; }
  [[nodiscard]] const Unit& at(std::uint64_t abs) const { return units_[abs - una_]; }

  std::deque<Unit> units_;
  std::uint64_t una_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pipe_ = 0;
  std::uint64_t lost_pending_ = 0;
  std::uint64_t min_unresolved_ = 0;
  std::uint64_t highest_sacked_ = 0;
  sim::Time latest_sacked_sent_time_ = sim::Time::zero();
};

using Events = std::vector<std::pair<std::uint64_t, unsigned>>;

/// Drives both layouts through the same operation and asserts every
/// observable agrees: return values, counters, callback sequences, and
/// per-unit flags over the live window.
class Lockstep {
 public:
  void send_new(sim::Time now, double delivered, sim::Time dt) {
    const std::uint64_t abs = soa.next_seq();
    ASSERT_EQ(abs, ref.next_seq());
    ASSERT_EQ(soa.record_send(abs, now, delivered, dt), ref.record_send(abs, now, delivered, dt));
    check_scalars();
  }

  /// Retransmits whichever unit both layouts pick (asserting they agree);
  /// no-op if neither has a pending loss.
  void send_retx(sim::Time now, double delivered, sim::Time dt) {
    const auto a = soa.pick_retx();
    const auto b = ref.pick_retx();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) return;
    ASSERT_EQ(*a, *b);
    ASSERT_EQ(soa.record_send(*a, now, delivered, dt), ref.record_send(*a, now, delivered, dt));
    check_scalars();
  }

  void ack(std::uint64_t ack_to) {
    std::uint64_t newly_a = 0;
    std::uint64_t newly_b = 0;
    DeliverySample sa;
    DeliverySample sb;
    ASSERT_EQ(soa.advance_una(ack_to, &newly_a, &sa), ref.advance_una(ack_to, &newly_b, &sb));
    ASSERT_EQ(newly_a, newly_b);
    check_samples(sa, sb);
    check_scalars();
  }

  void sack(std::uint64_t start, std::uint64_t end) {
    std::uint64_t newly_a = 0;
    std::uint64_t newly_b = 0;
    DeliverySample sa;
    DeliverySample sb;
    Events ea;
    Events eb;
    soa.sack_range(start, end, &newly_a, &sa,
                   [&](std::uint64_t abs, std::uint8_t r) { ea.emplace_back(abs, r); });
    ref.sack_range(start, end, &newly_b, &sb,
                   [&](std::uint64_t abs, std::uint8_t r) { eb.emplace_back(abs, r); });
    ASSERT_EQ(newly_a, newly_b);
    ASSERT_EQ(ea, eb);
    check_samples(sa, sb);
    check_scalars();
  }

  void mark_losses(std::uint32_t reorder_units) {
    Events ea;
    Events eb;
    const auto na = soa.mark_losses(
        reorder_units, [&](std::uint64_t abs, std::uint8_t r) { ea.emplace_back(abs, r); });
    const auto nb = ref.mark_losses(
        reorder_units, [&](std::uint64_t abs, std::uint8_t r) { eb.emplace_back(abs, r); });
    ASSERT_EQ(na, nb);
    ASSERT_EQ(ea, eb);
    check_scalars();
  }

  void rto() {
    ASSERT_EQ(soa.rto_mark_all(), ref.rto_mark_all());
    check_scalars();
  }

  void check_scalars() {
    ASSERT_EQ(soa.una(), ref.una());
    ASSERT_EQ(soa.next_seq(), ref.next_seq());
    ASSERT_EQ(soa.pipe_units(), ref.pipe_units());
    ASSERT_EQ(soa.lost_pending(), ref.lost_pending());
    ASSERT_EQ(soa.highest_sacked(), ref.highest_sacked());
    ASSERT_EQ(soa.latest_sacked_sent_time(), ref.latest_sacked_sent_time());
  }

  /// Per-unit flag audit over the whole live window (O(window), so call it
  /// at checkpoints rather than after every operation in the big runs).
  void check_flags() {
    for (std::uint64_t abs = soa.una(); abs < soa.next_seq(); ++abs) {
      ASSERT_EQ(soa.is_inflight(abs), ref.is_inflight(abs)) << "unit " << abs;
      ASSERT_EQ(soa.is_sacked(abs), ref.is_sacked(abs)) << "unit " << abs;
      ASSERT_EQ(soa.is_lost(abs), ref.is_lost(abs)) << "unit " << abs;
      ASSERT_EQ(soa.retx_of(abs), ref.retx_of(abs)) << "unit " << abs;
    }
  }

  Scoreboard soa;
  RefScoreboard ref;

 private:
  static void check_samples(const DeliverySample& a, const DeliverySample& b) {
    ASSERT_EQ(a.valid(), b.valid());
    if (!a.valid()) return;
    ASSERT_EQ(a.sent_time, b.sent_time);
    ASSERT_EQ(a.delivered_at_send, b.delivered_at_send);
    ASSERT_EQ(a.delivered_time_at_send, b.delivered_time_at_send);
  }
};

TEST(TcpScoreboard, RandomizedLockstepAgainstAosReference) {
  sim::Rng rng(0xe1ef4a9700000001ULL);
  Lockstep ls;
  double clock = 0;
  auto now = [&] {
    clock += 1e-5;
    return sim::Time::seconds(clock);
  };

  for (int step = 0; step < 20000 && !testing::Test::HasFatalFailure(); ++step) {
    const std::uint64_t roll = rng.next_below(100);
    const std::uint64_t window = ls.soa.next_seq() - ls.soa.una();
    if (roll < 35 || window == 0) {
      ls.send_new(now(), static_cast<double>(step), sim::Time::seconds(clock - 1e-3));
    } else if (roll < 50) {
      ls.send_retx(now(), static_cast<double>(step), sim::Time::seconds(clock - 1e-3));
    } else if (roll < 75) {
      // SACK a random block, occasionally reaching past next_seq (clamped).
      const std::uint64_t start = ls.soa.una() + rng.next_below(window);
      const std::uint64_t len = 1 + rng.next_below(96);
      ls.sack(start, start + len);
    } else if (roll < 85) {
      ls.mark_losses(static_cast<std::uint32_t>(rng.next_below(8)));
    } else if (roll < 97) {
      ls.ack(ls.soa.una() + rng.next_below(window + 1));
    } else {
      ls.rto();
    }
    if (step % 512 == 0) ls.check_flags();
  }
  ls.check_flags();
}

TEST(TcpScoreboard, UnaCrossesWordBoundaries) {
  Lockstep ls;
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    ls.send_new(sim::Time::seconds(t += 1e-4), i, sim::Time::zero());
  }
  // Partial word, exact word boundary, multi-word span, to-the-end.
  ls.sack(10, 70);  // sets up delivered bits straddling word 0/1
  for (const std::uint64_t ack_to : {37ULL, 64ULL, 65ULL, 128ULL, 191ULL, 200ULL}) {
    ls.ack(ack_to);
    ls.check_flags();
  }
  EXPECT_EQ(ls.soa.pipe_units(), 0u);
}

TEST(TcpScoreboard, RingWrapBeyondTwentyBitSequence) {
  // Stream > 2^20 units through a small window so every slot of the ring is
  // reused thousands of times and slot/word arithmetic sees absolute
  // sequence numbers far above the capacity.
  Lockstep ls;
  constexpr std::uint64_t kTarget = (1ULL << 20) + 257;
  constexpr std::uint64_t kWindow = 48;  // below 64 so capacity stays one word
  sim::Rng rng(0xe1ef4a9700000002ULL);
  double t = 0;
  while (ls.soa.next_seq() < kTarget && !testing::Test::HasFatalFailure()) {
    for (std::uint64_t i = 0; i < kWindow; ++i) {
      ls.send_new(sim::Time::seconds(t += 1e-6), 0, sim::Time::zero());
    }
    // Occasionally lose the head of the window to exercise retx across the
    // wrap; otherwise SACK the tail and cumulative-ACK everything.
    if (rng.next_below(8) == 0) {
      ls.sack(ls.soa.una() + kWindow / 2, ls.soa.next_seq());
      ls.mark_losses(3);
      ls.send_retx(sim::Time::seconds(t += 1e-6), 0, sim::Time::zero());
    }
    ls.ack(ls.soa.next_seq());
  }
  ls.check_flags();
  EXPECT_GE(ls.soa.una(), 1ULL << 20);
}

TEST(TcpScoreboard, RetxCounterWrapsAt255LikeTheAosLayout) {
  // One unit retransmitted 300 times: the uint8 counter must wrap 255 -> 0,
  // not saturate — the golden paper-cell trace contains such wraps, so a
  // "fix" here silently changes every digest downstream.
  Lockstep ls;
  double t = 0;
  ls.send_new(sim::Time::seconds(t += 1e-4), 0, sim::Time::zero());
  ls.send_new(sim::Time::seconds(t += 1e-4), 0, sim::Time::zero());
  for (int round = 0; round < 300; ++round) {
    ls.rto();
    ls.send_retx(sim::Time::seconds(t += 1e-4), 0, sim::Time::zero());
    if (testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(ls.soa.retx_of(ls.soa.una()), static_cast<std::uint8_t>(300 % 256));
  EXPECT_EQ(ls.soa.retx_of(ls.soa.una()), 44);
  ls.check_flags();
}

TEST(TcpScoreboard, ReleaseDropsStorageButKeepsPeak) {
  Scoreboard sb;
  std::uint64_t newly = 0;
  DeliverySample s;
  for (int i = 0; i < 500; ++i) {
    sb.record_send(static_cast<std::uint64_t>(i), sim::Time::seconds(i * 1e-4), 0,
                   sim::Time::zero());
  }
  const std::size_t peak = sb.peak_memory_bytes();
  EXPECT_GT(peak, 0u);
  EXPECT_EQ(sb.memory_bytes(), peak);
  sb.advance_una(sb.next_seq(), &newly, &s);
  sb.release();
  EXPECT_EQ(sb.memory_bytes(), 0u);
  EXPECT_EQ(sb.peak_memory_bytes(), peak);
}

}  // namespace
}  // namespace elephant::tcp
