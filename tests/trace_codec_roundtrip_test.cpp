// Systematic codec round-trip over every record kind, including the newest
// ones (kFault, kFlowStart, kFlowEnd), through the same per-line auto-detect
// dispatch trace2csv uses. Guards the "lossless round trip" contract for the
// full record-type enum, not just the kinds a particular sink happens to emit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/codec.hpp"
#include "trace/trace.hpp"

namespace elephant::trace {
namespace {

/// One representative record per type, exercising that type's documented
/// v0–v2 slots with awkward values (large seq, fractional ns-precision time,
/// negative and huge doubles).
std::vector<TraceRecord> one_of_each() {
  std::vector<TraceRecord> records;
  for (std::size_t i = 0; i < kRecordTypeCount; ++i) {
    TraceRecord r;
    r.t = sim::Time::nanoseconds(1'000'000'007 * static_cast<std::int64_t>(i + 1));
    r.type = static_cast<RecordType>(i);
    r.flow = static_cast<std::uint32_t>(17 * i);
    r.seq = i % 2 == 0 ? 18446744073709551615ull - i : i * 1000;
    r.v0 = static_cast<double>(i) + 0.125;
    r.v1 = i % 3 == 0 ? -2.5e-9 : 1.25e9;
    r.v2 = 0.480000000000000004;  // does not round-trip through %.6f
    records.push_back(r);
  }
  return records;
}

/// trace2csv's per-line format dispatch (trace2csv.cpp): JSONL if the line
/// opens an object, CSV otherwise.
bool parse_autodetect(const std::string& line, TraceRecord* out) {
  return line.front() == '{' ? parse_jsonl(line, out) : parse_csv(line, out);
}

TEST(CodecRoundTrip, EveryRecordTypeThroughCsv) {
  for (const TraceRecord& r : one_of_each()) {
    std::string line;
    append_csv(r, &line);
    ASSERT_FALSE(line.empty());
    line.pop_back();  // strip trailing '\n' as getline would
    TraceRecord back;
    ASSERT_TRUE(parse_autodetect(line, &back)) << line;
    EXPECT_EQ(back, r) << to_string(r.type) << ": " << line;
  }
}

TEST(CodecRoundTrip, EveryRecordTypeThroughJsonl) {
  for (const TraceRecord& r : one_of_each()) {
    std::string line;
    append_jsonl(r, &line);
    line.pop_back();
    ASSERT_EQ(line.front(), '{') << line;  // must route to the JSONL parser
    TraceRecord back;
    ASSERT_TRUE(parse_autodetect(line, &back)) << line;
    EXPECT_EQ(back, r) << to_string(r.type) << ": " << line;
  }
}

TEST(CodecRoundTrip, MixedFormatStreamParsesLikeTrace2Csv) {
  // Concatenated CSV + JSONL traces with interleaved headers, as trace2csv
  // sees when files are cat'd together: every record parses, headers don't.
  const auto records = one_of_each();
  std::string stream = csv_header() + '\n';
  for (std::size_t i = 0; i < records.size(); ++i) {
    (i % 2 == 0 ? append_csv : append_jsonl)(records[i], &stream);
    if (i == 5) stream += csv_header() + '\n';  // second file's header
  }

  std::vector<TraceRecord> parsed;
  std::size_t skipped = 0;
  std::size_t start = 0;
  while (start < stream.size()) {
    const std::size_t end = stream.find('\n', start);
    const std::string line = stream.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    TraceRecord r;
    if (parse_autodetect(line, &r)) {
      parsed.push_back(r);
    } else {
      ++skipped;
    }
  }
  EXPECT_EQ(skipped, 2u);  // the two headers
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i], records[i]) << "record " << i;
  }
}

TEST(CodecRoundTrip, FaultRecordSlotsSurviveBothCodecs) {
  // kFault encodes (FaultKind, magnitude, apply/revert) in the value slots —
  // the exact fields the fault-timeline reconstruction scripts rely on.
  TraceRecord r;
  r.t = sim::Time::seconds(2.5);
  r.type = RecordType::kFault;
  r.v0 = 3;       // FaultKind as double
  r.v1 = 0.02;    // magnitude (e.g. 20 ms extra delay)
  r.v2 = 1;       // apply
  for (const bool json : {false, true}) {
    std::string line;
    (json ? append_jsonl : append_csv)(r, &line);
    line.pop_back();
    TraceRecord back;
    ASSERT_TRUE(parse_autodetect(line, &back)) << line;
    EXPECT_EQ(back, r) << line;
  }
}

TEST(CodecRoundTrip, FlowLifecycleRecordsKeepClassAndFctPrecision) {
  TraceRecord start;
  start.t = sim::Time::microseconds(5'000'000);
  start.type = RecordType::kFlowStart;
  start.flow = 12;
  start.v0 = 1;         // traffic-class index
  start.v1 = 450000.0;  // transfer bytes
  start.v2 = 1;         // dumbbell side
  TraceRecord end = start;
  end.t = sim::Time::microseconds(5'480'123);
  end.type = RecordType::kFlowEnd;
  end.v2 = 0.48012299999999998;  // FCT seconds, full double precision

  for (const TraceRecord& r : {start, end}) {
    for (const bool json : {false, true}) {
      std::string line;
      (json ? append_jsonl : append_csv)(r, &line);
      line.pop_back();
      TraceRecord back;
      ASSERT_TRUE(parse_autodetect(line, &back)) << line;
      EXPECT_EQ(back, r) << line;
    }
  }
}

}  // namespace
}  // namespace elephant::trace
