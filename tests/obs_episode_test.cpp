#include "obs/episode.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "exp/result_digest.hpp"
#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace elephant::obs {
namespace {

EpisodeOptions opts(double window = 1.0, double enter = 0.6, double exit = 0.8) {
  EpisodeOptions o;
  o.enabled = true;
  o.window_s = window;
  o.enter_jain = enter;
  o.exit_jain = exit;
  return o;
}

/// Two-elephant cumulative sample at one window boundary.
std::vector<FlowSample> flows2(std::uint64_t b1, std::uint64_t b2,
                               bool active1 = true, bool active2 = true) {
  FlowSample f1;
  f1.flow = 1;
  f1.side = 1;
  f1.delivered_bytes = b1;
  f1.cwnd_segments = 10;
  f1.active = active1;
  FlowSample f2 = f1;
  f2.flow = 2;
  f2.side = 2;
  f2.delivered_bytes = b2;
  f2.active = active2;
  return {f1, f2};
}

TEST(EpisodeDetectorTest, FairRunProducesNoEpisodes) {
  EpisodeDetector det(opts());
  QueueSample q;
  det.sample(0, flows2(0, 0), q);
  for (int t = 1; t <= 5; ++t) {
    det.sample(t, flows2(1000u * t, 1000u * t), q);
  }
  det.finish(5);
  EXPECT_TRUE(det.episodes().empty());
  EXPECT_FALSE(det.in_episode());
}

TEST(EpisodeDetectorTest, OpensOnEnterThresholdAndClosesOnExit) {
  EpisodeDetector det(opts());
  QueueSample q;
  det.sample(0, flows2(0, 0), q);
  det.sample(1, flows2(100, 100), q);          // fair window
  det.sample(2, flows2(1100, 110), q);         // 1000 vs 10 → jain ≈ 0.51
  EXPECT_TRUE(det.in_episode());
  det.sample(3, flows2(2100, 120), q);         // still unfair
  det.sample(4, flows2(2600, 620), q);         // 500 vs 500 → jain 1, closes
  EXPECT_FALSE(det.in_episode());
  det.finish(4);

  ASSERT_EQ(det.episodes().size(), 1u);
  const Episode& e = det.episodes()[0];
  EXPECT_DOUBLE_EQ(e.start_s, 1.0);  // start of the first unfair window
  EXPECT_DOUBLE_EQ(e.end_s, 3.0);    // end of the last unfair window
  EXPECT_LT(e.worst_jain, 0.6);
  EXPECT_EQ(e.victim_flow, 2u);
  EXPECT_EQ(e.victim_side, 2);
  EXPECT_LT(e.victim_share, 0.1);  // ~10 bytes against a fair share of ~505
  EXPECT_EQ(e.cause, "unknown");   // no queue/loss/rto evidence was fed
}

TEST(EpisodeDetectorTest, HysteresisKeepsEpisodeOpenBetweenThresholds) {
  EpisodeDetector det(opts(1.0, 0.6, 0.8));
  QueueSample q;
  det.sample(0, flows2(0, 0), q);
  det.sample(1, flows2(1000, 10), q);    // jain ≈ 0.51 < 0.6 → open
  ASSERT_TRUE(det.in_episode());
  det.sample(2, flows2(1400, 110), q);   // 400 vs 100 → jain ≈ 0.74: stays open
  EXPECT_TRUE(det.in_episode());
  det.sample(3, flows2(1900, 610), q);   // equal deltas → jain 1 ≥ 0.8: closes
  EXPECT_FALSE(det.in_episode());
  ASSERT_EQ(det.episodes().size(), 1u);
  EXPECT_DOUBLE_EQ(det.episodes()[0].end_s, 2.0);
}

TEST(EpisodeDetectorTest, AccumulatesEvidenceAndClassifiesLossBurst) {
  EpisodeDetector det(opts());
  QueueSample q;
  det.sample(0, flows2(0, 0), q);
  det.sample(1, flows2(100, 100), q);  // fair; pre-episode evidence ignored
  q.injected_loss = 5;
  det.sample(2, flows2(1100, 110), q);  // unfair window with 5 injected drops
  q.injected_loss = 12;
  q.ecn_marked = 3;
  det.sample(3, flows2(2100, 120), q);  // 7 more drops, 3 marks
  det.finish(3);

  ASSERT_EQ(det.episodes().size(), 1u);
  const Episode& e = det.episodes()[0];
  EXPECT_EQ(e.loss_injected, 12u);
  EXPECT_EQ(e.ecn_marks, 3u);
  EXPECT_EQ(e.cause, "loss-burst");  // injected loss outranks ecn marks
}

TEST(EpisodeDetectorTest, FaultWithoutInjectedLossClassifiesAsFault) {
  EpisodeDetector det(opts());
  QueueSample q;
  det.sample(0, flows2(0, 0), q);
  q.faults_applied = 1;
  det.sample(1, flows2(1000, 10), q);
  det.finish(1);
  ASSERT_EQ(det.episodes().size(), 1u);
  EXPECT_EQ(det.episodes()[0].cause, "fault");
}

TEST(EpisodeDetectorTest, PartiallyActiveFlowsDoNotFakeStarvation) {
  // Flow 2 joins mid-run: in the window where it was not yet active for the
  // whole span, n_active < 2 and the window must read as fair.
  EpisodeDetector det(opts());
  QueueSample q;
  det.sample(0, flows2(0, 0, true, /*active2=*/false), q);
  det.sample(1, flows2(1000, 0, true, /*active2=*/true), q);  // f2 newborn
  EXPECT_FALSE(det.in_episode());
  det.sample(2, flows2(2000, 1000), q);  // both active, equal deltas
  det.finish(2);
  EXPECT_TRUE(det.episodes().empty());
}

TEST(EpisodeDetectorTest, FinishClosesOpenEpisodeAtRunEnd) {
  EpisodeDetector det(opts());
  QueueSample q;
  det.sample(0, flows2(0, 0), q);
  det.sample(1, flows2(1000, 10), q);
  ASSERT_TRUE(det.in_episode());
  det.finish(1.5);
  ASSERT_EQ(det.episodes().size(), 1u);
  EXPECT_DOUBLE_EQ(det.episodes()[0].end_s, 1.5);
  EXPECT_FALSE(det.in_episode());
}

TEST(EpisodeDetectorTest, WritesOneJsonLinePerEpisode) {
  EpisodeDetector det(opts());
  QueueSample q;
  det.sample(0, flows2(0, 0), q);
  det.sample(1, flows2(1000, 10), q);
  det.finish(1);
  ASSERT_EQ(det.episodes().size(), 1u);

  const auto path = std::filesystem::temp_directory_path() /
                    ("elephant_episodes_" + std::to_string(::getpid()) + ".jsonl");
  ASSERT_TRUE(det.write_jsonl(path.string(), "cell-a"));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"cell\":\"cell-a\""), std::string::npos);
  EXPECT_NE(line.find("\"victim_flow\":2"), std::string::npos);
  EXPECT_NE(line.find("\"cause\":"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Integration: the probe wired through a real cell.

exp::ExperimentConfig episode_config(double duration_s) {
  auto cfg = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kCubic,
                                aqm::AqmKind::kFifo, 2.0, 100e6, duration_s);
  cfg.episodes.enabled = true;
  cfg.episodes.window_s = 0.5;
  return cfg;
}

TEST(EpisodeIntegrationTest, PlantedLossBurstYieldsAttributedEpisode) {
  // A 40% GE loss burst over t ∈ [8, 12) on a 2-elephant cell: some window
  // inside the burst must starve one flow against the other hard enough to
  // open an episode, and the coincident injected drops must tag it.
  auto cfg = episode_config(20);
  cfg.episodes.enter_jain = 0.75;
  cfg.episodes.exit_jain = 0.9;
  for (const fault::FaultEvent& e :
       fault::FaultPlan::loss_burst(sim::Time::seconds(8), 0.4, sim::Time::seconds(4))
           .events) {
    cfg.fault_plan.add(e);
  }
  const exp::ExperimentResult res = test::run_uncached(cfg);

  ASSERT_GE(res.episodes.size(), 1u);
  bool found_burst = false;
  for (const Episode& e : res.episodes) {
    if (e.cause != "loss-burst") continue;
    found_burst = true;
    EXPECT_GT(e.loss_injected, 0u);
    EXPECT_TRUE(e.victim_side == 1 || e.victim_side == 2);
    EXPECT_GE(e.end_s, 8.0);    // overlaps the burst
    EXPECT_LE(e.start_s, 13.0); // (allow recovery tail past revert)
  }
  EXPECT_TRUE(found_burst) << "no episode attributed to the planted loss burst";
}

TEST(EpisodeIntegrationTest, SymmetricFaultFreeCellYieldsNoEpisodes) {
  const exp::ExperimentResult res = test::run_uncached(episode_config(20));
  EXPECT_TRUE(res.episodes.empty());
}

TEST(EpisodeIntegrationTest, DetectionIsDigestNeutralSingleShard) {
  auto plain = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kReno,
                                  aqm::AqmKind::kFifo, 2.0, 100e6, 10);
  auto instrumented = plain;
  instrumented.episodes.enabled = true;
  instrumented.episodes.window_s = 0.5;
  MetricsRegistry reg;  // profiler + metrics attached on top
  instrumented.metrics = &reg;

  const exp::ExperimentResult a = test::run_uncached(plain);
  const exp::ExperimentResult b = test::run_uncached(instrumented);
  EXPECT_EQ(exp::metrics_digest(a), exp::metrics_digest(b))
      << "episode sampling perturbed the schedule";
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_GT(reg.histogram("prof.cell_run_s").count(), 0u);
}

TEST(EpisodeIntegrationTest, DetectionIsDigestNeutralSharded) {
  auto plain = test::quick_config(cca::CcaKind::kCubic, cca::CcaKind::kReno,
                                  aqm::AqmKind::kFifo, 2.0, 100e6, 6);
  plain.total_flows = 4;
  plain.shards = 2;
  auto instrumented = plain;
  instrumented.episodes.enabled = true;
  instrumented.episodes.window_s = 0.5;
  MetricsRegistry reg;
  instrumented.metrics = &reg;

  const exp::ExperimentResult a = test::run_uncached(plain);
  const exp::ExperimentResult b = test::run_uncached(instrumented);
  EXPECT_EQ(exp::metrics_digest(a), exp::metrics_digest(b))
      << "boundary-observer sampling perturbed the sharded schedule";
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_GT(reg.histogram("prof.shard_work").count(), 0u);
}

}  // namespace
}  // namespace elephant::obs
