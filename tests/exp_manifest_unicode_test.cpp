#include <gtest/gtest.h>

#include <cfloat>
#include <string>

#include "exp/manifest.hpp"

namespace elephant::exp {
namespace {

/// A minimal parseable manifest line with the given escaped id text spliced
/// into the "id" field. The id value is inserted verbatim (already escaped),
/// so tests can exercise \uXXXX sequences an external tool may have written.
std::string line_with_id(const std::string& escaped_id) {
  return "{\"i\":0,\"id\":\"" + escaped_id +
         "\",\"status\":\"ok\",\"attempts\":1,\"reps\":1,\"s1_bps\":1,"
         "\"s2_bps\":1,\"jain2\":1,\"util\":0.5,\"retx\":0,\"rtos\":0,"
         "\"error\":\"\"}";
}

TEST(ManifestUnicode, TwoByteBmpEscapeDecodesToUtf8) {
  ManifestEntry e;
  ASSERT_TRUE(SweepManifest::parse_line(line_with_id("caf\\u00e9"), &e));
  EXPECT_EQ(e.id, "caf\xc3\xa9");  // é = U+00E9
}

TEST(ManifestUnicode, ThreeByteBmpEscapeDecodesToUtf8) {
  ManifestEntry e;
  ASSERT_TRUE(SweepManifest::parse_line(line_with_id("cost\\u20ac5"), &e));
  EXPECT_EQ(e.id, "cost\xe2\x82\xac" "5");  // € = U+20AC
}

TEST(ManifestUnicode, AsciiEscapeStaysAscii) {
  ManifestEntry e;
  ASSERT_TRUE(SweepManifest::parse_line(line_with_id("a\\u0041b"), &e));
  EXPECT_EQ(e.id, "aAb");
}

TEST(ManifestUnicode, SurrogatePairDecodesToFourByteUtf8) {
  ManifestEntry e;
  // U+1F600 as the 😀 pair.
  ASSERT_TRUE(SweepManifest::parse_line(line_with_id("x\\ud83d\\ude00y"), &e));
  EXPECT_EQ(e.id, "x\xf0\x9f\x98\x80y");
}

TEST(ManifestUnicode, LoneHighSurrogateFailsTheLine) {
  ManifestEntry e;
  EXPECT_FALSE(SweepManifest::parse_line(line_with_id("x\\ud83dy"), &e));
}

TEST(ManifestUnicode, LoneLowSurrogateFailsTheLine) {
  ManifestEntry e;
  EXPECT_FALSE(SweepManifest::parse_line(line_with_id("x\\ude00y"), &e));
}

TEST(ManifestUnicode, HighSurrogateFollowedByNonSurrogateFailsTheLine) {
  ManifestEntry e;
  EXPECT_FALSE(SweepManifest::parse_line(line_with_id("x\\ud83d\\u0041y"), &e));
}

TEST(ManifestUnicode, TruncatedHexDigitsFailTheLine) {
  ManifestEntry e;
  EXPECT_FALSE(SweepManifest::parse_line(line_with_id("x\\u00gqy"), &e));
}

TEST(ManifestUnicode, RawUtf8IdRoundTripsThroughFormatAndParse) {
  ManifestEntry e;
  e.index = 4;
  e.id = "caf\xc3\xa9-\xe2\x82\xac-\xf0\x9f\x90\x98";  // café-€-🐘
  e.status = RunStatus::kOk;
  e.attempts = 1;
  e.repetitions = 1;
  ManifestEntry back;
  ASSERT_TRUE(SweepManifest::parse_line(SweepManifest::format_line(e), &back));
  EXPECT_EQ(back.id, e.id);
}

TEST(ManifestUnicode, ControlCharacterEscapesRoundTrip) {
  // append_escaped writes control chars as \u00XX; the parser must decode
  // them back to the identical bytes.
  ManifestEntry e;
  e.index = 1;
  e.id = "id";
  e.status = RunStatus::kFailed;
  e.error = std::string("bell\x07null-ish\x01tab\tend");
  ManifestEntry back;
  ASSERT_TRUE(SweepManifest::parse_line(SweepManifest::format_line(e), &back));
  EXPECT_EQ(back.error, e.error);
}

TEST(ManifestTornLine, EveryStrictPrefixIsRejected) {
  ManifestEntry e;
  e.index = 12;
  e.id = "cubic_vs_bbr1-fifo-bdp2-1G";
  e.status = RunStatus::kOk;
  e.attempts = 1;
  e.repetitions = 3;
  e.sender_bps[0] = 4.2e8;
  e.sender_bps[1] = 3.9e8;
  e.jain2 = 0.998;
  e.utilization = 0.81;
  e.error = "torn mid-write";
  const std::string line = SweepManifest::format_line(e);
  for (std::size_t len = 0; len < line.size(); ++len) {
    ManifestEntry out;
    EXPECT_FALSE(SweepManifest::parse_line(line.substr(0, len), &out))
        << "prefix of length " << len << " parsed";
  }
  ManifestEntry out;
  EXPECT_TRUE(SweepManifest::parse_line(line, &out));
}

TEST(ManifestTornLine, TruncationInsideClassBlockIsRejected) {
  ManifestEntry e;
  e.index = 2;
  e.id = "workload-cell";
  e.status = RunStatus::kOk;
  ClassResult c;
  c.name = "mice";
  c.flows = 40;
  c.completed = 39;
  c.throughput_bps = 1.5e6;
  e.classes.push_back(c);
  c.name = "elephants";
  e.classes.push_back(c);
  const std::string line = SweepManifest::format_line(e);
  // Cut right after the first class object's closing brace: the line then
  // ends in '}' (passing the cheap brace check) but the class array has no
  // terminator, which must fail the whole line rather than yield one class.
  const std::size_t first_close = line.find("},", line.find("\"classes\":["));
  ASSERT_NE(first_close, std::string::npos);
  ManifestEntry out;
  EXPECT_FALSE(SweepManifest::parse_line(line.substr(0, first_close + 1), &out));
}

TEST(ManifestFormat, ExtremeValuesRoundTripWithoutTruncation) {
  // Worst-case field widths: every double at full %.17g width, saturated
  // counters, and a long per-class list. A fixed-size formatting buffer
  // would truncate this line; the append path must grow instead.
  ManifestEntry e;
  e.index = 18446744073709551615ull % 1000000;
  e.id = std::string(64, 'x');
  e.status = RunStatus::kOk;
  e.attempts = 2147483647;
  e.repetitions = 2147483647;
  e.sender_bps[0] = -1.7976931348623157e308;
  e.sender_bps[1] = 2.2250738585072014e-308;
  e.jain2 = 0.12345678901234567;
  e.utilization = 0.98765432109876543;
  e.retx_segments = 1.2345678901234567e300;
  e.rtos = -2.3456789012345678e-300;
  for (int i = 0; i < 24; ++i) {
    ClassResult c;
    c.name = "class-with-a-deliberately-long-name-" + std::to_string(i);
    c.flows = 4294967295u;
    c.completed = 4294967294u;
    c.throughput_bps = 1.7976931348623157e308;
    c.share = 1.2345678901234567e-5;
    c.jain = 0.99999999999999989;
    c.fct_p50_s = 1.1111111111111111e-3;
    c.fct_p95_s = 2.2222222222222222e-3;
    c.fct_p99_s = 3.3333333333333333e-3;
    c.fct_mean_s = 4.4444444444444444e-3;
    c.slowdown_p50 = 5.5555555555555555e5;
    c.slowdown_p95 = 6.6666666666666666e5;
    c.slowdown_p99 = 7.7777777777777777e5;
    e.classes.push_back(std::move(c));
  }
  ManifestEntry back;
  ASSERT_TRUE(SweepManifest::parse_line(SweepManifest::format_line(e), &back));
  EXPECT_EQ(back.id, e.id);
  ASSERT_EQ(back.classes.size(), e.classes.size());
  for (std::size_t i = 0; i < e.classes.size(); ++i) {
    EXPECT_EQ(back.classes[i].name, e.classes[i].name);
    EXPECT_EQ(back.classes[i].flows, e.classes[i].flows);
    EXPECT_DOUBLE_EQ(back.classes[i].throughput_bps, e.classes[i].throughput_bps);
    EXPECT_DOUBLE_EQ(back.classes[i].slowdown_p99, e.classes[i].slowdown_p99);
  }
  EXPECT_DOUBLE_EQ(back.sender_bps[0], e.sender_bps[0]);
  EXPECT_DOUBLE_EQ(back.sender_bps[1], e.sender_bps[1]);
  EXPECT_DOUBLE_EQ(back.retx_segments, e.retx_segments);
  EXPECT_DOUBLE_EQ(back.rtos, e.rtos);
}

}  // namespace
}  // namespace elephant::exp
